package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
)

func genConfig() GeneratorConfig {
	return GeneratorConfig{
		Components: 200,
		Horizon:    50000,
		TTF:        dist.Must(dist.NewWeibull(0.7, 1500)),
		Repair:     dist.Must(dist.NewLogNormal(2.0, 0.8)),
		Seed:       42,
	}
}

func TestGenerateProducesOrderedAlternatingEvents(t *testing.T) {
	events, err := Generate(genConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 1000 {
		t.Fatalf("only %d events generated", len(events))
	}
	last := -1.0
	for i, e := range events {
		if e.Time < last {
			t.Fatalf("event %d out of order", i)
		}
		last = e.Time
	}
	// Per component, kinds must alternate FAIL/REPAIR.
	lastKind := map[string]EventKind{}
	for _, e := range events {
		if prev, ok := lastKind[e.Component]; ok && prev == e.Kind {
			t.Fatalf("component %s has consecutive %s events", e.Component, e.Kind)
		}
		lastKind[e.Component] = e.Kind
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := genConfig()
	bad.Components = 0
	if _, err := Generate(bad); err == nil {
		t.Error("0 components accepted")
	}
	bad = genConfig()
	bad.Horizon = 0
	if _, err := Generate(bad); err == nil {
		t.Error("0 horizon accepted")
	}
	bad = genConfig()
	bad.TTF = nil
	if _, err := Generate(bad); err == nil {
		t.Error("nil TTF accepted")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	events, err := Generate(genConfig())
	if err != nil {
		t.Fatal(err)
	}
	events = events[:500]
	var buf bytes.Buffer
	if err := WriteLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d of %d events", len(parsed), len(events))
	}
	for i := range events {
		if parsed[i].Component != events[i].Component || parsed[i].Kind != events[i].Kind {
			t.Fatalf("event %d mismatch: %v vs %v", i, parsed[i], events[i])
		}
		if math.Abs(parsed[i].Time-events[i].Time) > 1e-5 {
			t.Fatalf("event %d time mismatch", i)
		}
	}
}

func TestParseLogRejectsMalformed(t *testing.T) {
	cases := []string{
		"1.0,disk-1",              // missing field
		"abc,disk-1,FAIL",         // bad timestamp
		"1.0,disk-1,EXPLODED",     // unknown kind
		"1.0,,FAIL",               // empty component
		"1.0,disk-1,FAIL,extra,x", // too many fields
	}
	for _, c := range cases {
		if _, err := ParseLog(strings.NewReader(c)); err == nil {
			t.Errorf("malformed line %q accepted", c)
		}
	}
	// Comments and blanks are fine.
	ok := "# header\n\n1.0,disk-1,FAIL\n2.0,disk-1,REPAIR\n"
	events, err := ParseLog(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events, want 2", len(events))
	}
}

func TestExtractDurations(t *testing.T) {
	events := []Event{
		{Time: 10, Component: "d1", Kind: EventFail},
		{Time: 12, Component: "d1", Kind: EventRepair},
		{Time: 20, Component: "d2", Kind: EventFail},
		{Time: 30, Component: "d1", Kind: EventFail},
		{Time: 31, Component: "d2", Kind: EventRepair},
	}
	d, err := Extract(events)
	if err != nil {
		t.Fatal(err)
	}
	// TBF: d1 0->10, d2 0->20, d1 12->30 = 18.
	if len(d.TimeBetweenFailures) != 3 {
		t.Fatalf("TBF count = %d, want 3", len(d.TimeBetweenFailures))
	}
	// Repairs: d1 2h, d2 11h.
	if len(d.RepairDurations) != 2 {
		t.Fatalf("repair count = %d, want 2", len(d.RepairDurations))
	}
	if d.RepairDurations[0] != 2 || d.RepairDurations[1] != 11 {
		t.Fatalf("repairs = %v", d.RepairDurations)
	}
}

func TestExtractRejectsInconsistentLogs(t *testing.T) {
	doubleFail := []Event{
		{Time: 1, Component: "d", Kind: EventFail},
		{Time: 2, Component: "d", Kind: EventFail},
	}
	if _, err := Extract(doubleFail); err == nil {
		t.Error("double fail accepted")
	}
	orphanRepair := []Event{{Time: 1, Component: "d", Kind: EventRepair}}
	if _, err := Extract(orphanRepair); err == nil {
		t.Error("repair-while-healthy accepted")
	}
	outOfOrder := []Event{
		{Time: 5, Component: "d", Kind: EventFail},
		{Time: 1, Component: "e", Kind: EventFail},
	}
	if _, err := Extract(outOfOrder); err == nil {
		t.Error("out-of-order log accepted")
	}
}

func TestFitModelsRecoversGroundTruth(t *testing.T) {
	// E9: the pipeline must identify the generating families and recover
	// parameters within a few percent.
	events, err := Generate(genConfig())
	if err != nil {
		t.Fatal(err)
	}
	ttf, rep, err := FitModels(events)
	if err != nil {
		t.Fatal(err)
	}
	if ttf.Best.Name != "weibull" {
		t.Errorf("TTF best fit = %s (KS %v), want weibull", ttf.Best.Name, ttf.Best.KS)
	}
	if rep.Best.Name != "lognormal" {
		t.Errorf("repair best fit = %s (KS %v), want lognormal", rep.Best.Name, rep.Best.KS)
	}
	w, ok := ttf.Best.Dist.(dist.Weibull)
	if !ok {
		t.Fatalf("TTF dist is %T", ttf.Best.Dist)
	}
	if math.Abs(w.Shape-0.7)/0.7 > 0.1 {
		t.Errorf("recovered shape %v, want ~0.7", w.Shape)
	}
	ln, ok := rep.Best.Dist.(dist.LogNormal)
	if !ok {
		t.Fatalf("repair dist is %T", rep.Best.Dist)
	}
	if math.Abs(ln.Mu-2.0) > 0.15 || math.Abs(ln.Sigma-0.8) > 0.15 {
		t.Errorf("recovered lognormal (%v, %v), want (2.0, 0.8)", ln.Mu, ln.Sigma)
	}
}

func TestFitModelsNeedsData(t *testing.T) {
	events := []Event{
		{Time: 1, Component: "d", Kind: EventFail},
		{Time: 2, Component: "d", Kind: EventRepair},
	}
	if _, _, err := FitModels(events); err == nil {
		t.Error("tiny log accepted")
	}
}
