// Package trace implements the operational-log pipeline of §4.4/§4.5 of
// the paper: hardware event logs are parsed, per-component inter-failure
// and repair durations are extracted, and distributions are fitted to
// seed data-driven simulator models ("transformation algorithms that
// convert log data into meaningful models ... must be developed").
//
// Real cluster logs (Schroeder & Gibson's datasets) are not distributable,
// so the package also contains a synthetic log generator that draws from
// configurable ground-truth distributions — the fitting/validation code
// path is identical for real logs (see DESIGN.md substitution table).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/rng"
)

// EventKind is the log event type.
type EventKind string

const (
	EventFail   EventKind = "FAIL"
	EventRepair EventKind = "REPAIR"
)

// Event is one log line: at Time (hours since epoch), Component (e.g.
// "disk-17") experienced Kind.
type Event struct {
	Time      float64
	Component string
	Kind      EventKind
}

// WriteLog writes events in the canonical CSV-like format:
// time,component,kind — one per line.
func WriteLog(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, "%.6f,%s,%s\n", e.Time, e.Component, e.Kind); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	return bw.Flush()
}

// ParseLog reads events in the canonical format, rejecting malformed
// lines with a line-numbered error. Blank lines and lines starting with
// '#' are skipped.
func ParseLog(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(parts))
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp %q", lineNo, parts[0])
		}
		kind := EventKind(strings.TrimSpace(parts[2]))
		if kind != EventFail && kind != EventRepair {
			return nil, fmt.Errorf("trace: line %d: unknown event kind %q", lineNo, parts[2])
		}
		comp := strings.TrimSpace(parts[1])
		if comp == "" {
			return nil, fmt.Errorf("trace: line %d: empty component", lineNo)
		}
		events = append(events, Event{Time: t, Component: comp, Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return events, nil
}

// GeneratorConfig drives the synthetic log generator.
type GeneratorConfig struct {
	Components int       // number of components to simulate
	Horizon    float64   // hours of log to generate
	TTF        dist.Dist // ground-truth time-to-failure
	Repair     dist.Dist // ground-truth repair duration
	Seed       uint64
}

// Generate produces a synthetic operational log: each component cycles
// healthy --TTF--> FAIL --Repair--> REPAIR ... until the horizon. Events
// are returned in time order.
func Generate(cfg GeneratorConfig) ([]Event, error) {
	if cfg.Components < 1 {
		return nil, fmt.Errorf("trace: need >= 1 component, got %d", cfg.Components)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("trace: horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.TTF == nil || cfg.Repair == nil {
		return nil, fmt.Errorf("trace: generator needs TTF and Repair distributions")
	}
	var events []Event
	for c := 0; c < cfg.Components; c++ {
		r := rng.New(cfg.Seed ^ (uint64(c)*0x9e3779b97f4a7c15 + 1))
		name := fmt.Sprintf("disk-%d", c)
		t := 0.0
		for {
			t += cfg.TTF.Sample(r)
			if t > cfg.Horizon {
				break
			}
			events = append(events, Event{Time: t, Component: name, Kind: EventFail})
			rep := cfg.Repair.Sample(r)
			t += rep
			if t > cfg.Horizon {
				break
			}
			events = append(events, Event{Time: t, Component: name, Kind: EventRepair})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events, nil
}

// Durations extracted from a log.
type Durations struct {
	TimeBetweenFailures []float64 // per component: gaps between repair and next fail (or start and first fail)
	RepairDurations     []float64 // fail -> repair gaps
}

// Extract computes inter-failure and repair durations per component.
// Unmatched trailing FAILs (still down at log end) are ignored.
func Extract(events []Event) (Durations, error) {
	type state struct {
		lastUp   float64 // when the component last became healthy
		downAt   float64
		isDown   bool
		sawEvent bool
	}
	states := map[string]*state{}
	var d Durations
	lastTime := -1.0
	for i, e := range events {
		if e.Time < lastTime {
			return Durations{}, fmt.Errorf("trace: event %d out of time order", i)
		}
		lastTime = e.Time
		st := states[e.Component]
		if st == nil {
			st = &state{}
			states[e.Component] = st
		}
		switch e.Kind {
		case EventFail:
			if st.isDown {
				return Durations{}, fmt.Errorf("trace: component %s failed twice without repair", e.Component)
			}
			d.TimeBetweenFailures = append(d.TimeBetweenFailures, e.Time-st.lastUp)
			st.isDown = true
			st.downAt = e.Time
		case EventRepair:
			if !st.isDown {
				return Durations{}, fmt.Errorf("trace: component %s repaired while healthy", e.Component)
			}
			d.RepairDurations = append(d.RepairDurations, e.Time-st.downAt)
			st.isDown = false
			st.lastUp = e.Time
		}
		st.sawEvent = true
	}
	return d, nil
}

// ModelReport is the outcome of fitting a duration sample.
type ModelReport struct {
	Quantity string // "ttf" or "repair"
	N        int
	Best     dist.FitResult
	All      []dist.FitResult
}

// FitModels runs the full pipeline: extract durations and fit every
// candidate family to both quantities, returning the best fits.
func FitModels(events []Event) (ttf, repair ModelReport, err error) {
	d, err := Extract(events)
	if err != nil {
		return ModelReport{}, ModelReport{}, err
	}
	if len(d.TimeBetweenFailures) < 10 || len(d.RepairDurations) < 10 {
		return ModelReport{}, ModelReport{}, fmt.Errorf(
			"trace: need >= 10 observations of each quantity, got %d TTF / %d repair",
			len(d.TimeBetweenFailures), len(d.RepairDurations))
	}
	ttfFits := dist.FitBest(d.TimeBetweenFailures)
	repFits := dist.FitBest(d.RepairDurations)
	return ModelReport{Quantity: "ttf", N: len(d.TimeBetweenFailures), Best: ttfFits[0], All: ttfFits},
		ModelReport{Quantity: "repair", N: len(d.RepairDurations), Best: repFits[0], All: repFits},
		nil
}
