package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPerm(t *testing.T) {
	r := New(9)
	p := r.Perm(50)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("Perm covered %d elements, want 50", len(seen))
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(13)
	f := func(seed uint64) bool {
		rr := New(seed)
		n := 1 + rr.Intn(200)
		k := rr.Intn(n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleUniformCoverage(t *testing.T) {
	// Each element should appear in Sample(10, 3) with probability 3/10.
	r := New(21)
	const draws = 60000
	counts := make([]int, 10)
	for i := 0; i < draws; i++ {
		for _, v := range r.Sample(10, 3) {
			counts[v]++
		}
	}
	want := float64(draws) * 0.3
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d chosen %d times, want ~%v", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 300000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(42)
	a := root.Derive("disk-failures")
	b := root.Derive("network")
	if a.Uint64() == b.Uint64() {
		t.Fatal("derived streams with different names produced same first draw")
	}
	// Derivation must be stable: same name twice gives the same stream.
	c := root.Derive("disk-failures")
	a2 := New(42).Derive("disk-failures")
	_ = a2.Uint64() // consumed one above for a; align by fresh source
	c1, a21 := c.Uint64(), New(42).Derive("disk-failures").Uint64()
	if c1 != a21 {
		t.Fatal("Derive is not a pure function of (state, name)")
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a, b := New(42), New(42)
	a.Derive("x")
	a.Derive("y")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive advanced the parent stream")
	}
}

func TestForkAdvancesParent(t *testing.T) {
	a := New(42)
	f1 := a.Fork()
	f2 := a.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("successive forks produced identical streams")
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: sum %d -> %d", sum, got)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func TestAntitheticComplement(t *testing.T) {
	plain := New(99)
	anti := New(99)
	anti.SetAntithetic(true)
	if !anti.Antithetic() || plain.Antithetic() {
		t.Fatal("antithetic flags wrong")
	}
	for i := 0; i < 1000; i++ {
		u := plain.Float64()
		v := anti.Float64()
		// Exact lattice complement: u + v == 1 - 2^-53.
		if u+v != 1-0x1p-53 {
			t.Fatalf("draw %d: %v + %v != 1-2^-53", i, u, v)
		}
	}
}

func TestAntitheticDeriveInherits(t *testing.T) {
	plain := New(7).Derive("x")
	anti := New(7)
	anti.SetAntithetic(true)
	antiD := anti.Derive("x")
	if !antiD.Antithetic() {
		t.Fatal("derived stream lost the antithetic flag")
	}
	// Derived states are identical, so outputs are exact complements.
	for i := 0; i < 100; i++ {
		if plain.Uint64() != ^antiD.Uint64() {
			t.Fatalf("derived antithetic stream is not the complement at draw %d", i)
		}
	}
	// Forked children also mirror.
	pf := New(7).Fork()
	af := New(7)
	af.SetAntithetic(true)
	aff := af.Fork()
	for i := 0; i < 100; i++ {
		if pf.Uint64() != ^aff.Uint64() {
			t.Fatalf("forked antithetic stream is not the complement at draw %d", i)
		}
	}
}

func TestAntitheticStillUniform(t *testing.T) {
	r := New(3)
	r.SetAntithetic(true)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("antithetic uniform mean = %v", mean)
	}
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < n/10-1500 || c > n/10+1500 {
			t.Fatalf("antithetic Intn digit %d count %d far from %d", d, c, n/10)
		}
	}
}

func TestKeyedPureFunction(t *testing.T) {
	a := Keyed(1, 2, "node-0")
	b := Keyed(1, 2, "node-0")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Keyed is not a pure function of its arguments")
		}
	}
	// Distinct coordinates give distinct streams.
	base := Keyed(1, 2, "node-0").Uint64()
	if Keyed(1, 3, "node-0").Uint64() == base {
		t.Error("trial does not decorrelate keyed streams")
	}
	if Keyed(2, 2, "node-0").Uint64() == base {
		t.Error("seed does not decorrelate keyed streams")
	}
	if Keyed(1, 2, "node-1").Uint64() == base {
		t.Error("name does not decorrelate keyed streams")
	}
}
