// Package rng provides a deterministic, seedable pseudo-random number
// source with named sub-stream derivation.
//
// The wind tunnel requires reproducible simulations: the same seed must
// produce the same event trajectory regardless of map iteration order or
// scheduling. Every model owns its own derived stream so that adding a new
// model does not perturb the draws seen by existing models (a property the
// paper's extensibility argument in §4.1 depends on).
//
// The generator is xoshiro256** seeded through SplitMix64, both public
// domain algorithms by Blackman and Vigna. Only the standard library is
// used.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random source. It is not safe for
// concurrent use; derive one Source per goroutine with Derive.
type Source struct {
	s [4]uint64

	// flip is XORed into every raw xoshiro output: 0 for a plain stream,
	// ^0 for an antithetic stream. Flipping all 64 bits maps the
	// top-53-bit uniform u to its exact lattice complement
	// (1 - 2^-53) - u, so an antithetic stream consumes the mirrored
	// uniforms of its twin while both advance identical state.
	flip uint64

	// cached second normal variate from the polar method.
	hasNorm bool
	norm    float64
}

// splitmix64 advances the seed expander and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give statistically
// independent streams.
func New(seed uint64) *Source {
	var r Source
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result ^ r.flip
}

// SetAntithetic switches the source between plain and antithetic output.
// An antithetic source emits, for every draw, the bitwise complement of
// what the plain stream would have produced, so Float64 returns the exact
// lattice mirror 1 - 2^-53 - u of the plain uniform u. Pairing a plain
// and an antithetic stream with identical state yields negatively
// correlated trajectories for any monotone transform (§4.2's antithetic
// variates). Derived and forked streams inherit the setting.
func (r *Source) SetAntithetic(on bool) {
	if on {
		r.flip = ^uint64(0)
	} else {
		r.flip = 0
	}
}

// Antithetic reports whether the source emits antithetic draws.
func (r *Source) Antithetic() bool { return r.flip != 0 }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniform value in the open interval (0, 1),
// suitable for inverse-transform sampling where log(0) must be avoided.
func (r *Source) OpenFloat64() float64 {
	for {
		v := r.Float64()
		if v != 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation. bits.Mul64 is a
	// compiler intrinsic (single MULX/UMULH on amd64/arm64).
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Int63 returns a non-negative 63-bit integer.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct integers drawn uniformly from [0, n) in
// selection order. It panics if k > n or k < 0.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	out := make([]int, k)
	switch {
	case k == 0:
	case 8*k <= n && k <= 64:
		// Rejection sampling with a linear dedup scan: the
		// replica-placement common case (a handful of targets from a big
		// cluster). Collision probability is <= 1/8 per draw and the scan
		// stays within a cache line or two, so this beats both the map and
		// a dense shuffle.
		for i := 0; i < k; {
			v := r.Intn(n)
			dup := false
			for _, prev := range out[:i] {
				if prev == v {
					dup = true
					break
				}
			}
			if !dup {
				out[i] = v
				i++
			}
		}
	case n <= 1024:
		// Dense partial Fisher–Yates over a small scratch slice.
		scratch := make([]int, n)
		for i := range scratch {
			scratch[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			scratch[i], scratch[j] = scratch[j], scratch[i]
			out[i] = scratch[i]
		}
	default:
		// Partial Fisher–Yates over a sparse map: O(k) time and space even
		// for large n with large k.
		swapped := make(map[int]int, k)
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			vi, ok := swapped[i]
			if !ok {
				vi = i
			}
			vj, ok := swapped[j]
			if !ok {
				vj = j
			}
			out[i] = vj
			swapped[j] = vi
		}
	}
	return out
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method, caching the paired value.
func (r *Source) NormFloat64() float64 {
	if r.hasNorm {
		r.hasNorm = false
		return r.norm
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.norm = v * f
		r.hasNorm = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Source) ExpFloat64() float64 {
	return -math.Log(r.OpenFloat64())
}

// fnv1a hashes s with 64-bit FNV-1a.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Derive returns a new Source whose state is a deterministic function of
// the receiver's current state and name. Distinct names yield independent
// streams; deriving does not advance the parent stream, so the set of
// derived streams is stable under insertion of new names. The antithetic
// setting is inherited, so a mirrored parent yields mirrored children
// with state identical to the plain twin's children.
func (r *Source) Derive(name string) *Source {
	x := r.s[0] ^ rotl(r.s[2], 13) ^ fnv1a(name)
	d := New(x)
	d.flip = r.flip
	return d
}

// Fork returns a new independent Source, advancing the receiver. The
// child inherits the antithetic setting but is seeded from the raw
// (unflipped) draw, so plain/antithetic twins fork state-identical
// children.
func (r *Source) Fork() *Source {
	d := New(r.Uint64() ^ r.flip ^ 0xa0761d6478bd642f)
	d.flip = r.flip
	return d
}

// Keyed returns the deterministic Source for the (seed, trial, name)
// triple: a pure function of its arguments, independent of any generator
// state. This is the §4.2 common-random-numbers keying — two design
// points that share an experiment seed and trial index see identical
// draws for every stream name, so their availability estimates are
// positively correlated and comparisons between them (dominance pruning,
// Best() ranking) converge in far fewer trials than with independent
// sampling.
func Keyed(seed, trial uint64, name string) *Source {
	x := seed
	a := splitmix64(&x)
	y := trial ^ 0x6a09e667f3bcc909 // sqrt(2) bits: decorrelate trial from seed
	b := splitmix64(&y)
	return New(a ^ rotl(b, 17) ^ fnv1a(name))
}
