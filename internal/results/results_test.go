package results

import (
	"path/filepath"
	"sort"
	"strconv"
	"testing"
)

func record(scenario string, cfg map[string]string) Record {
	return Record{
		Scenario: scenario,
		Config:   cfg,
		Metrics:  map[string]float64{"availability": 0.999},
		Trials:   10,
	}
}

func TestAddGetFilter(t *testing.T) {
	s := NewStore()
	id1, err := s.Add(record("a", map[string]string{"net": "10g", "n": "3"}))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Add(record("b", map[string]string{"net": "1g", "n": "3"}))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("duplicate ids")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	r, err := s.Get(id1)
	if err != nil || r.Scenario != "a" {
		t.Fatalf("Get(%d) = %v, %v", id1, r, err)
	}
	if _, err := s.Get(999); err == nil {
		t.Error("missing id returned")
	}
	got := s.Filter(map[string]string{"n": "3"})
	if len(got) != 2 {
		t.Errorf("filter n=3 returned %d, want 2", len(got))
	}
	got = s.Filter(map[string]string{"net": "1g"})
	if len(got) != 1 || got[0].Scenario != "b" {
		t.Errorf("filter net=1g returned %v", got)
	}
	if _, err := s.Add(Record{}); err == nil {
		t.Error("empty scenario accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	if _, err := s.Add(record("x", map[string]string{"k": "v"})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(record("y", map[string]string{"k": "w"})); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d records, want 2", loaded.Len())
	}
	r, err := loaded.Get(1)
	if err != nil || r.Scenario != "y" {
		t.Fatalf("loaded record 1 = %v, %v", r, err)
	}
	// IDs continue after load.
	id, err := loaded.Add(record("z", nil))
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("next id = %d, want 2", id)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestNearestKOrdersBySimilarity(t *testing.T) {
	s := NewStore()
	for _, cfg := range []map[string]string{
		{"nodes": "10", "replicas": "3", "placement": "random"},
		{"nodes": "30", "replicas": "3", "placement": "random"},
		{"nodes": "10", "replicas": "5", "placement": "roundrobin"},
	} {
		if _, err := s.Add(record("r", cfg)); err != nil {
			t.Fatal(err)
		}
	}
	q := map[string]string{"nodes": "11", "replicas": "3", "placement": "random"}
	nn := s.NearestK(q, 2)
	if len(nn) != 2 {
		t.Fatalf("got %d neighbors, want 2", len(nn))
	}
	// Closest must be the nodes=10 random/3 config (tiny numeric delta).
	if nn[0].Record.Config["nodes"] != "10" || nn[0].Record.Config["placement"] != "random" ||
		nn[0].Record.Config["replicas"] != "3" {
		t.Errorf("nearest = %v", nn[0].Record.Config)
	}
	if nn[0].Distance >= nn[1].Distance {
		t.Errorf("distances not ordered: %v >= %v", nn[0].Distance, nn[1].Distance)
	}
	// Exact match has distance ~0.
	exact := s.NearestK(map[string]string{"nodes": "10", "replicas": "3", "placement": "random"}, 1)
	if exact[0].Distance > 1e-12 {
		t.Errorf("exact match distance = %v", exact[0].Distance)
	}
	if s.NearestK(q, 0) != nil {
		t.Error("k=0 returned results")
	}
}

func TestDistanceProperties(t *testing.T) {
	a := map[string]string{"x": "1", "y": "foo"}
	if d := distance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	b := map[string]string{"x": "1"}
	if d := distance(a, b); d <= 0 || d > 1 {
		t.Errorf("missing-key distance = %v, want in (0,1]", d)
	}
	// Numeric distance is relative.
	c1 := map[string]string{"x": "100"}
	c2 := map[string]string{"x": "110"}
	c3 := map[string]string{"x": "200"}
	if !(distance(c1, c2) < distance(c1, c3)) {
		t.Error("numeric distances not ordered")
	}
	if d := distance(nil, nil); d != 0 {
		t.Errorf("empty distance = %v", d)
	}
}

func TestGetUsesIDIndex(t *testing.T) {
	s := NewStore()
	ids := make([]int, 0, 1000)
	for i := 0; i < 1000; i++ {
		id, err := s.Add(Record{Scenario: "s", Config: map[string]string{"i": strconv.Itoa(i)}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range []int{0, 500, 999} {
		r, err := s.Get(ids[id])
		if err != nil {
			t.Fatal(err)
		}
		if r.Config["i"] != strconv.Itoa(id) {
			t.Fatalf("Get(%d) returned record %v", id, r.Config)
		}
	}
	if _, err := s.Get(12345); err == nil {
		t.Error("missing id did not error")
	}
}

// TestNearestKMatchesBruteForce cross-checks the indexed branch-and-bound
// search against a naive full scan.
func TestNearestKMatchesBruteForce(t *testing.T) {
	s := NewStore()
	n := 500
	for i := 0; i < n; i++ {
		cfg := map[string]string{
			"replicas": strconv.Itoa(1 + i%7),
			"nodes":    strconv.Itoa(10 * (1 + i%13)),
			"policy":   []string{"random", "roundrobin", "spread"}[i%3],
		}
		if i%5 == 0 {
			cfg["extra"] = strconv.Itoa(i)
		}
		if _, err := s.Add(Record{Scenario: "s", Config: cfg}); err != nil {
			t.Fatal(err)
		}
	}
	query := map[string]string{"replicas": "3", "nodes": "40", "policy": "random"}
	for _, k := range []int{1, 5, 25} {
		got := s.NearestK(query, k)
		// Brute force: distance to every record, stable sort, take k.
		type pair struct {
			d float64
			i int
		}
		var all []pair
		for i, r := range s.All() {
			all = append(all, pair{distance(query, r.Config), i})
		}
		sort.SliceStable(all, func(a, b int) bool { return all[a].d < all[b].d })
		if len(got) != k {
			t.Fatalf("k=%d returned %d neighbors", k, len(got))
		}
		for i := range got {
			if got[i].Distance != all[i].d || got[i].Record.ID != all[i].i {
				t.Fatalf("k=%d neighbor %d: got (d=%v id=%d), want (d=%v id=%d)",
					k, i, got[i].Distance, got[i].Record.ID, all[i].d, all[i].i)
			}
		}
	}
}

func TestLoadRebuildsIndexes(t *testing.T) {
	s := NewStore()
	for i := 0; i < 20; i++ {
		if _, err := s.Add(Record{Scenario: "s", Config: map[string]string{"i": strconv.Itoa(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	path := t.TempDir() + "/store.json"
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := loaded.Get(13)
	if err != nil || r.Config["i"] != "13" {
		t.Fatalf("Get after Load: %v %v", r, err)
	}
	nb := loaded.NearestK(map[string]string{"i": "13"}, 1)
	if len(nb) != 1 || nb[0].Record.ID != 13 {
		t.Fatalf("NearestK after Load: %v", nb)
	}
}

func BenchmarkStoreNearestK(b *testing.B) {
	s := NewStore()
	for i := 0; i < 10000; i++ {
		if _, err := s.Add(Record{Scenario: "s", Config: map[string]string{
			"replicas": strconv.Itoa(1 + i%9),
			"nodes":    strconv.Itoa(10 * (1 + i%31)),
			"mttf":     strconv.Itoa(100 * (1 + i%17)),
			"policy":   []string{"random", "roundrobin"}[i%2],
		}}); err != nil {
			b.Fatal(err)
		}
	}
	query := map[string]string{"replicas": "3", "nodes": "40", "mttf": "500", "policy": "random"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nb := s.NearestK(query, 5); len(nb) != 5 {
			b.Fatal("bad result")
		}
	}
}
