package results

import (
	"path/filepath"
	"testing"
)

func record(scenario string, cfg map[string]string) Record {
	return Record{
		Scenario: scenario,
		Config:   cfg,
		Metrics:  map[string]float64{"availability": 0.999},
		Trials:   10,
	}
}

func TestAddGetFilter(t *testing.T) {
	s := NewStore()
	id1, err := s.Add(record("a", map[string]string{"net": "10g", "n": "3"}))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Add(record("b", map[string]string{"net": "1g", "n": "3"}))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("duplicate ids")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	r, err := s.Get(id1)
	if err != nil || r.Scenario != "a" {
		t.Fatalf("Get(%d) = %v, %v", id1, r, err)
	}
	if _, err := s.Get(999); err == nil {
		t.Error("missing id returned")
	}
	got := s.Filter(map[string]string{"n": "3"})
	if len(got) != 2 {
		t.Errorf("filter n=3 returned %d, want 2", len(got))
	}
	got = s.Filter(map[string]string{"net": "1g"})
	if len(got) != 1 || got[0].Scenario != "b" {
		t.Errorf("filter net=1g returned %v", got)
	}
	if _, err := s.Add(Record{}); err == nil {
		t.Error("empty scenario accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	if _, err := s.Add(record("x", map[string]string{"k": "v"})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(record("y", map[string]string{"k": "w"})); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d records, want 2", loaded.Len())
	}
	r, err := loaded.Get(1)
	if err != nil || r.Scenario != "y" {
		t.Fatalf("loaded record 1 = %v, %v", r, err)
	}
	// IDs continue after load.
	id, err := loaded.Add(record("z", nil))
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("next id = %d, want 2", id)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestNearestKOrdersBySimilarity(t *testing.T) {
	s := NewStore()
	for _, cfg := range []map[string]string{
		{"nodes": "10", "replicas": "3", "placement": "random"},
		{"nodes": "30", "replicas": "3", "placement": "random"},
		{"nodes": "10", "replicas": "5", "placement": "roundrobin"},
	} {
		if _, err := s.Add(record("r", cfg)); err != nil {
			t.Fatal(err)
		}
	}
	q := map[string]string{"nodes": "11", "replicas": "3", "placement": "random"}
	nn := s.NearestK(q, 2)
	if len(nn) != 2 {
		t.Fatalf("got %d neighbors, want 2", len(nn))
	}
	// Closest must be the nodes=10 random/3 config (tiny numeric delta).
	if nn[0].Record.Config["nodes"] != "10" || nn[0].Record.Config["placement"] != "random" ||
		nn[0].Record.Config["replicas"] != "3" {
		t.Errorf("nearest = %v", nn[0].Record.Config)
	}
	if nn[0].Distance >= nn[1].Distance {
		t.Errorf("distances not ordered: %v >= %v", nn[0].Distance, nn[1].Distance)
	}
	// Exact match has distance ~0.
	exact := s.NearestK(map[string]string{"nodes": "10", "replicas": "3", "placement": "random"}, 1)
	if exact[0].Distance > 1e-12 {
		t.Errorf("exact match distance = %v", exact[0].Distance)
	}
	if s.NearestK(q, 0) != nil {
		t.Error("k=0 returned results")
	}
}

func TestDistanceProperties(t *testing.T) {
	a := map[string]string{"x": "1", "y": "foo"}
	if d := distance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	b := map[string]string{"x": "1"}
	if d := distance(a, b); d <= 0 || d > 1 {
		t.Errorf("missing-key distance = %v, want in (0,1]", d)
	}
	// Numeric distance is relative.
	c1 := map[string]string{"x": "100"}
	c2 := map[string]string{"x": "110"}
	c3 := map[string]string{"x": "200"}
	if !(distance(c1, c2) < distance(c1, c3)) {
		t.Error("numeric distances not ordered")
	}
	if d := distance(nil, nil); d != 0 {
		t.Errorf("empty distance = %v", d)
	}
}
