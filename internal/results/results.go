// Package results manages the wind tunnel's output data (§4.4 of the
// paper): every simulation run is recorded with its configuration,
// metrics and verdicts; the store persists to JSON; and a configuration-
// similarity search answers the paper's "have I already explored a
// scenario similar to this one?" question.
package results

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Record is one stored simulation run.
type Record struct {
	ID       int                `json:"id"`
	Scenario string             `json:"scenario"`
	Config   map[string]string  `json:"config"` // dimension -> value
	Metrics  map[string]float64 `json:"metrics"`
	Seed     uint64             `json:"seed"`
	Trials   int                `json:"trials"`
	AllMet   bool               `json:"all_met"`
}

// parsedKV is one pre-parsed config entry: the numeric form is decoded
// once at Add/Load time so similarity search never re-runs ParseFloat,
// and entries are kept sorted by key so two configs compare with a
// linear merge instead of a per-comparison key-set map.
type parsedKV struct {
	key   string
	str   string
	num   float64
	isNum bool
}

// parseConfig converts a config map into a sorted parsed slice.
func parseConfig(config map[string]string) []parsedKV {
	out := make([]parsedKV, 0, len(config))
	for k, v := range config {
		kv := parsedKV{key: k, str: v}
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			kv.num, kv.isNum = f, true
		}
		out = append(out, kv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// Store is an in-memory run archive with JSON persistence. Records are
// indexed by id for O(1) lookup, and their configurations are pre-parsed
// for fast similarity search at production record counts.
//
// A Store is safe for concurrent use: the serving layer shares one
// archive between every in-flight query job, so writers (Add) and
// readers (Get/All/Filter/NearestK/Save) synchronize on an RWMutex —
// similarity searches from many sessions proceed in parallel and only
// archiving a finished run takes the write lock.
type Store struct {
	mu      sync.RWMutex
	records []Record
	parsed  [][]parsedKV // parallel to records
	byID    map[int]int  // id -> records index
	nextID  int
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{byID: make(map[int]int)} }

// Add records a run and returns its id.
func (s *Store) Add(r Record) (int, error) {
	if r.Scenario == "" {
		return 0, fmt.Errorf("results: record needs a scenario name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r.ID = s.nextID
	s.nextID++
	if s.byID == nil {
		s.byID = make(map[int]int)
	}
	s.byID[r.ID] = len(s.records)
	s.records = append(s.records, r)
	s.parsed = append(s.parsed, parseConfig(r.Config))
	return r.ID, nil
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Get returns record id in O(1) via the id index.
func (s *Store) Get(id int) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i, ok := s.byID[id]; ok {
		return s.records[i], nil
	}
	return Record{}, fmt.Errorf("results: no record %d", id)
}

// All returns a copy of all records.
func (s *Store) All() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Filter returns records whose config matches every key/value in match.
func (s *Store) Filter(match map[string]string) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, r := range s.records {
		ok := true
		for k, v := range match {
			if r.Config[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// Save writes the store to path as JSON, atomically: the archive is
// written to a temp file in the same directory, fsync'd, and renamed
// over path, so a crash (or a concurrent reader) mid-save can never
// observe a torn archive. This is what makes periodic checkpointing
// (windtunneld -store-interval) safe — the previous checkpoint survives
// until the new one is durable.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	data, err := json.MarshalIndent(s.records, "", "  ")
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("results: marshal: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("results: save: %w", err)
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(name)
		return fmt.Errorf("results: save: write %v, sync %v, close %v", werr, serr, cerr)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("results: save: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads a store from path.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("results: load: %w", err)
	}
	var records []Record
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("results: parse: %w", err)
	}
	st := &Store{
		records: records,
		parsed:  make([][]parsedKV, len(records)),
		byID:    make(map[int]int, len(records)),
	}
	for i, r := range records {
		st.parsed[i] = parseConfig(r.Config)
		st.byID[r.ID] = i
		if r.ID >= st.nextID {
			st.nextID = r.ID + 1
		}
	}
	return st, nil
}

// Neighbor is a similarity result.
type Neighbor struct {
	Record   Record
	Distance float64
}

// NearestK returns the k stored records most similar to config, ordered
// by ascending distance (ties broken by record order). Distance per key:
// numeric values use relative difference |a-b|/max(|a|,|b|); non-numeric
// use 0/1 mismatch; keys missing from either side count 1. The sum is
// normalized by key count.
//
// Candidates are scanned against the pre-parsed config index with a
// size-k result set and branch-and-bound early exit: a record's distance
// accumulation stops as soon as it exceeds the current kth-best, so the
// archive stays fast at production record counts.
func (s *Store) NearestK(config map[string]string, k int) []Neighbor {
	if k < 1 {
		return nil
	}
	query := parseConfig(config)
	s.mu.RLock()
	defer s.mu.RUnlock()

	type cand struct {
		dist float64
		idx  int
	}
	// best holds the current k nearest; worst tracks the entry to beat.
	best := make([]cand, 0, k)
	worst := 0
	worse := func(a, b cand) bool { // a strictly worse than b
		if a.dist != b.dist {
			return a.dist > b.dist
		}
		return a.idx > b.idx
	}
	for i := range s.records {
		var bound float64 = math.Inf(1)
		if len(best) == k {
			bound = best[worst].dist
		}
		d, ok := configDistance(query, s.parsed[i], bound)
		if !ok {
			continue // exceeded the kth-best part way: cannot enter the set
		}
		c := cand{dist: d, idx: i}
		if len(best) < k {
			best = append(best, c)
			if worse(c, best[worst]) {
				worst = len(best) - 1
			}
		} else if worse(best[worst], c) {
			best[worst] = c
			worst = 0
			for j := 1; j < len(best); j++ {
				if worse(best[j], best[worst]) {
					worst = j
				}
			}
		}
	}
	sort.Slice(best, func(i, j int) bool { return !worse(best[i], best[j]) })
	neighbors := make([]Neighbor, len(best))
	for i, c := range best {
		neighbors[i] = Neighbor{Record: s.records[c.idx], Distance: c.dist}
	}
	return neighbors
}

// distance computes the normalized config distance between two raw
// config maps (parse-on-the-fly convenience; the store's hot path uses
// pre-parsed configs through configDistance).
func distance(a, b map[string]string) float64 {
	d, _ := configDistance(parseConfig(a), parseConfig(b), math.Inf(1))
	return d
}

// configDistance merges two sorted parsed configs, accumulating the
// normalized distance. It bails out (ok=false) once the partial total
// already guarantees a distance strictly above bound.
func configDistance(a, b []parsedKV, bound float64) (float64, bool) {
	keys := 0
	// The normalizing key count is the size of the key union, computed
	// in the same merge pass.
	total := 0.0
	i, j := 0, 0
	limit := math.Inf(1)
	if !math.IsInf(bound, 1) {
		// total/keysUnion > bound requires total > bound*union; union is
		// unknown until the end, but it is at most len(a)+len(b), so use
		// that as a conservative early-exit scale.
		limit = bound * float64(len(a)+len(b))
	}
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].key < b[j].key):
			total++ // key only in a
			i++
		case i >= len(a) || b[j].key < a[i].key:
			total++ // key only in b
			j++
		default:
			av, bv := a[i], b[j]
			i++
			j++
			switch {
			case av.str == bv.str:
				// zero
			case av.isNum && bv.isNum:
				denom := math.Max(math.Abs(av.num), math.Abs(bv.num))
				if denom == 0 {
					total++
				} else {
					d := math.Abs(av.num-bv.num) / denom
					if d > 1 {
						d = 1
					}
					total += d
				}
			default:
				total++
			}
		}
		keys++
		if total > limit {
			return 0, false
		}
	}
	if keys == 0 {
		return 0, true
	}
	d := total / float64(keys)
	if d > bound {
		return 0, false
	}
	return d, true
}
