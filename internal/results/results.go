// Package results manages the wind tunnel's output data (§4.4 of the
// paper): every simulation run is recorded with its configuration,
// metrics and verdicts; the store persists to JSON; and a configuration-
// similarity search answers the paper's "have I already explored a
// scenario similar to this one?" question.
package results

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
)

// Record is one stored simulation run.
type Record struct {
	ID       int                `json:"id"`
	Scenario string             `json:"scenario"`
	Config   map[string]string  `json:"config"` // dimension -> value
	Metrics  map[string]float64 `json:"metrics"`
	Seed     uint64             `json:"seed"`
	Trials   int                `json:"trials"`
	AllMet   bool               `json:"all_met"`
}

// Store is an in-memory run archive with JSON persistence.
type Store struct {
	records []Record
	nextID  int
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add records a run and returns its id.
func (s *Store) Add(r Record) (int, error) {
	if r.Scenario == "" {
		return 0, fmt.Errorf("results: record needs a scenario name")
	}
	r.ID = s.nextID
	s.nextID++
	s.records = append(s.records, r)
	return r.ID, nil
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.records) }

// Get returns record id.
func (s *Store) Get(id int) (Record, error) {
	for _, r := range s.records {
		if r.ID == id {
			return r, nil
		}
	}
	return Record{}, fmt.Errorf("results: no record %d", id)
}

// All returns a copy of all records.
func (s *Store) All() []Record {
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Filter returns records whose config matches every key/value in match.
func (s *Store) Filter(match map[string]string) []Record {
	var out []Record
	for _, r := range s.records {
		ok := true
		for k, v := range match {
			if r.Config[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// Save writes the store to path as JSON.
func (s *Store) Save(path string) error {
	data, err := json.MarshalIndent(s.records, "", "  ")
	if err != nil {
		return fmt.Errorf("results: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("results: save: %w", err)
	}
	return nil
}

// Load reads a store from path.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("results: load: %w", err)
	}
	var records []Record
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("results: parse: %w", err)
	}
	st := &Store{records: records}
	for _, r := range records {
		if r.ID >= st.nextID {
			st.nextID = r.ID + 1
		}
	}
	return st, nil
}

// Neighbor is a similarity result.
type Neighbor struct {
	Record   Record
	Distance float64
}

// NearestK returns the k stored records most similar to config, ordered
// by ascending distance. Distance per key: numeric values use relative
// difference |a-b|/max(|a|,|b|); non-numeric use 0/1 mismatch; keys
// missing from either side count 1. The sum is normalized by key count.
func (s *Store) NearestK(config map[string]string, k int) []Neighbor {
	if k < 1 {
		return nil
	}
	neighbors := make([]Neighbor, 0, len(s.records))
	for _, r := range s.records {
		neighbors = append(neighbors, Neighbor{Record: r, Distance: distance(config, r.Config)})
	}
	sort.SliceStable(neighbors, func(i, j int) bool {
		return neighbors[i].Distance < neighbors[j].Distance
	})
	if len(neighbors) > k {
		neighbors = neighbors[:k]
	}
	return neighbors
}

// distance computes the normalized config distance.
func distance(a, b map[string]string) float64 {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	if len(keys) == 0 {
		return 0
	}
	total := 0.0
	for k := range keys {
		av, aok := a[k]
		bv, bok := b[k]
		switch {
		case !aok || !bok:
			total++
		case av == bv:
			// zero
		default:
			af, aerr := strconv.ParseFloat(av, 64)
			bf, berr := strconv.ParseFloat(bv, 64)
			if aerr == nil && berr == nil {
				denom := math.Max(math.Abs(af), math.Abs(bf))
				if denom == 0 {
					total++
				} else {
					d := math.Abs(af-bf) / denom
					if d > 1 {
						d = 1
					}
					total += d
				}
			} else {
				total++
			}
		}
	}
	return total / float64(len(keys))
}
