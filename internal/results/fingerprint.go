package results

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Fingerprint returns a stable content address for a normalized key/value
// description of a configuration. The encoding is canonical: entries are
// sorted by key and each key and value is length-prefixed before hashing,
// so the fingerprint is independent of map insertion order and immune to
// concatenation ambiguity ("ab"+"c" vs "a"+"bc"). Two maps produce the
// same fingerprint iff they hold exactly the same key/value pairs.
//
// The trial cache (internal/service) keys completed trial statistics by
// Fingerprint of the full (scenario, engine-knob) tuple, so the encoding
// must never change silently: any change invalidates every persisted
// cache entry. The hash is SHA-256, making cross-config collisions a
// non-concern at any realistic archive size.
func Fingerprint(kv map[string]string) string {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	var lenBuf [8]byte
	writeField := func(s string) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	for _, k := range keys {
		writeField(k)
		writeField(kv[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}
