package results

import (
	"fmt"
	"sync"
	"testing"
)

// TestStoreConcurrentAccess exercises parallel Add/Get/NearestK/Filter so
// `go test -race` proves the store is safe when the serving layer shares
// one archive across many query jobs.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	// Pre-seed so readers have something to find immediately.
	for i := 0; i < 16; i++ {
		if _, err := s.Add(Record{
			Scenario: "seed",
			Config:   map[string]string{"cluster.nodes": fmt.Sprint(10 + i), "storage.replication": "3"},
			Metrics:  map[string]float64{"availability": 0.999},
		}); err != nil {
			t.Fatalf("seed add: %v", err)
		}
	}

	const writers, readers, rounds = 4, 4, 200
	var wg sync.WaitGroup
	ids := make(chan int, writers*rounds)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id, err := s.Add(Record{
					Scenario: "w",
					Config: map[string]string{
						"cluster.nodes":       fmt.Sprint(10 + (w*rounds+i)%50),
						"storage.replication": fmt.Sprint(3 + i%3),
					},
					Metrics: map[string]float64{"availability": 0.99},
				})
				if err != nil {
					t.Errorf("add: %v", err)
					return
				}
				ids <- id
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := map[string]string{"cluster.nodes": "20", "storage.replication": "3"}
			for i := 0; i < rounds; i++ {
				if _, err := s.Get(i % 16); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if n := s.NearestK(q, 3); len(n) == 0 {
					t.Error("nearestk: empty result on non-empty store")
					return
				}
				s.Filter(map[string]string{"storage.replication": "3"})
				_ = s.Len()
			}
		}()
	}
	wg.Wait()
	close(ids)

	seen := make(map[int]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d issued under concurrency", id)
		}
		seen[id] = true
	}
	if want := 16 + writers*rounds; s.Len() != want {
		t.Fatalf("store has %d records, want %d", s.Len(), want)
	}
}

// TestFingerprintInsertionOrder checks the canonical encoding: maps built
// in different insertion orders fingerprint identically.
func TestFingerprintInsertionOrder(t *testing.T) {
	keys := []string{"cluster.racks", "users", "seed", "node.ttf", "runner.trials"}
	vals := []string{"3", "1000", "1", "weibull(shape=0.7, scale=12000)", "20"}

	forward := make(map[string]string)
	for i, k := range keys {
		forward[k] = vals[i]
	}
	backward := make(map[string]string)
	for i := len(keys) - 1; i >= 0; i-- {
		backward[keys[i]] = vals[i]
	}
	if a, b := Fingerprint(forward), Fingerprint(backward); a != b {
		t.Fatalf("fingerprint depends on insertion order: %s vs %s", a, b)
	}
}

// TestFingerprintDistinguishes checks that the length-prefixed encoding
// cannot confuse adjacent fields or near-miss configs.
func TestFingerprintDistinguishes(t *testing.T) {
	cases := []map[string]string{
		{"a": "bc"},
		{"ab": "c"},
		{"a": "b", "c": ""},
		{"a": "", "c": "b"},
		{"a": "b"},
		{"a": "b", "c": "d"},
		{"cluster.nodes": "30", "rep": "3"},
		{"cluster.nodes": "303", "rep": ""},
		{"cluster.nodes": "3", "rep": "03"},
	}
	seen := make(map[string]int)
	for i, kv := range cases {
		fp := Fingerprint(kv)
		if j, dup := seen[fp]; dup {
			t.Fatalf("configs %d and %d collide: %v vs %v", i, j, cases[i], cases[j])
		}
		seen[fp] = i
	}
}

// TestFingerprintStable pins the encoding: any change to it invalidates
// every persisted cache entry, so it must be a deliberate one.
func TestFingerprintStable(t *testing.T) {
	got := Fingerprint(map[string]string{"k": "v"})
	if len(got) != 64 {
		t.Fatalf("fingerprint should be 64 hex chars, got %d (%s)", len(got), got)
	}
	if got2 := Fingerprint(map[string]string{"k": "v"}); got2 != got {
		t.Fatalf("fingerprint not deterministic: %s vs %s", got, got2)
	}
}
