package design

import (
	"testing"
)

func space(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(
		Dimension{Name: "net", Values: []Value{"1g", "10g", "40g"}, Monotone: true},
		Dimension{Name: "replicas", Values: []Value{2, 3, 5}, Monotone: true},
		Dimension{Name: "placement", Values: []Value{"random", "roundrobin"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpaceSize(t *testing.T) {
	s := space(t)
	if s.Size() != 18 {
		t.Fatalf("size = %d, want 18", s.Size())
	}
	pts := s.Points()
	if len(pts) != 18 {
		t.Fatalf("enumerated %d points, want 18", len(pts))
	}
	// All distinct.
	seen := map[string]bool{}
	for _, p := range pts {
		if seen[p.Key()] {
			t.Fatalf("duplicate point %s", p.Key())
		}
		seen[p.Key()] = true
	}
}

func TestEnumerationBestFirst(t *testing.T) {
	s := space(t)
	pts := s.Points()
	// First point must have the best monotone values: 40g, 5 replicas.
	first := pts[0]
	if v := first.MustValue("net"); v != "40g" {
		t.Errorf("first point net = %v, want 40g", v)
	}
	if v := first.MustValue("replicas"); v != 5 {
		t.Errorf("first point replicas = %v, want 5", v)
	}
	// Last point has the worst: 1g, 2.
	last := pts[len(pts)-1]
	if v := last.MustValue("net"); v != "1g" {
		t.Errorf("last point net = %v, want 1g", v)
	}
}

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := NewSpace(Dimension{Name: "", Values: []Value{1}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSpace(Dimension{Name: "x", Values: nil}); err == nil {
		t.Error("no values accepted")
	}
	if _, err := NewSpace(Dimension{Name: "x", Values: []Value{1, 1}}); err == nil {
		t.Error("duplicate values accepted")
	}
	if _, err := NewSpace(
		Dimension{Name: "x", Values: []Value{1}},
		Dimension{Name: "x", Values: []Value{2}},
	); err == nil {
		t.Error("duplicate dimension accepted")
	}
}

func TestPointAccessors(t *testing.T) {
	s := space(t)
	p, err := s.PointFor(map[string]Value{"net": "10g", "replicas": 3, "placement": "random"})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := p.Value("net"); err != nil || v != "10g" {
		t.Errorf("net = %v (%v)", v, err)
	}
	if _, err := p.Value("bogus"); err == nil {
		t.Error("unknown dimension accepted")
	}
	a := p.Assignments()
	if len(a) != 3 || a["replicas"] != 3 {
		t.Errorf("assignments = %v", a)
	}
	// Key is canonical and order-independent.
	if p.Key() != "net=10g,placement=random,replicas=3" {
		t.Errorf("key = %q", p.Key())
	}
}

func TestPointForValidation(t *testing.T) {
	s := space(t)
	if _, err := s.PointFor(map[string]Value{"net": "10g"}); err == nil {
		t.Error("partial assignment accepted")
	}
	if _, err := s.PointFor(map[string]Value{"net": "99g", "replicas": 3, "placement": "random"}); err == nil {
		t.Error("unknown value accepted")
	}
	if _, err := s.PointFor(map[string]Value{"bogus": 1, "replicas": 3, "placement": "random"}); err == nil {
		t.Error("unknown dimension accepted")
	}
}

func TestDominancePruning(t *testing.T) {
	s := space(t)
	pr := NewPruner(s)
	// 10g + 3 replicas + random failed.
	failed, err := s.PointFor(map[string]Value{"net": "10g", "replicas": 3, "placement": "random"})
	if err != nil {
		t.Fatal(err)
	}
	pr.RecordFailure(failed)

	cases := []struct {
		assign map[string]Value
		want   bool
	}{
		// Worse network, same everything else: dominated (§4.2 example).
		{map[string]Value{"net": "1g", "replicas": 3, "placement": "random"}, true},
		// Same point: dominated.
		{map[string]Value{"net": "10g", "replicas": 3, "placement": "random"}, true},
		// Worse on both monotone dims: dominated.
		{map[string]Value{"net": "1g", "replicas": 2, "placement": "random"}, true},
		// Better network: not dominated.
		{map[string]Value{"net": "40g", "replicas": 3, "placement": "random"}, false},
		// Worse net but more replicas: not dominated (incomparable).
		{map[string]Value{"net": "1g", "replicas": 5, "placement": "random"}, false},
		// Different categorical value: not dominated.
		{map[string]Value{"net": "1g", "replicas": 3, "placement": "roundrobin"}, false},
	}
	for _, c := range cases {
		p, err := s.PointFor(c.assign)
		if err != nil {
			t.Fatal(err)
		}
		if got := pr.Dominated(p); got != c.want {
			t.Errorf("Dominated(%s) = %v, want %v", p.Key(), got, c.want)
		}
	}
	if pr.Failures() != 1 {
		t.Errorf("failures = %d, want 1", pr.Failures())
	}
}

func TestPruningSavesRunsInBestFirstOrder(t *testing.T) {
	// Simulate a sweep where points with net=1g or replicas=2 fail: with
	// best-first enumeration and pruning, strictly fewer points should be
	// executed than the full cartesian product.
	s := space(t)
	pr := NewPruner(s)
	executed := 0
	fails := func(p Point) bool {
		return p.MustValue("net") == "1g" || p.MustValue("replicas") == 2
	}
	for _, p := range s.Points() {
		if pr.Dominated(p) {
			continue
		}
		executed++
		if fails(p) {
			pr.RecordFailure(p)
		}
	}
	if executed >= s.Size() {
		t.Fatalf("pruning executed %d of %d points — saved nothing", executed, s.Size())
	}
	// Verify no pruned point would actually have passed: re-check by
	// exhaustive evaluation.
	for _, p := range s.Points() {
		if pr.Dominated(p) && !fails(p) {
			t.Fatalf("pruned point %s would have passed", p.Key())
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{"x", "x"}, {3, "3"}, {2.5, "2.5"}, {true, "true"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
