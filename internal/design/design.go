// Package design models the configuration design space the wind tunnel
// sweeps: typed dimensions (cluster size, replication factor, NIC speed,
// placement policy, ...), cartesian enumeration, and the monotone
// dominance order that §4.2 of the paper uses to skip simulation runs:
// "if a performance SLA cannot be met with a 10Gb network, then it won't
// be met with a 1Gb network, while all other design parameters remain the
// same. Thus, the simulation run with the 10Gb configuration should
// precede the run with the 1Gb configuration."
package design

import (
	"fmt"
	"sort"
	"strings"
)

// Value is one setting of a dimension: a string, bool, int or float64.
type Value any

// FormatValue renders a value canonically.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return fmt.Sprintf("%g", x)
	case int:
		return fmt.Sprintf("%d", x)
	case bool:
		return fmt.Sprintf("%t", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Dimension is one axis of the design space. When Monotone is true the
// Values MUST be ordered worst-to-best with respect to SLA satisfaction
// (e.g. NIC speeds 1G, 10G, 40G): failing at a value then implies failing
// at every earlier value, all else equal.
type Dimension struct {
	Name     string
	Values   []Value
	Monotone bool
}

// Validate checks the dimension.
func (d Dimension) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("design: dimension with empty name")
	}
	if len(d.Values) == 0 {
		return fmt.Errorf("design: dimension %q has no values", d.Name)
	}
	seen := make(map[string]bool, len(d.Values))
	for _, v := range d.Values {
		k := FormatValue(v)
		if seen[k] {
			return fmt.Errorf("design: dimension %q has duplicate value %s", d.Name, k)
		}
		seen[k] = true
	}
	return nil
}

// Space is a cartesian product of dimensions.
type Space struct {
	dims  []Dimension
	index map[string]int
}

// NewSpace validates and constructs a space.
func NewSpace(dims ...Dimension) (*Space, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("design: space needs >= 1 dimension")
	}
	s := &Space{dims: dims, index: make(map[string]int, len(dims))}
	for i, d := range dims {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[d.Name]; dup {
			return nil, fmt.Errorf("design: duplicate dimension %q", d.Name)
		}
		s.index[d.Name] = i
	}
	return s, nil
}

// Dims returns the dimensions.
func (s *Space) Dims() []Dimension { return s.dims }

// Size returns the number of points.
func (s *Space) Size() int {
	n := 1
	for _, d := range s.dims {
		n *= len(d.Values)
	}
	return n
}

// Point is one configuration: an index into each dimension's values.
type Point struct {
	space *Space
	idx   []int
}

// Value returns the point's setting for dimension name.
func (p Point) Value(name string) (Value, error) {
	i, ok := p.space.index[name]
	if !ok {
		return nil, fmt.Errorf("design: unknown dimension %q", name)
	}
	return p.space.dims[i].Values[p.idx[i]], nil
}

// MustValue is Value for known-good dimension names.
func (p Point) MustValue(name string) Value {
	v, err := p.Value(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Assignments returns the point as a name->value map.
func (p Point) Assignments() map[string]Value {
	out := make(map[string]Value, len(p.idx))
	for i, d := range p.space.dims {
		out[d.Name] = d.Values[p.idx[i]]
	}
	return out
}

// Key returns a canonical string identity ("dim=value,..." sorted by
// dimension name), used for result stores and deduplication.
func (p Point) Key() string {
	parts := make([]string, 0, len(p.idx))
	for i, d := range p.space.dims {
		parts = append(parts, d.Name+"="+FormatValue(d.Values[p.idx[i]]))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (p Point) String() string { return p.Key() }

// clone copies the index vector.
func (p Point) clone() Point {
	idx := make([]int, len(p.idx))
	copy(idx, p.idx)
	return Point{space: p.space, idx: idx}
}

// Points enumerates the whole space in §4.2 execution order: monotone
// dimensions iterate best-first (descending index) so that failures are
// discovered at the strongest configurations first, maximizing later
// pruning; categorical dimensions iterate in declaration order.
func (s *Space) Points() []Point {
	var out []Point
	idx := make([]int, len(s.dims))
	// Start each monotone dimension at its best value.
	for i, d := range s.dims {
		if d.Monotone {
			idx[i] = len(d.Values) - 1
		}
	}
	for {
		cur := Point{space: s, idx: idx}
		out = append(out, cur.clone())
		// Odometer increment (last dimension fastest).
		i := len(s.dims) - 1
		for ; i >= 0; i-- {
			d := s.dims[i]
			if d.Monotone {
				idx[i]--
				if idx[i] >= 0 {
					break
				}
				idx[i] = len(d.Values) - 1
			} else {
				idx[i]++
				if idx[i] < len(d.Values) {
					break
				}
				idx[i] = 0
			}
		}
		if i < 0 {
			return out
		}
	}
}

// PointFor returns the point with the given assignments (every dimension
// must be present, values must exist).
func (s *Space) PointFor(assign map[string]Value) (Point, error) {
	if len(assign) != len(s.dims) {
		return Point{}, fmt.Errorf("design: assignment covers %d of %d dimensions", len(assign), len(s.dims))
	}
	idx := make([]int, len(s.dims))
	for name, v := range assign {
		i, ok := s.index[name]
		if !ok {
			return Point{}, fmt.Errorf("design: unknown dimension %q", name)
		}
		found := -1
		want := FormatValue(v)
		for j, dv := range s.dims[i].Values {
			if FormatValue(dv) == want {
				found = j
				break
			}
		}
		if found < 0 {
			return Point{}, fmt.Errorf("design: dimension %q has no value %s", name, want)
		}
		idx[i] = found
	}
	return Point{space: s, idx: idx}, nil
}

// Pruner implements the §4.2 dominance skip: once a point fails its SLA,
// every point that is equal on all categorical dimensions and
// worse-or-equal on every monotone dimension is guaranteed to fail too
// and need not be simulated.
type Pruner struct {
	space  *Space
	failed []Point
}

// NewPruner creates a pruner for s.
func NewPruner(s *Space) *Pruner { return &Pruner{space: s} }

// RecordFailure marks p as having failed its constraint.
func (pr *Pruner) RecordFailure(p Point) {
	pr.failed = append(pr.failed, p.clone())
}

// Failures returns the number of recorded failures.
func (pr *Pruner) Failures() int { return len(pr.failed) }

// Dominated reports whether q is guaranteed to fail given the recorded
// failures.
func (pr *Pruner) Dominated(q Point) bool {
	for _, f := range pr.failed {
		if dominatedBy(q, f) {
			return true
		}
	}
	return false
}

// dominatedBy reports whether q is worse-or-equal than the failed point f:
// equal on categorical dimensions, index <= on monotone dimensions.
func dominatedBy(q, f Point) bool {
	for i, d := range q.space.dims {
		if d.Monotone {
			if q.idx[i] > f.idx[i] {
				return false
			}
		} else if q.idx[i] != f.idx[i] {
			return false
		}
	}
	return true
}
