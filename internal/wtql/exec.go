package wtql

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/design"
	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/power"
	"repro/internal/repair"
	"repro/internal/results"
	"repro/internal/sla"
	"repro/internal/storage"
)

// Parameter registry: every settable name, its applier onto a Scenario,
// and whether it participates in VARY. This is the semantic-analysis
// layer — unknown parameters are rejected before any simulation runs.

type applier func(sc *core.Scenario, v any) error

var paramAppliers = map[string]applier{
	"cluster.racks": func(sc *core.Scenario, v any) error {
		return setInt(&sc.Cluster.Racks, v, "cluster.racks")
	},
	"cluster.nodes_per_rack": func(sc *core.Scenario, v any) error {
		return setInt(&sc.Cluster.NodesPerRack, v, "cluster.nodes_per_rack")
	},
	// cluster.nodes is the Figure-1 convenience: a flat cluster of N
	// nodes (one logical rack).
	"cluster.nodes": func(sc *core.Scenario, v any) error {
		sc.Cluster.Racks = 1
		return setInt(&sc.Cluster.NodesPerRack, v, "cluster.nodes")
	},
	"disk.spec": func(sc *core.Scenario, v any) error {
		return setSpec(&sc.Cluster.DiskSpec, v, "disk.spec")
	},
	"disk.per_node": func(sc *core.Scenario, v any) error {
		return setInt(&sc.Cluster.DisksPerNode, v, "disk.per_node")
	},
	"net.nic": func(sc *core.Scenario, v any) error {
		return setSpec(&sc.Cluster.NICSpec, v, "net.nic")
	},
	"cpu.spec": func(sc *core.Scenario, v any) error {
		return setSpec(&sc.Cluster.CPUSpec, v, "cpu.spec")
	},
	"mem.spec": func(sc *core.Scenario, v any) error {
		return setSpec(&sc.Cluster.MemSpec, v, "mem.spec")
	},
	"storage.replication": func(sc *core.Scenario, v any) error {
		var n int
		if err := setInt(&n, v, "storage.replication"); err != nil {
			return err
		}
		sc.Scheme = storage.ReplicationScheme(n)
		return nil
	},
	"storage.placement": func(sc *core.Scenario, v any) error {
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("wtql: storage.placement wants a string, got %v", v)
		}
		sc.Placement = s
		return nil
	},
	"repair.mode": func(sc *core.Scenario, v any) error {
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("wtql: repair.mode wants 'serial' or 'parallel', got %v", v)
		}
		switch s {
		case "serial":
			sc.Repair.Mode = repair.Serial
		case "parallel":
			sc.Repair.Mode = repair.Parallel
			if sc.Repair.MaxConcurrent < 1 {
				sc.Repair.MaxConcurrent = 8
			}
		default:
			return fmt.Errorf("wtql: unknown repair.mode %q", s)
		}
		return nil
	},
	"repair.concurrency": func(sc *core.Scenario, v any) error {
		return setInt(&sc.Repair.MaxConcurrent, v, "repair.concurrency")
	},
	"repair.detection_hours": func(sc *core.Scenario, v any) error {
		f, ok := toFloat(v)
		if !ok || f < 0 {
			return fmt.Errorf("wtql: repair.detection_hours wants a non-negative number, got %v", v)
		}
		if f == 0 {
			sc.Repair.Detection = nil
			return nil
		}
		d, err := dist.NewDeterministic(f)
		if err != nil {
			return err
		}
		sc.Repair.Detection = d
		return nil
	},
	// node.ttf / node.repair / repair.detection accept full dist spec
	// strings — "weibull(shape=0.7, scale=8760)", "mix(...)", etc. — so
	// queries can sweep arbitrary failure models, not just means.
	"node.ttf": func(sc *core.Scenario, v any) error {
		return setDist(&sc.Cluster.NodeTTF, v, "node.ttf")
	},
	"node.repair": func(sc *core.Scenario, v any) error {
		return setDist(&sc.Cluster.NodeRepair, v, "node.repair")
	},
	"repair.detection": func(sc *core.Scenario, v any) error {
		return setDist(&sc.Repair.Detection, v, "repair.detection")
	},
	"node.mttf_hours": func(sc *core.Scenario, v any) error {
		f, ok := toFloat(v)
		if !ok || f <= 0 {
			return fmt.Errorf("wtql: node.mttf_hours wants a positive number, got %v", v)
		}
		d, err := dist.ExpMean(f)
		if err != nil {
			return err
		}
		sc.Cluster.NodeTTF = d
		if sc.Cluster.NodeRepair == nil {
			r, err := dist.LogNormalFromMoments(12, 1.2)
			if err != nil {
				return err
			}
			sc.Cluster.NodeRepair = r
		}
		return nil
	},
	"node.repair_hours": func(sc *core.Scenario, v any) error {
		f, ok := toFloat(v)
		if !ok || f <= 0 {
			return fmt.Errorf("wtql: node.repair_hours wants a positive number, got %v", v)
		}
		d, err := dist.NewDeterministic(f)
		if err != nil {
			return err
		}
		sc.Cluster.NodeRepair = d
		if sc.Cluster.NodeTTF == nil {
			t, err := dist.ExpMean(10000)
			if err != nil {
				return err
			}
			sc.Cluster.NodeTTF = t
		}
		return nil
	},
	// power.* parameters configure the power subsystem (internal/power).
	// Setting any of them (except an explicit power.enabled = FALSE)
	// enables it, so `VARY power.cap IN (0, 0.1, 0.2)` works without
	// ceremony. All of them are output-determining cache-key inputs.
	"power.enabled": func(sc *core.Scenario, v any) error {
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("wtql: power.enabled wants TRUE or FALSE, got %v", v)
		}
		sc.Power.Enabled = b
		return nil
	},
	"power.pdus": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setInt(&sc.Power.PDUs, v, "power.pdus")
	},
	"power.pdu_spec": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setSpec(&sc.Power.PDUSpec, v, "power.pdu_spec")
	},
	"power.ups_spec": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setSpec(&sc.Power.UPSSpec, v, "power.ups_spec")
	},
	"power.utility_ttf": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setDist(&sc.Power.UtilityTTF, v, "power.utility_ttf")
	},
	"power.utility_repair": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setDist(&sc.Power.UtilityRepair, v, "power.utility_repair")
	},
	"power.ups_minutes": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setNonNegFloat(&sc.Power.UPSMinutes, v, "power.ups_minutes")
	},
	"power.generator_start_prob": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setFraction(&sc.Power.GeneratorStartProb, v, "power.generator_start_prob", true)
	},
	"power.generator_start_hours": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setNonNegFloat(&sc.Power.GeneratorStartHours, v, "power.generator_start_hours")
	},
	"power.idle_fraction": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setFraction(&sc.Power.IdleFraction, v, "power.idle_fraction", true)
	},
	"power.utilization": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setFraction(&sc.Power.Utilization, v, "power.utilization", true)
	},
	"power.pue": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		f, ok := toFloat(v)
		if !ok || f < 1 {
			return fmt.Errorf("wtql: power.pue wants a number >= 1, got %v", v)
		}
		sc.Power.PUE = f
		return nil
	},
	"power.carbon_intensity": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setNonNegFloat(&sc.Power.CarbonKgPerKWh, v, "power.carbon_intensity")
	},
	"power.cap": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setFraction(&sc.Power.CapFraction, v, "power.cap", false)
	},
	"power.cap_start_hours": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setNonNegFloat(&sc.Power.CapStartHours, v, "power.cap_start_hours")
	},
	"power.cap_duration_hours": func(sc *core.Scenario, v any) error {
		sc.Power.Enabled = true
		return setNonNegFloat(&sc.Power.CapDurationHours, v, "power.cap_duration_hours")
	},
	"users": func(sc *core.Scenario, v any) error {
		return setInt(&sc.Users, v, "users")
	},
	"object_mb": func(sc *core.Scenario, v any) error {
		f, ok := toFloat(v)
		if !ok || f < 0 {
			return fmt.Errorf("wtql: object_mb wants a non-negative number, got %v", v)
		}
		sc.ObjectSizeMB = f
		return nil
	},
	"horizon_hours": func(sc *core.Scenario, v any) error {
		f, ok := toFloat(v)
		if !ok || f <= 0 {
			return fmt.Errorf("wtql: horizon_hours wants a positive number, got %v", v)
		}
		sc.HorizonHours = f
		return nil
	},
	"seed": func(sc *core.Scenario, v any) error {
		f, ok := toFloat(v)
		if !ok || f < 0 {
			return fmt.Errorf("wtql: seed wants a non-negative number, got %v", v)
		}
		sc.Seed = uint64(f)
		return nil
	},
}

// execution-only parameters (not part of the scenario).
var execParams = map[string]bool{
	"trials": true, "workers": true, "target_ci": true,
	"antithetic": true, "crn": true, "failure_bias": true,
	"screen": true, "screen_margin": true,
}

func setInt(dst *int, v any, name string) error {
	f, ok := toFloat(v)
	if !ok || f != math.Trunc(f) || f < 0 {
		return fmt.Errorf("wtql: %s wants a non-negative integer, got %v", name, v)
	}
	*dst = int(f)
	return nil
}

func setDist(dst *dist.Dist, v any, name string) error {
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("wtql: %s wants a distribution spec string, got %v", name, v)
	}
	d, err := dist.Parse(s)
	if err != nil {
		return fmt.Errorf("wtql: %s: %w", name, err)
	}
	*dst = d
	return nil
}

func setNonNegFloat(dst *float64, v any, name string) error {
	f, ok := toFloat(v)
	if !ok || f < 0 {
		return fmt.Errorf("wtql: %s wants a non-negative number, got %v", name, v)
	}
	*dst = f
	return nil
}

// setFraction parses a value in [0, 1]; closed=false excludes 1 (the
// power-cap fraction must leave some service rate).
func setFraction(dst *float64, v any, name string, closed bool) error {
	f, ok := toFloat(v)
	if !ok || f < 0 || f > 1 || (!closed && f == 1) {
		hi := "1"
		if !closed {
			hi = "1 (exclusive)"
		}
		return fmt.Errorf("wtql: %s wants a number in [0, %s], got %v", name, hi, v)
	}
	*dst = f
	return nil
}

func setSpec(dst *string, v any, name string) error {
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("wtql: %s wants a spec name string, got %v", name, v)
	}
	if _, err := hardware.DefaultCatalog().Get(s); err != nil {
		return fmt.Errorf("wtql: %s: %w", name, err)
	}
	*dst = s
	return nil
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	}
	return 0, false
}

// Row is one configuration's outcome. The JSON field names are part of
// the windtunneld wire format.
type Row struct {
	Config  map[string]string  `json:"config"`
	Metrics map[string]float64 `json:"metrics"`
	Passed  bool               `json:"passed"`
	Pruned  bool               `json:"pruned,omitempty"`
	// Screened marks a row decided by the analytic screening pass — its
	// metrics are closed-form estimates, not simulation output.
	Screened bool `json:"screened,omitempty"`
}

// ResultSet is a query's output.
type ResultSet struct {
	Query    *Query
	Columns  []string
	Rows     []Row
	Executed int
	Pruned   int
	Screened int
	// CacheHits counts executed configurations served from the trial
	// cache. It is diagnostic only and deliberately absent from Render,
	// so a warm sweep's output is byte-identical to a cold one.
	CacheHits int
	// Settings holds the session settings applied by a SET statement.
	Settings map[string]string
}

// Engine executes WTQL queries against the wind tunnel core. The
// variance-reduction and screening fields are session settings, mutable
// via `SET` statements (see the package grammar) and overridable
// per-query in WITH.
type Engine struct {
	// Trials is the default per-point trial count (overridable per-query
	// via WITH trials = n).
	Trials int
	// Workers bounds point-level parallelism when no MONOTONE dimension
	// requests pruning.
	Workers int
	// TrialWorkers bounds trial-level parallelism inside each design
	// point (0 = GOMAXPROCS). The serving layer sets 1 so its shared
	// point-level pool is the only parallelism knob; results are
	// Workers-independent either way.
	TrialWorkers int
	// Store, when non-nil, archives every executed configuration (§4.4:
	// simulation output data is kept for later exploration and
	// similar-configuration queries).
	Store *results.Store
	// Screen enables the §2.2 analytic screening pass (`SET
	// explore.screen = on`). Screening is applied only when the query's
	// WHERE clause consists solely of sla.availability conjuncts, so the
	// analytic decision is sound for the whole filter.
	Screen bool
	// ScreenMargin is the screening safety factor; it applies only when
	// ScreenMarginSet is true, and zero then means exact-threshold
	// screening. When unset, core.DefaultScreenMargin is used.
	ScreenMargin    float64
	ScreenMarginSet bool
	// CRN enables common-random-numbers stream keying (`SET runner.crn
	// = on`).
	CRN bool
	// Antithetic enables antithetic trial pairing (`SET
	// runner.antithetic = on`).
	Antithetic bool
	// FailureBias > 1 enables failure-biased importance sampling (`SET
	// runner.failure_bias = b`).
	FailureBias float64
	// PowerCap, when set (`SET power.cap = 0.2`), enables the power
	// subsystem with that cap fraction on every query's base scenario;
	// WITH power.cap overrides per query. Zero disables the session cap.
	PowerCap    float64
	PowerCapSet bool
	// CarbonIntensity, when set (`SET power.carbon_intensity = 0.4`),
	// overrides the grid carbon intensity (kg CO2 per kWh) of every
	// query's base scenario. It only affects output when the power
	// subsystem is enabled.
	CarbonIntensity    float64
	CarbonIntensitySet bool
	// Cache, when non-nil, memoizes completed trial statistics by
	// content address so overlapping sweeps — across queries and, with a
	// disk-backed cache, across sessions — reuse results instead of
	// re-simulating. Injected by the serving layer (internal/service).
	Cache core.TrialCache
	// Gate, when non-nil, bounds simulation concurrency across engines
	// sharing it — the daemon's shared worker pool.
	Gate core.Gate
	// Progress, when non-nil, receives one callback per committed design
	// point (in point order) while a query runs, enabling per-point
	// streaming in the serving layer.
	Progress func(done, total int, out core.PointOutcome)
	// Subset, when non-nil, restricts SIMULATE execution to these global
	// indices of the planned design space (strictly ascending) — the
	// sharded-fleet worker contract. Each streamed outcome carries its
	// global Index, and the assembled result covers only the subset's
	// points; the coordinator merges worker subsets back into the full
	// table.
	Subset []int
}

// Similar returns the k archived configurations nearest to config,
// answering §4.4's "have I already explored a scenario similar to this
// one?". It requires a Store.
func (e *Engine) Similar(config map[string]string, k int) ([]results.Neighbor, error) {
	if e.Store == nil {
		return nil, fmt.Errorf("wtql: engine has no result store attached")
	}
	return e.Store.NearestK(config, k), nil
}

// Execute parses and runs a query.
func (e *Engine) Execute(queryText string) (*ResultSet, error) {
	return e.ExecuteContext(context.Background(), queryText)
}

// ExecuteContext parses and runs a query under ctx; cancellation stops
// the sweep at design-point granularity and returns ctx.Err.
func (e *Engine) ExecuteContext(ctx context.Context, queryText string) (*ResultSet, error) {
	q, err := Parse(queryText)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, q)
}

// applySetting mutates one engine session setting and returns the
// post-mutation value rendered for display.
func (e *Engine) applySetting(a Assign) (string, error) {
	onOff := func(dst *bool) error {
		switch v := a.Value.(type) {
		case bool:
			*dst = v
			return nil
		case string:
			switch strings.ToLower(v) {
			case "on", "true", "1":
				*dst = true
				return nil
			case "off", "false", "0":
				*dst = false
				return nil
			}
		}
		return fmt.Errorf("wtql: %s wants on/off, got %v", a.Param, a.Value)
	}
	num := func(dst *float64, min float64) error {
		f, ok := toFloat(a.Value)
		if !ok || f < min {
			return fmt.Errorf("wtql: %s wants a number >= %g, got %v", a.Param, min, a.Value)
		}
		*dst = f
		return nil
	}
	switch a.Param {
	case "explore.screen":
		if err := onOff(&e.Screen); err != nil {
			return "", err
		}
		return fmt.Sprintf("%t", e.Screen), nil
	case "explore.screen_margin":
		if err := num(&e.ScreenMargin, 0); err != nil {
			return "", err
		}
		e.ScreenMarginSet = true
		return fmt.Sprintf("%g", e.ScreenMargin), nil
	case "runner.crn":
		if err := onOff(&e.CRN); err != nil {
			return "", err
		}
		return fmt.Sprintf("%t", e.CRN), nil
	case "runner.antithetic":
		if err := onOff(&e.Antithetic); err != nil {
			return "", err
		}
		return fmt.Sprintf("%t", e.Antithetic), nil
	case "runner.failure_bias":
		if err := num(&e.FailureBias, 0); err != nil {
			return "", err
		}
		return fmt.Sprintf("%g", e.FailureBias), nil
	case "power.cap":
		f, ok := toFloat(a.Value)
		if !ok || f < 0 || f >= 1 {
			return "", fmt.Errorf("wtql: power.cap wants a number in [0, 1), got %v", a.Value)
		}
		e.PowerCap = f
		e.PowerCapSet = true
		return fmt.Sprintf("%g", e.PowerCap), nil
	case "power.carbon_intensity":
		if err := num(&e.CarbonIntensity, 0); err != nil {
			return "", err
		}
		e.CarbonIntensitySet = true
		return fmt.Sprintf("%g", e.CarbonIntensity), nil
	default:
		return "", fmt.Errorf("wtql: unknown setting %q in SET", a.Param)
	}
}

// runSet applies a SET statement and reports the resulting settings.
// Application is atomic: every assignment is validated against a
// scratch copy first, so a mid-list error leaves the engine untouched.
func (e *Engine) runSet(q *Query) (*ResultSet, error) {
	scratch := *e
	for _, a := range q.Set {
		if _, err := scratch.applySetting(a); err != nil {
			return nil, err
		}
	}
	rs := &ResultSet{Query: q, Columns: []string{"setting", "value"},
		Settings: make(map[string]string, len(q.Set))}
	for _, a := range q.Set {
		now, err := e.applySetting(a)
		if err != nil {
			return nil, err // unreachable: validated above
		}
		rs.Settings[a.Param] = now
	}
	return rs, nil
}

// Run executes a parsed query.
func (e *Engine) Run(q *Query) (*ResultSet, error) {
	return e.RunContext(context.Background(), q)
}

// RunContext executes a parsed query under ctx.
func (e *Engine) RunContext(ctx context.Context, q *Query) (*ResultSet, error) {
	if len(q.Set) > 0 {
		return e.runSet(q)
	}
	plan, err := e.Plan(q)
	if err != nil {
		return nil, err
	}
	exploration, err := plan.newExplorer().RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return plan.Assemble(exploration.Outcomes)
}

// Plan is a SIMULATE query after semantic analysis: the design space,
// the base scenario with every WITH override applied, the resolved
// runner knobs, the lifted SLAs and the screening rule — everything the
// engine binds before any simulation runs. Splitting planning from
// execution is what makes a query shardable: a fleet coordinator plans
// once, consistent-hashes PointKeys across workers, collects the
// workers' outcome streams and Assembles the exact table a local run
// would have produced.
type Plan struct {
	Query *Query
	Space *design.Space

	eng     *Engine
	base    core.Scenario
	runner  core.Runner
	slas    []sla.SLA
	screen  *core.ScreenRule
	prune   bool
	workers int
}

// Trials is the resolved per-point trial count after the WITH overlay.
// A coordinator forwards it verbatim so every worker computes the same
// cache keys the shard assignment was hashed on.
func (p *Plan) Trials() int { return p.runner.Trials }

// Pruned reports whether the query declared MONOTONE dimensions, i.e.
// dominance pruning is active. Pruning decisions depend on the whole
// committed prefix of the sweep, so a pruned sweep is not shardable and
// a coordinator must execute it on one engine.
func (p *Plan) Pruned() bool { return p.prune }

// NumPoints is the size of the design space.
func (p *Plan) NumPoints() int { return p.Space.Size() }

// Points enumerates the design space in point order.
func (p *Plan) Points() []design.Point { return p.Space.Points() }

// PointKeys returns each point's content address (core.CacheKey) in
// point order — the fleet's shard key.
func (p *Plan) PointKeys() ([]string, error) { return p.newExplorer().PointKeys() }

// RunSubset executes only the given global point indices (strictly
// ascending) on this plan's engine resources, invoking onOutcome per
// committed outcome in subset order. Each outcome carries its global
// Index. This is the fleet coordinator's degraded-mode path: when a
// shard's retry budget is exhausted with no healthy worker left to take
// it, the remaining indices run on the coordinator's own engine and
// merge into the same table, byte for byte.
func (p *Plan) RunSubset(ctx context.Context, subset []int, onOutcome func(out core.PointOutcome)) error {
	ex := p.newExplorer()
	ex.Subset = subset
	ex.Progress = nil
	if onOutcome != nil {
		ex.Progress = func(done, total int, out core.PointOutcome) { onOutcome(out) }
	}
	_, err := ex.RunContext(ctx)
	return err
}

// Run executes the whole planned sweep on this plan's engine resources
// and assembles the result set — the tail of Engine.RunContext, exposed
// so a caller that needed the plan first (for PointKeys, say, or to
// re-hydrate a journaled job from its recorded query text) does not
// plan twice. The engine's Progress callback may be (re)assigned any
// time before Run; it is read here, not at Plan time.
func (p *Plan) Run(ctx context.Context) (*ResultSet, error) {
	exploration, err := p.newExplorer().RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return p.Assemble(exploration.Outcomes)
}

// newExplorer wires the plan to the engine's shared resources.
func (p *Plan) newExplorer() *core.Explorer {
	return &core.Explorer{
		Space:    p.Space,
		Build:    p.build,
		Runner:   p.runner,
		Prune:    p.prune,
		Screen:   p.screen,
		Workers:  p.workers,
		Cache:    p.eng.Cache,
		Gate:     p.eng.Gate,
		Progress: p.eng.Progress,
		Subset:   p.eng.Subset,
	}
}

// build maps a design point to a runnable scenario plus the lifted SLAs.
func (p *Plan) build(pt design.Point) (core.Scenario, []sla.SLA, error) {
	sc := p.base
	sc.Name = pt.Key()
	for name, v := range pt.Assignments() {
		if err := paramAppliers[name](&sc, any(v)); err != nil {
			return core.Scenario{}, nil, err
		}
	}
	return sc, p.slas, nil
}

// Plan resolves a parsed SIMULATE query into an executable Plan without
// running anything: defaults and WITH overrides, the design space, the
// lifted SLAs and the screening decision.
func (e *Engine) Plan(q *Query) (*Plan, error) {
	if len(q.Set) > 0 {
		return nil, fmt.Errorf("wtql: SET statements have no execution plan")
	}
	if q.Metric != "availability" {
		return nil, fmt.Errorf("wtql: unsupported SIMULATE target %q (only 'availability')", q.Metric)
	}
	trials := e.Trials
	if trials < 1 {
		trials = 5
	}
	workers := 0
	targetCI := 0.0
	screen := e.Screen
	screenMargin := e.ScreenMargin
	screenMarginSet := e.ScreenMarginSet
	crn := e.CRN
	antithetic := e.Antithetic
	failureBias := e.FailureBias

	boolArg := func(dst *bool, v any, name string) error {
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("wtql: %s wants TRUE or FALSE, got %v", name, v)
		}
		*dst = b
		return nil
	}
	floatArg := func(dst *float64, v any, name string) error {
		f, ok := toFloat(v)
		if !ok || f < 0 {
			return fmt.Errorf("wtql: %s wants a non-negative number, got %v", name, v)
		}
		*dst = f
		return nil
	}

	base := core.DefaultScenario()
	// Session-level power settings apply to the base scenario before the
	// per-query WITH overlay (WITH wins).
	if e.PowerCapSet && e.PowerCap > 0 {
		base.Power.Enabled = true
		base.Power.CapFraction = e.PowerCap
	}
	if e.CarbonIntensitySet {
		base.Power.CarbonKgPerKWh = e.CarbonIntensity
	}
	for _, a := range q.With {
		var err error
		switch a.Param {
		case "trials":
			err = setInt(&trials, a.Value, "trials")
		case "workers":
			err = setInt(&workers, a.Value, "workers")
		case "target_ci":
			err = floatArg(&targetCI, a.Value, "target_ci")
		case "screen":
			err = boolArg(&screen, a.Value, "screen")
		case "screen_margin":
			if err = floatArg(&screenMargin, a.Value, "screen_margin"); err == nil {
				screenMarginSet = true
			}
		case "crn":
			err = boolArg(&crn, a.Value, "crn")
		case "antithetic":
			err = boolArg(&antithetic, a.Value, "antithetic")
		case "failure_bias":
			err = floatArg(&failureBias, a.Value, "failure_bias")
		default:
			apply, ok := paramAppliers[a.Param]
			if !ok {
				return nil, fmt.Errorf("wtql: unknown parameter %q in WITH", a.Param)
			}
			err = apply(&base, a.Value)
		}
		if err != nil {
			return nil, err
		}
	}

	// Plan the VARY clauses onto a design space.
	if len(q.Vary) == 0 {
		return nil, fmt.Errorf("wtql: query needs at least one VARY clause")
	}
	dims := make([]design.Dimension, 0, len(q.Vary))
	prune := false
	for _, vc := range q.Vary {
		if execParams[vc.Param] {
			return nil, fmt.Errorf("wtql: %q cannot be varied", vc.Param)
		}
		if _, ok := paramAppliers[vc.Param]; !ok {
			return nil, fmt.Errorf("wtql: unknown parameter %q in VARY", vc.Param)
		}
		values := make([]design.Value, len(vc.Values))
		for i, v := range vc.Values {
			values[i] = design.Value(v)
		}
		dims = append(dims, design.Dimension{Name: vc.Param, Values: values, Monotone: vc.Monotone})
		if vc.Monotone {
			prune = true
		}
	}
	space, err := design.NewSpace(dims...)
	if err != nil {
		return nil, err
	}

	// WHERE splits into SLA-checkable constraints — 'sla.availability'
	// and 'peak_kw' conjuncts, registered so pruning and screening can
	// use failures — plus a general post-filter. peak_kw conjuncts are
	// lifted only when the query enables the power subsystem (the metric
	// does not exist otherwise).
	var slas []sla.SLA
	if q.Where != nil {
		slas = extractAvailabilitySLAs(q.Where)
		if base.Power.Enabled {
			slas = append(slas, extractPowerBudgetSLAs(q.Where)...)
		}
	}

	plan := &Plan{
		Query: q,
		Space: space,
		eng:   e,
		base:  base,
		runner: core.Runner{
			Trials: trials, TargetCI: targetCI, Workers: e.TrialWorkers,
			CRN: crn, Antithetic: antithetic, FailureBias: failureBias,
		},
		slas:    slas,
		prune:   prune,
		workers: workers,
	}
	// Screening is sound for this query only when the WHERE filter is
	// exactly the conjunction the screen can decide — availability
	// lower bounds plus (only when the power subsystem is on, so the
	// budgets are actually lifted into SLAs) peak_kw budgets; other
	// filters fall back to full simulation (nothing is skipped).
	if screen && q.Where != nil && screenableWhere(q.Where, base.Power.Enabled) {
		margin := screenMargin
		if !screenMarginSet {
			margin = core.DefaultScreenMargin
		}
		plan.screen = &core.ScreenRule{Margin: margin}
	}
	return plan, nil
}

// Assemble turns committed point outcomes into the query's final
// ResultSet — metric rows, locally-computed cost columns, WHERE
// filtering, ORDER BY/LIMIT and the display columns. It is the second
// half of RunContext and, equally, the fleet coordinator's merge step:
// the outcomes may come from a local explorer or be reconstructed from
// worker NDJSON streams in global point order, and identical outcomes
// assemble into byte-identical tables.
func (p *Plan) Assemble(outcomes []core.PointOutcome) (*ResultSet, error) {
	q := p.Query
	e := p.eng
	base := p.base
	book := cost.DefaultPriceBook()
	rs := &ResultSet{Query: q}
	for _, out := range outcomes {
		switch {
		case out.Pruned:
			rs.Pruned++
		case out.Screened:
			rs.Screened++
		default:
			rs.Executed++
			if out.FromCache {
				rs.CacheHits++
			}
		}
	}
	for _, out := range outcomes {
		row := Row{
			Config:   map[string]string{},
			Metrics:  map[string]float64{},
			Pruned:   out.Pruned,
			Screened: out.Screened,
		}
		for name, v := range out.Point.Assignments() {
			row.Config[name] = design.FormatValue(v)
		}
		if out.Pruned {
			rs.Rows = append(rs.Rows, row)
			continue
		}
		for k, v := range out.Result.Metrics {
			row.Metrics[k] = v
		}
		// Cost metrics come from the pricing model, not the simulation —
		// except energy: with the power subsystem enabled, the simulated
		// facility kWh replaces the nameplate estimate, making cost.total
		// (and the $/9-of-availability frontier) energy-aware.
		sc := base
		for name, v := range out.Point.Assignments() {
			if err := paramAppliers[name](&sc, any(v)); err != nil {
				return nil, err
			}
		}
		breakdown, err := cost.EstimateWithPower(hardware.DefaultCatalog(), sc.Cluster, sc.Power, book, sc.HorizonHours)
		if err != nil {
			return nil, err
		}
		if kwh, ok := row.Metrics["energy_kwh"]; ok {
			carbon := sc.Power.CarbonKgPerKWh
			if carbon == 0 {
				carbon = power.DefaultCarbon
			}
			breakdown = cost.WithMeasuredEnergy(breakdown, kwh, carbon, book)
			row.Metrics["cost.energy"] = breakdown.EnergyUSD
		}
		row.Metrics["cost.total"] = breakdown.TotalUSD()
		row.Metrics["cost.capex"] = breakdown.CapexUSD
		// storage.overhead is the redundancy expansion factor: the bytes
		// a provider must provision per logical byte, the quantity §1's
		// replication trade-off reduces.
		row.Metrics["storage.overhead"] = sc.Scheme.Overhead()

		passed := true
		if out.Screened {
			// A screened row was decided by the analytic bounds against
			// the lifted SLAs — exactly the WHERE filter (screening is
			// only enabled when every WHERE conjunct is lifted:
			// availability always, peak_kw only with power enabled) —
			// so the decision IS the filter answer.
			passed = out.AllMet
		} else if q.Where != nil {
			passed, err = evalExpr(q.Where, row)
			if err != nil {
				return nil, err
			}
		}
		row.Passed = passed
		rs.Rows = append(rs.Rows, row)

		// Cache-served rows are re-executions of an already-archived
		// simulation: skipping them keeps the §4.4 archive one record
		// per simulation actually run, instead of growing linearly with
		// every repeat of a popular query.
		if e.Store != nil && !out.FromCache {
			if _, err := e.Store.Add(results.Record{
				Scenario: q.Metric,
				Config:   row.Config,
				Metrics:  row.Metrics,
				Seed:     base.Seed,
				Trials:   out.Result.Trials, // 0 for screened rows
				AllMet:   passed,
			}); err != nil {
				return nil, err
			}
		}
	}

	// ORDER BY and LIMIT apply to passing, executed rows first; pruned
	// and failing rows are dropped from the final set.
	var final []Row
	for _, r := range rs.Rows {
		if !r.Pruned && r.Passed {
			final = append(final, r)
		}
	}
	if q.OrderBy != "" {
		key := q.OrderBy
		sort.SliceStable(final, func(i, j int) bool {
			vi, iok := final[i].Metrics[key]
			vj, jok := final[j].Metrics[key]
			if !iok || !jok {
				return iok && !jok
			}
			if q.Desc {
				return vi > vj
			}
			return vi < vj
		})
	}
	if q.Limit > 0 && len(final) > q.Limit {
		final = final[:q.Limit]
	}
	rs.Rows = final
	rs.Columns = columnsFor(q, final)
	return rs, nil
}

// screenableWhere reports whether the WHERE tree is exactly a
// conjunction of comparisons the analytic screen can decide:
// `sla.availability >= x` (or `>`) and — only when allowPeak, i.e. the
// query's power subsystem is enabled so peak_kw budgets are lifted into
// SLAs — `peak_kw <= x` (or `<`). Without allowPeak a peak_kw conjunct
// makes the filter unscreenable, so the point simulates and the
// post-filter reports the unknown metric loudly instead of a screened
// pass silently skipping the condition.
func screenableWhere(e Expr, allowPeak bool) bool {
	switch x := e.(type) {
	case BinaryExpr:
		return x.Op == "AND" && screenableWhere(x.Left, allowPeak) && screenableWhere(x.Right, allowPeak)
	case CompareExpr:
		if x.Ident == "sla.availability" && (x.Op == ">=" || x.Op == ">") {
			return true
		}
		return allowPeak && x.Ident == "peak_kw" && (x.Op == "<=" || x.Op == "<")
	}
	return false
}

// extractAvailabilitySLAs lifts `sla.availability >= x` conjuncts out of
// the WHERE tree so the explorer's pruner sees SLA failures.
func extractAvailabilitySLAs(e Expr) []sla.SLA {
	var out []sla.SLA
	switch x := e.(type) {
	case BinaryExpr:
		if x.Op == "AND" {
			out = append(out, extractAvailabilitySLAs(x.Left)...)
			out = append(out, extractAvailabilitySLAs(x.Right)...)
		}
	case CompareExpr:
		if x.Ident == "sla.availability" && (x.Op == ">=" || x.Op == ">") {
			if f, ok := toFloat(x.Value); ok {
				if a, err := sla.NewAvailability(f); err == nil {
					out = append(out, a)
				}
			}
		}
	}
	return out
}

// extractPowerBudgetSLAs lifts `peak_kw <= x` conjuncts out of the
// WHERE tree so the explorer's power-feasibility screen (and pruning)
// sees the budget. Note that the peak_kw response is typically
// anti-monotone in cluster size: declaring MONOTONE dimensions together
// with a power budget is the query author's assertion, exactly as it is
// for availability.
func extractPowerBudgetSLAs(e Expr) []sla.SLA {
	var out []sla.SLA
	switch x := e.(type) {
	case BinaryExpr:
		if x.Op == "AND" {
			out = append(out, extractPowerBudgetSLAs(x.Left)...)
			out = append(out, extractPowerBudgetSLAs(x.Right)...)
		}
	case CompareExpr:
		if x.Ident == "peak_kw" && (x.Op == "<=" || x.Op == "<") {
			if f, ok := toFloat(x.Value); ok {
				if b, err := sla.NewPowerBudget(f); err == nil {
					out = append(out, b)
				}
			}
		}
	}
	return out
}

// evalExpr evaluates a WHERE tree against a row.
func evalExpr(e Expr, row Row) (bool, error) {
	switch x := e.(type) {
	case BinaryExpr:
		l, err := evalExpr(x.Left, row)
		if err != nil {
			return false, err
		}
		r, err := evalExpr(x.Right, row)
		if err != nil {
			return false, err
		}
		if x.Op == "AND" {
			return l && r, nil
		}
		return l || r, nil
	case NotExpr:
		v, err := evalExpr(x.X, row)
		return !v, err
	case CompareExpr:
		return evalCompare(x, row)
	default:
		return false, fmt.Errorf("wtql: unknown expression node %T", e)
	}
}

func evalCompare(c CompareExpr, row Row) (bool, error) {
	name := c.Ident
	// sla.* aliases resolve to the underlying metric.
	if name == "sla.availability" {
		name = "availability"
	}
	if name == "sla.loss_prob" {
		name = "loss_prob"
	}
	if v, ok := row.Metrics[name]; ok {
		f, isNum := toFloat(c.Value)
		if !isNum {
			return false, fmt.Errorf("wtql: metric %q compared against non-number %v", c.Ident, c.Value)
		}
		return compareFloats(v, c.Op, f)
	}
	if s, ok := row.Config[name]; ok {
		want := design.FormatValue(design.Value(c.Value))
		switch c.Op {
		case "=":
			return s == want, nil
		case "!=":
			return s != want, nil
		default:
			f, isNum := toFloat(c.Value)
			sf, err := parseNumber(s)
			if isNum && err == nil {
				return compareFloats(sf, c.Op, f)
			}
			return false, fmt.Errorf("wtql: config %q supports only = and != for strings", c.Ident)
		}
	}
	return false, fmt.Errorf("wtql: unknown identifier %q in WHERE", c.Ident)
}

func parseNumber(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}

func compareFloats(a float64, op string, b float64) (bool, error) {
	switch op {
	case "=":
		return a == b, nil
	case "!=":
		return a != b, nil
	case "<":
		return a < b, nil
	case "<=":
		return a <= b, nil
	case ">":
		return a > b, nil
	case ">=":
		return a >= b, nil
	default:
		return false, fmt.Errorf("wtql: unknown operator %q", op)
	}
}

// columnsFor picks the display columns: varied dimensions, then the
// simulated metric, cost, the power/energy pair when the sweep
// simulated it, and the ORDER BY key.
func columnsFor(q *Query, rows []Row) []string {
	var cols []string
	for _, vc := range q.Vary {
		cols = append(cols, vc.Param)
	}
	cols = append(cols, "availability", "loss_prob", "cost.total")
	for _, r := range rows {
		if _, ok := r.Metrics["energy_kwh"]; ok {
			cols = append(cols, "energy_kwh", "peak_kw")
			break
		}
	}
	if q.OrderBy != "" {
		found := false
		for _, c := range cols {
			if c == q.OrderBy {
				found = true
			}
		}
		if !found {
			cols = append(cols, q.OrderBy)
		}
	}
	return cols
}

// Render formats the result set as an aligned text table.
func (rs *ResultSet) Render() string {
	var b strings.Builder
	if rs.Settings != nil {
		fmt.Fprintf(&b, "%-28s  %s\n", "setting", "value")
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat("-", 28), strings.Repeat("-", 8))
		for _, a := range rs.Query.Set {
			fmt.Fprintf(&b, "%-28s  %s\n", a.Param, rs.Settings[a.Param])
		}
		return b.String()
	}
	widths := make([]int, len(rs.Columns))
	for i, c := range rs.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(rs.Rows))
	for r, row := range rs.Rows {
		cells[r] = make([]string, len(rs.Columns))
		for i, c := range rs.Columns {
			var v string
			if s, ok := row.Config[c]; ok {
				v = s
			} else if f, ok := row.Metrics[c]; ok {
				v = fmt.Sprintf("%.6g", f)
			} else {
				v = "-"
			}
			cells[r][i] = v
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	for i, c := range rs.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range rs.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range cells {
		for i, v := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(%d rows; %d configurations executed, %d screened, %d pruned)\n",
		len(rs.Rows), rs.Executed, rs.Screened, rs.Pruned)
	return b.String()
}
