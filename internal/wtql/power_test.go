package wtql

import (
	"strings"
	"testing"
)

// TestPowerCapSweep runs the power-cap trade-off query end to end: the
// energy metrics must be simulated, surfaced as columns, and fall as
// the cap deepens.
func TestPowerCapSweep(t *testing.T) {
	e := &Engine{Trials: 2}
	rs, err := e.Execute(`
		SIMULATE availability
		VARY power.cap IN (0, 0.4)
		WITH users = 30, horizon_hours = 500, cluster.nodes = 6
		ORDER BY power.cap ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rs.Rows))
	}
	hasEnergy, hasPeak := false, false
	for _, c := range rs.Columns {
		if c == "energy_kwh" {
			hasEnergy = true
		}
		if c == "peak_kw" {
			hasPeak = true
		}
	}
	if !hasEnergy || !hasPeak {
		t.Fatalf("energy columns missing: %v", rs.Columns)
	}
	uncapped, capped := rs.Rows[0], rs.Rows[1]
	if capped.Metrics["energy_kwh"] >= uncapped.Metrics["energy_kwh"] {
		t.Errorf("capped energy %v not below uncapped %v",
			capped.Metrics["energy_kwh"], uncapped.Metrics["energy_kwh"])
	}
	if capped.Metrics["peak_kw"] >= uncapped.Metrics["peak_kw"] {
		t.Errorf("capped peak %v not below uncapped %v",
			capped.Metrics["peak_kw"], uncapped.Metrics["peak_kw"])
	}
	for _, row := range rs.Rows {
		if _, ok := row.Metrics["cost.energy"]; !ok {
			t.Error("cost.energy missing from a power-enabled row")
		}
		if row.Metrics["pue"] == 0 || row.Metrics["carbon_kg"] == 0 {
			t.Error("pue/carbon metrics missing")
		}
	}
	// The rendered table must carry the energy columns.
	if out := rs.Render(); !strings.Contains(out, "energy_kwh") {
		t.Errorf("rendered table lacks energy column:\n%s", out)
	}
}

// TestDefaultQueryHasNoPowerColumns guards the default-path output: a
// query that never touches power.* must render exactly as before the
// power subsystem existed.
func TestDefaultQueryHasNoPowerColumns(t *testing.T) {
	e := &Engine{Trials: 1}
	rs, err := e.Execute(`
		SIMULATE availability
		VARY storage.replication IN (2)
		WITH users = 20, horizon_hours = 200, cluster.nodes = 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rs.Columns {
		if c == "energy_kwh" || c == "peak_kw" {
			t.Fatalf("power column %q in a power-disabled query", c)
		}
	}
	for _, row := range rs.Rows {
		for _, m := range []string{"energy_kwh", "peak_kw", "pue", "carbon_kg", "cost.energy"} {
			if _, ok := row.Metrics[m]; ok {
				t.Errorf("power metric %q present in a power-disabled row", m)
			}
		}
	}
}

// TestSetPowerKnobs exercises the session-level SET path: the cap knob
// enables the subsystem for subsequent queries, WITH overrides it, and
// bad values are rejected atomically.
func TestSetPowerKnobs(t *testing.T) {
	e := &Engine{Trials: 1}
	rs, err := e.Execute(`SET power.cap = 0.3, power.carbon_intensity = 0.2`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Settings["power.cap"] != "0.3" || rs.Settings["power.carbon_intensity"] != "0.2" {
		t.Fatalf("settings not applied: %v", rs.Settings)
	}
	if !e.PowerCapSet || e.PowerCap != 0.3 || !e.CarbonIntensitySet {
		t.Fatalf("engine state: %+v", e)
	}

	out, err := e.Execute(`
		SIMULATE availability
		VARY storage.replication IN (2)
		WITH users = 20, horizon_hours = 200, cluster.nodes = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("rows = %d", len(out.Rows))
	}
	if _, ok := out.Rows[0].Metrics["energy_kwh"]; !ok {
		t.Fatal("SET power.cap did not enable the power subsystem")
	}
	// Carbon intensity must flow through: carbon = energy * 0.2.
	row := out.Rows[0]
	if got, want := row.Metrics["carbon_kg"], row.Metrics["energy_kwh"]*0.2; got != want {
		t.Errorf("carbon = %v, want %v", got, want)
	}

	// Bad values are rejected and the engine stays untouched.
	if _, err := e.Execute(`SET power.cap = 1.5`); err == nil {
		t.Error("power.cap = 1.5 accepted")
	}
	if _, err := e.Execute(`SET power.carbon_intensity = -1`); err == nil {
		t.Error("negative carbon intensity accepted")
	}
	if e.PowerCap != 0.3 {
		t.Error("failed SET mutated the engine")
	}

	// SET power.cap = 0 turns the session cap back off.
	if _, err := e.Execute(`SET power.cap = 0`); err != nil {
		t.Fatal(err)
	}
	out, err = e.Execute(`
		SIMULATE availability
		VARY storage.replication IN (2)
		WITH users = 20, horizon_hours = 200, cluster.nodes = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Rows[0].Metrics["energy_kwh"]; ok {
		t.Fatal("power subsystem still on after SET power.cap = 0")
	}
}

// TestPowerParamValidation checks the WITH-level appliers' bounds.
func TestPowerParamValidation(t *testing.T) {
	for _, q := range []string{
		`SIMULATE availability VARY cluster.nodes IN (5) WITH power.cap = 1`,
		`SIMULATE availability VARY cluster.nodes IN (5) WITH power.cap = -0.1`,
		`SIMULATE availability VARY cluster.nodes IN (5) WITH power.pue = 0.5`,
		`SIMULATE availability VARY cluster.nodes IN (5) WITH power.utilization = 2`,
		`SIMULATE availability VARY cluster.nodes IN (5) WITH power.ups_minutes = -1`,
		`SIMULATE availability VARY cluster.nodes IN (5) WITH power.generator_start_prob = 1.5`,
		`SIMULATE availability VARY cluster.nodes IN (5) WITH power.pdu_spec = 'no-such-spec'`,
		`SIMULATE availability VARY cluster.nodes IN (5) WITH power.utility_ttf = 'frechet(1)'`,
		`SIMULATE availability VARY cluster.nodes IN (5) WITH power.enabled = 3`,
	} {
		if _, err := (&Engine{Trials: 1}).Execute(q); err == nil {
			t.Errorf("bad power parameter accepted: %s", q)
		}
	}
}

// TestPowerBudgetWhere runs a WHERE with a peak_kw budget over a
// power-enabled sweep: oversized clusters must be filtered out.
func TestPowerBudgetWhere(t *testing.T) {
	e := &Engine{Trials: 1}
	rs, err := e.Execute(`
		SIMULATE availability
		VARY cluster.nodes IN (5, 40)
		WITH users = 20, horizon_hours = 200, power.enabled = TRUE
		WHERE peak_kw <= 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (the 40-node cluster is over budget)", len(rs.Rows))
	}
	if rs.Rows[0].Config["cluster.nodes"] != "5" {
		t.Fatalf("wrong survivor: %v", rs.Rows[0].Config)
	}
}

// TestPowerFeasibilityScreenInQuery: with screening on, a power budget
// far below the idle floor is decided without simulation.
func TestPowerFeasibilityScreenInQuery(t *testing.T) {
	e := &Engine{Trials: 1, Screen: true}
	rs, err := e.Execute(`
		SIMULATE availability
		VARY cluster.nodes IN (40)
		WITH users = 20, horizon_hours = 200, power.enabled = TRUE
		WHERE peak_kw <= 0.01`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Screened != 1 {
		t.Fatalf("screened = %d, want 1 (infeasible budget decided analytically)", rs.Screened)
	}
	if len(rs.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(rs.Rows))
	}
}

// TestPeakKWWhereNotScreenedWithoutPower is the regression guard for
// the screening gate: with screening on but power disabled, a peak_kw
// conjunct must not be silently skipped by a screened pass — the point
// simulates and the post-filter reports the missing metric loudly.
func TestPeakKWWhereNotScreenedWithoutPower(t *testing.T) {
	e := &Engine{Trials: 1, Screen: true}
	_, err := e.Execute(`
		SIMULATE availability
		VARY cluster.nodes IN (5)
		WITH users = 20, horizon_hours = 200
		WHERE sla.availability >= 0.000001 AND peak_kw <= 100`)
	if err == nil {
		t.Fatal("peak_kw WHERE on a power-disabled query silently passed")
	}
	if !strings.Contains(err.Error(), "peak_kw") {
		t.Fatalf("error does not name the missing metric: %v", err)
	}
}
