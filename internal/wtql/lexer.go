// Package wtql implements the Wind Tunnel Query Language, the declarative
// interface §4.1 of the paper calls for: design questions are posed as
// queries over the configuration space rather than as imperative
// simulation scripts, and the engine plans, prunes and parallelizes their
// execution (§4.2).
//
// Grammar (keywords case-insensitive):
//
//	stmt   := query | set
//	query  := SIMULATE ident
//	          [ VARY vary ("," vary)* ]
//	          [ WITH assign ("," assign)* ]
//	          [ WHERE expr ]
//	          [ ORDER BY ident [ASC|DESC] ]
//	          [ LIMIT int ] [ ";" ]
//	set    := SET assign ("," assign)* [ ";" ]
//	vary   := dotted IN "(" value ("," value)* ")" [ MONOTONE ]
//	assign := dotted "=" value
//	expr   := or ; or := and (OR and)* ; and := not (AND not)*
//	not    := NOT not | "(" expr ")" | dotted cmp operand
//	cmp    := "=" | "!=" | "<" | "<=" | ">" | ">="
//
// SET mutates engine session settings (SET values additionally accept
// bare words, so `SET explore.screen = on` works):
//
//	SET explore.screen = on;           -- analytic screening (§2.2)
//	SET explore.screen_margin = 1.0;   -- screening safety factor
//	SET runner.crn = on;               -- common random numbers (§4.2)
//	SET runner.antithetic = on;        -- antithetic trial pairing
//	SET runner.failure_bias = 3;       -- failure-biased importance sampling
//
// Example:
//
//	SIMULATE availability
//	VARY cluster.nodes IN (10, 30),
//	     storage.replication IN (3, 5) MONOTONE,
//	     storage.placement IN ('random', 'roundrobin')
//	WITH users = 1000, trials = 20, horizon_hours = 8766
//	WHERE sla.availability >= 0.999 AND cost.total <= 250000
//	ORDER BY cost.total ASC
//	LIMIT 3;
package wtql

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokLParen
	tokRParen
	tokSemicolon
	tokOp // = != < <= > >=
	tokKeyword
)

var keywords = map[string]bool{
	"SIMULATE": true, "VARY": true, "IN": true, "WITH": true,
	"WHERE": true, "ORDER": true, "BY": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "ASC": true, "DESC": true,
	"MONOTONE": true, "TRUE": true, "FALSE": true, "SET": true,
}

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written
	pos  int    // byte offset; rendered as line:column in error messages
}

// posAt renders the 1-based line:column of byte offset off in src — the
// position format parse errors report. Server clients get these errors
// back as JSON, and a line:column is actionable in a multi-line query
// where a byte offset is not.
func posAt(src string, off int) string {
	line, col := 1, 1
	for i := 0; i < off && i < len(src); i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("%d:%d", line, col)
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemicolon, ";", i})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < n && input[j] != quote {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("wtql: unterminated string at %s", posAt(input, i))
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("wtql: unexpected '!' at %s", posAt(input, i))
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < n && input[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case isDigit(c) || (c == '-' && i+1 < n && isDigit(input[i+1])):
			j := i + 1
			for j < n && (isDigit(input[j]) || input[j] == '.' || input[j] == 'e' ||
				input[j] == 'E' || ((input[j] == '+' || input[j] == '-') &&
				(input[j-1] == 'e' || input[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentPart(input[j]) {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{tokKeyword, upper, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("wtql: unexpected character %q at %s", c, posAt(input, i))
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || isLetter(c) }
func isLetter(c byte) bool     { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '.' }
