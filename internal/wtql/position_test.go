package wtql

import (
	"strings"
	"testing"
)

// TestParseErrorsReportLineColumn pins the error-position format: server
// clients receive parse errors as JSON and need line:column, not byte
// offsets.
func TestParseErrorsReportLineColumn(t *testing.T) {
	cases := []struct {
		name  string
		query string
		want  string // expected line:column substring
	}{
		{
			name:  "bad keyword on line 1",
			query: "SIMULATE",
			want:  "at 1:9", // EOF position after the keyword
		},
		{
			name: "missing IN on line 2",
			query: "SIMULATE availability\n" +
				"VARY cluster.nodes (10, 20)",
			want: "at 2:20",
		},
		{
			name: "bad WHERE operand on line 3",
			query: "SIMULATE availability\n" +
				"VARY cluster.nodes IN (10, 20)\n" +
				"WHERE AND",
			want: "at 3:7",
		},
		{
			name: "unexpected character line 2",
			query: "SIMULATE availability\n" +
				"VARY cluster.nodes IN (10 # 20)",
			want: "at 2:27",
		},
		{
			name: "unterminated string",
			query: "SIMULATE availability\n" +
				"VARY storage.placement IN ('random",
			want: "at 2:28",
		},
		// SET power.* statements: parse errors must carry line:column
		// too — clients of windtunneld see these as JSON error strings.
		{
			name:  "SET power.cap missing '='",
			query: "SET power.cap 0.2",
			want:  "at 1:15",
		},
		{
			name: "SET power.cap missing value on line 2",
			query: "SET power.carbon_intensity = 0.4,\n" +
				"    power.cap =",
			want: "at 2:16", // EOF position after '='
		},
		{
			name: "SET power.carbon_intensity bad token on line 3",
			query: "SET power.cap = 0.2,\n" +
				"    power.carbon_intensity\n" +
				"    # 0.4",
			want: "at 3:5",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.query)
			if err == nil {
				t.Fatalf("query unexpectedly parsed: %q", tc.query)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain position %q", err, tc.want)
			}
			if strings.Contains(err.Error(), "offset") {
				t.Fatalf("error still reports a byte offset: %q", err)
			}
		})
	}
}
