package wtql

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SIMULATE availability VARY x IN (1, 'two') WHERE a >= 0.5;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokKeyword, tokIdent, tokKeyword, tokIdent, tokKeyword,
		tokLParen, tokNumber, tokComma, tokString, tokRParen,
		tokKeyword, tokIdent, tokOp, tokNumber, tokSemicolon, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d: kind %d, want %d (%q)", i, toks[i].kind, k, toks[i].text)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "a ! b", "a @ b"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) accepted", bad)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("1 2.5 1e-3 -4")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", "1e-3", "-4"}
	for i, w := range want {
		if toks[i].kind != tokNumber || toks[i].text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

const fullQuery = `
SIMULATE availability
VARY cluster.nodes IN (10, 30),
     storage.replication IN (3, 5) MONOTONE,
     storage.placement IN ('random', 'roundrobin')
WITH users = 1000, trials = 3, horizon_hours = 8766
WHERE sla.availability >= 0.9 AND cost.total <= 10000000
ORDER BY cost.total ASC
LIMIT 3;
`

func TestParseFullQuery(t *testing.T) {
	q, err := Parse(fullQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q.Metric != "availability" {
		t.Errorf("metric = %q", q.Metric)
	}
	if len(q.Vary) != 3 {
		t.Fatalf("vary clauses = %d, want 3", len(q.Vary))
	}
	if q.Vary[0].Param != "cluster.nodes" || len(q.Vary[0].Values) != 2 {
		t.Errorf("vary[0] = %+v", q.Vary[0])
	}
	if !q.Vary[1].Monotone {
		t.Error("replication should be MONOTONE")
	}
	if q.Vary[2].Values[0] != "random" {
		t.Errorf("vary[2] values = %v", q.Vary[2].Values)
	}
	if len(q.With) != 3 {
		t.Errorf("with = %d, want 3", len(q.With))
	}
	if q.Where == nil {
		t.Fatal("no WHERE parsed")
	}
	be, ok := q.Where.(BinaryExpr)
	if !ok || be.Op != "AND" {
		t.Fatalf("where = %#v", q.Where)
	}
	if q.OrderBy != "cost.total" || q.Desc {
		t.Errorf("order by = %q desc=%v", q.OrderBy, q.Desc)
	}
	if q.Limit != 3 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	q, err := Parse("SIMULATE availability VARY users IN (1) WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	// AND binds tighter: OR(a=1, AND(b=2, c=3)).
	or, ok := q.Where.(BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %#v, want OR", q.Where)
	}
	and, ok := or.Right.(BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right = %#v, want AND", or.Right)
	}
}

func TestParseNotAndParens(t *testing.T) {
	q, err := Parse("SIMULATE availability VARY users IN (1) WHERE NOT (a = 1 OR b = 2)")
	if err != nil {
		t.Fatal(err)
	}
	not, ok := q.Where.(NotExpr)
	if !ok {
		t.Fatalf("top = %#v, want NOT", q.Where)
	}
	if _, ok := not.X.(BinaryExpr); !ok {
		t.Fatalf("inner = %#v, want OR", not.X)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"VARY x IN (1)",
		"SIMULATE",
		"SIMULATE availability VARY x",
		"SIMULATE availability VARY x IN ()",
		"SIMULATE availability VARY x IN (1",
		"SIMULATE availability WITH x 3",
		"SIMULATE availability WHERE >= 3",
		"SIMULATE availability ORDER x",
		"SIMULATE availability LIMIT 0",
		"SIMULATE availability LIMIT -1",
		"SIMULATE availability; trailing",
	}
	for _, b := range bad {
		if _, err := Parse(b); err == nil {
			t.Errorf("Parse(%q) accepted", b)
		}
	}
}

func TestEvalCompare(t *testing.T) {
	row := Row{
		Config:  map[string]string{"storage.placement": "random", "cluster.nodes": "10"},
		Metrics: map[string]float64{"availability": 0.995, "cost.total": 5000},
	}
	cases := []struct {
		expr string
		want bool
	}{
		{"sla.availability >= 0.99", true},
		{"sla.availability >= 0.999", false},
		{"availability < 1", true},
		{"cost.total <= 5000", true},
		{"storage.placement = 'random'", true},
		{"storage.placement != 'random'", false},
		{"cluster.nodes >= 5", true},
		{"cluster.nodes > 10", false},
	}
	for _, c := range cases {
		q, err := Parse("SIMULATE availability VARY users IN (1) WHERE " + c.expr)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		got, err := evalExpr(q.Where, row)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
	// Unknown identifier errors.
	q, err := Parse("SIMULATE availability VARY users IN (1) WHERE bogus = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evalExpr(q.Where, row); err == nil {
		t.Error("unknown identifier accepted")
	}
}

func TestExtractAvailabilitySLAs(t *testing.T) {
	q, err := Parse("SIMULATE availability VARY users IN (1) WHERE sla.availability >= 0.99 AND cost.total <= 5")
	if err != nil {
		t.Fatal(err)
	}
	slas := extractAvailabilitySLAs(q.Where)
	if len(slas) != 1 {
		t.Fatalf("extracted %d SLAs, want 1", len(slas))
	}
	// OR'd constraints must NOT be extracted (not conjunctive).
	q, err = Parse("SIMULATE availability VARY users IN (1) WHERE sla.availability >= 0.99 OR cost.total <= 5")
	if err != nil {
		t.Fatal(err)
	}
	if got := extractAvailabilitySLAs(q.Where); len(got) != 0 {
		t.Fatalf("extracted %d SLAs from OR, want 0", len(got))
	}
}

func TestEngineEndToEnd(t *testing.T) {
	e := &Engine{Trials: 2}
	rs, err := e.Execute(`
		SIMULATE availability
		VARY storage.replication IN (3, 5) MONOTONE,
		     storage.placement IN ('random', 'roundrobin')
		WITH users = 50, trials = 2, horizon_hours = 1000,
		     cluster.racks = 2, cluster.nodes_per_rack = 5, object_mb = 10
		WHERE sla.availability >= 0.0
		ORDER BY cost.total ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Executed == 0 {
		t.Fatal("nothing executed")
	}
	if len(rs.Rows) == 0 {
		t.Fatal("no rows returned")
	}
	for _, row := range rs.Rows {
		if _, ok := row.Metrics["availability"]; !ok {
			t.Error("row missing availability metric")
		}
		if _, ok := row.Metrics["cost.total"]; !ok {
			t.Error("row missing cost metric")
		}
	}
	// Ordered ascending by cost.
	for i := 1; i < len(rs.Rows); i++ {
		if rs.Rows[i].Metrics["cost.total"] < rs.Rows[i-1].Metrics["cost.total"] {
			t.Error("rows not ordered by cost")
		}
	}
	table := rs.Render()
	if !strings.Contains(table, "availability") || !strings.Contains(table, "rows") {
		t.Errorf("table render missing headers:\n%s", table)
	}
}

func TestEngineLimit(t *testing.T) {
	e := &Engine{}
	rs, err := e.Execute(`
		SIMULATE availability
		VARY storage.replication IN (3, 5)
		WITH users = 20, trials = 1, horizon_hours = 500,
		     cluster.racks = 1, cluster.nodes_per_rack = 6, object_mb = 5
		LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (LIMIT)", len(rs.Rows))
	}
}

func TestEngineRejectsBadQueries(t *testing.T) {
	e := &Engine{}
	bad := []string{
		"SIMULATE latency VARY users IN (1)",                  // unsupported metric
		"SIMULATE availability VARY bogus.param IN (1)",       // unknown vary param
		"SIMULATE availability WITH users = 10",               // no VARY
		"SIMULATE availability VARY trials IN (1, 2)",         // exec param varied
		"SIMULATE availability VARY users IN (1) WITH q = 1",  // unknown with param
		"SIMULATE availability VARY net.nic IN ('warp-coil')", // unknown spec
	}
	for _, b := range bad {
		if _, err := e.Execute(b); err == nil {
			t.Errorf("Execute(%q) accepted", b)
		}
	}
}

func TestEnginePruningViaMonotone(t *testing.T) {
	// An unachievable availability bound with a MONOTONE dimension must
	// prune at least one configuration.
	e := &Engine{}
	rs, err := e.Execute(`
		SIMULATE availability
		VARY storage.replication IN (2, 3) MONOTONE
		WITH users = 50, trials = 1, horizon_hours = 2000, object_mb = 5,
		     cluster.racks = 1, cluster.nodes_per_rack = 8,
		     node.mttf_hours = 300, node.repair_hours = 24,
		     repair.detection_hours = 50
		WHERE sla.availability >= 0.99999999`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Pruned == 0 {
		t.Fatalf("no configurations pruned (executed %d)", rs.Executed)
	}
	if len(rs.Rows) != 0 {
		t.Fatalf("rows = %d, want 0 (nothing passes)", len(rs.Rows))
	}
}

func TestEngineDistSpecParams(t *testing.T) {
	// node.ttf / node.repair / repair.detection take full distribution
	// spec strings, so scenarios can declare arbitrary failure models.
	e := &Engine{}
	rs, err := e.Execute(`
		SIMULATE availability
		VARY storage.replication IN (1, 3)
		WITH users = 20, trials = 1, horizon_hours = 500, object_mb = 5,
		     cluster.racks = 1, cluster.nodes_per_rack = 6,
		     node.ttf = 'weibull(shape=0.7, scale=600)',
		     node.repair = 'mix(0.8*lognormal(mean=4, cv=1), 0.2*det(48))',
		     repair.detection = 'det(1)'`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Executed != 2 || len(rs.Rows) != 2 {
		t.Fatalf("executed %d rows %d, want 2 and 2", rs.Executed, len(rs.Rows))
	}
	bad := []string{
		"SIMULATE availability VARY users IN (20) WITH node.ttf = 'frechet(1, 2)'",
		"SIMULATE availability VARY users IN (20) WITH node.ttf = 5",
		"SIMULATE availability VARY users IN (20) WITH node.repair = 'weibull(shape=0)'",
	}
	for _, b := range bad {
		if _, err := e.Execute(b); err == nil {
			t.Errorf("Execute(%q) accepted", b)
		}
	}
}

func TestSetStatement(t *testing.T) {
	e := &Engine{}
	rs, err := e.Execute(`SET explore.screen = on, explore.screen_margin = 1.5;`)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Screen || e.ScreenMargin != 1.5 {
		t.Fatalf("SET did not apply: screen=%v margin=%v", e.Screen, e.ScreenMargin)
	}
	if rs.Settings["explore.screen"] != "true" || rs.Settings["explore.screen_margin"] != "1.5" {
		t.Fatalf("settings echo wrong: %v", rs.Settings)
	}
	if out := rs.Render(); !strings.Contains(out, "explore.screen") {
		t.Errorf("SET render missing setting:\n%s", out)
	}
	if _, err := e.Execute(`SET runner.antithetic = TRUE`); err != nil || !e.Antithetic {
		t.Fatalf("runner.antithetic SET failed: %v", err)
	}
	if _, err := e.Execute(`SET runner.crn = off`); err != nil || e.CRN {
		t.Fatalf("runner.crn SET failed: %v", err)
	}
	if _, err := e.Execute(`SET runner.failure_bias = 3`); err != nil || e.FailureBias != 3 {
		t.Fatalf("runner.failure_bias SET failed: %v", err)
	}
	for _, bad := range []string{
		"SET bogus.setting = on",
		"SET explore.screen = 7up",
		"SET explore.screen_margin = -1",
		"SET runner.failure_bias = 'lots'",
	} {
		if _, err := e.Execute(bad); err == nil {
			t.Errorf("Execute(%q) accepted", bad)
		}
	}
}

func TestEngineScreening(t *testing.T) {
	e := &Engine{}
	if _, err := e.Execute(`SET explore.screen = on`); err != nil {
		t.Fatal(err)
	}
	// Replication 7 and 9 clear availability 0.9 analytically (the
	// default scenario's failure model); 1 and 3 must simulate.
	rs, err := e.Execute(`
		SIMULATE availability
		VARY storage.replication IN (1, 3, 7, 9)
		WITH users = 100, trials = 2, horizon_hours = 2000, object_mb = 5,
		     cluster.racks = 2, cluster.nodes_per_rack = 5,
		     node.mttf_hours = 500, node.repair_hours = 12,
		     repair.detection_hours = 6
		WHERE sla.availability >= 0.9`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Screened == 0 {
		t.Fatalf("no configurations screened (executed %d)", rs.Executed)
	}
	if rs.Screened+rs.Executed != 4 {
		t.Fatalf("screened %d + executed %d != 4 (silent skip!)", rs.Screened, rs.Executed)
	}
	if out := rs.Render(); !strings.Contains(out, "screened") {
		t.Errorf("render does not report screening:\n%s", out)
	}
	// Screened rows carry the analytic availability estimate.
	found := false
	for _, row := range rs.Rows {
		if row.Screened {
			found = true
			if row.Metrics["analytic"] != 1 {
				t.Errorf("screened row missing analytic marker: %v", row.Metrics)
			}
		}
	}
	if !found {
		t.Error("no screened row survived the WHERE filter")
	}

	// A WHERE clause the screen cannot decide disables screening for the
	// query — everything simulates, nothing is silently skipped.
	rs2, err := e.Execute(`
		SIMULATE availability
		VARY storage.replication IN (3, 7)
		WITH users = 20, trials = 1, horizon_hours = 500, object_mb = 5,
		     cluster.racks = 1, cluster.nodes_per_rack = 8
		WHERE sla.availability >= 0.9 AND cost.total <= 10000000`)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Screened != 0 || rs2.Executed != 2 {
		t.Fatalf("mixed WHERE screened %d executed %d, want 0 and 2", rs2.Screened, rs2.Executed)
	}
}

func TestEngineVarianceReductionParams(t *testing.T) {
	e := &Engine{}
	rs, err := e.Execute(`
		SIMULATE availability
		VARY storage.replication IN (1, 3)
		WITH users = 20, trials = 4, horizon_hours = 500, object_mb = 5,
		     cluster.racks = 1, cluster.nodes_per_rack = 6,
		     antithetic = TRUE, crn = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Executed != 2 {
		t.Fatalf("executed %d, want 2", rs.Executed)
	}
	if _, err := e.Execute(`
		SIMULATE availability VARY storage.replication IN (3)
		WITH users = 20, trials = 2, horizon_hours = 500, antithetic = 7`); err == nil {
		t.Error("non-boolean antithetic accepted")
	}
	if _, err := e.Execute(`
		SIMULATE availability VARY storage.replication IN (3)
		WITH users = 20, trials = 2, horizon_hours = 500, failure_bias = 'big'`); err == nil {
		t.Error("non-numeric failure_bias accepted")
	}
}

func TestSetStatementAtomic(t *testing.T) {
	e := &Engine{}
	if _, err := e.Execute(`SET runner.antithetic = on, runner.failure_bias = -1`); err == nil {
		t.Fatal("invalid SET accepted")
	}
	if e.Antithetic {
		t.Error("failed SET statement partially applied (runner.antithetic mutated)")
	}
}

func TestScreenMarginZeroIsExact(t *testing.T) {
	e := &Engine{}
	if _, err := e.Execute(`SET explore.screen_margin = 0`); err != nil {
		t.Fatal(err)
	}
	if !e.ScreenMarginSet || e.ScreenMargin != 0 {
		t.Fatalf("margin 0 not recorded as explicit: set=%v margin=%v", e.ScreenMarginSet, e.ScreenMargin)
	}
}
