package wtql

import (
	"fmt"
	"strconv"
)

// Query is the parsed AST of a WTQL statement. A SET statement parses
// into a Query with Set filled and Metric empty.
type Query struct {
	Metric  string // SIMULATE target, e.g. "availability"
	Vary    []VaryClause
	With    []Assign
	Where   Expr // nil when absent
	OrderBy string
	Desc    bool
	Limit   int      // 0 = unlimited
	Set     []Assign // SET statement assignments (engine settings)
}

// VaryClause is one swept dimension.
type VaryClause struct {
	Param    string
	Values   []any // float64 or string
	Monotone bool
}

// Assign is one fixed parameter.
type Assign struct {
	Param string
	Value any // float64, string or bool
}

// Expr is a boolean expression over metrics and configuration values.
type Expr interface{ exprNode() }

// BinaryExpr is AND/OR.
type BinaryExpr struct {
	Op          string // "AND" | "OR"
	Left, Right Expr
}

// NotExpr negates its operand.
type NotExpr struct{ X Expr }

// CompareExpr compares an identifier against a literal.
type CompareExpr struct {
	Ident string
	Op    string // = != < <= > >=
	Value any    // float64 or string
}

func (BinaryExpr) exprNode()  {}
func (NotExpr) exprNode()     {}
func (CompareExpr) exprNode() {}

// Parse lexes and parses one WTQL query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
	src  string // original query text, for line:column error positions
}

// at renders a token offset as line:column.
func (p *parser) at(off int) string { return posAt(p.src, off) }

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("wtql: expected %s at %s, got %q", kw, p.at(t.pos), t.text)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	if p.cur().kind == tokKeyword && p.cur().text == "SET" {
		return p.parseSet()
	}
	if err := p.expectKeyword("SIMULATE"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("wtql: expected metric name after SIMULATE at %s", p.at(t.pos))
	}
	q := &Query{Metric: t.text}

	if p.acceptKeyword("VARY") {
		for {
			vc, err := p.parseVary()
			if err != nil {
				return nil, err
			}
			q.Vary = append(q.Vary, vc)
			if p.cur().kind != tokComma {
				break
			}
			p.pos++
		}
	}
	if p.acceptKeyword("WITH") {
		for {
			a, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			q.With = append(q.With, a)
			if p.cur().kind != tokComma {
				break
			}
			p.pos++
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("wtql: expected identifier after ORDER BY at %s", p.at(t.pos))
		}
		q.OrderBy = t.text
		if p.acceptKeyword("DESC") {
			q.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("wtql: expected number after LIMIT at %s", p.at(t.pos))
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("wtql: LIMIT must be a positive integer, got %q", t.text)
		}
		q.Limit = n
	}
	if p.cur().kind == tokSemicolon {
		p.pos++
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("wtql: unexpected trailing input %q at %s", p.cur().text, p.at(p.cur().pos))
	}
	return q, nil
}

// parseSet parses `SET assign ("," assign)* [";"]`. Setting values
// additionally accept bare identifiers as strings so toggles read
// naturally: `SET explore.screen = on`.
func (p *parser) parseSet() (*Query, error) {
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("wtql: expected setting name in SET at %s", p.at(t.pos))
		}
		a := Assign{Param: t.text}
		op := p.next()
		if op.kind != tokOp || op.text != "=" {
			return nil, fmt.Errorf("wtql: expected '=' after %s at %s", a.Param, p.at(op.pos))
		}
		if p.cur().kind == tokIdent {
			a.Value = p.next().text
		} else {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			a.Value = v
		}
		q.Set = append(q.Set, a)
		if p.cur().kind != tokComma {
			break
		}
		p.pos++
	}
	if p.cur().kind == tokSemicolon {
		p.pos++
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("wtql: unexpected trailing input %q at %s", p.cur().text, p.at(p.cur().pos))
	}
	return q, nil
}

func (p *parser) parseVary() (VaryClause, error) {
	t := p.next()
	if t.kind != tokIdent {
		return VaryClause{}, fmt.Errorf("wtql: expected parameter name in VARY at %s", p.at(t.pos))
	}
	vc := VaryClause{Param: t.text}
	if err := p.expectKeyword("IN"); err != nil {
		return VaryClause{}, err
	}
	if tk := p.next(); tk.kind != tokLParen {
		return VaryClause{}, fmt.Errorf("wtql: expected '(' after IN at %s", p.at(tk.pos))
	}
	for {
		v, err := p.parseValue()
		if err != nil {
			return VaryClause{}, err
		}
		vc.Values = append(vc.Values, v)
		tk := p.next()
		if tk.kind == tokRParen {
			break
		}
		if tk.kind != tokComma {
			return VaryClause{}, fmt.Errorf("wtql: expected ',' or ')' in VARY list at %s", p.at(tk.pos))
		}
	}
	if p.acceptKeyword("MONOTONE") {
		vc.Monotone = true
	}
	return vc, nil
}

func (p *parser) parseAssign() (Assign, error) {
	t := p.next()
	if t.kind != tokIdent {
		return Assign{}, fmt.Errorf("wtql: expected parameter name in WITH at %s", p.at(t.pos))
	}
	a := Assign{Param: t.text}
	op := p.next()
	if op.kind != tokOp || op.text != "=" {
		return Assign{}, fmt.Errorf("wtql: expected '=' after %s at %s", a.Param, p.at(op.pos))
	}
	v, err := p.parseValue()
	if err != nil {
		return Assign{}, err
	}
	a.Value = v
	return a, nil
}

func (p *parser) parseValue() (any, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("wtql: bad number %q at %s", t.text, p.at(t.pos))
		}
		return f, nil
	case tokString:
		return t.text, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			return true, nil
		case "FALSE":
			return false, nil
		}
	}
	return nil, fmt.Errorf("wtql: expected value at %s, got %q", p.at(t.pos), t.text)
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{X: x}, nil
	}
	if p.cur().kind == tokLParen {
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if tk := p.next(); tk.kind != tokRParen {
			return nil, fmt.Errorf("wtql: expected ')' at %s", p.at(tk.pos))
		}
		return e, nil
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("wtql: expected identifier in WHERE at %s, got %q", p.at(t.pos), t.text)
	}
	op := p.next()
	if op.kind != tokOp {
		return nil, fmt.Errorf("wtql: expected comparison operator at %s", p.at(op.pos))
	}
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	return CompareExpr{Ident: t.text, Op: op.text, Value: v}, nil
}
