package wtql

import (
	"testing"

	"repro/internal/results"
)

const archiveQuery = `
	SIMULATE availability
	VARY storage.replication IN (2, 3)
	WITH users = 30, trials = 1, horizon_hours = 500, object_mb = 5,
	     cluster.racks = 1, cluster.nodes_per_rack = 5, seed = 3`

func TestEngineArchivesExecutedConfigs(t *testing.T) {
	store := results.NewStore()
	e := &Engine{Store: store}
	if _, err := e.Execute(archiveQuery); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("archived %d runs, want 2", store.Len())
	}
	for _, rec := range store.All() {
		if rec.Config["storage.replication"] == "" {
			t.Errorf("record missing config: %v", rec.Config)
		}
		if _, ok := rec.Metrics["availability"]; !ok {
			t.Errorf("record missing availability metric")
		}
		if rec.Trials != 1 || rec.Seed != 3 {
			t.Errorf("record trials/seed = %d/%d", rec.Trials, rec.Seed)
		}
	}
}

func TestEngineSimilarConfigurationSearch(t *testing.T) {
	store := results.NewStore()
	e := &Engine{Store: store}
	if _, err := e.Execute(archiveQuery); err != nil {
		t.Fatal(err)
	}
	// §4.4: "have I already explored a configuration similar to this?"
	nn, err := e.Similar(map[string]string{"storage.replication": "3"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 1 {
		t.Fatalf("got %d neighbors, want 1", len(nn))
	}
	if nn[0].Record.Config["storage.replication"] != "3" {
		t.Errorf("nearest config = %v, want replication=3", nn[0].Record.Config)
	}
	// Without a store, Similar errors.
	if _, err := (&Engine{}).Similar(nil, 1); err == nil {
		t.Error("Similar without store accepted")
	}
}

func TestEngineWithoutStoreStillWorks(t *testing.T) {
	if _, err := (&Engine{}).Execute(archiveQuery); err != nil {
		t.Fatal(err)
	}
}
