package validate

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestRunAllPasses(t *testing.T) {
	reports, err := RunAll(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 7 {
		t.Fatalf("only %d validation reports", len(reports))
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("validation failed: %v", r)
		}
		if r.String() == "" {
			t.Error("empty report string")
		}
	}
}

func TestMM1Validation(t *testing.T) {
	r, err := MM1SojournTime(0.5, 1, 200000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Errorf("M/M/1 validation failed: %v", r)
	}
	if math.Abs(r.Analytic-2) > 1e-9 {
		t.Errorf("analytic W = %v, want 2", r.Analytic)
	}
	// Unstable parameters rejected.
	if _, err := MM1SojournTime(2, 1, 100, 7); err == nil {
		t.Error("unstable M/M/1 accepted")
	}
}

func TestComponentAvailabilityValidation(t *testing.T) {
	r, err := ComponentAvailability(1000, 10, 3_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Errorf("component availability validation failed: %v", r)
	}
	if _, err := ComponentAvailability(0, 1, 1, 1); err == nil {
		t.Error("invalid mttf accepted")
	}
}

func TestExponentialAssumptionErrorGrowsWithShapeDistance(t *testing.T) {
	// §2.2: the further the interarrival/service distributions are from
	// exponential, the worse the M/M/1 prediction of waiting time.
	simExp, mm1Exp, err := ExponentialAssumptionError(1.0, 1.0, 0.8, 1, 300000, 11)
	if err != nil {
		t.Fatal(err)
	}
	simW, mm1W, err := ExponentialAssumptionError(0.5, 1.2, 0.8, 1, 300000, 11)
	if err != nil {
		t.Fatal(err)
	}
	errExp := relErr(simExp, mm1Exp)
	errW := relErr(simW, mm1W)
	if errExp > 0.1 {
		t.Errorf("exponential case should validate well, rel err %v", errExp)
	}
	if errW < 2*errExp {
		t.Errorf("Weibull(0.5)/LogNormal model error %v should far exceed exponential case %v",
			errW, errExp)
	}
	// The M/M/1 model should specifically UNDER-predict: bursty arrivals
	// (ca2 = 5 at shape 0.5) queue much more than Poisson.
	if simW <= mm1W {
		t.Errorf("G/G/1 wait %v should exceed M/M/1 prediction %v", simW, mm1W)
	}
	if _, _, err := ExponentialAssumptionError(-1, 1, 0.5, 1, 1, 1); err == nil {
		t.Error("bad shape accepted")
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestFigure1ValidationErrorsOnMissingExact(t *testing.T) {
	// RR closed form requires users >= N; users < N has no exact value.
	_, err := Figure1Validation(core.Figure1Config{
		N: 30, Replicas: 3, Failures: 2, Users: 5,
		Placement: "roundrobin", Trials: 100, Seed: 1,
	})
	if err == nil {
		t.Error("missing exact value did not error")
	}
}
