// Package validate is the simulator-validation harness the paper requires
// before a wind tunnel can be trusted (§4.3: "Simple simulation models can
// be validated using analytical models"): every check runs the same
// question through the discrete-event simulator and through a closed form
// from internal/analytic and reports the relative error.
//
// It also quantifies §2.2's warning in the opposite direction: when the
// real distributions are NOT exponential, the exponential-assumption
// analytic model disagrees with the (correct) simulation — that gap is the
// paper's argument for simulation, and E2 in EXPERIMENTS.md reports it.
package validate

import (
	"fmt"
	"math"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sim"
)

// Report is one validation comparison.
type Report struct {
	Name      string
	Simulated float64
	Analytic  float64
	RelErr    float64
	Tolerance float64
	Pass      bool
}

func (r Report) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%-40s sim=%.6g analytic=%.6g relerr=%.3f%% tol=%.1f%% %s",
		r.Name, r.Simulated, r.Analytic, r.RelErr*100, r.Tolerance*100, status)
}

func report(name string, simulated, exact, tol float64) Report {
	rel := math.Abs(simulated - exact)
	if exact != 0 {
		rel /= math.Abs(exact)
	}
	return Report{
		Name: name, Simulated: simulated, Analytic: exact,
		RelErr: rel, Tolerance: tol, Pass: rel <= tol,
	}
}

// MM1SojournTime validates the Station FCFS queue against the M/M/1
// closed form for mean sojourn time.
func MM1SojournTime(lambda, mu float64, requests int, seed uint64) (Report, error) {
	q, err := analytic.NewMM1(lambda, mu)
	if err != nil {
		return Report{}, err
	}
	mean, err := simulateQueue(lambda, mu, 1, requests, seed)
	if err != nil {
		return Report{}, err
	}
	return report(fmt.Sprintf("M/M/1 W (rho=%.2f)", q.Rho()), mean, q.W(), 0.05), nil
}

// MMcSojournTime validates the multi-server station against M/M/c.
func MMcSojournTime(lambda, mu float64, c, requests int, seed uint64) (Report, error) {
	q, err := analytic.NewMMc(lambda, mu, c)
	if err != nil {
		return Report{}, err
	}
	mean, err := simulateQueue(lambda, mu, c, requests, seed)
	if err != nil {
		return Report{}, err
	}
	return report(fmt.Sprintf("M/M/%d W (rho=%.2f)", c, q.Rho()), mean, q.W(), 0.05), nil
}

// simulateQueue runs an open-loop exponential arrival/service queue and
// returns the mean sojourn time.
func simulateQueue(lambda, mu float64, servers, requests int, seed uint64) (float64, error) {
	s := sim.New(seed)
	st, err := sim.NewStation(s, "q", servers)
	if err != nil {
		return 0, err
	}
	arr := s.Stream("arrivals")
	svc := s.Stream("service")
	var sum float64
	var count int
	issued := 0
	var arrive func()
	arrive = func() {
		if issued >= requests {
			return
		}
		issued++
		st.Submit(svc.ExpFloat64()/mu, func(_, total float64) {
			sum += total
			count++
		})
		s.Schedule(arr.ExpFloat64()/lambda, "arrive", arrive)
	}
	s.Schedule(0, "arrive", arrive)
	s.Run()
	if count == 0 {
		return 0, fmt.Errorf("validate: no completions")
	}
	return sum / float64(count), nil
}

// ComponentAvailability validates the component failure/repair lifecycle
// against the two-state Markov chain: steady-state downtime fraction
// lambda/(lambda+mu).
func ComponentAvailability(mttf, mttr float64, horizon float64, seed uint64) (Report, error) {
	if mttf <= 0 || mttr <= 0 || horizon <= 0 {
		return Report{}, fmt.Errorf("validate: mttf, mttr and horizon must be positive")
	}
	s := sim.New(seed)
	ttf, err := dist.ExpMean(mttf)
	if err != nil {
		return Report{}, err
	}
	rep, err := dist.ExpMean(mttr)
	if err != nil {
		return Report{}, err
	}
	stream := s.Stream("lifecycle")
	down := 0.0
	var downAt sim.Time
	up := true
	var cycle func()
	cycle = func() {
		if up {
			s.Schedule(ttf.Sample(stream), "fail", func() {
				up = false
				downAt = s.Now()
				cycle()
			})
		} else {
			s.Schedule(rep.Sample(stream), "repair", func() {
				up = true
				down += s.Now() - downAt
				cycle()
			})
		}
	}
	cycle()
	s.RunUntil(horizon)
	if !up {
		down += s.Now() - downAt
	}
	simUnavail := down / horizon
	exact := mttr / (mttf + mttr)
	return report("component unavailability (2-state)", simUnavail, exact, 0.1), nil
}

// Figure1Validation compares the Monte-Carlo Figure-1 estimator against
// the exact combinatorics at the given point.
func Figure1Validation(cfg core.Figure1Config) (Report, error) {
	res, err := core.Figure1MonteCarlo(cfg)
	if err != nil {
		return Report{}, err
	}
	if res.Exact < 0 {
		return Report{}, fmt.Errorf("validate: no exact value for %+v", cfg)
	}
	name := fmt.Sprintf("figure1 %s N=%d n=%d f=%d", cfg.Placement, cfg.N, cfg.Replicas, cfg.Failures)
	// Tolerance scaled for MC noise at the configured trial count.
	return report(name, res.Probability, res.Exact, 0.15), nil
}

// ExponentialAssumptionError quantifies §2.2's warning on a quantity
// that IS distribution-sensitive: queueing delay. It simulates a G/G/1
// queue with Weibull(shape) interarrivals and LogNormal(cv) services —
// the realistic distributions the paper cites — and compares the observed
// mean waiting time against the M/M/1 formula fitted to the same rates.
// (Steady-state availability of independent components is insensitive to
// the distribution shapes, so availability alone cannot expose the error;
// response-time prediction can, and does.)
//
// It returns (simulated Wq, M/M/1 Wq). With shape = 1 and cv = 1 the two
// agree; as the shape departs from 1 the exponential-assumption error
// grows — exactly the §2.2 claim.
func ExponentialAssumptionError(shape, serviceCV, lambda, mu float64, requests int, seed uint64) (simulated, mm1 float64, err error) {
	if shape <= 0 || serviceCV <= 0 {
		return 0, 0, fmt.Errorf("validate: bad parameters shape=%v cv=%v", shape, serviceCV)
	}
	q, err := analytic.NewMM1(lambda, mu)
	if err != nil {
		return 0, 0, err
	}
	// Interarrival: Weibull with mean 1/lambda.
	scale := (1 / lambda) / math.Gamma(1+1/shape)
	inter, err := dist.NewWeibull(shape, scale)
	if err != nil {
		return 0, 0, err
	}
	var service dist.Dist
	if serviceCV == 1 {
		service = dist.Must(dist.ExpMean(1 / mu))
	} else {
		service, err = dist.LogNormalFromMoments(1/mu, serviceCV)
		if err != nil {
			return 0, 0, err
		}
	}

	s := sim.New(seed)
	st, err := sim.NewStation(s, "ggq", 1)
	if err != nil {
		return 0, 0, err
	}
	arrStream := s.Stream("arrivals")
	svcStream := s.Stream("service")
	var sumWait float64
	var count int
	issued := 0
	var arrive func()
	arrive = func() {
		if issued >= requests {
			return
		}
		issued++
		st.Submit(service.Sample(svcStream), func(waited, _ float64) {
			sumWait += waited
			count++
		})
		s.Schedule(inter.Sample(arrStream), "arrive", arrive)
	}
	s.Schedule(0, "arrive", arrive)
	s.Run()
	if count == 0 {
		return 0, 0, fmt.Errorf("validate: no completions")
	}
	return sumWait / float64(count), q.Wq(), nil
}

// ScreeningBoundsValidation validates the §2.2 analytic screening pass
// (core.AnalyticScreen) against full simulation. The Explorer decides a
// design point without simulating only when the analytic bounds clear or
// miss every availability SLA by a margin, so screening soundness
// requires the simulated any-object unavailability to fall inside the
// margin-widened bracket
//
//	[ObjUnavail/(1+margin), SysUnavail*(1+margin)].
//
// The bracket's upper end is the union bound over the pessimistic
// (node-repair-time) chain and its lower end the optimistic
// (detection-delay-only) chain — re-replication in the simulator lands
// in between, and this check verifies that it does.
func ScreeningBoundsValidation(trials int, seed uint64) (Report, error) {
	sc := core.DefaultScenario()
	sc.Cluster.Racks = 2
	sc.Cluster.NodesPerRack = 5
	sc.Cluster.NodeTTF = dist.Must(dist.ExpMean(500))
	sc.Cluster.NodeRepair = dist.Must(dist.ExpMean(12))
	sc.Repair.Detection = dist.Must(dist.NewDeterministic(6))
	sc.Users = 200
	sc.ObjectSizeMB = 32
	sc.HorizonHours = 2000
	sc.Seed = seed

	bounds, ok, err := core.AnalyticScreen(sc)
	if err != nil {
		return Report{}, err
	}
	if !ok {
		return Report{}, fmt.Errorf("validate: scenario is outside the screening model's reach")
	}
	res, err := core.Runner{Trials: trials}.Run(sc)
	if err != nil {
		return Report{}, err
	}
	simU := res.Metrics["unavail_fraction"]
	const margin = core.DefaultScreenMargin
	pass := simU <= bounds.SysUnavail*(1+margin) && simU >= bounds.ObjUnavailLower/(1+margin)
	rel := math.Abs(simU - bounds.SysUnavail)
	if bounds.SysUnavail != 0 {
		rel /= bounds.SysUnavail
	}
	return Report{
		Name:      "screening bounds (birth-death vs simulation)",
		Simulated: simU, Analytic: bounds.SysUnavail,
		RelErr: rel, Tolerance: margin, Pass: pass,
	}, nil
}

// RunAll executes the standard validation suite.
func RunAll(seed uint64) ([]Report, error) {
	var reports []Report
	r, err := MM1SojournTime(0.5, 1, 100000, seed)
	if err != nil {
		return nil, err
	}
	reports = append(reports, r)
	r, err = MM1SojournTime(0.8, 1, 100000, seed+1)
	if err != nil {
		return nil, err
	}
	reports = append(reports, r)
	r, err = MMcSojournTime(2, 1, 3, 100000, seed+2)
	if err != nil {
		return nil, err
	}
	reports = append(reports, r)
	r, err = ComponentAvailability(1000, 10, 2_000_000, seed+3)
	if err != nil {
		return nil, err
	}
	reports = append(reports, r)
	for _, cfg := range []core.Figure1Config{
		{N: 10, Replicas: 3, Failures: 2, Users: 1000, Placement: "random", Trials: 3000, Seed: seed},
		{N: 10, Replicas: 3, Failures: 3, Users: 1000, Placement: "roundrobin", Trials: 3000, Seed: seed},
		{N: 30, Replicas: 5, Failures: 6, Users: 1000, Placement: "roundrobin", Trials: 3000, Seed: seed},
	} {
		r, err = Figure1Validation(cfg)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	r, err = ScreeningBoundsValidation(8, seed+4)
	if err != nil {
		return nil, err
	}
	reports = append(reports, r)
	return reports, nil
}
