// Package obs is the wind tunnel's zero-dependency observability layer:
// a lock-cheap metrics registry with hand-rolled Prometheus text
// exposition, a span tracer for distributed job traces, and runtime
// snapshots for the stats endpoint. The serving layer (internal/service)
// instruments every hot path through it; the instruments themselves are
// designed so that the hot path — Counter.Add, Gauge.Set,
// Histogram.Observe — is a handful of atomic operations and zero heap
// allocations (pinned by an AllocsPerRun test). All instrument methods
// are nil-receiver safe, so a server running with telemetry disabled
// passes nil instruments around and every call site stays unguarded.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing uint64. The zero value is not
// usable on its own — obtain counters from a Registry — but a nil
// *Counter is: all methods no-op, so disabled telemetry needs no call
// site guards.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value (queue depths, in-flight
// counts). Nil-receiver safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by delta (negative deltas decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative only
// at exposition time: Observe increments exactly one bucket counter (the
// first whose upper bound >= v) plus the count and the CAS-updated sum,
// keeping the hot path allocation-free. The bucket layout is fixed at
// registration — no resizing, no locks.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations. It is derived from the
// bucket counters (not a separate atomic) so the exposition's _count is
// always exactly the +Inf cumulative bucket, even mid-scrape.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DurationBuckets is the default latency bucket layout, in seconds:
// 5µs to 10s, roughly logarithmic — wide enough for a pool wait under
// contention and fine enough for a journal fsync.
var DurationBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// instrument is one registered series: exactly one of the pointers is
// set. fn-backed series are read at exposition time — the bridge for
// values another subsystem already maintains (cache stats, pool depth,
// runtime goroutine counts).
type instrument struct {
	labels string      // rendered `{k="v",...}` suffix, "" when unlabelled
	pairs  [][2]string // the same labels as key/value pairs, for Snapshot
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	series  []*instrument
	byLabel map[string]*instrument
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration takes a mutex (cold path); registered
// instruments are updated lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString renders variadic k1, v1, k2, v2 pairs as a deterministic
// `{k1="v1",k2="v2"}` suffix. Values are escaped per the exposition
// format; keys are assumed to be valid identifiers (they come from call
// sites, not user input).
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns (creating if needed) the series for name+labels,
// enforcing one type and one help string per family. init runs under
// the registry lock with the instrument, so the payload pointer
// (c/g/h/fn) is always published before the lock releases — exposition
// and history sampling may run concurrently with registration.
func (r *Registry) lookup(name, help, typ string, labels []string, init func(*instrument)) *instrument {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabel: make(map[string]*instrument)}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.typ, typ))
	}
	ins := f.byLabel[ls]
	if ins == nil {
		ins = &instrument{labels: ls}
		for i := 0; i < len(labels); i += 2 {
			ins.pairs = append(ins.pairs, [2]string{labels[i], labels[i+1]})
		}
		f.byLabel[ls] = ins
		f.series = append(f.series, ins)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	}
	if init != nil {
		init(ins)
	}
	return ins
}

// Counter registers (or fetches) a counter series. On a nil registry it
// returns nil, which is a valid no-op counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ins := r.lookup(name, help, "counter", labels, func(ins *instrument) {
		if ins.c == nil && ins.fn == nil {
			ins.c = &Counter{}
		}
	})
	return ins.c
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ins := r.lookup(name, help, "gauge", labels, func(ins *instrument) {
		if ins.g == nil && ins.fn == nil {
			ins.g = &Gauge{}
		}
	})
	return ins.g
}

// Histogram registers (or fetches) a histogram series with the given
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets must ascend", name))
		}
	}
	ins := r.lookup(name, help, "histogram", labels, func(ins *instrument) {
		if ins.h == nil {
			ins.h = &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
		}
	})
	return ins.h
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — the bridge for cumulative values another subsystem
// already tracks under its own lock.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.lookup(name, help, "counter", labels, func(ins *instrument) { ins.fn = fn })
}

// GaugeFunc registers a gauge series read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.lookup(name, help, "gauge", labels, func(ins *instrument) { ins.fn = fn })
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, one HELP
// and TYPE line each, series sorted by label set, histograms expanded
// into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	// Snapshot the series slices under the lock; instrument reads below
	// are atomic and need no lock.
	series := make([][]*instrument, len(fams))
	for i, f := range fams {
		series[i] = append([]*instrument(nil), f.series...)
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, ins := range series[i] {
			switch {
			case ins.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ins.labels, formatFloat(ins.fn()))
			case ins.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ins.labels, ins.c.Value())
			case ins.g != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ins.labels, ins.g.Value())
			case ins.h != nil:
				writeHistogram(&b, f.name, ins)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets with
// le labels (ending at +Inf), then _sum and _count.
func writeHistogram(b *strings.Builder, name string, ins *instrument) {
	h := ins.h
	// Merge the series labels with the per-bucket le label.
	open := "{"
	base := ""
	if ins.labels != "" {
		base = ins.labels[1:len(ins.labels)-1] + ","
	}
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s%sle=%q} %d\n", name, open, base, formatFloat(ub), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s%sle=\"+Inf\"} %d\n", name, open, base, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, ins.labels, formatFloat(h.Sum()))
	// _count is the same one-pass cumulative total as the +Inf bucket, so
	// the two never disagree under a concurrent scrape.
	fmt.Fprintf(b, "%s_count%s %d\n", name, ins.labels, cum)
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
