package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wt_test_total", "A test counter.")
	c.Add(3)
	g := r.Gauge("wt_test_depth", "A test gauge.")
	g.Set(7)
	h := r.Histogram("wt_test_seconds", "A test histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	lc := r.Counter("wt_test_labeled_total", "A labeled counter.", "route", `/v1/"q"`)
	lc.Inc()
	r.GaugeFunc("wt_test_fn", "A func gauge.", func() float64 { return 2.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP wt_test_total A test counter.\n",
		"# TYPE wt_test_total counter\n",
		"wt_test_total 3\n",
		"wt_test_depth 7\n",
		"wt_test_seconds_bucket{le=\"0.1\"} 1\n",
		"wt_test_seconds_bucket{le=\"1\"} 2\n",
		"wt_test_seconds_bucket{le=\"+Inf\"} 3\n",
		"wt_test_seconds_sum 5.55\n",
		"wt_test_seconds_count 3\n",
		"wt_test_labeled_total{route=\"/v1/\\\"q\\\"\"} 1\n",
		"wt_test_fn 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if problems := Lint([]byte(out)); len(problems) > 0 {
		t.Errorf("self-lint failed: %v", problems)
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wt_req_seconds", "Request latency.", []float64{0.5}, "route", "/v1/query")
	h.Observe(0.1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`wt_req_seconds_bucket{route="/v1/query",le="0.5"} 1`,
		`wt_req_seconds_bucket{route="/v1/query",le="+Inf"} 1`,
		`wt_req_seconds_sum{route="/v1/query"} 0.1`,
		`wt_req_seconds_count{route="/v1/query"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if problems := Lint([]byte(out)); len(problems) > 0 {
		t.Errorf("self-lint failed: %v", problems)
	}
}

// TestInstrumentsSameSeries pins GetOrCreate semantics: registering the
// same name+labels twice returns the same underlying instrument.
func TestInstrumentsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("wt_dup_total", "dup")
	b := r.Counter("wt_dup_total", "dup")
	if a != b {
		t.Fatal("same series returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counters not shared")
	}
	h1 := r.Histogram("wt_dup_seconds", "dup", DurationBuckets)
	h2 := r.Histogram("wt_dup_seconds", "dup", DurationBuckets)
	if h1 != h2 {
		t.Fatal("same series returned distinct histograms")
	}
}

// TestNilInstrumentsSafe pins the disabled-telemetry contract: nil
// registry and nil instruments accept every operation.
func TestNilInstrumentsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("y", "y")
	g.Set(3)
	g.Inc()
	g.Dec()
	h := r.Histogram("z", "z", DurationBuckets)
	h.Observe(1)
	r.GaugeFunc("w", "w", func() float64 { return 1 })
	r.CounterFunc("v", "v", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestHotPathAllocations pins the zero-allocation contract on the
// instruments the point-commit and request paths hit.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wt_alloc_total", "alloc test")
	g := r.Gauge("wt_alloc_depth", "alloc test")
	h := r.Histogram("wt_alloc_seconds", "alloc test", DurationBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
}

// TestConcurrentScrape hammers counters and histograms from 100
// goroutines while /metrics-style scrapes run concurrently — the -race
// workhorse for the lock-free instruments.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wt_hammer_total", "hammer")
	h := r.Histogram("wt_hammer_seconds", "hammer", DurationBuckets)
	g := r.Gauge("wt_hammer_depth", "hammer")

	const goroutines = 100
	const perG = 200
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%17) / 100)
				g.Add(-1)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	scrapes := 0
	for {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		scrapes++
		if problems := Lint([]byte(b.String())); len(problems) > 0 {
			t.Fatalf("mid-hammer scrape fails lint: %v", problems)
		}
		select {
		case <-done:
			if c.Value() != goroutines*perG {
				t.Fatalf("lost increments: %d != %d", c.Value(), goroutines*perG)
			}
			if h.Count() != goroutines*perG {
				t.Fatalf("lost observations: %d != %d", h.Count(), goroutines*perG)
			}
			if g.Value() != 0 {
				t.Fatalf("gauge should settle at 0, got %d", g.Value())
			}
			t.Logf("%d scrapes during hammer", scrapes)
			return
		default:
		}
	}
}
