package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// RuntimeStats is a point-in-time snapshot of the Go runtime — the
// payload of GET /v1/stats and the source for the wt_go_* gauge
// bridges.
type RuntimeStats struct {
	GoVersion  string `json:"go_version"`
	Revision   string `json:"revision,omitempty"`
	Goroutines int    `json:"goroutines"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
	HeapObjects     uint64 `json:"heap_objects"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`

	GCRuns              uint32    `json:"gc_runs"`
	LastGCPauseSeconds  float64   `json:"last_gc_pause_seconds"`
	TotalGCPauseSeconds float64   `json:"total_gc_pause_seconds"`
	LastGC              time.Time `json:"last_gc,omitzero"`
}

// ReadRuntime captures a RuntimeStats snapshot. It calls
// runtime.ReadMemStats, which briefly stops the world — fine for an
// operator endpoint, not for a per-request path.
func ReadRuntime() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	st := RuntimeStats{
		GoVersion:  runtime.Version(),
		Revision:   vcsRevision(),
		Goroutines: runtime.NumGoroutine(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),

		HeapAllocBytes:  m.HeapAlloc,
		HeapSysBytes:    m.HeapSys,
		HeapObjects:     m.HeapObjects,
		TotalAllocBytes: m.TotalAlloc,

		GCRuns:              m.NumGC,
		TotalGCPauseSeconds: float64(m.PauseTotalNs) / 1e9,
	}
	if m.NumGC > 0 {
		st.LastGCPauseSeconds = float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
		st.LastGC = time.Unix(0, int64(m.LastGC)).UTC()
	}
	return st
}

// vcsRevision returns the build's VCS revision when the binary carries
// build info (module builds do; plain `go test` binaries may not).
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return ""
}
