package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation within a job trace. A fleet job's spans
// form one tree rooted at the coordinator's job span: the coordinator
// propagates (trace_id, parent span_id) to workers in the X-WT-Trace
// header, so a worker's shard span — and every point span under it —
// hangs off the coordinator's tree.
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Parent  string `json:"parent_id,omitempty"`
	Name    string `json:"name"`
	// Worker identifies the process that recorded the span
	// ("coordinator", a worker URL, or "local" for a single daemon).
	Worker string    `json:"worker,omitempty"`
	Start  time.Time `json:"start"`
	// Duration is measured against the monotonic clock (time.Since), so
	// spans never go negative under wall-clock adjustment. It marshals
	// as integer nanoseconds.
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Tracer records completed spans into bounded per-trace ring buffers.
// Two bounds keep a long-running daemon's memory flat: each trace holds
// at most maxSpans spans (oldest dropped first), and at most maxTraces
// traces are retained (oldest trace evicted whole). A nil *Tracer is
// safe everywhere and records nothing.
type Tracer struct {
	worker    string
	maxTraces int
	maxSpans  int

	nonce string        // per-process random prefix: span ids never collide across the fleet
	seq   atomic.Uint64 // per-process span counter

	mu     sync.Mutex
	traces map[string]*traceBuf
	order  []string // trace insertion order, for whole-trace eviction
}

// traceBuf is one trace's span ring.
type traceBuf struct {
	spans   []Span
	next    int // ring write cursor once full
	full    bool
	dropped uint64
}

// DefaultMaxTraces and DefaultMaxSpans bound the tracer when the caller
// passes zero.
const (
	DefaultMaxTraces = 128
	DefaultMaxSpans  = 2048
)

// NewTracer builds a tracer. worker labels every span this process
// records; maxTraces/maxSpans <= 0 pick the defaults.
func NewTracer(worker string, maxTraces, maxSpans int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Tracer{
		worker:    worker,
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		nonce:     randomHex(4),
		traces:    make(map[string]*traceBuf),
	}
}

// NewTraceID mints a fresh 16-byte hex trace id. Only trace roots (one
// per job) pay for crypto/rand.
func (t *Tracer) NewTraceID() string {
	if t == nil {
		return ""
	}
	return randomHex(16)
}

// NewSpanID mints a process-unique span id: the process nonce plus a
// counter — no RNG on the span path.
func (t *Tracer) NewSpanID() string {
	if t == nil {
		return ""
	}
	return t.nonce + "-" + hexUint(t.seq.Add(1))
}

// Add records one completed span. Spans for a brand-new trace may evict
// the oldest retained trace; spans past a trace's ring capacity
// overwrite the oldest span in that trace.
func (t *Tracer) Add(sp Span) {
	if t == nil || sp.TraceID == "" {
		return
	}
	if sp.Worker == "" {
		sp.Worker = t.worker
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tb := t.traces[sp.TraceID]
	if tb == nil {
		for len(t.order) >= t.maxTraces {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
		tb = &traceBuf{}
		t.traces[sp.TraceID] = tb
		t.order = append(t.order, sp.TraceID)
	}
	if !tb.full {
		tb.spans = append(tb.spans, sp)
		if len(tb.spans) >= t.maxSpans {
			tb.full = true
		}
		return
	}
	tb.spans[tb.next] = sp
	tb.next = (tb.next + 1) % len(tb.spans)
	tb.dropped++
}

// Spans returns a trace's recorded spans in record order (oldest first)
// plus how many were dropped to the ring bound. Unknown traces return
// (nil, 0).
func (t *Tracer) Spans(traceID string) ([]Span, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tb := t.traces[traceID]
	if tb == nil {
		return nil, 0
	}
	out := make([]Span, 0, len(tb.spans))
	out = append(out, tb.spans[tb.next:]...)
	out = append(out, tb.spans[:tb.next]...)
	return out, tb.dropped
}

// SpanHandle is an in-flight span: created by StartSpan, finished by
// End, which stamps the monotonic duration and records it. A nil handle
// (nil tracer) is safe to use.
type SpanHandle struct {
	t     *Tracer
	span  Span
	start time.Time
	done  atomic.Bool
}

// StartSpan opens a span under (traceID, parent). The handle's ID feeds
// child spans and cross-process propagation.
func (t *Tracer) StartSpan(traceID, parent, name string) *SpanHandle {
	if t == nil || traceID == "" {
		return nil
	}
	now := time.Now()
	return &SpanHandle{
		t: t,
		span: Span{
			TraceID: traceID, SpanID: t.NewSpanID(), Parent: parent,
			Name: name, Start: now,
		},
		start: now,
	}
}

// ID returns the span id ("" on a nil handle).
func (h *SpanHandle) ID() string {
	if h == nil {
		return ""
	}
	return h.span.SpanID
}

// Attr attaches a key/value attribute and returns the handle for
// chaining. After End it is a no-op: the recorded span shares the Attrs
// map, so a late Attr would race with readers of the trace.
func (h *SpanHandle) Attr(k, v string) *SpanHandle {
	if h == nil || h.done.Load() {
		return h
	}
	if h.span.Attrs == nil {
		h.span.Attrs = make(map[string]string)
	}
	h.span.Attrs[k] = v
	return h
}

// End stamps the duration and records the span. Safe to call more than
// once; only the first End records.
func (h *SpanHandle) End() {
	if h == nil || !h.done.CompareAndSwap(false, true) {
		return
	}
	h.span.Duration = time.Since(h.start)
	h.t.Add(h.span)
}

// randomHex returns n random bytes hex-encoded.
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// a fixed nonce rather than panicking the daemon.
		for i := range b {
			b[i] = byte(i * 37)
		}
	}
	return hex.EncodeToString(b)
}

// hexUint formats a counter in hex without fmt (no hot-path allocs
// beyond the string itself).
func hexUint(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var buf [16]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return string(buf[i:])
}
