package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func at(sec int) time.Time {
	return time.Unix(1700000000+int64(sec), 0)
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("wt_jobs_total", "Jobs.", "status", "done").Add(3)
	r.Gauge("wt_depth", "Depth.").Set(7)
	r.GaugeFunc("wt_fn", "Fn-backed.", func() float64 { return 2.5 })
	h := r.Histogram("wt_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	snap := r.Snapshot()
	byName := map[string]FamilySnapshot{}
	for _, f := range snap {
		byName[f.Name] = f
	}
	if f := byName["wt_jobs_total"]; len(f.Samples) != 1 || f.Samples[0].Value != 3 || f.Type != "counter" {
		t.Fatalf("counter snapshot wrong: %+v", f)
	}
	if got := byName["wt_jobs_total"].Samples[0].Labels; len(got) != 1 || got[0] != [2]string{"status", "done"} {
		t.Fatalf("label pairs wrong: %v", got)
	}
	if f := byName["wt_fn"]; len(f.Samples) != 1 || f.Samples[0].Value != 2.5 {
		t.Fatalf("fn snapshot wrong: %+v", f)
	}
	hist := byName["wt_lat_seconds"]
	// 2 finite buckets + +Inf + _sum + _count.
	if len(hist.Samples) != 5 {
		t.Fatalf("histogram expansion: got %d samples: %+v", len(hist.Samples), hist.Samples)
	}
	var inf, count float64
	for _, s := range hist.Samples {
		if s.Suffix == "_bucket" {
			if le, _ := labelValue(s.Labels, "le"); le == "+Inf" {
				inf = s.Value
			}
		}
		if s.Suffix == "_count" {
			count = s.Value
		}
	}
	if inf != 3 || count != 3 {
		t.Fatalf("histogram +Inf=%v _count=%v, want 3/3", inf, count)
	}
}

func TestHistoryRingWraparound(t *testing.T) {
	h := NewHistory(4)
	for i := 0; i < 10; i++ {
		h.Ingest([]FamilySnapshot{{
			Name: "wt_x", Type: "gauge",
			Samples: []SeriesSample{{Value: float64(i)}},
		}}, "", at(i))
	}
	rs := h.Range("wt_x", time.Hour, at(10))
	if len(rs) != 1 {
		t.Fatalf("want 1 series, got %d", len(rs))
	}
	pts := rs[0].Points
	if len(pts) != 4 {
		t.Fatalf("ring should retain 4 samples, got %d", len(pts))
	}
	// Oldest samples evicted: only 6..9 remain, oldest first.
	for i, p := range pts {
		if want := float64(6 + i); p.V != want || !p.T.Equal(at(6+i)) {
			t.Fatalf("point %d = %+v, want value %v at %v", i, p, want, at(6+i))
		}
	}
	lat := h.Latest("wt_x")
	if len(lat) != 1 || lat[0].V != 9 {
		t.Fatalf("latest = %+v, want 9", lat)
	}
}

func TestIncreaseAcrossWrapAndReset(t *testing.T) {
	h := NewHistory(5)
	// A counter that grows by 2 per tick, then resets to 1 (process
	// restart), then grows again — and the ring wraps along the way.
	vals := []float64{0, 2, 4, 6, 8, 1, 3}
	for i, v := range vals {
		h.Ingest([]FamilySnapshot{{
			Name: "wt_c_total", Type: "counter",
			Samples: []SeriesSample{{Value: v}},
		}}, "", at(i))
	}
	// Ring holds the last 5: 4,6,8,1,3. Increase = (6-4)+(8-6)+1+(3-1) = 7.
	inc := h.Increase("wt_c_total", time.Hour, at(7))
	if len(inc) != 1 {
		t.Fatalf("want 1 series, got %d", len(inc))
	}
	if inc[0].Delta != 7 {
		t.Fatalf("increase = %v, want 7 (reset-aware across wrap)", inc[0].Delta)
	}
	if inc[0].Samples != 5 {
		t.Fatalf("samples = %d, want 5", inc[0].Samples)
	}
	if inc[0].Elapsed != 4*time.Second {
		t.Fatalf("elapsed = %v, want 4s", inc[0].Elapsed)
	}
	if got := inc[0].PerSec(); got != 1.75 {
		t.Fatalf("per-sec rate = %v, want 1.75", got)
	}
	// A window clipping to the last 3 samples (8,1,3) sees 1+(3-1)=3.
	inc = h.Increase("wt_c_total", 2*time.Second+time.Millisecond, at(6))
	if len(inc) != 1 || inc[0].Delta != 3 {
		t.Fatalf("clipped increase = %+v, want delta 3", inc)
	}
}

func TestHistoryInstanceLabel(t *testing.T) {
	h := NewHistory(8)
	snap := []FamilySnapshot{{Name: "wt_up", Type: "gauge", Samples: []SeriesSample{{Value: 1}}}}
	h.Ingest(snap, "http://a", at(0))
	h.Ingest(snap, "http://b", at(0))
	lat := h.Latest("wt_up")
	if len(lat) != 2 {
		t.Fatalf("want 2 instance series, got %+v", lat)
	}
	want := map[string]bool{`{instance="http://a"}`: true, `{instance="http://b"}`: true}
	for _, v := range lat {
		if !want[v.Labels] {
			t.Fatalf("unexpected series %q", v.Labels)
		}
	}
	// An already-present instance label is preserved, not overridden.
	h.Ingest([]FamilySnapshot{{Name: "wt_up", Type: "gauge",
		Samples: []SeriesSample{{Labels: [][2]string{{"instance", "keep"}}, Value: 0}}}}, "http://c", at(1))
	found := false
	for _, v := range h.Latest("wt_up") {
		if v.Labels == `{instance="keep"}` {
			found = true
		}
	}
	if !found {
		t.Fatal("explicit instance label was not preserved")
	}
}

func TestQuantileOver(t *testing.T) {
	h := NewHistory(16)
	r := NewRegistry()
	hist := r.Histogram("wt_lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Ingest(r.Snapshot(), "w1", at(0))
	// 90 observations land in (0.01, 0.1], 10 in (0.1, 1].
	for i := 0; i < 90; i++ {
		hist.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		hist.Observe(0.5)
	}
	h.Ingest(r.Snapshot(), "w1", at(2))
	qs := h.QuantileOver("wt_lat_seconds", 0.5, time.Hour, at(3))
	if len(qs) != 1 {
		t.Fatalf("want 1 series, got %+v", qs)
	}
	// Median rank 50 of 100 falls in the (0.01, 0.1] bucket: interpolate
	// 0.01 + (0.1-0.01)*50/90 = 0.06.
	if got := qs[0].V; got < 0.059 || got > 0.061 {
		t.Fatalf("p50 = %v, want ~0.06", got)
	}
	qs = h.QuantileOver("wt_lat_seconds", 0.99, time.Hour, at(3))
	// Rank 99 falls in (0.1, 1]: 0.1 + 0.9*(99-90)/10 = 0.91.
	if got := qs[0].V; got < 0.90 || got > 0.92 {
		t.Fatalf("p99 = %v, want ~0.91", got)
	}
	// No observations in the window -> no series.
	if qs := h.QuantileOver("wt_lat_seconds", 0.5, time.Millisecond, at(100)); qs != nil {
		t.Fatalf("empty window should yield nil, got %+v", qs)
	}
}

func TestHistogramExpansionQueriesByName(t *testing.T) {
	h := NewHistory(8)
	r := NewRegistry()
	hist := r.Histogram("wt_lat_seconds", "Latency.", []float64{1})
	hist.Observe(0.5)
	h.Ingest(r.Snapshot(), "", at(0))
	hist.Observe(0.5)
	h.Ingest(r.Snapshot(), "", at(1))
	inc := h.Increase("wt_lat_seconds_count", time.Hour, at(2))
	if len(inc) != 1 || inc[0].Delta != 1 {
		t.Fatalf("count increase = %+v, want 1", inc)
	}
	if lat := h.Latest("wt_lat_seconds_sum"); len(lat) != 1 || lat[0].V != 1 {
		t.Fatalf("sum latest = %+v, want 1", lat)
	}
	if got := h.Latest("wt_nope"); got != nil {
		t.Fatalf("unknown name should yield nil, got %+v", got)
	}
}

func TestWriteLatestPrometheusLintsAndRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("wt_jobs_total", "Jobs.").Add(5)
	hist := r.Histogram("wt_lat_seconds", "Latency.", []float64{0.1, 1})
	hist.Observe(0.05)
	hist.Observe(2)

	h := NewHistory(8)
	h.Ingest(r.Snapshot(), "http://w1", at(0))
	h.Ingest(r.Snapshot(), "http://w2", at(0))

	var b strings.Builder
	if err := h.WriteLatestPrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if problems := Lint([]byte(text)); len(problems) != 0 {
		t.Fatalf("federated exposition does not lint:\n%s\n%v", text, problems)
	}
	if !strings.Contains(text, `instance="http://w1"`) || !strings.Contains(text, `instance="http://w2"`) {
		t.Fatalf("missing instance labels:\n%s", text)
	}

	// Round-trip: parse the rendered text back and re-ingest.
	fams, err := ParseExposition([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHistory(8)
	h2.Ingest(fams, "", at(1))
	var b2 strings.Builder
	if err := h2.WriteLatestPrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Fatalf("round trip changed output:\n--- first\n%s\n--- second\n%s", text, b2.String())
	}
}

func TestParseExposition(t *testing.T) {
	text := `# HELP wt_jobs_total Jobs completed.
# TYPE wt_jobs_total counter
wt_jobs_total{status="done"} 4
# HELP wt_lat_seconds Latency.
# TYPE wt_lat_seconds histogram
wt_lat_seconds_bucket{le="0.1"} 2
wt_lat_seconds_bucket{le="+Inf"} 3
wt_lat_seconds_sum 1.5
wt_lat_seconds_count 3
plain_count 7
`
	fams, err := ParseExposition([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["wt_jobs_total"]; f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 4 {
		t.Fatalf("counter family wrong: %+v", f)
	}
	hist := byName["wt_lat_seconds"]
	if hist.Type != "histogram" || len(hist.Samples) != 4 {
		t.Fatalf("histogram family should fold its expansions: %+v", hist)
	}
	suffixes := map[string]int{}
	for _, s := range hist.Samples {
		suffixes[s.Suffix]++
	}
	if suffixes["_bucket"] != 2 || suffixes["_sum"] != 1 || suffixes["_count"] != 1 {
		t.Fatalf("suffix spread wrong: %v", suffixes)
	}
	// plain_count has no histogram base family: a family of its own.
	if f := byName["plain_count"]; f.Type != "untyped" || len(f.Samples) != 1 || f.Samples[0].Value != 7 {
		t.Fatalf("plain_count family wrong: %+v", f)
	}

	if _, err := ParseExposition([]byte("wt_bad{oops} 1\n")); err == nil {
		t.Fatal("malformed labels should be an error")
	}
	if _, err := ParseExposition([]byte("wt_bad notafloat\n")); err == nil {
		t.Fatal("bad value should be an error")
	}
}

func TestHistoryConcurrentSampleQueryScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wt_ops_total", "Ops.")
	hist := r.Histogram("wt_lat_seconds", "Latency.", DurationBuckets)
	h := NewHistory(32)
	s := StartSampler(h, r, "local", time.Millisecond)
	defer s.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				hist.Observe(0.001)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Range("wt_ops_total", time.Minute, time.Now())
			h.Increase("wt_ops_total", time.Minute, time.Now())
			h.QuantileOver("wt_lat_seconds", 0.99, time.Minute, time.Now())
			var b strings.Builder
			if err := h.WriteLatestPrometheus(&b); err != nil {
				panic(fmt.Sprintf("write: %v", err))
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	s.Stop() // idempotent

	if lat := h.Latest("wt_ops_total"); len(lat) != 1 || lat[0].V == 0 {
		t.Fatalf("sampler never captured counter growth: %+v", lat)
	}
	var b strings.Builder
	if err := h.WriteLatestPrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if problems := Lint([]byte(b.String())); len(problems) != 0 {
		t.Fatalf("exposition after concurrent load does not lint: %v", problems)
	}
}

func TestNilHistorySafe(t *testing.T) {
	var h *History
	h.Ingest(nil, "x", at(0))
	if h.Range("a", time.Hour, at(0)) != nil || h.Latest("a") != nil ||
		h.Increase("a", time.Hour, at(0)) != nil || h.FamilyNames() != nil || h.Depth() != 0 {
		t.Fatal("nil history should answer empty")
	}
	var b strings.Builder
	if err := h.WriteLatestPrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatal("nil history should write nothing")
	}
	var s *Sampler
	s.Stop()
}
