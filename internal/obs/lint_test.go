package obs

import (
	"strings"
	"testing"
)

const cleanExposition = `# HELP wt_ok_total Fine counter.
# TYPE wt_ok_total counter
wt_ok_total 5
# HELP wt_ok_seconds Fine histogram.
# TYPE wt_ok_seconds histogram
wt_ok_seconds_bucket{le="0.1"} 1
wt_ok_seconds_bucket{le="1"} 3
wt_ok_seconds_bucket{le="+Inf"} 4
wt_ok_seconds_sum 2.5
wt_ok_seconds_count 4
`

func TestLintClean(t *testing.T) {
	if problems := Lint([]byte(cleanExposition)); len(problems) > 0 {
		t.Fatalf("clean exposition flagged: %v", problems)
	}
}

func TestLintViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of an expected problem
	}{
		{
			"missing TYPE",
			"wt_x_total 1\n",
			"no preceding # TYPE",
		},
		{
			"missing HELP",
			"# TYPE wt_x_total counter\nwt_x_total 1\n",
			"no # HELP",
		},
		{
			"duplicate series",
			"# HELP wt_x_total x.\n# TYPE wt_x_total counter\nwt_x_total 1\nwt_x_total 2\n",
			"duplicate series",
		},
		{
			"duplicate series label order",
			"# HELP wt_x_total x.\n# TYPE wt_x_total counter\nwt_x_total{a=\"1\",b=\"2\"} 1\nwt_x_total{b=\"2\",a=\"1\"} 2\n",
			"duplicate series",
		},
		{
			"bad escape",
			"# HELP wt_x_total x.\n# TYPE wt_x_total counter\nwt_x_total{a=\"\\q\"} 1\n",
			"bad escape",
		},
		{
			"unterminated label",
			"# HELP wt_x_total x.\n# TYPE wt_x_total counter\nwt_x_total{a=\"oops} 1\n",
			"unterminated",
		},
		{
			"bad value",
			"# HELP wt_x_total x.\n# TYPE wt_x_total counter\nwt_x_total banana\n",
			"bad value",
		},
		{
			"non-cumulative buckets",
			"# HELP wt_x_seconds x.\n# TYPE wt_x_seconds histogram\n" +
				"wt_x_seconds_bucket{le=\"0.1\"} 5\nwt_x_seconds_bucket{le=\"1\"} 3\nwt_x_seconds_bucket{le=\"+Inf\"} 6\n" +
				"wt_x_seconds_sum 1\nwt_x_seconds_count 6\n",
			"not cumulative",
		},
		{
			"missing +Inf",
			"# HELP wt_x_seconds x.\n# TYPE wt_x_seconds histogram\n" +
				"wt_x_seconds_bucket{le=\"0.1\"} 1\nwt_x_seconds_sum 1\nwt_x_seconds_count 1\n",
			"+Inf",
		},
		{
			"count disagrees with +Inf",
			"# HELP wt_x_seconds x.\n# TYPE wt_x_seconds histogram\n" +
				"wt_x_seconds_bucket{le=\"0.1\"} 1\nwt_x_seconds_bucket{le=\"+Inf\"} 4\n" +
				"wt_x_seconds_sum 1\nwt_x_seconds_count 9\n",
			"_count 9 != +Inf bucket 4",
		},
		{
			"bucket without le",
			"# HELP wt_x_seconds x.\n# TYPE wt_x_seconds histogram\n" +
				"wt_x_seconds_bucket 1\nwt_x_seconds_bucket{le=\"+Inf\"} 1\nwt_x_seconds_sum 1\nwt_x_seconds_count 1\n",
			"without an le label",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := Lint([]byte(tc.in))
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Fatalf("expected a problem containing %q, got %v", tc.want, problems)
		})
	}
}

// TestLintRegistryOutput closes the loop: whatever the registry writes,
// the linter accepts — including escaped labels and labeled histograms.
func TestLintRegistryOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("wt_e2e_total", "e2e", "path", `a\b"c`+"\n").Add(2)
	h := r.Histogram("wt_e2e_seconds", "e2e", []float64{0.01, 0.1, 1}, "route", "/v1/jobs/{id}")
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	r.GaugeFunc("wt_e2e_uptime_seconds", "e2e", func() float64 { return 12.75 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if problems := Lint([]byte(b.String())); len(problems) > 0 {
		t.Fatalf("registry output fails lint: %v\n---\n%s", problems, b.String())
	}
}
