package obs

import (
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer("coordinator", 0, 0)
	trace := tr.NewTraceID()
	if trace == "" || len(trace) != 32 {
		t.Fatalf("bad trace id %q", trace)
	}
	root := tr.StartSpan(trace, "", "job").Attr("job", "job-1")
	child := tr.StartSpan(trace, root.ID(), "plan")
	child.End()
	tr.Add(Span{
		TraceID: trace, SpanID: tr.NewSpanID(), Parent: root.ID(),
		Name: "simulate", Worker: "http://w1", Start: time.Now(), Duration: time.Millisecond,
	})
	root.End()

	spans, dropped := tr.Spans(trace)
	if dropped != 0 {
		t.Fatalf("dropped %d spans", dropped)
	}
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["plan"].Parent != byName["job"].SpanID {
		t.Fatal("plan span not parented under job")
	}
	if byName["simulate"].Worker != "http://w1" {
		t.Fatal("explicit span worker overwritten")
	}
	if byName["plan"].Worker != "coordinator" {
		t.Fatal("tracer did not stamp its worker label")
	}
	if byName["job"].Attrs["job"] != "job-1" {
		t.Fatal("attr lost")
	}
	if byName["job"].Duration <= 0 {
		t.Fatal("ended span has no duration")
	}
}

// TestRingBound pins the per-trace span bound: the ring never grows past
// cap and keeps the newest spans, dropping the oldest.
func TestRingBound(t *testing.T) {
	tr := NewTracer("w", 4, 8)
	trace := tr.NewTraceID()
	for i := 0; i < 50; i++ {
		tr.Add(Span{TraceID: trace, SpanID: tr.NewSpanID(), Name: spanName(i)})
	}
	spans, dropped := tr.Spans(trace)
	if len(spans) != 8 {
		t.Fatalf("ring grew to %d spans, cap is 8", len(spans))
	}
	if dropped != 42 {
		t.Fatalf("want 42 dropped, got %d", dropped)
	}
	// Oldest dropped: the survivors are exactly spans 42..49 in order.
	for i, sp := range spans {
		if want := spanName(42 + i); sp.Name != want {
			t.Fatalf("span %d: want %s, got %s", i, want, sp.Name)
		}
	}
}

func spanName(i int) string {
	return "s" + hexUint(uint64(i))
}

// TestTraceEviction pins the trace-count bound: a new trace evicts the
// oldest retained one, whole.
func TestTraceEviction(t *testing.T) {
	tr := NewTracer("w", 2, 8)
	t1, t2, t3 := tr.NewTraceID(), tr.NewTraceID(), tr.NewTraceID()
	tr.Add(Span{TraceID: t1, SpanID: "a", Name: "one"})
	tr.Add(Span{TraceID: t2, SpanID: "b", Name: "two"})
	tr.Add(Span{TraceID: t3, SpanID: "c", Name: "three"})
	if spans, _ := tr.Spans(t1); spans != nil {
		t.Fatal("oldest trace not evicted")
	}
	if spans, _ := tr.Spans(t2); len(spans) != 1 {
		t.Fatal("second trace lost")
	}
	if spans, _ := tr.Spans(t3); len(spans) != 1 {
		t.Fatal("new trace not recorded")
	}
}

// TestNilTracerSafe pins the disabled-telemetry contract for tracing.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.NewTraceID(); id != "" {
		t.Fatal("nil tracer minted a trace id")
	}
	h := tr.StartSpan("x", "", "y")
	if h != nil {
		t.Fatal("nil tracer returned a live handle")
	}
	h.Attr("k", "v")
	h.End()
	if h.ID() != "" {
		t.Fatal("nil handle has an id")
	}
	tr.Add(Span{TraceID: "x"})
	if spans, _ := tr.Spans("x"); spans != nil {
		t.Fatal("nil tracer holds spans")
	}
}

func TestSpanIDsUnique(t *testing.T) {
	tr := NewTracer("w", 0, 0)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := tr.NewSpanID()
		if seen[id] {
			t.Fatalf("duplicate span id %s", id)
		}
		seen[id] = true
	}
}
