package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the retention half of the observability layer: a
// zero-dependency in-process time-series store. A Sampler snapshots
// every registry instrument on a fixed interval into bounded per-series
// ring buffers; a coordinator additionally ingests parsed /metrics
// scrapes from its fleet members (parse.go), labelled per instance, so
// one History holds the whole fleet's recent past. On top of the rings
// sit the query primitives the alert engine and the range endpoint
// need — Range, Latest, Increase, Rate, QuantileOver — plus
// WriteLatestPrometheus, which renders the merged latest view back out
// in exposition format (the federation endpoint's body).

// SeriesSample is one exposition sample inside a family snapshot: for
// plain counters/gauges Suffix is empty; histograms expand into
// "_bucket" (with an le label), "_sum" and "_count" samples exactly as
// the text exposition does.
type SeriesSample struct {
	Suffix string
	Labels [][2]string
	Value  float64
}

// FamilySnapshot is one metric family's point-in-time state: its
// exposition metadata plus every series' current value.
type FamilySnapshot struct {
	Name    string
	Help    string
	Type    string // "counter" | "gauge" | "histogram" | "untyped"
	Samples []SeriesSample
}

// Snapshot captures every registered family's current values — the
// sampler's input, structurally identical to what ParseExposition
// recovers from a remote scrape. Histogram buckets are cumulative and
// the _count sample equals the +Inf bucket (same one-pass discipline as
// WritePrometheus), so a snapshot always lints clean when re-rendered.
func (r *Registry) Snapshot() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, 0, len(names))
	series := make([][]*instrument, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		fams = append(fams, f)
		series = append(series, append([]*instrument(nil), f.series...))
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for i, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		for _, ins := range series[i] {
			switch {
			case ins.fn != nil:
				fs.Samples = append(fs.Samples, SeriesSample{Labels: ins.pairs, Value: ins.fn()})
			case ins.c != nil:
				fs.Samples = append(fs.Samples, SeriesSample{Labels: ins.pairs, Value: float64(ins.c.Value())})
			case ins.g != nil:
				fs.Samples = append(fs.Samples, SeriesSample{Labels: ins.pairs, Value: float64(ins.g.Value())})
			case ins.h != nil:
				h := ins.h
				var cum uint64
				for bi, ub := range h.bounds {
					cum += h.counts[bi].Load()
					fs.Samples = append(fs.Samples, SeriesSample{
						Suffix: "_bucket",
						Labels: append(append([][2]string(nil), ins.pairs...), [2]string{"le", formatFloat(ub)}),
						Value:  float64(cum),
					})
				}
				cum += h.counts[len(h.bounds)].Load()
				fs.Samples = append(fs.Samples,
					SeriesSample{
						Suffix: "_bucket",
						Labels: append(append([][2]string(nil), ins.pairs...), [2]string{"le", "+Inf"}),
						Value:  float64(cum),
					},
					SeriesSample{Suffix: "_sum", Labels: ins.pairs, Value: h.Sum()},
					SeriesSample{Suffix: "_count", Labels: ins.pairs, Value: float64(cum)},
				)
			}
		}
		out = append(out, fs)
	}
	return out
}

// HistPoint is one retained sample of one series.
type HistPoint struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// histSeries is one series' bounded ring. Samples are appended in
// ingest order (monotone per source); once the ring is full the oldest
// sample is overwritten.
type histSeries struct {
	suffix string
	labels [][2]string // sorted by key
	ring   []HistPoint
	next   int
	full   bool
}

// points returns the ring's samples oldest-first.
func (s *histSeries) points() []HistPoint {
	if !s.full {
		return s.ring[:s.next]
	}
	out := make([]HistPoint, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

func (s *histSeries) append(depth int, p HistPoint) {
	if len(s.ring) < depth {
		s.ring = append(s.ring, p)
		s.next = len(s.ring) % depth
		s.full = len(s.ring) == depth
		return
	}
	s.ring[s.next] = p
	s.next = (s.next + 1) % len(s.ring)
	s.full = true
}

// histFamily groups one metric name's retained series with its
// exposition metadata.
type histFamily struct {
	name, help, typ string
	series          map[string]*histSeries // key: suffix + canonical labels
	order           []string               // sorted keys
}

// DefaultHistoryDepth bounds each series' ring when the caller passes
// zero: 360 samples = 12 minutes at the default 2 s interval.
const DefaultHistoryDepth = 360

// History is the in-process time-series store. All methods are safe
// for concurrent use; a nil *History ignores ingests and answers every
// query empty.
type History struct {
	mu    sync.Mutex
	depth int
	fams  map[string]*histFamily
	names []string // sorted family names
}

// NewHistory builds a store retaining up to depth samples per series
// (<= 0 = DefaultHistoryDepth).
func NewHistory(depth int) *History {
	if depth <= 0 {
		depth = DefaultHistoryDepth
	}
	return &History{depth: depth, fams: make(map[string]*histFamily)}
}

// Depth returns the per-series ring capacity.
func (h *History) Depth() int {
	if h == nil {
		return 0
	}
	return h.depth
}

// Ingest appends one snapshot generation — a local Registry.Snapshot or
// a parsed remote scrape — at time t. instance, when non-empty, is
// added as an `instance` label on every series, so one History can hold
// many processes' samples side by side. The whole generation lands
// under one lock acquisition: readers never observe half an ingest,
// which keeps histogram bucket/count pairs consistent per scrape.
func (h *History) Ingest(fams []FamilySnapshot, instance string, t time.Time) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, f := range fams {
		hf := h.fams[f.Name]
		if hf == nil {
			hf = &histFamily{name: f.Name, help: f.Help, typ: f.Type, series: make(map[string]*histSeries)}
			h.fams[f.Name] = hf
			h.names = append(h.names, f.Name)
			sort.Strings(h.names)
		}
		for _, s := range f.Samples {
			labels := s.Labels
			if instance != "" && labelIndex(labels, "instance") < 0 {
				labels = append(append([][2]string(nil), labels...), [2]string{"instance", instance})
			}
			key := s.Suffix + canonicalLabels(labels)
			hs := hf.series[key]
			if hs == nil {
				sorted := append([][2]string(nil), labels...)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
				hs = &histSeries{suffix: s.Suffix, labels: sorted}
				hf.series[key] = hs
				hf.order = append(hf.order, key)
				sort.Strings(hf.order)
			}
			hs.append(h.depth, HistPoint{T: t, V: s.Value})
		}
	}
}

func labelIndex(labels [][2]string, key string) int {
	for i, kv := range labels {
		if kv[0] == key {
			return i
		}
	}
	return -1
}

// findSeries resolves a sample name — a plain family name, or a
// histogram expansion like wt_journal_fsync_seconds_count — to its
// retained series. Caller holds h.mu.
func (h *History) findSeries(name string) []*histSeries {
	want := ""
	hf := h.fams[name]
	if hf == nil {
		base, kind := histogramBase(name)
		if kind == "" {
			return nil
		}
		if hf = h.fams[base]; hf == nil || hf.typ != "histogram" {
			return nil
		}
		want = "_" + kind
	}
	var out []*histSeries
	for _, key := range hf.order {
		if s := hf.series[key]; s.suffix == want {
			out = append(out, s)
		}
	}
	return out
}

// SeriesRange is one series' retained samples within a query window.
type SeriesRange struct {
	Labels string      `json:"labels"`
	Points []HistPoint `json:"points"`
}

// Range returns every matching series' samples within [now-window, now],
// oldest first. name may be a family name or a histogram expansion
// (_bucket/_sum/_count); an unknown name returns nil.
func (h *History) Range(name string, window time.Duration, now time.Time) []SeriesRange {
	if h == nil {
		return nil
	}
	cut := now.Add(-window)
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []SeriesRange
	for _, s := range h.findSeries(name) {
		pts := s.points()
		i := 0
		for i < len(pts) && pts[i].T.Before(cut) {
			i++
		}
		if i == len(pts) {
			continue
		}
		out = append(out, SeriesRange{
			Labels: canonicalLabels(s.labels),
			Points: append([]HistPoint(nil), pts[i:]...),
		})
	}
	return out
}

// SeriesValue is one series' latest retained sample.
type SeriesValue struct {
	Labels string    `json:"labels"`
	T      time.Time `json:"t"`
	V      float64   `json:"v"`
}

// Latest returns every matching series' newest sample.
func (h *History) Latest(name string) []SeriesValue {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []SeriesValue
	for _, s := range h.findSeries(name) {
		pts := s.points()
		if len(pts) == 0 {
			continue
		}
		last := pts[len(pts)-1]
		out = append(out, SeriesValue{Labels: canonicalLabels(s.labels), T: last.T, V: last.V})
	}
	return out
}

// SeriesDelta is a counter series' growth over a window.
type SeriesDelta struct {
	Labels  string        `json:"labels"`
	Delta   float64       `json:"delta"`
	Elapsed time.Duration `json:"elapsed"`
	Samples int           `json:"samples"`
}

// PerSec returns the delta as a per-second rate (0 when the window
// holds fewer than two samples).
func (d SeriesDelta) PerSec() float64 {
	if d.Elapsed <= 0 {
		return 0
	}
	return d.Delta / d.Elapsed.Seconds()
}

// Increase computes each matching counter series' growth over
// [now-window, now], reset-aware: a sample below its predecessor (the
// process restarted and the counter started over) contributes its full
// value, the Prometheus convention, so rates survive a worker bounce
// without going negative. Series with fewer than two samples in the
// window are omitted.
func (h *History) Increase(name string, window time.Duration, now time.Time) []SeriesDelta {
	var out []SeriesDelta
	for _, r := range h.Range(name, window, now) {
		if len(r.Points) < 2 {
			continue
		}
		var inc float64
		for i := 1; i < len(r.Points); i++ {
			if d := r.Points[i].V - r.Points[i-1].V; d >= 0 {
				inc += d
			} else {
				inc += r.Points[i].V
			}
		}
		out = append(out, SeriesDelta{
			Labels:  r.Labels,
			Delta:   inc,
			Elapsed: r.Points[len(r.Points)-1].T.Sub(r.Points[0].T),
			Samples: len(r.Points),
		})
	}
	return out
}

// QuantileOver estimates the q-quantile (0 < q < 1) of a histogram
// family's observations that landed within [now-window, now], per
// series (grouped by non-le labels): the per-bucket increase over the
// window forms the distribution, interpolated linearly inside the
// bucket that crosses the target rank — histogram_quantile's method.
// Series whose window saw no observations are omitted; a quantile
// landing in the +Inf bucket reports the highest finite bound.
func (h *History) QuantileOver(name string, q float64, window time.Duration, now time.Time) []SeriesValue {
	type bucket struct {
		le  float64
		inf bool
		inc float64
	}
	groups := make(map[string][]bucket)
	var order []string
	for _, d := range h.Increase(name+"_bucket", window, now) {
		le, rest := splitLE(d.Labels)
		if le == "" {
			continue
		}
		b := bucket{inc: d.Delta}
		if le == "+Inf" {
			b.inf = true
		} else if f, err := strconv.ParseFloat(le, 64); err == nil {
			b.le = f
		} else {
			continue
		}
		if _, seen := groups[rest]; !seen {
			order = append(order, rest)
		}
		groups[rest] = append(groups[rest], b)
	}
	var out []SeriesValue
	for _, labels := range order {
		bs := groups[labels]
		sort.Slice(bs, func(i, j int) bool {
			if bs[i].inf != bs[j].inf {
				return bs[j].inf
			}
			return bs[i].le < bs[j].le
		})
		if len(bs) == 0 || !bs[len(bs)-1].inf {
			continue
		}
		total := bs[len(bs)-1].inc
		if total <= 0 {
			continue
		}
		target := q * total
		prevLE, prevCum := 0.0, 0.0
		v := bs[len(bs)-1].le
		for _, b := range bs {
			if b.inc >= target {
				if b.inf {
					// The quantile is past every finite bound; the highest
					// finite bucket edge is the best honest answer.
					v = prevLE
					break
				}
				span := b.inc - prevCum
				if span > 0 {
					v = prevLE + (b.le-prevLE)*(target-prevCum)/span
				} else {
					v = b.le
				}
				break
			}
			prevLE, prevCum = b.le, b.inc
			if !b.inf {
				v = b.le
			}
		}
		out = append(out, SeriesValue{Labels: labels, T: now, V: v})
	}
	return out
}

// splitLE extracts the le label from a canonical label suffix and
// returns (le value, the suffix without le).
func splitLE(labels string) (le, rest string) {
	if labels == "" {
		return "", ""
	}
	// Borrow the exposition tokenizer by dressing the label suffix back
	// up as a sample line.
	_, pairs, _, err := parseSample("x" + labels + " 0")
	if err != nil {
		return "", labels
	}
	v, ok := labelValue(pairs, "le")
	if !ok {
		return "", labels
	}
	return v, canonicalLabels(dropLabel(pairs, "le"))
}

// FamilyNames lists every retained family, sorted.
func (h *History) FamilyNames() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.names...)
}

// WriteLatestPrometheus renders every retained series' newest sample in
// exposition format — the federated fleet view. Families are sorted by
// name with one HELP/TYPE line each; series sort by their canonical
// key, so the output is deterministic and lint-clean (each instance's
// histogram bucket/count samples come from one atomic ingest, so the
// cumulative invariants hold).
func (h *History) WriteLatestPrometheus(w io.Writer) error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	var b strings.Builder
	for _, name := range h.names {
		hf := h.fams[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", hf.name, escapeHelp(hf.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", hf.name, hf.typ)
		for _, key := range hf.order {
			s := hf.series[key]
			pts := s.points()
			if len(pts) == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s%s%s %s\n", hf.name, s.suffix,
				canonicalLabels(s.labels), formatFloat(pts[len(pts)-1].V))
		}
	}
	h.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// DefaultSampleInterval is the sampler's default period.
const DefaultSampleInterval = 2 * time.Second

// Sampler drives a History from a Registry on a fixed interval in a
// background goroutine. Stop is idempotent and waits for the loop to
// exit. A nil *Sampler is safe to Stop.
type Sampler struct {
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartSampler begins sampling r into h every interval (<= 0 =
// DefaultSampleInterval), labelling series with instance (may be
// empty). One immediate sample lands before the first tick so queries
// have data as soon as the process is up.
func StartSampler(h *History, r *Registry, instance string, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &Sampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		h.Ingest(r.Snapshot(), instance, time.Now())
		for {
			select {
			case <-s.stop:
				return
			case t := <-ticker.C:
				h.Ingest(r.Snapshot(), instance, t)
			}
		}
	}()
	return s
}

// Stop ends the sampling loop and waits for it.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
