package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseExposition decodes a Prometheus text-exposition payload (the
// body of a /metrics scrape) into family snapshots, the same shape
// Registry.Snapshot produces, so a coordinator can ingest a remote
// worker's scrape into a History exactly like its own registry. It
// shares the sample tokenizer with Lint but is deliberately lenient
// where Lint is strict: unknown families become "untyped", missing HELP
// is tolerated, and histogram suffixes of a declared histogram family
// fold back into that family as _bucket/_sum/_count samples. Malformed
// sample lines are errors — a scrape that doesn't tokenize shouldn't be
// half-ingested.
func ParseExposition(data []byte) ([]FamilySnapshot, error) {
	type famAcc struct {
		snap *FamilySnapshot
	}
	fams := make(map[string]*famAcc)
	var order []*famAcc
	get := func(name string) *famAcc {
		f := fams[name]
		if f == nil {
			f = &famAcc{snap: &FamilySnapshot{Name: name, Type: "untyped"}}
			fams[name] = f
			order = append(order, f)
		}
		return f
	}

	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // stray comment, not metadata
			}
			switch fields[1] {
			case "HELP":
				f := get(fields[2])
				if len(fields) == 4 {
					f.snap.Help = fields[3]
				}
			case "TYPE":
				if len(fields) == 4 {
					get(fields[2]).snap.Type = fields[3]
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: sample %s: bad value %q", i+1, name, value)
		}

		// A _bucket/_sum/_count sample whose base family is a declared
		// histogram is that histogram's expansion; anything else is a
		// family in its own right (a counter named _count, say).
		var fam *famAcc
		suffix := ""
		if base, kind := histogramBase(name); kind != "" {
			if bf, ok := fams[base]; ok && bf.snap.Type == "histogram" {
				fam, suffix = bf, "_"+kind
			}
		}
		if fam == nil {
			fam = get(name)
		}
		fam.snap.Samples = append(fam.snap.Samples, SeriesSample{Suffix: suffix, Labels: labels, Value: v})
	}

	out := make([]FamilySnapshot, 0, len(order))
	for _, f := range order {
		if len(f.snap.Samples) == 0 && f.snap.Type == "untyped" && f.snap.Help == "" {
			continue
		}
		out = append(out, *f.snap)
	}
	return out, nil
}
