package obs

import (
	"io"
	"testing"
	"time"
)

// BenchmarkMetricsCounter measures the hot-path counter increment — the
// cost every committed point, cache hit and HTTP request pays.
func BenchmarkMetricsCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("wt_bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkMetricsCounterParallel measures the same increment under
// GOMAXPROCS-way contention.
func BenchmarkMetricsCounterParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("wt_bench_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkHistogramObserve measures one latency observation.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("wt_bench_seconds", "bench", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

// BenchmarkTraceSpan measures a full start-attr-end span record into the
// ring buffer — the per-point tracing cost.
func BenchmarkTraceSpan(b *testing.B) {
	tr := NewTracer("bench", 4, 1024)
	trace := tr.NewTraceID()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(trace, "", "simulate")
		sp.End()
	}
}

// BenchmarkTraceAdd measures recording a pre-timed span (the point-commit
// path, which reuses the outcome's measured duration).
func BenchmarkTraceAdd(b *testing.B) {
	tr := NewTracer("bench", 4, 1024)
	trace := tr.NewTraceID()
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(Span{TraceID: trace, SpanID: tr.NewSpanID(), Name: "simulate", Start: now, Duration: time.Millisecond})
	}
}

// BenchmarkWritePrometheus measures a full scrape over a realistic
// registry (a few dozen series including histograms).
func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, name := range []string{"wt_a_total", "wt_b_total", "wt_c_total", "wt_d_total"} {
		r.Counter(name, "bench").Add(12345)
	}
	for _, route := range []string{"/v1/query", "/v1/jobs", "/v1/cache", "/v1/fleet"} {
		h := r.Histogram("wt_http_request_seconds", "bench", DurationBuckets, "route", route)
		for i := 0; i < 32; i++ {
			h.Observe(float64(i) / 100)
		}
		r.Counter("wt_http_requests_total", "bench", "route", route, "code", "200").Add(99)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
