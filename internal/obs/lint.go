package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-exposition payload and returns one
// human-readable problem per violation (empty = clean). It is the
// hand-rolled validator CI runs against live /metrics scrapes, checking
// the invariants the exposition format promises:
//
//   - every sample belongs to a family announced by a # TYPE line, and
//     the family has a # HELP line;
//   - no duplicate series (same name + label set twice);
//   - label values are properly quoted and escaped;
//   - histogram buckets are cumulative (monotonically non-decreasing in
//     ascending le order), end at le="+Inf", and the +Inf bucket equals
//     the family's _count sample;
//   - sample values parse as floats.
func Lint(data []byte) []string {
	var problems []string
	addf := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type famState struct {
		typ     string
		help    bool
		typLine int
	}
	families := make(map[string]*famState)
	seen := make(map[string]int) // series (name+labels) -> first line
	type bucketKey struct {
		series string // histogram name + non-le labels
	}
	type bucketSample struct {
		le   float64
		inf  bool
		val  float64
		line int
	}
	buckets := make(map[bucketKey][]bucketSample)
	counts := make(map[string]float64) // histogram _count by series

	lines := strings.Split(string(data), "\n")
	for i, raw := range lines {
		n := i + 1
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				addf(n, "malformed comment line %q", line)
				continue
			}
			switch fields[1] {
			case "HELP":
				f := families[fields[2]]
				if f == nil {
					f = &famState{}
					families[fields[2]] = f
				}
				f.help = true
			case "TYPE":
				if len(fields) < 4 {
					addf(n, "TYPE line without a type: %q", line)
					continue
				}
				f := families[fields[2]]
				if f == nil {
					f = &famState{}
					families[fields[2]] = f
				}
				if f.typ != "" {
					addf(n, "duplicate TYPE for %s (first at line %d)", fields[2], f.typLine)
				}
				f.typ, f.typLine = fields[3], n
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf(n, "%v", err)
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			addf(n, "sample %s: bad value %q", name, value)
			continue
		}

		series := name + canonicalLabels(labels)
		if first, dup := seen[series]; dup {
			addf(n, "duplicate series %s (first at line %d)", series, first)
		} else {
			seen[series] = n
		}

		base, kind := histogramBase(name)
		fam := families[base]
		if kind != "" && (fam == nil || (fam.typ != "histogram" && fam.typ != "summary")) {
			// The suffix is part of the metric's real name (a counter
			// ending in _count, say), not a histogram expansion.
			base, kind, fam = name, "", families[name]
		}
		if fam == nil || fam.typ == "" {
			addf(n, "sample %s has no preceding # TYPE line", name)
			continue
		}
		if !fam.help {
			addf(n, "family %s has no # HELP line", base)
			fam.help = true // report once
		}

		if fam.typ == "histogram" {
			switch kind {
			case "bucket":
				le, hasLE := labelValue(labels, "le")
				if !hasLE {
					addf(n, "histogram bucket %s without an le label", name)
					continue
				}
				bs := bucketSample{val: v, line: n}
				if le == "+Inf" {
					bs.inf = true
				} else {
					f, err := strconv.ParseFloat(le, 64)
					if err != nil {
						addf(n, "histogram bucket %s: bad le %q", name, le)
						continue
					}
					bs.le = f
				}
				key := bucketKey{series: base + canonicalLabels(dropLabel(labels, "le"))}
				buckets[key] = append(buckets[key], bs)
			case "count":
				counts[base+canonicalLabels(labels)] = v
			}
		}
	}

	// Cross-line histogram invariants.
	keys := make([]bucketKey, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].series < keys[j].series })
	for _, k := range keys {
		bs := buckets[k]
		sort.Slice(bs, func(i, j int) bool {
			if bs[i].inf != bs[j].inf {
				return bs[j].inf
			}
			return bs[i].le < bs[j].le
		})
		prev := -1.0
		sawInf := false
		for _, b := range bs {
			if b.val < prev {
				problems = append(problems, fmt.Sprintf("line %d: histogram %s buckets not cumulative: %v after %v", b.line, k.series, b.val, prev))
			}
			prev = b.val
			if b.inf {
				sawInf = true
			}
		}
		if !sawInf {
			problems = append(problems, fmt.Sprintf("histogram %s has no le=\"+Inf\" bucket", k.series))
			continue
		}
		if c, ok := counts[k.series]; ok && c != prev {
			problems = append(problems, fmt.Sprintf("histogram %s: _count %v != +Inf bucket %v", k.series, c, prev))
		}
	}
	return problems
}

// parseSample splits one sample line into name, label pairs and the
// value text, validating quoting and escapes along the way.
func parseSample(line string) (name string, labels [][2]string, value string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if name == "" {
		return "", nil, "", fmt.Errorf("sample with empty metric name: %q", line)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if rest == "" {
				return "", nil, "", fmt.Errorf("sample %s: unterminated label set", name)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, "", fmt.Errorf("sample %s: label without =", name)
			}
			key := rest[:eq]
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return "", nil, "", fmt.Errorf("sample %s: label %s value not quoted", name, key)
			}
			val, remain, err := unquoteLabel(rest)
			if err != nil {
				return "", nil, "", fmt.Errorf("sample %s: label %s: %v", name, key, err)
			}
			labels = append(labels, [2]string{key, val})
			rest = remain
		}
	}
	value = strings.TrimSpace(rest)
	if value == "" {
		return "", nil, "", fmt.Errorf("sample %s: missing value", name)
	}
	// A timestamp after the value is legal; keep just the value.
	if j := strings.IndexByte(value, ' '); j >= 0 {
		value = value[:j]
	}
	return name, labels, value, nil
}

// unquoteLabel consumes a quoted, escaped label value starting at the
// opening quote and returns the decoded value plus the remainder.
func unquoteLabel(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// canonicalLabels renders label pairs sorted by key, so series identity
// is label-order independent.
func canonicalLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([][2]string(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[0], kv[1])
	}
	b.WriteByte('}')
	return b.String()
}

func labelValue(labels [][2]string, key string) (string, bool) {
	for _, kv := range labels {
		if kv[0] == key {
			return kv[1], true
		}
	}
	return "", false
}

func dropLabel(labels [][2]string, key string) [][2]string {
	out := make([][2]string, 0, len(labels))
	for _, kv := range labels {
		if kv[0] != key {
			out = append(out, kv)
		}
	}
	return out
}

// histogramBase strips a histogram sample suffix, returning the family
// name and which suffix it was ("bucket", "sum", "count", or "").
func histogramBase(name string) (string, string) {
	switch {
	case strings.HasSuffix(name, "_bucket"):
		return name[:len(name)-len("_bucket")], "bucket"
	case strings.HasSuffix(name, "_sum"):
		return name[:len(name)-len("_sum")], "sum"
	case strings.HasSuffix(name, "_count"):
		return name[:len(name)-len("_count")], "count"
	}
	return name, ""
}
