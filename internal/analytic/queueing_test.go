package analytic

import (
	"math"
	"testing"
)

func TestMM1KnownValues(t *testing.T) {
	q, err := NewMM1(0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Rho()-0.5) > 1e-12 {
		t.Errorf("rho = %v, want 0.5", q.Rho())
	}
	if math.Abs(q.L()-1.0) > 1e-12 {
		t.Errorf("L = %v, want 1", q.L())
	}
	if math.Abs(q.W()-2.0) > 1e-12 {
		t.Errorf("W = %v, want 2", q.W())
	}
	if math.Abs(q.Wq()-1.0) > 1e-12 {
		t.Errorf("Wq = %v, want 1", q.Wq())
	}
	if math.Abs(q.Lq()-0.5) > 1e-12 {
		t.Errorf("Lq = %v, want 0.5", q.Lq())
	}
}

func TestMM1LittleLaw(t *testing.T) {
	for _, rho := range []float64{0.1, 0.5, 0.9, 0.99} {
		q, err := NewMM1(rho, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(q.L()-q.Lambda*q.W()) > 1e-9 {
			t.Errorf("rho=%v: L=%v != lambda*W=%v", rho, q.L(), q.Lambda*q.W())
		}
	}
}

func TestMM1ResponseQuantile(t *testing.T) {
	q, err := NewMM1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Median of Exp(0.5) = ln2/0.5.
	want := math.Ln2 / 0.5
	if got := q.ResponseQuantile(0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("median response = %v, want %v", got, want)
	}
}

func TestMM1Validation(t *testing.T) {
	if _, err := NewMM1(1, 1); err == nil {
		t.Error("unstable M/M/1 accepted")
	}
	if _, err := NewMM1(-1, 1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	m1, err := NewMM1(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMMc(0.7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1.Wq()-mc.Wq()) > 1e-12 {
		t.Errorf("M/M/1 Wq=%v vs M/M/c(1) Wq=%v", m1.Wq(), mc.Wq())
	}
	// Erlang C with one server equals rho.
	if math.Abs(mc.ErlangC()-0.7) > 1e-12 {
		t.Errorf("ErlangC(c=1) = %v, want rho=0.7", mc.ErlangC())
	}
}

func TestMMcKnownValue(t *testing.T) {
	// Classic textbook case: lambda=2, mu=1, c=3 => ErlangC ~ 0.4444.
	q, err := NewMMc(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.ErlangC(); math.Abs(got-4.0/9) > 1e-9 {
		t.Errorf("ErlangC = %v, want %v", got, 4.0/9)
	}
	if got := q.Wq(); math.Abs(got-4.0/9) > 1e-9 {
		t.Errorf("Wq = %v, want 4/9", got)
	}
}

func TestErlangBMonotone(t *testing.T) {
	// Blocking decreases with more servers, increases with load.
	prev := 1.1
	for c := 1; c <= 20; c++ {
		b := ErlangB(5, c)
		if b >= prev {
			t.Errorf("ErlangB(5, %d) = %v not decreasing (prev %v)", c, b, prev)
		}
		prev = b
	}
	if ErlangB(1, 5) >= ErlangB(10, 5) {
		t.Error("ErlangB should increase with offered load")
	}
}

func TestMMcKBlockingAndConsistency(t *testing.T) {
	// With K very large, M/M/c/K approaches M/M/c.
	mc, err := NewMMc(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	mck, err := NewMMcK(2, 1, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	if mck.BlockingProbability() > 1e-12 {
		t.Errorf("blocking with huge K = %v, want ~0", mck.BlockingProbability())
	}
	if math.Abs(mck.L()-mc.L()) > 1e-6 {
		t.Errorf("M/M/c/K L=%v vs M/M/c L=%v", mck.L(), mc.L())
	}
	// K = c gives Erlang-B blocking.
	loss, err := NewMMcK(2, 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loss.BlockingProbability(), ErlangB(2, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("M/M/c/c blocking = %v, want ErlangB = %v", got, want)
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// Exponential service: var = mean^2.
	mm1, err := NewMM1(0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	mg1, err := NewMG1(0.6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mm1.Wq()-mg1.Wq()) > 1e-12 {
		t.Errorf("M/G/1 with exp service Wq=%v, want M/M/1 Wq=%v", mg1.Wq(), mm1.Wq())
	}
}

func TestMG1DeterministicHalvesWait(t *testing.T) {
	// P-K: deterministic service halves the waiting time vs exponential.
	exp, err := NewMG1(0.6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewMG1(0.6, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(det.Wq()-exp.Wq()/2) > 1e-12 {
		t.Errorf("M/D/1 Wq = %v, want half of M/M/1's %v", det.Wq(), exp.Wq())
	}
}

func TestKingmanMatchesMM1(t *testing.T) {
	// With ca2 = cs2 = 1, Kingman is exact for M/M/1.
	mm1, err := NewMM1(0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	wq, err := GG1Kingman(0.8, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wq-mm1.Wq()) > 1e-12 {
		t.Errorf("Kingman = %v, want %v", wq, mm1.Wq())
	}
}

func TestAllenCunneenMatchesMMc(t *testing.T) {
	mc, err := NewMMc(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	wq, err := GGcAllenCunneen(2, 1, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wq-mc.Wq()) > 1e-12 {
		t.Errorf("Allen-Cunneen = %v, want %v", wq, mc.Wq())
	}
}

func TestStabilityValidation(t *testing.T) {
	if _, err := NewMMc(3, 1, 3); err == nil {
		t.Error("unstable M/M/c accepted")
	}
	if _, err := NewMG1(1, 1, 0); err == nil {
		t.Error("unstable M/G/1 accepted")
	}
	if _, err := GG1Kingman(2, 1, 1, 1); err == nil {
		t.Error("unstable G/G/1 accepted")
	}
	if _, err := NewMMcK(1, 1, 2, 1); err == nil {
		t.Error("K < c accepted")
	}
}
