package analytic

import (
	"fmt"
	"math"
)

// BirthDeath solves a finite birth–death chain on states 0..N with birth
// rates Birth[i] (i -> i+1) and death rates Death[i] (i -> i-1, indexed by
// the source state). Steady-state probabilities follow the detailed-balance
// product form.
//
// Availability models are birth–death chains on "number of failed
// replicas": births are failures, deaths are repairs. The paper's §2.2
// describes exactly this class of model (and its limits).
type BirthDeath struct {
	Birth []float64 // len N: rate from state i to i+1, i = 0..N-1
	Death []float64 // len N: rate from state i+1 to i, i = 0..N-1
}

// NewBirthDeath validates the chain: equal-length positive-rate slices.
// A zero birth rate truncates the chain (states beyond are unreachable).
func NewBirthDeath(birth, death []float64) (*BirthDeath, error) {
	if len(birth) == 0 || len(birth) != len(death) {
		return nil, fmt.Errorf("analytic: birth/death slices must be non-empty and equal length (%d vs %d)",
			len(birth), len(death))
	}
	for i, d := range death {
		if d <= 0 {
			return nil, fmt.Errorf("analytic: death rate %d must be positive, got %v", i, d)
		}
		if birth[i] < 0 {
			return nil, fmt.Errorf("analytic: birth rate %d must be non-negative, got %v", i, birth[i])
		}
	}
	return &BirthDeath{Birth: birth, Death: death}, nil
}

// SteadyState returns the stationary distribution over states 0..N.
func (bd *BirthDeath) SteadyState() []float64 {
	n := len(bd.Birth)
	p := make([]float64, n+1)
	p[0] = 1
	for i := 0; i < n; i++ {
		p[i+1] = p[i] * bd.Birth[i] / bd.Death[i]
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// MeanState returns the steady-state expected state index.
func (bd *BirthDeath) MeanState() float64 {
	p := bd.SteadyState()
	m := 0.0
	for i, v := range p {
		m += float64(i) * v
	}
	return m
}

// ReplicaAvailabilityModel is the classical Markov availability model for
// an object with N replicas: replicas fail independently at FailRate each
// and are repaired at RepairRate. With ParallelRepair, all failed replicas
// repair concurrently (rate k*RepairRate in state k); otherwise one repair
// proceeds at a time — the software design choice highlighted in §1.
type ReplicaAvailabilityModel struct {
	N              int
	FailRate       float64 // per replica, per unit time
	RepairRate     float64 // per repair stream, per unit time
	ParallelRepair bool
}

// NewReplicaAvailabilityModel validates and constructs the model.
func NewReplicaAvailabilityModel(n int, failRate, repairRate float64, parallel bool) (*ReplicaAvailabilityModel, error) {
	if n < 1 {
		return nil, fmt.Errorf("analytic: replica model needs n >= 1, got %d", n)
	}
	if failRate <= 0 || repairRate <= 0 {
		return nil, fmt.Errorf("analytic: replica model rates must be positive (fail=%v, repair=%v)",
			failRate, repairRate)
	}
	return &ReplicaAvailabilityModel{N: n, FailRate: failRate, RepairRate: repairRate,
		ParallelRepair: parallel}, nil
}

// chain builds the underlying birth–death chain on failed-replica count.
func (m *ReplicaAvailabilityModel) chain() *BirthDeath {
	birth := make([]float64, m.N)
	death := make([]float64, m.N)
	for k := 0; k < m.N; k++ {
		// k replicas failed: N-k healthy replicas can fail.
		birth[k] = float64(m.N-k) * m.FailRate
		if m.ParallelRepair {
			death[k] = float64(k+1) * m.RepairRate
		} else {
			death[k] = m.RepairRate
		}
	}
	bd, err := NewBirthDeath(birth, death)
	if err != nil {
		// Construction is internal; rates are positive by validation.
		panic(err)
	}
	return bd
}

// StateProbabilities returns steady-state probabilities over the number of
// failed replicas 0..N.
func (m *ReplicaAvailabilityModel) StateProbabilities() []float64 {
	return m.chain().SteadyState()
}

// Unavailability returns the steady-state probability that at least
// quorumDown replicas are simultaneously failed. For a majority-quorum
// system, pass quorumDown = floor(N/2)+1 (the paper's Figure-1 criterion);
// for "all copies lost", pass N.
func (m *ReplicaAvailabilityModel) Unavailability(quorumDown int) float64 {
	if quorumDown < 0 {
		quorumDown = 0
	}
	p := m.StateProbabilities()
	u := 0.0
	for k := quorumDown; k <= m.N; k++ {
		u += p[k]
	}
	return u
}

// MajorityQuorumDown returns the minimum number of failed replicas that
// breaks a majority quorum of n replicas: floor(n/2)+1.
func MajorityQuorumDown(n int) int { return n/2 + 1 }

// MTTDL approximates the mean time to data loss (all N replicas failed)
// for the model via the standard absorbing-chain first-passage formula on
// the birth–death chain with state N absorbing.
func (m *ReplicaAvailabilityModel) MTTDL() float64 {
	// Expected first passage time from state 0 to state N for a
	// birth–death chain: sum over i<N of (1/ (birth_i * pi_i)) * sum_{j<=i} pi_j
	// where pi is the (unnormalized) reversibility measure.
	bd := m.chain()
	n := len(bd.Birth)
	pi := make([]float64, n)
	pi[0] = 1
	for i := 1; i < n; i++ {
		pi[i] = pi[i-1] * bd.Birth[i-1] / bd.Death[i-1]
	}
	total := 0.0
	for i := 0; i < n; i++ {
		prefix := 0.0
		for j := 0; j <= i; j++ {
			prefix += pi[j]
		}
		total += prefix / (bd.Birth[i] * pi[i])
	}
	return total
}

// SteadyStateAvailability returns 1 - Unavailability(quorumDown).
func (m *ReplicaAvailabilityModel) SteadyStateAvailability(quorumDown int) float64 {
	return 1 - m.Unavailability(quorumDown)
}

// Nines converts an availability a in (0,1) to "number of nines"
// (-log10(1-a)); returns +Inf for a == 1.
func Nines(a float64) float64 {
	if a >= 1 {
		return math.Inf(1)
	}
	if a <= 0 {
		return 0
	}
	return -math.Log10(1 - a)
}
