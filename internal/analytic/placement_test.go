package analytic

import (
	"math"
	"math/bits"
	"testing"
)

func TestBinomialCoeff(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{30, 15, 155117520}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := BinomialCoeff(c.n, c.k); math.Abs(got-c.want) > 1e-6*math.Max(1, c.want) {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestHypergeomTailEdges(t *testing.T) {
	// kMin=0 is certain.
	if got := HypergeomTail(10, 3, 3, 0); got != 1 {
		t.Errorf("tail at 0 = %v, want 1", got)
	}
	// More failures than needed: f=N means all replicas failed.
	if got := HypergeomTail(10, 10, 3, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("tail with all failed = %v, want 1", got)
	}
	// Impossible: need more failed replicas than failures exist.
	if got := HypergeomTail(10, 1, 3, 2); got != 0 {
		t.Errorf("tail with f=1, kMin=2 = %v, want 0", got)
	}
}

func TestRandomPlacementHandComputed(t *testing.T) {
	// N=10, n=3, f=2, majority=2: p = C(2,2)*C(8,1)/C(10,3) = 8/120.
	p, err := RandomPlacementUserUnavailable(10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 8.0 / 120; math.Abs(p-want) > 1e-12 {
		t.Errorf("p = %v, want %v", p, want)
	}
}

func TestRandomPlacementMonotoneInFailures(t *testing.T) {
	prev := -1.0
	for f := 0; f <= 10; f++ {
		p, err := RandomPlacementUnavailability(10, 3, f, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev-1e-12 {
			t.Errorf("unavailability not monotone at f=%d: %v < %v", f, p, prev)
		}
		prev = p
	}
}

func TestRandomPlacementZeroAndFullFailures(t *testing.T) {
	p, err := RandomPlacementUnavailability(10, 3, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("f=0 gives %v, want 0", p)
	}
	p, err = RandomPlacementUnavailability(10, 3, 10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Errorf("f=N gives %v, want 1", p)
	}
}

func TestRoundRobinHandComputed(t *testing.T) {
	// N=10, n=3, f=2: unavailable iff the two failures are within cyclic
	// distance <= 2: 20 of 45 pairs.
	p, err := RoundRobinUnavailability(10, 3, 2, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if want := 20.0 / 45; math.Abs(p-want) > 1e-12 {
		t.Errorf("p = %v, want %v", p, want)
	}
}

// bruteForceRoundRobin enumerates all C(N,f) failure sets and checks the
// cyclic-window condition directly.
func bruteForceRoundRobin(N, n, f int) float64 {
	q := MajorityQuorumDown(n)
	unavailable := 0
	total := 0
	for mask := 0; mask < 1<<N; mask++ {
		if bits.OnesCount(uint(mask)) != f {
			continue
		}
		total++
		bad := false
		for s := 0; s < N && !bad; s++ {
			cnt := 0
			for j := 0; j < n; j++ {
				if mask>>((s+j)%N)&1 == 1 {
					cnt++
				}
			}
			if cnt >= q {
				bad = true
			}
		}
		if bad {
			unavailable++
		}
	}
	return float64(unavailable) / float64(total)
}

func TestRoundRobinMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct{ N, n int }{
		{8, 3}, {10, 3}, {10, 5}, {12, 5}, {9, 4}, {7, 2},
	} {
		for f := 0; f <= tc.N; f++ {
			want := bruteForceRoundRobin(tc.N, tc.n, f)
			got, err := RoundRobinUnavailability(tc.N, tc.n, f, 10000)
			if err != nil {
				t.Fatalf("N=%d n=%d f=%d: %v", tc.N, tc.n, f, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("N=%d n=%d f=%d: DP=%v bruteforce=%v", tc.N, tc.n, f, got, want)
			}
		}
	}
}

func TestRoundRobinBelowRandomForSmallFailures(t *testing.T) {
	// The paper's Figure-1 shape: with many users, RoundRobin exposes only
	// N distinct replica sets while Random exposes nearly all C(N,n), so
	// RR unavailability is lower at small failure counts.
	for _, f := range []int{2, 3} {
		rr, err := RoundRobinUnavailability(10, 3, f, 10000)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := RandomPlacementUnavailability(10, 3, f, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if rr >= rd {
			t.Errorf("f=%d: RR %v should be below Random %v with 10k users", f, rr, rd)
		}
	}
}

func TestHigherReplicationLowersUnavailability(t *testing.T) {
	for f := 1; f <= 5; f++ {
		p3, err := RandomPlacementUnavailability(30, 3, f, 10000)
		if err != nil {
			t.Fatal(err)
		}
		p5, err := RandomPlacementUnavailability(30, 5, f, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if p5 > p3+1e-12 {
			t.Errorf("f=%d: n=5 unavailability %v exceeds n=3's %v", f, p5, p3)
		}
	}
}

func TestLargerClusterShiftsCurveRight(t *testing.T) {
	// At the same absolute failure count, a larger cluster has lower
	// per-user loss probability under Random placement.
	for f := 2; f <= 6; f++ {
		p10, err := RandomPlacementUserUnavailable(10, 3, f)
		if err != nil {
			t.Fatal(err)
		}
		p30, err := RandomPlacementUserUnavailable(30, 3, f)
		if err != nil {
			t.Fatal(err)
		}
		if p30 >= p10 {
			t.Errorf("f=%d: per-user p N=30 (%v) should be below N=10 (%v)", f, p30, p10)
		}
	}
}

func TestFigure1ExactDispatch(t *testing.T) {
	if _, err := Figure1Exact(Figure1Point{Placement: "bogus", N: 10, Replicas: 3, Failures: 1, Users: 100}); err == nil {
		t.Error("unknown placement accepted")
	}
	p, err := Figure1Exact(Figure1Point{Placement: "random", N: 10, Replicas: 3, Failures: 2, Users: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 {
		t.Errorf("Figure1Exact = %v outside (0,1]", p)
	}
}

func TestPlacementArgValidation(t *testing.T) {
	if _, err := RandomPlacementUnavailability(10, 11, 1, 10); err == nil {
		t.Error("n > N accepted")
	}
	if _, err := RandomPlacementUnavailability(10, 3, 11, 10); err == nil {
		t.Error("f > N accepted")
	}
	if _, err := RoundRobinUnavailability(10, 3, 1, 5); err == nil {
		t.Error("users < N accepted for RR closed form")
	}
	if _, err := RandomPlacementUnavailability(10, 3, 1, -1); err == nil {
		t.Error("negative users accepted")
	}
}

func TestCountSafeCircularFullWindows(t *testing.T) {
	// maxOnes >= n means no constraint.
	if got, want := countSafeCircular(10, 3, 4, 3), BinomialCoeff(10, 4); got != want {
		t.Errorf("unconstrained count = %v, want %v", got, want)
	}
	// f=0 is always safe.
	if got := countSafeCircular(10, 3, 0, 1); got != 1 {
		t.Errorf("f=0 count = %v, want 1", got)
	}
}
