package analytic

import (
	"math"
	"testing"
)

func TestBirthDeathTwoState(t *testing.T) {
	// Single machine: fail rate lambda, repair rate mu.
	// P(down) = lambda / (lambda + mu).
	bd, err := NewBirthDeath([]float64{0.1}, []float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	p := bd.SteadyState()
	if math.Abs(p[0]-0.9) > 1e-12 || math.Abs(p[1]-0.1) > 1e-12 {
		t.Errorf("steady state = %v, want [0.9, 0.1]", p)
	}
}

func TestBirthDeathSumsToOne(t *testing.T) {
	bd, err := NewBirthDeath([]float64{3, 2, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	p := bd.SteadyState()
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("steady state sums to %v", sum)
	}
}

func TestBirthDeathMatchesMM1Truncated(t *testing.T) {
	// Birth-death with constant rates is a truncated M/M/1: p_n ∝ rho^n.
	lambda, mu := 0.5, 1.0
	birth := []float64{lambda, lambda, lambda, lambda}
	death := []float64{mu, mu, mu, mu}
	bd, err := NewBirthDeath(birth, death)
	if err != nil {
		t.Fatal(err)
	}
	p := bd.SteadyState()
	for n := 1; n < len(p); n++ {
		if math.Abs(p[n]/p[n-1]-0.5) > 1e-12 {
			t.Errorf("ratio p[%d]/p[%d] = %v, want 0.5", n, n-1, p[n]/p[n-1])
		}
	}
}

func TestBirthDeathValidation(t *testing.T) {
	if _, err := NewBirthDeath(nil, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := NewBirthDeath([]float64{1}, []float64{0}); err == nil {
		t.Error("zero death rate accepted")
	}
	if _, err := NewBirthDeath([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestReplicaModelSingleReplica(t *testing.T) {
	// n=1: unavailability (quorumDown=1) = lambda/(lambda+mu).
	m, err := NewReplicaAvailabilityModel(1, 0.01, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.01 / 1.01
	if got := m.Unavailability(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("unavailability = %v, want %v", got, want)
	}
}

func TestReplicaModelMoreReplicasMoreAvailable(t *testing.T) {
	var prev float64 = 1
	for _, n := range []int{1, 3, 5} {
		m, err := NewReplicaAvailabilityModel(n, 0.01, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		u := m.Unavailability(MajorityQuorumDown(n))
		if u >= prev {
			t.Errorf("n=%d: unavailability %v did not improve on %v", n, u, prev)
		}
		prev = u
	}
}

func TestReplicaModelParallelRepairHelps(t *testing.T) {
	serial, err := NewReplicaAvailabilityModel(3, 0.05, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewReplicaAvailabilityModel(3, 0.05, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	q := MajorityQuorumDown(3)
	us, up := serial.Unavailability(q), parallel.Unavailability(q)
	if up >= us {
		t.Errorf("parallel repair unavailability %v should beat serial %v", up, us)
	}
}

func TestReplicaModelFasterRepairCompensatesLowerReplication(t *testing.T) {
	// The §1 claim: n-1 replicas with much faster repair can match n
	// replicas with slow repair.
	slow3, err := NewReplicaAvailabilityModel(3, 0.01, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	fast2, err := NewReplicaAvailabilityModel(2, 0.01, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	u3 := slow3.Unavailability(3) // all copies down
	u2 := fast2.Unavailability(2)
	if u2 > u3*10 {
		t.Errorf("fast-repair n=2 (%v) should be within 10x of slow n=3 (%v)", u2, u3)
	}
}

func TestMTTDLIncreasesWithReplicas(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 2, 3} {
		m, err := NewReplicaAvailabilityModel(n, 0.001, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		mttdl := m.MTTDL()
		if mttdl <= prev {
			t.Errorf("n=%d: MTTDL %v did not increase from %v", n, mttdl, prev)
		}
		prev = mttdl
	}
}

func TestMTTDLSingleReplicaIsMTTF(t *testing.T) {
	m, err := NewReplicaAvailabilityModel(1, 0.02, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.MTTDL(), 50.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("MTTDL = %v, want 1/failRate = %v", got, want)
	}
}

func TestMajorityQuorumDown(t *testing.T) {
	cases := []struct{ n, want int }{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {7, 4}}
	for _, c := range cases {
		if got := MajorityQuorumDown(c.n); got != c.want {
			t.Errorf("MajorityQuorumDown(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNines(t *testing.T) {
	if got := Nines(0.999); math.Abs(got-3) > 1e-9 {
		t.Errorf("Nines(0.999) = %v, want 3", got)
	}
	if !math.IsInf(Nines(1), 1) {
		t.Error("Nines(1) should be +Inf")
	}
	if Nines(0) != 0 {
		t.Errorf("Nines(0) = %v, want 0", Nines(0))
	}
}
