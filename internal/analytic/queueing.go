// Package analytic implements the closed-form models the paper positions
// as both comparator and validation instrument (§2.2, §4.3): classical
// queueing formulas (M/M/1, M/M/c, M/M/c/K, M/G/1, G/G/1, G/G/c),
// birth–death Markov chains for availability, and exact combinatorics for
// the replica-placement unavailability question behind Figure 1.
//
// The queueing models assume exponential arrivals/services where named so;
// the point of the wind tunnel is precisely that real systems are not
// exponential, and internal/validate quantifies the resulting error.
package analytic

import (
	"fmt"
	"math"
)

// MM1 describes an M/M/1 queue with arrival rate Lambda and service rate
// Mu (both per unit time).
type MM1 struct {
	Lambda, Mu float64
}

// NewMM1 validates and constructs an M/M/1 model. The queue must be
// stable: lambda < mu.
func NewMM1(lambda, mu float64) (MM1, error) {
	if lambda <= 0 || mu <= 0 {
		return MM1{}, fmt.Errorf("analytic: M/M/1 rates must be positive (lambda=%v, mu=%v)", lambda, mu)
	}
	if lambda >= mu {
		return MM1{}, fmt.Errorf("analytic: M/M/1 unstable: lambda=%v >= mu=%v", lambda, mu)
	}
	return MM1{Lambda: lambda, Mu: mu}, nil
}

// Rho returns the utilization λ/μ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// L returns the mean number in system.
func (q MM1) L() float64 { rho := q.Rho(); return rho / (1 - rho) }

// Lq returns the mean number in queue.
func (q MM1) Lq() float64 { rho := q.Rho(); return rho * rho / (1 - rho) }

// W returns the mean sojourn (response) time.
func (q MM1) W() float64 { return 1 / (q.Mu - q.Lambda) }

// Wq returns the mean waiting time in queue.
func (q MM1) Wq() float64 { return q.Rho() / (q.Mu - q.Lambda) }

// ResponseQuantile returns the p-quantile of the sojourn time, which in
// M/M/1-FCFS is exponential with rate mu-lambda.
func (q MM1) ResponseQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("analytic: quantile probability %v outside (0,1)", p))
	}
	return -math.Log(1-p) / (q.Mu - q.Lambda)
}

// MMc describes an M/M/c queue with c identical servers.
type MMc struct {
	Lambda, Mu float64
	C          int
}

// NewMMc validates and constructs an M/M/c model; requires lambda < c*mu.
func NewMMc(lambda, mu float64, c int) (MMc, error) {
	if lambda <= 0 || mu <= 0 {
		return MMc{}, fmt.Errorf("analytic: M/M/c rates must be positive (lambda=%v, mu=%v)", lambda, mu)
	}
	if c < 1 {
		return MMc{}, fmt.Errorf("analytic: M/M/c needs c >= 1 servers, got %d", c)
	}
	if lambda >= float64(c)*mu {
		return MMc{}, fmt.Errorf("analytic: M/M/c unstable: lambda=%v >= c*mu=%v", lambda, float64(c)*mu)
	}
	return MMc{Lambda: lambda, Mu: mu, C: c}, nil
}

// Rho returns per-server utilization λ/(cμ).
func (q MMc) Rho() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// ErlangC returns the probability an arriving customer must wait
// (the Erlang-C formula), computed with a numerically stable recurrence.
func (q MMc) ErlangC() float64 {
	a := q.Lambda / q.Mu // offered load in Erlangs
	c := q.C
	// Erlang-B recurrence: B(0)=1; B(k) = a*B(k-1) / (k + a*B(k-1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := q.Rho()
	return b / (1 - rho*(1-b))
}

// Wq returns the mean waiting time in queue.
func (q MMc) Wq() float64 {
	return q.ErlangC() / (float64(q.C)*q.Mu - q.Lambda)
}

// W returns the mean sojourn time.
func (q MMc) W() float64 { return q.Wq() + 1/q.Mu }

// Lq returns the mean queue length.
func (q MMc) Lq() float64 { return q.Lambda * q.Wq() }

// L returns the mean number in system.
func (q MMc) L() float64 { return q.Lambda * q.W() }

// ErlangB returns the blocking probability of an M/M/c/c loss system with
// offered load a = lambda/mu Erlangs and c servers.
func ErlangB(a float64, c int) float64 {
	if a <= 0 || c < 0 {
		return 0
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// MMcK describes an M/M/c/K queue (c servers, at most K in system).
type MMcK struct {
	Lambda, Mu float64
	C, K       int
}

// NewMMcK validates and constructs an M/M/c/K model (K >= c >= 1). A
// finite-capacity queue is always stable.
func NewMMcK(lambda, mu float64, c, k int) (MMcK, error) {
	if lambda <= 0 || mu <= 0 {
		return MMcK{}, fmt.Errorf("analytic: M/M/c/K rates must be positive (lambda=%v, mu=%v)", lambda, mu)
	}
	if c < 1 || k < c {
		return MMcK{}, fmt.Errorf("analytic: M/M/c/K needs K >= c >= 1, got c=%d K=%d", c, k)
	}
	return MMcK{Lambda: lambda, Mu: mu, C: c, K: k}, nil
}

// probs returns the steady-state distribution p_0..p_K.
func (q MMcK) probs() []float64 {
	p := make([]float64, q.K+1)
	p[0] = 1
	for n := 1; n <= q.K; n++ {
		servers := n
		if servers > q.C {
			servers = q.C
		}
		p[n] = p[n-1] * q.Lambda / (float64(servers) * q.Mu)
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// BlockingProbability returns the probability an arrival is rejected.
func (q MMcK) BlockingProbability() float64 {
	p := q.probs()
	return p[q.K]
}

// L returns the mean number in system.
func (q MMcK) L() float64 {
	p := q.probs()
	l := 0.0
	for n, v := range p {
		l += float64(n) * v
	}
	return l
}

// W returns the mean sojourn time of accepted customers (Little's law on
// the effective arrival rate).
func (q MMcK) W() float64 {
	return q.L() / (q.Lambda * (1 - q.BlockingProbability()))
}

// MG1 describes an M/G/1 queue via the Pollaczek–Khinchine formula;
// ServiceMean and ServiceVar describe the general service distribution.
type MG1 struct {
	Lambda                float64
	ServiceMean, Service2 float64 // E[S], E[S^2]
}

// NewMG1 validates and constructs an M/G/1 model from the first two
// moments of service time; requires lambda*E[S] < 1.
func NewMG1(lambda, serviceMean, serviceVar float64) (MG1, error) {
	if lambda <= 0 || serviceMean <= 0 || serviceVar < 0 {
		return MG1{}, fmt.Errorf("analytic: M/G/1 invalid parameters (lambda=%v, mean=%v, var=%v)",
			lambda, serviceMean, serviceVar)
	}
	if lambda*serviceMean >= 1 {
		return MG1{}, fmt.Errorf("analytic: M/G/1 unstable: rho=%v >= 1", lambda*serviceMean)
	}
	return MG1{Lambda: lambda, ServiceMean: serviceMean,
		Service2: serviceVar + serviceMean*serviceMean}, nil
}

// Rho returns the utilization.
func (q MG1) Rho() float64 { return q.Lambda * q.ServiceMean }

// Wq returns the mean waiting time (Pollaczek–Khinchine).
func (q MG1) Wq() float64 {
	return q.Lambda * q.Service2 / (2 * (1 - q.Rho()))
}

// W returns the mean sojourn time.
func (q MG1) W() float64 { return q.Wq() + q.ServiceMean }

// L returns the mean number in system (Little).
func (q MG1) L() float64 { return q.Lambda * q.W() }

// GG1Kingman approximates the mean waiting time of a G/G/1 queue with
// Kingman's formula: Wq ≈ rho/(1-rho) * (ca²+cs²)/2 * E[S].
// ca and cs are the coefficients of variation of interarrival and service
// times. The paper notes (§2.2) such approximations are "often inadequate"
// — internal/validate measures exactly how inadequate.
func GG1Kingman(lambda, serviceMean, ca2, cs2 float64) (float64, error) {
	rho := lambda * serviceMean
	if rho >= 1 || rho <= 0 {
		return 0, fmt.Errorf("analytic: G/G/1 needs 0 < rho < 1, got %v", rho)
	}
	return rho / (1 - rho) * (ca2 + cs2) / 2 * serviceMean, nil
}

// GGcAllenCunneen approximates the mean waiting time of a G/G/c queue with
// the Allen–Cunneen formula: Wq(M/M/c) * (ca²+cs²)/2.
func GGcAllenCunneen(lambda, mu float64, c int, ca2, cs2 float64) (float64, error) {
	q, err := NewMMc(lambda, mu, c)
	if err != nil {
		return 0, err
	}
	return q.Wq() * (ca2 + cs2) / 2, nil
}
