package analytic

import (
	"fmt"
	"math"
	"math/bits"
)

// Exact combinatorics for the Figure-1 question: the probability that at
// least one of U customers loses its majority quorum when exactly f of N
// nodes have failed, under Random or RoundRobin replica placement with
// replication factor n. These closed forms validate the Monte-Carlo wind
// tunnel (§4.3) and regenerate Figure 1 analytically.

// BinomialCoeff returns C(n, k) as a float64 (exact for values below 2^53,
// which covers every cluster size in the paper).
func BinomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// HypergeomTail returns P(K >= kMin) where K ~ Hypergeometric(N, f, n):
// the number of failed nodes among a uniformly random n-subset of N nodes
// of which f are failed.
func HypergeomTail(N, f, n, kMin int) float64 {
	if kMin <= 0 {
		return 1
	}
	denom := BinomialCoeff(N, n)
	if denom == 0 {
		return 0
	}
	p := 0.0
	hi := n
	if f < hi {
		hi = f
	}
	for k := kMin; k <= hi; k++ {
		p += BinomialCoeff(f, k) * BinomialCoeff(N-f, n-k)
	}
	return p / denom
}

// RandomPlacementUserUnavailable returns the probability that one specific
// user, whose n replicas sit on a uniformly random n-subset of the N
// nodes, has lost its majority quorum given exactly f failed nodes.
func RandomPlacementUserUnavailable(N, n, f int) (float64, error) {
	if err := checkPlacementArgs(N, n, f); err != nil {
		return 0, err
	}
	return HypergeomTail(N, f, n, MajorityQuorumDown(n)), nil
}

// RandomPlacementUnavailability returns the probability that at least one
// of users customers is unavailable given exactly f failed nodes, under
// independent Random placement per user. Conditional on the failure set,
// user placements are i.i.d., so the complement is (1-p)^users; by node
// symmetry the answer does not depend on which f nodes failed.
func RandomPlacementUnavailability(N, n, f, users int) (float64, error) {
	if users < 0 {
		return 0, fmt.Errorf("analytic: users must be >= 0, got %d", users)
	}
	p, err := RandomPlacementUserUnavailable(N, n, f)
	if err != nil {
		return 0, err
	}
	// 1 - (1-p)^users, computed stably for small p.
	return -math.Expm1(float64(users) * math.Log1p(-p)), nil
}

// RoundRobinUnavailability returns the probability that at least one
// customer is unavailable given exactly f failed nodes (uniformly random
// failure set), under RoundRobin placement: user u's replicas occupy nodes
// u, u+1, ..., u+n-1 (mod N). It assumes users >= N so every cyclic window
// of n consecutive nodes hosts at least one user (10,000 users versus
// N <= 30 in the paper's Figure 1).
//
// The probability equals 1 - S/C(N,f) where S counts f-subsets of Z_N in
// which no cyclic window of length n contains a majority (floor(n/2)+1) of
// failures. S is computed exactly by a transfer-matrix dynamic program
// over circular binary strings.
func RoundRobinUnavailability(N, n, f, users int) (float64, error) {
	if err := checkPlacementArgs(N, n, f); err != nil {
		return 0, err
	}
	if users < N {
		return 0, fmt.Errorf("analytic: RoundRobin closed form requires users >= N (got %d < %d)", users, N)
	}
	q := MajorityQuorumDown(n)
	safe := countSafeCircular(N, n, f, q-1)
	total := BinomialCoeff(N, f)
	p := 1 - safe/total
	// Clamp tiny negative round-off.
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// countSafeCircular counts binary necklaces-with-position (circular
// strings) of length N with exactly f ones in which every window of n
// consecutive positions (cyclically) has at most maxOnes ones.
func countSafeCircular(N, n, f, maxOnes int) float64 {
	if f == 0 {
		return 1
	}
	if maxOnes >= n {
		return BinomialCoeff(N, f)
	}
	if maxOnes < 0 {
		return 0
	}
	w := n - 1 // state width: last n-1 bits
	stateCount := 1 << w
	total := 0.0
	// Enumerate the first w bits (the seed); the DP then fills positions
	// w..N-1. Windows fully inside the seed do not exist (window length
	// n = w+1 > w), and wrap-around windows are checked at the end from
	// (final state, seed).
	for seed := 0; seed < stateCount; seed++ {
		seedOnes := bits.OnesCount(uint(seed))
		if seedOnes > f {
			continue
		}
		// dp[state][ones] = count of ways to fill positions so far.
		dp := make([][]float64, stateCount)
		for s := range dp {
			dp[s] = make([]float64, f+1)
		}
		dp[seed][seedOnes] = 1
		for pos := w; pos < N; pos++ {
			next := make([][]float64, stateCount)
			for s := range next {
				next[s] = make([]float64, f+1)
			}
			for s := 0; s < stateCount; s++ {
				for ones := 0; ones <= f; ones++ {
					v := dp[s][ones]
					if v == 0 {
						continue
					}
					for b := 0; b <= 1; b++ {
						window := s<<1 | b // n bits
						if bits.OnesCount(uint(window)) > maxOnes {
							continue
						}
						no := ones + b
						if no > f {
							continue
						}
						ns := window & (stateCount - 1) // keep last w bits
						next[ns][no] += v
					}
				}
			}
			dp = next
		}
		// Wrap-around windows: for s = N-n+1 .. N-1 the window is
		// bits[s..N-1] ++ bits[0..s+n-1-N]. bits[N-w..N-1] is the final
		// state; bits[0..w-1] is the seed.
		for finalState := 0; finalState < stateCount; finalState++ {
			count := dp[finalState][f]
			if count == 0 {
				continue
			}
			if circularWindowsOK(finalState, seed, w, n, maxOnes) {
				total += count
			}
		}
	}
	return total
}

// circularWindowsOK checks the n-1 wrap-around windows formed by the last
// w bits (finalState, most significant = position N-w) and the first w
// bits (seed, most significant = position 0).
func circularWindowsOK(finalState, seed, w, n, maxOnes int) bool {
	// Reconstruct the 2w-bit sequence: final bits then seed bits.
	// Window j (j = 1..w) takes the last j bits of finalState and the
	// first n-j bits of seed.
	for j := 1; j <= w; j++ {
		lastJ := finalState & ((1 << j) - 1)
		firstK := seed >> (w - (n - j)) // top n-j bits of the seed
		onesCount := bits.OnesCount(uint(lastJ)) + bits.OnesCount(uint(firstK))
		if onesCount > maxOnes {
			return false
		}
	}
	return true
}

func checkPlacementArgs(N, n, f int) error {
	if N < 1 {
		return fmt.Errorf("analytic: cluster size must be >= 1, got %d", N)
	}
	if n < 1 || n > N {
		return fmt.Errorf("analytic: replication factor %d outside [1, %d]", n, N)
	}
	if f < 0 || f > N {
		return fmt.Errorf("analytic: failed-node count %d outside [0, %d]", f, N)
	}
	return nil
}

// Figure1Point identifies one configuration/x-value of the paper's
// Figure 1.
type Figure1Point struct {
	Placement string // "random" or "roundrobin"
	N         int    // cluster size
	Replicas  int    // replication factor
	Failures  int    // x-axis: number of failed nodes
	Users     int
}

// Figure1Exact returns the exact unavailability probability for a Figure-1
// point.
func Figure1Exact(pt Figure1Point) (float64, error) {
	switch pt.Placement {
	case "random":
		return RandomPlacementUnavailability(pt.N, pt.Replicas, pt.Failures, pt.Users)
	case "roundrobin":
		return RoundRobinUnavailability(pt.N, pt.Replicas, pt.Failures, pt.Users)
	default:
		return 0, fmt.Errorf("analytic: unknown placement %q", pt.Placement)
	}
}
