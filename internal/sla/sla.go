// Package sla defines Service-Level Agreements — the user-facing
// requirements the paper puts at the center of data center design (§1,
// §3) — and evaluates them against simulation results.
//
// Three families are modelled: availability (fraction of time data is
// reachable), durability (probability of permanent loss), and performance
// (latency percentile bounds). An SLA can also be expressed as a
// distribution over tenants ("95% of tenants must see p95 below 100 ms"),
// the richer declarative form §4.1 calls for.
package sla

import (
	"fmt"

	"repro/internal/stats"
)

// Verdict is the outcome of checking one SLA against observations.
type Verdict struct {
	SLA      string  // description of the SLA checked
	Met      bool    // whether the target was met
	Observed float64 // the measured value
	Target   float64 // the required value
	Margin   float64 // how far the observation is inside (+) or outside (-) the target
}

func (v Verdict) String() string {
	status := "MET"
	if !v.Met {
		status = "VIOLATED"
	}
	return fmt.Sprintf("%s: %s (observed %.6g, target %.6g, margin %+.3g)",
		v.SLA, status, v.Observed, v.Target, v.Margin)
}

// SLA is a checkable service-level agreement.
type SLA interface {
	// Name describes the SLA.
	Name() string
	// Check evaluates the SLA against a result set.
	Check(r Result) (Verdict, error)
}

// Result is the metric view SLAs evaluate against. Implementations are
// provided by the wind tunnel core; tests can use MapResult.
type Result interface {
	// Metric returns a scalar metric by name, or an error if absent.
	Metric(name string) (float64, error)
	// LatencySample returns the latency sample for a workload ("" =
	// default), or nil if none was collected.
	LatencySample(workload string) *stats.Sample
}

// MapResult is a simple Result backed by a map (used in tests and by the
// analytic paths).
type MapResult struct {
	Metrics   map[string]float64
	Latencies map[string]*stats.Sample
}

// Metric implements Result.
func (m MapResult) Metric(name string) (float64, error) {
	v, ok := m.Metrics[name]
	if !ok {
		return 0, fmt.Errorf("sla: metric %q not present in result", name)
	}
	return v, nil
}

// LatencySample implements Result.
func (m MapResult) LatencySample(workload string) *stats.Sample {
	return m.Latencies[workload]
}

// Availability requires a minimum availability level (e.g. 0.999) on a
// named availability metric.
type Availability struct {
	// MetricName is the result metric holding availability in [0,1];
	// defaults to "availability".
	MetricName string
	Min        float64
}

// NewAvailability validates and constructs the SLA.
func NewAvailability(min float64) (Availability, error) {
	if min <= 0 || min > 1 {
		return Availability{}, fmt.Errorf("sla: availability target %v outside (0, 1]", min)
	}
	return Availability{Min: min}, nil
}

func (a Availability) metric() string {
	if a.MetricName != "" {
		return a.MetricName
	}
	return "availability"
}

// Name implements SLA.
func (a Availability) Name() string {
	return fmt.Sprintf("availability >= %v", a.Min)
}

// Check implements SLA.
func (a Availability) Check(r Result) (Verdict, error) {
	obs, err := r.Metric(a.metric())
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		SLA: a.Name(), Met: obs >= a.Min,
		Observed: obs, Target: a.Min, Margin: obs - a.Min,
	}, nil
}

// Durability requires the probability of data loss to stay below Max
// (e.g. 1e-9 for "nine nines" durability), read from the "loss_prob"
// metric.
type Durability struct {
	MetricName string // defaults to "loss_prob"
	Max        float64
}

// NewDurability validates and constructs the SLA.
func NewDurability(max float64) (Durability, error) {
	if max < 0 || max >= 1 {
		return Durability{}, fmt.Errorf("sla: durability loss bound %v outside [0, 1)", max)
	}
	return Durability{Max: max}, nil
}

func (d Durability) metric() string {
	if d.MetricName != "" {
		return d.MetricName
	}
	return "loss_prob"
}

// Name implements SLA.
func (d Durability) Name() string {
	return fmt.Sprintf("loss probability <= %v", d.Max)
}

// Check implements SLA.
func (d Durability) Check(r Result) (Verdict, error) {
	obs, err := r.Metric(d.metric())
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		SLA: d.Name(), Met: obs <= d.Max,
		Observed: obs, Target: d.Max, Margin: d.Max - obs,
	}, nil
}

// Latency bounds a latency percentile: "p95 <= 0.1s".
type Latency struct {
	Workload   string  // latency sample to check ("" = default)
	Percentile float64 // in (0, 1], e.g. 0.95
	Max        float64 // seconds
}

// NewLatency validates and constructs the SLA.
func NewLatency(workload string, percentile, max float64) (Latency, error) {
	if percentile <= 0 || percentile > 1 {
		return Latency{}, fmt.Errorf("sla: percentile %v outside (0, 1]", percentile)
	}
	if max <= 0 {
		return Latency{}, fmt.Errorf("sla: latency bound %v must be positive", max)
	}
	return Latency{Workload: workload, Percentile: percentile, Max: max}, nil
}

// Name implements SLA.
func (l Latency) Name() string {
	return fmt.Sprintf("p%g(%s) <= %gs", l.Percentile*100, l.workloadName(), l.Max)
}

func (l Latency) workloadName() string {
	if l.Workload == "" {
		return "default"
	}
	return l.Workload
}

// Check implements SLA.
func (l Latency) Check(r Result) (Verdict, error) {
	s := r.LatencySample(l.Workload)
	if s == nil || s.N() == 0 {
		return Verdict{}, fmt.Errorf("sla: no latency sample for workload %q", l.workloadName())
	}
	obs := s.Quantile(l.Percentile)
	return Verdict{
		SLA: l.Name(), Met: obs <= l.Max,
		Observed: obs, Target: l.Max, Margin: l.Max - obs,
	}, nil
}

// PowerBudget bounds the facility's peak power draw: peak_kw <= MaxKW.
// It is the capacity-planning constraint of a power-limited site — a
// design whose peak exceeds the provisioned feed is infeasible no
// matter how available it is.
type PowerBudget struct {
	MetricName string // defaults to "peak_kw"
	MaxKW      float64
}

// NewPowerBudget validates and constructs the SLA.
func NewPowerBudget(maxKW float64) (PowerBudget, error) {
	if maxKW <= 0 {
		return PowerBudget{}, fmt.Errorf("sla: power budget %v must be positive", maxKW)
	}
	return PowerBudget{MaxKW: maxKW}, nil
}

func (p PowerBudget) metric() string {
	if p.MetricName != "" {
		return p.MetricName
	}
	return "peak_kw"
}

// Name implements SLA.
func (p PowerBudget) Name() string {
	return fmt.Sprintf("peak power <= %v kW", p.MaxKW)
}

// Check implements SLA.
func (p PowerBudget) Check(r Result) (Verdict, error) {
	obs, err := r.Metric(p.metric())
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		SLA: p.Name(), Met: obs <= p.MaxKW,
		Observed: obs, Target: p.MaxKW, Margin: p.MaxKW - obs,
	}, nil
}

// EnergyCost caps the energy bill over the simulated horizon: the
// "energy cost ceiling" form of an energy-aware SLA. It prices the
// simulated facility energy ("energy_kwh") at USDPerKWh and requires
// the result to stay at or under MaxUSD.
type EnergyCost struct {
	MetricName string  // defaults to "energy_kwh"
	MaxUSD     float64 // ceiling on the horizon's energy spend
	USDPerKWh  float64 // electricity price
}

// NewEnergyCost validates and constructs the SLA.
func NewEnergyCost(maxUSD, usdPerKWh float64) (EnergyCost, error) {
	if maxUSD <= 0 {
		return EnergyCost{}, fmt.Errorf("sla: energy cost ceiling %v must be positive", maxUSD)
	}
	if usdPerKWh <= 0 {
		return EnergyCost{}, fmt.Errorf("sla: energy price %v must be positive", usdPerKWh)
	}
	return EnergyCost{MaxUSD: maxUSD, USDPerKWh: usdPerKWh}, nil
}

func (e EnergyCost) metric() string {
	if e.MetricName != "" {
		return e.MetricName
	}
	return "energy_kwh"
}

// Name implements SLA.
func (e EnergyCost) Name() string {
	return fmt.Sprintf("energy cost <= $%v at $%v/kWh", e.MaxUSD, e.USDPerKWh)
}

// Check implements SLA.
func (e EnergyCost) Check(r Result) (Verdict, error) {
	kwh, err := r.Metric(e.metric())
	if err != nil {
		return Verdict{}, err
	}
	obs := kwh * e.USDPerKWh
	return Verdict{
		SLA: e.Name(), Met: obs <= e.MaxUSD,
		Observed: obs, Target: e.MaxUSD, Margin: e.MaxUSD - obs,
	}, nil
}

// TenantDistribution is an SLA expressed as a distribution over tenants
// (§4.1: "the user may need to specify a required SLA as a distribution"):
// at least Fraction of per-tenant values must satisfy the inner predicate
// direction against Threshold.
type TenantDistribution struct {
	Description string
	// Values extracts per-tenant observations from the result.
	Values func(r Result) ([]float64, error)
	// AtLeast: value >= Threshold counts as satisfied when true, value <=
	// Threshold when false.
	AtLeast   bool
	Threshold float64
	Fraction  float64 // required satisfied fraction in (0, 1]
}

// Name implements SLA.
func (t TenantDistribution) Name() string { return t.Description }

// Check implements SLA.
func (t TenantDistribution) Check(r Result) (Verdict, error) {
	if t.Fraction <= 0 || t.Fraction > 1 {
		return Verdict{}, fmt.Errorf("sla: tenant fraction %v outside (0, 1]", t.Fraction)
	}
	if t.Values == nil {
		return Verdict{}, fmt.Errorf("sla: tenant distribution needs a Values extractor")
	}
	vals, err := t.Values(r)
	if err != nil {
		return Verdict{}, err
	}
	if len(vals) == 0 {
		return Verdict{}, fmt.Errorf("sla: tenant distribution has no tenants")
	}
	ok := 0
	for _, v := range vals {
		if (t.AtLeast && v >= t.Threshold) || (!t.AtLeast && v <= t.Threshold) {
			ok++
		}
	}
	frac := float64(ok) / float64(len(vals))
	return Verdict{
		SLA: t.Name(), Met: frac >= t.Fraction,
		Observed: frac, Target: t.Fraction, Margin: frac - t.Fraction,
	}, nil
}

// CheckAll evaluates every SLA and reports the verdicts plus overall
// success. A missing metric is an error, not a violation.
func CheckAll(r Result, slas []SLA) ([]Verdict, bool, error) {
	verdicts := make([]Verdict, 0, len(slas))
	all := true
	for _, s := range slas {
		v, err := s.Check(r)
		if err != nil {
			return nil, false, fmt.Errorf("sla: checking %q: %w", s.Name(), err)
		}
		verdicts = append(verdicts, v)
		if !v.Met {
			all = false
		}
	}
	return verdicts, all, nil
}
