package sla

import (
	"testing"

	"repro/internal/stats"
)

func result(av, loss float64, lats []float64) MapResult {
	s := &stats.Sample{}
	for _, l := range lats {
		s.Add(l)
	}
	return MapResult{
		Metrics:   map[string]float64{"availability": av, "loss_prob": loss},
		Latencies: map[string]*stats.Sample{"": s, "A": s},
	}
}

func TestAvailabilitySLA(t *testing.T) {
	a, err := NewAvailability(0.999)
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.Check(result(0.9995, 0, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Met || v.Margin <= 0 {
		t.Errorf("verdict %v, want met with positive margin", v)
	}
	v, err = a.Check(result(0.99, 0, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if v.Met || v.Margin >= 0 {
		t.Errorf("verdict %v, want violated with negative margin", v)
	}
}

func TestAvailabilityValidation(t *testing.T) {
	if _, err := NewAvailability(0); err == nil {
		t.Error("0 accepted")
	}
	if _, err := NewAvailability(1.5); err == nil {
		t.Error("1.5 accepted")
	}
}

func TestDurabilitySLA(t *testing.T) {
	d, err := NewDurability(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Check(result(1, 1e-9, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Met {
		t.Errorf("verdict %v, want met", v)
	}
	v, err = d.Check(result(1, 1e-3, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if v.Met {
		t.Errorf("verdict %v, want violated", v)
	}
	if _, err := NewDurability(-1); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestLatencySLA(t *testing.T) {
	l, err := NewLatency("A", 0.95, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lats := make([]float64, 100)
	for i := range lats {
		lats[i] = 0.01 * float64(i+1) // p95 = 0.95s
	}
	v, err := l.Check(result(1, 0, lats))
	if err != nil {
		t.Fatal(err)
	}
	if v.Met {
		t.Errorf("p95=%v vs bound 0.5: want violated", v.Observed)
	}
	loose, err := NewLatency("A", 0.95, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	v, err = loose.Check(result(1, 0, lats))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Met {
		t.Errorf("p95=%v vs bound 1.0: want met", v.Observed)
	}
}

func TestLatencySLAMissingSample(t *testing.T) {
	l, err := NewLatency("missing", 0.95, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Check(result(1, 0, []float64{1})); err == nil {
		t.Error("missing workload sample did not error")
	}
}

func TestLatencyValidation(t *testing.T) {
	if _, err := NewLatency("", 0, 1); err == nil {
		t.Error("percentile 0 accepted")
	}
	if _, err := NewLatency("", 0.5, 0); err == nil {
		t.Error("bound 0 accepted")
	}
}

func TestTenantDistributionSLA(t *testing.T) {
	// 95% of tenants must have availability >= 0.99.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 0.999
	}
	vals[0], vals[1], vals[2] = 0.5, 0.5, 0.5 // 3 bad tenants -> 97% good
	td := TenantDistribution{
		Description: "95% of tenants >= 0.99 availability",
		Values:      func(Result) ([]float64, error) { return vals, nil },
		AtLeast:     true,
		Threshold:   0.99,
		Fraction:    0.95,
	}
	v, err := td.Check(MapResult{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Met || v.Observed != 0.97 {
		t.Errorf("verdict %v, want met at 0.97", v)
	}
	td.Fraction = 0.98
	v, err = td.Check(MapResult{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Met {
		t.Errorf("verdict %v, want violated at required 0.98", v)
	}
}

func TestTenantDistributionValidation(t *testing.T) {
	td := TenantDistribution{Fraction: 0.5}
	if _, err := td.Check(MapResult{}); err == nil {
		t.Error("nil Values accepted")
	}
	td = TenantDistribution{
		Fraction: 2,
		Values:   func(Result) ([]float64, error) { return []float64{1}, nil },
	}
	if _, err := td.Check(MapResult{}); err == nil {
		t.Error("fraction 2 accepted")
	}
}

func TestCheckAll(t *testing.T) {
	a, err := NewAvailability(0.99)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDurability(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	r := result(0.999, 1e-6, []float64{1})
	verdicts, all, err := CheckAll(r, []SLA{a, d})
	if err != nil {
		t.Fatal(err)
	}
	if !all || len(verdicts) != 2 {
		t.Errorf("all=%v verdicts=%d, want true/2", all, len(verdicts))
	}
	r2 := result(0.9, 1e-6, []float64{1})
	_, all, err = CheckAll(r2, []SLA{a, d})
	if err != nil {
		t.Fatal(err)
	}
	if all {
		t.Error("violated availability not detected")
	}
	// Missing metric errors out.
	bad := MapResult{Metrics: map[string]float64{}}
	if _, _, err := CheckAll(bad, []SLA{a}); err == nil {
		t.Error("missing metric did not error")
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{SLA: "x", Met: true, Observed: 1, Target: 0.9, Margin: 0.1}
	if s := v.String(); s == "" {
		t.Error("empty verdict string")
	}
	v.Met = false
	if s := v.String(); s == "" {
		t.Error("empty verdict string")
	}
}

func TestPowerBudget(t *testing.T) {
	if _, err := NewPowerBudget(0); err == nil {
		t.Error("zero budget accepted")
	}
	s, err := NewPowerBudget(50)
	if err != nil {
		t.Fatal(err)
	}
	res := MapResult{Metrics: map[string]float64{"peak_kw": 42}}
	v, err := s.Check(res)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Met || v.Observed != 42 || v.Margin != 8 {
		t.Errorf("verdict %+v", v)
	}
	res.Metrics["peak_kw"] = 60
	if v, _ := s.Check(res); v.Met {
		t.Error("over-budget peak passed")
	}
	if _, err := s.Check(MapResult{Metrics: map[string]float64{}}); err == nil {
		t.Error("missing peak_kw metric not an error")
	}
}

func TestEnergyCost(t *testing.T) {
	if _, err := NewEnergyCost(0, 0.1); err == nil {
		t.Error("zero ceiling accepted")
	}
	if _, err := NewEnergyCost(100, 0); err == nil {
		t.Error("zero price accepted")
	}
	s, err := NewEnergyCost(100, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// 900 kWh x $0.10 = $90 <= $100.
	v, err := s.Check(MapResult{Metrics: map[string]float64{"energy_kwh": 900}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Met || v.Observed != 90 {
		t.Errorf("verdict %+v", v)
	}
	// 1100 kWh x $0.10 = $110 > $100.
	if v, _ := s.Check(MapResult{Metrics: map[string]float64{"energy_kwh": 1100}}); v.Met {
		t.Error("over-ceiling energy cost passed")
	}
}
