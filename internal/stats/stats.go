// Package stats provides the streaming statistics the wind tunnel uses to
// summarize simulation output: moments, quantiles, time-weighted averages,
// histograms and confidence intervals.
//
// Every SLA verdict (§3 of the paper) is a statistic over one or more
// simulation runs, and the Runner's stopping rule and early-abort logic
// (§4.2) are driven by confidence-interval widths computed here.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates count, mean and variance in one pass with the
// numerically stable Welford recurrence. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return math.Inf(1)
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI returns the half-width of the (1-alpha) two-sided confidence interval
// for the mean, using the normal approximation with a small-sample t
// inflation.
func (w *Welford) CI(alpha float64) float64 {
	if w.n < 2 {
		return math.Inf(1)
	}
	return tQuantile(1-alpha/2, w.n-1) * w.StdErr()
}

// Merge combines another accumulator into w (parallel trials).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
}

func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g [%.6g, %.6g]",
		w.n, w.Mean(), w.StdDev(), w.min, w.max)
}

// WeightedWelford accumulates a weighted mean and variance in one pass
// (West's 1979 incremental algorithm). It backs the importance-sampled
// estimators of §4.2's failure-biased trials: each simulation trial
// contributes its metric with its likelihood-ratio weight, Mean returns
// the self-normalized estimate Σwx/Σw, and CI accounts for weight
// dispersion through the effective sample size (Σw)²/Σw². With all
// weights 1 it reproduces Welford exactly. The zero value is ready to
// use.
type WeightedWelford struct {
	n     int64
	sumW  float64
	sumW2 float64
	mean  float64
	m2    float64
}

// Add incorporates one observation with weight wt > 0 (zero-weight
// observations are ignored; negative or non-finite weights panic — a
// non-finite weight would silently turn every downstream mean into
// NaN).
func (w *WeightedWelford) Add(x, wt float64) {
	if wt < 0 || math.IsNaN(wt) || math.IsInf(wt, 1) {
		panic(fmt.Sprintf("stats: weighted observation with weight %v", wt))
	}
	if wt == 0 {
		return
	}
	w.n++
	w.sumW += wt
	w.sumW2 += wt * wt
	delta := x - w.mean
	w.mean += delta * wt / w.sumW
	w.m2 += wt * delta * (x - w.mean)
}

// N returns the number of (non-zero-weight) observations.
func (w *WeightedWelford) N() int64 { return w.n }

// SumWeights returns the accumulated weight mass.
func (w *WeightedWelford) SumWeights() float64 { return w.sumW }

// Mean returns the self-normalized weighted mean Σwx/Σw (0 if empty).
func (w *WeightedWelford) Mean() float64 { return w.mean }

// EffectiveN returns Kish's effective sample size (Σw)²/Σw²: the number
// of equally-weighted observations carrying the same information. Equal
// weights give EffectiveN == N.
func (w *WeightedWelford) EffectiveN() float64 {
	if w.sumW2 == 0 {
		return 0
	}
	return w.sumW * w.sumW / w.sumW2
}

// Variance returns the unbiased (reliability-weights) sample variance.
func (w *WeightedWelford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	denom := w.sumW - w.sumW2/w.sumW
	if denom <= 0 {
		return 0
	}
	return w.m2 / denom
}

// StdDev returns the weighted sample standard deviation.
func (w *WeightedWelford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the weighted mean, using the
// effective sample size.
func (w *WeightedWelford) StdErr() float64 {
	neff := w.EffectiveN()
	if neff < 2 {
		return math.Inf(1)
	}
	return w.StdDev() / math.Sqrt(neff)
}

// CI returns the half-width of the (1-alpha) two-sided confidence
// interval for the weighted mean, with degrees of freedom taken from the
// effective sample size.
func (w *WeightedWelford) CI(alpha float64) float64 {
	neff := w.EffectiveN()
	if neff < 2 {
		return math.Inf(1)
	}
	return tQuantile(1-alpha/2, int64(neff)-1) * w.StdErr()
}

func (w *WeightedWelford) String() string {
	return fmt.Sprintf("n=%d neff=%.3g mean=%.6g sd=%.6g",
		w.n, w.EffectiveN(), w.Mean(), w.StdDev())
}

// tQuantile approximates the Student-t quantile with df degrees of freedom
// using the Cornish–Fisher expansion around the normal quantile; exact
// enough for CI reporting (error < 1% for df >= 3).
func tQuantile(p float64, df int64) float64 {
	z := normQuantile(p)
	if df <= 0 {
		return math.Inf(1)
	}
	d := float64(df)
	z3 := z * z * z
	z5 := z3 * z * z
	z7 := z5 * z * z
	g1 := (z3 + z) / 4
	g2 := (5*z5 + 16*z3 + 3*z) / 96
	g3 := (3*z7 + 19*z5 + 17*z3 - 15*z) / 384
	return z + g1/d + g2/(d*d) + g3/(d*d*d)
}

// normQuantile is the inverse standard normal CDF (Acklam approximation
// with one Halley refinement). Duplicated from internal/dist to keep the
// two leaf packages dependency-free of each other.
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: quantile probability %v outside (0,1)", p))
	}
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// NormQuantile exposes the inverse standard normal CDF.
func NormQuantile(p float64) float64 { return normQuantile(p) }

// Sample collects observations for exact quantile queries. Use for
// latency distributions where tail percentiles matter (§3 performance
// SLAs).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Quantile returns the p-quantile (nearest-rank) of the sample. It panics
// on an empty sample or p outside (0,1].
func (s *Sample) Quantile(p float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("stats: quantile probability %v outside (0,1]", p))
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	i := int(math.Ceil(p*float64(len(s.xs)))) - 1
	if i < 0 {
		i = 0
	}
	return s.xs[i]
}

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.xs {
		sum += v
	}
	return sum / float64(len(s.xs))
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if s.sorted {
		return s.xs[len(s.xs)-1]
	}
	m := s.xs[0]
	for _, v := range s.xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Merge appends all observations from o.
func (s *Sample) Merge(o *Sample) {
	s.xs = append(s.xs, o.xs...)
	s.sorted = false
}
