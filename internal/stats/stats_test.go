package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic sample is 4; unbiased = 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(split) % len(xs)
		var all, a, b Welford
		for _, x := range xs {
			all.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		scale := 1 + math.Abs(all.Mean())
		return math.Abs(a.Mean()-all.Mean()) < 1e-9*scale &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6*(1+all.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordCIShrinks(t *testing.T) {
	var w Welford
	for i := 0; i < 10; i++ {
		w.Add(float64(i % 5))
	}
	ci10 := w.CI(0.05)
	for i := 10; i < 1000; i++ {
		w.Add(float64(i % 5))
	}
	ci1000 := w.CI(0.05)
	if ci1000 >= ci10 {
		t.Errorf("CI did not shrink: %v -> %v", ci10, ci1000)
	}
	if ci1000 <= 0 {
		t.Errorf("CI half-width must be positive, got %v", ci1000)
	}
}

func TestTQuantileApproachesNormal(t *testing.T) {
	z := NormQuantile(0.975)
	tq := tQuantile(0.975, 10000)
	if math.Abs(z-tq) > 1e-3 {
		t.Errorf("t(0.975, 10000) = %v, want ~ %v", tq, z)
	}
	// Small df must inflate: t(0.975, 5) ~ 2.571 vs z ~ 1.96.
	t5 := tQuantile(0.975, 5)
	if t5 < 2.4 || t5 > 2.75 {
		t.Errorf("t(0.975, 5) = %v, want ~2.57", t5)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 100; i >= 1; i-- { // insert descending to exercise sorting
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0.01, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := s.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if s.Mean() != 50.5 {
		t.Errorf("mean = %v, want 50.5", s.Mean())
	}
	if s.Max() != 100 {
		t.Errorf("max = %v, want 100", s.Max())
	}
}

func TestSampleQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample quantile")
		}
	}()
	var s Sample
	s.Quantile(0.5)
}

func TestSampleMerge(t *testing.T) {
	var a, b Sample
	a.Add(1)
	a.Add(3)
	b.Add(2)
	a.Merge(&b)
	if a.N() != 3 || a.Quantile(0.5) != 2 {
		t.Errorf("merge failed: n=%d median=%v", a.N(), a.Quantile(0.5))
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 1)  // up from 0
	tw.Set(10, 0) // down at 10
	tw.Set(15, 1) // up at 15
	avg := tw.Finish(20)
	// Up for 10 + 5 of 20 time units = 0.75.
	if math.Abs(avg-0.75) > 1e-12 {
		t.Errorf("time average = %v, want 0.75", avg)
	}
	if tw.Duration() != 20 {
		t.Errorf("duration = %v, want 20", tw.Duration())
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backwards time")
		}
	}()
	var tw TimeWeighted
	tw.Set(5, 1)
	tw.Set(4, 0)
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.N() != 12 {
		t.Errorf("N = %d, want 12", h.N())
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.Underflow(), h.Overflow())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Errorf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	if got := h.FractionBelow(5); math.Abs(got-6.0/12) > 1e-12 {
		t.Errorf("FractionBelow(5) = %v, want 0.5", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(1, 1, 5); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestBinomialCI(t *testing.T) {
	lo, hi := BinomialCI(50, 100, 0.05)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("CI [%v, %v] must contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI [%v, %v] too wide for n=100", lo, hi)
	}
	// Edge cases stay in [0,1].
	lo, hi = BinomialCI(0, 10, 0.05)
	if lo != 0 || hi <= 0 || hi > 1 {
		t.Errorf("CI for 0/10 = [%v, %v]", lo, hi)
	}
	lo, hi = BinomialCI(10, 10, 0.05)
	if hi != 1 || lo >= 1 || lo < 0 {
		t.Errorf("CI for 10/10 = [%v, %v]", lo, hi)
	}
	lo, hi = BinomialCI(0, 0, 0.05)
	if lo != 0 || hi != 1 {
		t.Errorf("CI for 0/0 = [%v, %v], want [0,1]", lo, hi)
	}
}

func TestBinomialCICoverageProperty(t *testing.T) {
	// Wilson interval width shrinks with n and is widest at p=0.5.
	_, hi1 := BinomialCI(5, 10, 0.05)
	lo1, _ := BinomialCI(5, 10, 0.05)
	_, hi2 := BinomialCI(500, 1000, 0.05)
	lo2, _ := BinomialCI(500, 1000, 0.05)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Errorf("CI width did not shrink with n: %v vs %v", hi2-lo2, hi1-lo1)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{}
	c.Inc("events", 3)
	c.Inc("events", 2)
	if c.Get("events") != 5 {
		t.Errorf("counter = %d, want 5", c.Get("events"))
	}
	if c.Get("missing") != 0 {
		t.Errorf("missing counter = %d, want 0", c.Get("missing"))
	}
}

func TestWeightedWelfordUnitWeightsMatchWelford(t *testing.T) {
	var w Welford
	var ww WeightedWelford
	xs := []float64{3.1, -2.2, 0.5, 9.9, 4.4, 4.4, -1.7}
	for _, x := range xs {
		w.Add(x)
		ww.Add(x, 1)
	}
	if w.Mean() != ww.Mean() {
		t.Errorf("means differ: %v vs %v", w.Mean(), ww.Mean())
	}
	if w.Variance() != ww.Variance() {
		t.Errorf("variances differ: %v vs %v", w.Variance(), ww.Variance())
	}
	if w.CI(0.05) != ww.CI(0.05) {
		t.Errorf("CIs differ: %v vs %v", w.CI(0.05), ww.CI(0.05))
	}
	if ww.EffectiveN() != float64(w.N()) {
		t.Errorf("effective n = %v, want %d", ww.EffectiveN(), w.N())
	}
}

func TestWeightedWelfordMean(t *testing.T) {
	var ww WeightedWelford
	ww.Add(1, 3)
	ww.Add(5, 1)
	want := (3.0*1 + 1.0*5) / 4.0
	if math.Abs(ww.Mean()-want) > 1e-12 {
		t.Errorf("weighted mean = %v, want %v", ww.Mean(), want)
	}
	if ww.N() != 2 {
		t.Errorf("n = %d, want 2", ww.N())
	}
	// Kish effective sample size: (3+1)^2 / (9+1) = 1.6.
	if math.Abs(ww.EffectiveN()-1.6) > 1e-12 {
		t.Errorf("effective n = %v, want 1.6", ww.EffectiveN())
	}
}

func TestWeightedWelfordZeroAndNegativeWeights(t *testing.T) {
	var ww WeightedWelford
	ww.Add(1, 1)
	ww.Add(100, 0) // ignored
	if ww.N() != 1 || ww.Mean() != 1 {
		t.Errorf("zero-weight observation changed the accumulator: %v", ww)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative weight did not panic")
		}
	}()
	ww.Add(1, -1)
}

func TestWeightedWelfordLargeWeightKeepsFiniteCI(t *testing.T) {
	// exp(350) is the largest weight scale HazardBiased.Weight can emit;
	// its square must stay finite so EffectiveN and CI stay meaningful.
	var ww WeightedWelford
	w := math.Exp(350)
	ww.Add(0.9, w)
	ww.Add(0.95, 1)
	ww.Add(0.99, w)
	if math.IsNaN(ww.EffectiveN()) || math.IsInf(ww.EffectiveN(), 0) {
		t.Fatalf("effective n degenerated: %v", ww.EffectiveN())
	}
	if math.IsNaN(ww.CI(0.05)) {
		t.Fatalf("CI degenerated: %v", ww.CI(0.05))
	}
}
