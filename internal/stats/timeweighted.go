package stats

import (
	"fmt"
	"math"
)

// TimeWeighted integrates a piecewise-constant signal over simulated time,
// yielding time-averaged values. Availability ("fraction of time at least
// one quorum was up") and queue lengths are time averages, not event
// averages, so they must be accumulated this way.
type TimeWeighted struct {
	lastT    float64
	lastV    float64
	area     float64
	started  bool
	duration float64
}

// Set records that the signal takes value v from time t onward. Calls must
// have non-decreasing t; the first call establishes the origin.
func (tw *TimeWeighted) Set(t, v float64) {
	if !tw.started {
		tw.lastT, tw.lastV, tw.started = t, v, true
		return
	}
	if t < tw.lastT {
		panic(fmt.Sprintf("stats: TimeWeighted time went backwards: %v < %v", t, tw.lastT))
	}
	tw.area += tw.lastV * (t - tw.lastT)
	tw.duration += t - tw.lastT
	tw.lastT, tw.lastV = t, v
}

// Finish closes the integration window at time t and returns the time
// average over the observed window. The accumulator remains usable.
func (tw *TimeWeighted) Finish(t float64) float64 {
	if !tw.started {
		return 0
	}
	tw.Set(t, tw.lastV)
	return tw.Average()
}

// Average returns the time average of the signal so far.
func (tw *TimeWeighted) Average() float64 {
	if tw.duration == 0 {
		return tw.lastV
	}
	return tw.area / tw.duration
}

// Duration returns the total observed time span.
func (tw *TimeWeighted) Duration() float64 { return tw.duration }

// Histogram counts observations into equal-width bins over [Lo, Hi), with
// overflow/underflow bins at the ends. Used for result-store summaries
// (§4.4) and for expressing SLAs as distributions (§4.1).
type Histogram struct {
	Lo, Hi  float64
	counts  []int64
	under   int64
	over    int64
	total   int64
	binArea float64
}

// NewHistogram creates a histogram with bins equal-width buckets on
// [lo, hi). It returns an error if the range is empty or bins < 1.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int64, bins),
		binArea: (hi - lo) / float64(bins)}, nil
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / h.binArea)
		if i >= len(h.counts) { // float edge case at Hi boundary
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.total }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.counts[i] }

// Bins returns the number of interior bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.under }
func (h *Histogram) Overflow() int64  { return h.over }

// FractionBelow returns the fraction of observations strictly below x,
// resolved at bin granularity (bins fully below x count entirely).
func (h *Histogram) FractionBelow(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	c := h.under
	for i := range h.counts {
		hiEdge := h.Lo + float64(i+1)*h.binArea
		if hiEdge <= x {
			c += h.counts[i]
		}
	}
	if x > h.Hi {
		c += h.over
	}
	return float64(c) / float64(h.total)
}

// Counter is a simple named event counter map.
type Counter map[string]int64

// Inc increments name by delta.
func (c Counter) Inc(name string, delta int64) { c[name] += delta }

// Get returns the count for name (0 if absent).
func (c Counter) Get(name string) int64 { return c[name] }

// BinomialCI returns the Wilson score interval for a proportion with
// successes k out of n at confidence 1-alpha. Availability probabilities
// estimated by Monte Carlo (Figure 1) are proportions, and Wilson behaves
// sensibly at p near 0 and 1 where the Wald interval collapses.
func BinomialCI(k, n int64, alpha float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	z := normQuantile(1 - alpha/2)
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo, hi = center-half, center+half
	// Exact endpoints: round-off must not report a non-zero lower bound
	// for zero successes (or symmetrically at k=n).
	if k == 0 || lo < 0 {
		lo = 0
	}
	if k == n || hi > 1 {
		hi = 1
	}
	return lo, hi
}
