// Package workload implements the performance half of the wind tunnel
// (§3 of the paper): synthetic request workloads executing against
// per-node resource models, so that performance SLAs, co-location
// interference, limpware and repair-traffic effects can be simulated.
//
// The paper's position (citing DBSeer) is that predictions are possible
// "as long as the key resources are simulated": each node is modelled as
// three service centers — CPU (multi-server), disk and NIC — and every
// request consumes a sampled amount of each in series. Co-located
// workloads interfere by queueing at the same stations; degraded hardware
// slows a station through its speed factor; repair storms inject extra
// disk and NIC work.
//
// Time unit: seconds.
package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// NodeModel is the resource model of one server: CPU with `cores`
// parallel servers, a disk and a NIC.
type NodeModel struct {
	Name string
	CPU  *sim.Station
	Disk *sim.Station
	NIC  *sim.Station

	sim          *sim.Simulator
	diskSecPerOp float64
	nicSecPerMB  float64
}

// NodeSpec parameterizes a NodeModel from hardware numbers.
type NodeSpec struct {
	Cores    int
	DiskIOPS float64
	NICMBps  float64
}

// NewNodeModel builds a node resource model on simulator s.
func NewNodeModel(s *sim.Simulator, name string, spec NodeSpec) (*NodeModel, error) {
	if spec.Cores < 1 {
		return nil, fmt.Errorf("workload: node %q needs >= 1 core, got %d", name, spec.Cores)
	}
	if spec.DiskIOPS <= 0 || spec.NICMBps <= 0 {
		return nil, fmt.Errorf("workload: node %q needs positive disk IOPS and NIC MBps", name)
	}
	cpu, err := sim.NewStation(s, name+"/cpu", spec.Cores)
	if err != nil {
		return nil, err
	}
	disk, err := sim.NewStation(s, name+"/disk", 1)
	if err != nil {
		return nil, err
	}
	nic, err := sim.NewStation(s, name+"/nic", 1)
	if err != nil {
		return nil, err
	}
	return &NodeModel{
		Name: name, CPU: cpu, Disk: disk, NIC: nic, sim: s,
		diskSecPerOp: 1 / spec.DiskIOPS,
		nicSecPerMB:  1 / spec.NICMBps,
	}, nil
}

// Demand is one request's resource consumption.
type Demand struct {
	CPUSeconds float64
	DiskOps    float64
	NetMB      float64
}

// Process runs a request through CPU -> disk -> NIC and reports the
// end-to-end latency to done (which may be nil). Zero-demand stages are
// skipped.
func (n *NodeModel) Process(d Demand, done func(latency float64)) {
	t0 := n.sim.Now()
	run := func(st *sim.Station, work float64, next func()) {
		if work <= 0 {
			next()
			return
		}
		st.Submit(work, func(_, _ float64) { next() })
	}
	run(n.CPU, d.CPUSeconds, func() {
		run(n.Disk, d.DiskOps*n.diskSecPerOp, func() {
			run(n.NIC, d.NetMB*n.nicSecPerMB, func() {
				if done != nil {
					done(n.sim.Now() - t0)
				}
			})
		})
	})
}

// DegradeNIC applies a limpware factor to the node's NIC (§4.5): 0.01
// means the NIC runs at 1% of its specified throughput. Factor 1 restores
// full speed.
func (n *NodeModel) DegradeNIC(factor float64) error {
	return degrade(n.NIC, factor)
}

// DegradeDisk applies a limpware factor to the node's disk.
func (n *NodeModel) DegradeDisk(factor float64) error {
	return degrade(n.Disk, factor)
}

// DegradeCPU applies a limpware factor to the node's CPU.
func (n *NodeModel) DegradeCPU(factor float64) error {
	return degrade(n.CPU, factor)
}

func degrade(st *sim.Station, factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("workload: degrade factor %v outside (0, 1]", factor)
	}
	st.SetSpeed(factor)
	return nil
}

// Profile is a request class: sampled resource demands.
type Profile struct {
	Name string
	CPU  dist.Dist // CPU seconds per request (nil = none)
	Disk dist.Dist // disk operations per request (nil = none)
	Net  dist.Dist // network MB per request (nil = none)
}

// sample draws one request's demand.
func (p Profile) sample(r *rng.Source) Demand {
	var d Demand
	if p.CPU != nil {
		d.CPUSeconds = p.CPU.Sample(r)
	}
	if p.Disk != nil {
		d.DiskOps = p.Disk.Sample(r)
	}
	if p.Net != nil {
		d.NetMB = p.Net.Sample(r)
	}
	return d
}

// Workload drives requests from one profile onto a set of nodes and
// collects latency statistics.
type Workload struct {
	Name    string
	Profile Profile

	sim     *sim.Simulator
	nodes   []*NodeModel
	rng     *rng.Source
	route   int
	lat     stats.Sample
	started int64
	done    int64
	stopped bool
}

// NewWorkload creates a workload targeting nodes (round-robin routing).
func NewWorkload(s *sim.Simulator, name string, p Profile, nodes []*NodeModel) (*Workload, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("workload: %q has no target nodes", name)
	}
	return &Workload{
		Name: name, Profile: p, sim: s, nodes: nodes,
		rng: s.Stream("workload/" + name),
	}, nil
}

// next returns the next target node round-robin.
func (w *Workload) next() *NodeModel {
	n := w.nodes[w.route%len(w.nodes)]
	w.route++
	return n
}

// submit issues one request.
func (w *Workload) submit() {
	w.started++
	d := w.Profile.sample(w.rng)
	w.next().Process(d, func(latency float64) {
		w.done++
		w.lat.Add(latency)
	})
}

// StartOpen begins an open-loop arrival process with the given
// interarrival distribution (seconds), running until the simulator stops
// or `count` requests have been issued (count <= 0 = unlimited).
func (w *Workload) StartOpen(interarrival dist.Dist, count int64) error {
	if interarrival == nil {
		return fmt.Errorf("workload: %q open loop needs an interarrival distribution", w.Name)
	}
	var arrive func()
	arrive = func() {
		if w.stopped || (count > 0 && w.started >= count) {
			return
		}
		w.submit()
		w.sim.Schedule(interarrival.Sample(w.rng), w.Name+"/arrival", arrive)
	}
	w.sim.Schedule(interarrival.Sample(w.rng), w.Name+"/arrival", arrive)
	return nil
}

// StartClosed begins a closed-loop population of `clients` users with the
// given think-time distribution: each client thinks, issues a request,
// waits for completion, repeats.
func (w *Workload) StartClosed(clients int, think dist.Dist) error {
	if clients < 1 {
		return fmt.Errorf("workload: %q closed loop needs >= 1 client, got %d", w.Name, clients)
	}
	if think == nil {
		return fmt.Errorf("workload: %q closed loop needs a think-time distribution", w.Name)
	}
	for i := 0; i < clients; i++ {
		var loop func()
		loop = func() {
			if w.stopped {
				return
			}
			w.sim.Schedule(think.Sample(w.rng), w.Name+"/think", func() {
				if w.stopped {
					return
				}
				w.started++
				d := w.Profile.sample(w.rng)
				w.next().Process(d, func(latency float64) {
					w.done++
					w.lat.Add(latency)
					loop()
				})
			})
		}
		loop()
	}
	return nil
}

// Stop halts request generation (in-flight requests drain).
func (w *Workload) Stop() { w.stopped = true }

// Latencies returns the collected latency sample.
func (w *Workload) Latencies() *stats.Sample { return &w.lat }

// Started returns the number of issued requests.
func (w *Workload) Started() int64 { return w.started }

// Completed returns the number of finished requests.
func (w *Workload) Completed() int64 { return w.done }

// BackgroundLoad injects constant-rate disk and NIC work on a node,
// modelling repair storms or control operations whose impact on tenant
// latency the paper calls out as unmodelled in prior work (§3). Returns a
// stop function.
func BackgroundLoad(s *sim.Simulator, node *NodeModel, period float64, d Demand) (stop func(), err error) {
	if period <= 0 {
		return nil, fmt.Errorf("workload: background period must be > 0, got %v", period)
	}
	return s.Every(period, period, node.Name+"/background", func(sim.Time) {
		node.Process(d, nil)
	}), nil
}
