package workload

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
)

func node(t *testing.T, s *sim.Simulator, name string) *NodeModel {
	t.Helper()
	n, err := NewNodeModel(s, name, NodeSpec{Cores: 4, DiskIOPS: 1000, NICMBps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNodeModelValidation(t *testing.T) {
	s := sim.New(1)
	if _, err := NewNodeModel(s, "x", NodeSpec{Cores: 0, DiskIOPS: 1, NICMBps: 1}); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := NewNodeModel(s, "x", NodeSpec{Cores: 1, DiskIOPS: 0, NICMBps: 1}); err == nil {
		t.Error("0 IOPS accepted")
	}
	if _, err := NewNodeModel(s, "x", NodeSpec{Cores: 1, DiskIOPS: 1, NICMBps: 0}); err == nil {
		t.Error("0 NIC accepted")
	}
}

func TestProcessLatencyIsSumOfStages(t *testing.T) {
	s := sim.New(1)
	n := node(t, s, "n0")
	var lat float64 = -1
	// 0.1s CPU + 50 ops * 1ms + 100 MB * 1ms = 0.1 + 0.05 + 0.1 = 0.25.
	n.Process(Demand{CPUSeconds: 0.1, DiskOps: 50, NetMB: 100}, func(l float64) { lat = l })
	s.Run()
	if math.Abs(lat-0.25) > 1e-9 {
		t.Fatalf("latency = %v, want 0.25", lat)
	}
}

func TestProcessSkipsZeroStages(t *testing.T) {
	s := sim.New(1)
	n := node(t, s, "n0")
	var lat float64 = -1
	n.Process(Demand{CPUSeconds: 0.2}, func(l float64) { lat = l })
	s.Run()
	if math.Abs(lat-0.2) > 1e-9 {
		t.Fatalf("latency = %v, want 0.2 (CPU only)", lat)
	}
}

func TestLimpwareNICRaisesLatency(t *testing.T) {
	// §4.5: a NIC at 1% of spec multiplies the network stage by 100.
	run := func(factor float64) float64 {
		s := sim.New(1)
		n := node(t, s, "n0")
		if factor < 1 {
			if err := n.DegradeNIC(factor); err != nil {
				t.Fatal(err)
			}
		}
		var lat float64
		n.Process(Demand{NetMB: 10}, func(l float64) { lat = l })
		s.Run()
		return lat
	}
	healthy := run(1)
	limping := run(0.01)
	if math.Abs(limping/healthy-100) > 1e-6 {
		t.Fatalf("limpware slowdown = %v, want 100x", limping/healthy)
	}
}

func TestDegradeValidation(t *testing.T) {
	s := sim.New(1)
	n := node(t, s, "n0")
	if err := n.DegradeNIC(0); err == nil {
		t.Error("factor 0 accepted")
	}
	if err := n.DegradeDisk(2); err == nil {
		t.Error("factor 2 accepted")
	}
	if err := n.DegradeCPU(0.5); err != nil {
		t.Errorf("valid factor rejected: %v", err)
	}
}

func TestOpenLoopLatencyMatchesMM1(t *testing.T) {
	// Single-core CPU-only node: M/M/1 with lambda=0.5, mu=1 -> W = 2.
	s := sim.New(99)
	n, err := NewNodeModel(s, "n0", NodeSpec{Cores: 1, DiskIOPS: 1e12, NICMBps: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(s, "w", Profile{
		Name: "cpu-bound",
		CPU:  dist.Must(dist.ExpMean(1)),
	}, []*NodeModel{n})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.StartOpen(dist.Must(dist.ExpMean(2)), 100000); err != nil {
		t.Fatal(err)
	}
	s.Run()
	mean := w.Latencies().Mean()
	if math.Abs(mean-2) > 0.15 {
		t.Fatalf("open-loop mean latency = %v, want ~2 (M/M/1)", mean)
	}
	if w.Completed() != 100000 {
		t.Fatalf("completed %d of 100000", w.Completed())
	}
}

func TestInterferenceRaisesLatency(t *testing.T) {
	// §3: adding workload B on the same node slows workload A.
	run := func(withB bool) float64 {
		s := sim.New(7)
		n, err := NewNodeModel(s, "n0", NodeSpec{Cores: 1, DiskIOPS: 1e12, NICMBps: 1e12})
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewWorkload(s, "A", Profile{CPU: dist.Must(dist.ExpMean(0.5))}, []*NodeModel{n})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.StartOpen(dist.Must(dist.ExpMean(2)), 20000); err != nil {
			t.Fatal(err)
		}
		if withB {
			b, err := NewWorkload(s, "B", Profile{CPU: dist.Must(dist.ExpMean(0.5))}, []*NodeModel{n})
			if err != nil {
				t.Fatal(err)
			}
			if err := b.StartOpen(dist.Must(dist.ExpMean(2)), 20000); err != nil {
				t.Fatal(err)
			}
		}
		s.Run()
		return a.Latencies().Quantile(0.95)
	}
	alone := run(false)
	shared := run(true)
	if shared <= alone {
		t.Fatalf("co-located p95 %v should exceed isolated p95 %v", shared, alone)
	}
}

func TestClosedLoopRespectsPopulation(t *testing.T) {
	s := sim.New(5)
	n := node(t, s, "n0")
	w, err := NewWorkload(s, "w", Profile{CPU: dist.Must(dist.NewDeterministic(0.1))}, []*NodeModel{n})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.StartClosed(5, dist.Must(dist.NewDeterministic(0.1))); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100)
	w.Stop()
	s.Run()
	// 5 clients, cycle time ~0.2s (0.1 think + ~0.1 service on 4 cores)
	// => ~25 req/s => ~2500 requests by t=100.
	if w.Completed() < 2000 || w.Completed() > 3000 {
		t.Fatalf("closed loop completed %d, want ~2500", w.Completed())
	}
	// In-flight never exceeds population: started - done <= 5.
	if w.Started()-w.Completed() > 5 {
		t.Fatalf("in-flight %d exceeds population 5", w.Started()-w.Completed())
	}
}

func TestRoundRobinRouting(t *testing.T) {
	s := sim.New(5)
	n1 := node(t, s, "n1")
	n2 := node(t, s, "n2")
	w, err := NewWorkload(s, "w", Profile{CPU: dist.Must(dist.NewDeterministic(0.01))}, []*NodeModel{n1, n2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.StartOpen(dist.Must(dist.NewDeterministic(0.1)), 100); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if n1.CPU.Completions() != 50 || n2.CPU.Completions() != 50 {
		t.Fatalf("routing split %d/%d, want 50/50",
			n1.CPU.Completions(), n2.CPU.Completions())
	}
}

func TestBackgroundLoadInterferes(t *testing.T) {
	run := func(background bool) float64 {
		s := sim.New(11)
		n, err := NewNodeModel(s, "n0", NodeSpec{Cores: 1, DiskIOPS: 100, NICMBps: 100})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorkload(s, "w", Profile{Disk: dist.Must(dist.NewDeterministic(1))}, []*NodeModel{n})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.StartOpen(dist.Must(dist.ExpMean(0.1)), 5000); err != nil {
			t.Fatal(err)
		}
		if background {
			// Repair storm: 2 MB to NIC + 20 disk ops every 0.5s.
			stop, err := BackgroundLoad(s, n, 0.5, Demand{DiskOps: 20, NetMB: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer stop()
		}
		s.RunUntil(600)
		return w.Latencies().Quantile(0.99)
	}
	quiet := run(false)
	stormy := run(true)
	if stormy <= quiet {
		t.Fatalf("repair-storm p99 %v should exceed quiet p99 %v", stormy, quiet)
	}
}

func TestWorkloadValidation(t *testing.T) {
	s := sim.New(1)
	if _, err := NewWorkload(s, "w", Profile{}, nil); err == nil {
		t.Error("no targets accepted")
	}
	n := node(t, s, "n0")
	w, err := NewWorkload(s, "w", Profile{}, []*NodeModel{n})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.StartOpen(nil, 1); err == nil {
		t.Error("nil interarrival accepted")
	}
	if err := w.StartClosed(0, dist.Must(dist.ExpMean(1))); err == nil {
		t.Error("0 clients accepted")
	}
	if err := w.StartClosed(1, nil); err == nil {
		t.Error("nil think accepted")
	}
	if _, err := BackgroundLoad(s, n, 0, Demand{}); err == nil {
		t.Error("zero period accepted")
	}
}
