package storage

import (
	"testing"

	"repro/internal/rng"
)

// mulAddRef is the obvious per-byte reference the optimized kernels must
// match bit-for-bit.
func mulAddRef(dst, src []byte, c byte) {
	for i := range src {
		dst[i] ^= gfMul(c, src[i])
	}
}

// TestGaloisKernelsAgree drives mulAdd/mulSet — including the SIMD blocks
// and scalar tails — across awkward lengths and every coefficient class.
func TestGaloisKernelsAgree(t *testing.T) {
	r := rng.New(99)
	lengths := []int{0, 1, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1024, 1027, 4096 + 5}
	coefs := []byte{0, 1, 2, 3, 0x1d, 0x80, 0xff, 0x53}
	for _, n := range lengths {
		src := make([]byte, n)
		base := make([]byte, n)
		for i := range src {
			src[i] = byte(r.Intn(256))
			base[i] = byte(r.Intn(256))
		}
		for _, c := range coefs {
			want := append([]byte(nil), base...)
			mulAddRef(want, src, c)
			got := append([]byte(nil), base...)
			mulAdd(got, src, c)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mulAdd(c=%#x, len=%d) mismatch at byte %d: %#x != %#x",
						c, n, i, got[i], want[i])
				}
			}

			wantSet := make([]byte, n)
			for i := range src {
				wantSet[i] = gfMul(c, src[i])
			}
			gotSet := append([]byte(nil), base...) // dirty destination
			mulSet(gotSet, src, c)
			for i := range wantSet {
				if gotSet[i] != wantSet[i] {
					t.Fatalf("mulSet(c=%#x, len=%d) mismatch at byte %d: %#x != %#x",
						c, n, i, gotSet[i], wantSet[i])
				}
			}
		}
	}
}

// TestEncodeIntoZeroAlloc is the allocation-regression guard for the RS
// substrate: encoding into a reusable parity buffer must not allocate.
func TestEncodeIntoZeroAlloc(t *testing.T) {
	code, err := NewRSCode(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	data := make([][]byte, 10)
	for i := range data {
		data[i] = make([]byte, 8<<10)
		for j := range data[i] {
			data[i][j] = byte(r.Intn(256))
		}
	}
	parity := make([][]byte, 4)
	for i := range parity {
		parity[i] = make([]byte, 8<<10)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := code.EncodeInto(data, parity); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeInto allocates %.1f allocs/call with a reusable parity buffer, want 0", allocs)
	}
}

// TestEncodeIntoMatchesEncode checks the zero-alloc path against Encode.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	r := rng.New(5)
	code, err := NewRSCode(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	const shardLen = 1027 // force SIMD blocks plus a scalar tail
	data := make([][]byte, 10)
	for i := range data {
		data[i] = make([]byte, shardLen)
		for j := range data[i] {
			data[i][j] = byte(r.Intn(256))
		}
	}
	shards, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	parity := make([][]byte, 4)
	for i := range parity {
		parity[i] = make([]byte, shardLen)
		parity[i][0] = 0xaa // must be overwritten, not accumulated into
	}
	if err := code.EncodeInto(data, parity); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		for i := 0; i < shardLen; i++ {
			if parity[p][i] != shards[10+p][i] {
				t.Fatalf("EncodeInto parity %d differs from Encode at byte %d", p, i)
			}
		}
	}

	// Argument validation.
	if err := code.EncodeInto(data[:9], parity); err == nil {
		t.Error("EncodeInto accepted wrong data shard count")
	}
	if err := code.EncodeInto(data, parity[:3]); err == nil {
		t.Error("EncodeInto accepted wrong parity count")
	}
	short := [][]byte{parity[0], parity[1], parity[2], parity[3][:5]}
	if err := code.EncodeInto(data, short); err == nil {
		t.Error("EncodeInto accepted short parity buffer")
	}
}
