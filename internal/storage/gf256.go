// Package storage implements the software side of the wind tunnel's
// availability story (§1, §3, §4.6 of the paper): customer data objects
// protected by n-way replication or Reed–Solomon erasure coding (the
// "XORing elephants" alternative the paper cites as [14]), distributed
// across cluster nodes by pluggable placement policies — Random and
// RoundRobin as in Figure 1, plus rack-aware and copyset variants — and
// judged available under a majority-quorum protocol.
package storage

import "encoding/binary"

// GF(2^8) arithmetic with the 0x11d primitive polynomial (the one used by
// storage Reed–Solomon implementations). Log/antilog tables are built at
// package init; all operations are table lookups. A full 256×256 product
// table is also built so the encode/reconstruct inner loops can multiply
// with a single unconditional lookup per byte: gfMulTable[c] is the
// 256-entry product table of the constant c, and bulk kernels walk it
// word-at-a-time (see mulAddTable).

const gfPoly = 0x11d

var (
	gfExp [512]byte // doubled to avoid mod-255 in Mul
	gfLog [256]byte

	// gfMulTable[a][b] = a·b over GF(2^8). 64 KiB, shared by every code
	// instance; row pointers are cached on each RSCode's matrices.
	gfMulTable [256][256]byte

	// gfNibbleTable[c] is c's 32-byte SIMD shuffle table: products of the
	// 16 low-nibble values followed by products of the 16 high-nibble
	// values (see galois_amd64.s).
	gfNibbleTable [256][32]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for a := 1; a < 256; a++ {
		la := int(gfLog[a])
		for b := 1; b < 256; b++ {
			gfMulTable[a][b] = gfExp[la+int(gfLog[b])]
		}
	}
	for c := 0; c < 256; c++ {
		for i := 0; i < 16; i++ {
			gfNibbleTable[c][i] = gfMulTable[c][i]
			gfNibbleTable[c][16+i] = gfMulTable[c][i<<4]
		}
	}
}

// mulTableOf returns c's 256-entry product table.
func mulTableOf(c byte) *[256]byte { return &gfMulTable[c] }

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b (b != 0).
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("storage: GF(256) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a (a != 0).
func gfInv(a byte) byte {
	if a == 0 {
		panic("storage: GF(256) inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// gfPow returns a^n.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(gfLog[a]) * n) % 255
	if l < 0 {
		l += 255
	}
	return gfExp[l]
}

// tableWord multiplies the eight bytes of x through t with
// register-resident lookups (t holds the products of one coefficient).
func tableWord(t *[256]byte, x uint64) uint64 {
	return uint64(t[byte(x)]) |
		uint64(t[byte(x>>8)])<<8 |
		uint64(t[byte(x>>16)])<<16 |
		uint64(t[byte(x>>24)])<<24 |
		uint64(t[byte(x>>32)])<<32 |
		uint64(t[byte(x>>40)])<<40 |
		uint64(t[byte(x>>48)])<<48 |
		uint64(t[byte(x>>56)])<<56
}

// mulAddTable accumulates dst ^= c·src where t is c's product table
// (t == mulTableOf(c)). Two words per iteration keep two independent
// lookup chains in flight; there are no per-byte bounds checks.
func mulAddTable(dst, src []byte, t *[256]byte) {
	for len(src) >= 16 && len(dst) >= 16 {
		x := binary.LittleEndian.Uint64(src)
		y := binary.LittleEndian.Uint64(src[8:16])
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)^tableWord(t, x))
		binary.LittleEndian.PutUint64(dst[8:16], binary.LittleEndian.Uint64(dst[8:16])^tableWord(t, y))
		src, dst = src[16:], dst[16:]
	}
	for i := 0; i < len(src); i++ {
		dst[i] ^= t[src[i]]
	}
}

// mulSetTable writes dst = c·src (no accumulate, so callers skip a
// zero-fill pass for the first source of a parity row).
func mulSetTable(dst, src []byte, t *[256]byte) {
	for len(src) >= 16 && len(dst) >= 16 {
		x := binary.LittleEndian.Uint64(src)
		y := binary.LittleEndian.Uint64(src[8:16])
		binary.LittleEndian.PutUint64(dst, tableWord(t, x))
		binary.LittleEndian.PutUint64(dst[8:16], tableWord(t, y))
		src, dst = src[16:], dst[16:]
	}
	for i := 0; i < len(src); i++ {
		dst[i] = t[src[i]]
	}
}

// xorAdd accumulates dst ^= src (the c == 1 fast path), uint64 at a time.
func xorAdd(dst, src []byte) {
	for len(src) >= 16 && len(dst) >= 16 {
		x := binary.LittleEndian.Uint64(src) ^ binary.LittleEndian.Uint64(dst)
		y := binary.LittleEndian.Uint64(src[8:16]) ^ binary.LittleEndian.Uint64(dst[8:16])
		binary.LittleEndian.PutUint64(dst, x)
		binary.LittleEndian.PutUint64(dst[8:16], y)
		src, dst = src[16:], dst[16:]
	}
	for i := 0; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// mulAdd accumulates dst ^= c·src, dispatching to the fastest kernel:
// SIMD shuffle blocks when available, then the portable word-at-a-time
// table kernel for tails and non-SIMD hosts.
func mulAdd(dst, src []byte, c byte) {
	switch c {
	case 0:
	case 1:
		xorAdd(dst, src)
	default:
		if hasGaloisSIMD && len(src) >= 32 && len(dst) >= len(src) {
			blocks := len(src) >> 5
			galMulSIMD(dst, src, c, blocks, true)
			dst, src = dst[blocks<<5:], src[blocks<<5:]
		}
		mulAddTable(dst, src, mulTableOf(c))
	}
}

// mulSet writes dst = c·src with the same dispatch as mulAdd.
func mulSet(dst, src []byte, c byte) {
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		if hasGaloisSIMD && len(src) >= 32 && len(dst) >= len(src) {
			blocks := len(src) >> 5
			galMulSIMD(dst, src, c, blocks, false)
			dst, src = dst[blocks<<5:], src[blocks<<5:]
		}
		mulSetTable(dst, src, mulTableOf(c))
	}
}

// matrix is a dense byte matrix over GF(256).
type matrix struct {
	rows, cols int
	data       []byte
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m *matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m *matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// mul returns m × o.
func (m *matrix) mul(o *matrix) *matrix {
	if m.cols != o.rows {
		panic("storage: matrix dimension mismatch")
	}
	out := newMatrix(m.rows, o.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.at(r, k)
			if a == 0 {
				continue
			}
			for c := 0; c < o.cols; c++ {
				out.data[r*o.cols+c] ^= gfMul(a, o.at(k, c))
			}
		}
	}
	return out
}

// subMatrix returns rows [r0,r1) and cols [c0,c1).
func (m *matrix) subMatrix(r0, r1, c0, c1 int) *matrix {
	out := newMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			out.set(r-r0, c-c0, m.at(r, c))
		}
	}
	return out
}

// invert returns the inverse via Gauss–Jordan elimination, or false if the
// matrix is singular.
func (m *matrix) invert() (*matrix, bool) {
	if m.rows != m.cols {
		return nil, false
	}
	n := m.rows
	// Augmented [m | I].
	aug := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			aug.set(r, c, m.at(r, c))
		}
		aug.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		if pivot != col {
			for c := 0; c < 2*n; c++ {
				v1, v2 := aug.at(col, c), aug.at(pivot, c)
				aug.set(col, c, v2)
				aug.set(pivot, c, v1)
			}
		}
		// Scale pivot row to 1.
		inv := gfInv(aug.at(col, col))
		for c := 0; c < 2*n; c++ {
			aug.set(col, c, gfMul(aug.at(col, c), inv))
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.at(r, col)
			if f == 0 {
				continue
			}
			for c := 0; c < 2*n; c++ {
				aug.set(r, c, aug.at(r, c)^gfMul(f, aug.at(col, c)))
			}
		}
	}
	return aug.subMatrix(0, n, n, 2*n), true
}

// identity returns the n×n identity matrix.
func identity(n int) *matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde returns the rows×cols Vandermonde matrix V[r][c] = r^c.
// Any k distinct rows of a Vandermonde matrix over GF(256) with rows <=
// 256 are linearly independent.
func vandermonde(rows, cols int) *matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gfPow(byte(r), c))
		}
	}
	return m
}
