package storage

import "fmt"

// RSCode is a systematic Reed–Solomon erasure code with K data shards and
// M parity shards: any K of the K+M shards reconstruct the data. RS(10,4)
// is the configuration from the paper's reference [14] ("XORing
// elephants"); the wind tunnel's E8 experiment compares such codes against
// plain replication on storage overhead and availability.
type RSCode struct {
	K, M   int
	enc    *matrix // (K+M) × K systematic encoding matrix
	parity *matrix // M × K parity rows

	// parityCoef flattens the parity rows (index p*K + k) so the encode
	// loop walks one dense coefficient array; each coefficient's 256-entry
	// product table and 32-byte SIMD shuffle table are built once at
	// package init (gfMulTable / gfNibbleTable) and selected per
	// coefficient, so Encode never touches log/antilog arithmetic.
	parityCoef []byte
}

// NewRSCode builds an RS(k, m) code; k >= 1, m >= 0, k+m <= 256.
func NewRSCode(k, m int) (*RSCode, error) {
	if k < 1 {
		return nil, fmt.Errorf("storage: RS needs k >= 1 data shards, got %d", k)
	}
	if m < 0 {
		return nil, fmt.Errorf("storage: RS needs m >= 0 parity shards, got %d", m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("storage: RS supports k+m <= 256, got %d", k+m)
	}
	// Systematic construction: V ((k+m)×k Vandermonde), normalized so the
	// top k×k block is the identity: E = V * inv(V_top).
	v := vandermonde(k+m, k)
	top := v.subMatrix(0, k, 0, k)
	topInv, ok := top.invert()
	if !ok {
		return nil, fmt.Errorf("storage: degenerate Vandermonde (k=%d, m=%d)", k, m)
	}
	enc := v.mul(topInv)
	c := &RSCode{K: k, M: m, enc: enc, parity: enc.subMatrix(k, k+m, 0, k)}
	c.parityCoef = make([]byte, m*k)
	for p := 0; p < m; p++ {
		for col := 0; col < k; col++ {
			c.parityCoef[p*k+col] = c.parity.at(p, col)
		}
	}
	return c, nil
}

// Shards returns k+m.
func (c *RSCode) Shards() int { return c.K + c.M }

// Overhead returns the storage expansion factor (k+m)/k.
func (c *RSCode) Overhead() float64 { return float64(c.K+c.M) / float64(c.K) }

// Encode computes the m parity shards for k equal-length data shards and
// returns the full k+m shard set (data shards aliased, parity appended).
func (c *RSCode) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.K {
		return nil, fmt.Errorf("storage: Encode wants %d data shards, got %d", c.K, len(data))
	}
	shardLen := len(data[0])
	parity := make([][]byte, c.M)
	buf := make([]byte, c.M*shardLen)
	for p := range parity {
		parity[p] = buf[p*shardLen : (p+1)*shardLen]
	}
	if err := c.EncodeInto(data, parity); err != nil {
		return nil, err
	}
	shards := make([][]byte, c.K+c.M)
	copy(shards, data)
	copy(shards[c.K:], parity)
	return shards, nil
}

// EncodeInto computes the m parity shards for k equal-length data shards
// into the caller-provided parity buffers (len(parity) == M, each the
// data shard length). It performs no allocations, so a steady-state
// encoder can reuse one parity set across calls.
func (c *RSCode) EncodeInto(data, parity [][]byte) error {
	if len(data) != c.K {
		return fmt.Errorf("storage: EncodeInto wants %d data shards, got %d", c.K, len(data))
	}
	if len(parity) != c.M {
		return fmt.Errorf("storage: EncodeInto wants %d parity buffers, got %d", c.M, len(parity))
	}
	shardLen := len(data[0])
	for i, d := range data {
		if len(d) != shardLen {
			return fmt.Errorf("storage: shard %d length %d != %d", i, len(d), shardLen)
		}
	}
	for i, p := range parity {
		if len(p) != shardLen {
			return fmt.Errorf("storage: parity buffer %d length %d != %d", i, len(p), shardLen)
		}
	}
	for p := 0; p < c.M; p++ {
		out := parity[p]
		mulSet(out, data[0], c.parityCoef[p*c.K])
		for k := 1; k < c.K; k++ {
			mulAdd(out, data[k], c.parityCoef[p*c.K+k])
		}
	}
	return nil
}

// Reconstruct recovers the original K data shards from any K available
// shards. shards has length K+M with nil entries marking erasures.
func (c *RSCode) Reconstruct(shards [][]byte) ([][]byte, error) {
	if len(shards) != c.K+c.M {
		return nil, fmt.Errorf("storage: Reconstruct wants %d shards, got %d", c.K+c.M, len(shards))
	}
	var availIdx []int
	shardLen := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if shardLen < 0 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return nil, fmt.Errorf("storage: inconsistent shard lengths")
		}
		availIdx = append(availIdx, i)
	}
	if len(availIdx) < c.K {
		return nil, fmt.Errorf("storage: only %d of %d required shards available", len(availIdx), c.K)
	}
	availIdx = availIdx[:c.K]

	// Fast path: all data shards present.
	allData := true
	for i := 0; i < c.K; i++ {
		if shards[i] == nil {
			allData = false
			break
		}
	}
	if allData {
		return shards[:c.K], nil
	}

	// Build the decode matrix from the surviving rows of the encoding
	// matrix and invert it.
	sub := newMatrix(c.K, c.K)
	for r, idx := range availIdx {
		for col := 0; col < c.K; col++ {
			sub.set(r, col, c.enc.at(idx, col))
		}
	}
	dec, ok := sub.invert()
	if !ok {
		return nil, fmt.Errorf("storage: decode matrix singular (should be impossible for RS)")
	}
	data := make([][]byte, c.K)
	for r := 0; r < c.K; r++ {
		out := make([]byte, shardLen)
		for col := 0; col < c.K; col++ {
			mulAdd(out, shards[availIdx[col]], dec.at(r, col))
		}
		data[r] = out
	}
	return data, nil
}
