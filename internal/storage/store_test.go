package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func flatView(n int) View { return View{Nodes: n} }

func rackView(racks, perRack int) View {
	v := View{Nodes: racks * perRack, RackOf: make([]int, racks*perRack)}
	for i := range v.RackOf {
		v.RackOf[i] = i / perRack
	}
	return v
}

func TestPoliciesProduceDistinctValidNodes(t *testing.T) {
	r := rng.New(7)
	cs, err := NewCopySet(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	policies := []Policy{Random{}, RoundRobin{}, RackAware{}, cs}
	view := rackView(5, 6)
	for _, p := range policies {
		for obj := 0; obj < 200; obj++ {
			locs, err := p.Place(obj, 3, view, r)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if len(locs) != 3 {
				t.Fatalf("%s: got %d locations, want 3", p.Name(), len(locs))
			}
			if err := distinct(locs, view.Nodes); err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
		}
	}
}

func TestRoundRobinDeterministicWindows(t *testing.T) {
	view := flatView(10)
	p := RoundRobin{}
	locs, err := p.Place(8, 3, view, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 9, 0}
	for i := range want {
		if locs[i] != want[i] {
			t.Fatalf("object 8 placed at %v, want %v", locs, want)
		}
	}
}

func TestRackAwareSpreadsAcrossRacks(t *testing.T) {
	r := rng.New(3)
	view := rackView(3, 4)
	p := RackAware{}
	for obj := 0; obj < 100; obj++ {
		locs, err := p.Place(obj, 3, view, r)
		if err != nil {
			t.Fatal(err)
		}
		racks := map[int]bool{}
		for _, n := range locs {
			racks[view.RackOf[n]] = true
		}
		if len(racks) != 3 {
			t.Fatalf("object %d spans %d racks, want 3: %v", obj, len(racks), locs)
		}
	}
}

func TestRackAwareWrapsWhenFewRacks(t *testing.T) {
	r := rng.New(3)
	view := rackView(2, 5)
	locs, err := RackAware{}.Place(0, 4, view, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := distinct(locs, view.Nodes); err != nil {
		t.Fatal(err)
	}
}

func TestCopySetLimitsDistinctGroups(t *testing.T) {
	r := rng.New(11)
	cs, err := NewCopySet(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	view := flatView(9)
	groups := map[[3]int]bool{}
	for obj := 0; obj < 500; obj++ {
		locs, err := cs.Place(obj, 3, view, r)
		if err != nil {
			t.Fatal(err)
		}
		var key [3]int
		copy(key[:], locs)
		groups[key] = true
	}
	// One permutation of 9 nodes yields exactly 3 groups.
	if len(groups) != 3 {
		t.Fatalf("copyset produced %d distinct groups, want 3", len(groups))
	}
}

func TestSchemeSemantics(t *testing.T) {
	rep3 := ReplicationScheme(3)
	if rep3.MinAvailable() != 2 {
		t.Errorf("rep-3 quorum = %d, want 2", rep3.MinAvailable())
	}
	rep5 := ReplicationScheme(5)
	if rep5.MinAvailable() != 3 {
		t.Errorf("rep-5 quorum = %d, want 3", rep5.MinAvailable())
	}
	rs := RSScheme(10, 4)
	if rs.MinAvailable() != 10 || rs.Width() != 14 {
		t.Errorf("rs-10-4 min/width = %d/%d, want 10/14", rs.MinAvailable(), rs.Width())
	}
	if rs.Overhead() != 1.4 || rep3.Overhead() != 3 {
		t.Error("overhead wrong")
	}
	if ReplicationScheme(0).Validate() == nil {
		t.Error("rep-0 accepted")
	}
	if RSScheme(0, 2).Validate() == nil {
		t.Error("rs k=0 accepted")
	}
}

func TestStoreQuorumAvailability(t *testing.T) {
	r := rng.New(5)
	st, err := NewStore(flatView(10), RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddObjects(1, 100, ReplicationScheme(3), r); err != nil {
		t.Fatal(err)
	}
	obj := st.Objects()[0] // placed on 0, 1, 2
	downSet := map[int]bool{}
	down := func(n int) bool { return downSet[n] }
	if !st.Available(obj, down) {
		t.Fatal("object unavailable with no failures")
	}
	downSet[0] = true
	if !st.Available(obj, down) {
		t.Fatal("object should survive one failure (majority 2 of 3 up)")
	}
	downSet[1] = true
	if st.Available(obj, down) {
		t.Fatal("object should be unavailable with majority down")
	}
	if st.Lost(obj, down) {
		t.Fatal("object not lost while one replica remains")
	}
	downSet[2] = true
	if !st.Lost(obj, down) {
		t.Fatal("object should be lost with all replicas down")
	}
}

func TestStoreRSAvailability(t *testing.T) {
	r := rng.New(5)
	st, err := NewStore(flatView(10), Random{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddObjects(1, 100, RSScheme(4, 2), r); err != nil {
		t.Fatal(err)
	}
	obj := st.Objects()[0]
	downSet := map[int]bool{}
	down := func(n int) bool { return downSet[n] }
	// Fail 2 shards: still readable (4 of 6 left).
	downSet[obj.Locations[0]] = true
	downSet[obj.Locations[1]] = true
	if !st.Available(obj, down) {
		t.Fatal("RS(4,2) should survive 2 erasures")
	}
	// Fail a third: unreadable AND lost (RS loss == unavailability).
	downSet[obj.Locations[2]] = true
	if st.Available(obj, down) {
		t.Fatal("RS(4,2) should not survive 3 erasures")
	}
	if !st.Lost(obj, down) {
		t.Fatal("RS(4,2) with 3 erasures is unrecoverable")
	}
}

func TestStoreCounts(t *testing.T) {
	r := rng.New(9)
	st, err := NewStore(flatView(10), RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddObjects(10, 50, ReplicationScheme(3), r); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 10 {
		t.Fatalf("len = %d, want 10", st.Len())
	}
	if st.TotalStoredMB() != 10*50*3 {
		t.Fatalf("stored = %v, want 1500", st.TotalStoredMB())
	}
	// Nodes 0,1,2 down: objects 0 (0,1,2), 1 (1,2,3), 9 (9,0,1), 2 (2,3,4)...
	down := func(n int) bool { return n <= 2 }
	got := st.UnavailableCount(down)
	// Object i occupies i, i+1, i+2 (mod 10); unavailable iff >= 2 of its
	// nodes in {0,1,2}: objects 0, 1, 8(8,9,0)? no ->1 of set. obj 9: 9,0,1 -> 2. obj 2: 2,3,4 -> 1.
	// So objects 0 (3 down), 1 (2 down), 9 (2 down) = 3 unavailable.
	if got != 3 {
		t.Fatalf("unavailable = %d, want 3", got)
	}
	if !st.AnyUnavailable(down) {
		t.Fatal("AnyUnavailable false with 3 unavailable objects")
	}
	if st.AnyUnavailable(func(int) bool { return false }) {
		t.Fatal("AnyUnavailable true with no failures")
	}
}

func TestObjectsOn(t *testing.T) {
	r := rng.New(9)
	st, err := NewStore(flatView(10), RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddObjects(10, 1, ReplicationScheme(3), r); err != nil {
		t.Fatal(err)
	}
	// Node 5 holds shards of objects 3, 4, 5 under round-robin.
	objs := st.ObjectsOn(5)
	if len(objs) != 3 {
		t.Fatalf("node 5 holds %d objects, want 3", len(objs))
	}
	ids := map[int]bool{}
	for _, o := range objs {
		ids[o.ID] = true
	}
	for _, want := range []int{3, 4, 5} {
		if !ids[want] {
			t.Errorf("node 5 missing object %d", want)
		}
	}
}

func TestRelocate(t *testing.T) {
	r := rng.New(9)
	st, err := NewStore(flatView(10), RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddObjects(1, 1, ReplicationScheme(3), r); err != nil {
		t.Fatal(err)
	}
	obj := st.Objects()[0] // on 0,1,2
	if err := st.Relocate(obj, 0, 7); err != nil {
		t.Fatal(err)
	}
	if obj.Locations[0] != 7 {
		t.Fatalf("locations = %v, want [7 1 2]", obj.Locations)
	}
	if err := st.Relocate(obj, 0, 8); err == nil {
		t.Error("relocating from a non-location succeeded")
	}
	if err := st.Relocate(obj, 1, 2); err == nil {
		t.Error("relocating onto an existing location succeeded")
	}
	if err := st.Relocate(obj, 1, 99); err == nil {
		t.Error("relocating out of range succeeded")
	}
}

func TestAddObjectsValidation(t *testing.T) {
	r := rng.New(1)
	st, err := NewStore(flatView(3), Random{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddObjects(0, 1, ReplicationScheme(3), r); err == nil {
		t.Error("count 0 accepted")
	}
	if err := st.AddObjects(1, -1, ReplicationScheme(3), r); err == nil {
		t.Error("negative size accepted")
	}
	if err := st.AddObjects(1, 1, ReplicationScheme(5), r); err == nil {
		t.Error("scheme wider than cluster accepted")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"random", "roundrobin", "rackaware"} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPlacementPropertyRandomViews(t *testing.T) {
	// Property: every policy returns count distinct in-range nodes for
	// any feasible (view, count).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nodes := 2 + r.Intn(40)
		count := 1 + r.Intn(nodes)
		view := flatView(nodes)
		for _, p := range []Policy{Random{}, RoundRobin{}} {
			locs, err := p.Place(r.Intn(1000), count, view, r)
			if err != nil {
				return false
			}
			if distinct(locs, nodes) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
