// AVX2 GF(2^8) constant-multiply kernels (the PSHUFB nibble-table
// technique): each byte b is split into nibbles and c·b is looked up as
// lowTbl[b&0x0f] ^ highTbl[b>>4], 32 bytes per VPSHUFB pair. tbl points
// at the 32-byte low||high nibble table for the coefficient; n is the
// number of 32-byte blocks.

//go:build amd64

#include "textflag.h"

// func galMulSetAVX2(tbl *byte, dst *byte, src *byte, n uint64)
TEXT ·galMulSetAVX2(SB), NOSPLIT, $0-32
	MOVQ tbl+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	VBROADCASTI128 (AX), Y0    // low-nibble products in both lanes
	VBROADCASTI128 16(AX), Y1  // high-nibble products in both lanes
	MOVQ $15, AX
	MOVQ AX, X5
	VPBROADCASTB X5, Y2        // 0x0f byte mask

setloop:
	TESTQ CX, CX
	JZ    setdone
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3         // low nibbles
	VPAND   Y2, Y4, Y4         // high nibbles
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JMP     setloop

setdone:
	VZEROUPPER
	RET

// func galMulXorAVX2(tbl *byte, dst *byte, src *byte, n uint64)
TEXT ·galMulXorAVX2(SB), NOSPLIT, $0-32
	MOVQ tbl+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	MOVQ $15, AX
	MOVQ AX, X5
	VPBROADCASTB X5, Y2

xorloop:
	TESTQ CX, CX
	JZ    xordone
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VPXOR   (DI), Y3, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JMP     xorloop

xordone:
	VZEROUPPER
	RET

// func cpuHasAVX2() bool
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	// OSXSAVE (ECX bit 27) and AVX (ECX bit 28) from leaf 1.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, AX
	ANDL $(1<<27), AX
	JZ   noavx2
	// OS must have enabled XMM+YMM state: XCR0 & 6 == 6.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx2
	// AVX2: leaf 7 subleaf 0, EBX bit 5.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   noavx2
	MOVB $1, ret+0(FP)
	RET

noavx2:
	MOVB $0, ret+0(FP)
	RET
