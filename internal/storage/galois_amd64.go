//go:build amd64

package storage

// The AVX2 kernels in galois_amd64.s multiply a shard by a constant 32
// bytes per step via nibble-table shuffles. They are gated on runtime
// CPUID detection; every call site falls back to the portable
// word-at-a-time table kernels in gf256.go for tails and non-AVX2 hosts.

//go:noescape
func galMulSetAVX2(tbl *byte, dst *byte, src *byte, n uint64)

//go:noescape
func galMulXorAVX2(tbl *byte, dst *byte, src *byte, n uint64)

func cpuHasAVX2() bool

var hasGaloisSIMD = cpuHasAVX2()

// galMulSIMD computes dst[:32n] = c·src[:32n] (xor=false) or
// dst[:32n] ^= c·src[:32n] (xor=true) using the AVX2 kernel. Callers
// guarantee n > 0 and both slices cover 32n bytes.
func galMulSIMD(dst, src []byte, c byte, n int, xor bool) {
	tbl := &gfNibbleTable[c][0]
	if xor {
		galMulXorAVX2(tbl, &dst[0], &src[0], uint64(n))
	} else {
		galMulSetAVX2(tbl, &dst[0], &src[0], uint64(n))
	}
}
