package storage

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGF256Axioms(t *testing.T) {
	// Spot-check field axioms over random elements.
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		a := byte(r.Intn(256))
		b := byte(r.Intn(256))
		c := byte(r.Intn(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("multiplication not commutative for %d, %d", a, b)
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			t.Fatalf("multiplication not associative for %d, %d, %d", a, b, c)
		}
		// Distributivity over XOR (field addition).
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d, %d, %d", a, b, c)
		}
		if gfMul(a, 1) != a {
			t.Fatalf("1 is not identity for %d", a)
		}
		if a != 0 && gfMul(a, gfInv(a)) != 1 {
			t.Fatalf("inverse wrong for %d", a)
		}
		if b != 0 && gfMul(gfDiv(a, b), b) != a {
			t.Fatalf("division wrong for %d / %d", a, b)
		}
	}
}

func TestGFPow(t *testing.T) {
	if gfPow(2, 0) != 1 || gfPow(0, 5) != 0 || gfPow(7, 1) != 7 {
		t.Fatal("gfPow base cases wrong")
	}
	// a^255 = 1 for a != 0.
	for a := 1; a < 256; a++ {
		if gfPow(byte(a), 255) != 1 {
			t.Fatalf("%d^255 != 1", a)
		}
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	m := identity(5)
	inv, ok := m.invert()
	if !ok {
		t.Fatal("identity not invertible")
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if inv.at(r, c) != want {
				t.Fatalf("inverse of identity differs at (%d,%d)", r, c)
			}
		}
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(8)
		m := newMatrix(n, n)
		for i := range m.data {
			m.data[i] = byte(r.Intn(256))
		}
		inv, ok := m.invert()
		if !ok {
			continue // singular random matrix; skip
		}
		prod := m.mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := byte(0)
				if i == j {
					want = 1
				}
				if prod.at(i, j) != want {
					t.Fatalf("M * inv(M) != I at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestMatrixSingularDetected(t *testing.T) {
	m := newMatrix(2, 2) // all zeros
	if _, ok := m.invert(); ok {
		t.Fatal("zero matrix inverted")
	}
}

func TestRSEncodeSystematic(t *testing.T) {
	code, err := NewRSCode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	shards, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 6 {
		t.Fatalf("got %d shards, want 6", len(shards))
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(shards[i], data[i]) {
			t.Fatalf("systematic property violated at shard %d", i)
		}
	}
}

func TestRSReconstructAllErasurePatterns(t *testing.T) {
	code, err := NewRSCode(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{
		[]byte("hello world!"),
		[]byte("wind tunnels"),
		[]byte("datacenters!"),
	}
	shards, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Erase every subset of size <= m = 2 and reconstruct.
	n := len(shards)
	for mask := 0; mask < 1<<n; mask++ {
		erased := 0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				erased++
			}
		}
		if erased > code.M {
			continue
		}
		work := make([][]byte, n)
		for i := range shards {
			if mask>>i&1 == 0 {
				work[i] = shards[i]
			}
		}
		got, err := code.Reconstruct(work)
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				t.Fatalf("mask %b: data shard %d corrupted: %q != %q", mask, i, got[i], data[i])
			}
		}
	}
}

func TestRSReconstructFailsBeyondM(t *testing.T) {
	code, err := NewRSCode(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{{1}, {2}, {3}}
	shards, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards[0], shards[1], shards[2] = nil, nil, nil // 3 erasures > m=2
	if _, err := code.Reconstruct(shards); err == nil {
		t.Fatal("reconstruction with k-1 shards succeeded")
	}
}

func TestRSRoundTripProperty(t *testing.T) {
	// Property: for random (k, m), random data and a random erasure set of
	// size <= m, decode(encode(data)) == data.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 1 + r.Intn(10)
		m := r.Intn(6)
		code, err := NewRSCode(k, m)
		if err != nil {
			return false
		}
		shardLen := 1 + r.Intn(64)
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, shardLen)
			for j := range data[i] {
				data[i][j] = byte(r.Intn(256))
			}
		}
		shards, err := code.Encode(data)
		if err != nil {
			return false
		}
		// Erase up to m random shards.
		erasures := r.Intn(m + 1)
		for _, idx := range r.Sample(k+m, erasures) {
			shards[idx] = nil
		}
		got, err := code.Reconstruct(shards)
		if err != nil {
			return false
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRSValidation(t *testing.T) {
	if _, err := NewRSCode(0, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewRSCode(3, -1); err == nil {
		t.Error("m<0 accepted")
	}
	if _, err := NewRSCode(200, 100); err == nil {
		t.Error("k+m > 256 accepted")
	}
	code, err := NewRSCode(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := code.Encode([][]byte{{1}}); err == nil {
		t.Error("wrong shard count accepted")
	}
	if _, err := code.Encode([][]byte{{1}, {2, 3}}); err == nil {
		t.Error("ragged shards accepted")
	}
	if _, err := code.Reconstruct([][]byte{{1}}); err == nil {
		t.Error("wrong reconstruct count accepted")
	}
}

func TestRSOverhead(t *testing.T) {
	code, err := NewRSCode(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if code.Overhead() != 1.4 {
		t.Errorf("RS(10,4) overhead = %v, want 1.4", code.Overhead())
	}
	if code.Shards() != 14 {
		t.Errorf("shards = %d, want 14", code.Shards())
	}
}
