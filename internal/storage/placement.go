package storage

import (
	"fmt"

	"repro/internal/rng"
)

// View is the placement-relevant summary of a cluster: how many nodes and
// which rack each lives in.
type View struct {
	Nodes  int
	RackOf []int // len Nodes; nil means a single flat rack
}

// Validate checks internal consistency.
func (v View) Validate() error {
	if v.Nodes < 1 {
		return fmt.Errorf("storage: view needs >= 1 node, got %d", v.Nodes)
	}
	if v.RackOf != nil && len(v.RackOf) != v.Nodes {
		return fmt.Errorf("storage: RackOf has %d entries for %d nodes", len(v.RackOf), v.Nodes)
	}
	return nil
}

// Racks returns the number of distinct racks (1 when flat).
func (v View) Racks() int {
	if v.RackOf == nil {
		return 1
	}
	max := 0
	for _, r := range v.RackOf {
		if r > max {
			max = r
		}
	}
	return max + 1
}

// Policy decides which nodes hold an object's shards/replicas. Placements
// must consist of distinct nodes.
type Policy interface {
	// Name identifies the policy ("random", "roundrobin", ...).
	Name() string
	// Place returns count distinct node ids for the object.
	Place(objectID, count int, view View, r *rng.Source) ([]int, error)
}

// Random places each object's replicas on a uniformly random set of
// distinct nodes — the "R" policy of Figure 1.
type Random struct{}

func (Random) Name() string { return "random" }

func (Random) Place(objectID, count int, view View, r *rng.Source) ([]int, error) {
	if err := checkCount(count, view); err != nil {
		return nil, err
	}
	return r.Sample(view.Nodes, count), nil
}

// RoundRobin places object i's replicas on nodes i, i+1, ..., i+count-1
// (mod N) — the "RR" policy of Figure 1.
type RoundRobin struct{}

func (RoundRobin) Name() string { return "roundrobin" }

func (RoundRobin) Place(objectID, count int, view View, _ *rng.Source) ([]int, error) {
	if err := checkCount(count, view); err != nil {
		return nil, err
	}
	out := make([]int, count)
	for j := 0; j < count; j++ {
		out[j] = (objectID + j) % view.Nodes
	}
	return out, nil
}

// RackAware places replicas on distinct racks when possible (the policy
// real systems use to survive correlated ToR/rack failures, §2.1): racks
// are chosen uniformly without replacement, then a random node within
// each; when count exceeds the rack count it wraps around.
type RackAware struct{}

func (RackAware) Name() string { return "rackaware" }

func (RackAware) Place(objectID, count int, view View, r *rng.Source) ([]int, error) {
	if err := checkCount(count, view); err != nil {
		return nil, err
	}
	if view.RackOf == nil {
		return Random{}.Place(objectID, count, view, r)
	}
	// Group nodes by rack.
	racks := view.Racks()
	byRack := make([][]int, racks)
	for n, rk := range view.RackOf {
		byRack[rk] = append(byRack[rk], n)
	}
	chosen := make(map[int]bool, count)
	out := make([]int, 0, count)
	rackOrder := r.Perm(racks)
	for len(out) < count {
		progressed := false
		for _, rk := range rackOrder {
			if len(out) == count {
				break
			}
			nodes := byRack[rk]
			// Pick an unchosen node in this rack, if any.
			start := r.Intn(len(nodes))
			for i := 0; i < len(nodes); i++ {
				n := nodes[(start+i)%len(nodes)]
				if !chosen[n] {
					chosen[n] = true
					out = append(out, n)
					progressed = true
					break
				}
			}
		}
		if !progressed {
			return nil, fmt.Errorf("storage: rack-aware placement could not find %d distinct nodes", count)
		}
	}
	return out, nil
}

// CopySet restricts placements to a small set of precomputed replica
// groups (Cidon et al.'s copysets), trading a higher per-group loss
// probability for far fewer distinct groups — the classic illustration
// that placement policy interacts with availability (§4.6). Scatter
// controls how many permutations are used (>= 1).
type CopySet struct {
	GroupSize int
	Scatter   int

	sets    [][]int
	forView int // view size the sets were built for
}

// NewCopySet builds a copyset policy for groups of size groupSize using
// `scatter` random permutations.
func NewCopySet(groupSize, scatter int) (*CopySet, error) {
	if groupSize < 1 {
		return nil, fmt.Errorf("storage: copyset group size must be >= 1, got %d", groupSize)
	}
	if scatter < 1 {
		return nil, fmt.Errorf("storage: copyset scatter must be >= 1, got %d", scatter)
	}
	return &CopySet{GroupSize: groupSize, Scatter: scatter}, nil
}

func (c *CopySet) Name() string { return "copyset" }

func (c *CopySet) Place(objectID, count int, view View, r *rng.Source) ([]int, error) {
	if err := checkCount(count, view); err != nil {
		return nil, err
	}
	if count != c.GroupSize {
		return nil, fmt.Errorf("storage: copyset built for group size %d, asked for %d", c.GroupSize, count)
	}
	if c.sets == nil || c.forView != view.Nodes {
		c.build(view.Nodes, r)
	}
	return c.sets[r.Intn(len(c.sets))], nil
}

// build partitions `scatter` random permutations into groups.
func (c *CopySet) build(nodes int, r *rng.Source) {
	c.sets = nil
	c.forView = nodes
	for s := 0; s < c.Scatter; s++ {
		perm := r.Perm(nodes)
		for i := 0; i+c.GroupSize <= nodes; i += c.GroupSize {
			group := make([]int, c.GroupSize)
			copy(group, perm[i:i+c.GroupSize])
			c.sets = append(c.sets, group)
		}
	}
	if len(c.sets) == 0 {
		// Fewer nodes than the group size is rejected by checkCount
		// before build; guard anyway.
		c.sets = [][]int{{0}}
	}
}

func checkCount(count int, view View) error {
	if err := view.Validate(); err != nil {
		return err
	}
	if count < 1 || count > view.Nodes {
		return fmt.Errorf("storage: placement count %d outside [1, %d]", count, view.Nodes)
	}
	return nil
}

// PolicyByName returns a fresh policy instance for the given name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "random":
		return Random{}, nil
	case "roundrobin":
		return RoundRobin{}, nil
	case "rackaware":
		return RackAware{}, nil
	default:
		return nil, fmt.Errorf("storage: unknown placement policy %q", name)
	}
}
