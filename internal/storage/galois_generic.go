//go:build !amd64

package storage

// Non-amd64 hosts always use the portable word-at-a-time table kernels.

const hasGaloisSIMD = false

func galMulSIMD(dst, src []byte, c byte, n int, xor bool) {
	panic("storage: galMulSIMD called without SIMD support")
}
