package storage

import (
	"fmt"

	"repro/internal/rng"
)

// SchemeKind distinguishes redundancy schemes.
type SchemeKind int

const (
	// Replication keeps Replicas full copies; an object is readable while
	// a majority of copies is reachable (quorum protocol, Figure 1).
	Replication SchemeKind = iota
	// ErasureRS keeps K data + M parity shards; an object is readable
	// while at least K shards are reachable.
	ErasureRS
)

// Scheme is an object's redundancy configuration.
type Scheme struct {
	Kind     SchemeKind
	Replicas int // Replication
	K, M     int // ErasureRS
}

// ReplicationScheme returns an n-way replication scheme.
func ReplicationScheme(n int) Scheme { return Scheme{Kind: Replication, Replicas: n} }

// RSScheme returns an RS(k, m) scheme.
func RSScheme(k, m int) Scheme { return Scheme{Kind: ErasureRS, K: k, M: m} }

// Validate checks the scheme parameters.
func (s Scheme) Validate() error {
	switch s.Kind {
	case Replication:
		if s.Replicas < 1 {
			return fmt.Errorf("storage: replication needs >= 1 replica, got %d", s.Replicas)
		}
	case ErasureRS:
		if s.K < 1 || s.M < 0 {
			return fmt.Errorf("storage: RS needs k >= 1, m >= 0; got k=%d m=%d", s.K, s.M)
		}
	default:
		return fmt.Errorf("storage: unknown scheme kind %d", int(s.Kind))
	}
	return nil
}

// Width returns the number of placed shards/replicas.
func (s Scheme) Width() int {
	if s.Kind == Replication {
		return s.Replicas
	}
	return s.K + s.M
}

// Overhead returns the storage expansion factor.
func (s Scheme) Overhead() float64 {
	if s.Kind == Replication {
		return float64(s.Replicas)
	}
	return float64(s.K+s.M) / float64(s.K)
}

// MinAvailable returns the minimum number of reachable shards needed for
// the object to be readable. The replication rule follows the paper's
// Figure-1 criterion exactly: the customer cannot operate when a MAJORITY
// of replicas is unavailable, i.e. when more than half are down
// (down >= floor(n/2)+1); the object is therefore readable while
// up >= ceil(n/2). For odd n this equals the familiar majority-up quorum;
// for n=2 a single surviving replica keeps the data readable.
func (s Scheme) MinAvailable() int {
	if s.Kind == Replication {
		return (s.Replicas + 1) / 2
	}
	return s.K
}

func (s Scheme) String() string {
	if s.Kind == Replication {
		return fmt.Sprintf("rep-%d", s.Replicas)
	}
	return fmt.Sprintf("rs-%d-%d", s.K, s.M)
}

// Object is one customer's data item.
type Object struct {
	ID        int
	SizeMB    float64
	Scheme    Scheme
	Locations []int // node ids, len == Scheme.Width()
}

// Store tracks every object's placement and answers availability and
// durability questions against a node-state predicate.
type Store struct {
	view    View
	policy  Policy
	objects []*Object
}

// NewStore creates a store over the given view with the given policy.
func NewStore(view View, policy Policy) (*Store, error) {
	if err := view.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("storage: nil placement policy")
	}
	return &Store{view: view, policy: policy}, nil
}

// Policy returns the placement policy.
func (st *Store) Policy() Policy { return st.policy }

// View returns the placement view.
func (st *Store) View() View { return st.view }

// AddObjects creates and places count objects of sizeMB each under scheme,
// drawing placement randomness from r. Object ids continue from the
// current population (supporting the 10,000-user setup of Figure 1).
func (st *Store) AddObjects(count int, sizeMB float64, scheme Scheme, r *rng.Source) error {
	if count < 1 {
		return fmt.Errorf("storage: AddObjects count must be >= 1, got %d", count)
	}
	if sizeMB < 0 {
		return fmt.Errorf("storage: object size must be >= 0, got %v", sizeMB)
	}
	if err := scheme.Validate(); err != nil {
		return err
	}
	if scheme.Width() > st.view.Nodes {
		return fmt.Errorf("storage: scheme %v needs %d nodes, view has %d",
			scheme, scheme.Width(), st.view.Nodes)
	}
	base := len(st.objects)
	for i := 0; i < count; i++ {
		id := base + i
		locs, err := st.policy.Place(id, scheme.Width(), st.view, r)
		if err != nil {
			return fmt.Errorf("storage: placing object %d: %w", id, err)
		}
		if err := distinct(locs, st.view.Nodes); err != nil {
			return fmt.Errorf("storage: policy %s for object %d: %w", st.policy.Name(), id, err)
		}
		st.objects = append(st.objects, &Object{
			ID: id, SizeMB: sizeMB, Scheme: scheme, Locations: locs,
		})
	}
	return nil
}

func distinct(locs []int, nodes int) error {
	seen := make(map[int]bool, len(locs))
	for _, l := range locs {
		if l < 0 || l >= nodes {
			return fmt.Errorf("node %d out of range", l)
		}
		if seen[l] {
			return fmt.Errorf("duplicate node %d in placement", l)
		}
		seen[l] = true
	}
	return nil
}

// Objects returns all objects.
func (st *Store) Objects() []*Object { return st.objects }

// Len returns the object count.
func (st *Store) Len() int { return len(st.objects) }

// Available reports whether obj is readable given down(node) telling which
// nodes are unreachable.
func (st *Store) Available(obj *Object, down func(int) bool) bool {
	up := 0
	for _, n := range obj.Locations {
		if !down(n) {
			up++
		}
	}
	return up >= obj.Scheme.MinAvailable()
}

// UnavailableCount returns how many objects are unreadable under down.
func (st *Store) UnavailableCount(down func(int) bool) int {
	count := 0
	for _, o := range st.objects {
		if !st.Available(o, down) {
			count++
		}
	}
	return count
}

// AnyUnavailable reports whether at least one object is unreadable under
// down — the Figure-1 event ("at least one customer's data becomes
// unavailable").
func (st *Store) AnyUnavailable(down func(int) bool) bool {
	for _, o := range st.objects {
		if !st.Available(o, down) {
			return true
		}
	}
	return false
}

// LostCount returns how many objects currently have zero recoverable
// copies under down — the §1 notion of unavailability ("the system has
// zero up-to-date copies of the data"). Unlike Lost-driven permanent
// accounting, this is a transient predicate: objects recover when their
// nodes return.
func (st *Store) LostCount(down func(int) bool) int {
	count := 0
	for _, o := range st.objects {
		if st.Lost(o, down) {
			count++
		}
	}
	return count
}

// Lost reports whether obj is unrecoverable under down (fewer surviving
// shards than the reconstruction minimum — for replication, zero copies).
func (st *Store) Lost(obj *Object, down func(int) bool) bool {
	up := 0
	for _, n := range obj.Locations {
		if !down(n) {
			up++
		}
	}
	if obj.Scheme.Kind == Replication {
		return up == 0
	}
	return up < obj.Scheme.K
}

// TotalStoredMB returns the physical bytes stored (logical × overhead).
func (st *Store) TotalStoredMB() float64 {
	total := 0.0
	for _, o := range st.objects {
		total += o.SizeMB * o.Scheme.Overhead()
	}
	return total
}

// ObjectsOn returns the objects having a shard/replica on node n.
func (st *Store) ObjectsOn(n int) []*Object {
	var out []*Object
	for _, o := range st.objects {
		for _, loc := range o.Locations {
			if loc == n {
				out = append(out, o)
				break
			}
		}
	}
	return out
}

// Relocate moves obj's shard from node `from` to node `to` (repair
// completion). It returns an error if from is not a location or to
// already holds a shard.
func (st *Store) Relocate(obj *Object, from, to int) error {
	if to < 0 || to >= st.view.Nodes {
		return fmt.Errorf("storage: relocate target %d out of range", to)
	}
	fromIdx := -1
	for i, l := range obj.Locations {
		if l == from {
			fromIdx = i
		}
		if l == to {
			return fmt.Errorf("storage: node %d already holds a shard of object %d", to, obj.ID)
		}
	}
	if fromIdx < 0 {
		return fmt.Errorf("storage: node %d holds no shard of object %d", from, obj.ID)
	}
	obj.Locations[fromIdx] = to
	return nil
}
