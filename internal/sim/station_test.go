package sim

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestStationSingleJob(t *testing.T) {
	s := New(1)
	st, err := NewStation(s, "cpu", 1)
	if err != nil {
		t.Fatal(err)
	}
	var waited, total float64 = -1, -1
	st.Submit(5, func(w, tt float64) { waited, total = w, tt })
	s.Run()
	if waited != 0 {
		t.Errorf("waited = %v, want 0", waited)
	}
	if total != 5 {
		t.Errorf("total = %v, want 5", total)
	}
	if st.Completions() != 1 {
		t.Errorf("completions = %d, want 1", st.Completions())
	}
}

func TestStationFCFSQueueing(t *testing.T) {
	s := New(1)
	st, err := NewStation(s, "disk", 1)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		st.Submit(2, func(_, _ float64) { order = append(order, i) })
	}
	s.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("completion order %v, want [0 1 2]", order)
	}
	if s.Now() != 6 {
		t.Fatalf("three sequential 2-unit jobs should end at 6, got %v", s.Now())
	}
}

func TestStationMultiServer(t *testing.T) {
	s := New(1)
	st, err := NewStation(s, "cpu", 2)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 2; i++ {
		st.Submit(3, func(_, _ float64) { done++ })
	}
	s.Run()
	if s.Now() != 3 {
		t.Fatalf("two jobs on two servers should finish at 3, got %v", s.Now())
	}
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
}

func TestStationSpeedChangePreservesProgress(t *testing.T) {
	s := New(1)
	st, err := NewStation(s, "nic", 1)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	st.Submit(10, func(_, tt float64) { total = tt })
	// At t=5 the job is half done; halving the speed doubles the time for
	// the remaining half: 5 + 5/0.5 = 15.
	s.Schedule(5, "degrade", func() { st.SetSpeed(0.5) })
	s.Run()
	if math.Abs(total-15) > 1e-9 {
		t.Fatalf("sojourn = %v, want 15", total)
	}
}

func TestStationFreezeAndThaw(t *testing.T) {
	s := New(1)
	st, err := NewStation(s, "nic", 1)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt Time = -1
	st.Submit(4, func(_, _ float64) { doneAt = s.Now() })
	s.Schedule(1, "freeze", func() { st.SetSpeed(0) })
	s.Schedule(11, "thaw", func() { st.SetSpeed(1) })
	s.Run()
	// 1 unit done before freeze, 3 remaining after thaw at t=11 => 14.
	if math.Abs(doneAt-14) > 1e-9 {
		t.Fatalf("completion at %v, want 14", doneAt)
	}
}

func TestStationUtilization(t *testing.T) {
	s := New(1)
	st, err := NewStation(s, "cpu", 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Submit(5, nil)
	s.Schedule(10, "probe", func() {})
	s.Run()
	if u := st.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestStationMM1AgainstAnalytic(t *testing.T) {
	// M/M/1 with rho = 0.5: mean sojourn = 1/(mu-lambda) = 2.
	s := New(12345)
	st, err := NewStation(s, "q", 1)
	if err != nil {
		t.Fatal(err)
	}
	arr := s.Stream("arrivals")
	svc := s.Stream("service")
	const n = 200000
	var sum float64
	var count int
	var arrive func()
	i := 0
	arrive = func() {
		if i >= n {
			return
		}
		i++
		st.Submit(svc.ExpFloat64()/1.0, func(_, tt float64) {
			sum += tt
			count++
		})
		s.Schedule(arr.ExpFloat64()/0.5, "arrive", arrive)
	}
	s.Schedule(0, "arrive", arrive)
	s.Run()
	mean := sum / float64(count)
	if math.Abs(mean-2) > 0.1 {
		t.Fatalf("M/M/1 sim mean sojourn = %v, want 2.0 +- 0.1", mean)
	}
}

func TestStationMMcAgainstAnalytic(t *testing.T) {
	// M/M/3 with lambda=2, mu=1: Wq = 4/9, W = 4/9 + 1.
	s := New(777)
	st, err := NewStation(s, "q", 3)
	if err != nil {
		t.Fatal(err)
	}
	arr := s.Stream("arrivals")
	svc := s.Stream("service")
	const n = 200000
	var sumW float64
	var count int
	var arrive func()
	i := 0
	arrive = func() {
		if i >= n {
			return
		}
		i++
		st.Submit(svc.ExpFloat64(), func(_, tt float64) {
			sumW += tt
			count++
		})
		s.Schedule(arr.ExpFloat64()/2.0, "arrive", arrive)
	}
	s.Schedule(0, "arrive", arrive)
	s.Run()
	meanW := sumW / float64(count)
	want := 4.0/9 + 1
	if math.Abs(meanW-want) > 0.05 {
		t.Fatalf("M/M/3 sim W = %v, want %v +- 0.05", meanW, want)
	}
}

func TestStationRejectsBadInput(t *testing.T) {
	s := New(1)
	if _, err := NewStation(s, "x", 0); err == nil {
		t.Error("zero servers accepted")
	}
	st, err := NewStation(s, "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-positive work accepted")
			}
		}()
		st.Submit(0, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative speed accepted")
			}
		}()
		st.SetSpeed(-1)
	}()
}

func TestStationThroughputConservation(t *testing.T) {
	// Arrivals = completions + in-service + waiting at every drain point.
	s := New(4)
	st, err := NewStation(s, "x", 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for i := 0; i < 500; i++ {
		delay := Time(i) * 0.1
		s.Schedule(delay, "submit", func() {
			st.Submit(0.05+r.Float64(), nil)
		})
	}
	s.Run()
	if st.Arrivals() != st.Completions() {
		t.Fatalf("arrivals %d != completions %d after drain", st.Arrivals(), st.Completions())
	}
	if st.QueueLength() != 0 || st.InService() != 0 {
		t.Fatalf("residual jobs after drain: queue=%d active=%d", st.QueueLength(), st.InService())
	}
}
