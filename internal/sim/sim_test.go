package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, d := range []Time{5, 1, 3, 2, 4} {
		d := d
		s.Schedule(d, "e", func() { fired = append(fired, s.Now()) })
	}
	s.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	if s.Now() != 5 {
		t.Fatalf("final time %v, want 5", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, "tie", func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	e := s.Schedule(1, "x", func() { ran = true })
	s.Cancel(e)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double cancel is a no-op.
	s.Cancel(e)
	if s.Executed() != 0 {
		t.Fatalf("executed %d, want 0", s.Executed())
	}
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New(1)
	ran := false
	var target *Event
	s.Schedule(1, "canceller", func() { s.Cancel(target) })
	target = s.Schedule(2, "target", func() { ran = true })
	s.Run()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestReschedule(t *testing.T) {
	s := New(1)
	var at Time
	e := s.Schedule(1, "r", func() { at = s.Now() })
	s.Reschedule(e, 5)
	s.Run()
	if at != 5 {
		t.Fatalf("rescheduled event fired at %v, want 5", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.Schedule(1, "chain", recurse)
		}
	}
	s.Schedule(0, "chain", recurse)
	s.Run()
	if depth != 100 {
		t.Fatalf("chain depth %d, want 100", depth)
	}
	if s.Now() != 99 {
		t.Fatalf("final time %v, want 99", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i), "e", func() { count++ })
	}
	s.RunUntil(5.5)
	if count != 5 {
		t.Fatalf("executed %d events by t=5.5, want 5", count)
	}
	if s.Now() != 5.5 {
		t.Fatalf("clock %v, want exactly 5.5", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending %d, want 5", s.Pending())
	}
	s.RunUntil(100)
	if count != 10 {
		t.Fatalf("executed %d total, want 10", count)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i), "e", func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("executed %d, want 3 (stopped)", count)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	New(1).Schedule(-1, "bad", func() {})
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(5, "later", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on past-time At")
		}
	}()
	s.At(1, "past", func() {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) []Time {
		s := New(seed)
		r := s.Stream("arrivals")
		var times []Time
		var arrive func()
		n := 0
		arrive = func() {
			times = append(times, s.Now())
			n++
			if n < 50 {
				s.Schedule(r.ExpFloat64(), "arrive", arrive)
			}
		}
		s.Schedule(0, "arrive", arrive)
		s.Run()
		return times
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestEarlyAbort(t *testing.T) {
	s := New(1)
	count := 0
	for i := 0; i < 10000; i++ {
		s.Schedule(Time(i), "e", func() { count++ })
	}
	s.SetAbortCheck(func() bool { return count >= 2000 }, 100)
	s.Run()
	if !s.Aborted() {
		t.Fatal("run was not aborted")
	}
	if count < 2000 || count >= 2200 {
		t.Fatalf("aborted after %d events, want shortly after 2000", count)
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	var fires []Time
	var stop func()
	stop = s.Every(1, 2, "tick", func(at Time) {
		fires = append(fires, at)
		if len(fires) == 4 {
			stop()
		}
	})
	s.Run()
	want := []Time{1, 3, 5, 7}
	if len(fires) != len(want) {
		t.Fatalf("fired %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired %v, want %v", fires, want)
		}
	}
}

func TestEveryDoubleStop(t *testing.T) {
	// A second stop() must stay a no-op even after the cancelled slot has
	// been recycled into an unrelated pending event.
	s := New(1)
	stop := s.Every(1, 1, "tick", func(Time) {})
	stop()
	ran := false
	s.Schedule(2, "bystander", func() { ran = true }) // likely recycles the slot
	stop()
	s.Run()
	if !ran {
		t.Fatal("double stop() cancelled an unrelated recycled event")
	}
}

func TestTracer(t *testing.T) {
	s := New(1)
	var names []string
	s.SetTracer(func(_ Time, name string) { names = append(names, name) })
	s.Schedule(1, "a", func() {})
	s.Schedule(2, "b", func() {})
	s.Run()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("trace %v, want [a b]", names)
	}
}

func TestHeapPropertyRandomOrder(t *testing.T) {
	f := func(delays []float64) bool {
		s := New(7)
		valid := make([]float64, 0, len(delays))
		for _, d := range delays {
			if d >= 0 && !math.IsNaN(d) && !math.IsInf(d, 0) && d < 1e12 {
				valid = append(valid, d)
			}
		}
		var fired []Time
		for _, d := range valid {
			s.Schedule(d, "e", func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(valid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleStepZeroAlloc(t *testing.T) {
	// Steady-state Schedule+Step must not allocate: events are recycled
	// through the arena free list and the heap reuses its capacity. This
	// is the allocation-regression guard for the §4.2 speed work — if a
	// future change boxes events again, this fails.
	s := New(1)
	var tick func()
	tick = func() { s.Schedule(1, "tick", tick) }
	s.Schedule(0, "tick", tick)
	for i := 0; i < 4096; i++ { // warm the arena, free list and heap
		if !s.Step() {
			t.Fatal("calendar drained during warmup")
		}
	}
	allocs := testing.AllocsPerRun(10000, func() {
		if !s.Step() {
			t.Fatal("calendar drained")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule+Step allocates %.1f allocs/event, want 0", allocs)
	}
}

func TestCancelHeavySteadyStateZeroAlloc(t *testing.T) {
	// Cancel+Reschedule churn must also stay allocation-free once the
	// arena has grown: tombstones are recycled when their heap slot pops,
	// not leaked. The victim is always rescheduled while still pending
	// (its old tombstone drains just before each tick fires).
	s := New(1)
	var tick func()
	tick = func() { s.Schedule(1, "tick", tick) }
	s.Schedule(0, "tick", tick)
	victim := s.Schedule(1.5, "victim", func() {})
	cycle := func() {
		victim = s.Reschedule(victim, 1.5)
		if !s.Step() {
			t.Fatal("calendar drained")
		}
	}
	for i := 0; i < 1024; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(5000, cycle)
	if allocs != 0 {
		t.Fatalf("steady-state Reschedule+Step allocates %.1f allocs/event, want 0", allocs)
	}
}

func TestStreamMemoized(t *testing.T) {
	// Two Stream("x") calls must return the *same* source: draws advance
	// across call sites instead of silently replaying identical values
	// (the duplicate-stream hazard: a model that re-requests its stream
	// per event would otherwise see the same "random" draw forever).
	s := New(3)
	a := s.Stream("x")
	b := s.Stream("x")
	if a != b {
		t.Fatal("Stream(\"x\") returned two distinct sources")
	}
	v1 := s.Stream("x").Uint64()
	v2 := s.Stream("x").Uint64()
	if v1 == v2 {
		t.Fatalf("repeated Stream draws replayed the same value %d", v1)
	}
	// Shared state: draws interleaved through either handle follow one
	// sequence.
	ref := New(3).Stream("x")
	ref.Uint64()
	ref.Uint64()
	if got, want := a.Uint64(), ref.Uint64(); got != want {
		t.Fatalf("stream state not shared: got %d, want %d", got, want)
	}
}

func TestStreamStability(t *testing.T) {
	// The stream for a name must not depend on other streams having been
	// requested first (model-extensibility requirement).
	s1 := New(9)
	_ = s1.Stream("other")
	a := s1.Stream("disk").Uint64()
	s2 := New(9)
	b := s2.Stream("disk").Uint64()
	if a != b {
		t.Fatal("stream depends on request order")
	}
}

func TestKeyedStreamsPureAndMirrored(t *testing.T) {
	a := NewKeyed(5, 7, false)
	b := NewKeyed(5, 7, false)
	if a.Stream("x").Uint64() != b.Stream("x").Uint64() {
		t.Fatal("keyed streams are not a pure function of (seed, trial, name)")
	}
	if !a.Keyed() || a.Antithetic() {
		t.Fatal("keyed flags wrong")
	}
	// The antithetic twin mirrors MirroredStream and shares Stream.
	plain := NewKeyed(5, 7, false)
	anti := NewKeyed(5, 7, true)
	if plain.Stream("shared").Uint64() != anti.Stream("shared").Uint64() {
		t.Error("plain Stream differs between antithetic twins")
	}
	if plain.MirroredStream("ttf").Uint64() != ^anti.MirroredStream("ttf").Uint64() {
		t.Error("MirroredStream is not the bitwise complement in the antithetic twin")
	}
	// Different trials give different draws.
	if NewKeyed(5, 7, false).Stream("x").Uint64() == NewKeyed(5, 9, false).Stream("x").Uint64() {
		t.Error("trial does not decorrelate keyed simulator streams")
	}
}

func TestMixedMirrorRequestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixed mirrored/plain request for one name did not panic")
		}
	}()
	s := NewKeyed(1, 1, true)
	s.Stream("x")
	s.MirroredStream("x")
}
