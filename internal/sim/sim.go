// Package sim is the discrete-event simulation engine at the heart of the
// wind tunnel (§2.3 of the paper). It provides a virtual clock, an event
// calendar (arena-backed 4-ary heap keyed by time with FIFO tie-breaking),
// cancellable events, named deterministic random streams, an early-abort
// mechanism (§4.2: "abort a simulation run before it completes, if it is
// clear ... that the design constraint will not be met"), and event
// tracing.
//
// Time is a float64 in model units; the packages above use hours for
// failure processes and seconds for request-level processes — each
// Scenario picks one unit and sticks to it.
//
// # Calendar internals
//
// The calendar is built for sweep throughput (§4.2 calls for the tunnel
// itself to be fast): events live in a chunked arena and are recycled
// through a free list, so steady-state Schedule+Step performs zero heap
// allocations; the priority queue is an inlined 4-ary min-heap of small
// value entries keyed by (time, seq) — no interface boxing, FIFO
// tie-breaking preserved; Cancel is lazy (a tombstone skipped at pop)
// instead of a structural heap removal. Because (time, seq) is a total
// order, the execution order is exactly that of the previous binary-heap
// implementation: engine refactors change how events are stored, never
// which event fires next.
package sim

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Time is a point in simulated time. The unit is chosen by the model.
type Time = float64

// Event slot lifecycle states.
const (
	evFree      uint8 = iota // on the free list, contents cleared
	evPending                // scheduled, waiting in the heap
	evTombstone              // cancelled, awaiting lazy removal at pop
	evFiring                 // callback currently executing
)

// Event is a scheduled callback. It is returned by Schedule/At so callers
// can Cancel it.
//
// Events are recycled: once an event has fired, its *Event may be reused
// by a later Schedule. Holding a pointer past the event's firing and
// cancelling it later is therefore invalid (it could cancel an unrelated
// recycled event); cancel pending events, and drop references once an
// event has fired. Cancelling a pending event any number of times, or
// cancelling from within any callback (including the event's own), is
// safe.
type Event struct {
	time    Time
	seq     uint64
	name    string
	fn      func()
	created Time
	state   uint8
}

// Time returns the scheduled firing time.
func (e *Event) Time() Time { return e.time }

// Name returns the event's diagnostic label.
func (e *Event) Name() string { return e.name }

// Arena geometry: events are allocated in fixed chunks so slot addresses
// stay stable while the arena grows (callers hold *Event across grows).
const (
	chunkBits = 8
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// heapEntry is one priority-queue element: the sort key plus the arena
// index of its event. Entries are plain values — comparisons never touch
// the arena.
type heapEntry struct {
	time Time
	seq  uint64
	idx  int32
}

func entryLess(a, b heapEntry) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// Tracer receives every executed event when tracing is enabled.
type Tracer func(t Time, name string)

// Simulator is a sequential discrete-event simulator. It is not safe for
// concurrent use; the wind tunnel parallelizes across runs, not within one
// (§4.2's intra-run parallelism is planned via the interaction graph in
// internal/core, which schedules independent runs concurrently).
type Simulator struct {
	now  Time
	heap []heapEntry

	arena     []*[chunkSize]Event
	free      []int32
	allocated int32
	live      int // pending (non-tombstoned) events

	seq      uint64
	executed uint64
	stopped  bool
	root     *rng.Source
	streams  map[string]*rng.Source
	// Keyed-stream mode (common random numbers, §4.2): when keyed is
	// true, Stream(name) derives rng.Keyed(keySeed, keyTrial, name) — a
	// pure function of the triple, so every simulator built with the same
	// (seed, trial) sees identical draws per stream name regardless of
	// which design point it simulates. antithetic mirrors the uniforms
	// of MirroredStream sources only; streamMirror records which variant
	// each cached name was created as, so a mixed request is caught
	// instead of silently returning the wrong one.
	keyed        bool
	keySeed      uint64
	keyTrial     uint64
	antithetic   bool
	streamMirror map[string]bool
	tracer       Tracer
	// abortCheck, when set, is consulted every abortEvery events; a true
	// return stops the run (early abort, §4.2).
	abortCheck func() bool
	abortEvery uint64
	aborted    bool
}

// New returns a Simulator whose random streams derive from seed.
func New(seed uint64) *Simulator {
	return &Simulator{root: rng.New(seed), abortEvery: 1024}
}

// NewKeyed returns a Simulator whose named streams are keyed by
// (seed, trial, name) — the common-random-numbers mode: stream draws are
// a pure function of the triple, independent of the design point being
// simulated, so paired design points sharing (seed, trial) experience
// identical failure draws. With antithetic set, MirroredStream sources
// emit the complemented uniforms of the plain (seed, trial) twin while
// Stream sources stay identical to it.
func NewKeyed(seed, trial uint64, antithetic bool) *Simulator {
	return &Simulator{
		root:       rng.New(seed),
		abortEvery: 1024,
		keyed:      true,
		keySeed:    seed,
		keyTrial:   trial,
		antithetic: antithetic,
	}
}

// Antithetic reports whether this simulator is the mirrored member of
// an antithetic pair.
func (s *Simulator) Antithetic() bool { return s.antithetic }

// Keyed reports whether streams are keyed by (seed, trial, name).
func (s *Simulator) Keyed() bool { return s.keyed }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events still scheduled (cancelled events
// are excluded even while their tombstones await lazy removal).
func (s *Simulator) Pending() int { return s.live }

// Aborted reports whether the last run was stopped by the abort check.
func (s *Simulator) Aborted() bool { return s.aborted }

// Stream returns the deterministic random stream for name. Distinct names
// give independent streams, and the mapping is stable across runs with the
// same seed regardless of call order. Repeated calls with the same name
// return the same Source, so draws advance instead of silently replaying:
// a model can re-request its stream by name at every event without
// resetting it.
//
// In an antithetic keyed simulator, Stream is NOT mirrored: both members
// of a pair see identical draws, so everything except the explicitly
// mirrored coordinates (see MirroredStream) is common random numbers
// within the pair — the textbook antithetic construction.
func (s *Simulator) Stream(name string) *rng.Source {
	return s.stream(name, false)
}

// MirroredStream is Stream for the coordinates antithetic pairing
// inverts: in the mirrored member of a pair the returned source emits
// complemented uniforms, while the plain member (and any non-antithetic
// simulator) sees the ordinary keyed stream. Models route their failure
// time draws through MirroredStream so a pair explores "many failures"
// and "few failures" trajectories with everything else held common.
func (s *Simulator) MirroredStream(name string) *rng.Source {
	return s.stream(name, true)
}

func (s *Simulator) stream(name string, mirror bool) *rng.Source {
	if src, ok := s.streams[name]; ok {
		if s.keyed && s.streamMirror[name] != mirror {
			// A name must be consistently plain or mirrored: handing the
			// cached other variant back would silently break the
			// antithetic pairing contract on this coordinate.
			panic(fmt.Sprintf("sim: stream %q requested both mirrored and non-mirrored", name))
		}
		return src
	}
	if s.streams == nil {
		s.streams = make(map[string]*rng.Source)
	}
	var src *rng.Source
	if s.keyed {
		src = rng.Keyed(s.keySeed, s.keyTrial, name)
		src.SetAntithetic(mirror && s.antithetic)
		if s.streamMirror == nil {
			s.streamMirror = make(map[string]bool)
		}
		s.streamMirror[name] = mirror
	} else {
		src = s.root.Derive(name)
	}
	s.streams[name] = src
	return src
}

// SetTracer installs fn as the event tracer (nil disables tracing).
func (s *Simulator) SetTracer(fn Tracer) { s.tracer = fn }

// SetAbortCheck installs an early-abort predicate evaluated every `every`
// executed events. When it returns true the run stops and Aborted()
// reports true.
func (s *Simulator) SetAbortCheck(fn func() bool, every uint64) {
	if every == 0 {
		every = 1
	}
	s.abortCheck = fn
	s.abortEvery = every
}

// slot returns the arena slot for idx.
func (s *Simulator) slot(idx int32) *Event {
	return &s.arena[idx>>chunkBits][idx&chunkMask]
}

// alloc returns a fresh or recycled event slot.
func (s *Simulator) alloc() (int32, *Event) {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx, s.slot(idx)
	}
	if int(s.allocated) == len(s.arena)*chunkSize {
		s.arena = append(s.arena, new([chunkSize]Event))
	}
	idx := s.allocated
	s.allocated++
	return idx, s.slot(idx)
}

// freeSlot recycles a popped slot, dropping its references so the closure
// and name become collectable immediately.
func (s *Simulator) freeSlot(idx int32, e *Event) {
	e.state = evFree
	e.fn = nil
	e.name = ""
	s.free = append(s.free, idx)
}

// heapPush inserts entry, restoring the 4-ary heap order.
func (s *Simulator) heapPush(entry heapEntry) {
	h := append(s.heap, entry)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.heap = h
}

// heapPop removes and returns the minimum entry.
func (s *Simulator) heapPop() heapEntry {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	s.heap = h
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[best]) {
				best = j
			}
		}
		if !entryLess(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}

// pruneTop pops and recycles tombstoned entries until the heap is empty
// or a live event is at the top (lazy cancellation).
func (s *Simulator) pruneTop() {
	for len(s.heap) > 0 {
		idx := s.heap[0].idx
		e := s.slot(idx)
		if e.state != evTombstone {
			return
		}
		s.heapPop()
		s.freeSlot(idx, e)
	}
}

// Schedule enqueues fn to run after delay (>= 0) and returns the event.
func (s *Simulator) Schedule(delay Time, name string, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v for event %q at t=%v", delay, name, s.now))
	}
	return s.At(s.now+delay, name, fn)
}

// At enqueues fn to run at absolute time t (>= Now) and returns the event.
func (s *Simulator) At(t Time, name string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event %q in the past: %v < now %v", name, t, s.now))
	}
	if fn == nil {
		panic(fmt.Sprintf("sim: nil callback for event %q", name))
	}
	idx, e := s.alloc()
	e.time = t
	e.seq = s.seq
	e.name = name
	e.fn = fn
	e.created = s.now
	e.state = evPending
	s.heapPush(heapEntry{time: t, seq: s.seq, idx: idx})
	s.seq++
	s.live++
	return e
}

// Cancel removes a scheduled event. Cancelling an already-cancelled or
// currently-firing event is a no-op. The removal is lazy: the slot is
// tombstoned here and recycled when it reaches the top of the heap.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.state != evPending {
		return
	}
	e.state = evTombstone
	s.live--
}

// Reschedule cancels e and schedules a fresh event with the same name and
// callback after delay, returning the new event. e must be pending or
// currently firing.
func (s *Simulator) Reschedule(e *Event, delay Time) *Event {
	s.Cancel(e)
	return s.Schedule(delay, e.name, e.fn)
}

// Step executes the next event. It returns false when the calendar is
// empty or the simulator has been stopped.
func (s *Simulator) Step() bool {
	if s.stopped {
		return false
	}
	s.pruneTop()
	if len(s.heap) == 0 {
		return false
	}
	entry := s.heapPop()
	e := s.slot(entry.idx)
	if e.time < s.now {
		panic(fmt.Sprintf("sim: time went backwards: event %q at %v < now %v", e.name, e.time, s.now))
	}
	s.now = e.time
	s.executed++
	s.live--
	e.state = evFiring
	if s.tracer != nil {
		s.tracer(s.now, e.name)
	}
	e.fn()
	// Recycle only after the callback returns: the callback may observe
	// (and no-op-Cancel) its own still-firing event, and new events it
	// schedules must not be handed this slot while it runs.
	s.freeSlot(entry.idx, e)
	if s.abortCheck != nil && s.executed%s.abortEvery == 0 && s.abortCheck() {
		s.aborted = true
		s.stopped = true
	}
	return !s.stopped
}

// Run executes events until the calendar drains or Stop is called.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time <= horizon, leaves later events
// queued, and advances the clock to exactly horizon.
func (s *Simulator) RunUntil(horizon Time) {
	if horizon < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", horizon, s.now))
	}
	for !s.stopped {
		s.pruneTop()
		if len(s.heap) == 0 || s.heap[0].time > horizon {
			break
		}
		if !s.Step() {
			break
		}
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}

// Stop halts the run; subsequent Step calls return false.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop was called (or an abort fired).
func (s *Simulator) Stopped() bool { return s.stopped }

// Every schedules fn at t0, t0+period, t0+2*period, ... until the
// returned stop function is called or the simulator stops. fn receives
// the firing time.
func (s *Simulator) Every(t0 Time, period Time, name string, fn func(Time)) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every requires positive period, got %v", period))
	}
	stopped := false
	var schedule func(at Time)
	var current *Event
	schedule = func(at Time) {
		current = s.At(at, name, func() {
			if stopped {
				return
			}
			fn(s.now)
			if !stopped {
				schedule(s.now + period)
			}
		})
	}
	schedule(t0)
	return func() {
		stopped = true
		// Clear the handle so a second stop() is a no-op even after the
		// cancelled slot has been recycled by a later Schedule.
		s.Cancel(current)
		current = nil
	}
}
