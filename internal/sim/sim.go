// Package sim is the discrete-event simulation engine at the heart of the
// wind tunnel (§2.3 of the paper). It provides a virtual clock, an event
// calendar (binary heap keyed by time with FIFO tie-breaking), cancellable
// events, named deterministic random streams, an early-abort mechanism
// (§4.2: "abort a simulation run before it completes, if it is clear ...
// that the design constraint will not be met"), and event tracing.
//
// Time is a float64 in model units; the packages above use hours for
// failure processes and seconds for request-level processes — each
// Scenario picks one unit and sticks to it.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Time is a point in simulated time. The unit is chosen by the model.
type Time = float64

// Event is a scheduled callback. It is returned by Schedule/At so callers
// can Cancel it.
type Event struct {
	time    Time
	seq     uint64
	name    string
	fn      func()
	index   int // heap index; -1 when not queued
	cancel  bool
	created Time
}

// Time returns the scheduled firing time.
func (e *Event) Time() Time { return e.time }

// Name returns the event's diagnostic label.
func (e *Event) Name() string { return e.name }

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Tracer receives every executed event when tracing is enabled.
type Tracer func(t Time, name string)

// Simulator is a sequential discrete-event simulator. It is not safe for
// concurrent use; the wind tunnel parallelizes across runs, not within one
// (§4.2's intra-run parallelism is planned via the interaction graph in
// internal/core, which schedules independent runs concurrently).
type Simulator struct {
	now      Time
	queue    eventHeap
	seq      uint64
	executed uint64
	stopped  bool
	root     *rng.Source
	tracer   Tracer
	// abortCheck, when set, is consulted every abortEvery events; a true
	// return stops the run (early abort, §4.2).
	abortCheck func() bool
	abortEvery uint64
	aborted    bool
}

// New returns a Simulator whose random streams derive from seed.
func New(seed uint64) *Simulator {
	return &Simulator{root: rng.New(seed), abortEvery: 1024}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events still scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// Aborted reports whether the last run was stopped by the abort check.
func (s *Simulator) Aborted() bool { return s.aborted }

// Stream returns the deterministic random stream for name. Distinct names
// give independent streams, and the mapping is stable across runs with the
// same seed regardless of call order.
func (s *Simulator) Stream(name string) *rng.Source { return s.root.Derive(name) }

// SetTracer installs fn as the event tracer (nil disables tracing).
func (s *Simulator) SetTracer(fn Tracer) { s.tracer = fn }

// SetAbortCheck installs an early-abort predicate evaluated every `every`
// executed events. When it returns true the run stops and Aborted()
// reports true.
func (s *Simulator) SetAbortCheck(fn func() bool, every uint64) {
	if every == 0 {
		every = 1
	}
	s.abortCheck = fn
	s.abortEvery = every
}

// Schedule enqueues fn to run after delay (>= 0) and returns the event.
func (s *Simulator) Schedule(delay Time, name string, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v for event %q at t=%v", delay, name, s.now))
	}
	return s.At(s.now+delay, name, fn)
}

// At enqueues fn to run at absolute time t (>= Now) and returns the event.
func (s *Simulator) At(t Time, name string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event %q in the past: %v < now %v", name, t, s.now))
	}
	if fn == nil {
		panic(fmt.Sprintf("sim: nil callback for event %q", name))
	}
	e := &Event{time: t, seq: s.seq, name: name, fn: fn, created: s.now}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Reschedule cancels e and schedules a fresh event with the same name and
// callback after delay, returning the new event.
func (s *Simulator) Reschedule(e *Event, delay Time) *Event {
	s.Cancel(e)
	return s.Schedule(delay, e.name, e.fn)
}

// Step executes the next event. It returns false when the calendar is
// empty or the simulator has been stopped.
func (s *Simulator) Step() bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	if e.cancel {
		return len(s.queue) > 0
	}
	if e.time < s.now {
		panic(fmt.Sprintf("sim: time went backwards: event %q at %v < now %v", e.name, e.time, s.now))
	}
	s.now = e.time
	s.executed++
	if s.tracer != nil {
		s.tracer(s.now, e.name)
	}
	e.fn()
	if s.abortCheck != nil && s.executed%s.abortEvery == 0 && s.abortCheck() {
		s.aborted = true
		s.stopped = true
	}
	return !s.stopped
}

// Run executes events until the calendar drains or Stop is called.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time <= horizon, leaves later events
// queued, and advances the clock to exactly horizon.
func (s *Simulator) RunUntil(horizon Time) {
	if horizon < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", horizon, s.now))
	}
	for !s.stopped && len(s.queue) > 0 && s.queue[0].time <= horizon {
		if !s.Step() {
			break
		}
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}

// Stop halts the run; subsequent Step calls return false.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop was called (or an abort fired).
func (s *Simulator) Stopped() bool { return s.stopped }

// Every schedules fn at t0, t0+period, t0+2*period, ... until the
// returned stop function is called or the simulator stops. fn receives
// the firing time.
func (s *Simulator) Every(t0 Time, period Time, name string, fn func(Time)) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every requires positive period, got %v", period))
	}
	stopped := false
	var schedule func(at Time)
	var current *Event
	schedule = func(at Time) {
		current = s.At(at, name, func() {
			if stopped {
				return
			}
			fn(s.now)
			if !stopped {
				schedule(s.now + period)
			}
		})
	}
	schedule(t0)
	return func() {
		stopped = true
		s.Cancel(current)
	}
}
