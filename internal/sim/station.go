package sim

import (
	"fmt"
)

// Station is a multi-server FCFS service center with a variable speed
// factor. It is the building block for the per-node resource models
// (CPU, disk, NIC) in internal/workload, and the speed factor is how
// degraded hardware ("limpware", §4.5 of the paper) and repair-traffic
// interference (§3) couple into request latency: halving the speed doubles
// the remaining service requirement of every in-flight job.
type Station struct {
	sim     *Simulator
	name    string
	servers int
	speed   float64

	waiting []*Job
	active  map[*Job]struct{}

	// Metrics.
	arrivals    int64
	completions int64
	busyArea    float64 // integral of busy servers over time
	lastT       Time
	queueArea   float64 // integral of queue length over time
}

// Job is one unit of work flowing through a Station.
type Job struct {
	work      float64 // remaining service requirement at unit speed
	arrival   Time
	start     Time // service start time (valid once started)
	done      func(waited, total float64)
	event     *Event
	station   *Station
	remaining float64
	lastSet   Time
}

// NewStation creates a service center with the given number of servers
// (>= 1). The initial speed factor is 1.
func NewStation(s *Simulator, name string, servers int) (*Station, error) {
	if servers < 1 {
		return nil, fmt.Errorf("sim: station %q needs >= 1 server, got %d", name, servers)
	}
	return &Station{
		sim: s, name: name, servers: servers, speed: 1,
		active: make(map[*Job]struct{}),
		lastT:  s.Now(),
	}, nil
}

// Name returns the station's label.
func (st *Station) Name() string { return st.name }

// Servers returns the number of servers.
func (st *Station) Servers() int { return st.servers }

// Speed returns the current speed factor.
func (st *Station) Speed() float64 { return st.speed }

// Submit enqueues work (service requirement at unit speed, > 0); done is
// invoked at completion with the waiting time and total sojourn time.
// done may be nil.
func (st *Station) Submit(work float64, done func(waited, total float64)) *Job {
	if work <= 0 {
		panic(fmt.Sprintf("sim: station %q received non-positive work %v", st.name, work))
	}
	st.integrate()
	j := &Job{work: work, arrival: st.sim.Now(), done: done, station: st}
	st.arrivals++
	if len(st.active) < st.servers && st.speed > 0 {
		st.startService(j)
	} else {
		st.waiting = append(st.waiting, j)
	}
	return j
}

// startService begins serving j immediately.
func (st *Station) startService(j *Job) {
	j.start = st.sim.Now()
	j.remaining = j.work
	j.lastSet = j.start
	st.active[j] = struct{}{}
	st.scheduleCompletion(j)
}

// scheduleCompletion (re)schedules j's completion at the current speed.
func (st *Station) scheduleCompletion(j *Job) {
	if j.event != nil {
		st.sim.Cancel(j.event)
		j.event = nil
	}
	if st.speed <= 0 {
		return // frozen; will be rescheduled when speed returns
	}
	delay := j.remaining / st.speed
	j.event = st.sim.Schedule(delay, st.name+"/complete", func() {
		st.complete(j)
	})
}

// complete finishes j and promotes the next waiting job.
func (st *Station) complete(j *Job) {
	st.integrate()
	delete(st.active, j)
	st.completions++
	if j.done != nil {
		now := st.sim.Now()
		j.done(j.start-j.arrival, now-j.arrival)
	}
	if len(st.waiting) > 0 && len(st.active) < st.servers && st.speed > 0 {
		st.startService(st.popFront())
	}
}

// popFront removes and returns the oldest waiting job.
func (st *Station) popFront() *Job {
	next := st.waiting[0]
	st.waiting[0] = nil
	st.waiting = st.waiting[1:]
	return next
}

// SetSpeed changes the station's speed factor (>= 0; 0 freezes service).
// In-flight jobs keep their accumulated progress.
func (st *Station) SetSpeed(f float64) {
	if f < 0 {
		panic(fmt.Sprintf("sim: station %q speed must be >= 0, got %v", st.name, f))
	}
	if f == st.speed {
		return
	}
	st.integrate()
	now := st.sim.Now()
	// Bank progress at the old speed, then reschedule at the new one.
	for j := range st.active {
		j.remaining -= (now - j.lastSet) * st.speed
		if j.remaining < 0 {
			j.remaining = 0
		}
		j.lastSet = now
	}
	st.speed = f
	for j := range st.active {
		st.scheduleCompletion(j)
	}
	// A thawed station can admit waiting jobs onto idle servers.
	for f > 0 && len(st.waiting) > 0 && len(st.active) < st.servers {
		st.startService(st.popFront())
	}
}

// integrate advances the time-weighted utilization and queue integrals.
func (st *Station) integrate() {
	now := st.sim.Now()
	dt := now - st.lastT
	if dt > 0 {
		st.busyArea += dt * float64(len(st.active))
		st.queueArea += dt * float64(len(st.waiting))
		st.lastT = now
	}
}

// Utilization returns the time-averaged fraction of busy servers since the
// station was created, evaluated at the current simulation time.
func (st *Station) Utilization() float64 {
	st.integrate()
	elapsed := st.lastT
	if elapsed <= 0 {
		return 0
	}
	return st.busyArea / (elapsed * float64(st.servers))
}

// MeanQueueLength returns the time-averaged number of waiting jobs.
func (st *Station) MeanQueueLength() float64 {
	st.integrate()
	if st.lastT <= 0 {
		return 0
	}
	return st.queueArea / st.lastT
}

// QueueLength returns the instantaneous number of waiting jobs.
func (st *Station) QueueLength() int { return len(st.waiting) }

// InService returns the instantaneous number of jobs being served.
func (st *Station) InService() int { return len(st.active) }

// Completions returns the number of finished jobs.
func (st *Station) Completions() int64 { return st.completions }

// Arrivals returns the number of submitted jobs.
func (st *Station) Arrivals() int64 { return st.arrivals }
