// Package cluster assembles simulated data centers: racks of nodes built
// from cataloged hardware components, wired into a network topology, with
// failure processes injected into the discrete-event simulator.
//
// It is the "hardware half" of the integrated co-design the paper argues
// for (§1): the same Config that fixes disk/NIC/switch choices also
// determines failure behaviour (per-component lifecycles), correlated
// failures (a ToR switch failure makes a whole rack unreachable — the
// scale effect §2.1 says small prototypes cannot reproduce), and the
// network capacities that bound the repair process.
//
// Correlated failures are expressed through failure Domains: a Domain is
// a set of nodes (and links) sharing one single point of failure. Racks
// behind a ToR switch are the built-in domain; internal/power layers
// PDU and whole-facility power domains on the same mechanism. Domains
// nest — a node is available only while it is itself up AND every domain
// covering it is up, tracked with per-node and per-link veto counters so
// restoring an outer domain never "un-fails" an inner one.
package cluster

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config describes one data center design point. Time unit: hours (all
// TTFs/repairs in the catalog are hours; network capacities are converted
// from MB/s internally).
type Config struct {
	Racks        int
	NodesPerRack int

	// Per-node hardware, by catalog spec name.
	DiskSpec     string
	DisksPerNode int
	NICSpec      string
	CPUSpec      string
	MemSpec      string

	// Network.
	SwitchSpec  string  // ToR/core switch spec
	UplinkMBps  float64 // ToR->core uplink capacity; 0 = 10x host link
	LinkLatency float64 // hours (propagation; usually ~0)

	// Failure injection. Whole-node failure model (OS crash, PSU, etc.):
	// if NodeTTF is nil, nodes only fail through their components.
	NodeTTF    dist.Dist
	NodeRepair dist.Dist

	ComponentFailures bool // drive per-component lifecycles
	SwitchFailures    bool // drive ToR switch lifecycles (rack blasts)
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.Racks < 1 || c.NodesPerRack < 1 {
		return fmt.Errorf("cluster: need >= 1 rack and node per rack, got %dx%d", c.Racks, c.NodesPerRack)
	}
	if c.DisksPerNode < 1 {
		return fmt.Errorf("cluster: need >= 1 disk per node, got %d", c.DisksPerNode)
	}
	if (c.NodeTTF == nil) != (c.NodeRepair == nil) {
		return fmt.Errorf("cluster: NodeTTF and NodeRepair must both be set or both nil")
	}
	return nil
}

// SecondsPerHour converts MB/s capacities into MB/hour for the flow
// simulator, keeping the whole availability simulation in hour units.
const SecondsPerHour = 3600.0

// Node is one simulated machine.
type Node struct {
	ID   int
	Rack int
	Host netsim.NodeID

	Disks []*hardware.Component
	NIC   *hardware.Component
	CPU   *hardware.Component
	Mem   *hardware.Component

	up       bool
	upSignal stats.TimeWeighted
	accessLk *netsim.Link
}

// Domain is one correlated-failure domain: a set of nodes (and,
// optionally, links forced down) behind a single point of failure. The
// built-in rack domains model ToR switches; internal/power adds PDU and
// facility-wide power domains on the same code path. Domains may overlap
// and nest arbitrarily — availability is resolved through veto counters,
// so a node becomes reachable again only when its own state AND every
// covering domain are healthy.
type Domain struct {
	ID   int
	Name string
	// Power marks a domain that cuts power to its nodes (PDU, UPS,
	// utility) rather than only reachability (ToR). The cluster treats
	// both identically; energy accounting (internal/power) distinguishes
	// them because an unreachable node still draws power while an
	// unpowered one does not.
	Power bool

	nodes []int
	links []*netsim.Link
	up    bool
}

// Up reports whether the domain is operational.
func (d *Domain) Up() bool { return d.up }

// NodeIDs returns the IDs of the nodes the domain covers. The returned
// slice is owned by the domain and must not be mutated.
func (d *Domain) NodeIDs() []int { return d.nodes }

// Links returns the links the domain forces down while failed. The
// returned slice is owned by the domain and must not be mutated.
func (d *Domain) Links() []*netsim.Link { return d.links }

// Up reports whether the node itself is up (independent of rack
// reachability).
func (n *Node) Up() bool { return n.up }

// AccessLinkCapacity returns the node's current access-link capacity
// (MB per simulated hour), reflecting any service throttle.
func (n *Node) AccessLinkCapacity() float64 {
	if n.accessLk == nil {
		return 0
	}
	return n.accessLk.Capacity
}

// Cluster is a fully wired simulated data center.
type Cluster struct {
	cfg  Config
	sim  *sim.Simulator
	cat  *hardware.Catalog
	Topo *netsim.Topology
	Flow *netsim.FlowSim

	nodes    []*Node
	torIDs   []netsim.NodeID
	torSws   []*hardware.Component // indexed by rack; nil without SwitchFailures
	uplinks  []*netsim.Link
	onDown   []func(*Node)
	onUp     []func(*Node)
	onDisk   []func(*Node, int) // node, disk index
	onDiskOK []func(*Node, int)

	// Failure domains. rackDomains[r] is the built-in ToR domain of rack
	// r; nodeVeto[i] counts down domains covering node i and linkVeto
	// counts down domains forcing a link down, so overlapping domains
	// compose (restoring one never un-fails another).
	domains     []*Domain
	rackDomains []*Domain
	nodeVeto    []int
	linkVeto    map[*netsim.Link]int
	onDomDown   []func(*Domain)
	onDomUp     []func(*Domain)

	// baseAccessCap memoizes the configured access-link capacities the
	// first time SetServiceThrottle runs, so throttles compose from the
	// unthrottled baseline rather than each other.
	baseAccessCap []float64

	nodeFailures int64
	rackFailures int64
}

// Build constructs the cluster, its topology and flow simulator. Failure
// processes are not started until StartFailures is called, so static
// analyses (Figure 1) can drive failures manually.
func Build(s *sim.Simulator, cat *hardware.Catalog, cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nicSpec, err := cat.Get(cfg.NICSpec)
	if err != nil {
		return nil, fmt.Errorf("cluster: NIC: %w", err)
	}
	diskSpec, err := cat.Get(cfg.DiskSpec)
	if err != nil {
		return nil, fmt.Errorf("cluster: disk: %w", err)
	}
	cpuSpec, err := cat.Get(cfg.CPUSpec)
	if err != nil {
		return nil, fmt.Errorf("cluster: CPU: %w", err)
	}
	memSpec, err := cat.Get(cfg.MemSpec)
	if err != nil {
		return nil, fmt.Errorf("cluster: memory: %w", err)
	}
	if _, err := cat.Get(cfg.SwitchSpec); err != nil {
		return nil, fmt.Errorf("cluster: switch: %w", err)
	}

	hostCap := nicSpec.ThroughputMBps * SecondsPerHour
	uplink := cfg.UplinkMBps * SecondsPerHour
	if uplink <= 0 {
		uplink = 10 * hostCap
	}
	topo, hosts, tors, err := netsim.TwoTier(netsim.TwoTierConfig{
		Racks: cfg.Racks, HostsPerRack: cfg.NodesPerRack,
		HostLinkCap: hostCap, UplinkCap: uplink, LinkLatency: cfg.LinkLatency,
	})
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg: cfg, sim: s, cat: cat, Topo: topo,
		Flow:     netsim.NewFlowSim(s, topo),
		torIDs:   tors,
		torSws:   make([]*hardware.Component, cfg.Racks),
		nodeVeto: make([]int, cfg.Racks*cfg.NodesPerRack),
		linkVeto: make(map[*netsim.Link]int),
	}
	// Identify each host's access link and each rack's uplink.
	linkOf := func(a, b netsim.NodeID) *netsim.Link {
		for _, l := range topo.Links() {
			if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
				return l
			}
		}
		return nil
	}
	core := netsim.NodeID(0) // TwoTier adds the core switch first
	for r := 0; r < cfg.Racks; r++ {
		c.uplinks = append(c.uplinks, linkOf(tors[r], core))
	}

	id := 0
	for r := 0; r < cfg.Racks; r++ {
		for h := 0; h < cfg.NodesPerRack; h++ {
			n := &Node{ID: id, Rack: r, Host: hosts[id], up: true}
			n.accessLk = linkOf(n.Host, tors[r])
			var cerr error
			mk := func(cid int, spec hardware.Spec) *hardware.Component {
				comp, e := hardware.NewComponent(cid, spec)
				if e != nil && cerr == nil {
					cerr = e
				}
				return comp
			}
			for d := 0; d < cfg.DisksPerNode; d++ {
				n.Disks = append(n.Disks, mk(id*100+d, diskSpec))
			}
			n.NIC = mk(id*100+90, nicSpec)
			n.CPU = mk(id*100+91, cpuSpec)
			n.Mem = mk(id*100+92, memSpec)
			if cerr != nil {
				return nil, cerr
			}
			n.upSignal.Set(s.Now(), 1)
			c.nodes = append(c.nodes, n)
			id++
		}
	}
	// The built-in correlated-failure domains: one per rack, covering its
	// nodes and severing its uplink while down (the ToR mechanism).
	for r := 0; r < cfg.Racks; r++ {
		ids := make([]int, 0, cfg.NodesPerRack)
		for h := 0; h < cfg.NodesPerRack; h++ {
			ids = append(ids, r*cfg.NodesPerRack+h)
		}
		d, err := c.AddDomain(fmt.Sprintf("rack-%d", r), false, ids, []*netsim.Link{c.uplinks[r]})
		if err != nil {
			return nil, err
		}
		c.rackDomains = append(c.rackDomains, d)
	}
	return c, nil
}

// AddDomain registers a correlated-failure domain over the given node
// IDs. While the domain is down, each listed link is forced down and
// every covered node is unavailable; restoring the domain re-checks both
// node-local state and any other down domain covering a node before
// reporting it back up. power marks power-cutting domains (see Domain).
func (c *Cluster) AddDomain(name string, power bool, nodeIDs []int, links []*netsim.Link) (*Domain, error) {
	seen := make(map[int]bool, len(nodeIDs))
	for _, id := range nodeIDs {
		if id < 0 || id >= len(c.nodes) {
			return nil, fmt.Errorf("cluster: domain %q covers unknown node %d", name, id)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: domain %q lists node %d twice", name, id)
		}
		seen[id] = true
	}
	d := &Domain{ID: len(c.domains), Name: name, Power: power, nodes: nodeIDs, links: links, up: true}
	c.domains = append(c.domains, d)
	return d, nil
}

// Domains returns all registered failure domains (rack domains first).
func (c *Cluster) Domains() []*Domain { return c.domains }

// RackDomain returns the built-in ToR domain of rack r.
func (c *Cluster) RackDomain(r int) *Domain { return c.rackDomains[r] }

// OnDomainDown registers fn for domain-down transitions. It fires once
// per domain failure, before the per-node OnNodeDown callbacks.
func (c *Cluster) OnDomainDown(fn func(*Domain)) { c.onDomDown = append(c.onDomDown, fn) }

// OnDomainUp registers fn for domain-up transitions.
func (c *Cluster) OnDomainUp(fn func(*Domain)) { c.onDomUp = append(c.onDomUp, fn) }

// FailDomain takes the domain down: its links are vetoed (and stay down
// until every domain holding them recovers) and every covered node that
// was available transitions to unavailable. Failing a down domain is a
// no-op.
func (c *Cluster) FailDomain(d *Domain) {
	if !d.up {
		return
	}
	d.up = false
	changed := false
	for _, l := range d.links {
		c.linkVeto[l]++
		if c.linkVeto[l] == 1 {
			c.Topo.SetLinkUp(l, false)
			changed = true
		}
	}
	if changed {
		c.Flow.OnLinkChange()
	}
	for _, fn := range c.onDomDown {
		fn(d)
	}
	for _, id := range d.nodes {
		n := c.nodes[id]
		wasAvailable := n.up && c.nodeVeto[id] == 0
		c.nodeVeto[id]++
		if wasAvailable {
			for _, fn := range c.onDown {
				fn(n)
			}
		}
	}
}

// RestoreDomain brings the domain back. A covered node is reported up
// only if it is itself up and no other down domain still covers it —
// restoring a PDU never un-fails a dead node or a rack whose ToR is
// still down.
func (c *Cluster) RestoreDomain(d *Domain) {
	if d.up {
		return
	}
	d.up = true
	changed := false
	for _, l := range d.links {
		c.linkVeto[l]--
		if c.linkVeto[l] == 0 {
			c.Topo.SetLinkUp(l, true)
			changed = true
		}
	}
	if changed {
		c.Flow.OnLinkChange()
	}
	for _, fn := range c.onDomUp {
		fn(d)
	}
	for _, id := range d.nodes {
		n := c.nodes[id]
		c.nodeVeto[id]--
		if n.up && c.nodeVeto[id] == 0 {
			for _, fn := range c.onUp {
				fn(n)
			}
		}
	}
}

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Config returns the build configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Sim returns the driving simulator.
func (c *Cluster) Sim() *sim.Simulator { return c.sim }

// OnNodeDown registers fn for node-down transitions.
func (c *Cluster) OnNodeDown(fn func(*Node)) { c.onDown = append(c.onDown, fn) }

// OnNodeUp registers fn for node-up transitions.
func (c *Cluster) OnNodeUp(fn func(*Node)) { c.onUp = append(c.onUp, fn) }

// OnDiskFail registers fn for individual disk failures (node, disk index).
func (c *Cluster) OnDiskFail(fn func(*Node, int)) { c.onDisk = append(c.onDisk, fn) }

// OnDiskRepair registers fn for disk repair completions.
func (c *Cluster) OnDiskRepair(fn func(*Node, int)) { c.onDiskOK = append(c.onDiskOK, fn) }

// NodeFailures returns the count of node-down transitions so far.
func (c *Cluster) NodeFailures() int64 { return c.nodeFailures }

// RackFailures returns the count of ToR-switch failures so far.
func (c *Cluster) RackFailures() int64 { return c.rackFailures }

// Available reports whether node id is up and reachable: the node
// itself is up and no failure domain covering it (rack ToR, PDU,
// facility power) is down.
func (c *Cluster) Available(id int) bool {
	return c.nodes[id].up && c.nodeVeto[id] == 0
}

// AvailableCount returns the number of available nodes.
func (c *Cluster) AvailableCount() int {
	count := 0
	for _, n := range c.nodes {
		if c.Available(n.ID) {
			count++
		}
	}
	return count
}

// FailNode forces node id down (manual failure injection).
func (c *Cluster) FailNode(id int) {
	n := c.nodes[id]
	if !n.up {
		return
	}
	n.up = false
	n.upSignal.Set(c.sim.Now(), 0)
	c.nodeFailures++
	if n.accessLk != nil {
		c.Topo.SetLinkUp(n.accessLk, false)
		c.Flow.OnLinkChange()
	}
	for _, fn := range c.onDown {
		fn(n)
	}
}

// RestoreNode brings node id back up.
func (c *Cluster) RestoreNode(id int) {
	n := c.nodes[id]
	if n.up {
		return
	}
	n.up = true
	n.upSignal.Set(c.sim.Now(), 1)
	if n.accessLk != nil {
		c.Topo.SetLinkUp(n.accessLk, true)
		c.Flow.OnLinkChange()
	}
	for _, fn := range c.onUp {
		fn(n)
	}
}

// FailRack forces rack r's ToR switch down, making all its nodes
// unreachable (correlated failure). It is the rack domain's failure.
func (c *Cluster) FailRack(r int) {
	if !c.rackDomains[r].up {
		return
	}
	c.rackFailures++
	c.FailDomain(c.rackDomains[r])
}

// RestoreRack brings rack r's ToR switch back. Nodes that failed (or
// whose other covering domains failed) while the rack was down stay
// unavailable.
func (c *Cluster) RestoreRack(r int) {
	c.RestoreDomain(c.rackDomains[r])
}

// StartFailures wires all configured failure processes into the
// simulator: whole-node lifecycles (NodeTTF/NodeRepair), per-component
// lifecycles (disks and NICs), and ToR switch lifecycles.
func (c *Cluster) StartFailures() {
	for _, n := range c.nodes {
		n := n
		if c.cfg.NodeTTF != nil {
			var ttfStream, repairStream *rng.Source
			if c.sim.Keyed() {
				// Keyed (CRN/antithetic) mode splits the lifecycle into a
				// mirrored failure-time stream and a shared repair stream:
				// an antithetic twin inverts when nodes fail but repairs
				// take identical durations, the pairing that actually
				// anti-correlates availability.
				ttfStream = c.sim.MirroredStream(fmt.Sprintf("node-%d/ttf", n.ID))
				repairStream = c.sim.Stream(fmt.Sprintf("node-%d/repair", n.ID))
			} else {
				s := c.sim.Stream(fmt.Sprintf("node-%d", n.ID))
				ttfStream, repairStream = s, s
			}
			c.scheduleNodeLifecycle(n, ttfStream, repairStream)
		}
		if c.cfg.ComponentFailures {
			for d, disk := range n.Disks {
				d := d
				disk.OnFail(func(*hardware.Component) {
					for _, fn := range c.onDisk {
						fn(n, d)
					}
				})
				disk.OnRepair(func(*hardware.Component) {
					for _, fn := range c.onDiskOK {
						fn(n, d)
					}
				})
				disk.StartLifecycle(c.sim, c.sim.Stream(fmt.Sprintf("disk-%d-%d", n.ID, d)))
			}
			// NIC failure severs connectivity: treat as node-down for
			// serving purposes.
			n.NIC.OnFail(func(*hardware.Component) { c.FailNode(n.ID) })
			n.NIC.OnRepair(func(*hardware.Component) { c.RestoreNode(n.ID) })
			n.NIC.StartLifecycle(c.sim, c.sim.Stream(fmt.Sprintf("nic-%d", n.ID)))
		}
	}
	if c.cfg.SwitchFailures {
		swSpec, err := c.cat.Get(c.cfg.SwitchSpec)
		if err != nil {
			panic(err) // validated in Build
		}
		for r := 0; r < c.cfg.Racks; r++ {
			r := r
			sw, err := hardware.NewComponent(1000000+r, swSpec)
			if err != nil {
				panic(err)
			}
			c.torSws[r] = sw
			sw.OnFail(func(*hardware.Component) { c.FailRack(r) })
			sw.OnRepair(func(*hardware.Component) { c.RestoreRack(r) })
			sw.StartLifecycle(c.sim, c.sim.Stream(fmt.Sprintf("tor-%d", r)))
		}
	}
}

// scheduleNodeLifecycle drives the whole-node fail/repair cycle. The
// TTF and repair streams coincide in legacy mode and are split in keyed
// mode (see StartFailures).
func (c *Cluster) scheduleNodeLifecycle(n *Node, ttfStream, repairStream *rng.Source) {
	ttf := c.cfg.NodeTTF.Sample(ttfStream)
	c.sim.Schedule(ttf, fmt.Sprintf("node%d/fail", n.ID), func() {
		c.FailNode(n.ID)
		rep := c.cfg.NodeRepair.Sample(repairStream)
		c.sim.Schedule(rep, fmt.Sprintf("node%d/repair", n.ID), func() {
			c.RestoreNode(n.ID)
			c.scheduleNodeLifecycle(n, ttfStream, repairStream)
		})
	})
}

// SetServiceThrottle scales every node's access-link capacity to factor
// (in (0, 1]) of its configured value and reallocates in-flight flows —
// the hook power capping (internal/power) uses to throttle per-node
// service rates without touching link up/down state. Factor 1 restores
// full speed.
func (c *Cluster) SetServiceThrottle(factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("cluster: service throttle %v outside (0, 1]", factor)
	}
	if c.baseAccessCap == nil {
		c.baseAccessCap = make([]float64, len(c.nodes))
		for i, n := range c.nodes {
			if n.accessLk != nil {
				c.baseAccessCap[i] = n.accessLk.Capacity
			}
		}
	}
	changed := false
	for i, n := range c.nodes {
		if n.accessLk == nil {
			continue
		}
		want := c.baseAccessCap[i] * factor
		if n.accessLk.Capacity != want {
			n.accessLk.Capacity = want
			changed = true
		}
	}
	if changed {
		c.Flow.OnLinkChange()
	}
	return nil
}

// NodeUptime returns the time-averaged fraction of time node id was up,
// evaluated at the current simulation time.
func (c *Cluster) NodeUptime(id int) float64 {
	n := c.nodes[id]
	v := 0.0
	if n.up {
		v = 1
	}
	n.upSignal.Set(c.sim.Now(), v)
	return n.upSignal.Average()
}

// DiskCapacityGB returns the total disk capacity of one node.
func (c *Cluster) DiskCapacityGB() float64 {
	if len(c.nodes) == 0 || len(c.nodes[0].Disks) == 0 {
		return 0
	}
	n := c.nodes[0]
	return float64(len(n.Disks)) * n.Disks[0].Spec.CapacityGB
}
