// Package cluster assembles simulated data centers: racks of nodes built
// from cataloged hardware components, wired into a network topology, with
// failure processes injected into the discrete-event simulator.
//
// It is the "hardware half" of the integrated co-design the paper argues
// for (§1): the same Config that fixes disk/NIC/switch choices also
// determines failure behaviour (per-component lifecycles), correlated
// failures (a ToR switch failure makes a whole rack unreachable — the
// scale effect §2.1 says small prototypes cannot reproduce), and the
// network capacities that bound the repair process.
package cluster

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config describes one data center design point. Time unit: hours (all
// TTFs/repairs in the catalog are hours; network capacities are converted
// from MB/s internally).
type Config struct {
	Racks        int
	NodesPerRack int

	// Per-node hardware, by catalog spec name.
	DiskSpec     string
	DisksPerNode int
	NICSpec      string
	CPUSpec      string
	MemSpec      string

	// Network.
	SwitchSpec  string  // ToR/core switch spec
	UplinkMBps  float64 // ToR->core uplink capacity; 0 = 10x host link
	LinkLatency float64 // hours (propagation; usually ~0)

	// Failure injection. Whole-node failure model (OS crash, PSU, etc.):
	// if NodeTTF is nil, nodes only fail through their components.
	NodeTTF    dist.Dist
	NodeRepair dist.Dist

	ComponentFailures bool // drive per-component lifecycles
	SwitchFailures    bool // drive ToR switch lifecycles (rack blasts)
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.Racks < 1 || c.NodesPerRack < 1 {
		return fmt.Errorf("cluster: need >= 1 rack and node per rack, got %dx%d", c.Racks, c.NodesPerRack)
	}
	if c.DisksPerNode < 1 {
		return fmt.Errorf("cluster: need >= 1 disk per node, got %d", c.DisksPerNode)
	}
	if (c.NodeTTF == nil) != (c.NodeRepair == nil) {
		return fmt.Errorf("cluster: NodeTTF and NodeRepair must both be set or both nil")
	}
	return nil
}

// SecondsPerHour converts MB/s capacities into MB/hour for the flow
// simulator, keeping the whole availability simulation in hour units.
const SecondsPerHour = 3600.0

// Node is one simulated machine.
type Node struct {
	ID   int
	Rack int
	Host netsim.NodeID

	Disks []*hardware.Component
	NIC   *hardware.Component
	CPU   *hardware.Component
	Mem   *hardware.Component

	up       bool
	upSignal stats.TimeWeighted
	accessLk *netsim.Link
}

// Up reports whether the node itself is up (independent of rack
// reachability).
func (n *Node) Up() bool { return n.up }

// Cluster is a fully wired simulated data center.
type Cluster struct {
	cfg  Config
	sim  *sim.Simulator
	cat  *hardware.Catalog
	Topo *netsim.Topology
	Flow *netsim.FlowSim

	nodes    []*Node
	torIDs   []netsim.NodeID
	torSws   []*hardware.Component // indexed by rack; nil without SwitchFailures
	torUp    []bool
	uplinks  []*netsim.Link
	onDown   []func(*Node)
	onUp     []func(*Node)
	onDisk   []func(*Node, int) // node, disk index
	onDiskOK []func(*Node, int)

	nodeFailures int64
	rackFailures int64
}

// Build constructs the cluster, its topology and flow simulator. Failure
// processes are not started until StartFailures is called, so static
// analyses (Figure 1) can drive failures manually.
func Build(s *sim.Simulator, cat *hardware.Catalog, cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nicSpec, err := cat.Get(cfg.NICSpec)
	if err != nil {
		return nil, fmt.Errorf("cluster: NIC: %w", err)
	}
	diskSpec, err := cat.Get(cfg.DiskSpec)
	if err != nil {
		return nil, fmt.Errorf("cluster: disk: %w", err)
	}
	cpuSpec, err := cat.Get(cfg.CPUSpec)
	if err != nil {
		return nil, fmt.Errorf("cluster: CPU: %w", err)
	}
	memSpec, err := cat.Get(cfg.MemSpec)
	if err != nil {
		return nil, fmt.Errorf("cluster: memory: %w", err)
	}
	if _, err := cat.Get(cfg.SwitchSpec); err != nil {
		return nil, fmt.Errorf("cluster: switch: %w", err)
	}

	hostCap := nicSpec.ThroughputMBps * SecondsPerHour
	uplink := cfg.UplinkMBps * SecondsPerHour
	if uplink <= 0 {
		uplink = 10 * hostCap
	}
	topo, hosts, tors, err := netsim.TwoTier(netsim.TwoTierConfig{
		Racks: cfg.Racks, HostsPerRack: cfg.NodesPerRack,
		HostLinkCap: hostCap, UplinkCap: uplink, LinkLatency: cfg.LinkLatency,
	})
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg: cfg, sim: s, cat: cat, Topo: topo,
		Flow:   netsim.NewFlowSim(s, topo),
		torIDs: tors,
		torUp:  make([]bool, cfg.Racks),
		torSws: make([]*hardware.Component, cfg.Racks),
	}
	for r := range c.torUp {
		c.torUp[r] = true
	}
	// Identify each host's access link and each rack's uplink.
	linkOf := func(a, b netsim.NodeID) *netsim.Link {
		for _, l := range topo.Links() {
			if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
				return l
			}
		}
		return nil
	}
	core := netsim.NodeID(0) // TwoTier adds the core switch first
	for r := 0; r < cfg.Racks; r++ {
		c.uplinks = append(c.uplinks, linkOf(tors[r], core))
	}

	id := 0
	for r := 0; r < cfg.Racks; r++ {
		for h := 0; h < cfg.NodesPerRack; h++ {
			n := &Node{ID: id, Rack: r, Host: hosts[id], up: true}
			n.accessLk = linkOf(n.Host, tors[r])
			var cerr error
			mk := func(cid int, spec hardware.Spec) *hardware.Component {
				comp, e := hardware.NewComponent(cid, spec)
				if e != nil && cerr == nil {
					cerr = e
				}
				return comp
			}
			for d := 0; d < cfg.DisksPerNode; d++ {
				n.Disks = append(n.Disks, mk(id*100+d, diskSpec))
			}
			n.NIC = mk(id*100+90, nicSpec)
			n.CPU = mk(id*100+91, cpuSpec)
			n.Mem = mk(id*100+92, memSpec)
			if cerr != nil {
				return nil, cerr
			}
			n.upSignal.Set(s.Now(), 1)
			c.nodes = append(c.nodes, n)
			id++
		}
	}
	return c, nil
}

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Config returns the build configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Sim returns the driving simulator.
func (c *Cluster) Sim() *sim.Simulator { return c.sim }

// OnNodeDown registers fn for node-down transitions.
func (c *Cluster) OnNodeDown(fn func(*Node)) { c.onDown = append(c.onDown, fn) }

// OnNodeUp registers fn for node-up transitions.
func (c *Cluster) OnNodeUp(fn func(*Node)) { c.onUp = append(c.onUp, fn) }

// OnDiskFail registers fn for individual disk failures (node, disk index).
func (c *Cluster) OnDiskFail(fn func(*Node, int)) { c.onDisk = append(c.onDisk, fn) }

// OnDiskRepair registers fn for disk repair completions.
func (c *Cluster) OnDiskRepair(fn func(*Node, int)) { c.onDiskOK = append(c.onDiskOK, fn) }

// NodeFailures returns the count of node-down transitions so far.
func (c *Cluster) NodeFailures() int64 { return c.nodeFailures }

// RackFailures returns the count of ToR-switch failures so far.
func (c *Cluster) RackFailures() int64 { return c.rackFailures }

// Available reports whether node id is up and reachable (its rack's ToR
// switch is operational).
func (c *Cluster) Available(id int) bool {
	n := c.nodes[id]
	return n.up && c.torUp[n.Rack]
}

// AvailableCount returns the number of available nodes.
func (c *Cluster) AvailableCount() int {
	count := 0
	for _, n := range c.nodes {
		if c.Available(n.ID) {
			count++
		}
	}
	return count
}

// FailNode forces node id down (manual failure injection).
func (c *Cluster) FailNode(id int) {
	n := c.nodes[id]
	if !n.up {
		return
	}
	n.up = false
	n.upSignal.Set(c.sim.Now(), 0)
	c.nodeFailures++
	if n.accessLk != nil {
		c.Topo.SetLinkUp(n.accessLk, false)
		c.Flow.OnLinkChange()
	}
	for _, fn := range c.onDown {
		fn(n)
	}
}

// RestoreNode brings node id back up.
func (c *Cluster) RestoreNode(id int) {
	n := c.nodes[id]
	if n.up {
		return
	}
	n.up = true
	n.upSignal.Set(c.sim.Now(), 1)
	if n.accessLk != nil {
		c.Topo.SetLinkUp(n.accessLk, true)
		c.Flow.OnLinkChange()
	}
	for _, fn := range c.onUp {
		fn(n)
	}
}

// FailRack forces rack r's ToR switch down, making all its nodes
// unreachable (correlated failure).
func (c *Cluster) FailRack(r int) {
	if !c.torUp[r] {
		return
	}
	c.torUp[r] = false
	c.rackFailures++
	c.Topo.SetLinkUp(c.uplinks[r], false)
	c.Flow.OnLinkChange()
	for _, n := range c.nodes {
		if n.Rack == r {
			for _, fn := range c.onDown {
				fn(n)
			}
		}
	}
}

// RestoreRack brings rack r's ToR switch back.
func (c *Cluster) RestoreRack(r int) {
	if c.torUp[r] {
		return
	}
	c.torUp[r] = true
	c.Topo.SetLinkUp(c.uplinks[r], true)
	c.Flow.OnLinkChange()
	for _, n := range c.nodes {
		if n.Rack == r {
			for _, fn := range c.onUp {
				fn(n)
			}
		}
	}
}

// StartFailures wires all configured failure processes into the
// simulator: whole-node lifecycles (NodeTTF/NodeRepair), per-component
// lifecycles (disks and NICs), and ToR switch lifecycles.
func (c *Cluster) StartFailures() {
	for _, n := range c.nodes {
		n := n
		if c.cfg.NodeTTF != nil {
			var ttfStream, repairStream *rng.Source
			if c.sim.Keyed() {
				// Keyed (CRN/antithetic) mode splits the lifecycle into a
				// mirrored failure-time stream and a shared repair stream:
				// an antithetic twin inverts when nodes fail but repairs
				// take identical durations, the pairing that actually
				// anti-correlates availability.
				ttfStream = c.sim.MirroredStream(fmt.Sprintf("node-%d/ttf", n.ID))
				repairStream = c.sim.Stream(fmt.Sprintf("node-%d/repair", n.ID))
			} else {
				s := c.sim.Stream(fmt.Sprintf("node-%d", n.ID))
				ttfStream, repairStream = s, s
			}
			c.scheduleNodeLifecycle(n, ttfStream, repairStream)
		}
		if c.cfg.ComponentFailures {
			for d, disk := range n.Disks {
				d := d
				disk.OnFail(func(*hardware.Component) {
					for _, fn := range c.onDisk {
						fn(n, d)
					}
				})
				disk.OnRepair(func(*hardware.Component) {
					for _, fn := range c.onDiskOK {
						fn(n, d)
					}
				})
				disk.StartLifecycle(c.sim, c.sim.Stream(fmt.Sprintf("disk-%d-%d", n.ID, d)))
			}
			// NIC failure severs connectivity: treat as node-down for
			// serving purposes.
			n.NIC.OnFail(func(*hardware.Component) { c.FailNode(n.ID) })
			n.NIC.OnRepair(func(*hardware.Component) { c.RestoreNode(n.ID) })
			n.NIC.StartLifecycle(c.sim, c.sim.Stream(fmt.Sprintf("nic-%d", n.ID)))
		}
	}
	if c.cfg.SwitchFailures {
		swSpec, err := c.cat.Get(c.cfg.SwitchSpec)
		if err != nil {
			panic(err) // validated in Build
		}
		for r := 0; r < c.cfg.Racks; r++ {
			r := r
			sw, err := hardware.NewComponent(1000000+r, swSpec)
			if err != nil {
				panic(err)
			}
			c.torSws[r] = sw
			sw.OnFail(func(*hardware.Component) { c.FailRack(r) })
			sw.OnRepair(func(*hardware.Component) { c.RestoreRack(r) })
			sw.StartLifecycle(c.sim, c.sim.Stream(fmt.Sprintf("tor-%d", r)))
		}
	}
}

// scheduleNodeLifecycle drives the whole-node fail/repair cycle. The
// TTF and repair streams coincide in legacy mode and are split in keyed
// mode (see StartFailures).
func (c *Cluster) scheduleNodeLifecycle(n *Node, ttfStream, repairStream *rng.Source) {
	ttf := c.cfg.NodeTTF.Sample(ttfStream)
	c.sim.Schedule(ttf, fmt.Sprintf("node%d/fail", n.ID), func() {
		c.FailNode(n.ID)
		rep := c.cfg.NodeRepair.Sample(repairStream)
		c.sim.Schedule(rep, fmt.Sprintf("node%d/repair", n.ID), func() {
			c.RestoreNode(n.ID)
			c.scheduleNodeLifecycle(n, ttfStream, repairStream)
		})
	})
}

// NodeUptime returns the time-averaged fraction of time node id was up,
// evaluated at the current simulation time.
func (c *Cluster) NodeUptime(id int) float64 {
	n := c.nodes[id]
	v := 0.0
	if n.up {
		v = 1
	}
	n.upSignal.Set(c.sim.Now(), v)
	return n.upSignal.Average()
}

// DiskCapacityGB returns the total disk capacity of one node.
func (c *Cluster) DiskCapacityGB() float64 {
	if len(c.nodes) == 0 || len(c.nodes[0].Disks) == 0 {
		return 0
	}
	n := c.nodes[0]
	return float64(len(n.Disks)) * n.Disks[0].Spec.CapacityGB
}
