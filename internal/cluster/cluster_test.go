package cluster

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func testConfig() Config {
	return Config{
		Racks: 3, NodesPerRack: 4,
		DiskSpec: "hdd-7200", DisksPerNode: 2,
		NICSpec: "nic-10g", CPUSpec: "cpu-8c", MemSpec: "mem-16g",
		SwitchSpec: "switch-48p-10g",
	}
}

func build(t *testing.T, cfg Config) (*sim.Simulator, *Cluster) {
	t.Helper()
	s := sim.New(42)
	c, err := Build(s, hardware.DefaultCatalog(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

func TestBuildShape(t *testing.T) {
	_, c := build(t, testConfig())
	if c.Size() != 12 {
		t.Fatalf("size = %d, want 12", c.Size())
	}
	for i, n := range c.Nodes() {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		if n.Rack != i/4 {
			t.Errorf("node %d in rack %d, want %d", i, n.Rack, i/4)
		}
		if len(n.Disks) != 2 {
			t.Errorf("node %d has %d disks, want 2", i, len(n.Disks))
		}
		if !c.Available(i) {
			t.Errorf("fresh node %d not available", i)
		}
	}
	if c.DiskCapacityGB() != 4000 {
		t.Errorf("per-node disk capacity %v, want 4000", c.DiskCapacityGB())
	}
}

func TestBuildValidation(t *testing.T) {
	s := sim.New(1)
	cat := hardware.DefaultCatalog()
	bad := testConfig()
	bad.Racks = 0
	if _, err := Build(s, cat, bad); err == nil {
		t.Error("zero racks accepted")
	}
	bad = testConfig()
	bad.DiskSpec = "nonexistent"
	if _, err := Build(s, cat, bad); err == nil {
		t.Error("unknown disk spec accepted")
	}
	bad = testConfig()
	bad.NodeTTF = dist.Must(dist.ExpMean(100))
	if _, err := Build(s, cat, bad); err == nil {
		t.Error("NodeTTF without NodeRepair accepted")
	}
}

func TestManualFailRestore(t *testing.T) {
	s, c := build(t, testConfig())
	downs, ups := 0, 0
	c.OnNodeDown(func(*Node) { downs++ })
	c.OnNodeUp(func(*Node) { ups++ })
	c.FailNode(3)
	if c.Available(3) {
		t.Fatal("failed node still available")
	}
	if c.AvailableCount() != 11 {
		t.Fatalf("available = %d, want 11", c.AvailableCount())
	}
	c.FailNode(3) // idempotent
	if downs != 1 {
		t.Fatalf("down callbacks = %d, want 1", downs)
	}
	c.RestoreNode(3)
	if !c.Available(3) || ups != 1 {
		t.Fatal("restore failed")
	}
	if c.NodeFailures() != 1 {
		t.Fatalf("failures = %d, want 1", c.NodeFailures())
	}
	_ = s
}

func TestRackFailureCorrelated(t *testing.T) {
	_, c := build(t, testConfig())
	downs := 0
	c.OnNodeDown(func(*Node) { downs++ })
	c.FailRack(1)
	// All 4 nodes of rack 1 become unavailable even though they are up.
	for i := 4; i < 8; i++ {
		if c.Available(i) {
			t.Errorf("node %d available during rack failure", i)
		}
		if !c.Nodes()[i].Up() {
			t.Errorf("node %d should still be 'up' (switch failed, not node)", i)
		}
	}
	if downs != 4 {
		t.Errorf("down callbacks = %d, want 4", downs)
	}
	if c.AvailableCount() != 8 {
		t.Errorf("available = %d, want 8", c.AvailableCount())
	}
	c.RestoreRack(1)
	if c.AvailableCount() != 12 {
		t.Errorf("available after restore = %d, want 12", c.AvailableCount())
	}
}

func TestNodeLifecycleUptime(t *testing.T) {
	cfg := testConfig()
	cfg.NodeTTF = dist.Must(dist.ExpMean(1000))
	cfg.NodeRepair = dist.Must(dist.NewDeterministic(10)) // ~1% downtime
	s, c := build(t, cfg)
	c.StartFailures()
	s.RunUntil(200000)
	// Mean uptime across nodes should be near 1000/1010.
	sum := 0.0
	for i := 0; i < c.Size(); i++ {
		sum += c.NodeUptime(i)
	}
	avg := sum / float64(c.Size())
	want := 1000.0 / 1010
	if math.Abs(avg-want) > 0.01 {
		t.Errorf("mean uptime %v, want ~%v", avg, want)
	}
	if c.NodeFailures() < 1000 {
		t.Errorf("only %d failures over 200k hours x 12 nodes", c.NodeFailures())
	}
}

func TestDiskFailureCallbacks(t *testing.T) {
	cfg := testConfig()
	cfg.ComponentFailures = true
	s, c := build(t, cfg)
	fails, repairs := 0, 0
	c.OnDiskFail(func(n *Node, d int) {
		if d < 0 || d >= len(n.Disks) {
			t.Errorf("bad disk index %d", d)
		}
		fails++
	})
	c.OnDiskRepair(func(*Node, int) { repairs++ })
	c.StartFailures()
	s.RunUntil(hardware.HoursPerYear * 20)
	if fails == 0 {
		t.Fatal("no disk failures in 20 simulated years of 24 disks")
	}
	if repairs == 0 || repairs > fails {
		t.Fatalf("repairs = %d, fails = %d", repairs, fails)
	}
}

func TestSwitchFailuresMakeRacksUnreachable(t *testing.T) {
	cfg := testConfig()
	cfg.SwitchFailures = true
	s, c := build(t, cfg)
	c.StartFailures()
	s.RunUntil(hardware.HoursPerYear * 50)
	if c.RackFailures() == 0 {
		t.Fatal("no rack failures in 50 years x 3 switches at 2% AFR")
	}
}

func TestFailedNodeAbortsFlows(t *testing.T) {
	s, c := build(t, testConfig())
	var failErr error
	// Start a transfer into node 5, then kill node 5 mid-flight.
	srcHost := c.Nodes()[0].Host
	dstHost := c.Nodes()[5].Host
	if _, err := c.Flow.Start(srcHost, dstHost, 1e9, nil,
		func(_ *netsim.Flow, e error) { failErr = e }); err != nil {
		t.Fatal(err)
	}
	s.Schedule(0.001, "kill", func() { c.FailNode(5) })
	s.RunUntil(1)
	if c.Flow.Aborted() != 1 {
		t.Fatalf("aborted flows = %d, want 1", c.Flow.Aborted())
	}
	if failErr == nil {
		t.Fatal("failed callback did not receive an error")
	}
}

func TestNodeUptimeFullWindow(t *testing.T) {
	s, c := build(t, testConfig())
	s.Schedule(10, "fail", func() { c.FailNode(0) })
	s.Schedule(20, "fix", func() { c.RestoreNode(0) })
	s.Schedule(40, "end", func() {})
	s.Run()
	if got := c.NodeUptime(0); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("uptime = %v, want 0.75", got)
	}
}

// TestDomainRestoreRechecksNodeState pins the fix for the blind ToR
// restore: a node that failed (or whose other covering domain failed)
// while a domain was down must NOT be reported back up when that domain
// recovers.
func TestDomainRestoreRechecksNodeState(t *testing.T) {
	_, c := build(t, testConfig())
	ups := 0
	var upNodes []int
	c.OnNodeUp(func(n *Node) { ups++; upNodes = append(upNodes, n.ID) })

	c.FailRack(1)    // nodes 4..7 unreachable
	c.FailNode(5)    // node 5 dies while its rack is dark
	c.RestoreRack(1) // ToR back: 4, 6, 7 recover — 5 must not
	if ups != 3 {
		t.Fatalf("up callbacks = %d (%v), want 3 (node 5 is still down)", ups, upNodes)
	}
	if c.Available(5) {
		t.Fatal("dead node reported available after rack restore")
	}
	if !c.Available(4) || !c.Available(6) || !c.Available(7) {
		t.Fatal("healthy rack-1 nodes not restored")
	}
	c.RestoreNode(5)
	if !c.Available(5) {
		t.Fatal("node 5 unavailable after its own repair")
	}
}

// TestDomainFailSkipsAlreadyDownNodes is the symmetric half: a domain
// failure reports only the nodes that actually transition.
func TestDomainFailSkipsAlreadyDownNodes(t *testing.T) {
	_, c := build(t, testConfig())
	downs := 0
	c.OnNodeDown(func(*Node) { downs++ })
	c.FailNode(4)
	c.FailRack(1)
	if downs != 4 { // node 4's own failure + 3 transitions from the rack blast
		t.Fatalf("down callbacks = %d, want 4", downs)
	}
}

// TestNestedDomains layers a PDU-style power domain over two racks and
// checks that availability is the conjunction of every covering domain:
// restoring the outer (PDU) domain while an inner (ToR) domain is down
// keeps the rack dark, and vice versa.
func TestNestedDomains(t *testing.T) {
	_, c := build(t, testConfig())
	// A "PDU" feeding racks 0 and 1 (nodes 0..7) through their uplinks.
	var links []*netsim.Link
	links = append(links, c.RackDomain(0).links...)
	links = append(links, c.RackDomain(1).links...)
	pdu, err := c.AddDomain("pdu-0", true, []int{0, 1, 2, 3, 4, 5, 6, 7}, links)
	if err != nil {
		t.Fatal(err)
	}
	if !pdu.Power || pdu.Name != "pdu-0" {
		t.Fatal("domain metadata lost")
	}

	c.FailDomain(pdu)
	if got := c.AvailableCount(); got != 4 {
		t.Fatalf("available during PDU outage = %d, want 4 (rack 2 only)", got)
	}
	// Exactly its racks: rack 2 untouched.
	for i := 8; i < 12; i++ {
		if !c.Available(i) {
			t.Fatalf("node %d outside the PDU domain went down", i)
		}
	}

	// ToR of rack 0 dies during the power outage. PDU restore must bring
	// back rack 1 but leave rack 0 dark (nested ToR state preserved).
	c.FailRack(0)
	c.RestoreDomain(pdu)
	for i := 0; i < 4; i++ {
		if c.Available(i) {
			t.Fatalf("node %d available while its ToR is down", i)
		}
	}
	for i := 4; i < 8; i++ {
		if !c.Available(i) {
			t.Fatalf("node %d not restored with the PDU", i)
		}
	}
	// The shared uplink of rack 0 must still be vetoed down.
	for _, l := range c.RackDomain(0).links {
		if l.Up() {
			t.Fatal("rack-0 uplink up while its ToR domain is down")
		}
	}
	c.RestoreRack(0)
	if c.AvailableCount() != 12 {
		t.Fatalf("available = %d, want 12", c.AvailableCount())
	}
	for _, l := range c.RackDomain(0).links {
		if !l.Up() {
			t.Fatal("rack-0 uplink still down after both domains recovered")
		}
	}
}

// TestDomainValidation checks AddDomain's input checking and the
// idempotence of fail/restore.
func TestDomainValidation(t *testing.T) {
	_, c := build(t, testConfig())
	if _, err := c.AddDomain("bad", false, []int{99}, nil); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := c.AddDomain("dup", false, []int{1, 1}, nil); err == nil {
		t.Error("duplicate node accepted")
	}
	d, err := c.AddDomain("ok", false, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	downs := 0
	c.OnNodeDown(func(*Node) { downs++ })
	c.FailDomain(d)
	c.FailDomain(d) // idempotent
	if downs != 2 {
		t.Fatalf("down callbacks = %d, want 2", downs)
	}
	c.RestoreDomain(d)
	c.RestoreDomain(d)
	if !c.Available(0) || !c.Available(1) {
		t.Fatal("nodes not restored")
	}
}
