package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/design"
	"repro/internal/dist"
	"repro/internal/power"
	"repro/internal/sla"
)

// powerScenario is a small deterministic scenario used by the power
// integration tests: no node/component failures, so the only
// availability events come from the power hierarchy.
func powerScenario() Scenario {
	sc := DefaultScenario()
	sc.Cluster.Racks = 2
	sc.Cluster.NodesPerRack = 3
	sc.Cluster.NodeTTF = nil
	sc.Cluster.NodeRepair = nil
	sc.Users = 50
	sc.HorizonHours = 1000
	sc.Power = power.Config{
		Enabled:       true,
		UtilityTTF:    dist.Must(dist.NewDeterministic(100)),
		UtilityRepair: dist.Must(dist.NewDeterministic(10)),
		// The utility cycles every 110 h: 9 outages of 10 h over the
		// 1000 h horizon, each a blackout from battery exhaustion
		// ([101, 110), [211, 220), ...) — 81 unavailable hours.
		UPSMinutes: 60,
		PUE:        1.5,
	}
	return sc
}

// TestPowerUtilityOutageGolden pins the deterministic utility-outage
// trajectory: nine outages, no ride-through, nine 9-hour facility
// blackouts, and availability reduced by exactly the blackout windows.
func TestPowerUtilityOutageGolden(t *testing.T) {
	res, err := Runner{Trials: 2, Workers: 2}.Run(powerScenario())
	if err != nil {
		t.Fatal(err)
	}
	exact := func(name string, want float64) {
		t.Helper()
		if got := res.Metrics[name]; math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %.17g, want %.17g", name, got, want)
		}
	}
	exact("power_utility_outages", 9)
	exact("power_loss_events", 9)
	exact("power_ride_through_ok", 0)
	exact("power_generator_starts", 0)
	exact("availability", 1-81.0/1000)
	exact("pue", 1.5)
	// A blackout makes data unreachable, never destroys it: no loss, no
	// re-replication traffic.
	exact("loss_prob", 0)
	exact("repairs", 0)
	exact("zero_copy_fraction", 81.0/1000)
	if res.Metrics["energy_kwh"] <= 0 || res.Metrics["peak_kw"] <= 0 {
		t.Fatalf("energy accounting missing: %v kWh, %v kW",
			res.Metrics["energy_kwh"], res.Metrics["peak_kw"])
	}
	if res.Metrics["carbon_kg"] <= 0 {
		t.Fatal("carbon footprint missing")
	}
	// Facility energy = IT energy x PUE.
	if got, want := res.Metrics["energy_kwh"], res.Metrics["energy_it_kwh"]*1.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("energy_kwh = %v, want it x PUE = %v", got, want)
	}
	if _, ok := res.CI["energy_kwh"]; !ok {
		t.Error("no confidence interval for energy_kwh")
	}
}

// TestPowerRideThroughAndGenerator checks the two covered-outage
// outcomes end to end through the runner.
func TestPowerRideThroughAndGenerator(t *testing.T) {
	sc := powerScenario()
	sc.Power.UPSMinutes = 11 * 60 // battery outlasts every 10 h outage
	res, err := Runner{Trials: 1}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["power_ride_through_ok"] != 9 || res.Metrics["availability"] != 1 {
		t.Fatalf("ride-through run: %+v", res.Metrics)
	}

	sc = powerScenario()
	sc.Power.GeneratorStartProb = 1
	sc.Power.GeneratorStartHours = 0.5 // starts inside the 1 h battery
	res, err = Runner{Trials: 1}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["power_generator_starts"] != 9 || res.Metrics["availability"] != 1 {
		t.Fatalf("generator run: %+v", res.Metrics)
	}
}

// TestPowerCapTradeoff runs the same seeded scenario uncapped and with
// a 40% cap: the cap must cost availability (slower repairs), save
// energy, and lower the peak draw — the trade-off surface the power-cap
// scenario class exists to expose.
func TestPowerCapTradeoff(t *testing.T) {
	mk := func(capFraction float64) Scenario {
		sc := DefaultScenario()
		sc.Cluster.Racks = 2
		sc.Cluster.NodesPerRack = 5
		sc.Cluster.NICSpec = "nic-1g" // repair is bandwidth-bound
		sc.Cluster.NodeTTF = dist.Must(dist.ExpMean(400))
		sc.Cluster.NodeRepair = dist.Must(dist.NewDeterministic(12))
		sc.Users = 400
		sc.ObjectSizeMB = 4000
		sc.HorizonHours = 4000
		sc.Seed = 99
		sc.Power = power.Config{Enabled: true, CapFraction: capFraction}
		return sc
	}
	r := Runner{Trials: 4, CRN: true} // identical failure draws across the pair
	base, err := r.Run(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	capped, err := r.Run(mk(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if capped.Metrics["availability"] >= base.Metrics["availability"] {
		t.Errorf("cap did not cost availability: %v vs %v",
			capped.Metrics["availability"], base.Metrics["availability"])
	}
	if capped.Metrics["energy_kwh"] >= base.Metrics["energy_kwh"] {
		t.Errorf("cap did not save energy: %v vs %v",
			capped.Metrics["energy_kwh"], base.Metrics["energy_kwh"])
	}
	if capped.Metrics["peak_kw"] >= base.Metrics["peak_kw"] {
		t.Errorf("cap did not lower peak: %v vs %v",
			capped.Metrics["peak_kw"], base.Metrics["peak_kw"])
	}
	if capped.Metrics["repair_makespan"] <= base.Metrics["repair_makespan"] {
		t.Errorf("cap did not slow repairs: makespan %v vs %v",
			capped.Metrics["repair_makespan"], base.Metrics["repair_makespan"])
	}
}

// TestPowerDisabledLeavesDefaultPathUntouched: the default scenario
// must not grow power metrics (the golden byte-identity of the default
// trajectory is pinned separately in golden_test.go).
func TestPowerDisabledLeavesDefaultPathUntouched(t *testing.T) {
	res, err := Runner{Trials: 2}.Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	for name := range res.Metrics {
		if strings.HasPrefix(name, "power_") || strings.HasPrefix(name, "energy") ||
			name == "peak_kw" || name == "pue" || name == "carbon_kg" {
			t.Errorf("power metric %q present in a power-disabled run", name)
		}
	}
}

// TestPowerFingerprintSafety is the cache-staleness guard: every power
// field is output-determining, so every mutation must change the cache
// key (and the unchanged config must not). A missed field here means
// windtunneld would serve one power scenario's statistics for another.
func TestPowerFingerprintSafety(t *testing.T) {
	base := powerScenario()
	r := Runner{Trials: 4}
	k0 := CacheKey(base, r)
	if CacheKey(powerScenario(), r) != k0 {
		t.Fatal("cache key not deterministic for power scenarios")
	}

	muts := map[string]func(sc *Scenario){
		"enabled":         func(sc *Scenario) { sc.Power.Enabled = false },
		"pdus":            func(sc *Scenario) { sc.Power.PDUs = 2 },
		"pdu_spec":        func(sc *Scenario) { sc.Power.PDUSpec = "pdu-redundant" },
		"ups_spec":        func(sc *Scenario) { sc.Power.UPSSpec = "ups-240kva" },
		"utility_ttf":     func(sc *Scenario) { sc.Power.UtilityTTF = dist.Must(dist.NewDeterministic(200)) },
		"utility_repair":  func(sc *Scenario) { sc.Power.UtilityRepair = dist.Must(dist.NewDeterministic(20)) },
		"ups_minutes":     func(sc *Scenario) { sc.Power.UPSMinutes = 30 },
		"generator_prob":  func(sc *Scenario) { sc.Power.GeneratorStartProb = 0.9 },
		"generator_hours": func(sc *Scenario) { sc.Power.GeneratorStartHours = 0.25 },
		"idle_fraction":   func(sc *Scenario) { sc.Power.IdleFraction = 0.6 },
		"utilization":     func(sc *Scenario) { sc.Power.Utilization = 0.7 },
		"pue":             func(sc *Scenario) { sc.Power.PUE = 1.2 },
		"carbon":          func(sc *Scenario) { sc.Power.CarbonKgPerKWh = 0.1 },
		"cap":             func(sc *Scenario) { sc.Power.CapFraction = 0.2 },
		"cap_start":       func(sc *Scenario) { sc.Power.CapStartHours = 10 },
		"cap_duration":    func(sc *Scenario) { sc.Power.CapDurationHours = 100 },
	}
	seen := map[string]string{k0: "base"}
	for name, mut := range muts {
		sc := base
		mut(&sc)
		k := CacheKey(sc, r)
		if k == k0 {
			t.Errorf("mutating power field %q does not change the cache key — stale cache hits", name)
		}
		if prev, dup := seen[k]; dup && prev != "base" {
			t.Errorf("mutations %q and %q collide", name, prev)
		}
		seen[k] = name
	}
	if len(seen) != len(muts)+1 {
		t.Errorf("expected %d distinct keys, got %d", len(muts)+1, len(seen))
	}
}

// TestPowerExplorerCacheBitExact runs a power-cap sweep cold and warm
// against one trial cache: the warm results (energy metrics included)
// must be bit-exact.
func TestPowerExplorerCacheBitExact(t *testing.T) {
	space, err := design.NewSpace(design.Dimension{
		Name:   "cap",
		Values: []design.Value{float64(0), float64(0.3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := &mapCache{}
	mk := func() *Explorer {
		return &Explorer{
			Space: space,
			Build: func(p design.Point) (Scenario, []sla.SLA, error) {
				sc := powerScenario()
				sc.Power.CapFraction = p.MustValue("cap").(float64)
				return sc, nil, nil
			},
			Runner: Runner{Trials: 3},
			Cache:  cache,
		}
	}
	cold, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != len(warm.Outcomes) {
		t.Fatalf("warm power sweep hit %d/%d", warm.CacheHits, len(warm.Outcomes))
	}
	for i := range cold.Outcomes {
		c, w := cold.Outcomes[i].Result, warm.Outcomes[i].Result
		if len(c.Metrics) != len(w.Metrics) {
			t.Fatalf("point %d: metric count differs cold vs warm", i)
		}
		for k, v := range c.Metrics {
			if w.Metrics[k] != v {
				t.Fatalf("point %d metric %s not bit-exact: cold %.17g warm %.17g", i, k, v, w.Metrics[k])
			}
		}
	}
}

// TestPowerFeasibilityScreen checks the analytic power-feasibility
// pass: a power budget below the facility's idle floor fails without
// simulation, a generous budget simulates, and with power enabled the
// availability bounds are never used to PASS.
func TestPowerFeasibilityScreen(t *testing.T) {
	sc := powerScenario()
	bounds, ok, err := AnalyticScreen(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("power-enabled scenario not screenable for feasibility")
	}
	if bounds.AvailValid {
		t.Fatal("availability bounds marked valid under power failures")
	}
	if bounds.PeakKWFloor <= 0 {
		t.Fatal("no power floor computed")
	}

	rule := ScreenRule{Margin: 0}
	tight, err := sla.NewPowerBudget(bounds.PeakKWFloor / 2)
	if err != nil {
		t.Fatal(err)
	}
	if dec := rule.Decide(bounds, []sla.SLA{tight}); dec != ScreenFail {
		t.Errorf("infeasible power budget screened %v, want fail", dec)
	}
	loose, err := sla.NewPowerBudget(bounds.PeakKWFloor * 10)
	if err != nil {
		t.Fatal(err)
	}
	if dec := rule.Decide(bounds, []sla.SLA{loose}); dec != ScreenSimulate {
		t.Errorf("feasible power budget screened %v, want simulate", dec)
	}
	avail := mustAvailability(t, 0.9)
	if dec := rule.Decide(bounds, []sla.SLA{avail}); dec != ScreenSimulate {
		t.Errorf("availability SLA under power screened %v, want simulate", dec)
	}
	// Margin deflates the floor: a budget just under the floor survives
	// a large margin.
	just, err := sla.NewPowerBudget(bounds.PeakKWFloor * 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if dec := (ScreenRule{Margin: 1}).Decide(bounds, []sla.SLA{just}); dec != ScreenSimulate {
		t.Errorf("margin-deflated floor screened %v, want simulate", dec)
	}
}
