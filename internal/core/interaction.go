package core

import (
	"fmt"
	"sort"
)

// The paper's §4.1 asks that model interactions be *declared* so the
// engine can "automatically optimize and parallelize the query execution
// based on the user's declarations": a data-transfer model and a workload
// model on the same machine interact, while the disk failure model and
// the switch failure model do not. InteractionGraph captures those
// declarations as read/write sets over named resources and derives the
// two facts the engine exploits: which models conflict, and which groups
// of models ("islands") are mutually independent and can be simulated or
// parallelized separately.

// ModelDecl declares one simulation model's resource footprint.
type ModelDecl struct {
	Name   string
	Reads  []string
	Writes []string
}

// InteractionGraph is a set of model declarations.
type InteractionGraph struct {
	models map[string]ModelDecl
	order  []string
}

// NewInteractionGraph returns an empty graph.
func NewInteractionGraph() *InteractionGraph {
	return &InteractionGraph{models: make(map[string]ModelDecl)}
}

// Add registers a model declaration.
func (g *InteractionGraph) Add(m ModelDecl) error {
	if m.Name == "" {
		return fmt.Errorf("core: model declaration with empty name")
	}
	if _, dup := g.models[m.Name]; dup {
		return fmt.Errorf("core: duplicate model %q", m.Name)
	}
	g.models[m.Name] = m
	g.order = append(g.order, m.Name)
	return nil
}

// Models returns the declared model names in insertion order.
func (g *InteractionGraph) Models() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Conflicts reports whether models a and b interact: they share a
// resource that at least one of them writes.
func (g *InteractionGraph) Conflicts(a, b string) (bool, error) {
	ma, ok := g.models[a]
	if !ok {
		return false, fmt.Errorf("core: unknown model %q", a)
	}
	mb, ok := g.models[b]
	if !ok {
		return false, fmt.Errorf("core: unknown model %q", b)
	}
	return conflict(ma, mb), nil
}

func conflict(a, b ModelDecl) bool {
	writesA := toSet(a.Writes)
	writesB := toSet(b.Writes)
	// write-write
	for w := range writesA {
		if writesB[w] {
			return true
		}
	}
	// write-read either direction
	for _, r := range b.Reads {
		if writesA[r] {
			return true
		}
	}
	for _, r := range a.Reads {
		if writesB[r] {
			return true
		}
	}
	return false
}

func toSet(xs []string) map[string]bool {
	s := make(map[string]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

// Islands returns the connected components of the conflict graph, each
// sorted, components ordered by their first member. Models in different
// islands are guaranteed independent: simulating them in parallel (or in
// separate sub-simulations) cannot change any outcome — the formal
// backing for the paper's "work done on other nodes within the rack is
// unaffected" argument.
func (g *InteractionGraph) Islands() [][]string {
	parent := make(map[string]string, len(g.models))
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for name := range g.models {
		parent[name] = name
	}
	names := g.Models()
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if conflict(g.models[names[i]], g.models[names[j]]) {
				union(names[i], names[j])
			}
		}
	}
	groups := make(map[string][]string)
	for _, name := range names {
		root := find(name)
		groups[root] = append(groups[root], name)
	}
	var out [][]string
	for _, members := range groups {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// ParallelBatches greedily partitions the models into batches such that
// no two models in a batch conflict — an executable schedule for
// intra-run parallelism.
func (g *InteractionGraph) ParallelBatches() [][]string {
	var batches [][]string
	placed := make(map[string]bool, len(g.models))
	for _, name := range g.Models() {
		if placed[name] {
			continue
		}
		batch := []string{name}
		placed[name] = true
		for _, other := range g.Models() {
			if placed[other] {
				continue
			}
			ok := true
			for _, member := range batch {
				if conflict(g.models[member], g.models[other]) {
					ok = false
					break
				}
			}
			if ok {
				batch = append(batch, other)
				placed[other] = true
			}
		}
		sort.Strings(batch)
		batches = append(batches, batch)
	}
	return batches
}

// ScenarioInteractionGraph declares the standard models of an availability
// scenario and their resource footprints, matching the examples in §4.1:
// per-node disk failure models are independent of the switch failure
// model, while repair (data transfer) interacts with the network and with
// the disks it reads/writes.
func ScenarioInteractionGraph(nodes int) *InteractionGraph {
	g := NewInteractionGraph()
	// Errors are impossible here by construction: names are unique.
	for i := 0; i < nodes; i++ {
		_ = g.Add(ModelDecl{
			Name:   fmt.Sprintf("disk-failure-%d", i),
			Writes: []string{fmt.Sprintf("node-%d/disk", i)},
		})
	}
	_ = g.Add(ModelDecl{
		Name:   "switch-failure",
		Writes: []string{"network/links"},
	})
	reads := []string{"network/links"}
	writes := []string{"network/flows"}
	for i := 0; i < nodes; i++ {
		reads = append(reads, fmt.Sprintf("node-%d/disk", i))
	}
	_ = g.Add(ModelDecl{Name: "repair", Reads: reads, Writes: writes})
	return g
}
