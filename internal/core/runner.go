package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/repair"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sla"
	"repro/internal/stats"
	"repro/internal/storage"
)

// AbortRule enables §4.2 early abort: a trial is stopped as soon as its
// partial trajectory proves the availability constraint cannot be met.
type AbortRule struct {
	// MinAvailability is the constraint being checked. A trial aborts
	// once accumulated any-unavailable time alone pushes final
	// availability below this bound even if the system were perfectly
	// available for the rest of the horizon.
	MinAvailability float64
	// CheckEvery is the event interval between checks (default 512).
	CheckEvery uint64
}

// Runner executes replicated trials of a scenario on a persistent worker
// pool. Trials stream back as they finish and are aggregated strictly in
// trial-index order, so results are bit-identical regardless of Workers.
type Runner struct {
	// Trials is the maximum number of trials (>= 1).
	Trials int
	// TargetCI, when positive, stops early once the 95% confidence
	// half-width of the availability estimate drops below it. The check
	// runs as each trial's result is committed (in trial-index order), so
	// the stopping trial count does not depend on Workers.
	TargetCI float64
	// Workers bounds trial-level parallelism (0 = GOMAXPROCS).
	Workers int
	// SLAs are checked against the aggregate result.
	SLAs []sla.SLA
	// Abort, when non-nil, enables per-trial early abort.
	Abort *AbortRule
}

// trialOutcome carries one trial's raw measurements.
type trialOutcome struct {
	availability   float64
	zeroCopy       float64
	tenantAvail    []float64
	meanUnavail    float64
	lost           int64
	repairs        int64
	repairBytes    float64
	nodeFailures   int64
	events         uint64
	repairMakespan float64
	aborted        bool
	err            error
}

// indexedOutcome pairs a trial result with its index for in-order commit.
type indexedOutcome struct {
	idx int
	out trialOutcome
}

// Run executes the scenario.
func (r Runner) Run(sc Scenario) (*RunResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if r.Trials < 1 {
		return nil, fmt.Errorf("core: Runner.Trials must be >= 1, got %d", r.Trials)
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r.Trials {
		workers = r.Trials
	}

	var (
		avail       stats.Welford
		zeroCopy    stats.Welford
		meanUnavail stats.Welford
		lostW       stats.Welford
		repairsW    stats.Welford
		repBytesW   stats.Welford
		nodeFailW   stats.Welford
		makespanW   stats.Welford
		events      uint64
		aborted     int
		tenantAvail []float64
	)

	// Persistent worker pool: each worker claims the next unstarted trial
	// index and streams its outcome back; nothing waits for a batch.
	var next atomic.Int64
	stop := make(chan struct{}) // closed to halt workers after early stop
	results := make(chan indexedOutcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= r.Trials {
					return
				}
				select {
				case <-stop:
					return
				default:
				}
				out := r.runTrial(sc, uint64(i))
				select {
				case results <- indexedOutcome{idx: i, out: out}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Commit results strictly in trial-index order via a reorder buffer;
	// the early-stop decision is therefore a pure function of the seed.
	var (
		reorder    = make(map[int]trialOutcome)
		nextCommit = 0
		stopped    = false
		firstErr   error
	)
	halt := func() {
		if !stopped {
			stopped = true
			close(stop)
		}
	}
	for res := range results {
		if stopped {
			continue // drain workers already in flight
		}
		reorder[res.idx] = res.out
		for !stopped {
			o, ok := reorder[nextCommit]
			if !ok {
				break
			}
			delete(reorder, nextCommit)
			nextCommit++
			if o.err != nil {
				firstErr = o.err
				halt()
				break
			}
			avail.Add(o.availability)
			zeroCopy.Add(o.zeroCopy)
			meanUnavail.Add(o.meanUnavail)
			lostW.Add(float64(o.lost) / float64(sc.Users))
			repairsW.Add(float64(o.repairs))
			repBytesW.Add(o.repairBytes)
			nodeFailW.Add(float64(o.nodeFailures))
			makespanW.Add(o.repairMakespan)
			events += o.events
			tenantAvail = append(tenantAvail, o.tenantAvail...)
			if o.aborted {
				aborted++
			}
			if r.TargetCI > 0 && avail.N() >= 2 && avail.CI(0.05) < r.TargetCI {
				halt()
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := &RunResult{
		Scenario: sc.Name,
		Trials:   int(avail.N()),
		Metrics: map[string]float64{
			"availability":         avail.Mean(),
			"unavail_fraction":     1 - avail.Mean(),
			"zero_copy_fraction":   zeroCopy.Mean(),
			"mean_unavail_objects": meanUnavail.Mean(),
			"loss_prob":            lostW.Mean(),
			"repairs":              repairsW.Mean(),
			"repair_bytes_mb":      repBytesW.Mean(),
			"node_failures":        nodeFailW.Mean(),
			"repair_makespan":      makespanW.Mean(),
			"events":               float64(events) / float64(avail.N()),
		},
		CI: map[string]float64{
			"availability": avail.CI(0.05),
			"loss_prob":    lostW.CI(0.05),
		},
		EventsTotal:        events,
		AbortedTrials:      aborted,
		TenantAvailability: tenantAvail,
	}
	if len(r.SLAs) > 0 {
		verdicts, all, err := sla.CheckAll(res, r.SLAs)
		if err != nil {
			return nil, err
		}
		res.Verdicts = verdicts
		res.AllMet = all
	} else {
		res.AllMet = true
	}
	return res, nil
}

// runTrial builds and runs one independent replication.
func (r Runner) runTrial(sc Scenario, trial uint64) trialOutcome {
	s := sim.New(sc.Seed*1_000_003 + trial)
	cl, err := cluster.Build(s, hardware.DefaultCatalog(), sc.Cluster)
	if err != nil {
		return trialOutcome{err: err}
	}
	view := storage.View{Nodes: cl.Size(), RackOf: rackOf(cl)}
	policy, err := storage.PolicyByName(sc.Placement)
	if err != nil {
		return trialOutcome{err: err}
	}
	st, err := storage.NewStore(view, policy)
	if err != nil {
		return trialOutcome{err: err}
	}
	if err := st.AddObjects(sc.Users, sc.ObjectSizeMB, sc.Scheme, rng.New(sc.Seed*7_919+trial)); err != nil {
		return trialOutcome{err: err}
	}
	mgr, err := repair.NewManager(s, cl, st, sc.Repair)
	if err != nil {
		return trialOutcome{err: err}
	}
	mgr.Start()
	cl.StartFailures()

	if r.Abort != nil {
		every := r.Abort.CheckEvery
		if every == 0 {
			every = 512
		}
		minAvail := r.Abort.MinAvailability
		s.SetAbortCheck(func() bool {
			// Lower bound on final unavailable fraction: unavailable time
			// already accrued divided by the full horizon.
			accrued := mgr.AnyUnavailableFraction() * s.Now()
			return 1-accrued/sc.HorizonHours < minAvail
		}, every)
	}

	s.RunUntil(sc.HorizonHours)

	out := trialOutcome{
		availability: 1 - mgr.AnyUnavailableFraction(),
		zeroCopy:     mgr.ZeroCopyFraction(),
		tenantAvail:  mgr.TenantAvailabilities(),
		meanUnavail:  mgr.MeanUnavailableObjects(),
		lost:         mgr.LostObjects(),
		repairs:      mgr.Completed(),
		repairBytes:  mgr.BytesMovedMB(),
		nodeFailures: cl.NodeFailures(),
		events:       s.Executed(),
		aborted:      s.Aborted(),
	}
	if mgr.RepairTimes().N() > 0 {
		out.repairMakespan = mgr.RepairTimes().Max()
	}
	if s.Aborted() {
		// An aborted trial is, by construction, a trial that violated the
		// availability bound; report the bound itself as a conservative
		// (optimistic) availability so aggregates stay monotone.
		out.availability = 1 - mgr.AnyUnavailableFraction()*s.Now()/sc.HorizonHours
	}
	return out
}

// rackOf extracts the rack map for placement.
func rackOf(cl *cluster.Cluster) []int {
	out := make([]int, cl.Size())
	for i, n := range cl.Nodes() {
		out[i] = n.Rack
	}
	return out
}
