package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/power"
	"repro/internal/repair"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sla"
	"repro/internal/stats"
	"repro/internal/storage"
)

// AbortRule enables §4.2 early abort: a trial is stopped as soon as its
// partial trajectory proves the availability constraint cannot be met.
type AbortRule struct {
	// MinAvailability is the constraint being checked. A trial aborts
	// once accumulated any-unavailable time alone pushes final
	// availability below this bound even if the system were perfectly
	// available for the rest of the horizon.
	MinAvailability float64
	// CheckEvery is the event interval between checks (default 512).
	CheckEvery uint64
}

// Runner executes replicated trials of a scenario on a persistent worker
// pool. Trials stream back as they finish and are aggregated strictly in
// trial-index order, so results are bit-identical regardless of Workers.
//
// Three §4.2 variance-reduction techniques are available, all opt-in and
// all preserving Workers-independence:
//
//   - CRN keys every named random stream by (Scenario.Seed, trial,
//     stream name) — a pure function of the triple, independent of the
//     design point — so paired design points sharing a seed see
//     identical failure draws and comparisons between them need far
//     fewer trials.
//   - Antithetic pairs trials (2k, 2k+1): the odd twin consumes the
//     mirrored uniforms of the even twin's streams, and aggregation runs
//     over pair means, shrinking confidence intervals without bias.
//     Antithetic implies CRN keying.
//   - FailureBias > 1 scales the whole-node TTF hazard by that factor
//     (failure-biased importance sampling): rare failure windows become
//     common, and every trial carries its likelihood-ratio weight into
//     self-normalized weighted estimators, so high-availability
//     scenarios resolve tiny unavailabilities in a fraction of the
//     trials.
type Runner struct {
	// Trials is the maximum number of trials (>= 1).
	Trials int
	// TargetCI, when positive, stops early once the 95% confidence
	// half-width of the availability estimate drops below it. The check
	// runs as each trial's result is committed (in trial-index order), so
	// the stopping trial count does not depend on Workers.
	TargetCI float64
	// Workers bounds trial-level parallelism (0 = GOMAXPROCS).
	Workers int
	// SLAs are checked against the aggregate result.
	SLAs []sla.SLA
	// Abort, when non-nil, enables per-trial early abort.
	Abort *AbortRule
	// CRN enables common-random-numbers stream keying.
	CRN bool
	// Antithetic enables antithetic trial pairing (implies CRN keying).
	Antithetic bool
	// FailureBias, when > 1, enables failure-biased importance sampling
	// on the whole-node TTF process. 0 and 1 mean unbiased.
	FailureBias float64
	// Progress, when non-nil, is called from the commit path after each
	// trial is folded into the aggregate, with the number of committed
	// trials and the planned total. Calls arrive strictly in trial order;
	// the callback must not block for long (it stalls aggregation, not
	// simulation) and must not call back into the Runner.
	Progress func(done, total int)
}

// varianceReduced reports whether any technique changes the aggregation
// path (the plain path is kept byte-for-byte identical to the historical
// one — see golden_test.go).
func (r Runner) varianceReduced() bool {
	return r.Antithetic || r.biasActive()
}

func (r Runner) biasActive() bool {
	return r.FailureBias > 0 && r.FailureBias != 1
}

// trialOutcome carries one trial's raw measurements.
type trialOutcome struct {
	availability   float64
	zeroCopy       float64
	tenantAvail    []float64
	meanUnavail    float64
	lost           int64
	repairs        int64
	repairBytes    float64
	nodeFailures   int64
	events         uint64
	repairMakespan float64
	weight         float64 // importance weight (1 when unbiased)
	aborted        bool
	power          power.Stats // zero unless Scenario.Power.Enabled
	err            error
}

// indexedOutcome pairs a trial result with its index for in-order commit.
type indexedOutcome struct {
	idx int
	out trialOutcome
}

// metric indices into the aggregation array.
const (
	mAvail = iota
	mZeroCopy
	mMeanUnavail
	mLost
	mRepairs
	mRepBytes
	mNodeFail
	mMakespan
	// Power/energy indices: always aggregated (zeros when the power
	// subsystem is disabled) but surfaced as metrics only when enabled,
	// so the default result map is unchanged.
	mEnergy
	mITEnergy
	mPeakKW
	mPUE
	mCarbon
	mUtilOutages
	mRideOK
	mGenStarts
	mPowerLoss
	mPDUFail
	mCount
)

// values extracts the aggregated metrics in index order.
func (o *trialOutcome) values(users int) [mCount]float64 {
	return [mCount]float64{
		mAvail:       o.availability,
		mZeroCopy:    o.zeroCopy,
		mMeanUnavail: o.meanUnavail,
		mLost:        float64(o.lost) / float64(users),
		mRepairs:     float64(o.repairs),
		mRepBytes:    o.repairBytes,
		mNodeFail:    float64(o.nodeFailures),
		mMakespan:    o.repairMakespan,
		mEnergy:      o.power.EnergyKWh,
		mITEnergy:    o.power.ITEnergyKWh,
		mPeakKW:      o.power.PeakKW,
		mPUE:         o.power.PUE,
		mCarbon:      o.power.CarbonKg,
		mUtilOutages: float64(o.power.UtilityOutages),
		mRideOK:      float64(o.power.RideThroughOK),
		mGenStarts:   float64(o.power.GeneratorStarts),
		mPowerLoss:   float64(o.power.PowerLossEvents),
		mPDUFail:     float64(o.power.PDUFailures),
	}
}

// aggregator accumulates per-metric estimates. The plain path uses the
// historical Welford accumulators; the variance-reduced path feeds
// pair-mean and/or likelihood-weighted observations into weighted
// estimators.
type aggregator struct {
	weighted bool
	plain    [mCount]stats.Welford
	w        [mCount]stats.WeightedWelford
}

func (a *aggregator) add(vals [mCount]float64, wt float64) {
	if a.weighted {
		for i := range vals {
			a.w[i].Add(vals[i], wt)
		}
		return
	}
	for i := range vals {
		a.plain[i].Add(vals[i])
	}
}

func (a *aggregator) mean(i int) float64 {
	if a.weighted {
		return a.w[i].Mean()
	}
	return a.plain[i].Mean()
}

func (a *aggregator) ci(i int, alpha float64) float64 {
	if a.weighted {
		return a.w[i].CI(alpha)
	}
	return a.plain[i].CI(alpha)
}

func (a *aggregator) n(i int) int64 {
	if a.weighted {
		return a.w[i].N()
	}
	return a.plain[i].N()
}

// Run executes the scenario.
func (r Runner) Run(sc Scenario) (*RunResult, error) {
	return r.RunContext(context.Background(), sc)
}

// RunContext executes the scenario, stopping early (with ctx.Err) when
// the context is cancelled. Cancellation is observed at trial
// granularity: in-flight trials run to completion, no new trials start,
// and the partial aggregate is discarded.
func (r Runner) RunContext(ctx context.Context, sc Scenario) (*RunResult, error) {
	res, err := r.simulate(ctx, sc)
	if err != nil {
		return nil, err
	}
	if err := r.applySLAs(res); err != nil {
		return nil, err
	}
	return res, nil
}

// applySLAs writes the SLA verdicts onto a completed (or cached) result.
func (r Runner) applySLAs(res *RunResult) error {
	if len(r.SLAs) > 0 {
		verdicts, all, err := sla.CheckAll(res, r.SLAs)
		if err != nil {
			return err
		}
		res.Verdicts = verdicts
		res.AllMet = all
		return nil
	}
	res.AllMet = true
	return nil
}

// simulate runs the trial batch and aggregates metrics; SLA checking is
// layered on top so the trial cache can store SLA-free results and reuse
// them across queries with different WHERE thresholds.
func (r Runner) simulate(ctx context.Context, sc Scenario) (*RunResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if r.Trials < 1 {
		return nil, fmt.Errorf("core: Runner.Trials must be >= 1, got %d", r.Trials)
	}
	if r.FailureBias < 0 {
		return nil, fmt.Errorf("core: Runner.FailureBias must be >= 0, got %v", r.FailureBias)
	}
	if r.biasActive() && sc.Cluster.NodeTTF == nil {
		return nil, fmt.Errorf("core: FailureBias needs a whole-node TTF distribution (Cluster.NodeTTF)")
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r.Trials {
		workers = r.Trials
	}

	agg := &aggregator{weighted: r.biasActive()}
	var (
		events      uint64
		aborted     int
		rawTrials   int // trials folded into the aggregate
		tenantAvail []float64
	)

	// Persistent worker pool: each worker claims the next unstarted trial
	// index and streams its outcome back; nothing waits for a batch.
	var next atomic.Int64
	stop := make(chan struct{}) // closed to halt workers after early stop
	results := make(chan indexedOutcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= r.Trials {
					return
				}
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				out := r.runTrial(sc, uint64(i))
				select {
				case results <- indexedOutcome{idx: i, out: out}:
				case <-stop:
					return
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Commit results strictly in trial-index order via a reorder buffer;
	// the early-stop decision is therefore a pure function of the seed.
	// With Antithetic, a committed even trial is held until its odd twin
	// commits (adjacent in commit order) and the pair mean becomes one
	// observation; an unpaired final trial is committed alone.
	var (
		reorder    = make(map[int]trialOutcome)
		nextCommit = 0
		stopped    = false
		firstErr   error
		pending    *trialOutcome // even twin awaiting its antithetic pair
	)
	halt := func() {
		if !stopped {
			stopped = true
			close(stop)
		}
	}
	commit := func(o trialOutcome) {
		events += o.events
		if tenantAvail == nil && len(o.tenantAvail) > 0 {
			// One allocation for the whole pool: every trial of a scenario
			// reports the same tenant count, so the first committed trial
			// fixes the final capacity.
			tenantAvail = make([]float64, 0, r.Trials*len(o.tenantAvail))
		}
		tenantAvail = append(tenantAvail, o.tenantAvail...)
		if o.aborted {
			aborted++
		}
		wt := max1(o.weight)
		if r.Antithetic {
			if pending == nil {
				held := o
				pending = &held
				return
			}
			// Pair mean: weighted within the pair so the pair observation
			// stays a self-normalized estimate of the same quantity.
			p := pending
			pending = nil
			pw := max1(p.weight)
			pv := p.values(sc.Users)
			ov := o.values(sc.Users)
			var vals [mCount]float64
			for i := range vals {
				vals[i] = (pw*pv[i] + wt*ov[i]) / (pw + wt)
			}
			agg.add(vals, (pw+wt)/2)
			rawTrials += 2
			return
		}
		agg.add(o.values(sc.Users), wt)
		rawTrials++
	}
	flushPending := func() {
		if pending != nil {
			agg.add(pending.values(sc.Users), max1(pending.weight))
			rawTrials++
			pending = nil
		}
	}
	for res := range results {
		if stopped {
			continue // drain workers already in flight
		}
		if err := ctx.Err(); err != nil {
			firstErr = err
			halt()
			continue
		}
		reorder[res.idx] = res.out
		for !stopped {
			o, ok := reorder[nextCommit]
			if !ok {
				break
			}
			delete(reorder, nextCommit)
			nextCommit++
			if o.err != nil {
				firstErr = o.err
				halt()
				break
			}
			commit(o)
			if nextCommit == r.Trials {
				flushPending()
			}
			if r.Progress != nil {
				r.Progress(nextCommit, r.Trials)
			}
			if r.TargetCI > 0 && agg.n(mAvail) >= 2 && agg.ci(mAvail, 0.05) < r.TargetCI {
				halt()
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	flushPending()

	// Metric keys are compile-time literals (interned by the compiler);
	// sizing the maps exactly keeps RunResult assembly at two fixed
	// allocations per run, which matters when the Explorer assembles one
	// RunResult per design point across large sweeps.
	metrics := make(map[string]float64, mCount+4)
	metrics["availability"] = agg.mean(mAvail)
	metrics["unavail_fraction"] = 1 - agg.mean(mAvail)
	metrics["zero_copy_fraction"] = agg.mean(mZeroCopy)
	metrics["mean_unavail_objects"] = agg.mean(mMeanUnavail)
	metrics["loss_prob"] = agg.mean(mLost)
	metrics["repairs"] = agg.mean(mRepairs)
	metrics["repair_bytes_mb"] = agg.mean(mRepBytes)
	metrics["node_failures"] = agg.mean(mNodeFail)
	metrics["repair_makespan"] = agg.mean(mMakespan)
	metrics["events"] = float64(events) / float64(rawTrials)
	ci := make(map[string]float64, 3)
	ci["availability"] = agg.ci(mAvail, 0.05)
	ci["loss_prob"] = agg.ci(mLost, 0.05)
	if sc.Power.Enabled {
		metrics["energy_kwh"] = agg.mean(mEnergy)
		metrics["energy_it_kwh"] = agg.mean(mITEnergy)
		metrics["peak_kw"] = agg.mean(mPeakKW)
		metrics["pue"] = agg.mean(mPUE)
		metrics["carbon_kg"] = agg.mean(mCarbon)
		metrics["power_utility_outages"] = agg.mean(mUtilOutages)
		metrics["power_ride_through_ok"] = agg.mean(mRideOK)
		metrics["power_generator_starts"] = agg.mean(mGenStarts)
		metrics["power_loss_events"] = agg.mean(mPowerLoss)
		metrics["power_pdu_failures"] = agg.mean(mPDUFail)
		ci["energy_kwh"] = agg.ci(mEnergy, 0.05)
	}
	res := &RunResult{
		Scenario:           sc.Name,
		Trials:             rawTrials,
		Metrics:            metrics,
		CI:                 ci,
		EventsTotal:        events,
		AbortedTrials:      aborted,
		TenantAvailability: tenantAvail,
	}
	if r.biasActive() {
		// Diagnostic for importance sampling: effective sample size and
		// mean weight (should hover near 1 when the bias is well chosen).
		res.Metrics["is_effective_trials"] = agg.w[mAvail].EffectiveN()
		res.Metrics["is_weight_mean"] = agg.w[mAvail].SumWeights() / float64(agg.w[mAvail].N())
	}
	return res, nil
}

func max1(w float64) float64 {
	if w == 0 {
		return 1
	}
	return w
}

// runTrial builds and runs one independent replication.
func (r Runner) runTrial(sc Scenario, trial uint64) trialOutcome {
	crn := r.CRN || r.Antithetic
	anti := r.Antithetic && trial&1 == 1
	pairBase := trial
	if r.Antithetic {
		pairBase = trial &^ 1 // odd twins share the even twin's stream key
	}
	var s *sim.Simulator
	var placeRng *rng.Source
	if crn {
		s = sim.NewKeyed(sc.Seed, pairBase, anti)
		// Placement is shared (not mirrored) within an antithetic pair:
		// the pair compares mirrored failure draws over one object layout.
		placeRng = rng.Keyed(sc.Seed, pairBase, "placement")
	} else {
		s = sim.New(sc.Seed*1_000_003 + trial)
		placeRng = rng.New(sc.Seed*7_919 + trial)
	}

	var biased *dist.HazardBiased
	if r.biasActive() {
		b, err := dist.NewHazardBiased(sc.Cluster.NodeTTF, r.FailureBias)
		if err != nil {
			return trialOutcome{err: err}
		}
		// Censoring-aware weighting: TTF draws beyond the remaining
		// horizon contribute the bounded survival ratio, keeping weight
		// variance under control at any bias.
		b.Now = s.Now
		b.Horizon = sc.HorizonHours
		biased = b
		sc.Cluster.NodeTTF = biased // sc is a per-trial copy
	}

	cl, err := cluster.Build(s, hardware.DefaultCatalog(), sc.Cluster)
	if err != nil {
		return trialOutcome{err: err}
	}
	view := storage.View{Nodes: cl.Size(), RackOf: rackOf(cl)}
	policy, err := storage.PolicyByName(sc.Placement)
	if err != nil {
		return trialOutcome{err: err}
	}
	st, err := storage.NewStore(view, policy)
	if err != nil {
		return trialOutcome{err: err}
	}
	if err := st.AddObjects(sc.Users, sc.ObjectSizeMB, sc.Scheme, placeRng); err != nil {
		return trialOutcome{err: err}
	}
	mgr, err := repair.NewManager(s, cl, st, sc.Repair)
	if err != nil {
		return trialOutcome{err: err}
	}
	mgr.Start()
	var psys *power.System
	if sc.Power.Enabled {
		psys, err = power.Attach(s, cl, hardware.DefaultCatalog(), sc.Power, sc.HorizonHours)
		if err != nil {
			return trialOutcome{err: err}
		}
	}
	cl.StartFailures()

	if r.Abort != nil {
		every := r.Abort.CheckEvery
		if every == 0 {
			every = 512
		}
		minAvail := r.Abort.MinAvailability
		s.SetAbortCheck(func() bool {
			// Lower bound on final unavailable fraction: unavailable time
			// already accrued divided by the full horizon.
			accrued := mgr.AnyUnavailableFraction() * s.Now()
			return 1-accrued/sc.HorizonHours < minAvail
		}, every)
	}

	s.RunUntil(sc.HorizonHours)

	out := trialOutcome{
		availability: 1 - mgr.AnyUnavailableFraction(),
		zeroCopy:     mgr.ZeroCopyFraction(),
		tenantAvail:  mgr.TenantAvailabilities(),
		meanUnavail:  mgr.MeanUnavailableObjects(),
		lost:         mgr.LostObjects(),
		repairs:      mgr.Completed(),
		repairBytes:  mgr.BytesMovedMB(),
		nodeFailures: cl.NodeFailures(),
		events:       s.Executed(),
		weight:       1,
		aborted:      s.Aborted(),
	}
	if biased != nil {
		out.weight = biased.Weight()
	}
	if psys != nil {
		// Aborted trials stop early; the meter integrates to wherever the
		// clock actually reached.
		out.power = psys.Stats(s.Now())
	}
	if mgr.RepairTimes().N() > 0 {
		out.repairMakespan = mgr.RepairTimes().Max()
	}
	if s.Aborted() {
		// An aborted trial is, by construction, a trial that violated the
		// availability bound; report the bound itself as a conservative
		// (optimistic) availability so aggregates stay monotone.
		out.availability = 1 - mgr.AnyUnavailableFraction()*s.Now()/sc.HorizonHours
	}
	return out
}

// rackOf extracts the rack map for placement.
func rackOf(cl *cluster.Cluster) []int {
	out := make([]int, cl.Size())
	for i, n := range cl.Nodes() {
		out[i] = n.Rack
	}
	return out
}
