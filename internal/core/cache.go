package core

import (
	"context"
	"strconv"

	"repro/internal/dist"
	"repro/internal/repair"
	"repro/internal/results"
)

// TrialCache memoizes completed trial statistics by content address. The
// Explorer consults it before simulating a design point and fills it
// afterwards, so overlapping sweeps — across queries, sessions and (with
// a disk-backed implementation) process restarts — reuse work instead of
// re-simulating. Implementations must be safe for concurrent use and
// must treat cached results as immutable.
//
// Correctness contract: a cached result is the byte-identical statistics
// of a fresh run of the same key. That holds because (a) CacheKey covers
// every input that can influence a run's output — the full scenario, the
// seed and every engine knob that changes the aggregation path — while
// excluding only Workers (runs are Workers-independent by construction)
// and the SLA list (checked after simulation, against cached results
// too), and (b) runs themselves are deterministic functions of that key.
type TrialCache interface {
	// Get returns the cached result for key, or ok=false.
	Get(key string) (*RunResult, bool)
	// Put stores a completed (SLA-free) result under key.
	Put(key string, r *RunResult)
}

// ContextTrialCache is an optional TrialCache extension for caches
// whose lookups do remote I/O (e.g. the serving layer's peer-fetch
// tier). The Explorer prefers GetContext when available, passing the
// sweep's context, so a cancelled job abandons in-flight remote fetches
// instead of leaving them running to their own timeouts.
type ContextTrialCache interface {
	TrialCache
	// GetContext is Get bounded by ctx; a cancelled context must abort
	// any remote fetch and report a miss.
	GetContext(ctx context.Context, key string) (*RunResult, bool)
}

// Gate bounds simulation concurrency across independently-running
// sweeps. The serving layer injects one shared gate into every job's
// Explorer so the whole daemon respects a single worker budget, however
// many queries are in flight.
type Gate interface {
	// Acquire blocks until a slot is free or ctx is done.
	Acquire(ctx context.Context) error
	// Release frees a slot taken by Acquire.
	Release()
}

// CacheKey returns the content address of one (scenario, runner) trial
// batch: a fingerprint over a normalized key/value encoding of every
// field that determines the run's output. Scenario.Name and
// Runner.Workers are deliberately excluded (cosmetic / result-invariant),
// as are the SLAs (applied after simulation). Distributions enter via
// their spec-grammar String() form plus exact-formatted moments and
// quantiles (see distKey), so parameters differing below String()'s
// 6-significant-digit rounding still produce distinct keys.
func CacheKey(sc Scenario, r Runner) string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	b := func(v bool) string { return strconv.FormatBool(v) }
	kv := map[string]string{
		"cluster.racks":              strconv.Itoa(sc.Cluster.Racks),
		"cluster.nodes_per_rack":     strconv.Itoa(sc.Cluster.NodesPerRack),
		"cluster.disk_spec":          sc.Cluster.DiskSpec,
		"cluster.disks_per_node":     strconv.Itoa(sc.Cluster.DisksPerNode),
		"cluster.nic_spec":           sc.Cluster.NICSpec,
		"cluster.cpu_spec":           sc.Cluster.CPUSpec,
		"cluster.mem_spec":           sc.Cluster.MemSpec,
		"cluster.switch_spec":        sc.Cluster.SwitchSpec,
		"cluster.uplink_mbps":        f(sc.Cluster.UplinkMBps),
		"cluster.link_latency":       f(sc.Cluster.LinkLatency),
		"cluster.node_ttf":           distKey(sc.Cluster.NodeTTF),
		"cluster.node_repair":        distKey(sc.Cluster.NodeRepair),
		"cluster.component_failures": b(sc.Cluster.ComponentFailures),
		"cluster.switch_failures":    b(sc.Cluster.SwitchFailures),
		"users":                      strconv.Itoa(sc.Users),
		"object_mb":                  f(sc.ObjectSizeMB),
		"scheme":                     sc.Scheme.String(),
		"placement":                  sc.Placement,
		"repair.mode":                strconv.Itoa(int(sc.Repair.Mode)),
		"repair.max_concurrent":      strconv.Itoa(repairSlots(sc.Repair)),
		"repair.detection":           distKey(sc.Repair.Detection),
		"power.enabled":              b(sc.Power.Enabled),
		"power.pdus":                 strconv.Itoa(sc.Power.PDUs),
		"power.pdu_spec":             sc.Power.PDUSpec,
		"power.ups_spec":             sc.Power.UPSSpec,
		"power.utility_ttf":          distKey(sc.Power.UtilityTTF),
		"power.utility_repair":       distKey(sc.Power.UtilityRepair),
		"power.ups_minutes":          f(sc.Power.UPSMinutes),
		"power.generator_prob":       f(sc.Power.GeneratorStartProb),
		"power.generator_hours":      f(sc.Power.GeneratorStartHours),
		"power.idle_fraction":        f(sc.Power.IdleFraction),
		"power.utilization":          f(sc.Power.Utilization),
		"power.pue":                  f(sc.Power.PUE),
		"power.carbon_intensity":     f(sc.Power.CarbonKgPerKWh),
		"power.cap":                  f(sc.Power.CapFraction),
		"power.cap_start":            f(sc.Power.CapStartHours),
		"power.cap_duration":         f(sc.Power.CapDurationHours),
		"horizon_hours":              f(sc.HorizonHours),
		"seed":                       strconv.FormatUint(sc.Seed, 10),
		"runner.trials":              strconv.Itoa(r.Trials),
		"runner.target_ci":           f(r.TargetCI),
		"runner.crn":                 b(r.CRN),
		"runner.antithetic":          b(r.Antithetic),
		"runner.failure_bias":        f(r.FailureBias),
		"runner.abort":               abortKey(r.Abort),
	}
	return results.Fingerprint(kv)
}

// distKey canonically encodes a distribution for fingerprinting. The
// spec-grammar String() form alone is not enough: it rounds parameters
// to 6 significant digits, so two distributions differing only beyond
// that (e.g. MLE fits of slightly different traces) would collide and
// the cache would serve one scenario's statistics for the other.
// Appending the exact (shortest-round-trip float64) encodings of the
// mean, variance and three quantiles makes a collision require the two
// distributions to agree bit-exactly on five functionals *and* share a
// family and 6-digit parameters — at which point they are the same
// sampler for every practical purpose.
func distKey(d dist.Dist) string {
	if d == nil {
		return ""
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return d.String() +
		"|m=" + f(d.Mean()) +
		"|v=" + f(d.Variance()) +
		"|q25=" + f(d.Quantile(0.25)) +
		"|q50=" + f(d.Quantile(0.5)) +
		"|q90=" + f(d.Quantile(0.9))
}

// repairSlots normalizes the concurrency knob: in Serial mode
// MaxConcurrent is ignored by the repair manager, so two configs that
// differ only there are the same run.
func repairSlots(c repair.Config) int {
	if c.Mode == repair.Serial {
		return 1
	}
	return c.MaxConcurrent
}

func abortKey(a *AbortRule) string {
	if a == nil {
		return ""
	}
	return strconv.FormatFloat(a.MinAvailability, 'g', -1, 64) + "/" +
		strconv.FormatUint(a.CheckEvery, 10)
}

// cloneForSLA returns a copy whose SLA verdict fields can be written
// without mutating the (shared, immutable) cached result. Metric maps
// are shared read-only.
func (r *RunResult) cloneForSLA() *RunResult {
	c := *r
	c.Verdicts = nil
	c.AllMet = false
	return &c
}
