package core

import (
	"math"
	"testing"
)

// TestGoldenFixedSeedScenario pins the exact trajectory of a fixed-seed
// scenario: availability, repair activity and event counts must be
// byte-identical across engine refactors. The event calendar and the
// trial scheduler are allowed to change *how* they execute (heap layout,
// worker pooling) but never *what* executes — (time, seq) event order and
// trial-index aggregation order are part of the engine's contract.
//
// If this test fails, the change being made altered simulation semantics,
// not just performance. Do not update the constants without establishing
// which model-level change (new draw, reordered stream, different tie
// break) moved them, and saying so in the commit.
func TestGoldenFixedSeedScenario(t *testing.T) {
	sc := quickScenario()
	sc.Seed = 12345
	// Workers: 2 exercises the concurrent trial scheduler; aggregation
	// must still happen in trial-index order so the result matches a
	// sequential run exactly.
	res, err := Runner{Trials: 3, Workers: 2}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	exact := func(name string, got, want float64) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %.17g, want exactly %.17g (diff %g)", name, got, want, got-want)
		}
	}
	exact("availability", res.Metrics["availability"], 0.99503457932580275)
	exact("zero_copy_fraction", res.Metrics["zero_copy_fraction"], 0)
	exact("loss_prob", res.Metrics["loss_prob"], 0)
	exact("repairs", res.Metrics["repairs"], 1131.6666666666667)
	exact("repair_bytes_mb", res.Metrics["repair_bytes_mb"], 11316.666666666666)
	exact("node_failures", res.Metrics["node_failures"], 34)
	if res.EventsTotal != 10389 {
		t.Errorf("events_total = %d, want exactly 10389", res.EventsTotal)
	}
	if len(res.TenantAvailability) != 300 {
		t.Fatalf("tenant pool size = %d, want 300", len(res.TenantAvailability))
	}
	sum := 0.0
	for _, v := range res.TenantAvailability {
		sum += v
	}
	exact("tenant_availability_sum", sum, 299.88663243254626)

	// The same scenario run sequentially must agree bit-for-bit with the
	// concurrent run above.
	seq, err := Runner{Trials: 3, Workers: 1}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"availability", "repairs", "node_failures", "events"} {
		if a, b := res.Metrics[name], seq.Metrics[name]; a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Errorf("workers=2 vs workers=1 diverge on %s: %.17g vs %.17g", name, a, b)
		}
	}
	if res.EventsTotal != seq.EventsTotal {
		t.Errorf("workers=2 vs workers=1 diverge on events: %d vs %d", res.EventsTotal, seq.EventsTotal)
	}
}
