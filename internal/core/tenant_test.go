package core

import (
	"testing"

	"repro/internal/sla"
)

func TestTenantAvailabilityPooled(t *testing.T) {
	res, err := Runner{Trials: 3, Workers: 1}.Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	// One availability value per tenant per trial.
	want := 3 * 100
	if len(res.TenantAvailability) != want {
		t.Fatalf("tenant pool size = %d, want %d", len(res.TenantAvailability), want)
	}
	for i, a := range res.TenantAvailability {
		if a < 0 || a > 1 {
			t.Fatalf("tenant %d availability %v outside [0,1]", i, a)
		}
	}
}

func TestTenantAvailabilityConsistentWithGlobal(t *testing.T) {
	// If global availability < 1, some tenant must be below 1 too; if all
	// tenants are at 1, the any-unavailable fraction must be 0.
	res, err := Runner{Trials: 4, Workers: 1}.Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	anyBelow := false
	for _, a := range res.TenantAvailability {
		if a < 1 {
			anyBelow = true
			break
		}
	}
	globalBelow := res.Metrics["availability"] < 1
	if globalBelow != anyBelow {
		t.Fatalf("global availability %v but tenant-below-1 = %v",
			res.Metrics["availability"], anyBelow)
	}
}

func TestTenantDistributionSLAEndToEnd(t *testing.T) {
	// §3's question form: do 95% of customers see >= 99.5%? (The quick
	// scenario's 6-hour detection windows put ~25% of tenant-trials below
	// three nines, but every tenant stays above 0.995, so this threshold
	// separates cleanly from the impossible 100%-at-1.0 SLA below.)
	easySLA := TenantAvailabilitySLA(0.95, 0.995)
	hardSLA := TenantAvailabilitySLA(1.0, 1.0)
	res, err := Runner{Trials: 4, Workers: 1, SLAs: nil}.Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	easy, err := easySLA.Check(res)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := hardSLA.Check(res)
	if err != nil {
		t.Fatal(err)
	}
	// The quick scenario has some unavailability windows (detection 6h);
	// most tenants are untouched and none drops far, so the 95%@0.995 SLA
	// holds while the 100%@perfect SLA fails.
	if !easy.Met {
		t.Errorf("95%%-of-tenants SLA should be met: %v", easy)
	}
	if hard.Met {
		t.Errorf("100%%-at-1.0 SLA should fail: %v", hard)
	}
	// Checking against a non-RunResult errors.
	if _, err := easySLA.Check(sla.MapResult{}); err == nil {
		t.Error("tenant SLA accepted a result without tenant data")
	}
}
