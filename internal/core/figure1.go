package core

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Figure1Config parameterizes one point of the paper's Figure 1: the
// probability that at least one of Users customers loses its majority
// quorum when exactly Failures of N nodes are down, under the given
// placement policy and replication factor.
type Figure1Config struct {
	N         int    // cluster size (10 or 30 in the paper)
	Replicas  int    // replication factor (3 or 5)
	Failures  int    // number of simultaneously failed nodes (x-axis)
	Users     int    // 10,000 in the paper
	Placement string // "random" or "roundrobin"
	Trials    int
	Seed      uint64
}

// Validate checks the configuration.
func (c Figure1Config) Validate() error {
	if c.N < 1 || c.Replicas < 1 || c.Replicas > c.N {
		return fmt.Errorf("core: figure1 needs 1 <= replicas <= N, got n=%d N=%d", c.Replicas, c.N)
	}
	if c.Failures < 0 || c.Failures > c.N {
		return fmt.Errorf("core: figure1 failures %d outside [0, %d]", c.Failures, c.N)
	}
	if c.Users < 1 {
		return fmt.Errorf("core: figure1 needs >= 1 user, got %d", c.Users)
	}
	if c.Trials < 1 {
		return fmt.Errorf("core: figure1 needs >= 1 trial, got %d", c.Trials)
	}
	if _, err := storage.PolicyByName(c.Placement); err != nil {
		return err
	}
	return nil
}

// Figure1Result is a Monte-Carlo estimate with its Wilson 95% interval
// and, when available, the exact combinatorial value (the §4.3 validation
// baseline).
type Figure1Result struct {
	Config      Figure1Config
	Probability float64
	CILo, CIHi  float64
	Exact       float64 // NaN-free: -1 when no closed form applies
}

// Figure1MonteCarlo estimates one Figure-1 point by simulation: each
// trial draws a placement (for randomized policies) and a uniformly
// random set of failed nodes, then asks whether any user lost quorum.
func Figure1MonteCarlo(cfg Figure1Config) (Figure1Result, error) {
	if err := cfg.Validate(); err != nil {
		return Figure1Result{}, err
	}
	policy, err := storage.PolicyByName(cfg.Placement)
	if err != nil {
		return Figure1Result{}, err
	}
	view := storage.View{Nodes: cfg.N}
	r := rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15)

	// RoundRobin placement is deterministic: place once, resample failure
	// sets. Random placement: resample placements every trial (we fix the
	// failed set by symmetry — any f-subset is equivalent).
	deterministicPlacement := cfg.Placement == "roundrobin"
	var fixedStore *storage.Store
	if deterministicPlacement {
		fixedStore, err = buildFigure1Store(view, policy, cfg, r)
		if err != nil {
			return Figure1Result{}, err
		}
	}

	hits := int64(0)
	down := make([]bool, cfg.N)
	for trial := 0; trial < cfg.Trials; trial++ {
		st := fixedStore
		if !deterministicPlacement {
			st, err = buildFigure1Store(view, policy, cfg, r)
			if err != nil {
				return Figure1Result{}, err
			}
		}
		for i := range down {
			down[i] = false
		}
		if deterministicPlacement {
			// Random failure set.
			for _, f := range r.Sample(cfg.N, cfg.Failures) {
				down[f] = true
			}
		} else {
			// Fixed failure set {0..f-1}; placement is the random part.
			for i := 0; i < cfg.Failures; i++ {
				down[i] = true
			}
		}
		if st.AnyUnavailable(func(n int) bool { return down[n] }) {
			hits++
		}
	}
	p := float64(hits) / float64(cfg.Trials)
	lo, hi := stats.BinomialCI(hits, int64(cfg.Trials), 0.05)

	exact := -1.0
	if ex, err := analytic.Figure1Exact(analytic.Figure1Point{
		Placement: cfg.Placement, N: cfg.N, Replicas: cfg.Replicas,
		Failures: cfg.Failures, Users: cfg.Users,
	}); err == nil {
		exact = ex
	}
	return Figure1Result{Config: cfg, Probability: p, CILo: lo, CIHi: hi, Exact: exact}, nil
}

// buildFigure1Store creates and populates a store for one trial.
func buildFigure1Store(view storage.View, policy storage.Policy, cfg Figure1Config, r *rng.Source) (*storage.Store, error) {
	st, err := storage.NewStore(view, policy)
	if err != nil {
		return nil, err
	}
	if err := st.AddObjects(cfg.Users, 1, storage.ReplicationScheme(cfg.Replicas), r); err != nil {
		return nil, err
	}
	return st, nil
}

// Figure1Curve sweeps failures 0..N for one configuration, returning one
// result per x-value — one curve of the paper's Figure 1.
func Figure1Curve(base Figure1Config) ([]Figure1Result, error) {
	out := make([]Figure1Result, 0, base.N+1)
	for f := 0; f <= base.N; f++ {
		cfg := base
		cfg.Failures = f
		res, err := Figure1MonteCarlo(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
