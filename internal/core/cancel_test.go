package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/design"
	"repro/internal/dist"
	"repro/internal/power"
	"repro/internal/repair"
	"repro/internal/sla"
)

// smallScenario is a fast scenario for cancellation/cache tests.
func smallScenario() Scenario {
	sc := DefaultScenario()
	sc.Users = 50
	sc.HorizonHours = 500
	return sc
}

func TestRunnerContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Runner{Trials: 50}.RunContext(ctx, smallScenario())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestExplorerContextCancelled(t *testing.T) {
	space, err := design.NewSpace(design.Dimension{
		Name:   "cluster.nodes_per_rack",
		Values: []design.Value{float64(5), float64(6), float64(7), float64(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	e := &Explorer{
		Space: space,
		Build: func(p design.Point) (Scenario, []sla.SLA, error) {
			sc := smallScenario()
			sc.Cluster.NodesPerRack = int(p.MustValue("cluster.nodes_per_rack").(float64))
			return sc, nil, nil
		},
		Runner:  Runner{Trials: 3},
		Workers: 1,
		Progress: func(done, total int, out PointOutcome) {
			once.Do(cancel) // cancel as soon as the first point commits
		},
	}
	_, err = e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunnerProgressInOrder(t *testing.T) {
	var seen []int
	r := Runner{Trials: 6, Progress: func(done, total int) {
		if total != 6 {
			t.Errorf("total = %d, want 6", total)
		}
		seen = append(seen, done)
	}}
	if _, err := r.Run(smallScenario()); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("progress called %d times, want 6", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress out of order: %v", seen)
		}
	}
}

// TestCacheKeyCoverage checks that every knob that changes a run's output
// changes the key, and that excluded knobs (Workers, Name, SLAs) do not.
func TestCacheKeyCoverage(t *testing.T) {
	// Structural guard: CacheKey hand-enumerates the fields of these
	// structs, so any field added to one of them MUST be triaged — into
	// the key if it can affect a run's output, into the documented
	// exclusion list if not — and this count bumped. Skipping that
	// triage means semantically different scenarios silently share
	// cached results.
	for _, tc := range []struct {
		name string
		typ  reflect.Type
		want int
	}{
		{"core.Scenario", reflect.TypeOf(Scenario{}), 10},
		{"cluster.Config", reflect.TypeOf(cluster.Config{}), 14},
		{"repair.Config", reflect.TypeOf(repair.Config{}), 3},
		{"power.Config", reflect.TypeOf(power.Config{}), 16},
		{"core.Runner", reflect.TypeOf(Runner{}), 9},
	} {
		if got := tc.typ.NumField(); got != tc.want {
			t.Fatalf("%s grew from %d to %d fields: triage the new field(s) into CacheKey "+
				"(or its documented exclusions) and update this count", tc.name, tc.want, got)
		}
	}

	base := smallScenario()
	r := Runner{Trials: 4}
	k0 := CacheKey(base, r)

	if CacheKey(base, r) != k0 {
		t.Fatal("cache key not deterministic")
	}

	// Result-invariant knobs must not change the key.
	named := base
	named.Name = "other-name"
	if CacheKey(named, r) != k0 {
		t.Error("Scenario.Name should not affect the cache key")
	}
	workers := r
	workers.Workers = 7
	if CacheKey(base, workers) != k0 {
		t.Error("Runner.Workers should not affect the cache key")
	}
	withSLA := r
	withSLA.SLAs = []sla.SLA{mustAvailability(t, 0.9)}
	if CacheKey(base, withSLA) != k0 {
		t.Error("Runner.SLAs should not affect the cache key")
	}

	// Output-determining knobs must each change the key.
	muts := map[string]func(sc *Scenario, r *Runner){
		"seed":         func(sc *Scenario, r *Runner) { sc.Seed++ },
		"users":        func(sc *Scenario, r *Runner) { sc.Users++ },
		"horizon":      func(sc *Scenario, r *Runner) { sc.HorizonHours++ },
		"racks":        func(sc *Scenario, r *Runner) { sc.Cluster.Racks++ },
		"placement":    func(sc *Scenario, r *Runner) { sc.Placement = "roundrobin" },
		"trials":       func(sc *Scenario, r *Runner) { r.Trials++ },
		"target_ci":    func(sc *Scenario, r *Runner) { r.TargetCI = 0.001 },
		"crn":          func(sc *Scenario, r *Runner) { r.CRN = true },
		"antithetic":   func(sc *Scenario, r *Runner) { r.Antithetic = true },
		"failure_bias": func(sc *Scenario, r *Runner) { r.FailureBias = 3 },
		"abort":        func(sc *Scenario, r *Runner) { r.Abort = &AbortRule{MinAvailability: 0.9} },
	}
	seen := map[string]string{k0: "base"}
	for name, mut := range muts {
		sc, rr := base, r
		mut(&sc, &rr)
		k := CacheKey(sc, rr)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutating %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestCacheKeyDistSubRoundingPrecision guards the distKey encoding:
// distribution parameters that differ only below String()'s 6
// significant digits (e.g. MLE fits of slightly different traces) must
// still produce distinct keys, or the cache would serve one scenario's
// statistics for the other.
func TestCacheKeyDistSubRoundingPrecision(t *testing.T) {
	r := Runner{Trials: 4}
	a := smallScenario()
	b := smallScenario()
	var err error
	if a.Cluster.NodeTTF, err = dist.NewWeibull(0.7, 12000.0000001); err != nil {
		t.Fatal(err)
	}
	if b.Cluster.NodeTTF, err = dist.NewWeibull(0.7, 12000.0000002); err != nil {
		t.Fatal(err)
	}
	if a.Cluster.NodeTTF.String() != b.Cluster.NodeTTF.String() {
		t.Skip("String() no longer rounds; plain encoding suffices")
	}
	if CacheKey(a, r) == CacheKey(b, r) {
		t.Fatal("cache keys collide for distributions differing below String() precision")
	}
}

func mustAvailability(t *testing.T, min float64) sla.SLA {
	t.Helper()
	s, err := sla.NewAvailability(min)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mapCache is a minimal TrialCache for explorer tests.
type mapCache struct {
	mu sync.Mutex
	m  map[string]*RunResult
}

func (c *mapCache) Get(key string) (*RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *mapCache) Put(key string, r *RunResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[string]*RunResult{}
	}
	c.m[key] = r
}

// TestExplorerCacheHitsAreIdentical runs the same sweep cold and warm
// against one cache and requires identical outcomes with a 100% hit rate
// on the repeat.
func TestExplorerCacheHitsAreIdentical(t *testing.T) {
	space, err := design.NewSpace(design.Dimension{
		Name:   "cluster.nodes_per_rack",
		Values: []design.Value{float64(5), float64(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := &mapCache{}
	mk := func() *Explorer {
		return &Explorer{
			Space: space,
			Build: func(p design.Point) (Scenario, []sla.SLA, error) {
				sc := smallScenario()
				sc.Cluster.NodesPerRack = int(p.MustValue("cluster.nodes_per_rack").(float64))
				return sc, []sla.SLA{mustAvailability(t, 0.5)}, nil
			},
			Runner: Runner{Trials: 4},
			Cache:  cache,
		}
	}
	cold, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Fatalf("cold run reported %d cache hits", cold.CacheHits)
	}
	warm, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != len(warm.Outcomes) {
		t.Fatalf("warm run hit %d/%d points", warm.CacheHits, len(warm.Outcomes))
	}
	if warm.Executed != cold.Executed || warm.Events != cold.Events {
		t.Fatalf("warm totals differ: executed %d/%d events %d/%d",
			warm.Executed, cold.Executed, warm.Events, cold.Events)
	}
	for i := range cold.Outcomes {
		c, w := cold.Outcomes[i].Result, warm.Outcomes[i].Result
		if len(c.Metrics) != len(w.Metrics) {
			t.Fatalf("point %d: metric count differs", i)
		}
		for k, v := range c.Metrics {
			if w.Metrics[k] != v {
				t.Fatalf("point %d metric %s: cold %v warm %v", i, k, v, w.Metrics[k])
			}
		}
		if c.AllMet != w.AllMet || len(c.Verdicts) != len(w.Verdicts) {
			t.Fatalf("point %d: SLA verdicts differ between cold and warm run", i)
		}
	}
}
