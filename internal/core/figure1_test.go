package core

import (
	"math"
	"testing"
)

func TestFigure1MCMatchesExactRandom(t *testing.T) {
	// §4.3 validation: the Monte-Carlo wind tunnel must agree with the
	// closed-form combinatorics.
	for _, f := range []int{1, 2, 3} {
		cfg := Figure1Config{
			N: 10, Replicas: 3, Failures: f, Users: 1000,
			Placement: "random", Trials: 4000, Seed: 42,
		}
		res, err := Figure1MonteCarlo(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Exact < 0 {
			t.Fatalf("f=%d: no exact value computed", f)
		}
		// The exact value should be inside (slightly widened) Wilson CI.
		slack := 0.02
		if res.Exact < res.CILo-slack || res.Exact > res.CIHi+slack {
			t.Errorf("f=%d: exact %v outside MC CI [%v, %v]",
				f, res.Exact, res.CILo, res.CIHi)
		}
	}
}

func TestFigure1MCMatchesExactRoundRobin(t *testing.T) {
	for _, f := range []int{2, 4, 6} {
		cfg := Figure1Config{
			N: 10, Replicas: 3, Failures: f, Users: 1000,
			Placement: "roundrobin", Trials: 4000, Seed: 7,
		}
		res, err := Figure1MonteCarlo(cfg)
		if err != nil {
			t.Fatal(err)
		}
		slack := 0.02
		if res.Exact < res.CILo-slack || res.Exact > res.CIHi+slack {
			t.Errorf("f=%d: exact %v outside MC CI [%v, %v]",
				f, res.Exact, res.CILo, res.CIHi)
		}
	}
}

func TestFigure1CurveShape(t *testing.T) {
	// The paper's qualitative claims: monotone in failures, 0 at f=0,
	// 1 at f=N.
	curve, err := Figure1Curve(Figure1Config{
		N: 10, Replicas: 3, Users: 1000, Placement: "roundrobin",
		Trials: 1500, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 11 {
		t.Fatalf("curve has %d points, want 11", len(curve))
	}
	if curve[0].Probability != 0 {
		t.Errorf("P(unavail | 0 failures) = %v, want 0", curve[0].Probability)
	}
	if curve[10].Probability != 1 {
		t.Errorf("P(unavail | all failed) = %v, want 1", curve[10].Probability)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Probability < curve[i-1].Probability-0.05 {
			t.Errorf("curve not (approximately) monotone at f=%d: %v < %v",
				i, curve[i].Probability, curve[i-1].Probability)
		}
	}
}

func TestFigure1HigherReplicationShiftsCurve(t *testing.T) {
	// n=5 curve must lie at or below n=3 at small failure counts.
	for _, f := range []int{2, 3} {
		p3, err := Figure1MonteCarlo(Figure1Config{
			N: 30, Replicas: 3, Failures: f, Users: 10000,
			Placement: "random", Trials: 1500, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		p5, err := Figure1MonteCarlo(Figure1Config{
			N: 30, Replicas: 5, Failures: f, Users: 10000,
			Placement: "random", Trials: 1500, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if p5.Probability > p3.Probability+0.05 {
			t.Errorf("f=%d: n=5 prob %v exceeds n=3 prob %v",
				f, p5.Probability, p3.Probability)
		}
	}
}

func TestFigure1Validation(t *testing.T) {
	bad := Figure1Config{N: 10, Replicas: 11, Failures: 1, Users: 10, Placement: "random", Trials: 10}
	if _, err := Figure1MonteCarlo(bad); err == nil {
		t.Error("replicas > N accepted")
	}
	bad = Figure1Config{N: 10, Replicas: 3, Failures: 11, Users: 10, Placement: "random", Trials: 10}
	if _, err := Figure1MonteCarlo(bad); err == nil {
		t.Error("failures > N accepted")
	}
	bad = Figure1Config{N: 10, Replicas: 3, Failures: 1, Users: 10, Placement: "bogus", Trials: 10}
	if _, err := Figure1MonteCarlo(bad); err == nil {
		t.Error("unknown placement accepted")
	}
	bad = Figure1Config{N: 10, Replicas: 3, Failures: 1, Users: 0, Placement: "random", Trials: 10}
	if _, err := Figure1MonteCarlo(bad); err == nil {
		t.Error("0 users accepted")
	}
}

func TestInteractionGraphConflicts(t *testing.T) {
	g := NewInteractionGraph()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Add(ModelDecl{Name: "transfer", Reads: []string{"net"}, Writes: []string{"machine-1"}}))
	must(g.Add(ModelDecl{Name: "workload-1", Reads: []string{"machine-1"}, Writes: []string{"machine-1"}}))
	must(g.Add(ModelDecl{Name: "disk-failure", Writes: []string{"disk-9"}}))
	must(g.Add(ModelDecl{Name: "switch-failure", Writes: []string{"switch-0"}}))

	// The paper's examples: transfer and workload on the same machine
	// interact; disk failure and switch failure do not.
	c, err := g.Conflicts("transfer", "workload-1")
	if err != nil || !c {
		t.Errorf("transfer/workload should conflict (err %v)", err)
	}
	c, err = g.Conflicts("disk-failure", "switch-failure")
	if err != nil || c {
		t.Errorf("disk/switch failure models should be independent (err %v)", err)
	}
	if _, err := g.Conflicts("transfer", "nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if err := g.Add(ModelDecl{Name: "transfer"}); err == nil {
		t.Error("duplicate model accepted")
	}
	if err := g.Add(ModelDecl{}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestInteractionGraphIslands(t *testing.T) {
	g := NewInteractionGraph()
	for _, m := range []ModelDecl{
		{Name: "a", Writes: []string{"r1"}},
		{Name: "b", Reads: []string{"r1"}},
		{Name: "c", Writes: []string{"r2"}},
		{Name: "d", Reads: []string{"r2"}, Writes: []string{"r3"}},
		{Name: "e", Writes: []string{"r4"}},
	} {
		if err := g.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	islands := g.Islands()
	// {a,b}, {c,d}, {e}.
	if len(islands) != 3 {
		t.Fatalf("islands = %v, want 3 groups", islands)
	}
	if len(islands[0]) != 2 || islands[0][0] != "a" || islands[0][1] != "b" {
		t.Errorf("first island = %v, want [a b]", islands[0])
	}
	if len(islands[2]) != 1 || islands[2][0] != "e" {
		t.Errorf("last island = %v, want [e]", islands[2])
	}
}

func TestInteractionGraphParallelBatches(t *testing.T) {
	g := ScenarioInteractionGraph(4)
	batches := g.ParallelBatches()
	if len(batches) == 0 {
		t.Fatal("no batches")
	}
	// First batch must contain all 4 disk-failure models AND the switch
	// model (mutually independent).
	if len(batches[0]) != 5 {
		t.Fatalf("first batch = %v, want 4 disk models + switch", batches[0])
	}
	// Every model appears exactly once overall.
	seen := map[string]int{}
	for _, b := range batches {
		for _, m := range b {
			seen[m]++
		}
	}
	for _, m := range g.Models() {
		if seen[m] != 1 {
			t.Errorf("model %s scheduled %d times", m, seen[m])
		}
	}
	// Repair conflicts with everything, so it must be in its own batch.
	last := batches[len(batches)-1]
	if len(last) != 1 || last[0] != "repair" {
		t.Errorf("repair not isolated: %v", batches)
	}
}

func TestFigure1ExactAgreesWithMCUnderBothPolicies(t *testing.T) {
	// Cross-check MC estimates against each other at a shared point where
	// both have exact values: the probabilities must both be in [0,1] and
	// RR <= Random at small f (paper shape).
	rr, err := Figure1MonteCarlo(Figure1Config{
		N: 10, Replicas: 3, Failures: 2, Users: 10000,
		Placement: "roundrobin", Trials: 3000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Figure1MonteCarlo(Figure1Config{
		N: 10, Replicas: 3, Failures: 2, Users: 10000,
		Placement: "random", Trials: 3000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(rr.Probability < rd.Probability) {
		t.Errorf("RR prob %v should be below Random prob %v at f=2, 10k users",
			rr.Probability, rd.Probability)
	}
	// And the exact values agree with the hand-computed 20/45 and ~1.
	if math.Abs(rr.Exact-20.0/45) > 1e-9 {
		t.Errorf("RR exact = %v, want %v", rr.Exact, 20.0/45)
	}
	if rd.Exact < 0.999 {
		t.Errorf("Random exact = %v, want ~1 with 10k users", rd.Exact)
	}
}
