package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/design"
	"repro/internal/sla"
)

// PointOutcome is the result of one design point in a sweep.
type PointOutcome struct {
	Point  design.Point
	Result *RunResult // nil when pruned
	Pruned bool
	AllMet bool
	// Objective is the optimization value (lower is better) when the
	// explorer has an objective function.
	Objective float64
}

// Exploration summarizes a design-space sweep.
type Exploration struct {
	Outcomes []PointOutcome
	Executed int
	Pruned   int
	Events   uint64
}

// Passing returns the outcomes that met every SLA, sorted by ascending
// objective (stable for equal objectives).
func (e *Exploration) Passing() []PointOutcome {
	var out []PointOutcome
	for _, o := range e.Outcomes {
		if !o.Pruned && o.AllMet {
			out = append(out, o)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Objective < out[j].Objective })
	return out
}

// Best returns the passing outcome with the lowest objective, or an error
// if nothing passed.
func (e *Exploration) Best() (PointOutcome, error) {
	passing := e.Passing()
	if len(passing) == 0 {
		return PointOutcome{}, fmt.Errorf("core: no configuration met all SLAs")
	}
	return passing[0], nil
}

// Explorer sweeps a design space, building a scenario per point and
// running it (§4.2's "queries to the wind tunnel ... iterate over a vast
// design space"). With Prune enabled, points are visited in the space's
// best-first order and the dominance rule skips guaranteed failures;
// otherwise points run concurrently on Workers goroutines.
type Explorer struct {
	Space *design.Space
	// Build maps a design point to a runnable scenario and its SLAs.
	Build func(p design.Point) (Scenario, []sla.SLA, error)
	// Runner configures trial replication per point.
	Runner Runner
	// Prune enables §4.2 dominance pruning (forces sequential points).
	Prune bool
	// Workers bounds point-level parallelism when not pruning.
	Workers int
	// Objective, when non-nil, scores passing points (lower = better).
	Objective func(p design.Point, r *RunResult) (float64, error)
}

// Run executes the sweep.
func (e *Explorer) Run() (*Exploration, error) {
	if e.Space == nil || e.Build == nil {
		return nil, fmt.Errorf("core: explorer needs a space and a build function")
	}
	points := e.Space.Points()
	if e.Prune {
		return e.runSequential(points)
	}
	return e.runParallel(points)
}

// runSequential visits points best-first with dominance pruning.
func (e *Explorer) runSequential(points []design.Point) (*Exploration, error) {
	pruner := design.NewPruner(e.Space)
	exp := &Exploration{}
	for _, p := range points {
		if pruner.Dominated(p) {
			exp.Outcomes = append(exp.Outcomes, PointOutcome{Point: p, Pruned: true})
			exp.Pruned++
			continue
		}
		out, err := e.runPoint(p)
		if err != nil {
			return nil, err
		}
		exp.Executed++
		exp.Events += out.Result.EventsTotal
		if !out.AllMet {
			pruner.RecordFailure(p)
		}
		exp.Outcomes = append(exp.Outcomes, out)
	}
	return exp, nil
}

// runParallel fans points out over a worker pool.
func (e *Explorer) runParallel(points []design.Point) (*Exploration, error) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type slot struct {
		out PointOutcome
		err error
	}
	results := make([]slot, len(points))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, p := range points {
		wg.Add(1)
		go func(i int, p design.Point) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out, err := e.runPoint(p)
			results[i] = slot{out: out, err: err}
		}(i, p)
	}
	wg.Wait()
	exp := &Exploration{}
	for _, s := range results {
		if s.err != nil {
			return nil, s.err
		}
		exp.Executed++
		exp.Events += s.out.Result.EventsTotal
		exp.Outcomes = append(exp.Outcomes, s.out)
	}
	return exp, nil
}

// runPoint builds and runs one scenario.
func (e *Explorer) runPoint(p design.Point) (PointOutcome, error) {
	sc, slas, err := e.Build(p)
	if err != nil {
		return PointOutcome{}, fmt.Errorf("core: building point %s: %w", p.Key(), err)
	}
	runner := e.Runner
	runner.SLAs = slas
	res, err := runner.Run(sc)
	if err != nil {
		return PointOutcome{}, fmt.Errorf("core: running point %s: %w", p.Key(), err)
	}
	out := PointOutcome{Point: p, Result: res, AllMet: res.AllMet}
	if e.Objective != nil && res.AllMet {
		obj, err := e.Objective(p, res)
		if err != nil {
			return PointOutcome{}, fmt.Errorf("core: scoring point %s: %w", p.Key(), err)
		}
		out.Objective = obj
	}
	return out, nil
}
