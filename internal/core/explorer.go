package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/design"
	"repro/internal/sla"
)

// PointOutcome is the result of one design point in a sweep.
type PointOutcome struct {
	Point design.Point
	// Index is the point's position in the full space's point order.
	// Without a Subset it equals the commit position; with one it is the
	// global index, which is what lets a sharded fleet merge per-worker
	// outcome streams back into the exact single-sweep order.
	Index  int
	Result *RunResult // nil when pruned; analytic estimates when screened
	Pruned bool
	// Screened reports that the point was decided by the analytic
	// screening pass (§2.2) without simulation; Decision says which way.
	Screened bool
	Decision ScreenDecision
	// FromCache reports that Result was served from the trial cache
	// rather than a fresh simulation. By the cache contract it is
	// byte-identical to what the simulation would have produced, so it
	// counts as Executed in the Exploration totals.
	FromCache bool
	AllMet    bool
	// Objective is the optimization value (lower is better) when the
	// explorer has an objective function.
	Objective float64
	// Started/Elapsed/Waited time the point's execution (build + screen +
	// cache lookup + simulate), with Waited the portion spent blocked on
	// the Gate. They feed the serving layer's telemetry (latency
	// histograms, trace spans) and are not part of any wire format or
	// rendered output — fleet byte-identity never sees them.
	Started time.Time
	Elapsed time.Duration
	Waited  time.Duration
}

// Exploration summarizes a design-space sweep.
type Exploration struct {
	Outcomes []PointOutcome
	Executed int
	Pruned   int
	// Screened counts points decided analytically without simulation.
	// Every screened point still appears in Outcomes — nothing is
	// silently skipped.
	Screened int
	// CacheHits counts executed points whose results were served from
	// the trial cache. Cached points still count in Executed and Events,
	// keeping the reported totals identical between a cold and a warm
	// sweep (a cache hit stands for the exact events it once simulated).
	CacheHits int
	Events    uint64
}

// Passing returns the outcomes that met every SLA, sorted by ascending
// objective (stable for equal objectives).
func (e *Exploration) Passing() []PointOutcome {
	var out []PointOutcome
	for _, o := range e.Outcomes {
		if !o.Pruned && o.AllMet {
			out = append(out, o)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Objective < out[j].Objective })
	return out
}

// Best returns the passing outcome with the lowest objective, or an error
// if nothing passed.
func (e *Exploration) Best() (PointOutcome, error) {
	passing := e.Passing()
	if len(passing) == 0 {
		return PointOutcome{}, fmt.Errorf("core: no configuration met all SLAs")
	}
	return passing[0], nil
}

// Explorer sweeps a design space, building a scenario per point and
// running it (§4.2's "queries to the wind tunnel ... iterate over a vast
// design space"). Points run on a persistent worker pool and their
// outcomes are committed strictly in the space's point order, so a sweep
// is bit-identical for any Workers setting. With Prune enabled, points
// are visited in the space's best-first order and §4.2's dominance rule
// skips guaranteed failures; pruning composes with the worker pool by
// running uncertain points speculatively — dominance only ever grows as
// failures are committed, so a point a worker observes as dominated stays
// dominated at commit time, and a speculatively-run point that commits as
// dominated is discarded exactly as the sequential order would have.
type Explorer struct {
	Space *design.Space
	// Build maps a design point to a runnable scenario and its SLAs.
	Build func(p design.Point) (Scenario, []sla.SLA, error)
	// Runner configures trial replication per point.
	Runner Runner
	// Prune enables §4.2 dominance pruning.
	Prune bool
	// Screen, when non-nil, enables the §2.2 analytic screening pass:
	// each point is first evaluated with the closed-form birth–death
	// model and skips simulation entirely when the analytic bound clears
	// (or provably misses) every availability SLA by the rule's margin.
	// Screening decisions are pure functions of the point, so sweeps stay
	// bit-identical for any Workers count, and screened points are
	// reported in Outcomes with Screened set. A screened-pass point's
	// Result carries analytic estimates, and the Objective function (if
	// any) is evaluated against it — objectives that need simulation-only
	// metrics should not be combined with screening.
	Screen *ScreenRule
	// Workers bounds point-level parallelism (0 = GOMAXPROCS).
	Workers int
	// Subset, when non-nil, restricts the sweep to these indices of
	// Space.Points() (strictly ascending, in range). Outcomes commit in
	// subset order, done/total count subset points, and every
	// PointOutcome carries its global Index — the contract a sharded
	// fleet's coordinator relies on to merge per-worker streams back
	// into the full space's order. With pruning enabled, dominance is
	// observed within the subset only.
	Subset []int
	// Objective, when non-nil, scores passing points (lower = better).
	Objective func(p design.Point, r *RunResult) (float64, error)
	// Cache, when non-nil, is consulted before simulating a point and
	// filled afterwards. Keys are CacheKey(scenario, runner); cached
	// results are SLA-free and the configured SLAs are re-applied on
	// every hit, so one cache serves queries with different WHERE
	// thresholds.
	Cache TrialCache
	// Gate, when non-nil, bounds simulation concurrency across sweeps
	// sharing it: a worker holds one slot only while actually simulating
	// a point (screening decisions and cache hits bypass the gate).
	Gate Gate
	// Progress, when non-nil, is called from the commit path after each
	// point outcome is committed, strictly in point order. done counts
	// all committed points (including pruned ones); total is the space
	// size. The callback must not block for long.
	Progress func(done, total int, out PointOutcome)
}

// indexedPoint pairs a point outcome with its order index.
type indexedPoint struct {
	idx int
	out PointOutcome
	err error
	ran bool // false when the worker skipped a dominated point
}

// sharedPruner serializes pruner access between workers and the
// committer.
type sharedPruner struct {
	mu sync.Mutex
	pr *design.Pruner
}

func (s *sharedPruner) dominated(p design.Point) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pr.Dominated(p)
}

func (s *sharedPruner) recordFailure(p design.Point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pr.RecordFailure(p)
}

// Run executes the sweep.
func (e *Explorer) Run() (*Exploration, error) {
	return e.RunContext(context.Background())
}

// RunContext executes the sweep, stopping early (with ctx.Err) when the
// context is cancelled. Cancellation is observed at point granularity:
// in-flight points finish their current trial batch and the partial
// exploration is discarded.
func (e *Explorer) RunContext(ctx context.Context) (*Exploration, error) {
	if e.Space == nil || e.Build == nil {
		return nil, fmt.Errorf("core: explorer needs a space and a build function")
	}
	points := e.Space.Points()
	sel := e.Subset
	if sel == nil {
		sel = make([]int, len(points))
		for i := range sel {
			sel[i] = i
		}
	} else {
		prev := -1
		for _, gi := range sel {
			if gi <= prev || gi >= len(points) {
				return nil, fmt.Errorf("core: subset indices must be strictly ascending in [0, %d)", len(points))
			}
			prev = gi
		}
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sel) {
		workers = len(sel)
	}
	if len(sel) == 0 {
		return &Exploration{}, nil
	}

	var pruner *sharedPruner
	if e.Prune {
		pruner = &sharedPruner{pr: design.NewPruner(e.Space)}
	}

	var next atomic.Int64
	stop := make(chan struct{})
	results := make(chan indexedPoint, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(sel) {
					return
				}
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				gi := sel[i]
				p := points[gi]
				var res indexedPoint
				if pruner.dominated(p) {
					// Committed failures only grow, so this point is
					// guaranteed to still be dominated at commit time.
					res = indexedPoint{idx: i, out: PointOutcome{Point: p, Index: gi, Pruned: true}}
				} else {
					out, err := e.runPoint(ctx, p)
					out.Index = gi
					res = indexedPoint{idx: i, out: out, err: err, ran: true}
				}
				select {
				case results <- res:
				case <-stop:
					return
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Commit outcomes in point order. Under pruning, the dominance test is
	// re-evaluated here against exactly the failures committed so far —
	// the same information the sequential best-first visit would have — so
	// a speculative result for a point that should have been skipped is
	// discarded, keeping Executed/Pruned/Events identical to a Workers=1
	// sweep.
	exp := &Exploration{}
	var (
		reorder    = make(map[int]indexedPoint)
		nextCommit = 0
		stopped    = false
		firstErr   error
	)
	progress := func(out PointOutcome) {
		if e.Progress != nil {
			e.Progress(len(exp.Outcomes), len(sel), out)
		}
	}
	for res := range results {
		if stopped {
			continue
		}
		if err := ctx.Err(); err != nil {
			firstErr = err
			stopped = true
			close(stop)
			continue
		}
		reorder[res.idx] = res
		for !stopped {
			r, ok := reorder[nextCommit]
			if !ok {
				break
			}
			delete(reorder, nextCommit)
			nextCommit++
			if r.err != nil {
				firstErr = r.err
				stopped = true
				close(stop)
				break
			}
			if pruner != nil && pruner.dominated(r.out.Point) {
				exp.Outcomes = append(exp.Outcomes, PointOutcome{Point: r.out.Point, Index: r.out.Index, Pruned: true})
				exp.Pruned++
				progress(exp.Outcomes[len(exp.Outcomes)-1])
				continue
			}
			if !r.ran {
				// Worker skipped it as dominated but commit-time state
				// disagrees: impossible, since dominance is monotone.
				panic("core: speculative prune skipped a non-dominated point")
			}
			if r.out.Screened {
				// Decided analytically: no events simulated, but the
				// decision feeds dominance pruning like any other — a
				// screened failure is a proven failure.
				exp.Screened++
				if pruner != nil && !r.out.AllMet {
					pruner.recordFailure(r.out.Point)
				}
				exp.Outcomes = append(exp.Outcomes, r.out)
				progress(r.out)
				continue
			}
			exp.Executed++
			exp.Events += r.out.Result.EventsTotal
			if r.out.FromCache {
				exp.CacheHits++
			}
			if pruner != nil && !r.out.AllMet {
				pruner.recordFailure(r.out.Point)
			}
			exp.Outcomes = append(exp.Outcomes, r.out)
			progress(r.out)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// PointKeys returns the content address (CacheKey) of every point of
// the full space, in point order — the shard key a fleet scheduler
// hashes on, so a design point always lands on the worker that already
// holds its cached trials. Building a scenario is cheap (no simulation);
// any Build error aborts, exactly as it would at run time.
func (e *Explorer) PointKeys() ([]string, error) {
	if e.Space == nil || e.Build == nil {
		return nil, fmt.Errorf("core: explorer needs a space and a build function")
	}
	points := e.Space.Points()
	keys := make([]string, len(points))
	for i, p := range points {
		sc, slas, err := e.Build(p)
		if err != nil {
			return nil, fmt.Errorf("core: building point %s: %w", p.Key(), err)
		}
		runner := e.Runner
		runner.SLAs = slas
		keys[i] = CacheKey(sc, runner)
	}
	return keys, nil
}

// runPoint builds one scenario, screens it analytically when enabled,
// and simulates it otherwise — unless the trial cache already holds the
// point's result, in which case the cached statistics are reused and
// only the SLA verdicts are recomputed.
func (e *Explorer) runPoint(ctx context.Context, p design.Point) (PointOutcome, error) {
	started := time.Now()
	sc, slas, err := e.Build(p)
	if err != nil {
		return PointOutcome{}, fmt.Errorf("core: building point %s: %w", p.Key(), err)
	}
	if e.Screen != nil {
		bounds, ok, err := AnalyticScreen(sc)
		if err != nil {
			return PointOutcome{}, fmt.Errorf("core: screening point %s: %w", p.Key(), err)
		}
		if ok {
			if dec := e.Screen.Decide(bounds, slas); dec != ScreenSimulate {
				res := screenResult(sc, bounds)
				res.AllMet = dec == ScreenPass
				if res.AllMet {
					// A pass is decided against the same availability
					// metric the SLAs read, so the verdicts are coherent;
					// a screened fail is decided by the lower bound and
					// reports only the Decision. A check error is fatal
					// here exactly as it is on the simulated path.
					verdicts, _, err := sla.CheckAll(res, slas)
					if err != nil {
						return PointOutcome{}, fmt.Errorf("core: checking screened point %s: %w", p.Key(), err)
					}
					res.Verdicts = verdicts
				}
				out := PointOutcome{
					Point: p, Result: res, Screened: true,
					Decision: dec, AllMet: res.AllMet,
					Started: started, Elapsed: time.Since(started),
				}
				if e.Objective != nil && res.AllMet {
					obj, err := e.Objective(p, res)
					if err != nil {
						return PointOutcome{}, fmt.Errorf("core: scoring screened point %s: %w", p.Key(), err)
					}
					out.Objective = obj
				}
				return out, nil
			}
		}
	}
	runner := e.Runner
	runner.SLAs = slas
	var (
		res       *RunResult
		key       string
		fromCache bool
	)
	if e.Cache != nil {
		key = CacheKey(sc, runner)
		var hit *RunResult
		var ok bool
		if cc, hasCtx := e.Cache.(ContextTrialCache); hasCtx {
			// Context-aware caches (remote peer tiers) abandon in-flight
			// fetches when the sweep is cancelled.
			hit, ok = cc.GetContext(ctx, key)
		} else {
			hit, ok = e.Cache.Get(key)
		}
		if ok {
			// Clone so the SLA verdicts written below never touch the
			// shared cached copy.
			res = hit.cloneForSLA()
			fromCache = true
		}
	}
	var waited time.Duration
	if res == nil {
		if e.Gate != nil {
			gateStart := time.Now()
			if err := e.Gate.Acquire(ctx); err != nil {
				return PointOutcome{}, fmt.Errorf("core: running point %s: %w", p.Key(), err)
			}
			waited = time.Since(gateStart)
		}
		res, err = runner.simulate(ctx, sc)
		if e.Gate != nil {
			e.Gate.Release()
		}
		if err != nil {
			return PointOutcome{}, fmt.Errorf("core: running point %s: %w", p.Key(), err)
		}
		if e.Cache != nil {
			e.Cache.Put(key, res.cloneForSLA())
		}
	}
	if err := runner.applySLAs(res); err != nil {
		return PointOutcome{}, fmt.Errorf("core: running point %s: %w", p.Key(), err)
	}
	out := PointOutcome{
		Point: p, Result: res, AllMet: res.AllMet, FromCache: fromCache,
		Started: started, Elapsed: time.Since(started), Waited: waited,
	}
	if e.Objective != nil && res.AllMet {
		obj, err := e.Objective(p, res)
		if err != nil {
			return PointOutcome{}, fmt.Errorf("core: scoring point %s: %w", p.Key(), err)
		}
		out.Objective = obj
	}
	return out, nil
}
