package core

import (
	"math"
	"testing"

	"repro/internal/design"
	"repro/internal/dist"
	"repro/internal/repair"
	"repro/internal/sla"
	"repro/internal/storage"
)

// quickScenario returns a small, fast scenario for tests.
func quickScenario() Scenario {
	sc := DefaultScenario()
	sc.Cluster.Racks = 2
	sc.Cluster.NodesPerRack = 5
	sc.Cluster.NodeTTF = dist.Must(dist.ExpMean(500))
	sc.Cluster.NodeRepair = dist.Must(dist.NewDeterministic(12))
	sc.Users = 100
	sc.ObjectSizeMB = 10
	sc.HorizonHours = 2000
	// A 6-hour detection delay leaves real windows of vulnerability, so
	// double failures produce measurable unavailability.
	sc.Repair = repair.Config{Mode: repair.Parallel, MaxConcurrent: 8,
		Detection: dist.Must(dist.NewDeterministic(6))}
	return sc
}

func TestScenarioValidate(t *testing.T) {
	if err := DefaultScenario().Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	bad := DefaultScenario()
	bad.Users = 0
	if bad.Validate() == nil {
		t.Error("0 users accepted")
	}
	bad = DefaultScenario()
	bad.Placement = "bogus"
	if bad.Validate() == nil {
		t.Error("unknown placement accepted")
	}
	bad = DefaultScenario()
	bad.HorizonHours = 0
	if bad.Validate() == nil {
		t.Error("zero horizon accepted")
	}
}

func TestRunnerProducesMetrics(t *testing.T) {
	res, err := Runner{Trials: 4}.Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 4 {
		t.Fatalf("trials = %d, want 4", res.Trials)
	}
	for _, m := range []string{"availability", "loss_prob", "repairs", "node_failures", "events"} {
		if _, err := res.Metric(m); err != nil {
			t.Errorf("missing metric %s: %v", m, err)
		}
	}
	av := res.Metrics["availability"]
	if av <= 0 || av > 1 {
		t.Errorf("availability = %v outside (0,1]", av)
	}
	if res.Metrics["node_failures"] <= 0 {
		t.Error("no node failures simulated over 2000h with MTTF 500h")
	}
	if res.Metrics["repairs"] <= 0 {
		t.Error("no repairs completed")
	}
	if _, err := res.Metric("nope"); err == nil {
		t.Error("unknown metric did not error")
	}
}

func TestRunnerDeterministicAcrossRuns(t *testing.T) {
	a, err := Runner{Trials: 3, Workers: 1}.Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Runner{Trials: 3, Workers: 3}.Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	// Same seeds, same trials, regardless of worker parallelism.
	if math.Abs(a.Metrics["availability"]-b.Metrics["availability"]) > 1e-12 {
		t.Fatalf("parallel workers changed results: %v vs %v",
			a.Metrics["availability"], b.Metrics["availability"])
	}
}

func TestRunnerSLAVerdicts(t *testing.T) {
	impossible, err := sla.NewAvailability(1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Runner{Trials: 4, SLAs: []sla.SLA{impossible}}.Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Verdicts) != 1 {
		t.Fatalf("verdicts = %d, want 1", len(res.Verdicts))
	}
	// With MTTF 500h on 10 nodes over 2000h there will be windows where
	// some object loses quorum; perfect availability is unreachable.
	if res.AllMet {
		t.Error("availability == 1.0 SLA reported as met")
	}
}

func TestRunnerTargetCIStopsEarly(t *testing.T) {
	res, err := Runner{Trials: 64, TargetCI: 0.5, Workers: 2}.Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials >= 64 {
		t.Fatalf("CI stopping did not trigger: ran all %d trials", res.Trials)
	}
	if res.Trials < 2 {
		t.Fatalf("needs >= 2 trials for a CI, got %d", res.Trials)
	}
}

func TestEarlyAbortSavesEvents(t *testing.T) {
	// An absurd availability floor aborts trials almost immediately.
	sc := quickScenario()
	full, err := Runner{Trials: 3, Workers: 1}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	aborting, err := Runner{
		Trials: 3, Workers: 1,
		Abort: &AbortRule{MinAvailability: 0.9999999, CheckEvery: 64},
	}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if aborting.AbortedTrials == 0 {
		t.Fatal("no trials aborted under an impossible availability floor")
	}
	if aborting.EventsTotal >= full.EventsTotal {
		t.Fatalf("abort did not save events: %d vs %d", aborting.EventsTotal, full.EventsTotal)
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := (Runner{Trials: 0}).Run(quickScenario()); err == nil {
		t.Error("0 trials accepted")
	}
	bad := quickScenario()
	bad.Users = -1
	if _, err := (Runner{Trials: 1}).Run(bad); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestParallelRepairBeatsSerialAvailability(t *testing.T) {
	// §1's claim, end to end: with equal hardware, parallel repair yields
	// at-least-as-good availability.
	serial := quickScenario()
	serial.Repair.Mode = repair.Serial
	serial.Repair.MaxConcurrent = 0
	parallel := quickScenario()
	parallel.Repair.MaxConcurrent = 16
	rs, err := Runner{Trials: 6}.Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Runner{Trials: 6}.Run(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Metrics["repair_makespan"] > rs.Metrics["repair_makespan"] {
		t.Errorf("parallel repair makespan %v exceeds serial %v",
			rp.Metrics["repair_makespan"], rs.Metrics["repair_makespan"])
	}
}

func TestRSSchemeScenario(t *testing.T) {
	sc := quickScenario()
	sc.Scheme = storage.RSScheme(4, 2)
	res, err := Runner{Trials: 2}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["availability"] <= 0 {
		t.Error("no availability metric for RS scheme")
	}
}

// alwaysFail is an unsatisfiable SLA used to exercise pruning.
type alwaysFail struct{}

func (alwaysFail) Name() string { return "always-fail" }
func (alwaysFail) Check(sla.Result) (sla.Verdict, error) {
	return sla.Verdict{SLA: "always-fail", Met: false}, nil
}

func TestExplorerPruningSavesRuns(t *testing.T) {
	space, err := design.NewSpace(
		design.Dimension{Name: "replicas", Values: []design.Value{2, 3, 5}, Monotone: true},
		design.Dimension{Name: "placement", Values: []design.Value{"random", "roundrobin"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	build := func(p design.Point) (Scenario, []sla.SLA, error) {
		sc := quickScenario()
		sc.Scheme = storage.ReplicationScheme(p.MustValue("replicas").(int))
		sc.Placement = p.MustValue("placement").(string)
		// An unsatisfiable SLA: everything fails, forcing maximal pruning.
		return sc, []sla.SLA{alwaysFail{}}, nil
	}
	ex := &Explorer{Space: space, Build: build, Runner: Runner{Trials: 1}, Prune: true}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned == 0 {
		t.Fatal("no points pruned despite universal failure")
	}
	if res.Executed+res.Pruned != space.Size() {
		t.Fatalf("executed %d + pruned %d != %d", res.Executed, res.Pruned, space.Size())
	}
	// With every run failing, best-first order means only the best point
	// per categorical slice executes: 2 placements -> 2 runs.
	if res.Executed != 2 {
		t.Fatalf("executed %d, want 2 (one per placement)", res.Executed)
	}
	if _, err := res.Best(); err == nil {
		t.Error("Best() succeeded with nothing passing")
	}
}

func TestExplorerFindsCheapestPassing(t *testing.T) {
	space, err := design.NewSpace(
		design.Dimension{Name: "replicas", Values: []design.Value{3, 5}, Monotone: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	build := func(p design.Point) (Scenario, []sla.SLA, error) {
		sc := quickScenario()
		sc.Scheme = storage.ReplicationScheme(p.MustValue("replicas").(int))
		easy, err := sla.NewAvailability(0.5)
		if err != nil {
			return Scenario{}, nil, err
		}
		return sc, []sla.SLA{easy}, nil
	}
	ex := &Explorer{
		Space: space, Build: build, Runner: Runner{Trials: 2},
		Objective: func(p design.Point, _ *RunResult) (float64, error) {
			return float64(p.MustValue("replicas").(int)), nil // replicas = cost proxy
		},
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	best, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Point.MustValue("replicas") != 3 {
		t.Errorf("best = %v, want replicas=3 (cheapest passing)", best.Point.Key())
	}
}

func TestExplorerParallelMatchesSequential(t *testing.T) {
	space, err := design.NewSpace(
		design.Dimension{Name: "replicas", Values: []design.Value{2, 3}, Monotone: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	build := func(p design.Point) (Scenario, []sla.SLA, error) {
		sc := quickScenario()
		sc.Scheme = storage.ReplicationScheme(p.MustValue("replicas").(int))
		return sc, nil, nil
	}
	seq := &Explorer{Space: space, Build: build, Runner: Runner{Trials: 2}, Workers: 1}
	par := &Explorer{Space: space, Build: build, Runner: Runner{Trials: 2}, Workers: 4}
	rs, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs.Outcomes {
		a := rs.Outcomes[i].Result.Metrics["availability"]
		b := rp.Outcomes[i].Result.Metrics["availability"]
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("point %d: parallel %v != sequential %v", i, b, a)
		}
	}
}
