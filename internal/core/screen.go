// Analytic screening (§2.2 + §4.2): before paying for a full
// discrete-event simulation of a design point, evaluate it with the
// closed-form birth–death availability model. When the analytic bound
// clears (or provably misses) every availability SLA by a configurable
// margin, the point is decided without simulating a single event; only
// the points the analytic model cannot separate from their SLA targets
// reach the simulator. Every screened point is reported as such — there
// are no silent skips.
package core

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/hardware"
	"repro/internal/power"
	"repro/internal/repair"
	"repro/internal/sla"
	"repro/internal/storage"
)

// ScreenDecision is the outcome of the analytic screening pass.
type ScreenDecision int

const (
	// ScreenSimulate means the analytic model cannot decide the point
	// within the margin; full simulation is required.
	ScreenSimulate ScreenDecision = iota
	// ScreenPass means the analytic upper bound on unavailability clears
	// every SLA even after inflation by the margin.
	ScreenPass
	// ScreenFail means the analytic lower bound on unavailability breaks
	// some SLA even after deflation by the margin.
	ScreenFail
)

func (d ScreenDecision) String() string {
	switch d {
	case ScreenPass:
		return "pass"
	case ScreenFail:
		return "fail"
	default:
		return "simulate"
	}
}

// ScreenRule configures analytic screening. Margin is the relative
// safety factor applied against the model's approximations (exponential
// assumption, union bound, node-level failures only): a point passes
// without simulation only if the analytic unavailability upper bound
// times (1+Margin) still clears every availability SLA, and fails
// without simulation only if the per-object lower bound divided by
// (1+Margin) already breaks one. Margin 0 screens at the exact
// thresholds; DefaultScreenMargin is a conservative 1.0 (2x slack both
// ways).
type ScreenRule struct {
	Margin float64
}

// DefaultScreenMargin is the screening slack used when none is given.
const DefaultScreenMargin = 1.0

// AnalyticBounds brackets a scenario's any-object unavailability with
// two replica birth–death Markov chains (§2.2): nodes fail at rate
// 1/E[TTF]; an object is unavailable while its scheme's quorum is down.
// The chains differ in how fast a lost replica comes back:
//
//   - the slow chain repairs at rate 1/(E[detection]+E[node repair]) —
//     pessimistic, since re-replication usually restores redundancy long
//     before the failed node returns; its union bound over Users objects
//     is the upper estimate.
//   - the fast chain repairs at rate 1/E[detection] — optimistic, as if
//     re-replication completed the instant a failure is detected; its
//     single-object unavailability is the lower estimate. With instant
//     detection the lower estimate is 0 and screening can never FAIL a
//     point, only PASS it.
type AnalyticBounds struct {
	// ObjUnavail is the slow-chain steady-state probability that one
	// object's quorum is down (the pessimistic per-object estimate).
	ObjUnavail float64
	// ObjUnavailLower is the fast-chain per-object unavailability — a
	// lower estimate of the system any-object unavailability.
	ObjUnavailLower float64
	// SysUnavail is the union-bound upper estimate of the any-object
	// unavailability: min(1, Users * ObjUnavail).
	SysUnavail float64
	// AvailValid reports that the availability bounds above are sound
	// for the scenario. With the power subsystem enabled they are not
	// (PDU/utility outages and power caps change availability dynamics
	// the node-level chain cannot see), but power feasibility below can
	// still be decided.
	AvailValid bool
	// PeakKWFloor is a lower bound on the facility's peak power draw
	// when the power subsystem is enabled: every node idling at the
	// configured idle fraction, times PUE. A power-budget SLA below this
	// floor is infeasible for any trajectory — the power-feasibility
	// screen. Zero when power is disabled.
	PeakKWFloor float64
}

// AnalyticScreen computes the closed-form bounds for sc. It reports
// ok=false when the scenario falls outside the model's reach entirely:
// the availability chain needs a whole-node failure process and no
// component/switch failures, and with the power subsystem enabled the
// availability bounds are never valid (power outages and caps change
// the dynamics) — but the power-feasibility floor still is, so a
// power-enabled scenario screens with AvailValid=false and a positive
// PeakKWFloor.
func AnalyticScreen(sc Scenario) (AnalyticBounds, bool, error) {
	var pb AnalyticBounds
	if sc.Power.Enabled {
		activeW, err := power.NodeActiveWatts(hardware.DefaultCatalog(), sc.Cluster)
		if err != nil {
			return AnalyticBounds{}, false, fmt.Errorf("core: screening power floor: %w", err)
		}
		nodes := sc.Cluster.Racks * sc.Cluster.NodesPerRack
		pb.PeakKWFloor = sc.Power.IdleFloorKW(nodes, activeW)
		// Availability bounds are unsound under power failures/caps; only
		// the feasibility floor is decidable.
		return pb, true, nil
	}
	if sc.Cluster.NodeTTF == nil || sc.Cluster.NodeRepair == nil {
		return AnalyticBounds{}, false, nil
	}
	if sc.Cluster.ComponentFailures || sc.Cluster.SwitchFailures {
		return AnalyticBounds{}, false, nil
	}
	mttf := sc.Cluster.NodeTTF.Mean()
	detect := 0.0
	if sc.Repair.Detection != nil {
		detect = sc.Repair.Detection.Mean()
	}
	mttrSlow := sc.Cluster.NodeRepair.Mean() + detect
	if !(mttf > 0) || !(mttrSlow > 0) {
		return AnalyticBounds{}, false, nil
	}

	var width, quorumDown int
	switch sc.Scheme.Kind {
	case storage.Replication:
		width = sc.Scheme.Replicas
		quorumDown = analytic.MajorityQuorumDown(width)
	case storage.ErasureRS:
		width = sc.Scheme.K + sc.Scheme.M
		quorumDown = sc.Scheme.M + 1
	default:
		return AnalyticBounds{}, false, nil
	}
	parallel := sc.Repair.Mode == repair.Parallel
	chain := func(mttr float64) (float64, error) {
		m, err := analytic.NewReplicaAvailabilityModel(width, 1/mttf, 1/mttr, parallel)
		if err != nil {
			return 0, fmt.Errorf("core: screening model: %w", err)
		}
		return m.Unavailability(quorumDown), nil
	}
	objU, err := chain(mttrSlow)
	if err != nil {
		return AnalyticBounds{}, false, err
	}
	objLower := 0.0
	if detect > 0 {
		objLower, err = chain(detect)
		if err != nil {
			return AnalyticBounds{}, false, err
		}
	}
	sysU := float64(sc.Users) * objU
	if sysU > 1 {
		sysU = 1
	}
	return AnalyticBounds{
		ObjUnavail: objU, ObjUnavailLower: objLower, SysUnavail: sysU,
		AvailValid: true,
	}, true, nil
}

// availabilityTargets extracts the allowed-unavailability budgets from
// the SLA list. all reports whether every SLA is an availability SLA the
// screen understands — a precondition for deciding PASS analytically
// (FAIL needs only one provably-broken budget).
func availabilityTargets(slas []sla.SLA) (budgets []float64, all bool) {
	all = true
	for _, s := range slas {
		a, ok := s.(sla.Availability)
		if !ok || (a.MetricName != "" && a.MetricName != "availability") {
			all = false
			continue
		}
		budgets = append(budgets, 1-a.Min)
	}
	return budgets, all
}

// Decide applies the screen rule to the analytic bounds: PASS when the
// inflated upper bound clears every budget (and every SLA is an
// availability SLA), FAIL when the deflated per-object lower bound
// breaks some budget — or when the power-feasibility floor already
// exceeds a power-budget SLA — and SIMULATE otherwise. The decision is
// a pure function of its inputs, so screening is reproducible and
// independent of worker scheduling.
func (r ScreenRule) Decide(b AnalyticBounds, slas []sla.SLA) ScreenDecision {
	margin := r.Margin
	if margin < 0 {
		margin = 0
	}
	// Power feasibility: the idle floor is a hard lower bound on peak
	// draw; a budget below it (even after margin deflation) cannot be
	// met by any trajectory.
	if b.PeakKWFloor > 0 {
		for _, s := range slas {
			pb, ok := s.(sla.PowerBudget)
			if !ok || (pb.MetricName != "" && pb.MetricName != "peak_kw") {
				continue
			}
			if b.PeakKWFloor/(1+margin) > pb.MaxKW {
				return ScreenFail
			}
		}
	}
	if !b.AvailValid {
		return ScreenSimulate
	}
	budgets, all := availabilityTargets(slas)
	if len(budgets) == 0 {
		return ScreenSimulate
	}
	for _, budget := range budgets {
		if b.ObjUnavailLower/(1+margin) > budget {
			return ScreenFail
		}
	}
	if !all {
		return ScreenSimulate
	}
	for _, budget := range budgets {
		if b.SysUnavail*(1+margin) > budget {
			return ScreenSimulate
		}
	}
	return ScreenPass
}

// screenResult synthesizes the RunResult reported for a screened point:
// zero trials, zero events, and the analytic estimates in place of the
// simulated metrics.
func screenResult(sc Scenario, b AnalyticBounds) *RunResult {
	metrics := make(map[string]float64, 8)
	if b.AvailValid {
		metrics["availability"] = 1 - b.SysUnavail
		metrics["unavail_fraction"] = b.SysUnavail
		metrics["analytic_obj_unavail"] = b.ObjUnavail
		metrics["analytic_unavail_lower"] = b.ObjUnavailLower
	}
	metrics["analytic"] = 1
	metrics["events"] = 0
	if b.PeakKWFloor > 0 {
		// A power-feasibility decision carries only the floor: the
		// availability bounds were never computed (AvailValid false), so
		// fabricating availability=1 here would archive the opposite of
		// what the screen concluded.
		metrics["analytic_peak_kw_floor"] = b.PeakKWFloor
	}
	return &RunResult{
		Scenario: sc.Name,
		Trials:   0,
		Metrics:  metrics,
		CI:       map[string]float64{},
	}
}
