package core

import (
	"testing"

	"repro/internal/design"
	"repro/internal/dist"
	"repro/internal/sla"
	"repro/internal/storage"
)

// TestRunnerTargetCIDeterministic pins the streaming scheduler's
// early-stop contract: because trial results commit in trial-index order,
// the stopping trial count is a pure function of the seed, not of the
// worker count or of arrival timing.
func TestRunnerTargetCIDeterministic(t *testing.T) {
	sc := quickScenario()
	sc.Seed = 777
	run := func(workers int) *RunResult {
		res, err := Runner{Trials: 12, Workers: workers, TargetCI: 0.01}.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	for _, w := range []int{2, 4} {
		b := run(w)
		if a.Trials != b.Trials {
			t.Fatalf("workers=%d stopped after %d trials, workers=1 after %d", w, b.Trials, a.Trials)
		}
		for _, m := range []string{"availability", "repairs", "node_failures", "events"} {
			if a.Metrics[m] != b.Metrics[m] {
				t.Fatalf("workers=%d diverges on %s: %v vs %v", w, m, b.Metrics[m], a.Metrics[m])
			}
		}
		if a.EventsTotal != b.EventsTotal {
			t.Fatalf("workers=%d EventsTotal %d vs %d", w, b.EventsTotal, a.EventsTotal)
		}
	}
	if a.Trials >= 12 {
		t.Fatalf("TargetCI never triggered (ran all %d trials); test needs a looser target", a.Trials)
	}
}

// TestExplorerSpeculativePruneMatchesSequential checks that dominance
// pruning composes with the worker pool: a parallel pruned sweep must
// produce the same outcomes, executed/pruned counts and event totals as
// the sequential best-first visit.
func TestExplorerSpeculativePruneMatchesSequential(t *testing.T) {
	space, err := design.NewSpace(
		design.Dimension{Name: "replicas", Values: []design.Value{2, 3, 5}, Monotone: true},
		design.Dimension{Name: "placement", Values: []design.Value{"random", "roundrobin"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	target, err := sla.NewAvailability(0.99999)
	if err != nil {
		t.Fatal(err)
	}
	build := func(p design.Point) (Scenario, []sla.SLA, error) {
		sc := quickScenario()
		sc.Seed = 4242
		sc.Cluster.NodeTTF = dist.Must(dist.ExpMean(300))
		sc.Scheme = storage.ReplicationScheme(p.MustValue("replicas").(int))
		sc.Placement = p.MustValue("placement").(string)
		return sc, []sla.SLA{target}, nil
	}
	run := func(workers int) *Exploration {
		ex := &Explorer{
			Space: space, Build: build,
			Runner:  Runner{Trials: 2, Workers: 1},
			Prune:   true,
			Workers: workers,
		}
		res, err := ex.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	if seq.Pruned == 0 {
		t.Fatal("scenario prunes nothing; test needs a harsher SLA")
	}
	par := run(4)
	if par.Executed != seq.Executed || par.Pruned != seq.Pruned || par.Events != seq.Events {
		t.Fatalf("parallel prune diverged: executed %d/%d, pruned %d/%d, events %d/%d",
			par.Executed, seq.Executed, par.Pruned, seq.Pruned, par.Events, seq.Events)
	}
	if len(par.Outcomes) != len(seq.Outcomes) {
		t.Fatalf("outcome count %d vs %d", len(par.Outcomes), len(seq.Outcomes))
	}
	for i := range seq.Outcomes {
		s, p := seq.Outcomes[i], par.Outcomes[i]
		if s.Point.Key() != p.Point.Key() || s.Pruned != p.Pruned || s.AllMet != p.AllMet {
			t.Fatalf("outcome %d diverged: %s/%v/%v vs %s/%v/%v", i,
				s.Point.Key(), s.Pruned, s.AllMet, p.Point.Key(), p.Pruned, p.AllMet)
		}
		if !s.Pruned {
			if s.Result.Metrics["availability"] != p.Result.Metrics["availability"] {
				t.Fatalf("outcome %d availability diverged", i)
			}
		}
	}
}
