// Package core is the wind tunnel itself — the paper's primary
// contribution (§2.3): it composes the hardware substrate
// (internal/cluster, internal/netsim), the software models
// (internal/storage, internal/repair, internal/workload) and the SLA layer
// into runnable what-if scenarios, executes them as replicated
// discrete-event simulations with confidence-interval stopping and early
// abort (§4.2), and sweeps configuration design spaces with dominance
// pruning and parallel execution.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/power"
	"repro/internal/repair"
	"repro/internal/sla"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Scenario is one complete availability what-if experiment: a cluster
// design, a tenant population with a redundancy scheme and placement
// policy, a repair configuration, and a simulated horizon.
type Scenario struct {
	Name string

	Cluster cluster.Config

	// Tenant data.
	Users        int
	ObjectSizeMB float64
	Scheme       storage.Scheme
	Placement    string // placement policy name (storage.PolicyByName)

	Repair repair.Config

	// Power declares the power delivery hierarchy, energy accounting and
	// power capping (internal/power). The zero value is disabled and
	// leaves the simulation path byte-for-byte unchanged.
	Power power.Config

	HorizonHours float64
	Seed         uint64
}

// Validate checks the scenario.
func (sc Scenario) Validate() error {
	if err := sc.Cluster.Validate(); err != nil {
		return err
	}
	if sc.Users < 1 {
		return fmt.Errorf("core: scenario needs >= 1 user, got %d", sc.Users)
	}
	if sc.ObjectSizeMB < 0 {
		return fmt.Errorf("core: negative object size %v", sc.ObjectSizeMB)
	}
	if err := sc.Scheme.Validate(); err != nil {
		return err
	}
	if _, err := storage.PolicyByName(sc.Placement); err != nil {
		return err
	}
	if err := sc.Repair.Validate(); err != nil {
		return err
	}
	if err := sc.Power.Validate(); err != nil {
		return err
	}
	if sc.HorizonHours <= 0 {
		return fmt.Errorf("core: horizon must be positive, got %v", sc.HorizonHours)
	}
	return nil
}

// DefaultScenario returns a plausible baseline: 3 racks x 10 nodes of
// HDD/10G hardware, 1000 users with 3-way replication, random placement,
// parallel repair, one simulated year.
func DefaultScenario() Scenario {
	return Scenario{
		Name: "default",
		Cluster: cluster.Config{
			Racks: 3, NodesPerRack: 10,
			DiskSpec: "hdd-7200", DisksPerNode: 4,
			NICSpec: "nic-10g", CPUSpec: "cpu-8c", MemSpec: "mem-64g",
			SwitchSpec: "switch-48p-10g",
			NodeTTF:    dist.Must(dist.NewWeibull(0.7, 12000)),
			NodeRepair: dist.Must(dist.LogNormalFromMoments(12, 1.2)),
		},
		Users:        1000,
		ObjectSizeMB: 200,
		Scheme:       storage.ReplicationScheme(3),
		Placement:    "random",
		Repair:       repair.Config{Mode: repair.Parallel, MaxConcurrent: 8},
		HorizonHours: hardware.HoursPerYear,
		Seed:         1,
	}
}

// RunResult aggregates one or more simulation trials of a scenario. It
// implements sla.Result.
type RunResult struct {
	Scenario string
	Trials   int

	// Metrics holds aggregate scalars:
	//   availability        — mean fraction of time all objects reachable
	//   unavail_fraction    — 1 - availability
	//   zero_copy_fraction  — fraction of time >= 1 object had zero live
	//                         copies (§1's unavailability notion)
	//   mean_unavail_objects— time-averaged unavailable object count
	//   loss_prob           — fraction of objects permanently lost
	//   repairs             — mean completed repairs per trial
	//   repair_bytes_mb     — mean repair traffic per trial
	//   node_failures       — mean node failures per trial
	//   events              — mean DES events per trial
	//
	// With Scenario.Power.Enabled, the power/energy dimension is added:
	//   energy_kwh          — mean facility energy per trial (IT × PUE)
	//   energy_it_kwh       — mean IT-only energy per trial
	//   peak_kw             — mean peak facility draw per trial
	//   pue                 — configured power usage effectiveness
	//   carbon_kg           — mean carbon footprint per trial
	//   power_utility_outages / power_ride_through_ok /
	//   power_generator_starts / power_loss_events /
	//   power_pdu_failures  — mean hierarchy event counts per trial
	Metrics map[string]float64

	// CI holds 95% confidence half-widths for selected metrics.
	CI map[string]float64

	Latencies map[string]*stats.Sample

	Verdicts []sla.Verdict
	AllMet   bool

	// TenantAvailability holds one availability value per tenant per
	// trial (pooled), supporting §4.1 SLAs expressed as distributions.
	TenantAvailability []float64

	EventsTotal   uint64
	AbortedTrials int
}

// TenantAvailabilitySLA returns an SLA of the distributional form §4.1
// calls for: at least `fraction` of tenants must see availability >=
// `threshold`. It evaluates against the TenantAvailability pool of a
// RunResult.
func TenantAvailabilitySLA(fraction, threshold float64) sla.SLA {
	return sla.TenantDistribution{
		Description: fmt.Sprintf("%.0f%% of tenants at availability >= %v", fraction*100, threshold),
		Values: func(r sla.Result) ([]float64, error) {
			rr, ok := r.(*RunResult)
			if !ok {
				return nil, fmt.Errorf("core: tenant SLA needs a *RunResult, got %T", r)
			}
			if len(rr.TenantAvailability) == 0 {
				return nil, fmt.Errorf("core: result has no per-tenant availability data")
			}
			return rr.TenantAvailability, nil
		},
		AtLeast:   true,
		Threshold: threshold,
		Fraction:  fraction,
	}
}

// Metric implements sla.Result.
func (r *RunResult) Metric(name string) (float64, error) {
	v, ok := r.Metrics[name]
	if !ok {
		return 0, fmt.Errorf("core: metric %q not recorded", name)
	}
	return v, nil
}

// LatencySample implements sla.Result.
func (r *RunResult) LatencySample(workload string) *stats.Sample {
	if r.Latencies == nil {
		return nil
	}
	return r.Latencies[workload]
}
