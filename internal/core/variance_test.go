package core

import (
	"math"
	"testing"

	"repro/internal/design"
	"repro/internal/dist"
	"repro/internal/sla"
	"repro/internal/storage"
)

// rareScenario is a high-availability, short-horizon configuration
// where quorum-loss windows are rare enough that plain Monte Carlo
// wastes most of its trials observing nothing — the §4.2 target case
// for failure biasing. (Over long horizons with many failure cycles the
// compounding likelihood ratio degenerates and biasing stops paying;
// the bias knob is for mission-time questions like this one.)
func rareScenario() Scenario {
	sc := quickScenario()
	sc.Cluster.NodeTTF = dist.Must(dist.ExpMean(5000))
	sc.HorizonHours = 300
	return sc
}

// monotoneScenario is a single-copy configuration whose unavailability
// is (to first order) the total node downtime — monotone in the failure
// draws, the regime where antithetic mirroring anti-correlates pairs.
// (Quorum scenarios respond to failure overlaps, which are not monotone
// in individual draws, and pairing is roughly neutral there.)
func monotoneScenario() Scenario {
	sc := quickScenario()
	sc.Scheme = storage.ReplicationScheme(1)
	return sc
}

// TestCRNPairingDeterminism pins the common-random-numbers contract:
// with CRN keying, the failure draws of a trial are a pure function of
// (seed, trial, stream name), so two design points that differ only in
// a software knob (placement here) see byte-identical node failure
// trajectories, and the whole run is Workers-independent.
func TestCRNPairingDeterminism(t *testing.T) {
	a := quickScenario()
	a.Placement = "random"
	b := quickScenario()
	b.Placement = "roundrobin"

	ra, err := Runner{Trials: 4, CRN: true}.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Runner{Trials: 4, CRN: true}.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Metrics["node_failures"] != rb.Metrics["node_failures"] {
		t.Errorf("CRN pairing broken: node_failures %v vs %v across placements",
			ra.Metrics["node_failures"], rb.Metrics["node_failures"])
	}

	par, err := Runner{Trials: 4, CRN: true, Workers: 4}.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"availability", "node_failures", "repairs", "events"} {
		if ra.Metrics[m] != par.Metrics[m] {
			t.Errorf("CRN run depends on Workers: %s %v vs %v", m, ra.Metrics[m], par.Metrics[m])
		}
	}
}

// TestAntitheticUnbiased checks the §4.2 unbiasedness property: the
// antithetic estimate of availability agrees with plain Monte Carlo
// within their combined confidence intervals.
func TestAntitheticUnbiased(t *testing.T) {
	sc := quickScenario()
	plain, err := Runner{Trials: 48}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	anti, err := Runner{Trials: 48, Antithetic: true}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(plain.Metrics["availability"] - anti.Metrics["availability"])
	budget := plain.CI["availability"] + anti.CI["availability"]
	if diff > budget {
		t.Errorf("antithetic mean %v vs plain %v: |diff| %v exceeds CI budget %v",
			anti.Metrics["availability"], plain.Metrics["availability"], diff, budget)
	}
	if anti.Trials != 48 {
		t.Errorf("antithetic raw trials = %d, want 48", anti.Trials)
	}
}

// TestAntitheticTightensCI checks that pairing actually buys variance
// reduction in its regime: on the monotone-response workload, at equal
// raw trials, the paired CI must be strictly tighter than the plain CI
// (the run is fully deterministic, so this is a pinned property, not a
// flaky statistical test; measured reduction is ~30% in CI, i.e. ~2x in
// trials to a fixed target).
func TestAntitheticTightensCI(t *testing.T) {
	sc := monotoneScenario()
	plain, err := Runner{Trials: 128}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	anti, err := Runner{Trials: 128, Antithetic: true}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if anti.CI["availability"] >= plain.CI["availability"] {
		t.Errorf("antithetic CI %v not tighter than plain %v",
			anti.CI["availability"], plain.CI["availability"])
	}
}

// TestAntitheticFewerTrialsAtTargetCI is the §4.2 payoff: at an equal
// TargetCI the paired runner stops after fewer raw trials.
func TestAntitheticFewerTrialsAtTargetCI(t *testing.T) {
	sc := monotoneScenario()
	plain, err := Runner{Trials: 1024, TargetCI: 4e-3}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	anti, err := Runner{Trials: 1024, TargetCI: 4e-3, Antithetic: true}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if anti.Trials >= plain.Trials {
		t.Errorf("antithetic trials %d not fewer than plain %d at equal TargetCI",
			anti.Trials, plain.Trials)
	}
}

// TestFailureBiasUnbiased checks the importance-sampling identity: the
// weighted availability estimate under a biased failure hazard agrees
// with plain Monte Carlo within their combined confidence intervals.
func TestFailureBiasUnbiased(t *testing.T) {
	sc := rareScenario()
	plain, err := Runner{Trials: 96}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	biased, err := Runner{Trials: 48, CRN: true, FailureBias: 3}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(plain.Metrics["availability"] - biased.Metrics["availability"])
	budget := plain.CI["availability"] + biased.CI["availability"]
	if diff > budget {
		t.Errorf("biased mean %v vs plain %v: |diff| %v exceeds CI budget %v",
			biased.Metrics["availability"], plain.Metrics["availability"], diff, budget)
	}
	if biased.Metrics["is_effective_trials"] <= float64(biased.Trials)/4 {
		t.Errorf("effective trials = %v of %d: weights degenerate",
			biased.Metrics["is_effective_trials"], biased.Trials)
	}
	if m := biased.Metrics["is_weight_mean"]; m < 0.5 || m > 2 {
		t.Errorf("mean importance weight %v far from 1: bias too aggressive", m)
	}
	// Biasing must surface more raw simulation activity per trial (the
	// weighted node_failures estimate re-normalizes to the plain mean,
	// so the raw event count is the witness that failures were forced).
	if biased.Metrics["events"] <= plain.Metrics["events"] {
		t.Errorf("bias did not increase per-trial activity: %v vs %v events",
			biased.Metrics["events"], plain.Metrics["events"])
	}
}

// TestFailureBiasResolvesRareEvents is the §4.2 rare-event showcase: at
// a trial budget where plain Monte Carlo frequently observes zero
// unavailability, the failure-biased runner produces a nonzero estimate
// that agrees with a high-trial plain reference within CIs.
func TestFailureBiasResolvesRareEvents(t *testing.T) {
	sc := rareScenario()
	sc.Cluster.NodeTTF = dist.Must(dist.ExpMean(20000))

	ref, err := Runner{Trials: 4000}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	biased, err := Runner{Trials: 200, CRN: true, FailureBias: 5}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if biased.Metrics["unavail_fraction"] <= 0 {
		t.Fatal("biased run resolved no unavailability at all")
	}
	diff := math.Abs(ref.Metrics["availability"] - biased.Metrics["availability"])
	budget := ref.CI["availability"] + biased.CI["availability"]
	if diff > budget {
		t.Errorf("biased estimate %v vs reference %v: |diff| %v exceeds CI budget %v",
			biased.Metrics["availability"], ref.Metrics["availability"], diff, budget)
	}
}

// TestVarianceReducedWorkersIndependence: all techniques combined stay
// bit-identical for any Workers count.
func TestVarianceReducedWorkersIndependence(t *testing.T) {
	sc := rareScenario()
	r1, err := Runner{Trials: 8, Workers: 1, Antithetic: true, FailureBias: 2}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Runner{Trials: 8, Workers: 4, Antithetic: true, FailureBias: 2}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"availability", "node_failures", "repairs", "events", "is_weight_mean"} {
		if r1.Metrics[m] != r4.Metrics[m] {
			t.Errorf("variance-reduced run depends on Workers: %s %.17g vs %.17g",
				m, r1.Metrics[m], r4.Metrics[m])
		}
	}
}

// screeningSpace builds a replication sweep whose points the analytic
// screen can separate: generous SLA at high replication (pass), tight
// SLA cases that must simulate, and a slow-detection configuration that
// provably fails.
func screeningSpace(t *testing.T) (*design.Space, func(p design.Point) (Scenario, []sla.SLA, error)) {
	t.Helper()
	space, err := design.NewSpace(
		design.Dimension{Name: "replicas", Values: []design.Value{1, 3, 5}, Monotone: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	target, err := sla.NewAvailability(0.9)
	if err != nil {
		t.Fatal(err)
	}
	build := func(p design.Point) (Scenario, []sla.SLA, error) {
		sc := quickScenario()
		sc.Scheme = storage.ReplicationScheme(p.MustValue("replicas").(int))
		return sc, []sla.SLA{target}, nil
	}
	return space, build
}

// TestScreeningGolden pins the screening decisions for a fixed sweep:
// decisions are a pure function of the design point, so they must be
// exactly reproducible and identical for any Workers count.
func TestScreeningGolden(t *testing.T) {
	space, build := screeningSpace(t)
	run := func(workers int) *Exploration {
		ex := &Explorer{
			Space: space, Build: build,
			Runner:  Runner{Trials: 2},
			Screen:  &ScreenRule{Margin: DefaultScreenMargin},
			Workers: workers,
		}
		res, err := ex.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	// Pinned decisions for quickScenario (MTTF 500h, repair 12h,
	// detection 6h, 100 users, availability >= 0.9): replicas=5 clears
	// the union bound with 2x margin; replicas=3 and 1 are inside the
	// bracket and must simulate.
	wantScreened := map[int]ScreenDecision{5: ScreenPass}
	if seq.Screened != len(wantScreened) {
		t.Fatalf("screened %d points, want %d", seq.Screened, len(wantScreened))
	}
	for _, out := range seq.Outcomes {
		r := out.Point.MustValue("replicas").(int)
		dec, want := wantScreened[r]
		if out.Screened != want {
			t.Errorf("replicas=%d screened=%v, want %v", r, out.Screened, want)
		}
		if want && out.Decision != dec {
			t.Errorf("replicas=%d decision=%v, want %v", r, out.Decision, dec)
		}
		if out.Screened && out.Result == nil {
			t.Errorf("replicas=%d screened without a reported analytic result", r)
		}
	}
	if seq.Executed+seq.Screened+seq.Pruned != space.Size() {
		t.Errorf("executed %d + screened %d + pruned %d != %d (silent skip!)",
			seq.Executed, seq.Screened, seq.Pruned, space.Size())
	}

	par := run(4)
	if par.Screened != seq.Screened || par.Executed != seq.Executed || par.Pruned != seq.Pruned {
		t.Fatalf("screening depends on Workers: (%d,%d,%d) vs (%d,%d,%d)",
			par.Executed, par.Screened, par.Pruned, seq.Executed, seq.Screened, seq.Pruned)
	}
	for i := range seq.Outcomes {
		if seq.Outcomes[i].Screened != par.Outcomes[i].Screened ||
			seq.Outcomes[i].Decision != par.Outcomes[i].Decision {
			t.Errorf("outcome %d screening differs between Workers=1 and Workers=4", i)
		}
	}
}

// TestScreeningFailDecision checks the provably-miss direction: with a
// long detection delay even the optimistic fast-repair chain breaks a
// tight SLA, so the point fails without simulation and feeds dominance
// pruning.
func TestScreeningFailDecision(t *testing.T) {
	sc := quickScenario()
	sc.Repair.Detection = dist.Must(dist.NewDeterministic(48))
	tight, err := sla.NewAvailability(0.999)
	if err != nil {
		t.Fatal(err)
	}
	bounds, ok, err := AnalyticScreen(sc)
	if err != nil || !ok {
		t.Fatalf("screen unavailable: ok=%v err=%v", ok, err)
	}
	rule := ScreenRule{Margin: DefaultScreenMargin}
	if dec := rule.Decide(bounds, []sla.SLA{tight}); dec != ScreenFail {
		t.Fatalf("decision = %v, want fail (lower bound %v vs budget 0.001)",
			dec, bounds.ObjUnavailLower)
	}
}

// TestScreeningSkipsNonAvailabilitySLAs: a screen can fail a point on
// its availability SLA but must never PASS a point whose SLA list
// contains constraints it cannot prove.
func TestScreeningSkipsNonAvailabilitySLAs(t *testing.T) {
	sc := quickScenario()
	sc.Scheme = storage.ReplicationScheme(5)
	easy, err := sla.NewAvailability(0.9)
	if err != nil {
		t.Fatal(err)
	}
	durable, err := sla.NewDurability(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	bounds, ok, err := AnalyticScreen(sc)
	if err != nil || !ok {
		t.Fatalf("screen unavailable: ok=%v err=%v", ok, err)
	}
	rule := ScreenRule{Margin: DefaultScreenMargin}
	if dec := rule.Decide(bounds, []sla.SLA{easy}); dec != ScreenPass {
		t.Fatalf("availability-only decision = %v, want pass", dec)
	}
	if dec := rule.Decide(bounds, []sla.SLA{easy, durable}); dec != ScreenSimulate {
		t.Fatalf("mixed-SLA decision = %v, want simulate", dec)
	}
}
