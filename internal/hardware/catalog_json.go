package hardware

import (
	"encoding/json"
	"fmt"

	"repro/internal/dist"
)

// specJSON is the declarative form of a Spec: failure models are dist
// spec strings ("weibull(shape=0.7, scale=8760)"), so catalogs can be
// shipped as data files and calibrated without recompiling.
type specJSON struct {
	Name           string    `json:"name"`
	Kind           string    `json:"kind"`
	CapacityGB     float64   `json:"capacity_gb"`
	ThroughputMBps float64   `json:"throughput_mbps"`
	IOPS           float64   `json:"iops"`
	Cores          int       `json:"cores"`
	Ports          int       `json:"ports"`
	CostUSD        float64   `json:"cost_usd"`
	PowerWatts     float64   `json:"power_watts"`
	TTF            dist.Spec `json:"ttf"`
	Repair         dist.Spec `json:"repair"`
}

// kindFromString maps the JSON kind names (the Kind.String() values)
// back to Kinds.
func kindFromString(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("hardware: unknown kind %q", s)
}

// LoadJSON registers every spec in data — a JSON array of declarative
// specs — into the catalog. Example element:
//
//	{
//	  "name": "hdd-archive", "kind": "disk",
//	  "capacity_gb": 8000, "throughput_mbps": 180, "iops": 100,
//	  "cost_usd": 250, "power_watts": 9,
//	  "ttf": "weibull(shape=0.7, scale=250000)",
//	  "repair": "lognormal(mean=16, cv=1.2)"
//	}
//
// Each spec is validated (including the usual duplicate-name check)
// before registration; the first error aborts the load.
// The load is atomic: every entry is validated (against the catalog
// and the batch itself) before any is registered, so a failed load
// leaves the catalog untouched and can be retried after fixing the
// file.
func (c *Catalog) LoadJSON(data []byte) error {
	var raw []specJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("hardware: parsing catalog JSON: %w", err)
	}
	specs := make([]Spec, 0, len(raw))
	seen := make(map[string]bool, len(raw))
	for i, sj := range raw {
		kind, err := kindFromString(sj.Kind)
		if err != nil {
			return fmt.Errorf("hardware: catalog entry %d (%q): %w", i, sj.Name, err)
		}
		sp := Spec{
			Name:           sj.Name,
			Kind:           kind,
			CapacityGB:     sj.CapacityGB,
			ThroughputMBps: sj.ThroughputMBps,
			IOPS:           sj.IOPS,
			Cores:          sj.Cores,
			Ports:          sj.Ports,
			CostUSD:        sj.CostUSD,
			PowerWatts:     sj.PowerWatts,
			TTF:            sj.TTF.Dist,
			Repair:         sj.Repair.Dist,
		}
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("hardware: catalog entry %d: %w", i, err)
		}
		if _, dup := c.specs[sp.Name]; dup || seen[sp.Name] {
			return fmt.Errorf("hardware: catalog entry %d: duplicate spec %q", i, sp.Name)
		}
		seen[sp.Name] = true
		specs = append(specs, sp)
	}
	for _, sp := range specs {
		if err := c.Add(sp); err != nil {
			return fmt.Errorf("hardware: catalog entry %q: %w", sp.Name, err)
		}
	}
	return nil
}
