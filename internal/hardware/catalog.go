package hardware

import (
	"fmt"
	"sort"

	"repro/internal/dist"
)

// Catalog is a named collection of component specs — the menu the
// provisioning use case (§3: "should I invest in storage or memory?")
// sweeps over.
type Catalog struct {
	specs map[string]Spec
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{specs: make(map[string]Spec)}
}

// Add registers a spec, rejecting duplicates and invalid specs.
func (c *Catalog) Add(sp Spec) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	if _, dup := c.specs[sp.Name]; dup {
		return fmt.Errorf("hardware: duplicate spec %q", sp.Name)
	}
	c.specs[sp.Name] = sp
	return nil
}

// Get returns the spec registered under name.
func (c *Catalog) Get(name string) (Spec, error) {
	sp, ok := c.specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("hardware: unknown spec %q", name)
	}
	return sp, nil
}

// Names returns all registered spec names, sorted.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.specs))
	for n := range c.specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OfKind returns the names of specs of the given kind, sorted.
func (c *Catalog) OfKind(k Kind) []string {
	var names []string
	for n, sp := range c.specs {
		if sp.Kind == k {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Hours in common periods, used to parameterize failure distributions.
const (
	HoursPerYear = 8766.0
)

// weibullFromAFRShape returns a Weibull TTF whose annualized failure
// probability matches afr at the given shape: P(TTF <= 1yr) = afr.
func weibullFromAFRShape(afr, shape float64) dist.Dist {
	// CDF(t) = 1 - exp(-(t/scale)^shape) = afr at t = 1 year.
	// scale = t / (-ln(1-afr))^(1/shape).
	w := dist.Must(dist.NewWeibull(shape, 1))
	scale := HoursPerYear / w.Quantile(afr)
	return dist.Must(dist.NewWeibull(shape, scale))
}

// DefaultCatalog returns the built-in spec menu. Failure parameters follow
// the shapes of the field studies the paper cites: disks use Weibull TTF
// with shape 0.7 calibrated to published annualized failure rates (2-4%
// observed vs. 0.88% datasheet, Schroeder & Gibson); repairs are LogNormal
// with a multi-hour median. Prices and speeds are 2014-era list values —
// the wind tunnel compares configurations, so only ratios matter.
func DefaultCatalog() *Catalog {
	c := NewCatalog()
	lnRepair := func(meanHours, cv float64) dist.Dist {
		return dist.Must(dist.LogNormalFromMoments(meanHours, cv))
	}
	specs := []Spec{
		{
			Name: "hdd-7200", Kind: KindDisk,
			CapacityGB: 2000, ThroughputMBps: 150, IOPS: 120,
			CostUSD: 100, PowerWatts: 8,
			TTF:    weibullFromAFRShape(0.03, 0.7),
			Repair: lnRepair(12, 1.2),
		},
		{
			Name: "hdd-15k", Kind: KindDisk,
			CapacityGB: 600, ThroughputMBps: 250, IOPS: 210,
			CostUSD: 180, PowerWatts: 11,
			TTF:    weibullFromAFRShape(0.025, 0.7),
			Repair: lnRepair(12, 1.2),
		},
		{
			Name: "ssd-sata", Kind: KindDisk,
			CapacityGB: 480, ThroughputMBps: 500, IOPS: 75000,
			CostUSD: 350, PowerWatts: 4,
			TTF:    weibullFromAFRShape(0.015, 0.9),
			Repair: lnRepair(8, 1.0),
		},
		{
			Name: "ssd-nvme", Kind: KindDisk,
			CapacityGB: 800, ThroughputMBps: 2000, IOPS: 400000,
			CostUSD: 900, PowerWatts: 7,
			TTF:    weibullFromAFRShape(0.012, 0.9),
			Repair: lnRepair(8, 1.0),
		},
		{
			Name: "nic-1g", Kind: KindNIC,
			ThroughputMBps: 125,
			CostUSD:        30, PowerWatts: 3,
			TTF:    weibullFromAFRShape(0.01, 0.8),
			Repair: lnRepair(6, 1.0),
		},
		{
			Name: "nic-10g", Kind: KindNIC,
			ThroughputMBps: 1250,
			CostUSD:        250, PowerWatts: 8,
			TTF:    weibullFromAFRShape(0.01, 0.8),
			Repair: lnRepair(6, 1.0),
		},
		{
			Name: "nic-40g", Kind: KindNIC,
			ThroughputMBps: 5000,
			CostUSD:        700, PowerWatts: 12,
			TTF:    weibullFromAFRShape(0.012, 0.8),
			Repair: lnRepair(6, 1.0),
		},
		{
			Name: "cpu-8c", Kind: KindCPU,
			Cores:   8,
			CostUSD: 400, PowerWatts: 85,
			TTF:    weibullFromAFRShape(0.005, 1.0),
			Repair: lnRepair(24, 0.8),
		},
		{
			Name: "cpu-16c", Kind: KindCPU,
			Cores:   16,
			CostUSD: 900, PowerWatts: 135,
			TTF:    weibullFromAFRShape(0.005, 1.0),
			Repair: lnRepair(24, 0.8),
		},
		{
			Name: "mem-16g", Kind: KindMemory,
			CapacityGB: 16,
			CostUSD:    160, PowerWatts: 5,
			TTF:    weibullFromAFRShape(0.004, 1.0),
			Repair: lnRepair(24, 0.8),
		},
		{
			Name: "mem-64g", Kind: KindMemory,
			CapacityGB: 64,
			CostUSD:    620, PowerWatts: 15,
			TTF:    weibullFromAFRShape(0.004, 1.0),
			Repair: lnRepair(24, 0.8),
		},
		{
			Name: "mem-128g", Kind: KindMemory,
			CapacityGB: 128,
			CostUSD:    1300, PowerWatts: 25,
			TTF:    weibullFromAFRShape(0.004, 1.0),
			Repair: lnRepair(24, 0.8),
		},
		{
			Name: "switch-48p-10g", Kind: KindSwitch,
			Ports: 48, ThroughputMBps: 1250,
			CostUSD: 5000, PowerWatts: 200,
			TTF:    weibullFromAFRShape(0.02, 0.9),
			Repair: lnRepair(4, 0.9),
		},
		{
			Name: "switch-48p-1g", Kind: KindSwitch,
			Ports: 48, ThroughputMBps: 125,
			CostUSD: 1200, PowerWatts: 120,
			TTF:    weibullFromAFRShape(0.02, 0.9),
			Repair: lnRepair(4, 0.9),
		},
		{
			Name: "psu-800w", Kind: KindPSU,
			CostUSD: 120, PowerWatts: 0,
			TTF:    weibullFromAFRShape(0.025, 0.8),
			Repair: lnRepair(4, 0.9),
		},
		// Power hierarchy (internal/power). PowerWatts is 0: conversion
		// and distribution losses are charged through the PUE multiplier,
		// not itemized per element. AFRs follow field observations that
		// PDUs fail rarely but take whole rack groups with them, and that
		// UPS electronics/battery strings fail more often than PDUs.
		{
			Name: "pdu-basic", Kind: KindPDU,
			CostUSD: 2500, PowerWatts: 0,
			TTF:    weibullFromAFRShape(0.012, 0.9),
			Repair: lnRepair(8, 1.0),
		},
		{
			Name: "pdu-redundant", Kind: KindPDU,
			CostUSD: 6000, PowerWatts: 0,
			TTF:    weibullFromAFRShape(0.004, 0.9),
			Repair: lnRepair(8, 1.0),
		},
		{
			Name: "ups-240kva", Kind: KindUPS,
			CostUSD: 60000, PowerWatts: 0,
			TTF:    weibullFromAFRShape(0.03, 0.9),
			Repair: lnRepair(24, 1.0),
		},
	}
	for _, sp := range specs {
		if err := c.Add(sp); err != nil {
			panic(err) // built-in catalog must be valid
		}
	}
	return c
}
