package hardware

import (
	"math"
	"strings"
	"testing"
)

func TestLoadJSONRegistersSpecs(t *testing.T) {
	c := NewCatalog()
	data := `[
	  {
	    "name": "hdd-archive", "kind": "disk",
	    "capacity_gb": 8000, "throughput_mbps": 180, "iops": 100,
	    "cost_usd": 250, "power_watts": 9,
	    "ttf": "weibull(shape=0.7, scale=250000)",
	    "repair": "lognormal(mean=16, cv=1.2)"
	  },
	  {
	    "name": "nic-100g", "kind": "nic",
	    "throughput_mbps": 12500,
	    "cost_usd": 1500, "power_watts": 20,
	    "ttf": "exp(mean=500000)",
	    "repair": "mix(0.9*det(2), 0.1*det(24))"
	  }
	]`
	if err := c.LoadJSON([]byte(data)); err != nil {
		t.Fatal(err)
	}
	sp, err := c.Get("hdd-archive")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != KindDisk || sp.CapacityGB != 8000 {
		t.Errorf("spec fields wrong: %+v", sp)
	}
	if err := sp.Validate(); err != nil {
		t.Errorf("loaded spec invalid: %v", err)
	}
	nic, err := c.Get("nic-100g")
	if err != nil {
		t.Fatal(err)
	}
	// 0.9*2 + 0.1*24 = 4.2 hour mean repair.
	if got := nic.Repair.Mean(); math.Abs(got-4.2) > 1e-9 {
		t.Errorf("mixture repair mean = %v, want 4.2", got)
	}
}

func TestLoadJSONRejectsBadEntries(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not json", `{`, "parsing"},
		{"unknown kind", `[{"name": "x", "kind": "quantum", "ttf": "det(1)", "repair": "det(1)"}]`, "kind"},
		{"bad dist spec", `[{"name": "x", "kind": "disk", "ttf": "frechet(1)", "repair": "det(1)"}]`, "frechet"},
		{"missing dists", `[{"name": "x", "kind": "disk"}]`, "missing TTF"},
		{"empty name", `[{"kind": "disk", "ttf": "det(1)", "repair": "det(1)"}]`, "empty name"},
	}
	for _, c := range cases {
		err := NewCatalog().LoadJSON([]byte(c.data))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// Duplicate against an existing entry.
	c := DefaultCatalog()
	dup := `[{"name": "hdd-7200", "kind": "disk", "ttf": "det(1)", "repair": "det(1)"}]`
	if err := c.LoadJSON([]byte(dup)); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestLoadJSONIsAtomic(t *testing.T) {
	c := NewCatalog()
	// Entry 2 is broken; entry 1 must NOT be registered.
	data := `[
	  {"name": "good", "kind": "disk", "ttf": "det(1)", "repair": "det(1)"},
	  {"name": "bad", "kind": "quantum", "ttf": "det(1)", "repair": "det(1)"}
	]`
	if err := c.LoadJSON([]byte(data)); err == nil {
		t.Fatal("broken catalog accepted")
	}
	if _, err := c.Get("good"); err == nil {
		t.Error("failed load left entries behind (not atomic)")
	}
	// Retry with the fixed file succeeds.
	fixed := `[
	  {"name": "good", "kind": "disk", "ttf": "det(1)", "repair": "det(1)"},
	  {"name": "bad", "kind": "cpu", "ttf": "det(1)", "repair": "det(1)"}
	]`
	if err := c.LoadJSON([]byte(fixed)); err != nil {
		t.Fatalf("retry after fix failed: %v", err)
	}
	// Intra-batch duplicates are caught up front too.
	dup := `[
	  {"name": "twin", "kind": "disk", "ttf": "det(1)", "repair": "det(1)"},
	  {"name": "twin", "kind": "disk", "ttf": "det(1)", "repair": "det(1)"}
	]`
	if err := NewCatalog().LoadJSON([]byte(dup)); err == nil {
		t.Error("intra-batch duplicate accepted")
	}
}
