package hardware

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
)

func testSpec() Spec {
	return Spec{
		Name: "test-disk", Kind: KindDisk,
		CapacityGB: 100, ThroughputMBps: 100, IOPS: 100,
		CostUSD: 50, PowerWatts: 5,
		TTF:    dist.Must(dist.ExpMean(1000)),
		Repair: dist.Must(dist.NewDeterministic(10)),
	}
}

func TestSpecValidation(t *testing.T) {
	sp := testSpec()
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := sp
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = sp
	bad.TTF = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil TTF accepted")
	}
	bad = sp
	bad.CostUSD = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestComponentLifecycleCycles(t *testing.T) {
	s := sim.New(42)
	c, err := NewComponent(1, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	fails, repairs := 0, 0
	c.OnFail(func(*Component) { fails++ })
	c.OnRepair(func(*Component) { repairs++ })
	c.StartLifecycle(s, s.Stream("disk-1"))
	s.RunUntil(100000) // ~100 MTTFs
	c.StopLifecycle(s)
	if fails < 50 {
		t.Errorf("only %d failures in 100 expected lifetimes", fails)
	}
	if math.Abs(float64(fails-repairs)) > 1 {
		t.Errorf("fails %d and repairs %d differ by more than the in-flight one", fails, repairs)
	}
	// Downtime fraction should approach 10/1010.
	frac := c.TotalDowntime(s.Now()) / s.Now()
	want := 10.0 / 1010
	if math.Abs(frac-want) > 0.01 {
		t.Errorf("downtime fraction %v, want ~%v", frac, want)
	}
}

func TestComponentStateTransitions(t *testing.T) {
	c, err := NewComponent(1, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != StateHealthy || c.PerfFactor() != 1 {
		t.Fatal("new component not healthy at full speed")
	}
	c.Fail(5)
	if c.State() != StateFailed || c.PerfFactor() != 0 {
		t.Fatal("failed component should report state failed, perf 0")
	}
	c.Fail(6) // no-op
	if c.Failures() != 1 {
		t.Errorf("double fail counted: %d", c.Failures())
	}
	c.Restore(15)
	if c.State() != StateHealthy {
		t.Fatal("restore did not heal")
	}
	if got := c.TotalDowntime(20); math.Abs(got-10) > 1e-12 {
		t.Errorf("downtime = %v, want 10", got)
	}
}

func TestDegradeLimpware(t *testing.T) {
	c, err := NewComponent(1, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	degraded := false
	c.OnDegrade(func(*Component) { degraded = true })
	if err := c.Degrade(1, 0.01); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateDegraded || c.PerfFactor() != 0.01 {
		t.Fatalf("state=%v perf=%v, want degraded at 0.01", c.State(), c.PerfFactor())
	}
	if !degraded {
		t.Error("OnDegrade hook not called")
	}
	// Factor 1 restores.
	if err := c.Degrade(2, 1); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateHealthy {
		t.Error("Degrade(1.0) should restore health")
	}
	// Invalid factors rejected.
	if err := c.Degrade(3, 0); err == nil {
		t.Error("factor 0 accepted")
	}
	if err := c.Degrade(3, 1.5); err == nil {
		t.Error("factor > 1 accepted")
	}
	// Degrading a failed component is a no-op.
	c.Fail(4)
	if err := c.Degrade(5, 0.5); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateFailed {
		t.Error("degrade resurrected a failed component")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if err := c.Add(testSpec()); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(testSpec()); err == nil {
		t.Error("duplicate spec accepted")
	}
	if _, err := c.Get("test-disk"); err != nil {
		t.Errorf("registered spec not found: %v", err)
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("unknown spec returned without error")
	}
}

func TestDefaultCatalogComplete(t *testing.T) {
	c := DefaultCatalog()
	wantKinds := map[Kind]int{
		KindDisk: 4, KindNIC: 3, KindCPU: 2, KindMemory: 3, KindSwitch: 2, KindPSU: 1,
	}
	for k, want := range wantKinds {
		if got := len(c.OfKind(k)); got != want {
			t.Errorf("%v specs: got %d, want %d", k, got, want)
		}
	}
	for _, name := range c.Names() {
		sp, err := c.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("catalog spec %q invalid: %v", name, err)
		}
	}
}

func TestWeibullAFRCalibration(t *testing.T) {
	// The hdd-7200 TTF must put 3% probability mass within one year.
	c := DefaultCatalog()
	sp, err := c.Get("hdd-7200")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.TTF.CDF(HoursPerYear); math.Abs(got-0.03) > 1e-9 {
		t.Errorf("P(TTF <= 1yr) = %v, want 0.03", got)
	}
	// And the shape must be sub-exponential (infant mortality), i.e. more
	// early failures than an exponential with the same 1-year mass.
	exp := dist.Must(dist.ExpMean(HoursPerYear / -math.Log(0.97)))
	quarterYear := HoursPerYear / 4
	if sp.TTF.CDF(quarterYear) <= exp.CDF(quarterYear) {
		t.Error("Weibull(0.7) should front-load failures relative to exponential")
	}
}

func TestNICSpeedOrdering(t *testing.T) {
	c := DefaultCatalog()
	g1, _ := c.Get("nic-1g")
	g10, _ := c.Get("nic-10g")
	g40, _ := c.Get("nic-40g")
	if !(g1.ThroughputMBps < g10.ThroughputMBps && g10.ThroughputMBps < g40.ThroughputMBps) {
		t.Error("NIC throughput not ordered 1g < 10g < 40g")
	}
	if !(g1.CostUSD < g10.CostUSD && g10.CostUSD < g40.CostUSD) {
		t.Error("NIC cost not ordered 1g < 10g < 40g")
	}
}

func TestStopLifecycle(t *testing.T) {
	s := sim.New(1)
	c, err := NewComponent(1, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	c.StartLifecycle(s, s.Stream("x"))
	c.StopLifecycle(s)
	s.Run()
	if c.Failures() != 0 {
		t.Errorf("lifecycle continued after stop: %d failures", c.Failures())
	}
}

func TestKindString(t *testing.T) {
	if KindDisk.String() != "disk" || KindSwitch.String() != "switch" {
		t.Error("kind names wrong")
	}
	if StateHealthy.String() != "healthy" || StateFailed.String() != "failed" {
		t.Error("state names wrong")
	}
}
