// Package hardware models data center hardware components: disks, NICs,
// CPUs, memory modules and switches, each with a performance spec, a cost,
// and data-driven failure/repair distributions (§4.5 of the paper).
//
// Failure distributions default to the shapes reported by the studies the
// paper cites: Weibull times-between-replacement with shape < 1 for disks
// (Schroeder & Gibson, FAST'07 [15]) and LogNormal repair durations [16].
// Every spec field can be overridden, and internal/trace can fit
// replacement distributions from (synthetic) operational logs instead.
//
// The package also models performance-degraded components — "limpware"
// (Do et al., SoCC'13, the paper's [5]): a component that is up but
// running at a fraction of its specified speed.
package hardware

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Kind enumerates component classes.
type Kind int

const (
	KindDisk Kind = iota
	KindNIC
	KindCPU
	KindMemory
	KindSwitch
	KindPSU
	// Power-hierarchy elements (internal/power): rack/row power
	// distribution units and facility UPSes.
	KindPDU
	KindUPS
)

var kindNames = map[Kind]string{
	KindDisk:   "disk",
	KindNIC:    "nic",
	KindCPU:    "cpu",
	KindMemory: "memory",
	KindSwitch: "switch",
	KindPSU:    "psu",
	KindPDU:    "pdu",
	KindUPS:    "ups",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Spec describes a purchasable component model. Throughput-like fields
// are zero when not applicable to the kind.
type Spec struct {
	Name string
	Kind Kind

	// Performance.
	CapacityGB     float64 // disks, memory
	ThroughputMBps float64 // disks (sequential), NICs, switch per-port
	IOPS           float64 // disks (random)
	Cores          int     // CPUs
	Ports          int     // switches

	// Economics.
	CostUSD    float64
	PowerWatts float64

	// Reliability. TTF is the time-to-failure distribution and Repair the
	// repair/replacement duration distribution, both in hours.
	TTF    dist.Dist
	Repair dist.Dist
}

// Validate checks that the spec is internally consistent.
func (sp Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("hardware: spec has empty name")
	}
	if sp.TTF == nil || sp.Repair == nil {
		return fmt.Errorf("hardware: spec %q missing TTF or Repair distribution", sp.Name)
	}
	if sp.CostUSD < 0 || sp.PowerWatts < 0 || sp.CapacityGB < 0 ||
		sp.ThroughputMBps < 0 || sp.IOPS < 0 {
		return fmt.Errorf("hardware: spec %q has negative attribute", sp.Name)
	}
	return nil
}

// State is a component's operational state.
type State int

const (
	StateHealthy State = iota
	StateDegraded
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Component is one physical instance of a Spec with a failure/repair
// lifecycle driven by the simulator.
type Component struct {
	ID   int
	Spec Spec

	state       State
	perfFactor  float64 // 1 = full speed; meaningful when degraded
	failures    int64
	repairs     int64
	downSince   sim.Time
	totalDown   sim.Time
	lastChange  sim.Time
	onFail      []func(*Component)
	onRepair    []func(*Component)
	onDegrade   []func(*Component)
	lifecycleEv *sim.Event
}

// NewComponent instantiates spec with the given id.
func NewComponent(id int, spec Spec) (*Component, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Component{ID: id, Spec: spec, state: StateHealthy, perfFactor: 1}, nil
}

// State returns the current operational state.
func (c *Component) State() State { return c.state }

// PerfFactor returns the current performance multiplier in (0, 1]: 1 when
// healthy, the degradation fraction when limping, and 0 when failed.
func (c *Component) PerfFactor() float64 {
	if c.state == StateFailed {
		return 0
	}
	return c.perfFactor
}

// Failures returns the number of failures so far.
func (c *Component) Failures() int64 { return c.failures }

// Repairs returns the number of completed repairs.
func (c *Component) Repairs() int64 { return c.repairs }

// TotalDowntime returns accumulated failed time up to now.
func (c *Component) TotalDowntime(now sim.Time) sim.Time {
	d := c.totalDown
	if c.state == StateFailed {
		d += now - c.downSince
	}
	return d
}

// OnFail registers fn to run when the component fails.
func (c *Component) OnFail(fn func(*Component)) { c.onFail = append(c.onFail, fn) }

// OnRepair registers fn to run when the component is repaired.
func (c *Component) OnRepair(fn func(*Component)) { c.onRepair = append(c.onRepair, fn) }

// OnDegrade registers fn to run when the component degrades (limpware).
func (c *Component) OnDegrade(fn func(*Component)) { c.onDegrade = append(c.onDegrade, fn) }

// StartLifecycle wires the component's failure/repair process into s,
// drawing from stream. Times are in the TTF/Repair distributions' unit
// (hours by convention). The cycle is: healthy --TTF--> failed --Repair-->
// healthy --TTF--> ...
func (c *Component) StartLifecycle(s *sim.Simulator, stream *rng.Source) {
	c.scheduleFailure(s, stream)
}

func (c *Component) scheduleFailure(s *sim.Simulator, stream *rng.Source) {
	ttf := c.Spec.TTF.Sample(stream)
	c.lifecycleEv = s.Schedule(ttf, fmt.Sprintf("%s#%d/fail", c.Spec.Kind, c.ID), func() {
		c.Fail(s.Now())
		rep := c.Spec.Repair.Sample(stream)
		c.lifecycleEv = s.Schedule(rep, fmt.Sprintf("%s#%d/repair", c.Spec.Kind, c.ID), func() {
			c.Restore(s.Now())
			c.scheduleFailure(s, stream)
		})
	})
}

// StopLifecycle cancels any pending lifecycle event.
func (c *Component) StopLifecycle(s *sim.Simulator) {
	if c.lifecycleEv != nil {
		s.Cancel(c.lifecycleEv)
		c.lifecycleEv = nil
	}
}

// Fail transitions the component to failed at time now. Failing a failed
// component is a no-op.
func (c *Component) Fail(now sim.Time) {
	if c.state == StateFailed {
		return
	}
	c.state = StateFailed
	c.failures++
	c.downSince = now
	c.lastChange = now
	for _, fn := range c.onFail {
		fn(c)
	}
}

// Restore transitions the component to healthy at time now.
func (c *Component) Restore(now sim.Time) {
	if c.state == StateHealthy {
		return
	}
	if c.state == StateFailed {
		c.totalDown += now - c.downSince
		c.repairs++
	}
	c.state = StateHealthy
	c.perfFactor = 1
	c.lastChange = now
	for _, fn := range c.onRepair {
		fn(c)
	}
}

// Degrade marks the component as limpware running at factor (0 < factor
// < 1) of its specified performance. Degrading a failed component is a
// no-op; factor 1 restores health.
func (c *Component) Degrade(now sim.Time, factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("hardware: degrade factor %v outside (0, 1]", factor)
	}
	if c.state == StateFailed {
		return nil
	}
	if factor == 1 {
		c.Restore(now)
		return nil
	}
	c.state = StateDegraded
	c.perfFactor = factor
	c.lastChange = now
	for _, fn := range c.onDegrade {
		fn(c)
	}
	return nil
}
