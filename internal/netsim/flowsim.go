package netsim

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Flow is an in-progress bulk transfer.
type Flow struct {
	ID        int
	Src, Dst  NodeID
	size      float64 // MB
	remaining float64
	route     []*Link
	rate      float64 // MB per time unit, 0 while in latency phase
	lastSet   sim.Time
	started   sim.Time
	active    bool
	done      func(f *Flow)
	failed    func(f *Flow, err error)
	event     *sim.Event
}

// Size returns the flow's total size in MB.
func (f *Flow) Size() float64 { return f.size }

// Rate returns the instantaneous allocated rate.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns bytes left as of the last allocation update.
func (f *Flow) Remaining() float64 { return f.remaining }

// FlowSim schedules fluid flows over a Topology with max–min fair
// bandwidth allocation, driving completion callbacks through the
// simulator.
type FlowSim struct {
	sim    *sim.Simulator
	topo   *Topology
	flows  map[int]*Flow
	nextID int

	// Metrics.
	started   int64
	completed int64
	aborted   int64
	bytes     float64 // MB delivered
}

// NewFlowSim couples a simulator and a topology.
func NewFlowSim(s *sim.Simulator, t *Topology) *FlowSim {
	return &FlowSim{sim: s, topo: t, flows: make(map[int]*Flow)}
}

// Active returns the number of in-flight flows.
func (fs *FlowSim) Active() int { return len(fs.flows) }

// Flows returns the in-flight flows (active and latency-phase), in
// unspecified order. Intended for tests and diagnostics.
func (fs *FlowSim) Flows() []*Flow {
	out := make([]*Flow, 0, len(fs.flows))
	for _, f := range fs.flows {
		out = append(out, f)
	}
	return out
}

// IsActive reports whether the flow has passed its latency phase and is
// consuming bandwidth.
func (f *Flow) IsActive() bool { return f.active }

// Route returns the links the flow currently crosses.
func (f *Flow) Route() []*Link { return f.route }

// Completed returns the number of finished flows.
func (fs *FlowSim) Completed() int64 { return fs.completed }

// Aborted returns the number of flows killed by link failures.
func (fs *FlowSim) Aborted() int64 { return fs.aborted }

// BytesDelivered returns total MB delivered by completed flows.
func (fs *FlowSim) BytesDelivered() float64 { return fs.bytes }

// Start begins a transfer of sizeMB from src to dst. done fires on
// completion; failed fires if the flow is aborted by a link failure and
// cannot be rerouted (either callback may be nil). The route's propagation
// latency elapses before bandwidth is consumed.
func (fs *FlowSim) Start(src, dst NodeID, sizeMB float64, done func(*Flow), failed func(*Flow, error)) (*Flow, error) {
	if sizeMB <= 0 || math.IsNaN(sizeMB) {
		return nil, fmt.Errorf("netsim: flow size must be > 0, got %v", sizeMB)
	}
	route, err := fs.topo.Route(src, dst)
	if err != nil {
		return nil, err
	}
	f := &Flow{
		ID: fs.nextID, Src: src, Dst: dst,
		size: sizeMB, remaining: sizeMB, route: route,
		started: fs.sim.Now(), done: done, failed: failed,
	}
	fs.nextID++
	fs.flows[f.ID] = f
	fs.started++
	lat := RouteLatency(route)
	if len(route) == 0 {
		// Local transfer: completes after latency only (disk-to-disk
		// copy on the same host is not network-bound).
		f.event = fs.sim.Schedule(lat, "flow/local-done", func() { fs.finish(f) })
		return f, nil
	}
	f.event = fs.sim.Schedule(lat, "flow/activate", func() {
		f.active = true
		f.lastSet = fs.sim.Now()
		fs.recompute()
	})
	return f, nil
}

// Cancel aborts a flow without invoking callbacks.
func (fs *FlowSim) Cancel(f *Flow) {
	if _, ok := fs.flows[f.ID]; !ok {
		return
	}
	fs.removeFlow(f)
	fs.recompute()
}

// finish completes a flow.
func (fs *FlowSim) finish(f *Flow) {
	fs.bytes += f.size
	fs.completed++
	fs.removeFlow(f)
	if f.done != nil {
		f.done(f)
	}
	fs.recompute()
}

func (fs *FlowSim) removeFlow(f *Flow) {
	if f.event != nil {
		fs.sim.Cancel(f.event)
		f.event = nil
	}
	delete(fs.flows, f.ID)
	f.active = false
}

// OnLinkChange must be called after any link state change; it reroutes or
// aborts affected flows and reallocates bandwidth.
func (fs *FlowSim) OnLinkChange() {
	now := fs.sim.Now()
	// Settle progress before rerouting.
	fs.settle(now)
	for _, f := range fs.flows {
		if !f.active {
			continue
		}
		broken := false
		for _, l := range f.route {
			if !l.up {
				broken = true
				break
			}
		}
		if !broken {
			continue
		}
		route, err := fs.topo.Route(f.Src, f.Dst)
		if err != nil {
			fs.aborted++
			fs.removeFlow(f)
			if f.failed != nil {
				f.failed(f, err)
			}
			continue
		}
		f.route = route
	}
	fs.recompute()
}

// settle banks transfer progress for all active flows up to now.
func (fs *FlowSim) settle(now sim.Time) {
	for _, f := range fs.flows {
		if !f.active {
			continue
		}
		f.remaining -= f.rate * (now - f.lastSet)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.lastSet = now
	}
}

// recompute reruns max–min fair allocation and reschedules completions.
func (fs *FlowSim) recompute() {
	now := fs.sim.Now()
	fs.settle(now)

	// Progressive filling over active flows.
	type linkState struct {
		residual float64
		flows    []*Flow
	}
	states := make(map[*Link]*linkState)
	var unfrozen []*Flow
	for _, f := range fs.flows {
		if !f.active {
			continue
		}
		unfrozen = append(unfrozen, f)
		f.rate = math.Inf(1)
		for _, l := range f.route {
			st := states[l]
			if st == nil {
				st = &linkState{residual: l.Capacity}
				states[l] = st
			}
			st.flows = append(st.flows, f)
		}
	}
	frozen := make(map[int]bool)
	for len(unfrozen) > 0 {
		// Find the bottleneck link: minimum fair share among links that
		// still carry unfrozen flows.
		var bottleneck *Link
		share := math.Inf(1)
		for l, st := range states {
			n := 0
			for _, f := range st.flows {
				if !frozen[f.ID] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			s := st.residual / float64(n)
			if s < share {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			// No capacity constraints left (shouldn't happen for routed
			// flows, every route has >= 1 link).
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		newUnfrozen := unfrozen[:0]
		for _, f := range unfrozen {
			crosses := false
			for _, l := range f.route {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				newUnfrozen = append(newUnfrozen, f)
				continue
			}
			frozen[f.ID] = true
			f.rate = share
			for _, l := range f.route {
				states[l].residual -= share
				if states[l].residual < 0 {
					states[l].residual = 0
				}
			}
		}
		unfrozen = newUnfrozen
	}

	// Reschedule completion events at the new rates.
	for _, f := range fs.flows {
		if !f.active {
			continue
		}
		if f.event != nil {
			fs.sim.Cancel(f.event)
			f.event = nil
		}
		if f.rate <= 0 || math.IsInf(f.rate, 1) {
			continue
		}
		f := f
		delay := f.remaining / f.rate
		f.event = fs.sim.Schedule(delay, "flow/done", func() { fs.finish(f) })
	}
}
