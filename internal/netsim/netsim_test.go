package netsim

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestRouteSingleSwitch(t *testing.T) {
	topo, hosts, err := SingleSwitch(4, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	route, err := topo.Route(hosts[0], hosts[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 {
		t.Fatalf("route length %d, want 2 (host-sw, sw-host)", len(route))
	}
	// Self route is empty.
	route, err = topo.Route(hosts[1], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 0 {
		t.Fatalf("self route has %d links, want 0", len(route))
	}
}

func TestRouteTwoTier(t *testing.T) {
	topo, hosts, tors, err := TwoTier(TwoTierConfig{
		Racks: 3, HostsPerRack: 4, HostLinkCap: 125, UplinkCap: 1250, LinkLatency: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 12 || len(tors) != 3 {
		t.Fatalf("got %d hosts, %d tors", len(hosts), len(tors))
	}
	// Same rack: 2 hops. Cross rack: 4 hops (host-tor-core-tor-host).
	sameRack, err := topo.Route(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(sameRack) != 2 {
		t.Errorf("same-rack route %d links, want 2", len(sameRack))
	}
	crossRack, err := topo.Route(hosts[0], hosts[4])
	if err != nil {
		t.Fatal(err)
	}
	if len(crossRack) != 4 {
		t.Errorf("cross-rack route %d links, want 4", len(crossRack))
	}
	if got, want := RouteLatency(crossRack), 0.004; math.Abs(got-want) > 1e-12 {
		t.Errorf("cross-rack latency %v, want %v", got, want)
	}
}

func TestRouteAvoidsDownLinks(t *testing.T) {
	topo := NewTopology()
	a := topo.AddNode(Host, "a")
	b := topo.AddNode(Host, "b")
	s1 := topo.AddNode(Switch, "s1")
	s2 := topo.AddNode(Switch, "s2")
	// Two parallel paths a-s1-b and a-s2-b.
	l1, err := topo.AddLink(a, s1, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AddLink(s1, b, 100, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AddLink(a, s2, 100, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AddLink(s2, b, 100, 0); err != nil {
		t.Fatal(err)
	}
	topo.SetLinkUp(l1, false)
	route, err := topo.Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range route {
		if !l.Up() {
			t.Fatal("route uses a down link")
		}
		if l == l1 {
			t.Fatal("route uses the failed link")
		}
	}
}

func TestRouteUnreachable(t *testing.T) {
	topo := NewTopology()
	a := topo.AddNode(Host, "a")
	b := topo.AddNode(Host, "b")
	if _, err := topo.Route(a, b); err == nil {
		t.Fatal("disconnected nodes produced a route")
	}
}

func TestLinkValidation(t *testing.T) {
	topo := NewTopology()
	a := topo.AddNode(Host, "a")
	if _, err := topo.AddLink(a, a, 100, 0); err == nil {
		t.Error("self link accepted")
	}
	if _, err := topo.AddLink(a, NodeID(99), 100, 0); err == nil {
		t.Error("link to missing node accepted")
	}
	b := topo.AddNode(Host, "b")
	if _, err := topo.AddLink(a, b, 0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := topo.AddLink(a, b, 10, -1); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestSingleFlowFullBandwidth(t *testing.T) {
	s := sim.New(1)
	topo, hosts, err := SingleSwitch(2, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlowSim(s, topo)
	var doneAt sim.Time = -1
	if _, err := fs.Start(hosts[0], hosts[1], 500, func(*Flow) { doneAt = s.Now() }, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// 500 MB at 100 MB/unit = 5 units.
	if math.Abs(doneAt-5) > 1e-9 {
		t.Fatalf("flow finished at %v, want 5", doneAt)
	}
	if fs.Completed() != 1 || fs.BytesDelivered() != 500 {
		t.Fatalf("completed=%d bytes=%v", fs.Completed(), fs.BytesDelivered())
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	s := sim.New(1)
	topo, hosts, err := SingleSwitch(3, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlowSim(s, topo)
	var t1, t2 sim.Time = -1, -1
	// Both flows target host 2: its access link is the shared bottleneck.
	if _, err := fs.Start(hosts[0], hosts[2], 100, func(*Flow) { t1 = s.Now() }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Start(hosts[1], hosts[2], 100, func(*Flow) { t2 = s.Now() }, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// Each gets 50 MB/unit while both active: both finish at t=2.
	if math.Abs(t1-2) > 1e-9 || math.Abs(t2-2) > 1e-9 {
		t.Fatalf("flows finished at %v, %v; want 2, 2", t1, t2)
	}
}

func TestFlowSpeedsUpWhenCompetitorFinishes(t *testing.T) {
	s := sim.New(1)
	topo, hosts, err := SingleSwitch(3, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlowSim(s, topo)
	var tBig sim.Time = -1
	if _, err := fs.Start(hosts[0], hosts[2], 300, func(*Flow) { tBig = s.Now() }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Start(hosts[1], hosts[2], 100, func(*Flow) {}, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// Shared 50/50 until small flow finishes at t=2 (100MB at 50), big has
	// 200 left, then full 100 MB/unit: 2 more units. Total 4.
	if math.Abs(tBig-4) > 1e-9 {
		t.Fatalf("big flow finished at %v, want 4", tBig)
	}
}

func TestMaxMinUnevenPaths(t *testing.T) {
	// Flow A crosses a narrow uplink; flow B shares only the wide access
	// link with A and should get the leftovers (max-min, not equal split).
	s := sim.New(1)
	topo, hosts, _, err := TwoTier(TwoTierConfig{
		Racks: 2, HostsPerRack: 2, HostLinkCap: 100, UplinkCap: 30, LinkLatency: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlowSim(s, topo)
	var tA, tB sim.Time = -1, -1
	// A: cross-rack (bottleneck 30). B: same-rack to A's source host peer.
	if _, err := fs.Start(hosts[0], hosts[2], 30, func(*Flow) { tA = s.Now() }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Start(hosts[1], hosts[0], 70, func(*Flow) { tB = s.Now() }, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// A is limited to 30 by the uplink. B shares host-0's access link
	// (100) with A: max-min gives B 70, A 30. Both finish at t=1.
	if math.Abs(tA-1) > 1e-9 {
		t.Errorf("flow A finished at %v, want 1", tA)
	}
	if math.Abs(tB-1) > 1e-9 {
		t.Errorf("flow B finished at %v, want 1", tB)
	}
}

func TestFlowLatencyDelaysStart(t *testing.T) {
	s := sim.New(1)
	topo, hosts, err := SingleSwitch(2, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlowSim(s, topo)
	var doneAt sim.Time = -1
	if _, err := fs.Start(hosts[0], hosts[1], 100, func(*Flow) { doneAt = s.Now() }, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// Latency 2*0.5 = 1, then 1 unit of transfer.
	if math.Abs(doneAt-2) > 1e-9 {
		t.Fatalf("flow finished at %v, want 2", doneAt)
	}
}

func TestLinkFailureAbortsUnreroutableFlow(t *testing.T) {
	s := sim.New(1)
	topo, hosts, err := SingleSwitch(2, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlowSim(s, topo)
	var failErr error
	if _, err := fs.Start(hosts[0], hosts[1], 1000, nil, func(_ *Flow, err error) { failErr = err }); err != nil {
		t.Fatal(err)
	}
	s.Schedule(1, "cut", func() {
		topo.SetLinkUp(topo.Links()[0], false)
		fs.OnLinkChange()
	})
	s.Run()
	if failErr == nil {
		t.Fatal("flow was not aborted by link failure")
	}
	if fs.Aborted() != 1 {
		t.Fatalf("aborted = %d, want 1", fs.Aborted())
	}
}

func TestLinkFailureReroutesWhenPossible(t *testing.T) {
	s := sim.New(1)
	topo := NewTopology()
	a := topo.AddNode(Host, "a")
	b := topo.AddNode(Host, "b")
	s1 := topo.AddNode(Switch, "s1")
	s2 := topo.AddNode(Switch, "s2")
	l1, err := topo.AddLink(a, s1, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]NodeID{{s1, b}, {a, s2}, {s2, b}} {
		if _, err := topo.AddLink(pair[0], pair[1], 100, 0); err != nil {
			t.Fatal(err)
		}
	}
	fs := NewFlowSim(s, topo)
	var doneAt sim.Time = -1
	if _, err := fs.Start(a, b, 200, func(*Flow) { doneAt = s.Now() }, nil); err != nil {
		t.Fatal(err)
	}
	s.Schedule(1, "cut", func() {
		topo.SetLinkUp(l1, false)
		fs.OnLinkChange()
	})
	s.Run()
	// 100 MB delivered in unit 1, link cut, rerouted via s2, remaining
	// 100 MB takes 1 more unit. Finish at 2.
	if math.Abs(doneAt-2) > 1e-9 {
		t.Fatalf("rerouted flow finished at %v, want 2", doneAt)
	}
	if fs.Aborted() != 0 {
		t.Fatalf("aborted = %d, want 0", fs.Aborted())
	}
}

func TestLocalFlowCompletesImmediately(t *testing.T) {
	s := sim.New(1)
	topo, hosts, err := SingleSwitch(2, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlowSim(s, topo)
	done := false
	if _, err := fs.Start(hosts[0], hosts[0], 500, func(*Flow) { done = true }, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !done {
		t.Fatal("local flow did not complete")
	}
	if s.Now() != 0 {
		t.Fatalf("local flow took %v time units, want 0", s.Now())
	}
}

func TestFlowCancel(t *testing.T) {
	s := sim.New(1)
	topo, hosts, err := SingleSwitch(2, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlowSim(s, topo)
	called := false
	f, err := fs.Start(hosts[0], hosts[1], 500, func(*Flow) { called = true }, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Schedule(1, "cancel", func() { fs.Cancel(f) })
	s.Run()
	if called {
		t.Fatal("cancelled flow invoked done callback")
	}
	if fs.Active() != 0 {
		t.Fatalf("active = %d after cancel", fs.Active())
	}
}

func TestFlowValidation(t *testing.T) {
	s := sim.New(1)
	topo, hosts, err := SingleSwitch(2, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlowSim(s, topo)
	if _, err := fs.Start(hosts[0], hosts[1], 0, nil, nil); err == nil {
		t.Error("zero-size flow accepted")
	}
	if _, err := fs.Start(hosts[0], hosts[1], -5, nil, nil); err == nil {
		t.Error("negative-size flow accepted")
	}
}

func TestManyFlowsConservation(t *testing.T) {
	// All started flows eventually complete, and delivered bytes match.
	s := sim.New(9)
	topo, hosts, _, err := TwoTier(TwoTierConfig{
		Racks: 3, HostsPerRack: 3, HostLinkCap: 125, UplinkCap: 500, LinkLatency: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlowSim(s, topo)
	r := s.Stream("traffic")
	total := 0.0
	const n = 200
	for i := 0; i < n; i++ {
		src := hosts[r.Intn(len(hosts))]
		dst := hosts[r.Intn(len(hosts))]
		for dst == src {
			dst = hosts[r.Intn(len(hosts))]
		}
		size := 1 + 99*r.Float64()
		total += size
		delay := 10 * r.Float64()
		s.Schedule(delay, "start-flow", func() {
			if _, err := fs.Start(src, dst, size, nil, nil); err != nil {
				t.Errorf("flow start failed: %v", err)
			}
		})
	}
	s.Run()
	if fs.Completed() != n {
		t.Fatalf("completed %d of %d flows", fs.Completed(), n)
	}
	if math.Abs(fs.BytesDelivered()-total) > 1e-6*total {
		t.Fatalf("delivered %v MB, want %v", fs.BytesDelivered(), total)
	}
}
