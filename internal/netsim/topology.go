// Package netsim is the flow-level network substrate of the wind tunnel.
//
// Repair traffic, replica transfers and workload shuffles all move bytes
// across a shared topology; the paper's motivating trade-off (§1: can a
// faster network make n-1 replicas as available as n?) and its
// parallelization argument (§4.2: a transfer only affects the two nodes,
// the two disks and the switch on its path) both require a network model
// with explicit links and bandwidth contention.
//
// Transfers are modelled as fluid flows: each active flow receives its
// max–min fair share of every link on its route, recomputed whenever a
// flow starts, finishes or a link changes state. This is the standard
// flow-level approximation used by datacenter simulators.
package netsim

import (
	"fmt"
)

// NodeID identifies a vertex (host or switch) in the topology.
type NodeID int

// NodeKind distinguishes hosts from switches.
type NodeKind int

const (
	Host NodeKind = iota
	Switch
)

func (k NodeKind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// Link is an undirected edge with a capacity (MB per simulated time unit;
// the caller fixes the unit) and a propagation latency in time units.
type Link struct {
	ID       int
	A, B     NodeID
	Capacity float64
	Latency  float64
	up       bool
}

// Up reports whether the link is operational.
func (l *Link) Up() bool { return l.up }

// other returns the far endpoint of l from n.
func (l *Link) other(n NodeID) NodeID {
	if l.A == n {
		return l.B
	}
	return l.A
}

// Topology is an undirected graph of hosts and switches.
type Topology struct {
	kinds   []NodeKind
	names   []string
	links   []*Link
	adj     [][]*Link
	version uint64 // bumped on link state change to invalidate route caches
}

// NewTopology returns an empty topology.
func NewTopology() *Topology { return &Topology{} }

// AddNode adds a vertex and returns its id.
func (t *Topology) AddNode(kind NodeKind, name string) NodeID {
	id := NodeID(len(t.kinds))
	t.kinds = append(t.kinds, kind)
	t.names = append(t.names, name)
	t.adj = append(t.adj, nil)
	return id
}

// AddLink connects a and b with the given capacity (> 0) and latency
// (>= 0), returning the link.
func (t *Topology) AddLink(a, b NodeID, capacity, latency float64) (*Link, error) {
	if err := t.checkNode(a); err != nil {
		return nil, err
	}
	if err := t.checkNode(b); err != nil {
		return nil, err
	}
	if a == b {
		return nil, fmt.Errorf("netsim: self-link on node %d", a)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("netsim: link capacity must be > 0, got %v", capacity)
	}
	if latency < 0 {
		return nil, fmt.Errorf("netsim: link latency must be >= 0, got %v", latency)
	}
	l := &Link{ID: len(t.links), A: a, B: b, Capacity: capacity, Latency: latency, up: true}
	t.links = append(t.links, l)
	t.adj[a] = append(t.adj[a], l)
	t.adj[b] = append(t.adj[b], l)
	t.version++
	return l, nil
}

func (t *Topology) checkNode(n NodeID) error {
	if n < 0 || int(n) >= len(t.kinds) {
		return fmt.Errorf("netsim: node %d does not exist", n)
	}
	return nil
}

// Nodes returns the number of vertices.
func (t *Topology) Nodes() int { return len(t.kinds) }

// Links returns all links.
func (t *Topology) Links() []*Link { return t.links }

// Kind returns the vertex kind.
func (t *Topology) Kind(n NodeID) NodeKind { return t.kinds[n] }

// Name returns the vertex name.
func (t *Topology) Name(n NodeID) string { return t.names[n] }

// SetLinkUp changes a link's operational state.
func (t *Topology) SetLinkUp(l *Link, up bool) {
	if l.up != up {
		l.up = up
		t.version++
	}
}

// Version returns the topology's state version (bumped on any change).
func (t *Topology) Version() uint64 { return t.version }

// Route returns a minimum-hop path of links from src to dst over
// operational links, or an error if dst is unreachable. src == dst yields
// an empty route.
func (t *Topology) Route(src, dst NodeID) ([]*Link, error) {
	if err := t.checkNode(src); err != nil {
		return nil, err
	}
	if err := t.checkNode(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, nil
	}
	// BFS.
	prev := make([]*Link, len(t.kinds))
	visited := make([]bool, len(t.kinds))
	visited[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, l := range t.adj[n] {
			if !l.up {
				continue
			}
			m := l.other(n)
			if visited[m] {
				continue
			}
			visited[m] = true
			prev[m] = l
			if m == dst {
				// Reconstruct.
				var path []*Link
				cur := dst
				for cur != src {
					pl := prev[cur]
					path = append(path, pl)
					cur = pl.other(cur)
				}
				// Reverse into src->dst order.
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, m)
		}
	}
	return nil, fmt.Errorf("netsim: no route from %s to %s", t.names[src], t.names[dst])
}

// RouteLatency sums the latency along a route.
func RouteLatency(route []*Link) float64 {
	sum := 0.0
	for _, l := range route {
		sum += l.Latency
	}
	return sum
}

// TwoTierConfig describes a classic rack/ToR/core topology.
type TwoTierConfig struct {
	Racks        int
	HostsPerRack int
	HostLinkCap  float64 // host <-> ToR capacity
	UplinkCap    float64 // ToR <-> core capacity
	LinkLatency  float64
}

// TwoTier builds a two-tier tree: hosts connect to their rack's ToR
// switch, and every ToR connects to a single core switch. It returns the
// topology, host ids in rack-major order, and the ToR switch ids.
func TwoTier(cfg TwoTierConfig) (*Topology, []NodeID, []NodeID, error) {
	if cfg.Racks < 1 || cfg.HostsPerRack < 1 {
		return nil, nil, nil, fmt.Errorf("netsim: two-tier needs >= 1 rack and host, got %d racks x %d hosts",
			cfg.Racks, cfg.HostsPerRack)
	}
	if cfg.HostLinkCap <= 0 || cfg.UplinkCap <= 0 {
		return nil, nil, nil, fmt.Errorf("netsim: two-tier capacities must be > 0")
	}
	t := NewTopology()
	core := t.AddNode(Switch, "core")
	hosts := make([]NodeID, 0, cfg.Racks*cfg.HostsPerRack)
	tors := make([]NodeID, 0, cfg.Racks)
	for r := 0; r < cfg.Racks; r++ {
		tor := t.AddNode(Switch, fmt.Sprintf("tor-%d", r))
		tors = append(tors, tor)
		if _, err := t.AddLink(tor, core, cfg.UplinkCap, cfg.LinkLatency); err != nil {
			return nil, nil, nil, err
		}
		for h := 0; h < cfg.HostsPerRack; h++ {
			host := t.AddNode(Host, fmt.Sprintf("host-%d-%d", r, h))
			hosts = append(hosts, host)
			if _, err := t.AddLink(host, tor, cfg.HostLinkCap, cfg.LinkLatency); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	return t, hosts, tors, nil
}

// SingleSwitch builds a star topology with n hosts around one switch.
func SingleSwitch(n int, linkCap, latency float64) (*Topology, []NodeID, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("netsim: single-switch needs >= 1 host, got %d", n)
	}
	if linkCap <= 0 {
		return nil, nil, fmt.Errorf("netsim: link capacity must be > 0")
	}
	t := NewTopology()
	sw := t.AddNode(Switch, "sw")
	hosts := make([]NodeID, n)
	for i := range hosts {
		hosts[i] = t.AddNode(Host, fmt.Sprintf("host-%d", i))
		if _, err := t.AddLink(hosts[i], sw, linkCap, latency); err != nil {
			return nil, nil, err
		}
	}
	return t, hosts, nil
}
