package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
)

// checkMaxMin asserts the two max–min invariants over the current
// active flow set: per-link feasibility and the bottleneck property.
// Flows whose route crosses a down link must not be active at all.
func checkMaxMin(t *testing.T, fs *FlowSim, seed uint64, step int) bool {
	t.Helper()
	const eps = 1e-9
	load := map[*Link]float64{}
	for _, fl := range fs.Flows() {
		if !fl.IsActive() {
			continue
		}
		for _, l := range fl.Route() {
			if !l.Up() {
				t.Logf("seed %d step %d: active flow %d routed over a down link", seed, step, fl.ID)
				return false
			}
			load[l] += fl.Rate()
		}
	}
	for l, used := range load {
		if used > l.Capacity+eps {
			t.Logf("seed %d step %d: link over capacity: %v > %v", seed, step, used, l.Capacity)
			return false
		}
	}
	for _, fl := range fs.Flows() {
		if !fl.IsActive() {
			continue
		}
		bottlenecked := false
		for _, l := range fl.Route() {
			if load[l] >= l.Capacity-eps {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			t.Logf("seed %d step %d: flow %d (rate %v) crosses no saturated link",
				seed, step, fl.ID, fl.Rate())
			return false
		}
	}
	return true
}

// TestMaxMinUnderDomainFlaps is the correlated-outage property test: a
// whole rack's links (uplink + every access link, the set a ToR or PDU
// failure domain forces down) flap repeatedly while cross-rack flows
// are in flight. After every flap the allocation must be recomputed to
// a valid max–min fair state — surviving flows feasible and
// bottlenecked, severed flows aborted (two-tier has no alternate
// routes), and restored capacity reused by new flows.
func TestMaxMinUnderDomainFlaps(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		racks := 3 + r.Intn(3)
		perRack := 2 + r.Intn(3)
		topo, hosts, tors, err := TwoTier(TwoTierConfig{
			Racks: racks, HostsPerRack: perRack,
			HostLinkCap: 100 + 100*r.Float64(),
			UplinkCap:   50 + 100*r.Float64(),
			LinkLatency: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := sim.New(seed)
		fs := NewFlowSim(s, topo)

		// rackLinks[r] is the link set a failure domain over rack r
		// forces down: every link touching its ToR — the uplink and all
		// access links.
		rackLinks := make([][]*Link, racks)
		for _, l := range topo.Links() {
			for ri, tor := range tors {
				if l.A == tor || l.B == tor {
					rackLinks[ri] = append(rackLinks[ri], l)
				}
			}
		}

		aborted := 0
		startFlows := func(n int) {
			for i := 0; i < n; i++ {
				src := hosts[r.Intn(len(hosts))]
				dst := hosts[r.Intn(len(hosts))]
				if src == dst {
					continue
				}
				// Huge sizes keep flows alive across the whole test.
				_, err := fs.Start(src, dst, 1e12,
					nil, func(*Flow, error) { aborted++ })
				if err != nil {
					// Source or destination currently partitioned.
					continue
				}
			}
		}

		startFlows(4 + r.Intn(8))
		s.RunUntil(0)
		if !checkMaxMin(t, fs, seed, -1) {
			return false
		}

		down := make([]bool, racks)
		for step := 0; step < 12; step++ {
			ri := r.Intn(racks)
			down[ri] = !down[ri]
			for _, l := range rackLinks[ri] {
				topo.SetLinkUp(l, !down[ri])
			}
			fs.OnLinkChange()
			// Add fresh flows so restored racks re-attract traffic.
			startFlows(1 + r.Intn(3))
			s.RunUntil(s.Now())
			if !checkMaxMin(t, fs, seed, step) {
				return false
			}
		}
		// Restore everything: a final allocation over all surviving and
		// new flows must still be max–min fair.
		for ri := range down {
			if down[ri] {
				for _, l := range rackLinks[ri] {
					topo.SetLinkUp(l, true)
				}
				down[ri] = false
			}
		}
		fs.OnLinkChange()
		startFlows(3)
		s.RunUntil(s.Now())
		return checkMaxMin(t, fs, seed, 999)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
