package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
)

// TestMaxMinFairnessProperties verifies the two defining invariants of a
// max–min fair allocation on randomized topologies and flow sets:
//
//  1. Feasibility: on every link, the allocated rates sum to at most the
//     capacity.
//  2. Bottleneck (Pareto) property: every flow crosses at least one
//     saturated link, so no flow's rate can be raised without lowering
//     another's.
func TestMaxMinFairnessProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		racks := 2 + r.Intn(3)
		perRack := 2 + r.Intn(3)
		topo, hosts, _, err := TwoTier(TwoTierConfig{
			Racks: racks, HostsPerRack: perRack,
			HostLinkCap: 50 + 200*r.Float64(),
			UplinkCap:   30 + 100*r.Float64(),
			LinkLatency: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := sim.New(seed)
		fs := NewFlowSim(s, topo)
		nflows := 2 + r.Intn(10)
		for i := 0; i < nflows; i++ {
			src := hosts[r.Intn(len(hosts))]
			dst := hosts[r.Intn(len(hosts))]
			if src == dst {
				continue
			}
			// Large sizes so flows are still in flight when probed.
			if _, err := fs.Start(src, dst, 1e9, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Flows activate at t=0 (zero latency); allocation happens on the
		// first events.
		s.RunUntil(0)

		const eps = 1e-9
		load := map[*Link]float64{}
		for _, fl := range fs.Flows() {
			if !fl.IsActive() {
				continue
			}
			for _, l := range fl.Route() {
				load[l] += fl.Rate()
			}
		}
		// Feasibility.
		for l, used := range load {
			if used > l.Capacity+eps {
				t.Logf("seed %d: link over capacity: %v > %v", seed, used, l.Capacity)
				return false
			}
		}
		// Bottleneck property.
		for _, fl := range fs.Flows() {
			if !fl.IsActive() {
				continue
			}
			bottlenecked := false
			for _, l := range fl.Route() {
				if load[l] >= l.Capacity-eps {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				t.Logf("seed %d: flow %d (rate %v) crosses no saturated link",
					seed, fl.ID, fl.Rate())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEqualShareSymmetricFlows pins the textbook case: k identical flows
// into one host share its access link equally.
func TestEqualShareSymmetricFlows(t *testing.T) {
	topo, hosts, err := SingleSwitch(5, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	fs := NewFlowSim(s, topo)
	for i := 0; i < 4; i++ {
		if _, err := fs.Start(hosts[i], hosts[4], 1e9, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(0)
	for _, fl := range fs.Flows() {
		if !fl.IsActive() {
			t.Fatal("flow not active at t=0 with zero latency")
		}
		if fl.Rate() < 25-1e-9 || fl.Rate() > 25+1e-9 {
			t.Fatalf("flow rate %v, want 25 (100/4)", fl.Rate())
		}
	}
}
