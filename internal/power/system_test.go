package power

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/hardware"
	"repro/internal/sim"
)

func testCluster(t *testing.T, seed uint64, racks, perRack int) (*sim.Simulator, *cluster.Cluster) {
	t.Helper()
	s := sim.New(seed)
	c, err := cluster.Build(s, hardware.DefaultCatalog(), cluster.Config{
		Racks: racks, NodesPerRack: perRack,
		DiskSpec: "hdd-7200", DisksPerNode: 2,
		NICSpec: "nic-10g", CPUSpec: "cpu-8c", MemSpec: "mem-16g",
		SwitchSpec: "switch-48p-10g",
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero (disabled) config invalid: %v", err)
	}
	good := Config{Enabled: true, PDUs: 2, UPSMinutes: 5, GeneratorStartProb: 0.9}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Enabled: true, PDUs: -1},
		{Enabled: true, UtilityTTF: dist.Must(dist.ExpMean(100))}, // missing repair
		{Enabled: true, UPSMinutes: -1},
		{Enabled: true, GeneratorStartProb: 1.5},
		{Enabled: true, IdleFraction: 2},
		{Enabled: true, Utilization: -0.1},
		{Enabled: true, PUE: 0.5},
		{Enabled: true, CarbonKgPerKWh: -1},
		{Enabled: true, CapFraction: 1},
		{Enabled: true, CapFraction: 0.2, CapStartHours: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if _, err := Attach(sim.New(1), nil, nil, Config{}, 100); err == nil {
		t.Error("Attach accepted a disabled config")
	}
}

// TestNodeActiveWatts pins the per-node draw roll-up against the
// catalog: 2x hdd-7200 (8 W) + nic-10g (8 W) + cpu-8c (85 W) +
// mem-16g (5 W) = 114 W.
func TestNodeActiveWatts(t *testing.T) {
	_, c := testCluster(t, 1, 1, 1)
	w, err := NodeActiveWatts(hardware.DefaultCatalog(), c.Config())
	if err != nil {
		t.Fatal(err)
	}
	if w != 2*8+8+85+5 {
		t.Fatalf("node active watts = %v, want 114", w)
	}
}

// TestPDUDomainsCoverExactlyTheirRacks builds 2 PDUs over 4 racks and
// fails one: exactly its two racks must go dark (and still draw no
// power), while the other PDU's racks stay up.
func TestPDUDomainsCoverExactlyTheirRacks(t *testing.T) {
	s, c := testCluster(t, 1, 4, 3)
	p, err := Attach(s, c, hardware.DefaultCatalog(), Config{
		Enabled: true, PDUs: 2,
	}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.PDUDomains()) != 2 {
		t.Fatalf("pdu domains = %d, want 2", len(p.PDUDomains()))
	}
	c.FailDomain(p.PDUDomains()[0])
	// Racks 0 and 1 (nodes 0..5) down, racks 2 and 3 (nodes 6..11) up.
	for i := 0; i < 6; i++ {
		if c.Available(i) {
			t.Fatalf("node %d available during its PDU outage", i)
		}
	}
	for i := 6; i < 12; i++ {
		if !c.Available(i) {
			t.Fatalf("node %d lost power from the wrong PDU", i)
		}
	}
	st := p.Stats(s.Now())
	if st.PeakKW <= 0 {
		t.Fatal("no peak power recorded")
	}
	c.RestoreDomain(p.PDUDomains()[0])
	if c.AvailableCount() != 12 {
		t.Fatalf("available after PDU restore = %d, want 12", c.AvailableCount())
	}
}

// TestPDUFailureCutsEnergy: a six-hour PDU outage over half the fleet
// must cut the integrated energy by a quarter relative to the uptime
// baseline.
func TestPDUFailureCutsEnergy(t *testing.T) {
	run := func(fail bool) Stats {
		s, c := testCluster(t, 1, 2, 2)
		p, err := Attach(s, c, hardware.DefaultCatalog(), Config{
			Enabled: true, PDUs: 2, PUE: 1, Utilization: 1, IdleFraction: 1,
		}, 24)
		if err != nil {
			t.Fatal(err)
		}
		if fail {
			s.Schedule(6, "blast", func() { c.FailDomain(p.PDUDomains()[0]) })
			s.Schedule(12, "fix", func() { c.RestoreDomain(p.PDUDomains()[0]) })
		}
		s.RunUntil(24)
		return p.Stats(24)
	}
	base := run(false)
	out := run(true)
	// Half the nodes off for a quarter of the horizon: 1/8 less energy.
	want := base.EnergyKWh * (1 - 0.125)
	almost(t, "outage energy", out.EnergyKWh, want)
	almost(t, "baseline peak", base.PeakKW, out.PeakKW)
}

// TestUtilityOutageOutcomes drives the three deterministic outage
// resolutions — battery ride-through, generator pickup, facility
// blackout — with deterministic distributions.
func TestUtilityOutageOutcomes(t *testing.T) {
	run := func(cfg Config) (Stats, *cluster.Cluster, *sim.Simulator) {
		s, c := testCluster(t, 7, 2, 2)
		cfg.Enabled = true
		cfg.UtilityTTF = dist.Must(dist.NewDeterministic(100))
		cfg.UtilityRepair = dist.Must(dist.NewDeterministic(2)) // 2 h outages
		p, err := Attach(s, c, hardware.DefaultCatalog(), cfg, 150)
		if err != nil {
			t.Fatal(err)
		}
		s.RunUntil(150)
		return p.Stats(150), c, s
	}

	// Battery covers the whole outage.
	st, c, _ := run(Config{UPSMinutes: 180})
	if st.UtilityOutages != 1 || st.RideThroughOK != 1 || st.PowerLossEvents != 0 {
		t.Fatalf("ride-through outcome: %+v", st)
	}
	if c.AvailableCount() != 4 {
		t.Fatal("nodes lost after a covered outage")
	}

	// Generator starts inside the battery window.
	st, _, _ = run(Config{UPSMinutes: 30, GeneratorStartProb: 1, GeneratorStartHours: 0.25})
	if st.GeneratorStarts != 1 || st.PowerLossEvents != 0 {
		t.Fatalf("generator outcome: %+v", st)
	}

	// No generator, battery too small: blackout from battery exhaustion
	// (t=100.5) to utility restoration (t=102).
	st, c, s := run(Config{UPSMinutes: 30})
	if st.PowerLossEvents != 1 || st.RideThroughOK != 0 || st.GeneratorStarts != 0 {
		t.Fatalf("blackout outcome: %+v", st)
	}
	if c.AvailableCount() != 4 {
		t.Fatalf("facility not restored after blackout: %d nodes", c.AvailableCount())
	}
	_ = s
}

// TestUtilityBlackoutEnergyWindow pins the blackout's energy footprint:
// all nodes draw zero between battery exhaustion and restoration.
func TestUtilityBlackoutEnergyWindow(t *testing.T) {
	s, c := testCluster(t, 7, 2, 2)
	p, err := Attach(s, c, hardware.DefaultCatalog(), Config{
		Enabled:       true,
		UtilityTTF:    dist.Must(dist.NewDeterministic(10)),
		UtilityRepair: dist.Must(dist.NewDeterministic(4)),
		UPSMinutes:    60, // blackout over [11, 14)
		PUE:           1, Utilization: 1, IdleFraction: 1,
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(20)
	st := p.Stats(20)
	watts := 4 * 114.0 // 4 nodes x 114 W
	almost(t, "blackout energy", st.EnergyKWh, watts*(20-3)/1000)
}

// TestPowerCapThrottlesDrawAndLinks checks the cap window: active draw
// and access-link capacity drop during the cap and recover after it.
func TestPowerCapThrottlesDrawAndLinks(t *testing.T) {
	s, c := testCluster(t, 3, 1, 2)
	p, err := Attach(s, c, hardware.DefaultCatalog(), Config{
		Enabled:     true,
		PUE:         1,
		Utilization: 1, IdleFraction: 0.5,
		CapFraction: 0.5, CapStartHours: 10, CapDurationHours: 10,
	}, 40)
	if err != nil {
		t.Fatal(err)
	}
	var during, after float64
	s.Schedule(15, "probe-during", func() {
		during = c.Nodes()[0].AccessLinkCapacity()
	})
	s.Schedule(25, "probe-after", func() {
		after = c.Nodes()[0].AccessLinkCapacity()
	})
	s.RunUntil(40)
	if during != after/2 {
		t.Fatalf("capped access capacity %v, want half of %v", during, after)
	}
	st := p.Stats(40)
	// Draw: full 114 W for 30 h, capped 57+57*0.5=85.5 W for 10 h, x2 nodes.
	almost(t, "capped energy", st.EnergyKWh, 2*(114*30+85.5*10)/1000)
	almost(t, "peak under cap", st.PeakKW, 2*114.0/1000)
}
