package power

import (
	"fmt"

	"repro/internal/sim"
)

// Meter is the zero-allocation energy observer: it integrates per-node
// electrical draw over simulated time into energy, peak power and
// carbon. Node draw is piecewise constant — idle + (active-idle) ×
// utilization × throttle while powered, zero while off — so the meter
// only does O(1) arithmetic at each power-state transition and never
// allocates after construction (enforced by TestMeterZeroAlloc and
// BenchmarkPowerObserver).
//
// All facility-level figures (EnergyKWh, PeakKW, CarbonKg) apply the
// PUE multiplier to IT power; ITEnergyKWh reports the raw IT share.
type Meter struct {
	pue     float64
	carbon  float64 // kg CO2 per facility kWh
	idleW   float64 // per-node idle draw, watts
	activeW float64 // per-node active draw at utilization 1, watts

	util     []float64 // per-node utilization in [0, 1]
	on       []bool    // per-node powered state
	nodeW    []float64 // per-node current draw
	throttle float64   // 1 = uncapped; power cap scales the active share

	watts    float64 // current total IT draw
	peakW    float64 // max IT draw seen
	energyWh float64 // integrated IT energy
	lastT    sim.Time
}

// NewMeter builds a meter for n identical nodes whose active draw is
// activeWatts, starting with every node powered at time now.
func NewMeter(n int, activeWatts, idleFraction, utilization, pue, carbonKgPerKWh float64, now sim.Time) (*Meter, error) {
	if n < 1 {
		return nil, fmt.Errorf("power: meter needs >= 1 node, got %d", n)
	}
	if activeWatts < 0 {
		return nil, fmt.Errorf("power: negative active draw %v", activeWatts)
	}
	m := &Meter{
		pue:      pue,
		carbon:   carbonKgPerKWh,
		idleW:    activeWatts * idleFraction,
		activeW:  activeWatts,
		util:     make([]float64, n),
		on:       make([]bool, n),
		nodeW:    make([]float64, n),
		throttle: 1,
		lastT:    now,
	}
	for i := range m.on {
		m.on[i] = true
		m.util[i] = utilization
		w := m.draw(i)
		m.nodeW[i] = w
		m.watts += w
	}
	m.peakW = m.watts
	return m, nil
}

// draw computes node i's current wattage from its state.
func (m *Meter) draw(i int) float64 {
	if !m.on[i] {
		return 0
	}
	return m.idleW + (m.activeW-m.idleW)*m.util[i]*m.throttle
}

// accumulate banks energy at the current draw up to now.
func (m *Meter) accumulate(now sim.Time) {
	if now > m.lastT {
		m.energyWh += m.watts * (now - m.lastT)
		m.lastT = now
	}
}

// setNodeWatts swaps node i's contribution to the running total.
func (m *Meter) setNodeWatts(i int, w float64) {
	m.watts += w - m.nodeW[i]
	m.nodeW[i] = w
	if m.watts > m.peakW {
		m.peakW = m.watts
	}
}

// SetNodeOn records node i's powered state as of time now. Setting the
// current state again is a no-op.
func (m *Meter) SetNodeOn(now sim.Time, i int, on bool) {
	if m.on[i] == on {
		return
	}
	m.accumulate(now)
	m.on[i] = on
	m.setNodeWatts(i, m.draw(i))
}

// SetUtilization records node i's utilization (in [0, 1]) as of now —
// the coupling point for workload-driven draw.
func (m *Meter) SetUtilization(now sim.Time, i int, u float64) error {
	if u < 0 || u > 1 {
		return fmt.Errorf("power: utilization %v outside [0, 1]", u)
	}
	m.accumulate(now)
	m.util[i] = u
	m.setNodeWatts(i, m.draw(i))
	return nil
}

// SetThrottle applies a facility-wide throttle factor (1 = uncapped) to
// the active share of every node's draw, as of now. O(nodes).
func (m *Meter) SetThrottle(now sim.Time, factor float64) {
	if factor == m.throttle {
		return
	}
	m.accumulate(now)
	m.throttle = factor
	for i := range m.nodeW {
		m.setNodeWatts(i, m.draw(i))
	}
}

// Finalize banks energy up to now. Further transitions may follow; the
// meter remains usable.
func (m *Meter) Finalize(now sim.Time) { m.accumulate(now) }

// ResetPeak re-bases the peak tracker to the current draw. Attach uses
// it when a power cap is active from time zero, so the reported peak is
// the capped trajectory's, not the zero-duration uncapped instant the
// meter was constructed at.
func (m *Meter) ResetPeak() { m.peakW = m.watts }

// ITEnergyKWh returns the integrated IT energy (no PUE).
func (m *Meter) ITEnergyKWh() float64 { return m.energyWh / 1000 }

// EnergyKWh returns the facility energy: IT energy times PUE.
func (m *Meter) EnergyKWh() float64 { return m.energyWh / 1000 * m.pue }

// PeakKW returns the peak facility power draw observed.
func (m *Meter) PeakKW() float64 { return m.peakW / 1000 * m.pue }

// PUE returns the configured power usage effectiveness.
func (m *Meter) PUE() float64 { return m.pue }

// CarbonKg returns the carbon footprint of the facility energy so far.
func (m *Meter) CarbonKg() float64 { return m.EnergyKWh() * m.carbon }
