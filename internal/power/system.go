package power

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// System is a power hierarchy attached to one simulated cluster: PDU
// failure domains, the utility/UPS/generator process, the energy meter
// and the power-cap schedule. Build one per trial with Attach.
type System struct {
	cfg   Config // normalized
	sim   *sim.Simulator
	cl    *cluster.Cluster
	meter *Meter

	pdus       []*hardware.Component
	pduDomains []*cluster.Domain
	ups        *hardware.Component
	dc         *cluster.Domain // facility-wide blackout domain

	// powerVeto counts down *power* domains covering each node; a node
	// draws electricity while it is up and unvetoed, even when a ToR
	// failure makes it unreachable.
	powerVeto []int

	utilityOutages  int64
	rideThroughOK   int64
	generatorStarts int64
	powerLossEvents int64
	pduFailures     int64
}

// Stats is the per-trial power and energy summary.
type Stats struct {
	EnergyKWh   float64 // facility energy (IT × PUE)
	ITEnergyKWh float64
	PeakKW      float64 // peak facility draw
	PUE         float64
	CarbonKg    float64

	UtilityOutages  int64 // utility feed losses
	RideThroughOK   int64 // outages fully covered by the UPS battery
	GeneratorStarts int64 // outages where the generator took the load
	PowerLossEvents int64 // outages that became facility blackouts
	PDUFailures     int64
}

// NodeActiveWatts sums the active draw of one node's components under
// the cluster config — the per-node wattage the energy model integrates.
func NodeActiveWatts(cat *hardware.Catalog, cfg cluster.Config) (float64, error) {
	disk, err := cat.Get(cfg.DiskSpec)
	if err != nil {
		return 0, err
	}
	w := disk.PowerWatts * float64(cfg.DisksPerNode)
	for _, name := range []string{cfg.NICSpec, cfg.CPUSpec, cfg.MemSpec} {
		sp, err := cat.Get(name)
		if err != nil {
			return 0, err
		}
		w += sp.PowerWatts
	}
	return w, nil
}

// Attach wires a power system into a built cluster: it registers PDU
// and facility power domains, starts the configured failure processes,
// subscribes the energy meter to node/domain transitions, and schedules
// the power-cap window against horizonHours. All random draws come from
// dedicated "power/..." streams, so attaching a system never perturbs
// the draws of the rest of the simulation.
//
// Call Attach after cluster.Build and before the run; like
// Cluster.StartFailures it must be attached at simulation time zero.
func Attach(s *sim.Simulator, cl *cluster.Cluster, cat *hardware.Catalog, cfg Config, horizonHours float64) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled {
		return nil, fmt.Errorf("power: Attach called with a disabled config")
	}
	cfg = cfg.normalized()

	activeW, err := NodeActiveWatts(cat, cl.Config())
	if err != nil {
		return nil, err
	}
	meter, err := NewMeter(cl.Size(), activeW, cfg.IdleFraction, cfg.Utilization,
		cfg.PUE, cfg.CarbonKgPerKWh, s.Now())
	if err != nil {
		return nil, err
	}
	p := &System{
		cfg: cfg, sim: s, cl: cl, meter: meter,
		powerVeto: make([]int, cl.Size()),
	}

	// Energy view: a node draws power while node-locally up and not cut
	// by a power domain. Reachability domains (ToR) do not change draw.
	refresh := func(n *cluster.Node) {
		p.meter.SetNodeOn(s.Now(), n.ID, n.Up() && p.powerVeto[n.ID] == 0)
	}
	cl.OnNodeDown(refresh)
	cl.OnNodeUp(refresh)
	cl.OnDomainDown(func(d *cluster.Domain) {
		if !d.Power {
			return
		}
		now := s.Now()
		for _, id := range d.NodeIDs() {
			p.powerVeto[id]++
			p.meter.SetNodeOn(now, id, false)
		}
	})
	cl.OnDomainUp(func(d *cluster.Domain) {
		if !d.Power {
			return
		}
		now := s.Now()
		for _, id := range d.NodeIDs() {
			p.powerVeto[id]--
			p.meter.SetNodeOn(now, id, p.cl.Nodes()[id].Up() && p.powerVeto[id] == 0)
		}
	})

	if err := p.buildPDUs(cat); err != nil {
		return nil, err
	}
	if err := p.buildUtility(cat); err != nil {
		return nil, err
	}
	p.scheduleCap(horizonHours)
	return p, nil
}

// Meter returns the system's energy meter (for workload-coupled
// utilization updates).
func (p *System) Meter() *Meter { return p.meter }

// PDUDomains returns the registered PDU failure domains.
func (p *System) PDUDomains() []*cluster.Domain { return p.pduDomains }

// buildPDUs registers one power domain and one component lifecycle per
// PDU, assigning racks contiguously: PDU i feeds the racks r with
// r*pdus/racks == i, covering their nodes and severing their uplinks
// while down.
func (p *System) buildPDUs(cat *hardware.Catalog) error {
	racks := p.cl.Config().Racks
	n := p.cfg.EffectivePDUs(racks)
	if n == 0 {
		return nil
	}
	spec, err := cat.Get(p.cfg.EffectivePDUSpec())
	if err != nil {
		return fmt.Errorf("power: PDU: %w", err)
	}
	if spec.Kind != hardware.KindPDU {
		return fmt.Errorf("power: spec %q is a %s, not a pdu", spec.Name, spec.Kind)
	}
	nodesOf := make([][]int, n)
	linksOf := make([][]*netsim.Link, n)
	for r := 0; r < racks; r++ {
		i := r * n / racks
		dom := p.cl.RackDomain(r)
		nodesOf[i] = append(nodesOf[i], dom.NodeIDs()...)
		linksOf[i] = append(linksOf[i], dom.Links()...)
	}
	for i := 0; i < n; i++ {
		dom, err := p.cl.AddDomain(fmt.Sprintf("pdu-%d", i), true, nodesOf[i], linksOf[i])
		if err != nil {
			return err
		}
		pdu, err := hardware.NewComponent(2000000+i, spec)
		if err != nil {
			return err
		}
		pdu.OnFail(func(*hardware.Component) {
			p.pduFailures++
			p.cl.FailDomain(dom)
		})
		pdu.OnRepair(func(*hardware.Component) { p.cl.RestoreDomain(dom) })
		pdu.StartLifecycle(p.sim, p.sim.Stream(fmt.Sprintf("power/pdu-%d", i)))
		p.pdus = append(p.pdus, pdu)
		p.pduDomains = append(p.pduDomains, dom)
	}
	return nil
}

// buildUtility wires the utility-outage process, the UPS component and
// the facility blackout domain.
func (p *System) buildUtility(cat *hardware.Catalog) error {
	if p.cfg.UPSSpec != "" {
		spec, err := cat.Get(p.cfg.UPSSpec)
		if err != nil {
			return fmt.Errorf("power: UPS: %w", err)
		}
		if spec.Kind != hardware.KindUPS {
			return fmt.Errorf("power: spec %q is a %s, not a ups", spec.Name, spec.Kind)
		}
		ups, err := hardware.NewComponent(3000000, spec)
		if err != nil {
			return err
		}
		// A UPS failure does not itself drop the load (the bypass carries
		// it); it removes the battery ride-through until repaired.
		ups.StartLifecycle(p.sim, p.sim.Stream("power/ups"))
		p.ups = ups
	}
	if p.cfg.UtilityTTF == nil {
		return nil
	}
	all := make([]int, p.cl.Size())
	for i := range all {
		all[i] = i
	}
	var uplinks []*netsim.Link
	for r := 0; r < p.cl.Config().Racks; r++ {
		uplinks = append(uplinks, p.cl.RackDomain(r).Links()...)
	}
	dc, err := p.cl.AddDomain("utility", true, all, uplinks)
	if err != nil {
		return err
	}
	p.dc = dc
	p.scheduleUtilityOutage()
	return nil
}

// scheduleUtilityOutage draws the next utility outage and resolves it
// against the UPS battery and the generator:
//
//   - outage shorter than the battery window   → ride-through, no impact
//   - generator starts within the battery      → generator carries it
//   - otherwise                                → facility blackout from
//     battery exhaustion until the generator start or utility return
//
// A failed UPS component zeroes the battery window for outages that
// begin during its repair.
func (p *System) scheduleUtilityOutage() {
	stream := p.sim.Stream("power/utility")
	ttf := p.cfg.UtilityTTF.Sample(stream)
	p.sim.Schedule(ttf, "power/utility-outage", func() {
		p.utilityOutages++
		d := p.cfg.UtilityRepair.Sample(stream)
		battery := p.cfg.UPSMinutes / 60
		if p.ups != nil && p.ups.State() == hardware.StateFailed {
			battery = 0
		}
		genOK := false
		if p.cfg.GeneratorStartProb > 0 {
			genOK = stream.Float64() < p.cfg.GeneratorStartProb
		}
		genAt := p.cfg.GeneratorStartHours
		switch {
		case d <= battery:
			p.rideThroughOK++
		case genOK && genAt <= battery:
			p.generatorStarts++
		default:
			p.powerLossEvents++
			lossEnd := d
			if genOK && genAt < d {
				p.generatorStarts++
				lossEnd = genAt
			}
			p.sim.Schedule(battery, "power/blackout", func() { p.cl.FailDomain(p.dc) })
			p.sim.Schedule(lossEnd, "power/blackout-over", func() { p.cl.RestoreDomain(p.dc) })
		}
		p.sim.Schedule(d, "power/utility-restored", p.scheduleUtilityOutage)
	})
}

// scheduleCap schedules the power-cap window: service rates (access
// links) and the active share of node draw are throttled to
// 1-CapFraction for the window, then restored.
func (p *System) scheduleCap(horizonHours float64) {
	if p.cfg.CapFraction <= 0 {
		return
	}
	start := p.cfg.CapStartHours
	duration := p.cfg.CapDurationHours
	if duration == 0 {
		duration = horizonHours - start
	}
	if duration <= 0 {
		return
	}
	factor := 1 - p.cfg.CapFraction
	capOn := func() {
		p.meter.SetThrottle(p.sim.Now(), factor)
		if err := p.cl.SetServiceThrottle(factor); err != nil {
			panic(err) // factor validated in Config.Validate
		}
	}
	if start == 0 {
		// A cap active from time zero applies immediately; the peak
		// tracker re-bases so it reports the capped trajectory rather
		// than the zero-duration uncapped construction instant.
		capOn()
		p.meter.ResetPeak()
	} else {
		p.sim.Schedule(start, "power/cap-on", capOn)
	}
	if start+duration >= horizonHours {
		return // cap runs to the end of the horizon
	}
	p.sim.Schedule(start+duration, "power/cap-off", func() {
		p.meter.SetThrottle(p.sim.Now(), 1)
		if err := p.cl.SetServiceThrottle(1); err != nil {
			panic(err)
		}
	})
}

// Stats finalizes the meter at now and reports the trial's power and
// energy summary.
func (p *System) Stats(now sim.Time) Stats {
	p.meter.Finalize(now)
	return Stats{
		EnergyKWh:       p.meter.EnergyKWh(),
		ITEnergyKWh:     p.meter.ITEnergyKWh(),
		PeakKW:          p.meter.PeakKW(),
		PUE:             p.meter.PUE(),
		CarbonKg:        p.meter.CarbonKg(),
		UtilityOutages:  p.utilityOutages,
		RideThroughOK:   p.rideThroughOK,
		GeneratorStarts: p.generatorStarts,
		PowerLossEvents: p.powerLossEvents,
		PDUFailures:     p.pduFailures,
	}
}
