package power

import (
	"math"
	"testing"
)

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestMeterIntegration checks the piecewise-constant energy integral,
// peak tracking and the PUE/carbon multipliers against hand-computed
// values.
func TestMeterIntegration(t *testing.T) {
	// 2 nodes x 100 W active, idle fraction 0.5, utilization 0.5,
	// PUE 2, carbon 0.5 kg/kWh. Per-node draw on: 50 + 50*0.5 = 75 W.
	m, err := NewMeter(2, 100, 0.5, 0.5, 2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// [0, 10): both on, 150 W.
	m.SetNodeOn(10, 0, false)
	// [10, 20): one on, 75 W.
	m.SetNodeOn(20, 0, true)
	// [20, 30): both on again.
	m.Finalize(30)

	itWh := 150*10.0 + 75*10 + 150*10
	almost(t, "it_energy_kwh", m.ITEnergyKWh(), itWh/1000)
	almost(t, "energy_kwh", m.EnergyKWh(), 2*itWh/1000)
	almost(t, "peak_kw", m.PeakKW(), 2*150.0/1000)
	almost(t, "carbon_kg", m.CarbonKg(), 2*itWh/1000*0.5)
	almost(t, "pue", m.PUE(), 2)
}

// TestMeterUtilizationAndThrottle checks the utilization coupling and
// the cap throttle: the throttle scales only the active share, never
// the idle floor.
func TestMeterUtilizationAndThrottle(t *testing.T) {
	m, err := NewMeter(1, 100, 0.4, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Full utilization: 100 W for 10 h.
	if err := m.SetUtilization(10, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	// util 0.5: 40 + 60*0.5 = 70 W for 10 h.
	m.SetThrottle(20, 0.5)
	// throttled: 40 + 60*0.5*0.5 = 55 W for 10 h.
	m.Finalize(30)
	almost(t, "it_energy_kwh", m.ITEnergyKWh(), (100*10.0+70*10+55*10)/1000)

	if err := m.SetUtilization(30, 0, 2); err == nil {
		t.Error("utilization > 1 accepted")
	}
}

// TestMeterIdempotentTransitions: re-setting the current state must not
// move energy or peak.
func TestMeterIdempotentTransitions(t *testing.T) {
	m, err := NewMeter(3, 100, 0.45, 0.3, 1.5, 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetNodeOn(5, 1, false)
	e1 := m.ITEnergyKWh()
	m.SetNodeOn(5, 1, false) // same state, same time
	if m.ITEnergyKWh() != e1 {
		t.Fatal("idempotent transition moved the energy integral")
	}
}

// TestMeterZeroAlloc enforces the zero-allocation contract of the
// observer's per-event path (the CI benchmark BenchmarkPowerObserver
// tracks the same property as ns/op + allocs/op).
func TestMeterZeroAlloc(t *testing.T) {
	m, err := NewMeter(64, 100, 0.45, 0.3, 1.5, 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	now := 1.0
	allocs := testing.AllocsPerRun(1000, func() {
		m.SetNodeOn(now, 7, false)
		m.SetNodeOn(now+0.5, 7, true)
		if err := m.SetUtilization(now+0.7, 8, 0.5); err != nil {
			t.Fatal(err)
		}
		m.Finalize(now + 1)
		now++
	})
	if allocs != 0 {
		t.Fatalf("power observer allocates %v per transition batch, want 0", allocs)
	}
}
