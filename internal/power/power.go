// Package power models the electrical half of a data center: the power
// delivery hierarchy (utility feed → UPS/generator → PDUs → racks),
// per-node energy draw, and power capping.
//
// The paper frames the wind tunnel as answering *every* what-if a
// designer has before buying hardware — availability, durability,
// performance and cost. Real TCO is dominated by energy, and real
// correlated outages by the power hierarchy, so this package adds both
// as first-class simulation state:
//
//   - Hierarchy: each PDU is a hardware.Component whose failure takes
//     down exactly the racks it feeds (a second, nested correlated
//     failure domain layered on internal/cluster's generic Domain
//     mechanism); a utility outage exercises UPS battery ride-through
//     and generator start, and only becomes a facility blackout when
//     both fall short.
//   - Energy: a zero-allocation observer integrates per-node draw
//     (active/idle/off, scaled by utilization) over simulated time into
//     kWh, peak kW and carbon, with a PUE multiplier for cooling and
//     distribution overhead — feeding internal/cost so TCO comparisons
//     become energy-aware.
//   - Capping: a power-cap window throttles per-node service rates
//     (access-link capacity, and sim.Station speeds via the public
//     throttle factor) so queries can ask "what availability and
//     latency do I keep during a 20% power cap?".
//
// Everything is opt-in: a zero Config is valid and disabled, and an
// attached system draws only from "power/..." named streams, so the
// default simulation path is byte-for-byte unchanged.
package power

import (
	"fmt"

	"repro/internal/dist"
)

// Config declares a scenario's power model. The zero value is valid and
// disabled. All fields are output-determining once Enabled is set and
// must be covered by core.CacheKey.
type Config struct {
	// Enabled turns the subsystem on.
	Enabled bool

	// PDUs is the number of power distribution units; racks are assigned
	// contiguously (rack r feeds from PDU r*PDUs/racks, clamped to one
	// PDU per rack when PDUs > racks). 0 disables PDU failure domains.
	PDUs int
	// PDUSpec is the catalog spec driving each PDU's failure/repair
	// lifecycle (default "pdu-basic").
	PDUSpec string
	// UPSSpec, when non-empty, drives a UPS component lifecycle; while
	// the UPS is failed, utility outages hit with zero ride-through.
	UPSSpec string

	// UtilityTTF/UtilityRepair model the utility feed: time between
	// outages and outage durations (hours). Nil disables utility outages.
	UtilityTTF    dist.Dist
	UtilityRepair dist.Dist
	// UPSMinutes is the battery ride-through window during a utility
	// outage.
	UPSMinutes float64
	// GeneratorStartProb is the probability the backup generator starts
	// on demand; GeneratorStartHours is its start (and transfer) delay.
	GeneratorStartProb  float64
	GeneratorStartHours float64

	// IdleFraction is a node's idle draw as a fraction of its active
	// draw (spec PowerWatts); default 0.45.
	IdleFraction float64
	// Utilization is the mean node utilization driving the draw between
	// idle and active; default 0.30. Workload-coupled simulations can
	// override per node via Meter.SetUtilization.
	Utilization float64
	// PUE is the power usage effectiveness multiplier applied to IT
	// power for facility energy and peak; default 1.5.
	PUE float64
	// CarbonKgPerKWh is the grid carbon intensity; default 0.40.
	CarbonKgPerKWh float64

	// CapFraction, when > 0, enables a power cap that throttles node
	// service rates and active draw by (1 - CapFraction) during the
	// window [CapStartHours, CapStartHours+CapDurationHours). A zero
	// CapDurationHours caps to the end of the horizon.
	CapFraction      float64
	CapStartHours    float64
	CapDurationHours float64
}

// Defaults for the energy model, applied by normalized().
const (
	DefaultIdleFraction = 0.45
	DefaultUtilization  = 0.30
	DefaultPUE          = 1.5
	DefaultCarbon       = 0.40 // kg CO2 per kWh, a 2014-era grid mix
	DefaultPDUSpec      = "pdu-basic"
)

// Validate checks the configuration. A disabled config is always valid.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.PDUs < 0 {
		return fmt.Errorf("power: PDUs must be >= 0, got %d", c.PDUs)
	}
	if (c.UtilityTTF == nil) != (c.UtilityRepair == nil) {
		return fmt.Errorf("power: UtilityTTF and UtilityRepair must both be set or both nil")
	}
	if c.UPSMinutes < 0 {
		return fmt.Errorf("power: UPSMinutes must be >= 0, got %v", c.UPSMinutes)
	}
	if c.GeneratorStartProb < 0 || c.GeneratorStartProb > 1 {
		return fmt.Errorf("power: GeneratorStartProb %v outside [0, 1]", c.GeneratorStartProb)
	}
	if c.GeneratorStartHours < 0 {
		return fmt.Errorf("power: GeneratorStartHours must be >= 0, got %v", c.GeneratorStartHours)
	}
	if c.IdleFraction < 0 || c.IdleFraction > 1 {
		return fmt.Errorf("power: IdleFraction %v outside [0, 1]", c.IdleFraction)
	}
	if c.Utilization < 0 || c.Utilization > 1 {
		return fmt.Errorf("power: Utilization %v outside [0, 1]", c.Utilization)
	}
	if c.PUE != 0 && c.PUE < 1 {
		return fmt.Errorf("power: PUE %v below 1", c.PUE)
	}
	if c.CarbonKgPerKWh < 0 {
		return fmt.Errorf("power: CarbonKgPerKWh must be >= 0, got %v", c.CarbonKgPerKWh)
	}
	if c.CapFraction < 0 || c.CapFraction >= 1 {
		return fmt.Errorf("power: CapFraction %v outside [0, 1)", c.CapFraction)
	}
	if c.CapStartHours < 0 || c.CapDurationHours < 0 {
		return fmt.Errorf("power: cap window must be non-negative, got start %v duration %v",
			c.CapStartHours, c.CapDurationHours)
	}
	return nil
}

// EffectivePDUs returns the PDU count actually instantiated for a
// cluster of `racks` racks: at most one PDU per rack. The simulation
// (System.buildPDUs) and the cost model (cost.EstimateWithPower) both
// use this, so the priced hierarchy is definitionally the simulated
// one.
func (c Config) EffectivePDUs(racks int) int {
	if c.PDUs > racks {
		return racks
	}
	return c.PDUs
}

// EffectivePDUSpec returns the catalog spec PDUs are built from (the
// documented default when unset).
func (c Config) EffectivePDUSpec() string {
	if c.PDUSpec == "" {
		return DefaultPDUSpec
	}
	return c.PDUSpec
}

// IdleFloorKW returns the facility power floor for nodes machines at
// the config's idle draw: the minimum conceivable facility draw while
// every node is powered (the cap throttles only the active share, so
// the idle floor is throttle-invariant). Analytic power-feasibility
// screening (internal/core) fails a power-budget SLA below this floor
// without simulating.
func (c Config) IdleFloorKW(nodes int, activeWattsPerNode float64) float64 {
	n := c.normalized()
	return float64(nodes) * activeWattsPerNode * n.IdleFraction * n.PUE / 1000
}

// normalized fills the zero-valued energy-model fields with their
// documented defaults. Fingerprinting (core.CacheKey) uses the raw
// fields — a zero and its explicit default key differently, which costs
// at most a cache miss, never staleness.
func (c Config) normalized() Config {
	if c.IdleFraction == 0 {
		c.IdleFraction = DefaultIdleFraction
	}
	if c.Utilization == 0 {
		c.Utilization = DefaultUtilization
	}
	if c.PUE == 0 {
		c.PUE = DefaultPUE
	}
	if c.CarbonKgPerKWh == 0 {
		c.CarbonKgPerKWh = DefaultCarbon
	}
	if c.PDUSpec == "" {
		c.PDUSpec = DefaultPDUSpec
	}
	return c
}
