package service

import (
	"context"
	"runtime"
	"time"

	"repro/internal/obs"
)

// Pool is the daemon's shared simulation worker budget: a counting
// semaphore implementing core.Gate. Every job's Explorer acquires one
// slot per design point actually simulated (cache hits and analytic
// screening bypass it), so however many WTQL queries are in flight, at
// most Cap design points simulate concurrently — the "bounded worker
// pool" the serving layer promises.
type Pool struct {
	sem chan struct{}

	// wait/queued, when set via instrument, record contended-acquire
	// latency and the live waiter count. Both are nil-safe no-ops when
	// telemetry is off, and the uncontended fast path in Acquire never
	// touches a clock either way.
	wait   *obs.Histogram
	queued *obs.Gauge
}

// NewPool returns a pool with n slots (n <= 0 means GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// instrument wires the pool's wait histogram and queue-depth gauge
// (nil instruments leave the pool un-instrumented).
func (p *Pool) instrument(wait *obs.Histogram, queued *obs.Gauge) {
	p.wait, p.queued = wait, queued
}

// Acquire blocks until a slot is free or ctx is done.
func (p *Pool) Acquire(ctx context.Context) error {
	// Uncontended fast path: no clock read, no gauge traffic.
	select {
	case p.sem <- struct{}{}:
		return nil
	default:
	}
	var t0 time.Time
	if p.wait != nil {
		t0 = time.Now()
	}
	p.queued.Inc()
	defer p.queued.Dec()
	select {
	case p.sem <- struct{}{}:
		p.wait.Observe(time.Since(t0).Seconds())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken by Acquire.
func (p *Pool) Release() { <-p.sem }

// Cap returns the slot count.
func (p *Pool) Cap() int { return cap(p.sem) }

// InUse returns the number of currently-held slots (approximate under
// concurrency; for monitoring only).
func (p *Pool) InUse() int { return len(p.sem) }
