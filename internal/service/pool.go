package service

import (
	"context"
	"runtime"
)

// Pool is the daemon's shared simulation worker budget: a counting
// semaphore implementing core.Gate. Every job's Explorer acquires one
// slot per design point actually simulated (cache hits and analytic
// screening bypass it), so however many WTQL queries are in flight, at
// most Cap design points simulate concurrently — the "bounded worker
// pool" the serving layer promises.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool with n slots (n <= 0 means GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken by Acquire.
func (p *Pool) Release() { <-p.sem }

// Cap returns the slot count.
func (p *Pool) Cap() int { return cap(p.sem) }

// InUse returns the number of currently-held slots (approximate under
// concurrency; for monitoring only).
func (p *Pool) InUse() int { return len(p.sem) }
