package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestParseFaultConfig covers the -chaos flag grammar.
func TestParseFaultConfig(t *testing.T) {
	cfg, err := ParseFaultConfig("seed=7,err=0.05,delay=0.1,delay-max=200ms,drop=0.25,reset=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.ErrProb != 0.05 || cfg.DelayProb != 0.1 ||
		cfg.DelayMax != 200*time.Millisecond || cfg.DropProb != 0.25 || cfg.ResetProb != 0.5 {
		t.Fatalf("parsed %+v", cfg)
	}
	if _, err := ParseFaultConfig(""); err != nil {
		t.Fatalf("empty spec rejected: %v", err)
	}
	for _, bad := range []string{"wat=1", "err=2", "err=-0.1", "seed", "delay-max=fast"} {
		if _, err := ParseFaultConfig(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestChaosDeterministic: two injectors with the same seed draw the
// same fault sequence — the property that makes a chaos failure
// reproducible.
func TestChaosDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 42, ErrProb: 0.3, DropProb: 0.3, ResetProb: 0.3}
	a, b := NewFaultInjector(cfg), NewFaultInjector(cfg)
	for i := 0; i < 200; i++ {
		pa, pb := a.plan(), b.plan()
		if pa != pb {
			t.Fatalf("plans diverged at request %d: %+v vs %+v", i, pa, pb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	st := a.Stats()
	if st.Requests != 200 || st.Errors == 0 || st.Drops == 0 || st.Resets == 0 {
		t.Fatalf("200 requests at 30%% rates injected nothing: %+v", st)
	}
}

// TestChaosInjectsError: ErrProb=1 turns every data-plane request into
// a 500 — except healthz, which stays exempt so the health monitor
// keeps seeing the truth.
func TestChaosInjectsError(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
		w.Write([]byte("ok\n"))
	})
	f := NewFaultInjector(FaultConfig{ErrProb: 1})
	ts := httptest.NewServer(f.Wrap(inner))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("chaos err request returned %d, want 500", resp.StatusCode)
	}

	hz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz not exempt from chaos: %d", hz.StatusCode)
	}
	if st := f.Stats(); st.Errors != 1 || st.Requests != 1 {
		t.Fatalf("chaos stats after 1 data + 1 healthz request: %+v", st)
	}
}

// TestChaosDropTruncatesStream: DropProb=1 ends a streaming body early
// with a clean EOF, and the server survives to serve the next request.
func TestChaosDropTruncatesStream(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, _ := w.(http.Flusher)
		for i := 0; i < 100; i++ {
			w.Write([]byte(strings.Repeat("x", 32) + "\n"))
			if fl != nil {
				fl.Flush()
			}
		}
	})
	f := NewFaultInjector(FaultConfig{Seed: 3, DropProb: 1})
	ts := httptest.NewServer(f.Wrap(inner))
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/stream")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("drop should end the body cleanly, got read error %v", err)
		}
		if len(body) >= 100*33 {
			t.Fatalf("drop did not truncate: %d bytes through", len(body))
		}
	}
	if st := f.Stats(); st.Drops != 3 {
		t.Fatalf("drops = %d, want 3: %+v", st.Drops, st)
	}
}

// TestChaosFleetSurvives is the in-process version of the CI chaos
// smoke: a two-worker fleet whose workers drop and reset streams at
// high probability must still converge to the exact single-daemon
// table with zero job-level errors — failover and the shard retry
// budget absorb every injected fault.
func TestChaosFleetSurvives(t *testing.T) {
	_, single := newTestServer(t, Config{PoolSize: 2})
	want := lastEvent(t, postQuery(t, single, smallQuery))

	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		srv, err := New(Config{
			PoolSize: 2,
			Chaos:    NewFaultInjector(FaultConfig{Seed: int64(11 + i), DropProb: 0.4, ResetProb: 0.2}),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	_, cts := newTestServer(t, Config{Coordinator: true, Peers: urls, MaxShardRetries: 10})

	events := postQuery(t, cts, smallQuery)
	for _, ev := range events {
		if ev["type"] == "error" {
			t.Fatalf("chaos fleet surfaced a job-level error: %v", ev)
		}
	}
	final := lastEvent(t, events)
	if final["type"] != "result" {
		t.Fatalf("chaos fleet ended with %v", final)
	}
	if final["table"] != want["table"] {
		t.Fatalf("chaos fleet table differs from single-daemon run:\n--- single ---\n%v--- chaos ---\n%v",
			want["table"], final["table"])
	}
}
