package service

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultConfig configures the chaos-injection harness: per-request
// probabilities for each fault class, driven by one seeded RNG so a
// chaos run is reproducible. All probabilities are in [0, 1]; zero
// disables that fault. Health probes (GET /v1/healthz) are exempt —
// chaos targets the data plane, and a lying liveness endpoint would
// test the monitor's patience, not the failover paths.
type FaultConfig struct {
	// Seed makes the fault sequence deterministic (0 = seed 1).
	Seed int64
	// ErrProb responds 500 before the handler runs.
	ErrProb float64
	// DelayProb sleeps a uniform [0, DelayMax) before handling.
	DelayProb float64
	// DelayMax bounds an injected delay (default 100ms).
	DelayMax time.Duration
	// DropProb ends the response body cleanly partway through — an
	// NDJSON stream that stops before its result event.
	DropProb float64
	// ResetProb aborts the connection mid-body — the client sees a
	// connection reset, not a clean EOF.
	ResetProb float64
	// CutEvery, when > 0, deterministically aborts every streaming
	// response (POST /v1/query and GET /v1/jobs/{id}/stream) after that
	// many body writes — no RNG involved. It exists to exercise the
	// durable-job resume path: a client that reconnects with
	// from=<received> advances a few points per attempt and still
	// finishes, so `cut=3` proves end-to-end resume without a single
	// byte of the final table changing.
	CutEvery int
}

// FaultStats counts injected faults.
type FaultStats struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Delays   uint64 `json:"delays"`
	Drops    uint64 `json:"drops"`
	Resets   uint64 `json:"resets"`
	Cuts     uint64 `json:"cuts"`
}

// FaultInjector injects configured faults into an http.Handler — the
// seam that lets ordinary `go test` (and the CI chaos-smoke job)
// exercise the fleet's failover paths instead of trusting them to
// manual testing. Wrap the server's handler; every request draws its
// faults from the shared seeded RNG.
type FaultInjector struct {
	mu  sync.Mutex
	rng *rand.Rand
	cfg FaultConfig
	st  FaultStats
}

// NewFaultInjector builds an injector for cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DelayMax <= 0 {
		cfg.DelayMax = 100 * time.Millisecond
	}
	return &FaultInjector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Stats returns the injected-fault counters.
func (f *FaultInjector) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// faultPlan is the set of faults drawn for one request.
type faultPlan struct {
	err   bool
	delay time.Duration
	drop  bool // clean early EOF after dropAfter writes
	reset bool // connection abort after dropAfter writes
	after int  // body writes before the drop/reset fires
}

// plan draws one request's faults under the lock, keeping the RNG
// sequence deterministic however many requests race.
func (f *FaultInjector) plan() faultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.st.Requests++
	var p faultPlan
	if f.cfg.ErrProb > 0 && f.rng.Float64() < f.cfg.ErrProb {
		p.err = true
		f.st.Errors++
		return p
	}
	if f.cfg.DelayProb > 0 && f.rng.Float64() < f.cfg.DelayProb {
		p.delay = time.Duration(f.rng.Int63n(int64(f.cfg.DelayMax)))
		f.st.Delays++
	}
	// Drop and reset are exclusive: both truncate the body, they differ
	// only in how the connection dies.
	switch {
	case f.cfg.DropProb > 0 && f.rng.Float64() < f.cfg.DropProb:
		p.drop = true
		p.after = 1 + f.rng.Intn(8)
		f.st.Drops++
	case f.cfg.ResetProb > 0 && f.rng.Float64() < f.cfg.ResetProb:
		p.reset = true
		p.after = 1 + f.rng.Intn(8)
		f.st.Resets++
	}
	return p
}

// errChaosDrop is the sentinel the chaos writer panics with to end a
// response body cleanly partway through; Wrap recovers it so the
// truncation looks like a handler that simply stopped streaming.
var errChaosDrop = fmt.Errorf("chaos: stream dropped")

// chaosExempt lists the control-plane paths chaos never touches: the
// liveness endpoint (a lying healthz tests the monitor's patience, not
// failover), and the observability surface — an operator debugging a
// chaos run needs /metrics, /v1/stats and the profiler to tell the
// truth about it.
func chaosExempt(r *http.Request) bool {
	switch r.URL.Path {
	case "/v1/healthz", "/v1/stats", "/metrics",
		"/v1/metrics/fleet", "/v1/metrics/history", "/v1/alerts":
		return true
	}
	return strings.HasPrefix(r.URL.Path, "/debug/pprof")
}

// Wrap returns next with fault injection in front of it.
func (f *FaultInjector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if chaosExempt(r) {
			next.ServeHTTP(w, r)
			return
		}
		p := f.plan()
		if p.err {
			writeJSON(w, http.StatusInternalServerError,
				ErrorEvent{Type: "error", Error: "chaos: injected server error"})
			return
		}
		if p.delay > 0 {
			select {
			case <-time.After(p.delay):
			case <-r.Context().Done():
				return
			}
		}
		if !p.drop && !p.reset && f.cfg.CutEvery > 0 && streamingPath(r) {
			// Deterministic stream cut: independent of the RNG so a
			// resume exercise does not disturb the seeded fault sequence.
			f.mu.Lock()
			f.st.Cuts++
			f.mu.Unlock()
			p.reset, p.after = true, f.cfg.CutEvery
		}
		if p.drop || p.reset {
			defer func() {
				if rec := recover(); rec != nil && rec != errChaosDrop {
					panic(rec)
				}
			}()
			w = &chaosWriter{ResponseWriter: w, after: p.after, reset: p.reset}
		}
		next.ServeHTTP(w, r)
	})
}

// streamingPath reports whether a request answers with an NDJSON job
// stream — the only responses a cut=N fault targets (cutting a one-shot
// JSON endpoint would test nothing resumable).
func streamingPath(r *http.Request) bool {
	return r.URL.Path == "/v1/query" || strings.HasSuffix(r.URL.Path, "/stream")
}

// chaosWriter truncates a response body after a configured number of
// writes: a drop panics with errChaosDrop (recovered by Wrap, so the
// chunked body ends cleanly mid-stream), a reset panics with
// http.ErrAbortHandler (net/http aborts the connection).
type chaosWriter struct {
	http.ResponseWriter
	writes int
	after  int
	reset  bool
}

func (c *chaosWriter) Write(p []byte) (int, error) {
	if c.writes >= c.after {
		if c.reset {
			panic(http.ErrAbortHandler)
		}
		panic(errChaosDrop)
	}
	c.writes++
	return c.ResponseWriter.Write(p)
}

// Flush keeps the NDJSON streaming path working under chaos — the
// handler's flusher type-assertion must still see a Flusher.
func (c *chaosWriter) Flush() {
	if fl, ok := c.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// ParseFaultConfig parses the -chaos flag grammar: a comma-separated
// k=v list, e.g.
//
//	seed=7,err=0.05,delay=0.1,delay-max=200ms,drop=0.05,reset=0.05
//
// Unknown keys and out-of-range probabilities are errors — a chaos run
// with a silently-ignored knob tests nothing.
func ParseFaultConfig(s string) (FaultConfig, error) {
	var cfg FaultConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("service: chaos spec %q wants key=value", part)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "err":
			err = parseProb(&cfg.ErrProb, v)
		case "delay":
			err = parseProb(&cfg.DelayProb, v)
		case "delay-max":
			cfg.DelayMax, err = time.ParseDuration(v)
		case "drop":
			err = parseProb(&cfg.DropProb, v)
		case "reset":
			err = parseProb(&cfg.ResetProb, v)
		case "cut":
			cfg.CutEvery, err = strconv.Atoi(v)
			if err == nil && cfg.CutEvery < 0 {
				err = fmt.Errorf("cut wants a non-negative write count, got %d", cfg.CutEvery)
			}
		default:
			keys := []string{"seed", "err", "delay", "delay-max", "drop", "reset", "cut"}
			sort.Strings(keys)
			return cfg, fmt.Errorf("service: unknown chaos key %q (want one of %s)", k, strings.Join(keys, ", "))
		}
		if err != nil {
			return cfg, fmt.Errorf("service: chaos %s: %w", k, err)
		}
	}
	return cfg, nil
}

func parseProb(dst *float64, v string) error {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return err
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("probability %v outside [0, 1]", p)
	}
	*dst = p
	return nil
}
