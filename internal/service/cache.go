package service

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
)

// Cache is the content-addressed trial cache: completed (SLA-free) trial
// statistics keyed by core.CacheKey fingerprints. It has two tiers:
//
//   - an LRU memory tier bounded at maxEntries results,
//   - an optional disk tier (one JSON file per key under dir) written on
//     every Put, so results survive daemon restarts; a memory miss falls
//     through to disk and promotes the entry back into memory, and
//   - an optional peer tier (EnablePeering): on a memory+disk miss the
//     key's consistent-hash owner peer is asked over GET /v1/cache/{key}
//     before the caller falls back to simulating, so a re-sharded or
//     restarted fleet reuses every trial ever computed anywhere. A
//     fetched entry is promoted into the local memory and disk tiers.
//     Peer fetches are best-effort: an unreachable or missing peer just
//     degrades to a local miss.
//
// Determinism contract: a Get hit returns exactly the statistics a fresh
// run of the same key would produce — runs are deterministic functions
// of the key, the stored result is immutable, and the disk tier's JSON
// float encoding round-trips float64 exactly — so a served sweep is
// byte-identical whether it was simulated or remembered.
//
// The memory bound is on entry count, not bytes: one entry holds the
// aggregate metric maps plus the pooled per-tenant availabilities, so
// size scales with (users x trials) of the cached run. The disk tier is
// unbounded and append-only; evicting from memory never deletes the
// disk copy.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	dir        string // "" = memory-only

	// Peer tier (nil ring = disabled). The ring spans the whole fleet
	// including this worker; self is this worker's URL on it, excluded
	// from fetch targets so an owner's genuine miss never loops back.
	peers      *Ring
	self       string
	peerClient *http.Client
	// health, when non-nil, short-circuits fetches to peers the monitor
	// has marked down: a dead peer costs a map lookup per key, not a
	// connect timeout.
	health *Health

	hits, diskHits, peerHits, misses, puts, evictions uint64
	peerRetries, peerSkips                            uint64
}

type cacheEntry struct {
	key string
	res *core.RunResult
}

// DefaultCacheEntries bounds the memory tier when no capacity is given.
const DefaultCacheEntries = 512

// NewCache returns a cache holding at most maxEntries results in memory
// (<= 0 means DefaultCacheEntries), persisting to dir when non-empty.
func NewCache(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
		// writeDisk stages entries as put-* temp files before the atomic
		// rename. A daemon killed between CreateTemp and Rename leaves
		// the temp file behind, and nothing would ever delete it — they
		// accumulated forever across restarts. A cache dir belongs to
		// exactly one daemon (fleet workers each get their own), so at
		// open time every surviving put-* file is from a dead writer and
		// is swept.
		stale, err := filepath.Glob(filepath.Join(dir, "put-*"))
		if err != nil {
			return nil, fmt.Errorf("service: cache dir sweep: %w", err)
		}
		for _, f := range stale {
			os.Remove(f)
		}
	}
	return &Cache{
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		dir:        dir,
	}, nil
}

// EnablePeering turns on the peer tier: peers is the full fleet member
// list (every worker passes the same list, so the fleet agrees on key
// ownership) and self is this worker's URL within it. client is the
// HTTP client used for peer fetches; nil gets a short-timeout default —
// a slow peer must degrade to a local simulate, not stall the sweep.
func (c *Cache) EnablePeering(peers []string, self string, client *http.Client) {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	c.mu.Lock()
	c.peers = NewRing(peers)
	c.self = self
	c.peerClient = client
	c.mu.Unlock()
}

// SetHealth attaches a health monitor consulted before peer fetches.
func (c *Cache) SetHealth(h *Health) {
	c.mu.Lock()
	c.health = h
	c.mu.Unlock()
}

// Get implements core.TrialCache.
func (c *Cache) Get(key string) (*core.RunResult, bool) {
	return c.GetContext(context.Background(), key)
}

// GetContext implements core.ContextTrialCache: Get with the sweep's
// context flowing into the peer-fetch tier, so a cancelled job abandons
// an in-flight peer fetch immediately instead of riding out the fetch
// client's own timeout.
func (c *Cache) GetContext(ctx context.Context, key string) (*core.RunResult, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if res, ok := c.readDisk(key); ok {
			return c.promote(key, res, &c.diskHits), true
		}
	}
	if res, ok := c.fetchPeer(ctx, key); ok {
		res = c.promote(key, res, &c.peerHits)
		if c.dir != "" {
			// Re-replicate onto the local disk tier so the next restart
			// (or the next re-shard) finds it without another hop. A
			// concurrent Put of the same key writes identical bytes, so
			// the double write is idempotent.
			c.writeDisk(key, res)
		}
		return res, true
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// promote inserts an entry recovered from a lower tier (disk or peer)
// into the memory tier, counting a hit plus the tier counter. It
// re-checks for the key under the re-acquired lock: a concurrent Get or
// Put for the same key may have inserted it already, and a second
// element for one key would orphan the first in the LRU list and later
// evict the live map entry — the existing entry always wins.
func (c *Cache) promote(key string, res *core.RunResult, tier *uint64) *core.RunResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	*tier++
	if el, dup := c.items[key]; dup {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).res
	}
	c.insert(key, res)
	return res
}

// fetchPeer asks the key's hash-owner peer for the entry. It never
// recurses (peers answer from their memory+disk tiers only, via Peek)
// and treats every terminal failure — no peering, no eligible peer,
// connection refused, 404, corrupt body — as a plain miss. Two
// robustness refinements on top:
//
//   - a peer the health monitor holds down is skipped outright, so a
//     dead fleet member costs a map lookup per key instead of a connect
//     timeout per key;
//   - a transient answer (429 or any 5xx) gets one short retry before
//     degrading to a miss, so a peer momentarily overloaded mid-sweep
//     still hands the entry to the LRU promotion path. The retry is
//     counted in peer_retries; peer_hits only ever counts entries
//     actually served, so transient errors never poison the hit stats.
//
// ctx is the calling sweep's context: a cancelled job aborts the fetch
// (and the retry backoff) immediately.
func (c *Cache) fetchPeer(ctx context.Context, key string) (*core.RunResult, bool) {
	c.mu.Lock()
	ring, self, client, health := c.peers, c.self, c.peerClient, c.health
	c.mu.Unlock()
	if ring == nil {
		return nil, false
	}
	owner, ok := ring.OwnerExcluding(key, self)
	if !ok {
		return nil, false
	}
	if health != nil && !health.Reachable(owner) {
		c.mu.Lock()
		c.peerSkips++
		c.mu.Unlock()
		return nil, false
	}

	// attempt returns the decoded entry, the HTTP status (0 on transport
	// error) and whether the fetch succeeded.
	attempt := func() (*core.RunResult, int, bool) {
		req, err := http.NewRequestWithContext(ctx, "GET", owner+"/v1/cache/"+key, nil)
		if err != nil {
			return nil, 0, false
		}
		resp, err := client.Do(req)
		if err != nil {
			if health != nil && ctx.Err() == nil {
				health.ReportFailure(owner, err)
			}
			return nil, 0, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return nil, resp.StatusCode, false
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheEntryBytes))
		if err != nil {
			return nil, 0, false
		}
		var rec diskRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, resp.StatusCode, false
		}
		return rec.result(), resp.StatusCode, true
	}

	res, code, ok := attempt()
	if !ok && transientPeerStatus(code) && ctx.Err() == nil {
		c.mu.Lock()
		c.peerRetries++
		c.mu.Unlock()
		select {
		case <-time.After(peerRetryDelay):
		case <-ctx.Done():
			return nil, false
		}
		res, _, ok = attempt()
	}
	if !ok {
		return nil, false
	}
	if health != nil {
		health.ReportSuccess(owner)
	}
	return res, true
}

// transientPeerStatus reports whether a peer's HTTP status is worth one
// retry: overload (429) and server-side errors (5xx) are momentary; a
// 404 is a genuine miss and anything else won't improve in 50ms.
func transientPeerStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// peerRetryDelay spaces the single transient-status retry. Short on
// purpose: the alternative to retrying is simulating the point locally,
// so waiting longer than a few tens of milliseconds loses the trade.
const peerRetryDelay = 50 * time.Millisecond

// maxCacheEntryBytes bounds a peer response: an entry holds aggregate
// metric maps plus per-tenant availabilities, far below this.
const maxCacheEntryBytes = 64 << 20

// Peek returns the entry from the local memory+disk tiers only — the
// peer-serving path behind GET /v1/cache/{key}. It never triggers a
// peer fetch (no fetch loops between mutually-peered workers) and
// leaves the hit/miss counters alone: a peer's lookup is not this
// worker's workload. Memory recency and disk promotion still apply.
func (c *Cache) Peek(key string) (*core.RunResult, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, false
	}
	res, ok := c.readDisk(key)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, dup := c.items[key]; dup {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).res, true
	}
	c.insert(key, res)
	return res, true
}

// Put implements core.TrialCache. The result must be treated as
// immutable from this point on.
func (c *Cache) Put(key string, r *core.RunResult) {
	c.mu.Lock()
	c.puts++
	if el, ok := c.items[key]; ok {
		// Same key means same content; just refresh recency.
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.insert(key, r)
	c.mu.Unlock()

	if c.dir != "" {
		c.writeDisk(key, r)
	}
}

// insert adds an entry and evicts the LRU tail past capacity. Caller
// holds c.mu.
func (c *Cache) insert(key string, r *core.RunResult) {
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: r})
	for c.ll.Len() > c.maxEntries {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats is a point-in-time cache counter snapshot. PeerHits counts the
// subset of Hits served by fetching the entry from the key's hash-owner
// peer (DiskHits likewise counts local-disk promotions); both are
// included in Hits.
type Stats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	DiskHits  uint64 `json:"disk_hits"`
	PeerHits  uint64 `json:"peer_hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// PeerRetries counts transient-status (429/5xx) peer-fetch retries;
	// PeerSkips counts fetches short-circuited because the health
	// monitor held the owner peer down.
	PeerRetries uint64 `json:"peer_retries"`
	PeerSkips   uint64 `json:"peer_skips"`
}

// HitRate returns hits / lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:     c.ll.Len(),
		Capacity:    c.maxEntries,
		Hits:        c.hits,
		DiskHits:    c.diskHits,
		PeerHits:    c.peerHits,
		Misses:      c.misses,
		Puts:        c.puts,
		Evictions:   c.evictions,
		PeerRetries: c.peerRetries,
		PeerSkips:   c.peerSkips,
	}
}

// diskRecord is the persisted form of a cached result, and equally the
// GET /v1/cache/{key} peer wire format. Cached results are SLA-free by
// construction (verdicts are recomputed on every hit), so only the
// aggregate statistics are stored. encoding/json encodes float64 with
// the shortest representation that parses back exactly, so both the
// disk round trip and a peer hop preserve every bit.
type diskRecord struct {
	Scenario           string             `json:"scenario"`
	Trials             int                `json:"trials"`
	Metrics            map[string]float64 `json:"metrics"`
	CI                 map[string]float64 `json:"ci"`
	TenantAvailability []float64          `json:"tenant_availability,omitempty"`
	EventsTotal        uint64             `json:"events_total"`
	AbortedTrials      int                `json:"aborted_trials,omitempty"`
}

func (c *Cache) path(key string) string {
	// Keys are hex SHA-256 fingerprints: filesystem-safe by construction.
	return filepath.Join(c.dir, key+".json")
}

// recordFrom projects a result onto its persisted/wire form.
func recordFrom(r *core.RunResult) diskRecord {
	return diskRecord{
		Scenario:           r.Scenario,
		Trials:             r.Trials,
		Metrics:            r.Metrics,
		CI:                 r.CI,
		TenantAvailability: r.TenantAvailability,
		EventsTotal:        r.EventsTotal,
		AbortedTrials:      r.AbortedTrials,
	}
}

// result rebuilds the (SLA-free) cached result.
func (rec diskRecord) result() *core.RunResult {
	return &core.RunResult{
		Scenario:           rec.Scenario,
		Trials:             rec.Trials,
		Metrics:            rec.Metrics,
		CI:                 rec.CI,
		TenantAvailability: rec.TenantAvailability,
		EventsTotal:        rec.EventsTotal,
		AbortedTrials:      rec.AbortedTrials,
	}
}

func (c *Cache) readDisk(key string) (*core.RunResult, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var rec diskRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false // corrupt entry: treat as a miss
	}
	return rec.result(), true
}

func (c *Cache) writeDisk(key string, r *core.RunResult) {
	data, err := json.Marshal(recordFrom(r))
	if err != nil {
		return // non-finite metric: keep the memory tier only
	}
	// Write-fsync-rename so concurrent readers never see a torn file
	// and a power loss never publishes one: rename alone orders nothing
	// on most filesystems, so without the Sync a crash could leave an
	// empty or partial entry under the final name. readDisk's
	// corrupt=miss stays as the last line of defense, not the plan.
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
		return
	}
	// Make the rename itself durable: fsync the directory entry.
	syncDir(c.dir)
}
