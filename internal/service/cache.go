package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
)

// Cache is the content-addressed trial cache: completed (SLA-free) trial
// statistics keyed by core.CacheKey fingerprints. It has two tiers:
//
//   - an LRU memory tier bounded at maxEntries results, and
//   - an optional disk tier (one JSON file per key under dir) written on
//     every Put, so results survive daemon restarts; a memory miss falls
//     through to disk and promotes the entry back into memory.
//
// Determinism contract: a Get hit returns exactly the statistics a fresh
// run of the same key would produce — runs are deterministic functions
// of the key, the stored result is immutable, and the disk tier's JSON
// float encoding round-trips float64 exactly — so a served sweep is
// byte-identical whether it was simulated or remembered.
//
// The memory bound is on entry count, not bytes: one entry holds the
// aggregate metric maps plus the pooled per-tenant availabilities, so
// size scales with (users x trials) of the cached run. The disk tier is
// unbounded and append-only; evicting from memory never deletes the
// disk copy.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	dir        string // "" = memory-only

	hits, diskHits, misses, puts, evictions uint64
}

type cacheEntry struct {
	key string
	res *core.RunResult
}

// DefaultCacheEntries bounds the memory tier when no capacity is given.
const DefaultCacheEntries = 512

// NewCache returns a cache holding at most maxEntries results in memory
// (<= 0 means DefaultCacheEntries), persisting to dir when non-empty.
func NewCache(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &Cache{
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		dir:        dir,
	}, nil
}

// Get implements core.TrialCache.
func (c *Cache) Get(key string) (*core.RunResult, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if res, ok := c.readDisk(key); ok {
			c.mu.Lock()
			c.hits++
			c.diskHits++
			// Re-check under the re-acquired lock: a concurrent Get for
			// the same key may have promoted it already, and inserting a
			// second element for one key would orphan the first in the
			// LRU list and later evict the live map entry.
			if el, dup := c.items[key]; dup {
				c.ll.MoveToFront(el)
				res = el.Value.(*cacheEntry).res
			} else {
				c.insert(key, res)
			}
			c.mu.Unlock()
			return res, true
		}
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put implements core.TrialCache. The result must be treated as
// immutable from this point on.
func (c *Cache) Put(key string, r *core.RunResult) {
	c.mu.Lock()
	c.puts++
	if el, ok := c.items[key]; ok {
		// Same key means same content; just refresh recency.
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.insert(key, r)
	c.mu.Unlock()

	if c.dir != "" {
		c.writeDisk(key, r)
	}
}

// insert adds an entry and evicts the LRU tail past capacity. Caller
// holds c.mu.
func (c *Cache) insert(key string, r *core.RunResult) {
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: r})
	for c.ll.Len() > c.maxEntries {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats is a point-in-time cache counter snapshot.
type Stats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
}

// HitRate returns hits / lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.ll.Len(),
		Capacity:  c.maxEntries,
		Hits:      c.hits,
		DiskHits:  c.diskHits,
		Misses:    c.misses,
		Puts:      c.puts,
		Evictions: c.evictions,
	}
}

// diskRecord is the persisted form of a cached result. Cached results
// are SLA-free by construction (verdicts are recomputed on every hit),
// so only the aggregate statistics are stored. encoding/json encodes
// float64 with the shortest representation that parses back exactly, so
// the disk round trip preserves every bit.
type diskRecord struct {
	Scenario           string             `json:"scenario"`
	Trials             int                `json:"trials"`
	Metrics            map[string]float64 `json:"metrics"`
	CI                 map[string]float64 `json:"ci"`
	TenantAvailability []float64          `json:"tenant_availability,omitempty"`
	EventsTotal        uint64             `json:"events_total"`
	AbortedTrials      int                `json:"aborted_trials,omitempty"`
}

func (c *Cache) path(key string) string {
	// Keys are hex SHA-256 fingerprints: filesystem-safe by construction.
	return filepath.Join(c.dir, key+".json")
}

func (c *Cache) readDisk(key string) (*core.RunResult, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var rec diskRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false // corrupt entry: treat as a miss
	}
	return &core.RunResult{
		Scenario:           rec.Scenario,
		Trials:             rec.Trials,
		Metrics:            rec.Metrics,
		CI:                 rec.CI,
		TenantAvailability: rec.TenantAvailability,
		EventsTotal:        rec.EventsTotal,
		AbortedTrials:      rec.AbortedTrials,
	}, true
}

func (c *Cache) writeDisk(key string, r *core.RunResult) {
	rec := diskRecord{
		Scenario:           r.Scenario,
		Trials:             r.Trials,
		Metrics:            r.Metrics,
		CI:                 r.CI,
		TenantAvailability: r.TenantAvailability,
		EventsTotal:        r.EventsTotal,
		AbortedTrials:      r.AbortedTrials,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return // non-finite metric: keep the memory tier only
	}
	// Write-then-rename so concurrent readers never see a torn file.
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
	}
}
