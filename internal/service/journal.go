package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// The job journal is windtunneld's write-ahead log: the durability layer
// that lets a daemon survive the very failure modes its scenarios
// simulate (kill -9, OOM, power loss). One journal file per job records
//
//	begin    the submitted query + resolved trial count,
//	point    one record per committed design point, carrying the
//	         point's core.CacheKey and the exact NDJSON event line the
//	         client was (or will be) sent,
//	end      the terminal result/error line.
//
// Every record is appended with a single write() and fsync'd before the
// corresponding event becomes visible to any client, so a stream
// observer can never have seen an event a restarted daemon has
// forgotten. On restart, Recover replays the files: complete jobs come
// back replayable, incomplete jobs are resurrected and resume execution
// of only their undelivered points — the committed prefix is served
// verbatim from the journal, and the cache keys in the point records
// make any re-planning a trial-cache hit rather than a re-simulation.
//
// Record framing is length-prefixed with a CRC over the payload:
//
//	[4B little-endian payload length][4B CRC-32 (IEEE) of payload][payload JSON]
//
// A torn tail write (crash mid-append) therefore shows up as a short or
// CRC-failing record; Recover truncates the file back to the last good
// record and reports it, never panicking and never silently dropping a
// committed point that made it to disk intact.

// journalVersion is the on-disk format version stamped into every begin
// record. Files declaring a newer version are refused (with an explicit
// warning) rather than half-parsed.
const journalVersion = 1

// journalExt is the per-job journal file suffix.
const journalExt = ".wtj"

// maxJournalRecord bounds one record's payload; anything larger is
// treated as corruption (the length prefix is attacker/garbage-
// controlled bytes on recovery).
const maxJournalRecord = 64 << 20

// journalRecord is the JSON payload of one framed record.
type journalRecord struct {
	Kind string `json:"kind"` // "begin" | "point" | "end"

	// begin fields.
	V       int       `json:"v,omitempty"`
	Job     string    `json:"job,omitempty"`
	Query   string    `json:"query,omitempty"`
	Trials  int       `json:"trials,omitempty"`
	Created time.Time `json:"created,omitzero"`

	// point fields. Line is the verbatim NDJSON event line (without the
	// trailing newline) so replay is byte-identical; Key is the point's
	// content address so resumed planning re-uses cached trials.
	Index int             `json:"index,omitempty"`
	Key   string          `json:"key,omitempty"`
	Line  json.RawMessage `json:"line,omitempty"`

	// end fields: Status is "done", "failed" or "cancelled"; Line above
	// carries the terminal result/error event.
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Journal manages the per-job journal files under one directory.
type Journal struct {
	dir string

	// appends/fsync, when set via instrument, count records appended and
	// time each append (write + fsync). Copied into every JobJournal so
	// the hot append path reads plain fields; nil-safe no-ops otherwise.
	appends *obs.Counter
	fsync   *obs.Histogram
}

// OpenJournal opens (creating if needed) a journal directory.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal dir: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// instrument wires the journal's append counter and fsync-latency
// histogram (nil instruments leave it un-instrumented).
func (j *Journal) instrument(appends *obs.Counter, fsync *obs.Histogram) {
	j.appends, j.fsync = appends, fsync
}

func (j *Journal) path(jobID string) string {
	return filepath.Join(j.dir, jobID+journalExt)
}

// Begin creates a new job journal and durably records the submitted
// query and its resolved trial override.
func (j *Journal) Begin(jobID, query string, trials int, created time.Time) (*JobJournal, error) {
	f, err := os.OpenFile(j.path(jobID), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal begin: %w", err)
	}
	jj := &JobJournal{f: f, path: j.path(jobID), appends: j.appends, fsync: j.fsync}
	if err := jj.append(journalRecord{
		Kind: "begin", V: journalVersion,
		Job: jobID, Query: query, Trials: trials, Created: created.UTC(),
	}); err != nil {
		f.Close()
		os.Remove(jj.path)
		return nil, err
	}
	syncDir(j.dir) // the file's existence must survive the crash too
	return jj, nil
}

// Reopen opens an existing (recovered, incomplete) job journal for
// appending the resumed run's records.
func (j *Journal) Reopen(jobID string) (*JobJournal, error) {
	f, err := os.OpenFile(j.path(jobID), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal reopen: %w", err)
	}
	return &JobJournal{f: f, path: j.path(jobID), appends: j.appends, fsync: j.fsync}, nil
}

// Remove deletes a job's journal file (registry eviction).
func (j *Journal) Remove(jobID string) {
	os.Remove(j.path(jobID))
}

// MaxSeq scans the directory for job-<n> journals and returns the
// highest sequence number, so a restarted daemon's job IDs continue
// past every journaled job instead of colliding with them.
func (j *Journal) MaxSeq() int {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return 0
	}
	maxSeq := 0
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), journalExt)
		if name == e.Name() {
			continue
		}
		if n, ok := jobSeq(name); ok && n > maxSeq {
			maxSeq = n
		}
	}
	return maxSeq
}

// jobSeq extracts the numeric suffix of a "job-<n>" id.
func jobSeq(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// JobJournal appends records for one job. Append order is the event
// order; every append is one write() call followed by fsync, so a crash
// tears at most the final record — which Recover then truncates away.
type JobJournal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	dead    bool // abandoned (crash simulation) or closed: appends become no-ops
	appends *obs.Counter
	fsync   *obs.Histogram
}

func (jj *JobJournal) append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)

	jj.mu.Lock()
	defer jj.mu.Unlock()
	if jj.dead {
		return fmt.Errorf("service: journal %s is closed", jj.path)
	}
	var t0 time.Time
	if jj.fsync != nil {
		t0 = time.Now()
	}
	if _, err := jj.f.Write(buf); err != nil {
		return err
	}
	if err := jj.f.Sync(); err != nil {
		return err
	}
	jj.appends.Inc()
	jj.fsync.Observe(time.Since(t0).Seconds())
	return nil
}

// Point durably records one committed design point: its global index,
// cache key, and the exact NDJSON line clients see.
func (jj *JobJournal) Point(index int, key string, line []byte) error {
	return jj.append(journalRecord{Kind: "point", Index: index, Key: key, Line: json.RawMessage(line)})
}

// End durably records the job's terminal event and closes the file.
func (jj *JobJournal) End(status, errMsg string, line []byte) error {
	err := jj.append(journalRecord{Kind: "end", Status: status, Error: errMsg, Line: json.RawMessage(line)})
	jj.Close()
	return err
}

// Close closes the underlying file; later appends fail cleanly.
func (jj *JobJournal) Close() {
	jj.mu.Lock()
	defer jj.mu.Unlock()
	if !jj.dead {
		jj.dead = true
		jj.f.Close()
	}
}

// abandon simulates a crash for tests: the file is closed as-is, with
// no terminal record, exactly as kill -9 would leave it.
func (jj *JobJournal) abandon() { jj.Close() }

// RecoveredPoint is one journaled committed design point.
type RecoveredPoint struct {
	Index int
	Key   string
	Line  []byte // verbatim NDJSON event line (no trailing newline)
}

// RecoveredJob is one job reconstructed from its journal file.
type RecoveredJob struct {
	ID      string
	Query   string
	Trials  int
	Created time.Time
	// Points is the committed contiguous prefix, in index order.
	Points []RecoveredPoint
	// Status is "" for an incomplete job (crashed mid-run; must be
	// resumed), else the journaled terminal status.
	Status  string
	Error   string
	EndLine []byte
}

// Recover scans every journal file, truncating corrupt tails, and
// returns the reconstructed jobs in ascending job-sequence order plus
// human-readable warnings for anything repaired or refused (torn tail
// records, mid-file garbage, unsupported format versions). It never
// fails the whole scan for one bad file: durability bugs in one job
// must not take down recovery of the rest.
func (j *Journal) Recover() ([]*RecoveredJob, []string, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("service: journal scan: %w", err)
	}
	var jobs []*RecoveredJob
	var warnings []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), journalExt) {
			continue
		}
		path := filepath.Join(j.dir, e.Name())
		job, warns := recoverFile(path)
		warnings = append(warnings, warns...)
		if job != nil {
			jobs = append(jobs, job)
		}
	}
	sort.Slice(jobs, func(a, b int) bool {
		sa, _ := jobSeq(jobs[a].ID)
		sb, _ := jobSeq(jobs[b].ID)
		if sa != sb {
			return sa < sb
		}
		return jobs[a].ID < jobs[b].ID
	})
	return jobs, warnings, nil
}

// recoverFile replays one journal file. A framing error (short header,
// oversize length, CRC mismatch, bad JSON) ends the replay at the last
// good record and truncates the file there, so a reopened journal
// appends from a clean boundary. Returns nil (with warnings) for files
// that yield no usable job: empty, version-refused, or headless.
func recoverFile(path string) (*RecoveredJob, []string) {
	var warnings []string
	f, err := os.Open(path)
	if err != nil {
		return nil, []string{fmt.Sprintf("journal %s: %v", path, err)}
	}
	defer f.Close()

	var (
		job    *RecoveredJob
		good   int64 // offset just past the last fully-valid record
		header [8]byte
		refuse bool
	)
	rd := io.Reader(f)
	for {
		if _, err := io.ReadFull(rd, header[:]); err != nil {
			if err != io.EOF {
				warnings = append(warnings, fmt.Sprintf("journal %s: torn record header at offset %d: truncating", path, good))
				truncateAt(path, good, &warnings)
			}
			break
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if n > maxJournalRecord {
			warnings = append(warnings, fmt.Sprintf("journal %s: corrupt record length %d at offset %d: truncating", path, n, good))
			truncateAt(path, good, &warnings)
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(rd, payload); err != nil {
			warnings = append(warnings, fmt.Sprintf("journal %s: torn record payload at offset %d: truncating", path, good))
			truncateAt(path, good, &warnings)
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			warnings = append(warnings, fmt.Sprintf("journal %s: CRC mismatch at offset %d: truncating", path, good))
			truncateAt(path, good, &warnings)
			break
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			warnings = append(warnings, fmt.Sprintf("journal %s: bad record JSON at offset %d: truncating", path, good))
			truncateAt(path, good, &warnings)
			break
		}
		good += int64(8 + len(payload))

		switch rec.Kind {
		case "begin":
			if rec.V > journalVersion {
				warnings = append(warnings, fmt.Sprintf("journal %s: format version %d is newer than supported %d: refusing (leave for a newer daemon)", path, rec.V, journalVersion))
				refuse = true
			}
			if job != nil || refuse {
				break
			}
			job = &RecoveredJob{ID: rec.Job, Query: rec.Query, Trials: rec.Trials, Created: rec.Created}
		case "point":
			if job == nil || job.Status != "" {
				break // headless or post-terminal: ignore
			}
			if rec.Index != len(job.Points) {
				// Points are appended in commit order, so indices are
				// contiguous from 0; a gap means lost writes. Keep the
				// contiguous prefix — it is still a valid resume point.
				warnings = append(warnings, fmt.Sprintf("journal %s: point index %d out of order (want %d): keeping contiguous prefix", path, rec.Index, len(job.Points)))
				break
			}
			job.Points = append(job.Points, RecoveredPoint{Index: rec.Index, Key: rec.Key, Line: rec.Line})
		case "end":
			if job == nil || job.Status != "" {
				break
			}
			job.Status = rec.Status
			job.Error = rec.Error
			job.EndLine = rec.Line
		}
		if refuse {
			return nil, warnings
		}
	}
	if job == nil {
		if len(warnings) == 0 {
			warnings = append(warnings, fmt.Sprintf("journal %s: no begin record: ignoring", path))
		}
		return nil, warnings
	}
	return job, warnings
}

// truncateAt cuts a journal file back to the last good record boundary.
func truncateAt(path string, off int64, warnings *[]string) {
	if err := os.Truncate(path, off); err != nil {
		*warnings = append(*warnings, fmt.Sprintf("journal %s: truncate failed: %v", path, err))
	}
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives power loss (a no-op where directories cannot be opened).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
