package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/wtql"
)

func dummyResult(name string, avail float64) *core.RunResult {
	return &core.RunResult{
		Scenario: name,
		Trials:   4,
		Metrics:  map[string]float64{"availability": avail, "events": 123},
		CI:       map[string]float64{"availability": 0.001},
		TenantAvailability: []float64{
			avail, avail - 0.001, avail + 0.0005,
		},
		EventsTotal: 4321,
	}
}

func TestCacheLRUEvictionBounds(t *testing.T) {
	c, err := NewCache(4, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("key-%d", i), dummyResult("s", float64(i)))
	}
	st := c.Stats()
	if st.Entries != 4 {
		t.Fatalf("cache holds %d entries, want 4", st.Entries)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", st.Evictions)
	}
	// The four most recent survive; the rest are gone.
	for i := 0; i < 6; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); ok {
			t.Fatalf("key-%d should have been evicted", i)
		}
	}
	for i := 6; i < 10; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); !ok {
			t.Fatalf("key-%d should be cached", i)
		}
	}
}

func TestCacheLRURecencyOrder(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", dummyResult("a", 1))
	c.Put("b", dummyResult("b", 2))
	c.Get("a")                      // refresh a
	c.Put("c", dummyResult("c", 3)) // must evict b, not a
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("least-recently-used entry survived")
	}
}

// TestCacheDiskTierSurvivesRestart persists through one cache, then
// reads bit-identical results through a fresh cache on the same dir —
// the restart scenario.
func TestCacheDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab12", 16) // 64 hex chars like a real fingerprint
	want := dummyResult("persisted", 0.99912345678901234)
	c1.Put(key, want)

	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("restarted cache missed a persisted entry")
	}
	if got.Scenario != want.Scenario || got.Trials != want.Trials ||
		got.EventsTotal != want.EventsTotal {
		t.Fatalf("disk round trip changed scalars: %+v vs %+v", got, want)
	}
	for k, v := range want.Metrics {
		if got.Metrics[k] != v {
			t.Fatalf("metric %s: %v != %v (float not bit-exact through JSON)", k, got.Metrics[k], v)
		}
	}
	for i, v := range want.TenantAvailability {
		if got.TenantAvailability[i] != v {
			t.Fatalf("tenant availability %d not bit-exact", i)
		}
	}
	st := c2.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.DiskHits)
	}
	// The promoted entry now serves from memory.
	if _, ok := c2.Get(key); !ok {
		t.Fatal("promoted entry missing from memory tier")
	}
	if st2 := c2.Stats(); st2.DiskHits != 1 || st2.Hits != 2 {
		t.Fatalf("promotion stats wrong: %+v", st2)
	}
}

// TestCacheConcurrentDiskPromotion hammers one disk-tier key from many
// goroutines after a "restart": the promotion path must not insert
// duplicate LRU elements for the key (which would desync the list from
// the map and later evict the live entry).
func TestCacheConcurrentDiskPromotion(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ef56", 16)
	c1.Put(key, dummyResult("hot", 0.9))

	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := c2.Get(key); !ok {
				t.Error("disk-tier entry missed")
			}
		}()
	}
	wg.Wait()
	st := c2.Stats()
	if st.Entries != 1 {
		t.Fatalf("one key promoted into %d entries", st.Entries)
	}
	// Fill to capacity: the promoted key must survive exactly as one
	// entry and the map/list must stay in sync through evictions.
	for i := 0; i < 7; i++ {
		c2.Put(fmt.Sprintf("fill-%d", i), dummyResult("f", 0.5))
	}
	if _, ok := c2.Get(key); !ok {
		t.Fatal("promoted key lost after fills below capacity")
	}
	if st := c2.Stats(); st.Entries != 8 || st.Evictions != 0 {
		t.Fatalf("map/list desync: %+v", st)
	}
}

// TestStalePutTempFilesSweptOnOpen pins the temp-file-leak fix: a
// daemon killed between CreateTemp and Rename leaves a put-* file in
// the cache dir, and nothing else ever deletes it. NewCache must sweep
// them while leaving committed entries untouched.
func TestStalePutTempFilesSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("beef", 16)
	c1.Put(key, dummyResult("kept", 0.9))

	// Plant the wreckage of a writer that died mid-Put.
	stale := filepath.Join(dir, "put-1234567890")
	if err := os.WriteFile(stale, []byte(`{"torn":`), 0o600); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale put-* temp file survived reopen: stat err = %v", err)
	}
	if _, ok := c2.Get(key); !ok {
		t.Fatal("sweep removed a committed cache entry")
	}
}

func TestCacheCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("cd34", 16)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt disk entry served as a hit")
	}
}

// TestEngineDiskCacheRestartGolden is the end-to-end restart check: a
// sweep served entirely from a previous process's disk tier renders
// byte-identical output to the cold run that populated it.
func TestEngineDiskCacheRestartGolden(t *testing.T) {
	dir := t.TempDir()
	query := `SIMULATE availability
VARY cluster.nodes IN (5, 7)
WITH users = 20, object_mb = 10, trials = 2, horizon_hours = 200
WHERE sla.availability >= 0.2`

	run := func() (*wtql.ResultSet, *Cache) {
		cache, err := NewCache(8, dir)
		if err != nil {
			t.Fatal(err)
		}
		eng := &wtql.Engine{Trials: 2, Cache: cache}
		rs, err := eng.Execute(query)
		if err != nil {
			t.Fatal(err)
		}
		return rs, cache
	}

	cold, _ := run()
	warm, cache := run()
	if cold.Render() != warm.Render() {
		t.Fatalf("restart-warm render differs:\n--- cold ---\n%s--- warm ---\n%s",
			cold.Render(), warm.Render())
	}
	if warm.CacheHits != warm.Executed {
		t.Fatalf("warm run hit %d/%d points across restart", warm.CacheHits, warm.Executed)
	}
	if st := cache.Stats(); st.DiskHits != uint64(warm.Executed) {
		t.Fatalf("expected all %d hits from disk, stats %+v", warm.Executed, st)
	}
}
