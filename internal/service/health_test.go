package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestHealthStateMachine drives the up/suspect/down transitions with
// passive observations: SuspectAfter failures suspend new assignments,
// DownAfter failures cut the member off, and a down member needs
// UpAfter straight successes back (hysteresis against flapping).
func TestHealthStateMachine(t *testing.T) {
	const u = "http://w1"
	h := NewHealth([]string{u}, HealthConfig{SuspectAfter: 1, DownAfter: 3, UpAfter: 2})

	if h.State(u) != StateUp || !h.Assignable(u) || !h.Reachable(u) {
		t.Fatal("fresh member must start up (optimistic)")
	}

	h.ReportFailure(u, fmt.Errorf("boom"))
	if h.State(u) != StateSuspect {
		t.Fatalf("1 failure → %v, want suspect", h.State(u))
	}
	if h.Assignable(u) {
		t.Fatal("suspect member still assignable")
	}
	if !h.Reachable(u) {
		t.Fatal("suspect member unreachable — peering should still try it")
	}

	h.ReportFailure(u, fmt.Errorf("boom"))
	h.ReportFailure(u, fmt.Errorf("boom"))
	if h.State(u) != StateDown {
		t.Fatalf("3 failures → %v, want down", h.State(u))
	}
	if h.Reachable(u) {
		t.Fatal("down member still reachable")
	}

	// Hysteresis: one success is not enough to leave down.
	h.ReportSuccess(u)
	if h.State(u) != StateDown {
		t.Fatalf("1 success recovered a down member to %v", h.State(u))
	}
	h.ReportSuccess(u)
	if h.State(u) != StateUp || !h.Assignable(u) {
		t.Fatalf("2 successes → %v, want up", h.State(u))
	}

	// A suspect member recovers on the first success.
	h.ReportFailure(u, fmt.Errorf("blip"))
	h.ReportSuccess(u)
	if h.State(u) != StateUp {
		t.Fatalf("suspect did not recover on first success: %v", h.State(u))
	}

	// Interleaved success resets the failure streak: down needs
	// *consecutive* failures.
	h.ReportFailure(u, nil)
	h.ReportFailure(u, nil)
	h.ReportSuccess(u)
	h.ReportFailure(u, nil)
	h.ReportFailure(u, nil)
	if h.State(u) == StateDown {
		t.Fatal("non-consecutive failures took the member down")
	}

	// Unknown members are up and assignable — health never vetoes
	// traffic to an address it was not asked to watch.
	if h.State("http://stranger") != StateUp || !h.Assignable("http://stranger") {
		t.Fatal("unknown member not treated as up")
	}
}

// TestHealthProbe runs one synchronous probe round against a live
// server and a dead one, then checks recovery probes bring a revived
// member back.
func TestHealthProbe(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	t.Cleanup(live.Close)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	h := NewHealth([]string{live.URL, deadURL}, HealthConfig{
		ProbeTimeout: 500 * time.Millisecond,
		DownAfter:    2,
		UpAfter:      1,
	})
	h.Probe()
	if st := h.State(live.URL); st != StateUp {
		t.Fatalf("live member probed as %v", st)
	}
	if st := h.State(deadURL); st != StateSuspect {
		t.Fatalf("dead member probed as %v after one round, want suspect", st)
	}
	h.Probe()
	if st := h.State(deadURL); st != StateDown {
		t.Fatalf("dead member probed as %v after two rounds, want down", st)
	}

	// Recovery: down members keep receiving probes — that is the
	// recovery path — so a revived member comes back on its own.
	revived := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	t.Cleanup(revived.Close)
	h2 := NewHealth([]string{revived.URL}, HealthConfig{DownAfter: 1, UpAfter: 1})
	h2.ReportFailure(revived.URL, fmt.Errorf("was down"))
	if h2.State(revived.URL) != StateDown {
		t.Fatal("setup: member not down")
	}
	h2.Probe()
	if st := h2.State(revived.URL); st != StateUp {
		t.Fatalf("revived member probed as %v, want up", st)
	}

	snap := h.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d members, want 2", len(snap))
	}
	if snap[0].URL > snap[1].URL {
		t.Fatal("snapshot not sorted by URL")
	}
	for _, m := range snap {
		if m.URL == deadURL && m.LastError == "" {
			t.Fatal("down member's snapshot carries no last error")
		}
	}
}

// TestHealthStartStop: the background loop probes on its own and Stop
// terminates it (idempotently).
func TestHealthStartStop(t *testing.T) {
	probed := make(chan struct{}, 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case probed <- struct{}{}:
		default:
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	t.Cleanup(ts.Close)

	h := NewHealth([]string{ts.URL}, HealthConfig{ProbeInterval: 20 * time.Millisecond})
	h.Start()
	select {
	case <-probed:
	case <-time.After(5 * time.Second):
		t.Fatal("background loop never probed")
	}
	h.Stop()
	h.Stop() // idempotent
}
