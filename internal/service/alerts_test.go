package service

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// testEngine builds an alertEngine with no background goroutine and a
// controllable clock, so tests drive evaluate() round by round.
func testEngine(hist *obs.History, rules []AlertRule) (*alertEngine, *time.Time, *[]string) {
	clock := time.Unix(1700000000, 0)
	var logs []string
	e := &alertEngine{
		hist:   hist,
		rules:  rules,
		active: make(map[string]*alertInstance),
		now:    func() time.Time { return clock },
		logf: func(format string, args ...any) {
			logs = append(logs, fmt.Sprintf(format, args...))
		},
	}
	return e, &clock, &logs
}

func ingestGauge(h *obs.History, name string, v float64, instance string, t time.Time) {
	h.Ingest([]obs.FamilySnapshot{{
		Name: name, Type: "gauge",
		Samples: []obs.SeriesSample{{Value: v}},
	}}, instance, t)
}

// TestAlertThresholdImmediateFire: a For-less threshold rule fires on
// the first evaluation where the condition holds, resolves when it
// clears, and re-fires on the next violation — logging each transition.
func TestAlertThresholdImmediateFire(t *testing.T) {
	h := obs.NewHistory(16)
	rule := AlertRule{Name: "down", Kind: "threshold", Metric: "wt_fleet_member_up", Op: "<", Value: 1, Severity: "critical"}
	e, clock, logs := testEngine(h, []AlertRule{rule})

	ingestGauge(h, "wt_fleet_member_up", 1, "w1", *clock)
	e.evaluate()
	if got := e.Snapshot(); got.Firing != 0 || len(got.Alerts) != 0 {
		t.Fatalf("healthy member raised %+v", got)
	}

	*clock = clock.Add(time.Second)
	ingestGauge(h, "wt_fleet_member_up", 0, "w1", *clock)
	e.evaluate()
	snap := e.Snapshot()
	if snap.Firing != 1 || len(snap.Alerts) != 1 || snap.Alerts[0].State != AlertFiring {
		t.Fatalf("want one firing alert, got %+v", snap)
	}
	if a := snap.Alerts[0]; a.Rule != "down" || a.Severity != "critical" || !strings.Contains(a.Labels, "w1") {
		t.Fatalf("alert fields wrong: %+v", a)
	}
	if e.FiringCount() != 1 {
		t.Fatalf("firing count %d", e.FiringCount())
	}

	*clock = clock.Add(time.Second)
	ingestGauge(h, "wt_fleet_member_up", 1, "w1", *clock)
	e.evaluate()
	snap = e.Snapshot()
	if snap.Firing != 0 || len(snap.Alerts) != 1 || snap.Alerts[0].State != AlertResolved {
		t.Fatalf("want resolved paper trail, got %+v", snap)
	}
	if snap.Alerts[0].ResolvedAt.IsZero() {
		t.Fatal("resolved alert has no resolved_at")
	}

	// Re-violation starts a fresh incident.
	*clock = clock.Add(time.Second)
	ingestGauge(h, "wt_fleet_member_up", 0, "w1", *clock)
	e.evaluate()
	if snap := e.Snapshot(); snap.Firing != 1 {
		t.Fatalf("re-violation did not re-fire: %+v", snap)
	}

	wantLogs := []string{"to=firing", "to=resolved", "to=firing"}
	if len(*logs) != len(wantLogs) {
		t.Fatalf("want %d transition logs, got %v", len(wantLogs), *logs)
	}
	for i, want := range wantLogs {
		if !strings.Contains((*logs)[i], want) || !strings.Contains((*logs)[i], "rule=down") {
			t.Fatalf("log %d = %q, want it to contain %q", i, (*logs)[i], want)
		}
	}
}

// TestAlertPendingHoldsForDuration: a rule with For walks
// inactive → pending → firing only after the condition holds
// continuously, and drops back to inactive if it lets go early.
func TestAlertPendingHoldsForDuration(t *testing.T) {
	h := obs.NewHistory(64)
	rule := AlertRule{Name: "queue", Kind: "threshold", Metric: "wt_pool_queue_depth",
		Op: ">", Value: 16, For: RuleDuration(10 * time.Second)}
	e, clock, _ := testEngine(h, []AlertRule{rule})

	ingestGauge(h, "wt_pool_queue_depth", 20, "", *clock)
	e.evaluate()
	if snap := e.Snapshot(); snap.Pending != 1 || snap.Firing != 0 {
		t.Fatalf("first violation should be pending: %+v", snap)
	}

	// Condition lets go before For: back to inactive, nothing listed.
	*clock = clock.Add(5 * time.Second)
	ingestGauge(h, "wt_pool_queue_depth", 3, "", *clock)
	e.evaluate()
	if snap := e.Snapshot(); len(snap.Alerts) != 0 {
		t.Fatalf("early recovery should clear the pending alert: %+v", snap)
	}

	// Holds past For: pending, then firing.
	*clock = clock.Add(time.Second)
	ingestGauge(h, "wt_pool_queue_depth", 30, "", *clock)
	e.evaluate()
	*clock = clock.Add(11 * time.Second)
	ingestGauge(h, "wt_pool_queue_depth", 31, "", *clock)
	e.evaluate()
	snap := e.Snapshot()
	if snap.Firing != 1 || snap.Alerts[0].Value != 31 {
		t.Fatalf("sustained violation should fire with the latest value: %+v", snap)
	}
}

// TestAlertRatioMinCount: the ratio kind divides summed increases and
// stays silent below the activity floor — a cache that served nothing
// has no hit ratio to collapse.
func TestAlertRatioMinCount(t *testing.T) {
	h := obs.NewHistory(64)
	rule := AlertRule{Name: "cache", Kind: "ratio",
		Numerator:   []string{"wt_cache_hits_total", "wt_cache_disk_hits_total"},
		Denominator: []string{"wt_cache_hits_total", "wt_cache_disk_hits_total", "wt_cache_misses_total"},
		Op:          "<", Value: 0.1, Window: RuleDuration(time.Minute), MinCount: 20}
	e, clock, _ := testEngine(h, []AlertRule{rule})

	ingest := func(hits, disk, misses float64) {
		h.Ingest([]obs.FamilySnapshot{
			{Name: "wt_cache_hits_total", Type: "counter", Samples: []obs.SeriesSample{{Value: hits}}},
			{Name: "wt_cache_disk_hits_total", Type: "counter", Samples: []obs.SeriesSample{{Value: disk}}},
			{Name: "wt_cache_misses_total", Type: "counter", Samples: []obs.SeriesSample{{Value: misses}}},
		}, "w1", *clock)
	}

	// Below the activity floor: 10 misses in the window, MinCount 20.
	ingest(0, 0, 0)
	*clock = clock.Add(10 * time.Second)
	ingest(0, 0, 10)
	e.evaluate()
	if snap := e.Snapshot(); len(snap.Alerts) != 0 {
		t.Fatalf("ratio below MinCount activity should not alert: %+v", snap)
	}

	// Plenty of traffic, 2% hit ratio: fires.
	*clock = clock.Add(10 * time.Second)
	ingest(1, 1, 108) // window increases: num 2, den 110
	e.evaluate()
	snap := e.Snapshot()
	if snap.Firing != 1 {
		t.Fatalf("collapsed ratio should fire: %+v", snap)
	}
	if v := snap.Alerts[0].Value; v < 0.017 || v > 0.019 {
		t.Fatalf("ratio value %v, want ~2/110", v)
	}

	// Healthy ratio: resolves.
	*clock = clock.Add(10 * time.Second)
	ingest(101, 1, 108)
	e.evaluate()
	if snap := e.Snapshot(); snap.Firing != 0 || snap.Alerts[0].State != AlertResolved {
		t.Fatalf("recovered ratio should resolve: %+v", snap)
	}
}

// TestAlertSeriesDisappearance: a firing alert whose series stops
// reporting resolves (no data is not a held condition), and a pending
// one is dropped.
func TestAlertSeriesDisappearance(t *testing.T) {
	h := obs.NewHistory(4)
	rules := []AlertRule{
		{Name: "inc", Kind: "increase", Metric: "wt_x_total", Op: ">", Value: 0, Window: RuleDuration(20 * time.Second)},
	}
	e, clock, _ := testEngine(h, rules)

	ingest := func(v float64) {
		h.Ingest([]obs.FamilySnapshot{{Name: "wt_x_total", Type: "counter",
			Samples: []obs.SeriesSample{{Value: v}}}}, "w1", *clock)
	}
	ingest(0)
	*clock = clock.Add(5 * time.Second)
	ingest(4)
	e.evaluate()
	if snap := e.Snapshot(); snap.Firing != 1 {
		t.Fatalf("increase rule should fire: %+v", snap)
	}

	// The window slides past all samples: the series vanishes from the
	// evaluation and the alert resolves rather than firing forever.
	*clock = clock.Add(time.Hour)
	e.evaluate()
	if snap := e.Snapshot(); snap.Firing != 0 || snap.Alerts[0].State != AlertResolved {
		t.Fatalf("vanished series should resolve the alert: %+v", snap)
	}
}

// TestAlertQuantileRule: the quantile kind estimates over the window's
// bucket increases — a latency regression fires it, recovery resolves.
func TestAlertQuantileRule(t *testing.T) {
	h := obs.NewHistory(64)
	reg := obs.NewRegistry()
	hist := reg.Histogram("wt_journal_fsync_seconds", "Fsync.", obs.DurationBuckets)
	rule := AlertRule{Name: "fsync", Kind: "quantile", Metric: "wt_journal_fsync_seconds",
		Quantile: 0.99, Op: ">", Value: 0.05, Window: RuleDuration(time.Minute)}
	e, clock, _ := testEngine(h, []AlertRule{rule})

	h.Ingest(reg.Snapshot(), "w1", *clock)
	for i := 0; i < 100; i++ {
		hist.Observe(0.2) // all observations land above the 50ms SLO
	}
	*clock = clock.Add(10 * time.Second)
	h.Ingest(reg.Snapshot(), "w1", *clock)
	e.evaluate()
	if snap := e.Snapshot(); snap.Firing != 1 {
		t.Fatalf("slow fsync p99 should fire: %+v", snap)
	}
}

// TestMergeAlertRules: user rules override defaults by name, append
// otherwise, and disabled drops a rule; invalid rules are rejected.
func TestMergeAlertRules(t *testing.T) {
	merged, err := MergeAlertRules(DefaultAlertRules(), []AlertRule{
		{Name: "worker_down", Disabled: true},
		{Name: "queue_depth_sustained", Kind: "threshold", Metric: "wt_pool_queue_depth", Op: ">", Value: 64},
		{Name: "custom", Kind: "rate", Metric: "wt_points_committed_total", Op: "<", Value: 1, Window: RuleDuration(time.Minute)},
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AlertRule{}
	for _, r := range merged {
		byName[r.Name] = r
	}
	if _, ok := byName["worker_down"]; ok {
		t.Fatal("disabled default survived the merge")
	}
	if got := byName["queue_depth_sustained"].Value; got != 64 {
		t.Fatalf("override lost: threshold %v, want 64", got)
	}
	if _, ok := byName["custom"]; !ok {
		t.Fatal("appended rule missing")
	}
	if _, ok := byName["journal_fsync_slow"]; !ok {
		t.Fatal("untouched default missing")
	}

	if _, err := MergeAlertRules(nil, []AlertRule{{Name: "bad", Kind: "nope", Op: ">"}}); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if _, err := MergeAlertRules(nil, []AlertRule{{Name: "bad", Kind: "threshold", Metric: "m", Op: "~"}}); err == nil {
		t.Fatal("invalid op accepted")
	}
	if _, err := MergeAlertRules(nil, []AlertRule{{Name: "bad", Kind: "ratio", Op: ">"}}); err == nil {
		t.Fatal("ratio without operands accepted")
	}
}
