package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// MemberState is a fleet member's health as seen by this process.
type MemberState string

const (
	// StateUp: the member answers probes (or real traffic) normally.
	StateUp MemberState = "up"
	// StateSuspect: recent failures below the down threshold, or the
	// member reports itself draining. Suspect members receive no *new*
	// shard assignments but in-flight streams are left alone and cache
	// peering still tries them — a suspect is slow or leaving, not gone.
	StateSuspect MemberState = "suspect"
	// StateDown: consecutive failures reached DownAfter. Down members are
	// skipped everywhere — shard planning routes around them and cache
	// peering misses immediately instead of eating a connect timeout per
	// key. Recovery probes keep running; successes bring the member back.
	StateDown MemberState = "down"
)

// HealthConfig tunes the monitor. Zero values mean the defaults.
type HealthConfig struct {
	// ProbeInterval is the period of the background probe loop
	// (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one GET /v1/healthz (default 1s).
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive-failure count that moves an up
	// member to suspect (default 1: the first failure makes it suspect).
	SuspectAfter int
	// DownAfter is the consecutive-failure count that moves a member to
	// down (default 3).
	DownAfter int
	// UpAfter is the consecutive-success count a *down* member needs to
	// return to up (default 2) — hysteresis so a flapping member does not
	// oscillate into the shard planner every other probe. Suspect members
	// recover on the first success.
	UpAfter int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	return c
}

// MemberHealth is the externally-visible state of one member, served at
// GET /v1/fleet.
type MemberHealth struct {
	URL   string      `json:"url"`
	State MemberState `json:"state"`
	// Draining is set when the member's healthz reports it is refusing
	// new work; it probes as suspect, not failed.
	Draining  bool      `json:"draining,omitempty"`
	Failures  int       `json:"consecutive_failures,omitempty"`
	LastError string    `json:"last_error,omitempty"`
	LastProbe time.Time `json:"last_probe,omitzero"`
	LastOK    time.Time `json:"last_ok,omitzero"`
}

type memberHealth struct {
	MemberHealth
	successes int // consecutive, for down→up hysteresis
}

// Health monitors fleet membership: a background loop probes every
// member's GET /v1/healthz with a short timeout, and the serving paths
// feed passive observations (a torn worker stream, a refused peer
// fetch) through ReportFailure/ReportSuccess so real traffic detects
// failures faster than the probe period. Shard planning and cache
// peering consult the resulting up/suspect/down state; membership is
// exposed at GET /v1/fleet.
type Health struct {
	cfg    HealthConfig
	client *http.Client

	mu      sync.Mutex
	members map[string]*memberHealth
	now     func() time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHealth builds a monitor over the given member URLs. Members start
// up (optimistic: an unprobed fleet must accept work immediately); call
// Start to begin background probing, or Probe for one synchronous round.
func NewHealth(members []string, cfg HealthConfig) *Health {
	cfg = cfg.withDefaults()
	h := &Health{
		cfg: cfg,
		client: &http.Client{
			Timeout: cfg.ProbeTimeout,
		},
		members: make(map[string]*memberHealth, len(members)),
		now:     time.Now,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, m := range members {
		if m == "" {
			continue
		}
		if _, dup := h.members[m]; !dup {
			h.members[m] = &memberHealth{MemberHealth: MemberHealth{URL: m, State: StateUp}}
		}
	}
	return h
}

// Start launches the background probe loop. Stop ends it.
func (h *Health) Start() {
	go func() {
		defer close(h.done)
		ticker := time.NewTicker(h.cfg.ProbeInterval)
		defer ticker.Stop()
		h.Probe()
		for {
			select {
			case <-h.stop:
				return
			case <-ticker.C:
				h.Probe()
			}
		}
	}()
}

// Stop terminates the probe loop (idempotent) and waits for it to exit.
func (h *Health) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// Probe runs one synchronous probe round over all members, including
// down ones — those probes are the recovery path.
func (h *Health) Probe() {
	h.mu.Lock()
	urls := make([]string, 0, len(h.members))
	for u := range h.members {
		urls = append(urls, u)
	}
	h.mu.Unlock()

	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			draining, err := h.probeOne(u)
			if err != nil {
				h.observe(u, true, false, err.Error())
				return
			}
			h.observe(u, false, draining, "")
		}(u)
	}
	wg.Wait()
}

// probeOne GETs one member's healthz and reports whether it is
// draining. Any transport error, non-200, or unparseable body is a
// probe failure.
func (h *Health) probeOne(u string) (draining bool, err error) {
	resp, err := h.client.Get(u + "/v1/healthz")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("healthz returned HTTP %d", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err != nil {
		return false, fmt.Errorf("healthz body: %w", err)
	}
	switch body.Status {
	case "ok":
		return false, nil
	case "draining":
		return true, nil
	default:
		return false, fmt.Errorf("healthz status %q", body.Status)
	}
}

// ReportFailure records a passive failure observation for a member — a
// torn worker stream, a refused peer fetch. Unknown members are ignored
// (traffic to a non-member is not fleet state).
func (h *Health) ReportFailure(u string, err error) {
	msg := "failure reported"
	if err != nil {
		msg = err.Error()
	}
	h.observe(u, true, false, msg)
}

// ReportSuccess records a passive success observation: real traffic is
// the best probe, so a completed stream or served peer fetch recovers a
// suspect member without waiting for the probe loop.
func (h *Health) ReportSuccess(u string) {
	h.observe(u, false, false, "")
}

// observe folds one observation (probe or passive) into the member's
// state machine.
func (h *Health) observe(u string, failed, draining bool, errMsg string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.members[u]
	if !ok {
		return
	}
	now := h.now()
	m.LastProbe = now
	if failed {
		m.successes = 0
		m.Failures++
		m.LastError = errMsg
		switch {
		case m.Failures >= h.cfg.DownAfter:
			m.State = StateDown
		case m.Failures >= h.cfg.SuspectAfter:
			m.State = StateSuspect
		}
		return
	}
	m.LastOK = now
	m.LastError = ""
	m.Failures = 0
	m.Draining = draining
	if draining {
		// A draining member answers but is leaving: suspect, so planners
		// stop assigning it new shards without treating it as failed.
		m.successes = 0
		m.State = StateSuspect
		return
	}
	m.successes++
	if m.State == StateDown && m.successes < h.cfg.UpAfter {
		return // hysteresis: a down member needs UpAfter straight successes
	}
	m.State = StateUp
}

// State returns a member's current state. Unknown members are up —
// health never vetoes traffic to an address it was not asked to watch.
func (h *Health) State(u string) MemberState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m, ok := h.members[u]; ok {
		return m.State
	}
	return StateUp
}

// Reachable reports whether traffic to the member is worth attempting
// at all (anything but down). Cache peering uses this: a down peer is
// an immediate local miss, not a connect timeout per key.
func (h *Health) Reachable(u string) bool {
	return h.State(u) != StateDown
}

// Assignable reports whether the member should receive new shard
// assignments: up, and not draining. Suspect and draining members keep
// their in-flight streams but get nothing new.
func (h *Health) Assignable(u string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.members[u]
	if !ok {
		return true
	}
	return m.State == StateUp && !m.Draining
}

// Snapshot returns every member's state, sorted by URL — the body of
// GET /v1/fleet.
func (h *Health) Snapshot() []MemberHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]MemberHealth, 0, len(h.members))
	for _, m := range h.members {
		out = append(out, m.MemberHealth)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
