package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// startTracedFleet is startFleet with fully-configured workers: the
// listeners exist before New runs, so each worker knows its own URL
// (Peers + Self) and labels its spans and metrics with it — the
// production wiring, which the plain startFleet helper can't reproduce
// because httptest URLs are minted at server start.
func startTracedFleet(t testing.TB, n int) (*Server, *httptest.Server, []*Server, []string) {
	t.Helper()
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range tss {
		tss[i] = httptest.NewServer(http.NotFoundHandler())
		t.Cleanup(tss[i].Close)
		urls[i] = tss[i].URL
	}
	workers := make([]*Server, n)
	for i := range workers {
		srv, err := New(Config{PoolSize: 2, Peers: urls, Self: urls[i]})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		tss[i].Config.Handler = srv.Handler()
		workers[i] = srv
	}
	coord, cts := newTestServer(t, Config{Coordinator: true, Peers: urls})
	return coord, cts, workers, urls
}

// scrape fetches a server's /metrics exposition.
func scrape(t testing.TB, baseURL string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("wrong exposition content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// metricSum adds up every sample of a metric name across its label
// series in an exposition body.
func metricSum(t testing.TB, body []byte, name string) float64 {
	t.Helper()
	sum := 0.0
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sample := line[:strings.LastIndexByte(line, ' ')]
		base := sample
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if strings.TrimSpace(base) != name {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("metric %s not found in exposition:\n%s", name, body)
	}
	return sum
}

// TestFleetMetricsScrapeAndLint is the live-scrape exposition check: a
// sweep runs through a two-worker fleet, then every member's /metrics
// must pass the format linter, the coordinator must have committed every
// point, and the workers' committed-point counters must sum to the job's
// point count (each worker counts exactly its shard).
func TestFleetMetricsScrapeAndLint(t *testing.T) {
	coord, cts, _, urls := startTracedFleet(t, 2)
	ev := lastEvent(t, postQuery(t, cts, smallQuery))
	if ev["type"] != "result" {
		t.Fatalf("fleet query ended with %v", ev)
	}

	for _, u := range append([]string{cts.URL}, urls...) {
		body := scrape(t, u)
		if problems := obs.Lint(body); len(problems) != 0 {
			t.Fatalf("exposition from %s fails lint: %v", u, problems)
		}
	}

	if got := metricSum(t, scrape(t, cts.URL), "wt_points_committed_total"); got != 4 {
		t.Fatalf("coordinator committed %v points, want 4", got)
	}
	var workerSum float64
	for _, u := range urls {
		workerSum += metricSum(t, scrape(t, u), "wt_points_committed_total")
	}
	if workerSum != 4 {
		t.Fatalf("workers committed %v points in total, want 4 (one per shard point)", workerSum)
	}
	if coord.tel == nil || coord.tel.reg == nil {
		t.Fatal("coordinator telemetry not enabled by default")
	}
}

// TestFleetTraceTree checks the tentpole's distributed-tracing claim: a
// fleet job answers GET /v1/jobs/{id}/trace with one connected span
// tree — a single root, every other span's parent present — that spans
// the coordinator and the workers that served points.
func TestFleetTraceTree(t *testing.T) {
	_, cts, _, _ := startTracedFleet(t, 2)
	events := postQuery(t, cts, smallQuery)
	if ev := lastEvent(t, events); ev["type"] != "result" {
		t.Fatalf("fleet query ended with %v", ev)
	}
	var jobID string
	pointWorkers := map[string]bool{}
	for _, ev := range events {
		switch ev["type"] {
		case "job":
			jobID = ev["id"].(string)
		case "point":
			if w, _ := ev["worker"].(string); w != "" {
				pointWorkers[w] = true
			}
		}
	}

	resp, err := http.Get(cts.URL + "/v1/jobs/" + jobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: HTTP %d", resp.StatusCode)
	}
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID == "" || len(tr.Spans) == 0 {
		t.Fatalf("empty trace: %+v", tr)
	}

	ids := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.TraceID != tr.TraceID {
			t.Fatalf("span %s carries foreign trace id %s", sp.SpanID, sp.TraceID)
		}
		if ids[sp.SpanID] {
			t.Fatalf("duplicate span id %s", sp.SpanID)
		}
		ids[sp.SpanID] = true
	}
	roots := 0
	spanWorkers := map[string]bool{}
	names := map[string]int{}
	for _, sp := range tr.Spans {
		spanWorkers[sp.Worker] = true
		names[sp.Name]++
		if sp.Parent == "" {
			roots++
			continue
		}
		if !ids[sp.Parent] {
			t.Fatalf("span %s (%s@%s) has unresolved parent %s — tree is disconnected",
				sp.SpanID, sp.Name, sp.Worker, sp.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d roots, want exactly 1 (the coordinator's job span)", roots)
	}
	if !spanWorkers["coordinator"] {
		t.Fatalf("no coordinator spans in %v", spanWorkers)
	}
	// Every worker that served a point must have contributed its subtree.
	for w := range pointWorkers {
		if !spanWorkers[w] {
			t.Fatalf("worker %s served points but recorded no spans (have %v)", w, spanWorkers)
		}
	}
	for _, want := range []string{"plan", "merge", "shard", "worker"} {
		if names[want] == 0 {
			t.Fatalf("trace has no %q span: %v", want, names)
		}
	}
	if names["simulate"]+names["cache_hit"]+names["screened"] != 4 {
		t.Fatalf("trace holds %d point spans, want 4: %v",
			names["simulate"]+names["cache_hit"]+names["screened"], names)
	}
}

// TestTelemetryOffByteIdentical pins the zero-cost contract: with
// NoTelemetry the NDJSON stream (and therefore the rendered table) is
// byte-identical to a telemetry-on run, /metrics and the trace endpoints
// answer 404, and /v1/stats still works.
func TestTelemetryOffByteIdentical(t *testing.T) {
	_, on := newTestServer(t, Config{PoolSize: 2})
	_, off := newTestServer(t, Config{PoolSize: 2, NoTelemetry: true})

	raw := func(ts *httptest.Server) string {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"query":`+strconv.Quote(smallQuery)+`}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if a, b := raw(on), raw(off); a != b {
		t.Fatalf("NDJSON stream differs with telemetry off:\n--- on ---\n%s--- off ---\n%s", a, b)
	}

	for _, path := range []string{"/metrics", "/v1/jobs/job-1/trace", "/v1/trace/abc"} {
		resp, err := http.Get(off.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s with telemetry off: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(off.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || st.Version != Version || st.Jobs.Total != 1 {
		t.Fatalf("stats with telemetry off: %+v", st)
	}
}

// TestHealthzBuildIdentity pins the enriched healthz body: status plus
// the build identity wtload prints and rolling upgrades rely on.
func TestHealthzBuildIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		Go            string  `json:"go"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" {
		t.Fatalf("healthz status %q, want ok", hz.Status)
	}
	if hz.Version != Version {
		t.Fatalf("healthz version %q, want %q", hz.Version, Version)
	}
	if !strings.HasPrefix(hz.Go, "go") {
		t.Fatalf("healthz go version %q", hz.Go)
	}
	if hz.UptimeSeconds < 0 {
		t.Fatalf("negative uptime %v", hz.UptimeSeconds)
	}
}

// TestStatsSnapshot checks /v1/stats reflects live server state after a
// run: pool capacity, cache traffic, job registry, runtime numbers.
func TestStatsSnapshot(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 3})
	if ev := lastEvent(t, postQuery(t, ts, smallQuery)); ev["type"] != "result" {
		t.Fatalf("query ended with %v", ev)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Pool.Capacity != 3 {
		t.Fatalf("stats pool capacity %d, want 3", st.Pool.Capacity)
	}
	if st.Jobs.Total != 1 || st.Jobs.Running != 0 {
		t.Fatalf("stats jobs %+v, want 1 total / 0 running", st.Jobs)
	}
	if st.Cache.Misses == 0 {
		t.Fatalf("stats cache shows no traffic: %+v", st.Cache)
	}
	if st.Runtime.Goroutines <= 0 || st.Runtime.GoVersion == "" {
		t.Fatalf("stats runtime not populated: %+v", st.Runtime)
	}
}

// TestChaosExemptsObservability is the satellite regression test: with
// every request drawing an injected 500, the observability surface —
// healthz, stats, metrics, pprof — must still answer truthfully, while
// the data plane keeps failing.
func TestChaosExemptsObservability(t *testing.T) {
	_, ts := newTestServer(t, Config{
		PoolSize: 1,
		Chaos:    NewFaultInjector(FaultConfig{ErrProb: 1.0}),
	})
	for _, path := range []string{"/v1/healthz", "/v1/stats", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s under err=1.0 chaos: HTTP %d, want 200 (exempt)", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("GET /v1/jobs under err=1.0 chaos: HTTP %d, want injected 500", resp.StatusCode)
	}
}

// TestDebugHandlerServesPprof checks the -pprof mux: the profiler index
// and the shared /metrics + /v1/stats endpoints answer on it.
func TestDebugHandlerServesPprof(t *testing.T) {
	srv, err := New(Config{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.DebugHandler())
	t.Cleanup(ts.Close)
	for _, path := range []string{"/debug/pprof/", "/metrics", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s on debug handler: HTTP %d", path, resp.StatusCode)
		}
	}
}

// TestJobCarriesTraceID: the job record exposes the trace id the trace
// endpoint resolves, and single-daemon jobs trace too.
func TestJobCarriesTraceID(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 2})
	events := postQuery(t, ts, smallQuery)
	if ev := lastEvent(t, events); ev["type"] != "result" {
		t.Fatalf("query ended with %v", ev)
	}
	jobs := srv.Jobs()
	if len(jobs) != 1 || jobs[0].TraceID == "" {
		t.Fatalf("job carries no trace id: %+v", jobs)
	}
	spans, _ := srv.tel.tracer.Spans(jobs[0].TraceID)
	names := map[string]int{}
	for _, sp := range spans {
		names[sp.Name]++
	}
	if names["job"] != 1 {
		t.Fatalf("want exactly one job root span, got %v", names)
	}
	if names["simulate"]+names["cache_hit"]+names["screened"] != 4 {
		t.Fatalf("want 4 point spans, got %v", names)
	}
}
