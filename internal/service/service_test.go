package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/results"
)

// smallQuery is a fast 4-point sweep used across the tests.
const smallQuery = `SIMULATE availability
VARY cluster.nodes IN (5, 6, 7, 8)
WITH users = 20, object_mb = 10, trials = 2, horizon_hours = 200
WHERE sla.availability >= 0.2`

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postQuery posts a query and decodes the NDJSON stream.
func postQuery(t testing.TB, ts *httptest.Server, query string) (events []map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		bytes.NewReader(mustJSON(t, QueryRequest{Query: query})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func lastEvent(t testing.TB, events []map[string]any) map[string]any {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	return events[len(events)-1]
}

// TestQueryStreamShape checks the NDJSON protocol: a job event, one point
// event per design point, then a result event carrying the rendered
// table.
func TestQueryStreamShape(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 2})
	events := postQuery(t, ts, smallQuery)

	if events[0]["type"] != "job" || events[0]["id"] == "" {
		t.Fatalf("first event should be the job admission, got %v", events[0])
	}
	points := 0
	for _, ev := range events {
		if ev["type"] == "point" {
			points++
			if ev["total"].(float64) != 4 {
				t.Fatalf("point event total = %v, want 4", ev["total"])
			}
		}
	}
	if points != 4 {
		t.Fatalf("streamed %d point events, want 4", points)
	}
	final := lastEvent(t, events)
	if final["type"] != "result" {
		t.Fatalf("last event should be the result, got %v", final)
	}
	if table, _ := final["table"].(string); !strings.Contains(table, "availability") {
		t.Fatalf("result table missing availability column:\n%s", table)
	}
}

// TestRepeatedSweepCacheHitGolden is the acceptance check: a repeated
// sweep must hit the trial cache on >= 90% of its points (here: all of
// them) and render byte-identical output to the cold run.
func TestRepeatedSweepCacheHitGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 2})

	cold := lastEvent(t, postQuery(t, ts, smallQuery))
	warm := lastEvent(t, postQuery(t, ts, smallQuery))

	coldTable, _ := cold["table"].(string)
	warmTable, _ := warm["table"].(string)
	if coldTable == "" || coldTable != warmTable {
		t.Fatalf("warm table differs from cold:\n--- cold ---\n%s--- warm ---\n%s", coldTable, warmTable)
	}
	if cold["cache_hits"].(float64) != 0 {
		t.Fatalf("cold run reported cache hits: %v", cold["cache_hits"])
	}
	executed := warm["executed"].(float64)
	hits := warm["cache_hits"].(float64)
	if executed == 0 || hits < 0.9*executed {
		t.Fatalf("warm run hit %v of %v executed points, want >= 90%%", hits, executed)
	}
}

// TestEightConcurrentJobs serves 8 concurrent sweep jobs on a 4-slot
// shared pool — the acceptance criterion's concurrency shape.
func TestEightConcurrentJobs(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 4, Store: results.NewStore()})

	const jobs = 8
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds so the jobs cannot ride each other's cache
			// entries: all 8 must actually simulate on the shared pool.
			q := fmt.Sprintf(`SIMULATE availability
VARY cluster.nodes IN (5, 6, 7)
WITH users = 20, object_mb = 10, trials = 2, horizon_hours = 200, seed = %d
WHERE sla.availability >= 0.2`, i+1)
			resp, err := http.Post(ts.URL+"/v1/query", "application/json",
				bytes.NewReader(mustJSON(t, QueryRequest{Query: q})))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
			var final map[string]any
			if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil {
				errs <- fmt.Errorf("job %d: bad final line: %v", i, err)
				return
			}
			if final["type"] != "result" {
				errs <- fmt.Errorf("job %d ended with %v", i, final)
				return
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	done := 0
	for _, j := range srv.Jobs() {
		if j.State == JobDone {
			done++
		}
	}
	if done != jobs {
		t.Fatalf("%d jobs done, want %d: %+v", done, jobs, srv.Jobs())
	}
	if got := srv.Cache().Stats().Puts; got < jobs*3 {
		t.Fatalf("cache recorded %d puts, want >= %d (distinct seeds must all simulate)", got, jobs*3)
	}
}

// TestCancelJob cancels a long-running job via DELETE /v1/jobs/{id} and
// checks the stream terminates with an error event and the job records
// the cancelled state.
func TestCancelJob(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1})

	longQuery := `SIMULATE availability
VARY cluster.nodes IN (10, 12, 14, 16, 18, 20, 22, 24)
WITH users = 500, trials = 200, horizon_hours = 8766
WHERE sla.availability >= 0.2`
	req, err := http.NewRequest("POST", ts.URL+"/v1/query",
		bytes.NewReader(mustJSON(t, QueryRequest{Query: longQuery})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("no job event")
	}
	var jobEv map[string]any
	if err := json.Unmarshal(sc.Bytes(), &jobEv); err != nil {
		t.Fatal(err)
	}
	id, _ := jobEv["id"].(string)
	if id == "" {
		t.Fatalf("job event without id: %v", jobEv)
	}

	// Cancel from a second connection while the sweep runs.
	del, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE returned %d", dresp.StatusCode)
	}

	sawError := false
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev["type"] == "error" {
			sawError = true
		}
		if ev["type"] == "result" {
			t.Fatal("cancelled job still streamed a result")
		}
	}
	if !sawError {
		t.Fatal("cancelled job's stream did not end with an error event")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		info, ok := srv.Job(id)
		if ok && info.State == JobCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached cancelled state: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDrainRejectsNewWork checks graceful drain: an in-flight job
// completes, new queries are refused with 503.
func TestDrainRejectsNewWork(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 2})

	started := make(chan struct{})
	finished := make(chan []map[string]any, 1)
	go func() {
		close(started)
		finished <- postQuery(t, ts, smallQuery)
	}()
	<-started
	srv.BeginDrain()

	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		bytes.NewReader(mustJSON(t, QueryRequest{Query: smallQuery})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain returned %d, want 503", resp.StatusCode)
	}

	select {
	case events := <-finished:
		// The in-flight job may have been admitted before or after the
		// drain began; either a full result or a clean refusal is a
		// correct drain outcome — what must never happen is a hang or a
		// torn stream, which the NDJSON decode above already verifies.
		final := lastEvent(t, events)
		if final["type"] != "result" && final["type"] != "error" {
			t.Fatalf("in-flight job ended with %v", final)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight job did not finish during drain")
	}
}

// TestParseErrorsSurfaceLineColumn checks that server clients get
// actionable line:column positions back as JSON.
func TestParseErrorsSurfaceLineColumn(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1})
	events := postQuery(t, ts, "SIMULATE availability\nVARY cluster.nodes (5)")
	final := lastEvent(t, events)
	if final["type"] != "error" {
		t.Fatalf("want error event, got %v", final)
	}
	msg, _ := final["error"].(string)
	if !strings.Contains(msg, "2:20") {
		t.Fatalf("parse error %q lacks line:column position", msg)
	}
}

// TestJobListingAndLookup covers GET /v1/jobs and GET /v1/jobs/{id}.
func TestJobListingAndLookup(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 2})
	postQuery(t, ts, smallQuery)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != JobDone || jobs[0].Done != 4 {
		t.Fatalf("job listing = %+v", jobs)
	}

	one, err := http.Get(ts.URL + "/v1/jobs/" + jobs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	defer one.Body.Close()
	var info JobInfo
	if err := json.NewDecoder(one.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.ID != jobs[0].ID || info.CacheHits != 0 {
		t.Fatalf("job lookup = %+v", info)
	}

	missing, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, missing.Body)
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job returned %d", missing.StatusCode)
	}
}

// TestJobRegistryBounded checks the retention cap: a long-running
// daemon must not accumulate finished jobs without bound, while running
// jobs are never evicted.
func TestJobRegistryBounded(t *testing.T) {
	srv, err := New(Config{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One long-lived "running" job that must survive every eviction.
	runningID, _, err := srv.newJob(context.Background(), "running", false, traceCtx{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxRetainedJobs+200; i++ {
		id, _, err := srv.newJob(context.Background(), "q", false, traceCtx{})
		if err != nil {
			t.Fatal(err)
		}
		srv.finish(id, nil)
	}
	if n := len(srv.Jobs()); n > maxRetainedJobs {
		t.Fatalf("registry holds %d jobs, cap is %d", n, maxRetainedJobs)
	}
	if info, ok := srv.Job(runningID); !ok || info.State != JobRunning {
		t.Fatalf("running job was evicted: %+v ok=%v", info, ok)
	}
}

// TestOversizedBodyRejectedWith413 pins the body-limit fix: a body past
// maxQueryBody must be rejected with 413, not silently truncated at the
// limit and executed (or mis-parsed) as a prefix of what the client
// sent.
func TestOversizedBodyRejectedWith413(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1})

	big := strings.Repeat("x", maxQueryBody+1)
	resp, err := http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body returned %d, want 413", resp.StatusCode)
	}
	var ev ErrorEvent
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ev.Error, "exceeds") {
		t.Fatalf("413 error message %q does not explain the limit", ev.Error)
	}

	// An at-limit body must still be accepted (it fails later as a parse
	// error, proving it reached the parser rather than the size check).
	atLimit := "SIMULATE availability " + strings.Repeat("x", maxQueryBody-22)
	resp2, err := http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(atLimit))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("at-limit body returned %d, want 200 (stream with an error event)", resp2.StatusCode)
	}
}

// TestJobsNewestFirstWithinOneTick pins the listing-order fix under a
// frozen clock: jobs created at the identical Created timestamp must
// still list newest-first. The old sort.SliceStable on Created kept
// same-tick jobs in forward (oldest-first) order.
func TestJobsNewestFirstWithinOneTick(t *testing.T) {
	srv, err := New(Config{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	frozen := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	srv.now = func() time.Time { return frozen }

	var ids []string
	for i := 0; i < 5; i++ {
		id, _, err := srv.newJob(context.Background(), "q", false, traceCtx{})
		if err != nil {
			t.Fatal(err)
		}
		srv.finish(id, nil)
		ids = append(ids, id)
	}
	jobs := srv.Jobs()
	if len(jobs) != len(ids) {
		t.Fatalf("listed %d jobs, want %d", len(jobs), len(ids))
	}
	for i, j := range jobs {
		want := ids[len(ids)-1-i]
		if j.ID != want {
			t.Fatalf("position %d lists %s, want %s (same-tick jobs must be newest-first)", i, j.ID, want)
		}
		if !j.Created.Equal(frozen) {
			t.Fatalf("job %s Created = %v, clock not frozen", j.ID, j.Created)
		}
	}
}

// TestPoolBounds checks the gate semantics directly.
func TestPoolBounds(t *testing.T) {
	p := NewPool(2)
	ctx := context.Background()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	timeout, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := p.Acquire(timeout); err == nil {
		t.Fatal("third acquire should block until a slot frees")
	}
	p.Release()
	if err := p.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	p.Release()
	p.Release()
}
