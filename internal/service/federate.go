package service

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// federator is the coordinator's fleet-metrics scraper: a background
// loop that GETs every worker's /metrics on the history interval,
// parses the exposition text and ingests it into the server's History
// labelled with the worker's URL as `instance`. The coordinator's own
// sampler feeds the same History (instance="coordinator"), so
// GET /v1/metrics/fleet renders one merged, per-instance view of the
// whole fleet — and GET /v1/metrics/history range-queries it.
//
// Each round also synthesizes wt_fleet_member_up, a per-instance gauge
// that is 1 when the member's scrape succeeded and 0 when it failed.
// That makes "a worker is gone" an ordinary series in history — the
// worker_down alert rule is a plain threshold over it, and it flips
// within one round of a kill because a dead worker fails the scrape
// immediately (connection refused), no health-monitor hysteresis in
// the path.
type federator struct {
	peers    []string
	hist     *obs.History
	client   *http.Client
	interval time.Duration

	mu      sync.Mutex
	down    map[string]string // peer URL -> last scrape error, "" when up
	partial bool              // any scrape failed in the last completed round

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// maxScrapeBody bounds one worker /metrics response (a full registry is
// a few tens of KB; 8 MB is paranoia, not a limit anyone should hit).
const maxScrapeBody = 8 << 20

// startFederator launches the scrape loop. One round runs immediately
// so the fleet view (and the member-up series) exists as soon as the
// coordinator is up.
func startFederator(hist *obs.History, peers []string, interval time.Duration) *federator {
	if interval <= 0 {
		interval = obs.DefaultSampleInterval
	}
	f := &federator{
		peers:    peers,
		hist:     hist,
		client:   &http.Client{Timeout: 2 * time.Second},
		interval: interval,
		down:     make(map[string]string, len(peers)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(f.done)
		ticker := time.NewTicker(f.interval)
		defer ticker.Stop()
		f.round()
		for {
			select {
			case <-f.stop:
				return
			case <-ticker.C:
				f.round()
			}
		}
	}()
	return f
}

// Stop ends the scrape loop (idempotent) and waits for it.
func (f *federator) Stop() {
	if f == nil {
		return
	}
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// Partial reports whether the last completed round failed to scrape at
// least one member — the fleet view is being served, but it is missing
// somebody. Surfaced as the X-WT-Partial header on /v1/metrics/fleet.
func (f *federator) Partial() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partial
}

// Down returns the members whose last scrape failed, with the error.
func (f *federator) Down() map[string]string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]string)
	for u, e := range f.down {
		if e != "" {
			out[u] = e
		}
	}
	return out
}

// round scrapes every member once, concurrently, then ingests the
// synthesized member-up gauge for the round. A failed scrape ingests
// nothing for that member — its last good samples age out of the rings
// naturally — but always lands a member_up=0 sample, so absence is
// itself observable.
func (f *federator) round() {
	type result struct {
		peer string
		fams []obs.FamilySnapshot
		err  error
	}
	results := make([]result, len(f.peers))
	var wg sync.WaitGroup
	for i, peer := range f.peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			fams, err := f.scrape(peer)
			results[i] = result{peer: peer, fams: fams, err: err}
		}(i, peer)
	}
	wg.Wait()

	now := time.Now()
	up := obs.FamilySnapshot{
		Name: "wt_fleet_member_up",
		Help: "1 when the coordinator's last /metrics scrape of the fleet member succeeded, 0 when it failed.",
		Type: "gauge",
	}
	anyDown := false
	f.mu.Lock()
	for _, res := range results {
		v := 1.0
		if res.err != nil {
			v, anyDown = 0, true
			f.down[res.peer] = res.err.Error()
		} else {
			f.down[res.peer] = ""
		}
		up.Samples = append(up.Samples, obs.SeriesSample{
			Labels: [][2]string{{"instance", res.peer}},
			Value:  v,
		})
	}
	f.partial = anyDown
	f.mu.Unlock()

	for _, res := range results {
		if res.err == nil {
			f.hist.Ingest(res.fams, res.peer, now)
		}
	}
	f.hist.Ingest([]obs.FamilySnapshot{up}, "", now)
}

// scrape fetches and parses one member's exposition.
func (f *federator) scrape(peer string) ([]obs.FamilySnapshot, error) {
	resp, err := f.client.Get(strings.TrimRight(peer, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("metrics returned HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxScrapeBody))
	if err != nil {
		return nil, err
	}
	return obs.ParseExposition(body)
}
