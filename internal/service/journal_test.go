package service

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeJournal builds one job's journal file through the production
// append path and returns its path. end == "" leaves the job incomplete
// (the state a crash leaves behind).
func writeJournal(t *testing.T, dir, jobID string, points int, end string) string {
	t.Helper()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jj, err := j.Begin(jobID, smallQuery, 2, time.Unix(1700000000, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < points; i++ {
		line, _ := json.Marshal(PointEvent{Type: "point", Done: i + 1, Total: points, Index: i})
		if err := jj.Point(i, "key-"+jobID, line); err != nil {
			t.Fatal(err)
		}
	}
	if end != "" {
		line, _ := json.Marshal(ResultEvent{Type: "result", ID: jobID})
		if err := jj.End(end, "", line); err != nil {
			t.Fatal(err)
		}
	} else {
		jj.abandon()
	}
	return j.path(jobID)
}

// TestJournalRoundTrip: begin + points + end written through the
// production path recover exactly, and an incomplete journal (no end
// record) comes back with empty status — the resume trigger.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, "job-1", 3, "done")
	writeJournal(t, dir, "job-2", 2, "")

	j, _ := OpenJournal(dir)
	jobs, warns, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("clean journals produced warnings: %v", warns)
	}
	if len(jobs) != 2 || jobs[0].ID != "job-1" || jobs[1].ID != "job-2" {
		t.Fatalf("recovered %+v", jobs)
	}
	done, crashed := jobs[0], jobs[1]
	if done.Status != "done" || len(done.Points) != 3 || done.Query != smallQuery || done.Trials != 2 {
		t.Fatalf("completed job recovered as %+v", done)
	}
	if len(done.EndLine) == 0 {
		t.Fatal("completed job lost its terminal line")
	}
	if crashed.Status != "" || len(crashed.Points) != 2 {
		t.Fatalf("crashed job recovered as %+v", crashed)
	}
	var ev PointEvent
	if err := json.Unmarshal(crashed.Points[1].Line, &ev); err != nil || ev.Done != 2 {
		t.Fatalf("point line did not survive verbatim: %s (%v)", crashed.Points[1].Line, err)
	}
	if j.MaxSeq() != 2 {
		t.Fatalf("MaxSeq = %d, want 2", j.MaxSeq())
	}
}

// TestJournalTruncatedTail: a torn final record (crash mid-append) is
// truncated away with a warning; the committed prefix survives and the
// file is left at a clean boundary a Reopen can append to.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, "job-1", 3, "")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: cut the file mid-payload.
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	j, _ := OpenJournal(dir)
	jobs, warns, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || len(jobs[0].Points) != 2 || jobs[0].Status != "" {
		t.Fatalf("recovered %+v", jobs)
	}
	if len(warns) == 0 || !strings.Contains(warns[0], "truncating") {
		t.Fatalf("torn tail not reported: %v", warns)
	}
	// The truncated file must replay the same prefix with no warnings —
	// the repair is durable, not re-diagnosed every restart.
	jobs, warns, err = j.Recover()
	if err != nil || len(warns) != 0 || len(jobs[0].Points) != 2 {
		t.Fatalf("after repair: jobs=%+v warns=%v err=%v", jobs, warns, err)
	}
	// And an appended record lands on the clean boundary.
	jj, err := j.Reopen("job-1")
	if err != nil {
		t.Fatal(err)
	}
	line, _ := json.Marshal(PointEvent{Type: "point", Done: 3, Total: 3, Index: 2})
	if err := jj.Point(2, "k", line); err != nil {
		t.Fatal(err)
	}
	jj.Close()
	jobs, warns, _ = j.Recover()
	if len(warns) != 0 || len(jobs[0].Points) != 3 {
		t.Fatalf("append after repair: jobs=%+v warns=%v", jobs, warns)
	}
}

// TestJournalGarbageMidFile: flipped bytes inside an earlier record (bit
// rot, torn sector) fail the CRC; recovery keeps the records before the
// damage, reports it, and never panics.
func TestJournalGarbageMidFile(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, "job-1", 4, "")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte roughly in the middle — inside some point record's
	// payload, past the begin record.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j, _ := OpenJournal(dir)
	jobs, warns, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("recovered %+v", jobs)
	}
	if n := len(jobs[0].Points); n >= 4 || jobs[0].Query != smallQuery {
		t.Fatalf("corruption not detected: %d points recovered, query %q", n, jobs[0].Query)
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, "truncating") {
			found = true
		}
	}
	if !found {
		t.Fatalf("mid-file garbage not reported: %v", warns)
	}
}

// TestJournalOversizeLengthIsCorruption: a garbage length prefix (e.g.
// 0xffffffff) must be treated as corruption, not as an allocation
// request.
func TestJournalOversizeLengthIsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, "job-1", 2, "")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0xffffffff)
	f.Write(hdr[:])
	f.Close()

	j, _ := OpenJournal(dir)
	jobs, warns, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || len(jobs[0].Points) != 2 {
		t.Fatalf("recovered %+v", jobs)
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, "corrupt record length") {
			found = true
		}
	}
	if !found {
		t.Fatalf("oversize length not reported: %v", warns)
	}
}

// TestJournalNewerVersionRefused: a journal stamped with a future format
// version is left alone with an explicit warning — a downgraded daemon
// must refuse what it cannot parse rather than guess (or truncate a
// newer daemon's valid data).
func TestJournalNewerVersionRefused(t *testing.T) {
	dir := t.TempDir()
	payload, _ := json.Marshal(journalRecord{
		Kind: "begin", V: journalVersion + 1, Job: "job-9", Query: smallQuery,
	})
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	path := filepath.Join(dir, "job-9"+journalExt)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(path)

	j, _ := OpenJournal(dir)
	jobs, warns, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("future-version journal parsed anyway: %+v", jobs)
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, "newer than supported") {
			found = true
		}
	}
	if !found {
		t.Fatalf("version refusal not reported: %v", warns)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Fatal("refused journal was modified")
	}
}

// TestJournalHeadlessFileIgnored: a journal with no begin record (or an
// empty file) yields no job and a warning, never a panic.
func TestJournalHeadlessFileIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-3"+journalExt), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, _ := OpenJournal(dir)
	jobs, warns, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 || len(warns) == 0 {
		t.Fatalf("jobs=%+v warns=%v", jobs, warns)
	}
}
