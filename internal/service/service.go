// Package service is the wind tunnel's serving layer: windtunneld. The
// paper pitches the tunnel as a tool designers query repeatedly —
// iterating over designs, SLAs and what-if scenarios — so instead of
// cold one-shot CLI runs, this package keeps a long-running process that
//
//   - accepts WTQL queries over HTTP (POST /v1/query) and streams
//     per-design-point progress and results back as NDJSON,
//   - schedules every query as a job on one shared bounded worker pool
//     (Pool), so concurrent sweeps share a single simulation budget,
//   - answers job listing and cancellation (GET /v1/jobs,
//     DELETE /v1/jobs/{id}), and
//   - reuses completed trial statistics across queries and sessions via
//     the content-addressed trial cache (Cache): any (design point,
//     scenario distributions, seed, trials, engine knobs) tuple already
//     simulated — by any job, ever — is served from memory or disk,
//     byte-identical to a fresh run.
package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/wtql"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// JobInfo is the externally-visible snapshot of one query job.
type JobInfo struct {
	ID       string    `json:"id"`
	Query    string    `json:"query"`
	State    JobState  `json:"state"`
	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished,omitzero"`
	// Done/Total track committed design points of the sweep.
	Done  int `json:"done"`
	Total int `json:"total"`
	// CacheHits counts points served from the trial cache so far.
	CacheHits int    `json:"cache_hits"`
	Error     string `json:"error,omitempty"`
	// Resumed marks a job resurrected from the journal after a daemon
	// restart: its committed prefix was served from the journal, only
	// undelivered points were (re-)executed.
	Resumed bool `json:"resumed,omitempty"`
	// TraceID is the job's distributed trace id (empty with telemetry
	// disabled). GET /v1/jobs/{id}/trace resolves it to the span tree.
	TraceID string `json:"trace_id,omitempty"`
	// Degraded is set when a coordinator exhausted a shard's retry
	// budget (or had no assignable worker) and executed part of the
	// sweep locally. The results are still correct and byte-identical —
	// degraded flags that the fleet didn't deliver them.
	Degraded bool `json:"degraded,omitempty"`
}

// logLine is one NDJSON line of a job's event stream, kept in memory so
// late (or reconnecting) clients can replay the committed prefix
// byte-identically and then tail live.
type logLine struct {
	kind byte // 'j' job, 'p' point, 't' terminal (result or error)
	data []byte
}

// job is the internal job record.
type job struct {
	info   JobInfo
	cancel context.CancelFunc

	// Durable (journaled) jobs additionally carry their full event
	// stream. lines grows append-only under Server.mu and each element
	// is immutable once appended; points counts the 'p' lines (the
	// stream-resume cursor unit). logClosed is set when the terminal
	// line lands. jj is the job's journal, nil when journaling is off —
	// in which case lines stays empty and the job streams inline on its
	// handler goroutine exactly as before journaling existed.
	durable   bool
	lines     []logLine
	points    int
	logClosed bool
	jj        *JobJournal

	// trace/root are the job's distributed-trace identity: set once in
	// newJob (before any worker goroutine exists) and read-only after,
	// so commit paths read them without the registry lock.
	trace traceCtx
	root  *obs.SpanHandle
}

// Config configures a Server.
type Config struct {
	// Trials is the default per-configuration trial count (a query's
	// WITH trials = n overrides it). <= 0 means 5, matching the CLI.
	Trials int
	// PoolSize bounds concurrently-simulating design points across all
	// jobs (<= 0 = GOMAXPROCS).
	PoolSize int
	// CacheEntries bounds the trial cache's memory tier
	// (<= 0 = DefaultCacheEntries).
	CacheEntries int
	// CacheDir, when non-empty, enables the cache's disk tier.
	CacheDir string
	// Store, when non-nil, archives every executed configuration
	// (shared across jobs; results.Store is concurrency-safe).
	Store *results.Store
	// Peers is the fleet member list (worker URLs). Every fleet member —
	// workers and coordinator — is configured with the same list, so the
	// whole fleet agrees on the consistent-hash owner of every cache
	// key. On a worker it enables cache peering; on a coordinator it is
	// the set of workers queries shard across.
	Peers []string
	// Self is this worker's own URL within Peers. Required for a worker
	// with Peers set (it anchors ring ownership and stops a worker from
	// peer-fetching from itself); ignored in coordinator mode.
	Self string
	// Coordinator switches the server into fleet-coordinator mode:
	// POST /v1/query shards the sweep's design points across Peers by
	// consistent-hashing each point's core.CacheKey, streams the merged
	// per-point events in global point order, and assembles the same
	// table a single daemon would have produced, byte for byte. SET
	// statements and MONOTONE (pruned) sweeps fall back to local
	// execution — pruning decisions depend on the whole committed
	// prefix, so they are not shardable.
	Coordinator bool
	// Health tunes the fleet health monitor (zero value = defaults).
	// Used whenever Peers is non-empty: coordinators consult it for
	// shard planning, workers for cache peering.
	Health HealthConfig
	// StreamIdleTimeout is the coordinator's per-stream liveness
	// deadline: a worker stream delivering no NDJSON event for this
	// long is failed over (<= 0 = 2m).
	StreamIdleTimeout time.Duration
	// MaxShardRetries bounds how many workers a shard may fail over
	// across before its remainder degrades to coordinator-local
	// execution (<= 0 = 3).
	MaxShardRetries int
	// Chaos, when non-nil, wraps the HTTP handler with the fault
	// injector (the windtunneld -chaos flag).
	Chaos *FaultInjector
	// NoTelemetry disables the observability layer (metrics registry,
	// Prometheus exposition, distributed tracing, telemetry history,
	// fleet metric federation and alerting). Telemetry is on by default
	// because it is free on the serving contract: tables and NDJSON
	// streams are byte-identical either way.
	NoTelemetry bool
	// HistoryInterval is the telemetry-history sampling period: how
	// often the registry is snapshotted into the in-process time-series
	// store, how often a coordinator scrapes its workers' /metrics, and
	// how often alert rules are evaluated (<= 0 = 2s).
	HistoryInterval time.Duration
	// HistoryDepth bounds each history series' ring buffer
	// (<= 0 = obs.DefaultHistoryDepth: 360 samples, 12 minutes at the
	// default interval).
	HistoryDepth int
	// AlertRules replaces the default alert rule set when non-nil (the
	// windtunneld -alerts flag loads a rules file merged over the
	// defaults via LoadAlertRules). nil means DefaultAlertRules.
	AlertRules []AlertRule
	// JournalDir, when non-empty, enables the durable job layer: every
	// client-facing query is write-ahead journaled (query, one fsync'd
	// record per committed point with its cache key, terminal record),
	// runs detached from its client connection, and is resumable via
	// GET /v1/jobs/{id}/stream?from=N. After a crash, Recover replays
	// the directory and resumes incomplete jobs. Empty disables
	// journaling entirely: queries stream inline and die with their
	// client connection, byte-identical to the pre-journal daemon.
	JournalDir string
}

// Server owns the shared pool, the trial cache and the job registry. Its
// HTTP interface is exposed via Handler.
type Server struct {
	cfg     Config
	pool    *Pool
	cache   *Cache
	store   *results.Store
	fleet   *fleet   // non-nil in coordinator mode
	health  *Health  // non-nil whenever Peers is configured
	journal *Journal // non-nil when Config.JournalDir is set
	chaos   *FaultInjector
	tel     *telemetry   // always non-nil; its registry is nil with NoTelemetry
	history *obs.History // telemetry history store, nil with NoTelemetry
	sampler *obs.Sampler // samples own registry into history
	fed     *federator   // coordinator-only fleet /metrics scraper
	alerts  *alertEngine // rule evaluation over history
	started time.Time
	now     func() time.Time
	// pointGate, when set (tests only), is called before each durable
	// point commit — the hook crash tests use to freeze a job at an
	// exact committed-point count before simulating kill -9.
	pointGate func(index int)

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on any job-log append; streamers wait on it
	jobs     map[string]*job
	order    []string // insertion order, for stable listings
	nextID   int
	draining bool
}

// New builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 5
	}
	cache, err := NewCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		pool:    NewPool(cfg.PoolSize),
		cache:   cache,
		store:   cfg.Store,
		started: time.Now(),
		now:     time.Now,
		jobs:    make(map[string]*job),
	}
	s.cond = sync.NewCond(&s.mu)
	worker := "local"
	switch {
	case cfg.Coordinator:
		worker = "coordinator"
	case cfg.Self != "":
		worker = cfg.Self
	}
	s.tel = newTelemetry(worker, !cfg.NoTelemetry)
	s.pool.instrument(
		s.tel.reg.Histogram("wt_pool_wait_seconds",
			"Time a design point waited for a free pool slot (contended acquires only).",
			obs.DurationBuckets),
		s.tel.reg.Gauge("wt_pool_queue_depth",
			"Design points currently waiting for a pool slot."))
	if cfg.JournalDir != "" {
		s.journal, err = OpenJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.journal.instrument(s.tel.journalAppends, s.tel.journalFsync)
		// Continue job numbering past every journaled job so a restarted
		// daemon never reuses a journaled id.
		s.nextID = s.journal.MaxSeq()
	}
	switch {
	case cfg.Coordinator:
		if len(cfg.Peers) == 0 {
			return nil, fmt.Errorf("service: coordinator mode needs at least one worker in Peers")
		}
		s.health = NewHealth(cfg.Peers, cfg.Health)
		s.health.Start()
		s.fleet = newFleet(cfg.Peers, s.health, cfg.StreamIdleTimeout, cfg.MaxShardRetries)
	case len(cfg.Peers) > 0:
		if cfg.Self == "" {
			return nil, fmt.Errorf("service: cache peering needs Self, this worker's URL within Peers")
		}
		found := false
		var others []string
		for _, p := range cfg.Peers {
			if p == cfg.Self {
				found = true
			} else {
				others = append(others, p)
			}
		}
		if !found {
			return nil, fmt.Errorf("service: Self %q is not in Peers %v", cfg.Self, cfg.Peers)
		}
		// A worker health-checks the peers it may fetch from (everyone
		// but itself) so a down peer is skipped immediately on a cache
		// miss instead of eating a connect timeout per key.
		s.health = NewHealth(others, cfg.Health)
		s.health.Start()
		cache.EnablePeering(cfg.Peers, cfg.Self, nil)
		cache.SetHealth(s.health)
	}
	s.chaos = cfg.Chaos
	s.tel.bind(s)
	if s.tel.reg != nil {
		// The retention layer: sample our own registry into history on
		// the interval, labelled the same way our spans are; on a
		// coordinator additionally scrape every worker's /metrics into
		// the same store, and evaluate alert rules over the result.
		s.history = obs.NewHistory(cfg.HistoryDepth)
		s.sampler = obs.StartSampler(s.history, s.tel.reg, worker, cfg.HistoryInterval)
		if cfg.Coordinator {
			s.fed = startFederator(s.history, cfg.Peers, cfg.HistoryInterval)
		}
		rules := cfg.AlertRules
		if rules == nil {
			rules = DefaultAlertRules()
		}
		s.alerts = startAlertEngine(s.history, rules, cfg.HistoryInterval)
	}
	return s, nil
}

// Close stops the server's background work (the health monitor's probe
// loop, the history sampler, the fleet federator and the alert engine).
// It does not wait for running jobs — that is BeginDrain plus
// http.Server.Shutdown's business.
func (s *Server) Close() {
	if s.health != nil {
		s.health.Stop()
	}
	s.sampler.Stop()
	s.fed.Stop()
	s.alerts.Stop()
}

// Health exposes the fleet health monitor (nil without Peers).
func (s *Server) Health() *Health { return s.health }

// markDegraded flags a job as partially coordinator-served.
func (s *Server) markDegraded(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		if !j.info.Degraded {
			s.tel.degradedJobs.Inc()
		}
		j.info.Degraded = true
	}
}

// Cache exposes the trial cache (for stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// Pool exposes the shared worker pool.
func (s *Server) Pool() *Pool { return s.pool }

// BeginDrain stops admission: subsequent queries are rejected with 503
// while already-running jobs stream to completion (http.Server.Shutdown
// provides the actual wait).
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// CancelAll force-cancels every running job (used when the drain window
// expires).
func (s *Server) CancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.info.State == JobRunning {
			j.cancel()
		}
	}
}

// WaitJobs blocks until every running job has reached a terminal state
// or ctx expires, reporting whether the registry drained. Durable jobs
// run detached from their client connections, so http.Server.Shutdown
// (which only waits for open connections) no longer implies the work is
// done — the drain path must wait on the jobs themselves.
func (s *Server) WaitJobs(ctx context.Context) bool {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		running := 0
		for _, j := range s.jobs {
			if j.info.State == JobRunning {
				running++
			}
		}
		s.mu.Unlock()
		if running == 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-tick.C:
		}
	}
}

// maxRetainedJobs bounds the job registry: finished jobs beyond this
// count are evicted oldest-first, so a long-running daemon's memory
// does not grow with total queries served. Running jobs are never
// evicted.
const maxRetainedJobs = 1024

// newJob registers a running job and returns its id plus a context the
// sweep must run under. durable jobs keep a replayable stream log (see
// durable.go); inline jobs stream on their handler goroutine and record
// nothing. tr is the job's position in a distributed trace: zero for a
// locally-originated job (a fresh trace id is minted), carrying a parent
// span when a remote coordinator propagated one via X-WT-Trace.
func (s *Server) newJob(parent context.Context, query string, durable bool, tr traceCtx) (string, context.Context, error) {
	ctx, cancel := context.WithCancel(parent)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		cancel()
		return "", nil, fmt.Errorf("service: draining, not accepting new queries")
	}
	s.nextID++
	id := "job-" + strconv.Itoa(s.nextID)
	j := &job{
		info: JobInfo{
			ID: id, Query: query, State: JobRunning, Created: s.now(),
		},
		cancel:  cancel,
		durable: durable,
	}
	if s.tel != nil && s.tel.tracer != nil {
		rootName := "job"
		if tr.id == "" {
			tr.id = s.tel.tracer.NewTraceID()
		} else if tr.parent != "" {
			// A coordinator opened this trace; our root is the worker-side
			// subtree under the coordinator's shard span.
			rootName = "worker"
		}
		j.trace = tr
		j.root = s.tel.startSpan(tr, tr.parent, rootName).Attr("job", id)
		j.info.TraceID = tr.id
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.evictFinishedLocked()
	return id, ctx, nil
}

// evictFinishedLocked trims the registry to maxRetainedJobs by dropping
// the oldest finished jobs. Caller holds s.mu.
func (s *Server) evictFinishedLocked() {
	for len(s.order) > maxRetainedJobs {
		evicted := false
		for i, id := range s.order {
			if s.jobs[id].info.State != JobRunning {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				if s.journal != nil {
					s.journal.Remove(id)
				}
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still running
		}
	}
}

// progress updates a job's per-point counters. It is the single choke
// point every commit path passes through — inline, durable and fleet
// merge alike — which makes it the one true home of the committed-points
// counter.
func (s *Server) progress(id string, done, total int, fromCache bool) {
	s.tel.pointsCommitted.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		j.info.Done, j.info.Total = done, total
		if fromCache {
			j.info.CacheHits++
		}
	}
}

// finish records a job's terminal state.
func (s *Server) finish(id string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.cancel() // release the context either way
	j.info.Finished = s.now()
	switch {
	case err == nil:
		j.info.State = JobDone
		s.tel.jobsDone.Inc()
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.info.State = JobCancelled
		j.info.Error = err.Error()
		s.tel.jobsCancelled.Inc()
	default:
		j.info.State = JobFailed
		j.info.Error = err.Error()
		s.tel.jobsFailed.Inc()
	}
	j.root.Attr("state", string(j.info.State)).End()
}

// Cancel cancels a running job. It reports whether the id was known.
func (s *Server) Cancel(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	if j.info.State == JobRunning {
		j.cancel()
	}
	return j.info, true
}

// Job returns a job snapshot.
func (s *Server) Job(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return j.info, true
}

// Jobs returns all job snapshots, newest first. s.order is admission
// order, so newest-first is exactly its reverse — sorting on Created
// was not only wasted work but wrong: SliceStable kept same-tick jobs
// (Created values are wall-clock, equal within a tick) in forward
// order, listing the oldest of a burst first.
func (s *Server) Jobs() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		out = append(out, s.jobs[s.order[i]].info)
	}
	return out
}

// engine builds a fresh WTQL engine wired to the shared pool, cache and
// archive. Each query gets its own engine (SET statements are
// per-request), but all engines share the server-wide resources.
func (s *Server) engine(progress func(done, total int, out core.PointOutcome)) *wtql.Engine {
	return &wtql.Engine{
		Trials: s.cfg.Trials,
		// One gate slot ~ one simulating design point: within a point,
		// trials run sequentially so the pool is the only parallelism
		// knob and the daemon never oversubscribes the host.
		TrialWorkers: 1,
		Workers:      s.pool.Cap(),
		Store:        s.store,
		Cache:        s.cache,
		Gate:         s.pool,
		Progress:     progress,
	}
}

// execute runs an admitted job's query to completion and records its
// terminal state. points, when non-nil, restricts execution to those
// global design-point indices — the sharded-fleet worker path.
func (s *Server) execute(ctx context.Context, id, query string, trials int, points []int,
	onPoint func(done, total int, out core.PointOutcome)) (*wtql.ResultSet, error) {
	trace, root := s.jobTrace(id)
	eng := s.engine(func(done, total int, out core.PointOutcome) {
		s.progress(id, done, total, out.FromCache)
		s.tel.observePoint(trace, root, out)
		if onPoint != nil {
			onPoint(done, total, out)
		}
	})
	if trials > 0 {
		eng.Trials = trials
	}
	eng.Subset = points
	rs, err := eng.ExecuteContext(ctx, query)
	s.finish(id, err)
	return rs, err
}

// RunQuery executes one WTQL query as a registered job, invoking onPoint
// (when non-nil) per committed design point. It is the transport-neutral
// core of the HTTP handler and the unit tests' entry point. In
// coordinator mode shardable queries fan out across the fleet exactly
// as the HTTP path does.
func (s *Server) RunQuery(ctx context.Context, query string, trials int,
	onPoint func(done, total int, out core.PointOutcome)) (string, *wtql.ResultSet, error) {
	id, jctx, err := s.newJob(ctx, query, false, traceCtx{})
	if err != nil {
		return "", nil, err
	}
	if s.fleet != nil {
		rs, err, handled := s.executeFleet(jctx, id, query, trials, nil,
			func(ev PointEvent, _ string, out core.PointOutcome) {
				if onPoint != nil {
					onPoint(ev.Done, ev.Total, out)
				}
			})
		if handled {
			return id, rs, err
		}
	}
	rs, err := s.execute(jctx, id, query, trials, nil, onPoint)
	return id, rs, err
}
