package service

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over fleet member URLs. Every member —
// workers and coordinator alike — builds the ring from the same -peers
// list, so they agree on which worker owns a key: the coordinator shards
// a sweep's design points (hashed on core.CacheKey) to their owners, and
// a worker that misses locally knows which peer to ask before
// simulating. Virtual nodes smooth the key distribution; adding or
// removing a worker moves only ~1/N of the keyspace, which is exactly
// when the cache-peering tier earns its keep.
type Ring struct {
	points ringPoints
}

type ringPoint struct {
	hash uint64
	node string
}

type ringPoints []ringPoint

func (p ringPoints) Len() int      { return len(p) }
func (p ringPoints) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p ringPoints) Less(i, j int) bool {
	if p[i].hash != p[j].hash {
		return p[i].hash < p[j].hash
	}
	// Ties (astronomically rare with 64-bit FNV) break on the node name
	// so construction order never matters.
	return p[i].node < p[j].node
}

// ringReplicas is the virtual-node count per member: enough that a
// 2–3 worker fleet shards a sweep evenly, cheap enough to rebuild on
// every membership change.
const ringReplicas = 64

// NewRing builds a ring over the given member URLs (duplicates are
// collapsed). An empty list yields an empty ring whose lookups return
// ok=false.
func NewRing(nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(n + "#" + strconv.Itoa(i)),
				node: n,
			})
		}
	}
	sort.Sort(r.points)
	return r
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Nodes returns the distinct members on the ring.
func (r *Ring) Nodes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.points {
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key: the first virtual node clockwise
// from the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	return r.OwnerExcluding(key, "")
}

// OwnerExcluding returns the first member clockwise from the key's hash
// whose node differs from exclude — the peer a worker asks on a local
// miss. When the worker itself owns the key, the successor is the
// natural fallback: in a re-sharded or restarted fleet it is the member
// most likely to hold the key's previous copy. ok is false when no such
// member exists (empty ring, or exclude is the only member).
func (r *Ring) OwnerExcluding(key, exclude string) (string, bool) {
	return r.OwnerSkipping(key, func(node string) bool { return node == exclude })
}

// OwnerSkipping returns the first member clockwise from the key's hash
// for which skip returns false — the failover owner of a key whose
// preferred members are down, draining or already tried. Walking the
// ring (instead of picking an arbitrary survivor) keeps reassignment
// deterministic and minimal: keys skip to their successor, exactly the
// member the cache-peering tier predicts holds the next copy. ok is
// false when every member is skipped.
func (r *Ring) OwnerSkipping(key string, skip func(node string) bool) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !skip(p.node) {
			return p.node, true
		}
	}
	return "", false
}
