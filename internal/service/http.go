package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/wtql"
)

// QueryRequest is the POST /v1/query body (application/json). A
// text/plain body is accepted too and treated as the bare query text.
type QueryRequest struct {
	Query string `json:"query"`
	// Trials overrides the server's default per-configuration trial
	// count (a WITH trials = n clause in the query still wins).
	Trials int `json:"trials,omitempty"`
	// Points, when non-empty, restricts execution to these global
	// design-point indices (strictly ascending) — the shard a fleet
	// coordinator assigns this worker. Streamed point events carry the
	// global index so the coordinator can merge shards back into full
	// point order.
	Points []int `json:"points,omitempty"`
	// From is the client's resume cursor on a re-submitted query: the
	// number of point events it already received from a previous
	// (crashed) server, which this server must not replay. The sweep
	// still executes in full — completed points are trial-cache (or
	// journal) hits — so the final table is byte-identical; only the
	// stream starts at point From+1. This is the coordinator-takeover
	// path: wtql fails over to the next -peers coordinator with
	// from=<received>.
	From int `json:"from,omitempty"`
}

// Stream event types, one JSON object per NDJSON line:
//
//	{"type":"job", ...JobEvent}     first line: the job was admitted
//	{"type":"point", ...PointEvent} one per committed design point
//	{"type":"result", ...ResultEvent} last line on success
//	{"type":"error","error":"..."}  last line on failure
type JobEvent struct {
	Type string `json:"type"`
	ID   string `json:"id"`
}

// PointEvent reports one committed design point. Index is the point's
// global position in the sweep's point order (== Done-1 on a full
// sweep, the coordinator's merge key on a sharded one); Trials and
// Events carry enough of the point's result over the wire for a
// coordinator to re-assemble the exact single-daemon table. Worker is
// set only on coordinator-merged streams: the URL of the worker that
// served the point.
type PointEvent struct {
	Type     string             `json:"type"`
	Done     int                `json:"done"`
	Total    int                `json:"total"`
	Index    int                `json:"index"`
	Config   map[string]string  `json:"config"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	Trials   int                `json:"trials,omitempty"`
	Events   uint64             `json:"events,omitempty"`
	Pruned   bool               `json:"pruned,omitempty"`
	Screened bool               `json:"screened,omitempty"`
	Cached   bool               `json:"cached,omitempty"`
	AllMet   bool               `json:"all_met"`
	Worker   string             `json:"worker,omitempty"`
	// Degraded marks a point the coordinator executed locally after
	// exhausting the owning shard's retry budget.
	Degraded bool `json:"degraded,omitempty"`
}

// ResultEvent carries the final result set. Table is the same aligned
// text table the CLI renders, so a client can print byte-identical
// output to a local run.
type ResultEvent struct {
	Type      string            `json:"type"`
	ID        string            `json:"id"`
	Columns   []string          `json:"columns"`
	Rows      []wtql.Row        `json:"rows"`
	Executed  int               `json:"executed"`
	Pruned    int               `json:"pruned"`
	Screened  int               `json:"screened"`
	CacheHits int               `json:"cache_hits"`
	Settings  map[string]string `json:"settings,omitempty"`
	Table     string            `json:"table"`
	// Degraded reports whether any part of the sweep ran
	// coordinator-local after shard failover was exhausted. Always
	// serialized (not omitempty) so clients and smoke tests can assert
	// on it either way.
	Degraded bool `json:"degraded"`
}

// ErrorEvent terminates a stream on failure.
type ErrorEvent struct {
	Type  string `json:"type"`
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP interface. Serving routes are
// registered through route() for per-route metrics; the observability
// endpoints themselves (/v1/healthz, /v1/stats, /metrics, the
// federated/history views and /v1/alerts) stay un-instrumented so
// health probes and scrapes do not feed back into the request metrics
// they read.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "POST /v1/query", s.handleQuery)
	s.route(mux, "GET /v1/jobs", s.handleJobs)
	s.route(mux, "GET /v1/jobs/{id}", s.handleJob)
	s.route(mux, "GET /v1/jobs/{id}/stream", s.handleStream)
	s.route(mux, "GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.route(mux, "DELETE /v1/jobs/{id}", s.handleCancel)
	s.route(mux, "GET /v1/cache", s.handleCache)
	s.route(mux, "GET /v1/cache/{key}", s.handleCacheEntry)
	s.route(mux, "GET /v1/fleet", s.handleFleet)
	s.route(mux, "GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/metrics/fleet", s.handleFleetMetrics)
	mux.HandleFunc("GET /v1/metrics/history", s.handleMetricsHistory)
	mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	if s.chaos != nil {
		return s.chaos.Wrap(mux)
	}
	return mux
}

// handleHealthz answers liveness probes. A draining server still
// answers 200 — it is alive and finishing work — but says so, and the
// fleet health monitor maps "draining" to suspect: no new shards, no
// hard failure. The body also carries the build identity so an operator
// (or wtload) can tell which binary answered during a rolling upgrade,
// and the firing-alert count so readiness tooling can see SLO state
// without a second request. Status stays "ok"/"draining" regardless —
// the fleet health monitor treats any other status as a probe failure,
// and a firing alert must not cascade into shard failover.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		Status       string `json:"status"`
		AlertsFiring int    `json:"alerts_firing"`
		buildIdentity
	}{status, s.alerts.FiringCount(), s.buildIdentity()})
}

// handleFleet exposes fleet membership and per-member health state.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	mode := "single"
	switch {
	case s.cfg.Coordinator:
		mode = "coordinator"
	case len(s.cfg.Peers) > 0:
		mode = "worker"
	}
	var members []MemberHealth
	if s.health != nil {
		members = s.health.Snapshot()
	}
	if members == nil {
		members = []MemberHealth{}
	}
	writeJSON(w, http.StatusOK, struct {
		Mode    string         `json:"mode"`
		Self    string         `json:"self,omitempty"`
		Members []MemberHealth `json:"members"`
	}{mode, s.cfg.Self, members})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := decodeQueryRequest(r)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errBodyTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, ErrorEvent{Type: "error", Error: err.Error()})
		return
	}

	// Durable mode: client-facing queries run detached from this
	// connection — journaled, resumable, crash-recoverable — and the
	// handler becomes a stream follower. Fleet-shard requests
	// (req.Points != nil) stay on the inline path below: the
	// coordinator owns client-facing durability, and a worker
	// resurrecting shards of a job the coordinator also resurrects
	// would double the work.
	if s.journal != nil && req.Points == nil {
		id, err := s.submit(req, parseTraceHeader(r))
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, ErrorEvent{Type: "error", Error: err.Error()})
			return
		}
		s.streamJob(w, r, id, req.From)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	id, jctx, err := s.newJob(r.Context(), req.Query, false, parseTraceHeader(r))
	if err != nil {
		// Draining: refuse before anything streams.
		writeJSON(w, http.StatusServiceUnavailable, ErrorEvent{Type: "error", Error: err.Error()})
		return
	}
	emit(JobEvent{Type: "job", ID: id})

	// The stream writes below all happen on this handler goroutine: the
	// engine's Progress callback is invoked from the sweep's commit path,
	// which runs inside ExecuteContext; the coordinator's merge loop
	// likewise runs inside executeFleet.
	var (
		rs      *wtql.ResultSet
		handled bool
	)
	if s.fleet != nil {
		rs, err, handled = s.executeFleet(jctx, id, req.Query, req.Trials, nil,
			func(ev PointEvent, _ string, _ core.PointOutcome) { emit(ev) })
	}
	if !handled {
		rs, err = s.execute(jctx, id, req.Query, req.Trials, req.Points,
			func(done, total int, out core.PointOutcome) {
				emit(pointEvent(done, total, out))
			})
	}
	if err != nil {
		emit(ErrorEvent{Type: "error", Error: err.Error()})
		return
	}
	info, _ := s.Job(id)
	emit(ResultEvent{
		Type: "result", ID: id,
		Columns:  rs.Columns,
		Rows:     rowsOrEmpty(rs.Rows),
		Executed: rs.Executed, Pruned: rs.Pruned, Screened: rs.Screened,
		CacheHits: rs.CacheHits,
		Settings:  rs.Settings,
		Table:     rs.Render(),
		Degraded:  info.Degraded,
	})
}

// handleStream resumes (or re-follows) a durable job's NDJSON stream:
// GET /v1/jobs/{id}/stream?from=N replays the committed prefix from
// point event N+1 byte-identically, then tails live until the terminal
// line. from=0 (or omitted) replays the whole stream. Jobs that ran
// inline (journaling disabled, or a fleet shard) have no recorded
// stream and answer 404 — the client's cue to re-POST the query.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, ErrorEvent{Type: "error", Error: "bad from: want a non-negative integer"})
			return
		}
		from = n
	}
	s.streamJob(w, r, r.PathValue("id"), from)
}

// streamJob follows a durable job, writing each line + newline and
// flushing — the same bytes the inline path's json.Encoder produces.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, id string, from int) {
	if from > 0 {
		s.tel.streamResumes.Inc()
	}
	flusher, _ := w.(http.Flusher)
	wrote := false
	err := s.Follow(r.Context(), id, from, func(line []byte) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			wrote = true
		}
		// One Write per event line (json.Encoder's behavior on the inline
		// path): an abort between an event and its newline would strand a
		// never-flushed partial line, and the chaos cut counter assumes
		// one write == one delivered event.
		if _, err := w.Write(append(line[:len(line):len(line)], '\n')); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil && !wrote {
		// Nothing streamed yet, so a proper status line is still possible.
		if errors.Is(err, ErrUnknownJob) || errors.Is(err, ErrNoStream) {
			writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: err.Error()})
		}
	}
}

func pointEvent(done, total int, out core.PointOutcome) PointEvent {
	ev := PointEvent{
		Type: "point", Done: done, Total: total,
		Index:    out.Index,
		Config:   map[string]string{},
		Pruned:   out.Pruned,
		Screened: out.Screened,
		Cached:   out.FromCache,
		AllMet:   out.AllMet,
	}
	for name, v := range out.Point.Assignments() {
		ev.Config[name] = design.FormatValue(v)
	}
	if out.Result != nil {
		ev.Metrics = out.Result.Metrics
		ev.Trials = out.Result.Trials
		ev.Events = out.Result.EventsTotal
	}
	return ev
}

func rowsOrEmpty(rows []wtql.Row) []wtql.Row {
	if rows == nil {
		return []wtql.Row{}
	}
	return rows
}

// maxQueryBody bounds a POST /v1/query body. Oversized bodies are
// rejected with 413, not silently truncated: the old io.LimitReader cut
// a too-large JSON body at the limit, which then failed to parse as a
// confusing 400 — or, for a text/plain query, executed a prefix of what
// the client sent.
const maxQueryBody = 1 << 20

var errBodyTooLarge = fmt.Errorf("service: request body exceeds %d bytes", maxQueryBody)

func decodeQueryRequest(r *http.Request) (QueryRequest, error) {
	defer r.Body.Close()
	// Read one byte past the limit so over-limit bodies are detected
	// rather than truncated.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody+1))
	if err != nil {
		return QueryRequest{}, fmt.Errorf("service: reading request: %w", err)
	}
	if len(body) > maxQueryBody {
		return QueryRequest{}, errBodyTooLarge
	}
	var req QueryRequest
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			return QueryRequest{}, fmt.Errorf("service: bad request JSON: %w", err)
		}
	} else {
		req.Query = string(body)
	}
	if strings.TrimSpace(req.Query) == "" {
		return QueryRequest{}, fmt.Errorf("service: empty query")
	}
	return req, nil
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	writeJSON(w, http.StatusOK, struct {
		Stats
		HitRate float64 `json:"hit_rate"`
		PoolCap int     `json:"pool_capacity"`
		PoolUse int     `json:"pool_in_use"`
	}{st, st.HitRate(), s.pool.Cap(), s.pool.InUse()})
}

// handleCacheEntry serves one cached trial result by key — the peering
// endpoint workers fetch from on a local miss. It answers from the
// local memory+disk tiers only (Peek), so mutually-peered workers never
// chain fetches.
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "no such cache entry"})
		return
	}
	res, ok := s.cache.Peek(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "no such cache entry"})
		return
	}
	writeJSON(w, http.StatusOK, recordFrom(res))
}

// validCacheKey accepts exactly the hex SHA-256 fingerprints
// core.CacheKey produces; anything else (in particular path-traversal
// attempts against the disk tier) is a 404.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
