package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/wtql"
)

// QueryRequest is the POST /v1/query body (application/json). A
// text/plain body is accepted too and treated as the bare query text.
type QueryRequest struct {
	Query string `json:"query"`
	// Trials overrides the server's default per-configuration trial
	// count (a WITH trials = n clause in the query still wins).
	Trials int `json:"trials,omitempty"`
}

// Stream event types, one JSON object per NDJSON line:
//
//	{"type":"job", ...JobEvent}     first line: the job was admitted
//	{"type":"point", ...PointEvent} one per committed design point
//	{"type":"result", ...ResultEvent} last line on success
//	{"type":"error","error":"..."}  last line on failure
type JobEvent struct {
	Type string `json:"type"`
	ID   string `json:"id"`
}

// PointEvent reports one committed design point.
type PointEvent struct {
	Type     string             `json:"type"`
	Done     int                `json:"done"`
	Total    int                `json:"total"`
	Config   map[string]string  `json:"config"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	Pruned   bool               `json:"pruned,omitempty"`
	Screened bool               `json:"screened,omitempty"`
	Cached   bool               `json:"cached,omitempty"`
	AllMet   bool               `json:"all_met"`
}

// ResultEvent carries the final result set. Table is the same aligned
// text table the CLI renders, so a client can print byte-identical
// output to a local run.
type ResultEvent struct {
	Type      string            `json:"type"`
	ID        string            `json:"id"`
	Columns   []string          `json:"columns"`
	Rows      []wtql.Row        `json:"rows"`
	Executed  int               `json:"executed"`
	Pruned    int               `json:"pruned"`
	Screened  int               `json:"screened"`
	CacheHits int               `json:"cache_hits"`
	Settings  map[string]string `json:"settings,omitempty"`
	Table     string            `json:"table"`
}

// ErrorEvent terminates a stream on failure.
type ErrorEvent struct {
	Type  string `json:"type"`
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := decodeQueryRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorEvent{Type: "error", Error: err.Error()})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	id, jctx, err := s.newJob(r.Context(), req.Query)
	if err != nil {
		// Draining: refuse before anything streams.
		writeJSON(w, http.StatusServiceUnavailable, ErrorEvent{Type: "error", Error: err.Error()})
		return
	}
	emit(JobEvent{Type: "job", ID: id})

	// The stream writes below all happen on this handler goroutine: the
	// engine's Progress callback is invoked from the sweep's commit path,
	// which runs inside ExecuteContext.
	rs, err := s.execute(jctx, id, req.Query, req.Trials,
		func(done, total int, out core.PointOutcome) {
			emit(pointEvent(done, total, out))
		})
	if err != nil {
		emit(ErrorEvent{Type: "error", Error: err.Error()})
		return
	}
	emit(ResultEvent{
		Type: "result", ID: id,
		Columns:  rs.Columns,
		Rows:     rowsOrEmpty(rs.Rows),
		Executed: rs.Executed, Pruned: rs.Pruned, Screened: rs.Screened,
		CacheHits: rs.CacheHits,
		Settings:  rs.Settings,
		Table:     rs.Render(),
	})
}

func pointEvent(done, total int, out core.PointOutcome) PointEvent {
	ev := PointEvent{
		Type: "point", Done: done, Total: total,
		Config:   map[string]string{},
		Pruned:   out.Pruned,
		Screened: out.Screened,
		Cached:   out.FromCache,
		AllMet:   out.AllMet,
	}
	for name, v := range out.Point.Assignments() {
		ev.Config[name] = design.FormatValue(v)
	}
	if out.Result != nil {
		ev.Metrics = out.Result.Metrics
	}
	return ev
}

func rowsOrEmpty(rows []wtql.Row) []wtql.Row {
	if rows == nil {
		return []wtql.Row{}
	}
	return rows
}

func decodeQueryRequest(r *http.Request) (QueryRequest, error) {
	defer r.Body.Close()
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return QueryRequest{}, fmt.Errorf("service: reading request: %w", err)
	}
	var req QueryRequest
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			return QueryRequest{}, fmt.Errorf("service: bad request JSON: %w", err)
		}
	} else {
		req.Query = string(body)
	}
	if strings.TrimSpace(req.Query) == "" {
		return QueryRequest{}, fmt.Errorf("service: empty query")
	}
	return req, nil
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	writeJSON(w, http.StatusOK, struct {
		Stats
		HitRate float64 `json:"hit_rate"`
		PoolCap int     `json:"pool_capacity"`
		PoolUse int     `json:"pool_in_use"`
	}{st, st.HitRate(), s.pool.Cap(), s.pool.InUse()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
