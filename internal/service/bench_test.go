package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/wtql"
)

// benchQuery is a 3-point sweep; after the first iteration every point
// is a trial-cache hit, so steady-state iterations measure the serving
// path (HTTP + NDJSON + job bookkeeping + cache lookups), not the
// simulator.
const benchQuery = `SIMULATE availability
VARY cluster.nodes IN (5, 6, 7)
WITH users = 20, object_mb = 10, trials = 2, horizon_hours = 200
WHERE sla.availability >= 0.2`

// BenchmarkServiceQueryThroughput measures end-to-end queries/second of
// the daemon with a warm trial cache.
func BenchmarkServiceQueryThroughput(b *testing.B) {
	_, ts := newTestServer(b, Config{PoolSize: 4})
	body := mustJSON(b, QueryRequest{Query: benchQuery})

	post := func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var last []byte
		for sc.Scan() {
			last = append(last[:0], sc.Bytes()...)
		}
		resp.Body.Close()
		var final map[string]any
		if err := json.Unmarshal(last, &final); err != nil || final["type"] != "result" {
			b.Fatalf("stream ended with %s (%v)", last, err)
		}
	}

	post() // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

// BenchmarkTrialCacheHit measures a full WTQL sweep served entirely from
// the memory tier of the trial cache — the cost of a 100%-hit repeat
// query without HTTP in the way.
func BenchmarkTrialCacheHit(b *testing.B) {
	cache, err := NewCache(64, "")
	if err != nil {
		b.Fatal(err)
	}
	mk := func() *wtql.Engine { return &wtql.Engine{Trials: 2, Cache: cache} }
	if _, err := mk().Execute(benchQuery); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := mk().Execute(benchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if rs.CacheHits != rs.Executed {
			b.Fatalf("iteration missed the cache: %d/%d", rs.CacheHits, rs.Executed)
		}
	}
}
