package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/internal/wtql"
)

// benchQuery is a 3-point sweep; after the first iteration every point
// is a trial-cache hit, so steady-state iterations measure the serving
// path (HTTP + NDJSON + job bookkeeping + cache lookups), not the
// simulator.
const benchQuery = `SIMULATE availability
VARY cluster.nodes IN (5, 6, 7)
WITH users = 20, object_mb = 10, trials = 2, horizon_hours = 200
WHERE sla.availability >= 0.2`

// BenchmarkServiceQueryThroughput measures end-to-end queries/second of
// the daemon with a warm trial cache.
func BenchmarkServiceQueryThroughput(b *testing.B) {
	_, ts := newTestServer(b, Config{PoolSize: 4})
	body := mustJSON(b, QueryRequest{Query: benchQuery})

	post := func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var last []byte
		for sc.Scan() {
			last = append(last[:0], sc.Bytes()...)
		}
		resp.Body.Close()
		var final map[string]any
		if err := json.Unmarshal(last, &final); err != nil || final["type"] != "result" {
			b.Fatalf("stream ended with %s (%v)", last, err)
		}
	}

	post() // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

// postBench posts one query and drains the stream, requiring a
// terminal result event.
func postBench(b *testing.B, url string, body []byte) {
	b.Helper()
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last []byte
	for sc.Scan() {
		last = append(last[:0], sc.Bytes()...)
	}
	resp.Body.Close()
	var final map[string]any
	if err := json.Unmarshal(last, &final); err != nil || final["type"] != "result" {
		b.Fatalf("stream ended with %s (%v)", last, err)
	}
}

// BenchmarkFleetQueryThroughput measures end-to-end queries/second of a
// 2-worker fleet behind a coordinator with warm worker caches — the
// serving path plus the shard fan-out, stream merge and reassembly.
func BenchmarkFleetQueryThroughput(b *testing.B) {
	_, cts, _, _ := startFleet(b, 2, false)
	body := mustJSON(b, QueryRequest{Query: benchQuery})

	postBench(b, cts.URL, body) // warm the worker caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBench(b, cts.URL, body)
	}
}

// BenchmarkFleet100ConcurrentClients is the load-harness shape as a
// tracked benchmark: at least 100 concurrent closed-loop clients
// hammering a 2-worker fleet's coordinator with a cache-warm sweep.
// queries/s lands in BENCH_PR.json via the custom metric.
func BenchmarkFleet100ConcurrentClients(b *testing.B) {
	_, cts, _, _ := startFleet(b, 2, false)
	body := mustJSON(b, QueryRequest{Query: benchQuery})
	postBench(b, cts.URL, body) // warm the worker caches

	// RunParallel spawns SetParallelism(p) * GOMAXPROCS goroutines;
	// round up so at least 100 clients run regardless of core count.
	procs := runtime.GOMAXPROCS(0)
	b.SetParallelism((100 + procs - 1) / procs)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			postBench(b, cts.URL, body)
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkJournalAppend measures one durable point commit: marshal,
// frame (length + CRC), one write, one fsync. This is the per-point
// cost journaling adds to a sweep — the number behind EXPERIMENTS.md
// E16's "journal overhead" claim.
func BenchmarkJournalAppend(b *testing.B) {
	j, err := OpenJournal(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	jj, err := j.Begin("job-1", benchQuery, 2, time.Unix(1700000000, 0))
	if err != nil {
		b.Fatal(err)
	}
	defer jj.Close()
	line := []byte(`{"type":"point","done":1,"total":3,"index":0,"config":{"cluster.nodes":"5"},"metrics":{"availability":0.9991},"trials":2,"all_met":true}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := jj.Point(i, "0123456789abcdef0123456789abcdef", line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableQueryThroughput is BenchmarkServiceQueryThroughput
// with journaling on: end-to-end queries/second of the durable path
// (detached execution, WAL append + fsync per point, stream replay from
// the job log) with a warm trial cache.
func BenchmarkDurableQueryThroughput(b *testing.B) {
	_, ts := newTestServer(b, Config{PoolSize: 4, JournalDir: b.TempDir()})
	body := mustJSON(b, QueryRequest{Query: benchQuery})

	postBench(b, ts.URL, body) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBench(b, ts.URL, body)
	}
}

// BenchmarkTrialCacheHit measures a full WTQL sweep served entirely from
// the memory tier of the trial cache — the cost of a 100%-hit repeat
// query without HTTP in the way.
func BenchmarkTrialCacheHit(b *testing.B) {
	cache, err := NewCache(64, "")
	if err != nil {
		b.Fatal(err)
	}
	mk := func() *wtql.Engine { return &wtql.Engine{Trials: 2, Cache: cache} }
	if _, err := mk().Execute(benchQuery); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := mk().Execute(benchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if rs.CacheHits != rs.Executed {
			b.Fatalf("iteration missed the cache: %d/%d", rs.CacheHits, rs.Executed)
		}
	}
}
