package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/obs"
	"repro/internal/wtql"
)

// fleet is the coordinator's side of the sharded wind tunnel: the same
// consistent-hash ring the workers peer over, the health monitor that
// tracks which members are worth talking to, and the HTTP client the
// coordinator fans queries out with. A sweep's design points are hashed
// on core.CacheKey, so a point always lands on the worker that already
// holds its cached trials; the workers' NDJSON streams are merged back
// in global point order, and the in-order commit discipline on each
// worker makes the merged table byte-identical to a single-daemon run.
//
// Fault tolerance: like a fan-array wind tunnel that keeps prescribing
// flow when individual fans degrade, the fleet keeps serving sweeps
// when individual workers die. A failed or stalled stream triggers a
// re-plan of only that shard's undelivered point indices onto the next
// healthy ring owners (exponential backoff + jitter, bounded by a
// per-shard retry budget); outcomes are deterministic per cache key and
// assembled by global index, so the merged table stays byte-identical
// however many times a shard moves. Exhausting the budget degrades to
// coordinator-local execution of the remainder instead of failing the
// job, surfaced as `degraded` in the job's NDJSON events.
type fleet struct {
	ring   *Ring
	client *http.Client
	health *Health

	// maxShardRetries bounds how many workers a shard chain may fail
	// over across before its remainder runs coordinator-local.
	maxShardRetries int
	// backoffBase/backoffMax shape the exponential retry backoff.
	backoffBase, backoffMax time.Duration
	// idleTimeout is the per-stream liveness deadline: a worker stream
	// that delivers no NDJSON event for this long is treated as failed.
	idleTimeout time.Duration
}

const (
	defaultMaxShardRetries = 3
	defaultBackoffBase     = 100 * time.Millisecond
	defaultBackoffMax      = 2 * time.Second
	defaultStreamIdle      = 2 * time.Minute
)

// localWorker labels point events the coordinator executed itself after
// exhausting a shard's retry budget (degraded mode).
const localWorker = "coordinator"

func newFleet(workers []string, health *Health, idleTimeout time.Duration, maxShardRetries int) *fleet {
	if idleTimeout <= 0 {
		idleTimeout = defaultStreamIdle
	}
	if maxShardRetries <= 0 {
		maxShardRetries = defaultMaxShardRetries
	}
	return &fleet{
		ring: NewRing(workers),
		// The transport bounds connection establishment — a worker that
		// hangs in connect() or the TLS handshake must not wedge job
		// start — while the client has no overall timeout: a shard
		// legitimately streams for as long as its slowest simulation.
		// Liveness *during* the stream is the idle deadline's job, and
		// cancellation rides the request context.
		client: &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ResponseHeaderTimeout: 15 * time.Second,
			MaxIdleConnsPerHost:   16,
		}},
		health:          health,
		maxShardRetries: maxShardRetries,
		backoffBase:     defaultBackoffBase,
		backoffMax:      defaultBackoffMax,
		idleTimeout:     idleTimeout,
	}
}

// backoff returns the sleep before a shard's attempt-th reassignment:
// exponential in the attempt with uniform jitter in [d/2, d), so
// simultaneous failovers across shards do not stampede the survivors.
func (f *fleet) backoff(attempt int) time.Duration {
	d := f.backoffBase << (attempt - 1)
	if d > f.backoffMax || d <= 0 {
		d = f.backoffMax
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + jitterRand(half))
}

// jitterRand draws a uniform int in [0, n) for backoff jitter; it is a
// seam so tests never depend on global RNG state.
var jitterRand = func(n int64) int64 { return rand.Int63n(n) }

// shard is one worker's assignment of global point indices plus its
// failover bookkeeping: how many workers the chain has burned through
// and which, so a re-plan never hands indices back to a worker that
// already failed them.
type shard struct {
	worker  string
	points  []int
	attempt int
	tried   map[string]bool

	// span covers the shard stream's lifetime on the coordinator;
	// traceHdr is the X-WT-Trace value propagated to the worker so the
	// worker's job span hangs under this shard span. Both zero with
	// tracing off.
	span     *obs.SpanHandle
	traceHdr string
}

// fleetMsg is one parsed line (or the terminal state) of a shard
// stream.
type fleetMsg struct {
	shard *shard
	ev    *PointEvent
	err   error // set only on the terminal message
	done  bool
}

// executeFleet runs one admitted job by sharding it across the fleet.
// handled=false means the query is not shardable — a SET statement or a
// MONOTONE (pruned) sweep, whose dominance decisions depend on the
// whole committed prefix — and the caller must execute it locally; the
// job stays registered either way. On handled=true the job's terminal
// state has been recorded. resume, when non-empty, is a journaled
// committed prefix (coordinator takeover / restart): those points are
// not re-planned onto workers, only the remainder is. onEvent receives
// each merged point with its cache key, so a durable coordinator can
// journal the event it just committed.
func (s *Server) executeFleet(ctx context.Context, id, query string, trials int, resume []RecoveredPoint,
	onEvent func(ev PointEvent, key string, out core.PointOutcome)) (*wtql.ResultSet, error, bool) {
	q, err := wtql.Parse(query)
	if err != nil {
		s.finish(id, err)
		return nil, err, true
	}
	if len(q.Set) > 0 {
		return nil, nil, false
	}
	// The coordinator plans with a default-constructed engine exactly as
	// each worker does, so the cache keys it shards on are the keys the
	// workers will compute; the resolved trial count is forwarded
	// explicitly so a worker's own -trials default cannot skew them.
	eng := s.engine(nil)
	if trials > 0 {
		eng.Trials = trials
	}
	trace, root := s.jobTrace(id)
	planSp := s.tel.startSpan(trace, root, "plan")
	plan, err := eng.Plan(q)
	planSp.End()
	if err != nil {
		s.finish(id, err)
		return nil, err, true
	}
	if plan.Pruned() {
		return nil, nil, false
	}
	rs, err := s.runFleetPlan(ctx, id, query, plan, resume, onEvent)
	s.finish(id, err)
	return rs, err, true
}

// runFleetPlan shards the planned sweep, streams the merged per-point
// events in global point order, and assembles the final result set.
// Worker failures trigger shard failover; exhausted retry budgets
// degrade the remainder to coordinator-local execution.
func (s *Server) runFleetPlan(ctx context.Context, id, query string, plan *wtql.Plan, resume []RecoveredPoint,
	onEvent func(ev PointEvent, key string, out core.PointOutcome)) (*wtql.ResultSet, error) {
	f := s.fleet
	keys, err := plan.PointKeys()
	if err != nil {
		return nil, err
	}
	total := len(keys)
	points := plan.Points()
	if total == 0 {
		return plan.Assemble(nil)
	}
	// A journaled prefix (coordinator takeover) is already committed and
	// already streamed: seed the merge state with it so only the
	// remainder is planned onto shards, and resumed clients pick up at
	// exactly the next undelivered index.
	prefix, err := journaledPrefix(points, resume)
	if err != nil {
		return nil, err
	}

	trace, root := s.jobTrace(id)
	mergeSp := s.tel.startSpan(trace, root, "merge").
		Attr("points", strconv.Itoa(total))
	defer mergeSp.End()

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan fleetMsg, 16)

	var (
		active   = 0
		degraded = false
	)

	// launchStream posts one shard to its worker after an optional
	// backoff. The terminal done message is delivered unconditionally —
	// the merge loop drains ch until every launched stream reports done.
	launchStream := func(sh *shard, delay time.Duration) {
		sh.span = s.tel.startSpan(trace, root, "shard").
			Attr("worker", sh.worker).
			Attr("points", strconv.Itoa(len(sh.points))).
			Attr("attempt", strconv.Itoa(sh.attempt))
		if trace.id != "" {
			sh.traceHdr = trace.id + ":" + sh.span.ID()
		}
		s.tel.shardsLaunched.Inc()
		if sh.attempt > 0 {
			s.tel.shardRetries.Inc()
		}
		active++
		go func() {
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-fctx.Done():
					ch <- fleetMsg{shard: sh, err: fctx.Err(), done: true}
					return
				}
			}
			f.stream(fctx, sh, query, plan.Trials(), ch)
		}()
	}

	// launchLocal runs indices on the coordinator's own engine — the
	// degraded last resort when no healthy worker can take them. The
	// job keeps going rather than failing; the degradation is surfaced
	// on the job record and every locally-served point event.
	launchLocal := func(indices []int) {
		if len(indices) == 0 {
			return
		}
		sort.Ints(indices) // Subset wants strictly ascending global indices
		if !degraded {
			degraded = true
			s.markDegraded(id)
		}
		sh := &shard{worker: localWorker, points: indices}
		sh.span = s.tel.startSpan(trace, root, "shard").
			Attr("worker", localWorker).
			Attr("points", strconv.Itoa(len(indices)))
		active++
		go func() {
			err := plan.RunSubset(fctx, indices, func(out core.PointOutcome) {
				s.tel.observePoint(trace, sh.span.ID(), out)
				ev := pointEvent(0, 0, out)
				select {
				case ch <- fleetMsg{shard: sh, ev: &ev}:
				case <-fctx.Done():
				}
			})
			ch <- fleetMsg{shard: sh, err: err, done: true}
		}()
	}

	// Initial assignment: group point indices by their ring owner among
	// assignable members (health skips down and draining workers at
	// planning time), preserving first-seen worker order for the
	// fan-out. With no assignable worker at all the whole sweep runs
	// coordinator-local.
	assign := make(map[string][]int)
	var order []string
	var localIdx []int
	for i := len(prefix); i < total; i++ {
		k := keys[i]
		w, ok := f.ring.OwnerSkipping(k, func(node string) bool { return !f.health.Assignable(node) })
		if !ok {
			localIdx = append(localIdx, i)
			continue
		}
		if assign[w] == nil {
			order = append(order, w)
		}
		assign[w] = append(assign[w], i)
	}
	for _, w := range order {
		launchStream(&shard{worker: w, points: assign[w], tried: make(map[string]bool)}, 0)
	}
	launchLocal(localIdx)

	var (
		received  = make([]bool, total)
		outcomes  = make([]core.PointOutcome, total)
		pending   = make(map[int]PointEvent)
		nextIdx   = len(prefix)
		committed = len(prefix)
		firstErr  error
	)
	for i, out := range prefix {
		received[i] = true
		outcomes[i] = out
	}
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel() // tear down the remaining shards
		}
	}
	for active > 0 {
		m := <-ch
		switch {
		case m.done:
			active--
			w := m.shard.worker
			if m.err == nil {
				m.shard.span.Attr("status", "ok").End()
				if w != localWorker {
					f.health.ReportSuccess(w)
				}
				continue
			}
			m.shard.span.Attr("status", "error").Attr("error", m.err.Error()).End()
			if w != localWorker {
				s.tel.workerFailures.Inc()
			}
			if w == localWorker {
				// Local execution is the last resort; its failure is the
				// job's failure.
				fail(fmt.Errorf("service: degraded local execution: %w", m.err))
				continue
			}
			f.health.ReportFailure(w, m.err)
			if firstErr != nil || ctx.Err() != nil {
				continue // already failing or cancelled: just drain
			}
			// Failover: re-plan only this shard's undelivered indices.
			// Points already streamed (committed or pending in the
			// reorder buffer) are complete, deterministic outcomes — a
			// worker that died after delivering its last point but
			// before its result line cost the job nothing.
			var rem []int
			for _, gi := range m.shard.points {
				if !received[gi] {
					rem = append(rem, gi)
				}
			}
			if len(rem) == 0 {
				continue
			}
			attempt := m.shard.attempt + 1
			tried := make(map[string]bool, len(m.shard.tried)+1)
			for t := range m.shard.tried {
				tried[t] = true
			}
			tried[w] = true
			if attempt > f.maxShardRetries {
				launchLocal(rem)
				continue
			}
			// Next ring owner among healthy, untried members — per key,
			// since the failed owner's keys spread over the survivors. The
			// skip predicate is key-independent, so either every key finds
			// an owner or none does: when none does (every untried member
			// is unhealthy too), forget the tried history and accept any
			// reachable member except the one that just failed — after the
			// backoff, a previously-failed worker may well have recovered,
			// and trying it beats degrading to local execution while
			// retry budget remains.
			skip := func(node string) bool {
				return tried[node] || !f.health.Assignable(node)
			}
			if _, any := f.ring.OwnerSkipping(keys[rem[0]], skip); !any {
				tried = map[string]bool{w: true}
				skip = func(node string) bool {
					return tried[node] || !f.health.Reachable(node)
				}
			}
			retry := make(map[string][]int)
			var retryOrder []string
			var exhausted []int
			for _, gi := range rem {
				nw, ok := f.ring.OwnerSkipping(keys[gi], skip)
				if !ok {
					exhausted = append(exhausted, gi)
					continue
				}
				if retry[nw] == nil {
					retryOrder = append(retryOrder, nw)
				}
				retry[nw] = append(retry[nw], gi)
			}
			delay := f.backoff(attempt)
			for _, nw := range retryOrder {
				launchStream(&shard{worker: nw, points: retry[nw], attempt: attempt, tried: tried}, delay)
			}
			launchLocal(exhausted)

		case firstErr != nil:
			// Already failing: drain without committing.

		default:
			ev := *m.ev
			if ev.Index < 0 || ev.Index >= total {
				fail(fmt.Errorf("service: worker %s streamed out-of-range point index %d", m.shard.worker, ev.Index))
				continue
			}
			if received[ev.Index] {
				// Outcomes are deterministic per cache key, so a
				// duplicate delivery (possible only in pathological
				// failover interleavings) is identical — keep the first.
				continue
			}
			received[ev.Index] = true
			ev.Worker = m.shard.worker
			if m.shard.worker == localWorker {
				ev.Degraded = true
			}
			pending[ev.Index] = ev
			// Commit the contiguous prefix: merged events leave in
			// global point order with coordinator-level done/total, the
			// same discipline each worker's commit path follows.
			for {
				next, ok := pending[nextIdx]
				if !ok {
					break
				}
				delete(pending, nextIdx)
				out := eventOutcome(points[nextIdx], next)
				outcomes[nextIdx] = out
				committed++
				next.Done, next.Total = committed, total
				s.progress(id, committed, total, next.Cached)
				if onEvent != nil {
					onEvent(next, keys[next.Index], out)
				}
				nextIdx++
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err // job cancelled: report it as such, not as a torn stream
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if committed != total {
		return nil, fmt.Errorf("service: fleet streams ended after %d/%d points", committed, total)
	}
	return plan.Assemble(outcomes)
}

// stream posts one shard and forwards its point events to ch, always
// terminating with exactly one done message. The terminal send is
// unconditionally blocking: the merge loop drains ch until every stream
// has reported done, so the send always completes — bailing out on ctx
// here instead would leak the done message and wedge the merge. An idle
// watchdog bounds the gap between NDJSON events: a worker that accepted
// the shard and then hung (no events, connection alive) is treated as
// failed so the merge can re-plan, instead of stalling the job forever.
func (f *fleet) stream(ctx context.Context, sh *shard, query string, trials int, ch chan<- fleetMsg) {
	fail := func(err error) {
		ch <- fleetMsg{shard: sh, err: err, done: true}
	}
	body, err := json.Marshal(QueryRequest{Query: query, Trials: trials, Points: sh.points})
	if err != nil {
		fail(err)
		return
	}

	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	var stalled atomic.Bool
	var idle *time.Timer
	if f.idleTimeout > 0 {
		idle = time.AfterFunc(f.idleTimeout, func() {
			stalled.Store(true)
			scancel()
		})
		defer idle.Stop()
	}
	// wrapErr distinguishes a tripped idle deadline from a plain
	// cancellation or transport error, so the failover path (and the
	// operator reading the logs) sees the stall for what it was.
	wrapErr := func(err error) error {
		if stalled.Load() {
			return fmt.Errorf("stream idle past %s: %w", f.idleTimeout, err)
		}
		return err
	}

	req, err := http.NewRequestWithContext(sctx, "POST",
		strings.TrimRight(sh.worker, "/")+"/v1/query", bytes.NewReader(body))
	if err != nil {
		fail(err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if sh.traceHdr != "" {
		req.Header.Set(traceHeader, sh.traceHdr)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		fail(wrapErr(err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fail(fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg))))
		return
	}

	// One decoder over the NDJSON stream: json.Decoder handles
	// arbitrarily large result lines without a scanner's token cap. Each
	// line's type is peeked before the full decode — the event shapes
	// share field names with different types (a result's "pruned" is a
	// count, a point's is a bool).
	dec := json.NewDecoder(resp.Body)
	sawResult := false
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			fail(wrapErr(err))
			return
		}
		if idle != nil {
			idle.Reset(f.idleTimeout)
		}
		var head struct {
			Type  string `json:"type"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			fail(err)
			return
		}
		switch head.Type {
		case "point":
			var pe PointEvent
			if err := json.Unmarshal(raw, &pe); err != nil {
				fail(err)
				return
			}
			select {
			case ch <- fleetMsg{shard: sh, ev: &pe}:
			case <-sctx.Done():
				fail(wrapErr(sctx.Err()))
				return
			}
		case "error":
			fail(fmt.Errorf("%s", head.Error))
			return
		case "result":
			sawResult = true
		}
	}
	if !sawResult {
		fail(fmt.Errorf("stream ended without a result"))
		return
	}
	ch <- fleetMsg{shard: sh, done: true}
}

// eventOutcome reconstructs a committed point outcome from a worker's
// point event. encoding/json round-trips float64 bit-exactly, so
// Assemble over these outcomes renders the very bytes a local run of
// the same sweep would.
func eventOutcome(p design.Point, ev PointEvent) core.PointOutcome {
	out := core.PointOutcome{
		Point:     p,
		Index:     ev.Index,
		Pruned:    ev.Pruned,
		Screened:  ev.Screened,
		FromCache: ev.Cached,
		AllMet:    ev.AllMet,
	}
	if !ev.Pruned {
		out.Result = &core.RunResult{
			Metrics:     ev.Metrics,
			Trials:      ev.Trials,
			EventsTotal: ev.Events,
		}
	}
	return out
}
