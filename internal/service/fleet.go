package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/wtql"
)

// fleet is the coordinator's side of the sharded wind tunnel: the same
// consistent-hash ring the workers peer over, plus the HTTP client the
// coordinator fans queries out with. A sweep's design points are hashed
// on core.CacheKey, so a point always lands on the worker that already
// holds its cached trials; the workers' NDJSON streams are merged back
// in global point order, and the in-order commit discipline on each
// worker makes the merged table byte-identical to a single-daemon run.
type fleet struct {
	ring   *Ring
	client *http.Client
}

func newFleet(workers []string) *fleet {
	// No client timeout: a shard legitimately streams for as long as its
	// slowest simulation; cancellation rides the request context.
	return &fleet{ring: NewRing(workers), client: &http.Client{}}
}

// fleetMsg is one parsed line (or the terminal state) of a worker
// stream.
type fleetMsg struct {
	worker string
	ev     *PointEvent
	err    error // set only on the terminal message
	done   bool
}

// executeFleet runs one admitted job by sharding it across the fleet.
// handled=false means the query is not shardable — a SET statement or a
// MONOTONE (pruned) sweep, whose dominance decisions depend on the
// whole committed prefix — and the caller must execute it locally; the
// job stays registered either way. On handled=true the job's terminal
// state has been recorded.
func (s *Server) executeFleet(ctx context.Context, id, query string, trials int,
	onEvent func(ev PointEvent, out core.PointOutcome)) (*wtql.ResultSet, error, bool) {
	q, err := wtql.Parse(query)
	if err != nil {
		s.finish(id, err)
		return nil, err, true
	}
	if len(q.Set) > 0 {
		return nil, nil, false
	}
	// The coordinator plans with a default-constructed engine exactly as
	// each worker does, so the cache keys it shards on are the keys the
	// workers will compute; the resolved trial count is forwarded
	// explicitly so a worker's own -trials default cannot skew them.
	eng := s.engine(nil)
	if trials > 0 {
		eng.Trials = trials
	}
	plan, err := eng.Plan(q)
	if err != nil {
		s.finish(id, err)
		return nil, err, true
	}
	if plan.Pruned() {
		return nil, nil, false
	}
	rs, err := s.runFleetPlan(ctx, id, query, plan, onEvent)
	s.finish(id, err)
	return rs, err, true
}

// runFleetPlan shards the planned sweep, streams the merged per-point
// events in global point order, and assembles the final result set.
func (s *Server) runFleetPlan(ctx context.Context, id, query string, plan *wtql.Plan,
	onEvent func(ev PointEvent, out core.PointOutcome)) (*wtql.ResultSet, error) {
	keys, err := plan.PointKeys()
	if err != nil {
		return nil, err
	}
	total := len(keys)

	// Group point indices by their ring owner, preserving first-seen
	// worker order for the fan-out.
	assign := make(map[string][]int)
	var order []string
	for i, k := range keys {
		w, ok := s.fleet.ring.Owner(k)
		if !ok {
			return nil, fmt.Errorf("service: fleet has no workers")
		}
		if assign[w] == nil {
			order = append(order, w)
		}
		assign[w] = append(assign[w], i)
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan fleetMsg, 2*len(order))
	for _, w := range order {
		go s.fleet.stream(fctx, w, query, plan.Trials(), assign[w], ch)
	}

	points := plan.Points()
	outcomes := make([]core.PointOutcome, total)
	pending := make(map[int]PointEvent)
	nextIdx, committed, active := 0, 0, len(order)
	var firstErr error
	for active > 0 {
		m := <-ch
		switch {
		case m.done:
			active--
			if m.err != nil && firstErr == nil {
				firstErr = fmt.Errorf("service: worker %s: %w", m.worker, m.err)
				cancel() // tear down the other shards
			}
		case firstErr != nil:
			// Already failing: drain without committing.
		default:
			ev := *m.ev
			if ev.Index < 0 || ev.Index >= total {
				firstErr = fmt.Errorf("service: worker %s streamed out-of-range point index %d", m.worker, ev.Index)
				cancel()
				continue
			}
			ev.Worker = m.worker
			pending[ev.Index] = ev
			// Commit the contiguous prefix: merged events leave in
			// global point order with coordinator-level done/total, the
			// same discipline each worker's commit path follows.
			for {
				next, ok := pending[nextIdx]
				if !ok {
					break
				}
				delete(pending, nextIdx)
				out := eventOutcome(points[nextIdx], next)
				outcomes[nextIdx] = out
				committed++
				next.Done, next.Total = committed, total
				s.progress(id, committed, total, next.Cached)
				if onEvent != nil {
					onEvent(next, out)
				}
				nextIdx++
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err // job cancelled: report it as such, not as a torn stream
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if committed != total {
		return nil, fmt.Errorf("service: fleet streams ended after %d/%d points", committed, total)
	}
	return plan.Assemble(outcomes)
}

// stream posts one worker's shard and forwards its point events to ch,
// always terminating with exactly one done message. The terminal send
// is unconditionally blocking: the merge loop drains ch until every
// stream has reported done, so the send always completes — bailing out
// on ctx here instead would leak the done message and wedge the merge.
func (f *fleet) stream(ctx context.Context, worker, query string, trials int, points []int, ch chan<- fleetMsg) {
	fail := func(err error) {
		ch <- fleetMsg{worker: worker, err: err, done: true}
	}
	body, err := json.Marshal(QueryRequest{Query: query, Trials: trials, Points: points})
	if err != nil {
		fail(err)
		return
	}
	req, err := http.NewRequestWithContext(ctx, "POST",
		strings.TrimRight(worker, "/")+"/v1/query", bytes.NewReader(body))
	if err != nil {
		fail(err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		fail(err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fail(fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg))))
		return
	}

	// One decoder over the NDJSON stream: json.Decoder handles
	// arbitrarily large result lines without a scanner's token cap. Each
	// line's type is peeked before the full decode — the event shapes
	// share field names with different types (a result's "pruned" is a
	// count, a point's is a bool).
	dec := json.NewDecoder(resp.Body)
	sawResult := false
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			fail(err)
			return
		}
		var head struct {
			Type  string `json:"type"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			fail(err)
			return
		}
		switch head.Type {
		case "point":
			var pe PointEvent
			if err := json.Unmarshal(raw, &pe); err != nil {
				fail(err)
				return
			}
			select {
			case ch <- fleetMsg{worker: worker, ev: &pe}:
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
		case "error":
			fail(fmt.Errorf("%s", head.Error))
			return
		case "result":
			sawResult = true
		}
	}
	if !sawResult {
		fail(fmt.Errorf("stream ended without a result"))
		return
	}
	ch <- fleetMsg{worker: worker, done: true}
}

// eventOutcome reconstructs a committed point outcome from a worker's
// point event. encoding/json round-trips float64 bit-exactly, so
// Assemble over these outcomes renders the very bytes a local run of
// the same sweep would.
func eventOutcome(p design.Point, ev PointEvent) core.PointOutcome {
	out := core.PointOutcome{
		Point:     p,
		Index:     ev.Index,
		Pruned:    ev.Pruned,
		Screened:  ev.Screened,
		FromCache: ev.Cached,
		AllMet:    ev.AllMet,
	}
	if !ev.Pruned {
		out.Result = &core.RunResult{
			Metrics:     ev.Metrics,
			Trials:      ev.Trials,
			EventsTotal: ev.Events,
		}
	}
	return out
}
