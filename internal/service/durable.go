package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/wtql"
)

// This file is the durable job layer: journaled jobs run detached from
// their client connections, their event streams are kept in memory (and
// on disk, in the write-ahead journal) for byte-identical replay, and a
// restarted daemon resurrects incomplete jobs and resumes only their
// undelivered points.
//
// The write-ahead discipline: a point's journal record is fsync'd
// *before* the event line becomes visible to any stream follower. A
// client that has seen N point events can therefore always resume with
// from=N after a crash — the daemon cannot have forgotten an event it
// delivered.

var (
	// ErrUnknownJob reports a Follow on an id the registry does not hold.
	ErrUnknownJob = errors.New("service: no such job")
	// ErrNoStream reports a Follow on a job that ran inline (journaling
	// disabled or a fleet shard) and so kept no replayable stream.
	ErrNoStream = errors.New("service: job has no recorded stream")
)

// Submit admits a query as a detached durable job: it is journaled
// (when the journal is enabled and this is not a fleet-shard request),
// starts executing immediately on its own goroutine, and survives any
// client disconnect. The returned id can be streamed — repeatedly,
// concurrently, resumably — via Follow.
func (s *Server) Submit(req QueryRequest) (string, error) {
	return s.submit(req, traceCtx{})
}

// submit is Submit plus the trace position a remote coordinator
// propagated (zero for client-originated jobs).
func (s *Server) submit(req QueryRequest, tr traceCtx) (string, error) {
	id, jctx, err := s.newJob(context.Background(), req.Query, true, tr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if s.journal != nil && req.Points == nil {
		if jj, jerr := s.journal.Begin(id, req.Query, req.Trials, j.info.Created); jerr == nil {
			j.jj = jj
		}
		// A Begin failure (disk full, permissions) degrades this job to
		// non-durable rather than refusing it.
	}
	line, err := json.Marshal(JobEvent{Type: "job", ID: id})
	if err != nil {
		s.finish(id, err)
		return "", err
	}
	s.appendLine(j, 'j', line)
	go s.runDetached(jctx, id, req, nil)
	return id, nil
}

// Follow streams a durable job's NDJSON lines to emit: the committed
// prefix is replayed byte-identically (skipping the first `from` point
// events — the client's resume cursor), then the live tail until the
// terminal line. It returns nil once the terminal line has been
// delivered, emit's error if emit fails, or ctx.Err on cancellation.
func (s *Server) Follow(ctx context.Context, id string, from int, emit func(line []byte) error) error {
	if from < 0 {
		from = 0
	}
	// Wake the cond wait below when the follower's context dies; the
	// empty critical section orders the broadcast after Wait's re-lock.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		//lint:ignore SA2001 pairing the broadcast with the waiters' lock
		s.mu.Unlock()
		s.cond.Broadcast()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	if !j.durable {
		return ErrNoStream
	}
	idx, pts := 0, 0
	for {
		for idx < len(j.lines) {
			ln := j.lines[idx]
			idx++
			if ln.kind == 'p' {
				pts++
				if pts <= from {
					continue
				}
			}
			// The re-lock is deferred so a panicking emit (net/http's
			// ErrAbortHandler, chaos cuts) unwinds through the outer
			// deferred Unlock with the mutex held, not double-unlocked.
			err := func() error {
				s.mu.Unlock()
				defer s.mu.Lock()
				return emit(ln.data)
			}()
			if err != nil {
				return err
			}
		}
		if j.logClosed {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		s.cond.Wait()
	}
}

// appendLine appends one line to a job's in-memory stream log and wakes
// every follower. Element data is immutable once appended.
func (s *Server) appendLine(j *job, kind byte, data []byte) {
	s.mu.Lock()
	j.lines = append(j.lines, logLine{kind: kind, data: data})
	if kind == 'p' {
		j.points++
	}
	if kind == 't' {
		j.logClosed = true
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// appendPoint makes one committed point durable then visible — journal
// fsync strictly before the in-memory (client-visible) append.
func (s *Server) appendPoint(j *job, index int, key string, line []byte) {
	if s.pointGate != nil {
		s.pointGate(index)
	}
	if jj := j.jj; jj != nil {
		sp := s.tel.startSpan(j.trace, j.root.ID(), "journal_append").
			Attr("index", strconv.Itoa(index))
		if err := jj.Point(index, key, line); err != nil {
			// Journaling broke mid-job (disk full, file gone). Serving
			// continues non-durably; the journal is closed so recovery
			// sees a clean prefix instead of a torn one.
			jj.Close()
		}
		sp.End()
	}
	s.appendLine(j, 'p', line)
}

// resumeState carries a recovered job's journaled committed prefix into
// its resumed execution.
type resumeState struct {
	points []RecoveredPoint
}

// runDetached executes a durable job to completion on its own
// goroutine, appending every event line to the job's stream log (and
// journal) and closing the log with the terminal line.
func (s *Server) runDetached(ctx context.Context, id string, req QueryRequest, res *resumeState) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return
	}
	emit := func(ev PointEvent, key string, out core.PointOutcome) {
		line, err := json.Marshal(ev)
		if err != nil {
			return
		}
		s.appendPoint(j, ev.Index, key, line)
	}
	rs, err := s.executeDurable(ctx, id, req, res, emit)

	info, _ := s.Job(id)
	var line []byte
	status := "done"
	errMsg := ""
	if err != nil {
		line, _ = json.Marshal(ErrorEvent{Type: "error", Error: err.Error()})
		status, errMsg = "failed", err.Error()
		if info.State == JobCancelled {
			status = "cancelled"
		}
	} else {
		line, _ = json.Marshal(ResultEvent{
			Type: "result", ID: id,
			Columns:  rs.Columns,
			Rows:     rowsOrEmpty(rs.Rows),
			Executed: rs.Executed, Pruned: rs.Pruned, Screened: rs.Screened,
			CacheHits: rs.CacheHits,
			Settings:  rs.Settings,
			Table:     rs.Render(),
			Degraded:  info.Degraded,
		})
	}
	if jj := j.jj; jj != nil {
		jj.End(status, errMsg, line)
	}
	s.appendLine(j, 't', line)
}

// executeDurable runs a durable job's query — SET statement, fleet
// fan-out, or local sweep — optionally resuming past a journaled
// committed prefix, and records the job's terminal state.
func (s *Server) executeDurable(ctx context.Context, id string, req QueryRequest, res *resumeState,
	emit func(ev PointEvent, key string, out core.PointOutcome)) (*wtql.ResultSet, error) {
	q, err := wtql.Parse(req.Query)
	if err != nil {
		s.finish(id, err)
		return nil, err
	}
	if len(q.Set) > 0 {
		eng := s.engine(nil)
		if req.Trials > 0 {
			eng.Trials = req.Trials
		}
		rs, err := eng.RunContext(ctx, q)
		s.finish(id, err)
		return rs, err
	}
	trace, root := s.jobTrace(id)
	var resume []RecoveredPoint
	if res != nil {
		resume = res.points
	}
	if s.fleet != nil {
		rs, err, handled := s.executeFleet(ctx, id, req.Query, req.Trials, resume, emit)
		if handled {
			return rs, err
		}
	}

	eng := s.engine(nil)
	if req.Trials > 0 {
		eng.Trials = req.Trials
	}
	plan, err := eng.Plan(q)
	if err != nil {
		s.finish(id, err)
		return nil, err
	}
	keys, err := plan.PointKeys()
	if err != nil {
		s.finish(id, err)
		return nil, err
	}
	total := plan.NumPoints()
	prefix, err := journaledPrefix(plan.Points(), resume)
	if err != nil {
		s.finish(id, err)
		return nil, err
	}
	k := len(prefix)

	switch {
	case k == 0:
		// Fresh run (or nothing committed before the crash): the whole
		// sweep, with per-commit progress and event emission.
		eng.Progress = func(done, total int, out core.PointOutcome) {
			s.progress(id, done, total, out.FromCache)
			s.tel.observePoint(trace, root, out)
			emit(pointEvent(done, total, out), keys[out.Index], out)
		}
		rs, err := plan.Run(ctx)
		s.finish(id, err)
		return rs, err

	case plan.Pruned():
		// MONOTONE sweeps: dominance decisions depend on the whole
		// committed prefix, so re-run the full sweep — deterministic, and
		// every previously-simulated point is a trial-cache hit — while
		// suppressing re-emission (and re-journaling) of the first k
		// events the journal already holds.
		eng.Progress = func(done, total int, out core.PointOutcome) {
			s.progress(id, done, total, out.FromCache)
			s.tel.observePoint(trace, root, out)
			if done <= k {
				return
			}
			emit(pointEvent(done, total, out), keys[out.Index], out)
		}
		rs, err := plan.Run(ctx)
		s.finish(id, err)
		return rs, err

	default:
		// Plain sweep: the journaled prefix is final. Execute only the
		// undelivered tail and assemble the table over prefix + tail.
		outcomes := prefix
		if k < total {
			rem := make([]int, 0, total-k)
			for i := k; i < total; i++ {
				rem = append(rem, i)
			}
			err = plan.RunSubset(ctx, rem, func(out core.PointOutcome) {
				outcomes = append(outcomes, out)
				n := len(outcomes)
				s.progress(id, n, total, out.FromCache)
				s.tel.observePoint(trace, root, out)
				emit(pointEvent(n, total, out), keys[out.Index], out)
			})
			if err != nil {
				s.finish(id, err)
				return nil, err
			}
		}
		rs, err := plan.Assemble(outcomes)
		s.finish(id, err)
		return rs, err
	}
}

// journaledPrefix reconstructs the committed outcomes a journal's point
// records describe. The outcomes are marked FromCache — they are served
// from the journal, not re-simulated — which also keeps Assemble from
// archiving the same simulation into the results store twice.
func journaledPrefix(points []design.Point, resume []RecoveredPoint) ([]core.PointOutcome, error) {
	if len(resume) == 0 {
		return nil, nil
	}
	if len(resume) > len(points) {
		return nil, fmt.Errorf("service: journal holds %d points but the plan has %d — query or catalog changed under the journal", len(resume), len(points))
	}
	out := make([]core.PointOutcome, 0, len(resume))
	for i, rp := range resume {
		var ev PointEvent
		if err := json.Unmarshal(rp.Line, &ev); err != nil {
			return nil, fmt.Errorf("service: journaled point %d: %w", i, err)
		}
		o := eventOutcome(points[i], ev)
		o.FromCache = true
		out = append(out, o)
	}
	return out, nil
}

// Recover replays the journal directory: completed jobs come back as
// replayable history, incomplete jobs are resurrected under their
// original ids and resume execution of only their undelivered points.
// It returns how many jobs resumed plus human-readable warnings for
// anything the journal scan repaired or refused. Call it once, after
// New and before serving traffic.
func (s *Server) Recover() (resumed int, warnings []string, err error) {
	if s.journal == nil {
		return 0, nil, nil
	}
	jobs, warnings, err := s.journal.Recover()
	if err != nil {
		return 0, warnings, err
	}
	for _, rec := range jobs {
		if rec.ID == "" {
			warnings = append(warnings, "journal: record with empty job id: skipping")
			continue
		}
		if s.restoreJob(rec) {
			resumed++
			warnings = append(warnings, fmt.Sprintf("journal: resuming %s at %d committed point(s)", rec.ID, len(rec.Points)))
		}
	}
	return resumed, warnings, nil
}

// restoreJob registers one recovered job. Incomplete jobs resume
// detached; completed ones are restored finished, streams replayable.
// Reports whether the job resumed execution.
func (s *Server) restoreJob(rec *RecoveredJob) bool {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		info:    JobInfo{ID: rec.ID, Query: rec.Query, State: JobRunning, Created: rec.Created},
		cancel:  cancel,
		durable: true,
	}
	jobLine, err := json.Marshal(JobEvent{Type: "job", ID: rec.ID})
	if err != nil {
		cancel()
		return false
	}
	j.lines = append(j.lines, logLine{kind: 'j', data: jobLine})
	for _, p := range rec.Points {
		j.lines = append(j.lines, logLine{kind: 'p', data: p.Line})
		j.points++
	}
	if n := len(rec.Points); n > 0 {
		var last PointEvent
		if json.Unmarshal(rec.Points[n-1].Line, &last) == nil {
			j.info.Done, j.info.Total = last.Done, last.Total
		}
	}
	if rec.Status != "" {
		// Finished before the restart: keep it streamable, not runnable.
		if len(rec.EndLine) > 0 {
			j.lines = append(j.lines, logLine{kind: 't', data: rec.EndLine})
		}
		j.logClosed = true
		j.info.Finished = s.now()
		j.info.Error = rec.Error
		switch rec.Status {
		case "done":
			j.info.State = JobDone
		case "cancelled":
			j.info.State = JobCancelled
		default:
			j.info.State = JobFailed
		}
	} else {
		j.info.Resumed = true
		// A resumed job starts a fresh trace: the pre-crash process's
		// spans died with it.
		if s.tel != nil && s.tel.tracer != nil {
			j.trace = traceCtx{id: s.tel.tracer.NewTraceID()}
			j.root = s.tel.startSpan(j.trace, "", "job").
				Attr("job", rec.ID).Attr("resumed", "true")
			j.info.TraceID = j.trace.id
		}
	}

	s.mu.Lock()
	if _, exists := s.jobs[rec.ID]; exists {
		s.mu.Unlock()
		cancel()
		return false
	}
	s.jobs[rec.ID] = j
	s.order = append(s.order, rec.ID)
	s.evictFinishedLocked()
	s.mu.Unlock()

	if rec.Status != "" {
		cancel()
		return false
	}
	if jj, err := s.journal.Reopen(rec.ID); err == nil {
		j.jj = jj
	}
	req := QueryRequest{Query: rec.Query, Trials: rec.Trials}
	go s.runDetached(ctx, rec.ID, req, &resumeState{points: rec.Points})
	return true
}

// crashForTest simulates kill -9 for in-process tests: every job's
// journal is abandoned in place — no terminal record, exactly the state
// a hard kill leaves on disk — and running contexts are cancelled so
// the doomed executions stop burning the pool.
func (s *Server) crashForTest() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.jj != nil {
			j.jj.abandon()
		}
		if j.info.State == JobRunning {
			j.cancel()
		}
	}
}
