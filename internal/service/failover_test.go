package service

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// killNthWrite wraps a handler so that the first /v1/query response
// across the wrapped set is aborted (connection reset) after `after`
// body writes — a worker dying mid-stream, deterministically.
type killOnce struct {
	used  atomic.Bool
	after int
}

func (k *killOnce) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/query" && k.used.CompareAndSwap(false, true) {
			w = &killWriter{ResponseWriter: w, after: k.after}
		}
		next.ServeHTTP(w, r)
	})
}

type killWriter struct {
	http.ResponseWriter
	writes int
	after  int
}

func (k *killWriter) Write(p []byte) (int, error) {
	if k.writes >= k.after {
		panic(http.ErrAbortHandler) // net/http: abort the connection
	}
	k.writes++
	return k.ResponseWriter.Write(p)
}

func (k *killWriter) Flush() {
	if fl, ok := k.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// TestFleetFailoverMidStreamKill is the golden failover check the issue
// asks for: kill a worker mid-sweep (its NDJSON stream resets after the
// job line plus one point event) and assert the coordinator re-plans
// the shard's undelivered points onto the survivor, finishes with zero
// job-level errors, reports degraded=false, and renders the exact bytes
// of a single-daemon run.
func TestFleetFailoverMidStreamKill(t *testing.T) {
	_, single := newTestServer(t, Config{PoolSize: 2})
	want := lastEvent(t, postQuery(t, single, smallQuery))

	// Whichever worker receives the first query stream gets killed after
	// two body writes (the job event + one point event), so the kill is
	// mid-sweep regardless of how the ring splits the four points.
	kill := &killOnce{after: 2}
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		srv, err := New(Config{PoolSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		ts := httptest.NewServer(kill.wrap(srv.Handler()))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	_, cts := newTestServer(t, Config{Coordinator: true, Peers: urls})

	events := postQuery(t, cts, smallQuery)
	for _, ev := range events {
		if ev["type"] == "error" {
			t.Fatalf("mid-stream worker kill surfaced a job-level error: %v", ev)
		}
	}
	final := lastEvent(t, events)
	if final["type"] != "result" {
		t.Fatalf("fleet ended with %v after mid-stream kill", final)
	}
	if !kill.used.Load() {
		t.Fatal("kill middleware never fired: the test exercised nothing")
	}
	if final["table"] != want["table"] {
		t.Fatalf("post-failover table differs from single-daemon run:\n--- single ---\n%v--- fleet ---\n%v",
			want["table"], final["table"])
	}
	if final["degraded"] != false {
		t.Fatalf("failover to a live worker reported degraded=%v", final["degraded"])
	}
	// The merge must still commit in global order, all four points.
	done := 0
	for _, ev := range events {
		if ev["type"] != "point" {
			continue
		}
		done++
		if int(ev["done"].(float64)) != done {
			t.Fatalf("post-failover merge out of order: done=%v at position %d", ev["done"], done)
		}
	}
	if done != 4 {
		t.Fatalf("post-failover merge committed %d points, want 4", done)
	}
}

// TestFleetDegradedLocalFallback: when every retry target is exhausted
// (here: a one-worker fleet whose only worker resets every stream), the
// coordinator must degrade to local execution — same bytes, zero
// errors, degraded=true on the result event and the job record.
func TestFleetDegradedLocalFallback(t *testing.T) {
	_, single := newTestServer(t, Config{PoolSize: 2})
	want := lastEvent(t, postQuery(t, single, smallQuery))

	srv, err := New(Config{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	// Every query stream dies after the job line: the worker is alive
	// (healthz answers) but never delivers a single point.
	h := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/query" {
			w = &killWriter{ResponseWriter: w, after: 1}
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	coord, cts := newTestServer(t, Config{Coordinator: true, Peers: []string{ts.URL}})
	events := postQuery(t, cts, smallQuery)
	for _, ev := range events {
		if ev["type"] == "error" {
			t.Fatalf("degraded fallback surfaced a job-level error: %v", ev)
		}
	}
	final := lastEvent(t, events)
	if final["type"] != "result" {
		t.Fatalf("degraded fallback ended with %v", final)
	}
	if final["table"] != want["table"] {
		t.Fatalf("degraded table differs from single-daemon run:\n--- single ---\n%v--- degraded ---\n%v",
			want["table"], final["table"])
	}
	if final["degraded"] != true {
		t.Fatal("coordinator-local fallback did not report degraded=true")
	}
	localPoints := 0
	for _, ev := range events {
		if ev["type"] == "point" && ev["worker"] == localWorker {
			localPoints++
			if ev["degraded"] != true {
				t.Fatalf("locally-served point event missing degraded flag: %v", ev)
			}
		}
	}
	if localPoints != 4 {
		t.Fatalf("%d of 4 points served locally, want all (the only worker never delivers)", localPoints)
	}
	jobs := coord.Jobs()
	if len(jobs) != 1 || !jobs[0].Degraded {
		t.Fatalf("job registry does not record the degradation: %+v", jobs)
	}
}

// TestFleetStreamIdleFailover: a worker that accepts a shard and then
// stalls (connection open, no events) must trip the per-stream idle
// deadline and fail over rather than hanging the job forever.
func TestFleetStreamIdleFailover(t *testing.T) {
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		json.NewEncoder(w).Encode(JobEvent{Type: "job", ID: "job-hung"})
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		<-r.Context().Done() // stall until the coordinator gives up
	}))
	t.Cleanup(hung.Close)

	_, cts := newTestServer(t, Config{
		Coordinator:       true,
		Peers:             []string{hung.URL},
		StreamIdleTimeout: 100 * time.Millisecond,
		PoolSize:          2,
	})
	start := time.Now()
	final := lastEvent(t, postQuery(t, cts, smallQuery))
	if final["type"] != "result" {
		t.Fatalf("idle-stalled worker ended the job with %v", final)
	}
	if final["degraded"] != true {
		t.Fatal("sole-worker stall should degrade to local execution")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("idle failover took %v — the deadline did not fire", elapsed)
	}
}

// TestFleetDrainDuringJob: BeginDrain on a coordinator mid-merge must
// let the in-flight fleet job stream to completion while refusing new
// queries with 503.
func TestFleetDrainDuringJob(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool

	srv, err := New(Config{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	h := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/query" && once.CompareAndSwap(false, true) {
			close(entered)
			<-release // hold the stream open until the test has drained
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	coord, cts := newTestServer(t, Config{Coordinator: true, Peers: []string{ts.URL}})

	type res struct{ final map[string]any }
	doneCh := make(chan res, 1)
	go func() {
		events := postQuery(t, cts, smallQuery)
		doneCh <- res{lastEvent(t, events)}
	}()

	<-entered
	coord.BeginDrain()

	// New work is refused immediately...
	resp, err := http.Post(cts.URL+"/v1/query", "text/plain", strings.NewReader(smallQuery))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining coordinator answered a new query with %d, want 503", resp.StatusCode)
	}
	// ...and the draining coordinator says so on healthz.
	hr, err := http.Get(cts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb map[string]string
	json.NewDecoder(hr.Body).Decode(&hb)
	hr.Body.Close()
	if hb["status"] != "draining" {
		t.Fatalf("draining healthz reported %q", hb["status"])
	}

	// The in-flight merge finishes normally once the worker resumes.
	close(release)
	select {
	case r := <-doneCh:
		if r.final["type"] != "result" {
			t.Fatalf("in-flight job under drain ended with %v", r.final)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight fleet job did not finish under drain")
	}
}

// TestHealthTreatsDrainingAsSuspect: a draining worker still answers
// probes, so it must become suspect (no new shards) — not failed, and
// still reachable for cache peering.
func TestHealthTreatsDrainingAsSuspect(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1})
	h := NewHealth([]string{ts.URL}, HealthConfig{})
	h.Probe()
	if st := h.State(ts.URL); st != StateUp {
		t.Fatalf("healthy worker probed as %v", st)
	}

	srv.BeginDrain()
	h.Probe()
	if st := h.State(ts.URL); st != StateSuspect {
		t.Fatalf("draining worker probed as %v, want suspect", st)
	}
	if h.Assignable(ts.URL) {
		t.Fatal("draining worker still assignable for new shards")
	}
	if !h.Reachable(ts.URL) {
		t.Fatal("draining worker treated as down — it is alive and finishing work")
	}
	snap := h.Snapshot()
	if len(snap) != 1 || !snap[0].Draining {
		t.Fatalf("snapshot does not mark the member draining: %+v", snap)
	}
}

// TestCachePeerDownSkipsFast is the issue's <10ms-per-key assertion: a
// peer the health monitor holds down must be skipped before any dial,
// so a dead peer costs microseconds per key instead of the peer
// client's 2s timeout.
func TestCachePeerDownSkipsFast(t *testing.T) {
	// A listener that accepts and then ignores connections: any actual
	// dial against it would burn the full client timeout.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	hungURL := "http://" + ln.Addr().String()

	c, err := NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://self.invalid"
	c.EnablePeering([]string{hungURL, self}, self, nil)
	h := NewHealth([]string{hungURL}, HealthConfig{DownAfter: 3})
	for i := 0; i < 3; i++ {
		h.ReportFailure(hungURL, nil)
	}
	if h.State(hungURL) != StateDown {
		t.Fatalf("3 failures left the peer %v", h.State(hungURL))
	}
	c.SetHealth(h)

	const keys = 20
	start := time.Now()
	for i := 0; i < keys; i++ {
		key := strings.Repeat("0", 62) + string(rune('a'+i%6)) + string(rune('0'+i%10))
		if _, ok := c.Get(key); ok {
			t.Fatal("down peer produced a hit")
		}
	}
	elapsed := time.Since(start)
	// 10ms per key is the ceiling the issue sets; an actual dial against
	// the hung listener would cost 2s per key.
	if elapsed > time.Duration(keys)*10*time.Millisecond {
		t.Fatalf("%d lookups against a down peer took %v, want <10ms per key", keys, elapsed)
	}
	if st := c.Stats(); st.PeerSkips != keys {
		t.Fatalf("peer skips = %d, want %d: %+v", st.PeerSkips, keys, st)
	}
}

// TestCachePeerTransientRetry: a 5xx from the owner peer gets one short
// retry — a momentarily-overloaded peer still hands the entry to the
// LRU promotion path — while a persistent transient status degrades to
// a miss without ever counting a peer hit.
func TestCachePeerTransientRetry(t *testing.T) {
	key := strings.Repeat("4e5f", 16)
	rec := recordFrom(dummyResult("flaky", 0.625))
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	}))
	t.Cleanup(flaky.Close)

	c, err := NewCache(8, "")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://self.invalid"
	c.EnablePeering([]string{flaky.URL, self}, self, nil)

	got, ok := c.Get(key)
	if !ok {
		t.Fatal("transient 500 was not retried")
	}
	if got.Metrics["availability"] != 0.625 {
		t.Fatalf("retried fetch returned wrong entry: %+v", got)
	}
	if st := c.Stats(); st.PeerRetries != 1 || st.PeerHits != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("transient-retry stats: %+v", st)
	}

	// Persistent 429: retried once, then a plain miss — peer_hits stays
	// clean.
	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(overloaded.Close)
	c2, err := NewCache(8, "")
	if err != nil {
		t.Fatal(err)
	}
	c2.EnablePeering([]string{overloaded.URL, self}, self, nil)
	if _, ok := c2.Get(strings.Repeat("6a7b", 16)); ok {
		t.Fatal("persistent 429 produced a hit")
	}
	if st := c2.Stats(); st.PeerRetries != 1 || st.PeerHits != 0 || st.Misses != 1 {
		t.Fatalf("persistent-429 stats: %+v", st)
	}
}

// TestCachePeerFetchHonorsContext: a cancelled job context aborts an
// in-flight peer fetch immediately instead of riding out the fetch
// client's 2s timeout.
func TestCachePeerFetchHonorsContext(t *testing.T) {
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(stall.Close)

	c, err := NewCache(8, "")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://self.invalid"
	c.EnablePeering([]string{stall.URL, self}, self, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := c.GetContext(ctx, strings.Repeat("8c9d", 16)); ok {
		t.Fatal("stalled peer produced a hit")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled peer fetch took %v, want ~the 50ms context deadline", elapsed)
	}
}

// TestFleetEndpoint covers GET /v1/fleet: a coordinator exposes its
// mode and the per-member health snapshot; a single daemon answers too
// (mode "single", no members) so clients can probe any server alike.
func TestFleetEndpoint(t *testing.T) {
	_, single := newTestServer(t, Config{PoolSize: 1})
	var got struct {
		Mode    string         `json:"mode"`
		Members []MemberHealth `json:"members"`
	}
	mustGetJSON(t, single.URL+"/v1/fleet", &got)
	if got.Mode != "single" || len(got.Members) != 0 {
		t.Fatalf("single-daemon fleet endpoint: %+v", got)
	}

	_, cts, _, urls := startFleet(t, 2, false)
	mustGetJSON(t, cts.URL+"/v1/fleet", &got)
	if got.Mode != "coordinator" {
		t.Fatalf("coordinator mode = %q", got.Mode)
	}
	if len(got.Members) != len(urls) {
		t.Fatalf("fleet endpoint lists %d members, want %d", len(got.Members), len(urls))
	}
	for _, m := range got.Members {
		if m.URL == "" || m.State == "" {
			t.Fatalf("member missing url/state: %+v", m)
		}
	}
}

func mustGetJSON(t testing.TB, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s returned %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
