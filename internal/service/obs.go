package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Version identifies the daemon build. It is exposed on /v1/healthz and
// /v1/stats (and printed by wtload), so an operator can tell which
// binary answered — essential once a fleet rolls upgrades member by
// member.
const Version = "0.9.0"

// traceCtx is a job's position in a distributed trace: the trace id and
// the parent span a remote coordinator propagated in the X-WT-Trace
// header (empty parent = this process is the trace root).
type traceCtx struct {
	id     string
	parent string
}

// traceHeader is the coordinator→worker trace propagation header:
// "<trace_id>:<parent_span_id>".
const traceHeader = "X-WT-Trace"

func parseTraceHeader(r *http.Request) traceCtx {
	v := r.Header.Get(traceHeader)
	if v == "" {
		return traceCtx{}
	}
	id, parent, _ := strings.Cut(v, ":")
	return traceCtx{id: id, parent: parent}
}

// telemetry owns the server's observability state: the metrics registry,
// the distributed tracer, and every pre-registered instrument the
// serving paths update. The struct itself is always non-nil on a Server;
// with Config.NoTelemetry the registry and tracer are nil, every
// instrument below is therefore nil, and the obs package's nil-receiver
// contract turns every update into a no-op — call sites never guard.
type telemetry struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	// Point commit path.
	pointsCommitted *obs.Counter
	pointsSimulated *obs.Counter
	pointsCached    *obs.Counter
	pointsScreened  *obs.Counter
	pointsPruned    *obs.Counter
	pointRun        *obs.Histogram
	simEvents       *obs.Counter
	simTrials       *obs.Counter

	// Journal.
	journalAppends *obs.Counter
	journalFsync   *obs.Histogram

	// Fleet coordinator.
	shardsLaunched *obs.Counter
	shardRetries   *obs.Counter
	workerFailures *obs.Counter
	degradedJobs   *obs.Counter
	streamResumes  *obs.Counter

	// Jobs.
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsCancelled *obs.Counter

	// HTTP layer: per-route latency histograms are registered at route
	// setup; per-(route, status) counters lazily at first response.
	httpMu   sync.Mutex
	httpReqs map[string]*obs.Counter
}

// newTelemetry builds the registry, the tracer and the static
// instruments. worker labels this process's spans ("coordinator", the
// worker's own URL, or "local"). enabled=false leaves the registry and
// tracer nil: every instrument comes back nil and no-ops.
func newTelemetry(worker string, enabled bool) *telemetry {
	var reg *obs.Registry
	var tracer *obs.Tracer
	if enabled {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(worker, 0, 0)
	}
	t := &telemetry{
		reg:    reg,
		tracer: tracer,

		pointsCommitted: reg.Counter("wt_points_committed_total",
			"Design points committed by this process's jobs (workers count their shards, a coordinator its merged jobs)."),
		pointsSimulated: reg.Counter("wt_point_outcomes_total",
			"Committed design points by outcome.", "outcome", "simulated"),
		pointsCached: reg.Counter("wt_point_outcomes_total",
			"Committed design points by outcome.", "outcome", "cached"),
		pointsScreened: reg.Counter("wt_point_outcomes_total",
			"Committed design points by outcome.", "outcome", "screened"),
		pointsPruned: reg.Counter("wt_point_outcomes_total",
			"Committed design points by outcome.", "outcome", "pruned"),
		pointRun: reg.Histogram("wt_point_run_seconds",
			"Wall-clock per simulated design point (build + gate wait + simulation).", obs.DurationBuckets),
		simEvents: reg.Counter("wt_sim_events_total",
			"Simulation events executed, flushed at point commit."),
		simTrials: reg.Counter("wt_sim_trials_total",
			"Simulation trials executed, flushed at point commit."),

		journalAppends: reg.Counter("wt_journal_appends_total",
			"Records appended to the job journal."),
		journalFsync: reg.Histogram("wt_journal_fsync_seconds",
			"Journal append latency including the fsync.", obs.DurationBuckets),

		shardsLaunched: reg.Counter("wt_fleet_shards_launched_total",
			"Shard streams launched at workers (including failover relaunches)."),
		shardRetries: reg.Counter("wt_fleet_shard_retries_total",
			"Shard failover re-plans after a worker stream failed or stalled."),
		workerFailures: reg.Counter("wt_fleet_worker_failures_total",
			"Worker shard streams that ended in failure."),
		degradedJobs: reg.Counter("wt_fleet_degraded_jobs_total",
			"Jobs that degraded to coordinator-local execution."),
		streamResumes: reg.Counter("wt_stream_resumes_total",
			"Durable job streams resumed with a from>0 cursor."),

		jobsDone: reg.Counter("wt_jobs_total",
			"Jobs finished, by terminal state.", "state", "done"),
		jobsFailed: reg.Counter("wt_jobs_total",
			"Jobs finished, by terminal state.", "state", "failed"),
		jobsCancelled: reg.Counter("wt_jobs_total",
			"Jobs finished, by terminal state.", "state", "cancelled"),

		httpReqs: make(map[string]*obs.Counter),
	}
	reg.GaugeFunc("wt_build_info",
		"Always 1, with the build identity as labels.",
		func() float64 { return 1 },
		"version", Version, "go", obs.ReadRuntime().GoVersion)
	return t
}

// bind registers the scrape-time bridges that read live server state —
// cache stats, pool depth, job registry, Go runtime. Called once all of
// the server's subsystems exist.
func (t *telemetry) bind(s *Server) {
	if t == nil || t.reg == nil {
		return
	}
	r := t.reg
	r.GaugeFunc("wt_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })

	// Pool: the live wait histogram and queue gauge are wired into the
	// Pool itself; capacity and in-use are bridges.
	r.GaugeFunc("wt_pool_capacity", "Simulation pool slot count.",
		func() float64 { return float64(s.pool.Cap()) })
	r.GaugeFunc("wt_pool_in_use", "Simulation pool slots currently held.",
		func() float64 { return float64(s.pool.InUse()) })

	// Trial cache, per tier. The bridges read Cache.Stats() — the same
	// counters /v1/cache reports — so the scrape can never disagree with
	// the cache's own accounting.
	cs := func(read func(Stats) float64) func() float64 {
		return func() float64 { return read(s.cache.Stats()) }
	}
	r.GaugeFunc("wt_cache_entries", "Trial cache memory-tier entries.",
		cs(func(st Stats) float64 { return float64(st.Entries) }))
	r.CounterFunc("wt_cache_hits_total", "Trial cache memory-tier hits.",
		cs(func(st Stats) float64 { return float64(st.Hits) }))
	r.CounterFunc("wt_cache_disk_hits_total", "Trial cache disk-tier hits.",
		cs(func(st Stats) float64 { return float64(st.DiskHits) }))
	r.CounterFunc("wt_cache_peer_hits_total", "Trial cache peer-tier hits.",
		cs(func(st Stats) float64 { return float64(st.PeerHits) }))
	r.CounterFunc("wt_cache_misses_total", "Trial cache misses (all tiers).",
		cs(func(st Stats) float64 { return float64(st.Misses) }))
	r.CounterFunc("wt_cache_puts_total", "Trial cache inserts.",
		cs(func(st Stats) float64 { return float64(st.Puts) }))
	r.CounterFunc("wt_cache_evictions_total", "Trial cache memory-tier evictions.",
		cs(func(st Stats) float64 { return float64(st.Evictions) }))
	r.CounterFunc("wt_cache_peer_retries_total", "Transient-status peer fetch retries.",
		cs(func(st Stats) float64 { return float64(st.PeerRetries) }))
	r.CounterFunc("wt_cache_peer_skips_total", "Peer fetches skipped because the owner was down.",
		cs(func(st Stats) float64 { return float64(st.PeerSkips) }))

	r.GaugeFunc("wt_jobs_running", "Jobs currently running.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, j := range s.jobs {
				if j.info.State == JobRunning {
					n++
				}
			}
			return float64(n)
		})

	// Go runtime. Cheap reads only — no ReadMemStats per scrape; heap
	// numbers come from /v1/stats where a stop-the-world is acceptable.
	r.GaugeFunc("wt_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}

// observeHTTP records one served request.
func (t *telemetry) observeHTTP(route string, status int) {
	if t == nil || t.reg == nil {
		return
	}
	key := route + " " + strconv.Itoa(status)
	t.httpMu.Lock()
	c := t.httpReqs[key]
	if c == nil {
		c = t.reg.Counter("wt_http_requests_total",
			"HTTP requests served, by route pattern and status.",
			"route", route, "code", strconv.Itoa(status))
		t.httpReqs[key] = c
	}
	t.httpMu.Unlock()
	c.Inc()
}

// startSpan opens a span under a job's trace (nil-safe at every layer).
func (t *telemetry) startSpan(trace traceCtx, parent, name string) *obs.SpanHandle {
	if t == nil || trace.id == "" {
		return nil
	}
	return t.tracer.StartSpan(trace.id, parent, name)
}

// observePoint records one committed point's counters plus its span
// under the job's trace. The span reuses the outcome's measured
// Started/Elapsed, so tracing adds no clock reads to the commit path.
func (t *telemetry) observePoint(trace traceCtx, parent string, out core.PointOutcome) {
	if t == nil {
		return
	}
	name := "simulate"
	switch {
	case out.Pruned:
		name = "pruned"
		t.pointsPruned.Inc()
	case out.Screened:
		name = "screened"
		t.pointsScreened.Inc()
	case out.FromCache:
		name = "cache_hit"
		t.pointsCached.Inc()
	default:
		t.pointsSimulated.Inc()
		t.pointRun.Observe(out.Elapsed.Seconds())
		if out.Result != nil {
			t.simEvents.Add(out.Result.EventsTotal)
			t.simTrials.Add(uint64(out.Result.Trials))
		}
	}
	if trace.id == "" {
		return
	}
	sp := obs.Span{
		TraceID: trace.id, SpanID: t.tracer.NewSpanID(), Parent: parent,
		Name: name, Start: out.Started, Duration: out.Elapsed,
		Attrs: map[string]string{"index": strconv.Itoa(out.Index)},
	}
	if sp.Start.IsZero() {
		// Pruned points (and merged remote events) carry no local timing.
		sp.Start = time.Now()
	}
	if out.Waited > 0 {
		sp.Attrs["gate_wait"] = out.Waited.String()
	}
	t.tracer.Add(sp)
}

// jobTrace returns a job's trace context and root span id.
func (s *Server) jobTrace(id string) (trace traceCtx, root string) {
	if s.tel == nil || s.tel.tracer == nil {
		return traceCtx{}, ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		return j.trace, j.root.ID()
	}
	return traceCtx{}, ""
}

// statusWriter captures the response status for per-route metrics while
// passing Flush through — the NDJSON streaming contract.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// route registers a handler on mux, instrumented with the per-route
// latency histogram and request counter when telemetry is on. pattern is
// the ServeMux pattern ("POST /v1/query"); the route label is the
// pattern without its method.
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	if s.tel == nil || s.tel.reg == nil {
		mux.HandleFunc(pattern, h)
		return
	}
	label := pattern
	if _, p, ok := strings.Cut(pattern, " "); ok {
		label = p
	}
	lat := s.tel.reg.Histogram("wt_http_request_seconds",
		"HTTP request latency by route pattern (streams count until the last byte).",
		obs.DurationBuckets, "route", label)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		// Record in a defer so aborted streams (chaos resets panic with
		// http.ErrAbortHandler) are still counted on their way up.
		defer func() {
			lat.Observe(time.Since(t0).Seconds())
			s.tel.observeHTTP(label, sw.status)
		}()
		h(sw, r)
	})
}

// DebugHandler returns the diagnostics mux the -pprof flag serves on a
// separate listener: net/http/pprof plus /metrics and /v1/stats, kept
// off the serving port so profiling a wedged daemon never competes with
// (or leaks onto) the query surface.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// expositionContentType is the Prometheus text format version header
// every text telemetry endpoint serves.
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// noStore marks a telemetry response uncacheable. Every observability
// endpoint sets it: a scrape, a stats snapshot or an alert list served
// stale by an intermediary is worse than no answer — it reports a fleet
// state that no longer exists.
func noStore(w http.ResponseWriter) {
	w.Header().Set("Cache-Control", "no-store")
}

// handleMetrics renders the Prometheus exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	if s.tel == nil || s.tel.reg == nil {
		http.Error(w, "telemetry disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", expositionContentType)
	s.tel.reg.WritePrometheus(w)
}

// partialHeader flags a federated fleet view that is missing at least
// one member (its last scrape failed). The body still serves everything
// known — absence is visible both here and as wt_fleet_member_up 0.
const partialHeader = "X-WT-Partial"

// handleFleetMetrics renders the merged telemetry history's latest
// samples — on a coordinator, the whole fleet per instance; elsewhere,
// this process's own sampled series. Exposition format, promlint-clean.
func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	if s.history == nil {
		http.Error(w, "telemetry disabled", http.StatusNotFound)
		return
	}
	if s.fed.Partial() {
		w.Header().Set(partialHeader, "true")
	}
	w.Header().Set("Content-Type", expositionContentType)
	s.history.WriteLatestPrometheus(w)
}

// HistoryResponse is the GET /v1/metrics/history payload: one metric's
// retained samples per series over the requested window.
type HistoryResponse struct {
	Name   string            `json:"name"`
	Window string            `json:"window"`
	Series []obs.SeriesRange `json:"series"`
}

// handleMetricsHistory answers JSON range queries over the telemetry
// history: GET /v1/metrics/history?name=wt_pool_queue_depth&window=5m.
// name may be a family or a histogram expansion (_bucket/_sum/_count);
// window defaults to 5m and is capped only by the ring depth.
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	if s.history == nil {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "telemetry disabled"})
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, ErrorEvent{Type: "error", Error: "missing name parameter"})
		return
	}
	window := 5 * time.Minute
	if v := r.URL.Query().Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, ErrorEvent{Type: "error", Error: "bad window: want a positive Go duration like 30s"})
			return
		}
		window = d
	}
	series := s.history.Range(name, window, time.Now())
	if series == nil {
		series = []obs.SeriesRange{}
	}
	writeJSON(w, http.StatusOK, HistoryResponse{Name: name, Window: window.String(), Series: series})
}

// handleAlerts serves the alert engine's current instance set.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	if s.alerts == nil {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "telemetry disabled"})
		return
	}
	writeJSON(w, http.StatusOK, s.alerts.Snapshot())
}

// buildIdentity is the version block shared by /v1/healthz and
// /v1/stats.
type buildIdentity struct {
	Version       string  `json:"version"`
	GoVersion     string  `json:"go"`
	Revision      string  `json:"revision,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) buildIdentity() buildIdentity {
	rt := obs.ReadRuntime()
	return buildIdentity{
		Version:       Version,
		GoVersion:     rt.GoVersion,
		Revision:      rt.Revision,
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
}

// ServerStats is the GET /v1/stats payload: a one-shot operational
// snapshot (build, runtime, pool, cache, jobs).
type ServerStats struct {
	Status string `json:"status"`
	buildIdentity
	Runtime obs.RuntimeStats `json:"runtime"`
	Pool    struct {
		Capacity int `json:"capacity"`
		InUse    int `json:"in_use"`
	} `json:"pool"`
	Cache Stats `json:"cache"`
	Jobs  struct {
		Running int `json:"running"`
		Total   int `json:"total"`
	} `json:"jobs"`
}

// handleStats answers GET /v1/stats. Unlike /metrics it works with
// telemetry disabled — it reads live state, not the registry.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	var st ServerStats
	st.buildIdentity = s.buildIdentity()
	st.Runtime = obs.ReadRuntime()
	st.Pool.Capacity, st.Pool.InUse = s.pool.Cap(), s.pool.InUse()
	st.Cache = s.cache.Stats()
	s.mu.Lock()
	st.Status = "ok"
	if s.draining {
		st.Status = "draining"
	}
	st.Jobs.Total = len(s.jobs)
	for _, j := range s.jobs {
		if j.info.State == JobRunning {
			st.Jobs.Running++
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// TraceResponse is the GET /v1/jobs/{id}/trace (and /v1/trace/{id})
// payload.
type TraceResponse struct {
	Job     string     `json:"job,omitempty"`
	TraceID string     `json:"trace_id"`
	Dropped uint64     `json:"dropped_spans,omitempty"`
	Spans   []obs.Span `json:"spans"`
}

// handleTrace serves this process's local spans for a trace id — the
// peer endpoint a coordinator merges worker spans from.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil || s.tel.tracer == nil {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "tracing disabled"})
		return
	}
	id := r.PathValue("id")
	spans, dropped := s.tel.tracer.Spans(id)
	if spans == nil {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "no such trace"})
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{TraceID: id, Dropped: dropped, Spans: spans})
}

// handleJobTrace assembles a job's full trace tree. On a coordinator it
// merges every worker's spans for the job's trace id (best-effort: an
// unreachable worker just contributes nothing), so a fleet job answers
// with one connected tree spanning coordinator and workers.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil || s.tel.tracer == nil {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "tracing disabled"})
		return
	}
	info, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "no such job"})
		return
	}
	if info.TraceID == "" {
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "job has no trace"})
		return
	}
	spans, dropped := s.tel.tracer.Spans(info.TraceID)
	if s.fleet != nil {
		spans, dropped = s.mergePeerSpans(r.Context(), info.TraceID, spans, dropped)
	}
	if spans == nil {
		// The job is known but its trace is gone: the tracer's LRU evicted
		// it to admit newer jobs' traces. Distinct from "no such job" so a
		// client can report the table as fine and only the trace as lost.
		writeJSON(w, http.StatusNotFound, ErrorEvent{Type: "error", Error: "trace evicted"})
		return
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	writeJSON(w, http.StatusOK, TraceResponse{
		Job: info.ID, TraceID: info.TraceID, Dropped: dropped, Spans: spans,
	})
}

// mergePeerSpans fetches every fleet worker's spans for a trace and
// appends them, de-duplicated by span id.
func (s *Server) mergePeerSpans(ctx context.Context, traceID string, spans []obs.Span, dropped uint64) ([]obs.Span, uint64) {
	seen := make(map[string]bool, len(spans))
	for _, sp := range spans {
		seen[sp.SpanID] = true
	}
	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	for _, peer := range s.cfg.Peers {
		req, err := http.NewRequestWithContext(ctx, "GET",
			strings.TrimRight(peer, "/")+"/v1/trace/"+traceID, nil)
		if err != nil {
			continue
		}
		resp, err := s.fleet.client.Do(req)
		if err != nil {
			continue
		}
		var tr TraceResponse
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		for _, sp := range tr.Spans {
			if !seen[sp.SpanID] {
				seen[sp.SpanID] = true
				spans = append(spans, sp)
			}
		}
		dropped += tr.Dropped
	}
	return spans, dropped
}
