package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// bigQuery is a 12-point sweep, slow enough that an in-process "kill
// -9" (crashForTest) reliably lands mid-run.
const bigQuery = `SIMULATE availability
VARY cluster.nodes IN (5, 6, 7, 8), storage.replication IN (1, 2, 3)
WITH users = 20, object_mb = 10, trials = 3, horizon_hours = 200
WHERE sla.availability >= 0.2`

// collectJob follows a durable job to its terminal line, returning the
// raw NDJSON lines.
func collectJob(t testing.TB, srv *Server, id string, from int) [][]byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var lines [][]byte
	err := srv.Follow(ctx, id, from, func(line []byte) error {
		lines = append(lines, append([]byte(nil), line...))
		return nil
	})
	if err != nil {
		t.Fatalf("Follow(%s, from=%d): %v", id, from, err)
	}
	return lines
}

// crashAtPoint submits query on srv and simulates kill -9 with exactly
// k points committed: the point gate blocks the k'th (0-based) commit
// before it reaches the journal, the "kill" lands, then execution is
// released into its cancelled context. Returns the job id.
func crashAtPoint(t testing.TB, srv *Server, query string, k int) string {
	t.Helper()
	gate := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.pointGate = func(index int) {
		if index >= k {
			once.Do(func() { close(gate) })
			<-release
		}
	}
	id, err := srv.Submit(QueryRequest{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate:
	case <-time.After(time.Minute):
		t.Fatalf("job never reached point %d", k)
	}
	srv.crashForTest()
	close(release)
	srv.Close()
	return id
}

// tableOf extracts the rendered table from a terminal result line.
func tableOf(t testing.TB, lines [][]byte) string {
	t.Helper()
	if len(lines) == 0 {
		t.Fatal("empty job stream")
	}
	var ev struct {
		Type  string `json:"type"`
		Table string `json:"table"`
		Error string `json:"error"`
	}
	last := lines[len(lines)-1]
	if err := json.Unmarshal(last, &ev); err != nil {
		t.Fatalf("bad terminal line %s: %v", last, err)
	}
	if ev.Type != "result" {
		t.Fatalf("job ended with %s", last)
	}
	return ev.Table
}

// TestCrashResumeGolden is the tentpole's acceptance check: a daemon
// killed mid-sweep (no goodbye, journals abandoned exactly as kill -9
// leaves them) and restarted over the same journal + cache directories
// must resurrect the job under its original id, resume only the
// undelivered points, and produce the byte-identical final table — with
// the committed prefix served from journal + cache, not re-simulated.
func TestCrashResumeGolden(t *testing.T) {
	_, single := newTestServer(t, Config{PoolSize: 2})
	want := lastEvent(t, postQuery(t, single, bigQuery))
	wantTable, _ := want["table"].(string)
	if wantTable == "" {
		t.Fatal("golden run produced no table")
	}

	journalDir, cacheDir := t.TempDir(), t.TempDir()
	a, err := New(Config{PoolSize: 1, JournalDir: journalDir, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	// Freeze the job the moment its third point tries to commit: exactly
	// two points are fsync'd when the "kill" lands — a deterministic
	// crash position, not a sleep race.
	const seen = 2
	id := crashAtPoint(t, a, bigQuery, seen)

	b, err := New(Config{PoolSize: 2, JournalDir: journalDir, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	resumed, warns, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d jobs, want 1 (warnings: %v)", resumed, warns)
	}
	info, ok := b.Job(id)
	if !ok || !info.Resumed {
		t.Fatalf("job %s not resurrected as resumed: %+v (ok=%v)", id, info, ok)
	}

	lines := collectJob(t, b, id, 0)
	if got := tableOf(t, lines); got != wantTable {
		t.Fatalf("resumed table differs from uninterrupted run:\n--- want ---\n%s--- got ---\n%s", wantTable, got)
	}
	points := 0
	for _, ln := range lines {
		var ev PointEvent
		if err := json.Unmarshal(ln, &ev); err == nil && ev.Type == "point" {
			points++
			if ev.Done != points || ev.Total != 12 {
				t.Fatalf("replayed stream out of order: done=%d total=%d at position %d", ev.Done, ev.Total, points)
			}
		}
	}
	if points != 12 {
		t.Fatalf("resumed stream delivered %d point events, want 12", points)
	}
	// The committed prefix must not have been re-simulated: every point
	// the first daemon finished was journaled and/or disk-cached, so the
	// restarted daemon's cache misses are bounded by the points the
	// crashed daemon never completed.
	if misses := b.Cache().Stats().Misses; misses > uint64(12-seen) {
		t.Fatalf("restarted daemon re-simulated committed work: %d cache misses, want <= %d", misses, 12-seen)
	}
	// The journal sticks around for replay until eviction; a fresh
	// Follow must still replay the identical stream.
	again := collectJob(t, b, id, 0)
	if len(again) != len(lines) {
		t.Fatalf("second replay has %d lines, first %d", len(again), len(lines))
	}
	for i := range lines {
		if !bytes.Equal(lines[i], again[i]) {
			t.Fatalf("replay not byte-identical at line %d:\n%s\nvs\n%s", i, lines[i], again[i])
		}
	}
}

// TestStreamResumeFromOffset: Follow(from=N) must deliver exactly the
// suffix of Follow(from=0) with the first N point events removed,
// byte-for-byte — the contract the wtql reconnect logic depends on.
func TestStreamResumeFromOffset(t *testing.T) {
	srv, err := New(Config{PoolSize: 2, JournalDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	id, err := srv.Submit(QueryRequest{Query: smallQuery})
	if err != nil {
		t.Fatal(err)
	}
	full := collectJob(t, srv, id, 0)
	part := collectJob(t, srv, id, 2)

	var want [][]byte
	points := 0
	for _, ln := range full {
		if bytes.Contains(ln, []byte(`"type":"point"`)) {
			if points++; points <= 2 {
				continue
			}
		}
		want = append(want, ln)
	}
	if len(part) != len(want) {
		t.Fatalf("from=2 stream has %d lines, want %d", len(part), len(want))
	}
	for i := range want {
		if !bytes.Equal(part[i], want[i]) {
			t.Fatalf("from=2 line %d differs:\n%s\nvs\n%s", i, part[i], want[i])
		}
	}
}

// TestHTTPStreamEndpointResume covers the wire version: GET
// /v1/jobs/{id}/stream?from=N replays the suffix and tails to the
// terminal line; unknown jobs 404; a bad cursor 400s.
func TestHTTPStreamEndpointResume(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 2, JournalDir: t.TempDir()})
	id, err := srv.Submit(QueryRequest{Query: smallQuery})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream?from=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream endpoint returned %d", resp.StatusCode)
	}
	var types []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
	}
	// 4-point sweep, from=3: job line, point 4, result.
	if want := []string{"job", "point", "result"}; strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("from=3 stream shape = %v, want %v", types, want)
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/job-999/stream"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job stream returned %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream?from=wat"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad cursor returned %d, want 400", resp.StatusCode)
		}
	}
}

// TestQueryFromSuppression: a re-submitted query with from=N (the
// coordinator-takeover path) executes the full sweep but streams only
// the undelivered points — done numbering stays global, the table is
// complete.
func TestQueryFromSuppression(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 2, JournalDir: t.TempDir()})
	want := lastEvent(t, postQuery(t, ts, smallQuery))

	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		bytes.NewReader(mustJSON(t, QueryRequest{Query: smallQuery, From: 2})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var points []int
	var table string
	for sc.Scan() {
		var ev struct {
			Type  string `json:"type"`
			Done  int    `json:"done"`
			Table string `json:"table"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case "point":
			points = append(points, ev.Done)
		case "result":
			table = ev.Table
		}
	}
	if len(points) != 2 || points[0] != 3 || points[1] != 4 {
		t.Fatalf("from=2 streamed done=%v, want [3 4]", points)
	}
	if table != want["table"] {
		t.Fatalf("from=2 table differs from full run")
	}
}

// TestJournalDisabledMatchesLegacy: -journal "" must behave exactly as
// before the durability layer existed — inline streaming, identical
// event shapes, a 404 from the stream endpoint.
func TestJournalDisabledMatchesLegacy(t *testing.T) {
	srvOn, tsOn := newTestServer(t, Config{PoolSize: 2, JournalDir: t.TempDir()})
	srvOff, tsOff := newTestServer(t, Config{PoolSize: 2})
	if srvOn.journal == nil || srvOff.journal != nil {
		t.Fatal("journal wiring inverted")
	}

	on := postQuery(t, tsOn, smallQuery)
	off := postQuery(t, tsOff, smallQuery)
	if len(on) != len(off) {
		t.Fatalf("journaled stream has %d events, inline %d", len(on), len(off))
	}
	tOn := lastEvent(t, on)
	tOff := lastEvent(t, off)
	if tOn["table"] != tOff["table"] {
		t.Fatalf("tables differ with journaling on/off")
	}

	// The disabled daemon keeps no stream to resume.
	events := postQuery(t, tsOff, smallQuery)
	id, _ := events[0]["id"].(string)
	resp, err := http.Get(tsOff.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("inline job stream returned %d, want 404", resp.StatusCode)
	}
}

// TestCoordinatorTakeoverGolden: kill the fleet coordinator mid-merge
// and stand up a replacement over the same journal directory. The new
// coordinator must reconstruct the job from journal + caches, re-plan
// only the missing shards, and deliver the byte-identical table under
// the original job id.
func TestCoordinatorTakeoverGolden(t *testing.T) {
	_, single := newTestServer(t, Config{PoolSize: 2})
	want := lastEvent(t, postQuery(t, single, bigQuery))
	wantTable, _ := want["table"].(string)

	// Two live workers shared by both coordinator generations.
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		_, ts := newTestServer(t, Config{PoolSize: 2, CacheDir: t.TempDir()})
		urls[i] = ts.URL
	}

	journalDir := t.TempDir()
	c1, err := New(Config{Coordinator: true, Peers: urls, JournalDir: journalDir})
	if err != nil {
		t.Fatal(err)
	}
	id := crashAtPoint(t, c1, bigQuery, 2)

	c2, err := New(Config{Coordinator: true, Peers: urls, JournalDir: journalDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	resumed, warns, err := c2.Recover()
	if err != nil || resumed != 1 {
		t.Fatalf("takeover resumed %d jobs (err=%v, warnings=%v)", resumed, err, warns)
	}

	lines := collectJob(t, c2, id, 0)
	if got := tableOf(t, lines); got != wantTable {
		t.Fatalf("takeover table differs from single-daemon run:\n--- want ---\n%s--- got ---\n%s", wantTable, got)
	}
	points := 0
	for _, ln := range lines {
		var ev PointEvent
		if json.Unmarshal(ln, &ev) == nil && ev.Type == "point" {
			points++
			if ev.Done != points {
				t.Fatalf("takeover stream out of order at %d: %s", points, ln)
			}
		}
	}
	if points != 12 {
		t.Fatalf("takeover streamed %d points, want 12", points)
	}
}

// TestChaosCutResume: with cut=3 chaos aborting every streaming
// response after three writes, a client that reconnects with
// from=<received> (the wtql/wtload loop) must still converge to the
// exact table — end-to-end proof that resume survives repeated
// connection loss.
func TestChaosCutResume(t *testing.T) {
	_, clean := newTestServer(t, Config{PoolSize: 2})
	want := lastEvent(t, postQuery(t, clean, smallQuery))

	srv, err := New(Config{
		PoolSize:   2,
		JournalDir: t.TempDir(),
		Chaos:      NewFaultInjector(FaultConfig{CutEvery: 3}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		bytes.NewReader(mustJSON(t, QueryRequest{Query: smallQuery})))
	if err != nil {
		t.Fatal(err)
	}
	var jobID, table string
	points, attempts := 0, 1
	for table == "" {
		jid, pts, tbl := drainCutStream(t, resp)
		if jid != "" {
			jobID = jid
		}
		points += pts
		if tbl != "" {
			table = tbl
			break
		}
		if attempts++; attempts > 20 {
			t.Fatalf("no result after %d attempts (%d points)", attempts, points)
		}
		if jobID == "" {
			t.Fatal("stream died before the job event")
		}
		resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream?from=%d", ts.URL, jobID, points))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("resume attempt returned %d", resp.StatusCode)
		}
	}
	if attempts < 2 {
		t.Fatalf("chaos cut never fired (attempts=%d) — the test proved nothing", attempts)
	}
	if points != 4 {
		t.Fatalf("received %d point events across %d attempts, want exactly 4 (no duplicates, no loss)", points, attempts)
	}
	if table != want["table"] {
		t.Fatalf("resumed table differs from clean run:\n--- want ---\n%v--- got ---\n%v", want["table"], table)
	}
	if cuts := srv.chaos.Stats().Cuts; cuts == 0 {
		t.Fatalf("injector recorded no cuts")
	}
}

// drainCutStream reads one chaos-truncated connection to its (possibly
// violent) end, returning what arrived.
func drainCutStream(t *testing.T, resp *http.Response) (jobID string, points int, table string) {
	t.Helper()
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)
	for {
		line, err := rd.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var ev struct {
				Type  string `json:"type"`
				ID    string `json:"id"`
				Table string `json:"table"`
			}
			if json.Unmarshal(bytes.TrimSpace(line), &ev) == nil {
				switch ev.Type {
				case "job":
					jobID = ev.ID
				case "point":
					points++
				case "result":
					table = ev.Table
				}
			}
		}
		if err != nil {
			if err == io.EOF && table != "" {
				return jobID, points, table
			}
			return jobID, points, table
		}
	}
}
