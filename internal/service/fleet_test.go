package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// startFleet launches n workers (each with its own cache, peered over
// the full member list) plus one coordinator sharding across them. It
// returns the coordinator's server and test URL, and the worker
// servers in URL order.
func startFleet(t testing.TB, n int, diskCache bool) (*Server, *httptest.Server, []*Server, []string) {
	t.Helper()
	workers := make([]*Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := Config{PoolSize: 2}
		if diskCache {
			cfg.CacheDir = t.TempDir()
		}
		srv, ts := newTestServer(t, cfg)
		workers[i] = srv
		urls[i] = ts.URL
	}
	// httptest URLs exist only after the servers start, so peering is
	// wired afterwards — same ring, each worker its own self.
	for i, w := range workers {
		w.Cache().EnablePeering(urls, urls[i], nil)
	}
	coord, cts := newTestServer(t, Config{Coordinator: true, Peers: urls})
	return coord, cts, workers, urls
}

// TestFleetByteIdenticalMerge is the tentpole's golden check: a sweep
// sharded across two workers and merged by the coordinator must render
// the very bytes a single daemon produces, with point events arriving
// in global order and labelled with their serving worker.
func TestFleetByteIdenticalMerge(t *testing.T) {
	_, single := newTestServer(t, Config{PoolSize: 2})
	want := lastEvent(t, postQuery(t, single, smallQuery))

	_, cts, _, urls := startFleet(t, 2, false)
	events := postQuery(t, cts, smallQuery)
	got := lastEvent(t, events)

	if got["type"] != "result" {
		t.Fatalf("fleet query ended with %v", got)
	}
	wantTable, _ := want["table"].(string)
	gotTable, _ := got["table"].(string)
	if wantTable == "" || wantTable != gotTable {
		t.Fatalf("fleet table differs from single-daemon run:\n--- single ---\n%s--- fleet ---\n%s",
			wantTable, gotTable)
	}

	valid := map[string]bool{}
	for _, u := range urls {
		valid[u] = true
	}
	done := 0
	for _, ev := range events {
		if ev["type"] != "point" {
			continue
		}
		done++
		if int(ev["done"].(float64)) != done || int(ev["total"].(float64)) != 4 {
			t.Fatalf("merged point events out of order: done=%v total=%v at position %d",
				ev["done"], ev["total"], done)
		}
		w, _ := ev["worker"].(string)
		if !valid[w] {
			t.Fatalf("point event names unknown worker %q", w)
		}
	}
	if done != 4 {
		t.Fatalf("coordinator streamed %d point events, want 4", done)
	}
}

// TestFleetSecondPassHitsCaches reruns a sweep through the coordinator:
// every point must come back cached, because each point re-shards to
// the worker that simulated it the first time.
func TestFleetSecondPassHitsCaches(t *testing.T) {
	_, cts, workers, _ := startFleet(t, 2, false)

	cold := lastEvent(t, postQuery(t, cts, smallQuery))
	if cold["cache_hits"].(float64) != 0 {
		t.Fatalf("cold fleet run reported cache hits: %v", cold["cache_hits"])
	}
	warm := lastEvent(t, postQuery(t, cts, smallQuery))
	executed := warm["executed"].(float64)
	hits := warm["cache_hits"].(float64)
	if executed == 0 || hits < 0.9*executed {
		t.Fatalf("warm fleet run hit %v of %v executed points, want >= 90%%", hits, executed)
	}
	if coldT, warmT := cold["table"], warm["table"]; coldT != warmT {
		t.Fatalf("warm fleet table differs from cold:\n%v\nvs\n%v", coldT, warmT)
	}
	var hitsTotal uint64
	for _, w := range workers {
		hitsTotal += w.Cache().Stats().Hits
	}
	if hitsTotal < 4 {
		t.Fatalf("workers' caches recorded %d hits across the warm pass, want >= 4", hitsTotal)
	}
}

// TestFleetDeadWorkerFailsOver: a worker that is down before the query
// arrives must not fail the job — its shard fails over to the survivor
// and the merged table stays byte-identical to a single-daemon run,
// with no degradation (the fleet, not the coordinator, served it).
func TestFleetDeadWorkerFailsOver(t *testing.T) {
	_, single := newTestServer(t, Config{PoolSize: 2})
	want := lastEvent(t, postQuery(t, single, smallQuery))

	workers := make([]*Server, 2)
	urls := make([]string, 2)
	tss := make([]*httptest.Server, 2)
	for i := range workers {
		srv, ts := newTestServer(t, Config{PoolSize: 2})
		workers[i], tss[i], urls[i] = srv, ts, ts.URL
	}
	_, cts := newTestServer(t, Config{Coordinator: true, Peers: urls})

	tss[1].Close() // one worker is down before the query arrives

	events := postQuery(t, cts, smallQuery)
	final := lastEvent(t, events)
	if final["type"] != "result" {
		t.Fatalf("fleet with a dead worker ended with %v, want failover to the survivor", final)
	}
	if final["table"] != want["table"] {
		t.Fatalf("failover table differs from single-daemon run:\n--- single ---\n%v--- fleet ---\n%v",
			want["table"], final["table"])
	}
	if final["degraded"] != false {
		t.Fatalf("failover to a healthy survivor reported degraded=%v", final["degraded"])
	}
}

// TestFleetSetStatementFallsBackLocally checks the non-shardable path:
// SET executes on the coordinator itself rather than erroring.
func TestFleetSetStatementFallsBackLocally(t *testing.T) {
	_, cts, _, _ := startFleet(t, 2, false)
	events := postQuery(t, cts, "SET runner.crn = on")
	final := lastEvent(t, events)
	if final["type"] != "result" {
		t.Fatalf("SET on a coordinator ended with %v", final)
	}
}

// TestFleetPrunedSweepFallsBackLocally: MONOTONE pruning decisions
// depend on the whole committed prefix, so the coordinator must run the
// sweep locally — and still produce a correct result.
func TestFleetPrunedSweepFallsBackLocally(t *testing.T) {
	_, cts, workers, _ := startFleet(t, 2, false)
	q := `SIMULATE availability
VARY cluster.nodes IN (5, 6, 7, 8) MONOTONE
WITH users = 20, object_mb = 10, trials = 2, horizon_hours = 200
WHERE sla.availability >= 0.2`
	final := lastEvent(t, postQuery(t, cts, q))
	if final["type"] != "result" {
		t.Fatalf("pruned sweep on a coordinator ended with %v", final)
	}
	for i, w := range workers {
		if jobs := w.Jobs(); len(jobs) != 0 {
			t.Fatalf("pruned sweep was sharded: worker %d saw jobs %+v", i, jobs)
		}
	}
}

// TestWorkerSubsetExecution drives the worker half of the protocol
// directly: a Points shard must execute only those indices and stream
// their global positions.
func TestWorkerSubsetExecution(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 2})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		bytes.NewReader(mustJSON(t, QueryRequest{Query: smallQuery, Points: []int{1, 3}})))
	if err != nil {
		t.Fatal(err)
	}
	events := decodeStream(t, resp)
	var indices []int
	for _, ev := range events {
		if ev["type"] == "point" {
			indices = append(indices, int(ev["index"].(float64)))
			if ev["total"].(float64) != 2 {
				t.Fatalf("subset total = %v, want 2", ev["total"])
			}
		}
	}
	if len(indices) != 2 || indices[0] != 1 || indices[1] != 3 {
		t.Fatalf("subset executed indices %v, want [1 3]", indices)
	}
	final := lastEvent(t, events)
	if final["type"] != "result" || final["executed"].(float64) != 2 {
		t.Fatalf("subset final event = %v", final)
	}
}

// TestWorkerRejectsBadSubset: a non-ascending or out-of-range shard is
// a client error, not a panic.
func TestWorkerRejectsBadSubset(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 2})
	for _, points := range [][]int{{3, 1}, {0, 0}, {0, 99}, {-1}} {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			bytes.NewReader(mustJSON(t, QueryRequest{Query: smallQuery, Points: points})))
		if err != nil {
			t.Fatal(err)
		}
		final := lastEvent(t, decodeStream(t, resp))
		if final["type"] != "error" {
			t.Fatalf("subset %v accepted: %v", points, final)
		}
	}
}

// TestRingDeterministicAndComplete checks the consistent-hash ring:
// same members in any order agree on every owner, ownership spans all
// members on a reasonable key population, and removing a member only
// moves the removed member's keys.
func TestRingDeterministicAndComplete(t *testing.T) {
	a := NewRing([]string{"http://w1", "http://w2", "http://w3"})
	b := NewRing([]string{"http://w3", "http://w1", "http://w2"})

	keys := make([]string, 300)
	for i := range keys {
		keys[i] = strings.Repeat("0", 60) + string(rune('a'+i%26)) + strings.Repeat("f", 3)
	}
	owned := map[string]int{}
	for _, k := range keys {
		oa, ok := a.Owner(k)
		ob, _ := b.Owner(k)
		if !ok || oa != ob {
			t.Fatalf("rings disagree on %q: %q vs %q", k, oa, ob)
		}
		owned[oa]++
	}
	if len(owned) != 3 {
		t.Fatalf("300 keys landed on %d of 3 members: %v", len(owned), owned)
	}

	// Membership change: keys not owned by w3 must keep their owner.
	c := NewRing([]string{"http://w1", "http://w2"})
	for _, k := range keys {
		before, _ := a.Owner(k)
		after, _ := c.Owner(k)
		if before != "http://w3" && before != after {
			t.Fatalf("removing w3 moved %q from %q to %q", k, before, after)
		}
	}

	// OwnerExcluding never returns the excluded member, and an empty
	// ring (or fully-excluded ring) reports ok=false.
	for _, k := range keys {
		o, ok := a.OwnerExcluding(k, "http://w1")
		if !ok || o == "http://w1" {
			t.Fatalf("OwnerExcluding returned %q ok=%v", o, ok)
		}
	}
	if _, ok := NewRing(nil).Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	solo := NewRing([]string{"http://only"})
	if _, ok := solo.OwnerExcluding("x", "http://only"); ok {
		t.Fatal("fully-excluded ring claimed an owner")
	}
}

// TestCachePeerFetch: a worker that misses locally must fetch the entry
// from its hash-owner peer, count it as a peer hit, and re-replicate it
// into its own disk tier.
func TestCachePeerFetch(t *testing.T) {
	owner, ots := newTestServer(t, Config{PoolSize: 1})
	key := strings.Repeat("12ab", 16)
	want := dummyResult("peered", 0.97531)
	owner.Cache().Put(key, want)

	dir := t.TempDir()
	local, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	self := "http://self.invalid"
	local.EnablePeering([]string{ots.URL, self}, self, nil)

	got, ok := local.Get(key)
	if !ok {
		t.Fatal("peer-owned entry missed")
	}
	if got.Scenario != want.Scenario || got.EventsTotal != want.EventsTotal {
		t.Fatalf("peer round trip changed scalars: %+v", got)
	}
	for k, v := range want.Metrics {
		if got.Metrics[k] != v {
			t.Fatalf("metric %s not bit-exact over the peer hop: %v != %v", k, got.Metrics[k], v)
		}
	}
	st := local.Stats()
	if st.PeerHits != 1 || st.Hits != 1 {
		t.Fatalf("peer fetch stats: %+v", st)
	}

	// Re-replication: a fresh cache on the same dir finds the entry on
	// disk without any peer.
	fresh, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(key); !ok {
		t.Fatal("peer-fetched entry was not re-replicated to the local disk tier")
	}

	// Second Get serves from memory: no second peer hit.
	local.Get(key)
	if st := local.Stats(); st.PeerHits != 1 || st.Hits != 2 {
		t.Fatalf("promoted peer entry stats: %+v", st)
	}
}

// TestCachePeerUnreachableDegradesToMiss: a down (or absent) peer must
// degrade to a plain miss so the caller simulates locally.
func TestCachePeerUnreachableDegrades(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	c, err := NewCache(8, "")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://self.invalid"
	c.EnablePeering([]string{deadURL, self}, self, nil)

	key := strings.Repeat("77cc", 16)
	if _, ok := c.Get(key); ok {
		t.Fatal("dead peer produced a hit")
	}
	st := c.Stats()
	if st.Misses != 1 || st.PeerHits != 0 || st.Hits != 0 {
		t.Fatalf("dead-peer stats: %+v", st)
	}
	// The cache still works locally after the failed fetch.
	c.Put(key, dummyResult("local", 0.5))
	if _, ok := c.Get(key); !ok {
		t.Fatal("local put lost after failed peer fetch")
	}
}

// TestCacheConcurrentPeerFetchAndPut hammers one key with concurrent
// peer-fetching Gets and local Puts: the promotion path must never
// insert a second LRU element for the key (which would desync the list
// from the map and later evict the live entry).
func TestCacheConcurrentPeerFetchAndPut(t *testing.T) {
	owner, ots := newTestServer(t, Config{PoolSize: 1})
	key := strings.Repeat("9d0e", 16)
	res := dummyResult("hot", 0.9)
	owner.Cache().Put(key, res)

	local, err := NewCache(8, "")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://self.invalid"
	local.EnablePeering([]string{ots.URL, self}, self, nil)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				local.Get(key)
			} else {
				local.Put(key, res)
			}
		}(g)
	}
	wg.Wait()
	if st := local.Stats(); st.Entries != 1 {
		t.Fatalf("one key became %d entries under concurrent peer fetch + put: %+v", st.Entries, st)
	}
	// Fill to capacity: the map and list must still agree.
	for i := 0; i < 7; i++ {
		local.Put(strings.Repeat("f", 60)+"000"+string(rune('0'+i)), dummyResult("f", 0.5))
	}
	if _, ok := local.Get(key); !ok {
		t.Fatal("contended key lost after fills below capacity")
	}
	if st := local.Stats(); st.Entries != 8 || st.Evictions != 0 {
		t.Fatalf("map/list desync: %+v", st)
	}
}

// TestCacheEntryEndpoint covers GET /v1/cache/{key} directly: hits
// serve the wire record, misses and malformed keys 404, and the lookup
// leaves the serving worker's hit/miss counters alone.
func TestCacheEntryEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1})
	key := strings.Repeat("ab01", 16)
	srv.Cache().Put(key, dummyResult("served", 0.88))

	resp, err := http.Get(ts.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache entry GET returned %d", resp.StatusCode)
	}

	for _, bad := range []string{strings.Repeat("a", 63), strings.Repeat("Z", 64), "..%2f..%2fetc"} {
		r2, err := http.Get(ts.URL + "/v1/cache/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusNotFound {
			t.Fatalf("key %q returned %d, want 404", bad, r2.StatusCode)
		}
	}

	if st := srv.Cache().Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("peer-serving lookups polluted the counters: %+v", st)
	}
}

// decodeStream parses an NDJSON response body into events.
func decodeStream(t testing.TB, resp *http.Response) (events []map[string]any) {
	t.Helper()
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for {
		var ev map[string]any
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("bad NDJSON stream: %v", err)
		}
		events = append(events, ev)
	}
	return events
}
