package service

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// The alert engine evaluates declarative SLO rules over the telemetry
// history on a fixed interval. Rules are data, not code: a rule names a
// metric (or a numerator/denominator pair), an aggregation over a
// window, a comparison, and a hold duration. Each matching series gets
// its own alert instance walking the inactive → pending → firing →
// resolved state machine; transitions emit one structured stderr log
// line each, and the current set is served at GET /v1/alerts.

// RuleDuration is a time.Duration that (un)marshals as a Go duration
// string ("30s", "5m") so rules files stay human-writable.
type RuleDuration time.Duration

func (d *RuleDuration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"30s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = RuleDuration(v)
	return nil
}

func (d RuleDuration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// AlertRule is one declarative rule. Kind selects the aggregation:
//
//   - "threshold": each series' latest sample value.
//   - "increase":  each counter series' reset-aware growth over Window.
//   - "rate":      the same growth as a per-second rate.
//   - "quantile":  the Quantile of a histogram family's observations
//     that landed within Window (per series).
//   - "ratio":     sum of the Numerator metrics' increases over Window
//     divided by the Denominator metrics' — series matched up by label
//     set. MinCount gates on denominator activity, so a ratio over
//     nothing never alerts.
//
// The computed value is compared Op Value ("<", "<=", ">", ">="); when
// the comparison holds continuously for For, the alert fires.
type AlertRule struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Severity    string       `json:"severity,omitempty"` // "warning" (default) | "critical"
	Kind        string       `json:"kind"`
	Metric      string       `json:"metric,omitempty"`
	Numerator   []string     `json:"numerator,omitempty"`
	Denominator []string     `json:"denominator,omitempty"`
	Quantile    float64      `json:"quantile,omitempty"`
	Op          string       `json:"op"`
	Value       float64      `json:"value"`
	Window      RuleDuration `json:"window,omitempty"`
	For         RuleDuration `json:"for,omitempty"`
	MinCount    float64      `json:"min_count,omitempty"`
	// Disabled drops the rule — the way a rules file turns off one of
	// the defaults by redefining it by name.
	Disabled bool `json:"disabled,omitempty"`
}

func (r AlertRule) validate() error {
	switch r.Kind {
	case "threshold", "increase", "rate", "quantile":
		if r.Metric == "" {
			return fmt.Errorf("alert rule %q: kind %s needs a metric", r.Name, r.Kind)
		}
	case "ratio":
		if len(r.Numerator) == 0 || len(r.Denominator) == 0 {
			return fmt.Errorf("alert rule %q: kind ratio needs numerator and denominator metrics", r.Name)
		}
	default:
		return fmt.Errorf("alert rule %q: unknown kind %q", r.Name, r.Kind)
	}
	switch r.Op {
	case "<", "<=", ">", ">=":
	default:
		return fmt.Errorf("alert rule %q: unknown op %q", r.Name, r.Op)
	}
	if r.Name == "" {
		return fmt.Errorf("alert rule: missing name")
	}
	if r.Kind == "quantile" && (r.Quantile <= 0 || r.Quantile >= 1) {
		return fmt.Errorf("alert rule %q: quantile must be in (0, 1)", r.Name)
	}
	return nil
}

// DefaultAlertRules are the SLOs every telemetry-enabled daemon watches
// out of the box. Fleet-only series (member up, shard retries) simply
// never match on a single daemon, so the rules are harmless everywhere.
func DefaultAlertRules() []AlertRule {
	return []AlertRule{
		{
			Name:        "worker_down",
			Description: "The coordinator's /metrics scrape of a fleet member is failing.",
			Severity:    "critical",
			Kind:        "threshold", Metric: "wt_fleet_member_up",
			Op: "<", Value: 1,
		},
		{
			Name:        "queue_depth_sustained",
			Description: "Design points have been queuing for a pool slot for a sustained period.",
			Severity:    "warning",
			Kind:        "threshold", Metric: "wt_pool_queue_depth",
			Op: ">", Value: 16, For: RuleDuration(10 * time.Second),
		},
		{
			Name:        "cache_hit_ratio_collapse",
			Description: "The trial cache is missing almost everything — repeated sweeps should mostly hit.",
			Severity:    "warning",
			Kind:        "ratio",
			Numerator:   []string{"wt_cache_hits_total", "wt_cache_disk_hits_total", "wt_cache_peer_hits_total"},
			Denominator: []string{"wt_cache_hits_total", "wt_cache_disk_hits_total", "wt_cache_peer_hits_total", "wt_cache_misses_total"},
			Op:          "<", Value: 0.1,
			Window: RuleDuration(60 * time.Second), MinCount: 20,
		},
		{
			Name:        "journal_fsync_slow",
			Description: "Journal fsync p99 latency is above 50ms — durable commits are dragging the commit path.",
			Severity:    "warning",
			Kind:        "quantile", Metric: "wt_journal_fsync_seconds", Quantile: 0.99,
			Op: ">", Value: 0.05, Window: RuleDuration(60 * time.Second),
		},
		{
			Name:        "degraded_jobs",
			Description: "A job degraded to coordinator-local execution after exhausting shard failover.",
			Severity:    "critical",
			Kind:        "increase", Metric: "wt_fleet_degraded_jobs_total",
			Op: ">", Value: 0, Window: RuleDuration(5 * time.Minute),
		},
		{
			Name:        "failover_burst",
			Description: "Shard failovers are happening in bursts — workers are flapping under the coordinator.",
			Severity:    "warning",
			Kind:        "increase", Metric: "wt_fleet_shard_retries_total",
			Op: ">", Value: 3, Window: RuleDuration(60 * time.Second),
		},
	}
}

// LoadAlertRules reads a rules file (a JSON array of AlertRule) and
// merges it over the defaults: a rule whose name matches a default
// replaces it (or removes it, with "disabled": true); other rules are
// appended.
func LoadAlertRules(path string) ([]AlertRule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var user []AlertRule
	if err := json.Unmarshal(data, &user); err != nil {
		return nil, fmt.Errorf("alert rules %s: %w", path, err)
	}
	return MergeAlertRules(DefaultAlertRules(), user)
}

// MergeAlertRules overlays user rules on base by name and validates the
// result.
func MergeAlertRules(base, user []AlertRule) ([]AlertRule, error) {
	byName := make(map[string]int, len(base))
	out := append([]AlertRule(nil), base...)
	for i, r := range out {
		byName[r.Name] = i
	}
	for _, r := range user {
		if i, ok := byName[r.Name]; ok {
			out[i] = r
		} else {
			byName[r.Name] = len(out)
			out = append(out, r)
		}
	}
	kept := out[:0]
	for _, r := range out {
		if r.Disabled {
			continue
		}
		if err := r.validate(); err != nil {
			return nil, err
		}
		kept = append(kept, r)
	}
	return kept, nil
}

// AlertState is an alert instance's lifecycle phase.
type AlertState string

const (
	// AlertPending: the condition holds but has not yet held for the
	// rule's For duration.
	AlertPending AlertState = "pending"
	// AlertFiring: the condition has held for at least For.
	AlertFiring AlertState = "firing"
	// AlertResolved: the condition stopped holding after the alert
	// fired. Resolved alerts stay listed (they are the incident's paper
	// trail) until the condition fires again or the daemon restarts.
	AlertResolved AlertState = "resolved"
)

// Alert is one rule × series instance, the GET /v1/alerts unit.
type Alert struct {
	Rule        string     `json:"rule"`
	Severity    string     `json:"severity"`
	Description string     `json:"description,omitempty"`
	Labels      string     `json:"labels,omitempty"`
	State       AlertState `json:"state"`
	Value       float64    `json:"value"`
	Since       time.Time  `json:"since"`
	ResolvedAt  time.Time  `json:"resolved_at,omitzero"`
}

// AlertsResponse is the GET /v1/alerts payload.
type AlertsResponse struct {
	Firing  int     `json:"firing"`
	Pending int     `json:"pending"`
	Alerts  []Alert `json:"alerts"`
}

type alertInstance struct {
	Alert
	condSince time.Time // when the condition started holding
}

// alertEngine evaluates the rules over one History on a fixed interval.
type alertEngine struct {
	hist     *obs.History
	rules    []AlertRule
	interval time.Duration
	logf     func(format string, args ...any)

	mu     sync.Mutex
	active map[string]*alertInstance // key: rule name + labels
	now    func() time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// startAlertEngine launches the evaluation loop (interval <= 0 =
// obs.DefaultSampleInterval, matching the sampler so "2 evaluation
// intervals" and "2 samples" are the same clock).
func startAlertEngine(hist *obs.History, rules []AlertRule, interval time.Duration) *alertEngine {
	if interval <= 0 {
		interval = obs.DefaultSampleInterval
	}
	e := &alertEngine{
		hist:     hist,
		rules:    rules,
		interval: interval,
		logf:     log.Printf,
		active:   make(map[string]*alertInstance),
		now:      time.Now,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(e.done)
		ticker := time.NewTicker(e.interval)
		defer ticker.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-ticker.C:
				e.evaluate()
			}
		}
	}()
	return e
}

// Stop ends the evaluation loop (idempotent) and waits for it.
func (e *alertEngine) Stop() {
	if e == nil {
		return
	}
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}

// Snapshot returns the current alert set, firing first, then pending,
// then resolved, stably ordered within each state.
func (e *alertEngine) Snapshot() AlertsResponse {
	resp := AlertsResponse{Alerts: []Alert{}}
	if e == nil {
		return resp
	}
	e.mu.Lock()
	for _, inst := range e.active {
		resp.Alerts = append(resp.Alerts, inst.Alert)
	}
	e.mu.Unlock()
	rank := map[AlertState]int{AlertFiring: 0, AlertPending: 1, AlertResolved: 2}
	sort.Slice(resp.Alerts, func(i, j int) bool {
		a, b := resp.Alerts[i], resp.Alerts[j]
		if rank[a.State] != rank[b.State] {
			return rank[a.State] < rank[b.State]
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Labels < b.Labels
	})
	for _, a := range resp.Alerts {
		switch a.State {
		case AlertFiring:
			resp.Firing++
		case AlertPending:
			resp.Pending++
		}
	}
	return resp
}

// FiringCount returns how many alerts are currently firing — the number
// /v1/healthz carries.
func (e *alertEngine) FiringCount() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, inst := range e.active {
		if inst.State == AlertFiring {
			n++
		}
	}
	return n
}

// evaluate runs one evaluation round over every rule.
func (e *alertEngine) evaluate() {
	now := e.now()
	for _, rule := range e.rules {
		e.apply(rule, e.eval(rule, now), now)
	}
}

// eval computes a rule's current value per matching series label set.
func (e *alertEngine) eval(rule AlertRule, now time.Time) map[string]float64 {
	window := time.Duration(rule.Window)
	if window <= 0 {
		window = time.Minute
	}
	out := make(map[string]float64)
	switch rule.Kind {
	case "threshold":
		for _, v := range e.hist.Latest(rule.Metric) {
			out[v.Labels] = v.V
		}
	case "increase":
		for _, d := range e.hist.Increase(rule.Metric, window, now) {
			out[d.Labels] = d.Delta
		}
	case "rate":
		for _, d := range e.hist.Increase(rule.Metric, window, now) {
			out[d.Labels] = d.PerSec()
		}
	case "quantile":
		for _, v := range e.hist.QuantileOver(rule.Metric, rule.Quantile, window, now) {
			out[v.Labels] = v.V
		}
	case "ratio":
		num := make(map[string]float64)
		den := make(map[string]float64)
		for _, m := range rule.Numerator {
			for _, d := range e.hist.Increase(m, window, now) {
				num[d.Labels] += d.Delta
			}
		}
		for _, m := range rule.Denominator {
			for _, d := range e.hist.Increase(m, window, now) {
				den[d.Labels] += d.Delta
			}
		}
		for labels, dv := range den {
			if dv < rule.MinCount || dv <= 0 {
				continue // too little activity for the ratio to mean anything
			}
			out[labels] = num[labels] / dv
		}
	}
	return out
}

func compare(op string, v, threshold float64) bool {
	switch op {
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	case ">":
		return v > threshold
	case ">=":
		return v >= threshold
	}
	return false
}

// apply folds one rule's evaluated values into the alert instances,
// logging every state transition.
func (e *alertEngine) apply(rule AlertRule, values map[string]float64, now time.Time) {
	severity := rule.Severity
	if severity == "" {
		severity = "warning"
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	seen := make(map[string]bool, len(values))
	for labels, v := range values {
		key := rule.Name + labels
		seen[key] = true
		inst := e.active[key]
		holds := compare(rule.Op, v, rule.Value)
		switch {
		case holds && inst == nil,
			holds && inst.State == AlertResolved:
			inst = &alertInstance{
				Alert: Alert{
					Rule: rule.Name, Severity: severity, Description: rule.Description,
					Labels: labels, State: AlertPending, Value: v, Since: now,
				},
				condSince: now,
			}
			e.active[key] = inst
			if rule.For <= 0 {
				inst.State, inst.ResolvedAt = AlertFiring, time.Time{}
				e.transition(inst, "inactive", AlertFiring)
			} else {
				e.transition(inst, "inactive", AlertPending)
			}
		case holds:
			inst.Value = v
			if inst.State == AlertPending && now.Sub(inst.condSince) >= time.Duration(rule.For) {
				inst.State, inst.Since = AlertFiring, now
				e.transition(inst, AlertPending, AlertFiring)
			}
		case inst == nil:
			// Condition clear and no instance: nothing to do.
		case inst.State == AlertPending:
			// The condition let go before For elapsed: not an incident,
			// just noise — drop back to inactive silently-ish.
			delete(e.active, key)
			e.transition(inst, AlertPending, "inactive")
		case inst.State == AlertFiring:
			inst.State, inst.ResolvedAt, inst.Value = AlertResolved, now, v
			e.transition(inst, AlertFiring, AlertResolved)
		default:
			inst.Value = v // resolved: keep the paper trail current
		}
	}
	// Series that stopped reporting entirely: a pending alert on them is
	// dropped; a firing one resolves — no data is not a held condition.
	for key, inst := range e.active {
		if inst.Rule != rule.Name || seen[key] {
			continue
		}
		switch inst.State {
		case AlertPending:
			delete(e.active, key)
			e.transition(inst, AlertPending, "inactive")
		case AlertFiring:
			inst.State, inst.ResolvedAt = AlertResolved, now
			e.transition(inst, AlertFiring, AlertResolved)
		}
	}
}

// transition logs one state change as a single structured stderr line.
func (e *alertEngine) transition(inst *alertInstance, from, to AlertState) {
	labels := inst.Labels
	if labels == "" {
		labels = "{}"
	}
	e.logf("alert rule=%s severity=%s labels=%s from=%s to=%s value=%g",
		inst.Rule, inst.Severity, labels, from, to, inst.Value)
}
