package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// startObsFleet is startTracedFleet with a fast telemetry-history clock:
// sampling, federation scraping and alert evaluation all run on interval
// so history tests finish in tens of milliseconds, not multiples of the
// production 2s default.
func startObsFleet(t testing.TB, n int, interval time.Duration) (*Server, *httptest.Server, []*Server, []string) {
	t.Helper()
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range tss {
		tss[i] = httptest.NewServer(http.NotFoundHandler())
		t.Cleanup(tss[i].Close)
		urls[i] = tss[i].URL
	}
	for i := range tss {
		srv, err := New(Config{PoolSize: 2, Peers: urls, Self: urls[i], HistoryInterval: interval})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		tss[i].Config.Handler = srv.Handler()
	}
	coord, err := New(Config{Coordinator: true, Peers: urls, HistoryInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)
	workers := make([]*Server, n)
	return coord, cts, workers, urls
}

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestObservabilityHeaders is the satellite regression test: every
// observability route must answer with Cache-Control: no-store (stale
// telemetry from an intermediary is worse than none) and the right
// Content-Type — the exposition version header on text endpoints, JSON
// elsewhere.
func TestObservabilityHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1, HistoryInterval: 10 * time.Millisecond})
	routes := []struct {
		path string
		ct   string
	}{
		{"/metrics", expositionContentType},
		{"/v1/metrics/fleet", expositionContentType},
		{"/v1/metrics/history?name=wt_uptime_seconds", "application/json"},
		{"/v1/alerts", "application/json"},
		{"/v1/stats", "application/json"},
		{"/v1/healthz", "application/json"},
	}
	for _, rt := range routes {
		resp, err := http.Get(ts.URL + rt.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", rt.path, resp.StatusCode)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("GET %s: Cache-Control %q, want no-store", rt.path, cc)
		}
		if ct := resp.Header.Get("Content-Type"); ct != rt.ct {
			t.Fatalf("GET %s: Content-Type %q, want %q", rt.path, ct, rt.ct)
		}
	}
}

// TestHistoryEndpointsWithTelemetryOff: the new observability routes
// follow /metrics' contract — 404 when telemetry is disabled.
func TestHistoryEndpointsWithTelemetryOff(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1, NoTelemetry: true})
	for _, path := range []string{"/v1/metrics/fleet", "/v1/metrics/history?name=x", "/v1/alerts"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s with telemetry off: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestFleetMetricsFederation: the coordinator scrapes both workers into
// history, so /v1/metrics/fleet serves one merged, promlint-clean view
// with per-instance series, member-up gauges for every worker, and
// range queries over it answer JSON.
func TestFleetMetricsFederation(t *testing.T) {
	coord, cts, _, urls := startObsFleet(t, 2, 10*time.Millisecond)

	waitFor(t, 5*time.Second, "both workers federated", func() bool {
		up := coord.history.Latest("wt_fleet_member_up")
		if len(up) != 2 {
			return false
		}
		for _, v := range up {
			if v.V != 1 {
				return false
			}
		}
		// Worker registries must actually be in the merged view too.
		return len(coord.history.Latest("wt_uptime_seconds")) == 3 // 2 workers + coordinator
	})

	resp, err := http.Get(cts.URL + "/v1/metrics/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics/fleet: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get(partialHeader); got != "" {
		t.Fatalf("healthy fleet flagged partial: %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if problems := obs.Lint(body); len(problems) != 0 {
		t.Fatalf("federated exposition fails lint: %v\n%s", problems, body)
	}
	for _, u := range urls {
		if !strings.Contains(string(body), fmt.Sprintf("instance=%q", u)) {
			t.Fatalf("federated view missing instance %s:\n%s", u, body)
		}
	}
	if !strings.Contains(string(body), `instance="coordinator"`) {
		t.Fatalf("federated view missing the coordinator's own series")
	}

	hresp, err := http.Get(cts.URL + "/v1/metrics/history?name=wt_fleet_member_up&window=1m")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hist HistoryResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	if hist.Name != "wt_fleet_member_up" || len(hist.Series) != 2 {
		t.Fatalf("history range query: %+v", hist)
	}
	for _, sr := range hist.Series {
		if len(sr.Points) == 0 {
			t.Fatalf("series %s has no points", sr.Labels)
		}
	}

	// Healthy fleet: no alerts.
	aresp, err := http.Get(cts.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	var alerts AlertsResponse
	if err := json.NewDecoder(aresp.Body).Decode(&alerts); err != nil {
		t.Fatal(err)
	}
	if alerts.Firing != 0 || alerts.Pending != 0 {
		t.Fatalf("healthy fleet has alerts: %+v", alerts)
	}
}

// TestFederationPartialWorkerDown is the satellite test: with one worker
// dead the federated view keeps serving (no wedge), flags itself
// partial, records member_up 0 for the dead worker — and the
// worker_down alert fires, then resolves when evaluation sees the
// member back.
func TestFederationPartialWorkerDown(t *testing.T) {
	tss := []*httptest.Server{
		httptest.NewServer(http.NotFoundHandler()),
		httptest.NewServer(http.NotFoundHandler()),
	}
	urls := []string{tss[0].URL, tss[1].URL}
	for i := range tss {
		srv, err := New(Config{PoolSize: 1, Peers: urls, Self: urls[i], HistoryInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		tss[i].Config.Handler = srv.Handler()
	}
	t.Cleanup(tss[0].Close)
	coord, err := New(Config{Coordinator: true, Peers: urls, HistoryInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	waitFor(t, 5*time.Second, "initial federation", func() bool {
		return len(coord.history.Latest("wt_fleet_member_up")) == 2
	})

	tss[1].Close() // kill one worker

	waitFor(t, 5*time.Second, "dead worker detected", func() bool {
		for _, v := range coord.history.Latest("wt_fleet_member_up") {
			if strings.Contains(v.Labels, urls[1]) && v.V == 0 {
				return true
			}
		}
		return false
	})

	resp, err := http.Get(cts.URL + "/v1/metrics/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial fleet view: HTTP %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(partialHeader); got != "true" {
		t.Fatalf("fleet view with a dead worker: %s=%q, want true", partialHeader, got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if problems := obs.Lint(body); len(problems) != 0 {
		t.Fatalf("partial federated exposition fails lint: %v", problems)
	}
	// The live worker and the coordinator are still in the view.
	if !strings.Contains(string(body), fmt.Sprintf("instance=%q", urls[0])) {
		t.Fatalf("partial view lost the live worker:\n%s", body)
	}

	// worker_down fires for the dead worker's instance.
	waitFor(t, 5*time.Second, "worker_down alert to fire", func() bool {
		for _, a := range coord.alerts.Snapshot().Alerts {
			if a.Rule == "worker_down" && a.State == AlertFiring && strings.Contains(a.Labels, urls[1]) {
				return true
			}
		}
		return false
	})
	if got := coord.alerts.FiringCount(); got != 1 {
		t.Fatalf("firing count %d, want 1", got)
	}

	// healthz carries the firing count without changing its status (the
	// health monitor rejects unknown statuses — alerts must not cascade
	// into fleet failover).
	hzresp, err := http.Get(cts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hzresp.Body.Close()
	var hz struct {
		Status       string `json:"status"`
		AlertsFiring int    `json:"alerts_firing"`
	}
	if err := json.NewDecoder(hzresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.AlertsFiring != 1 {
		t.Fatalf("healthz %+v, want status ok with 1 firing", hz)
	}
}

// TestTraceEvictedJobTrace is the satellite regression test for
// wtql -trace against an evicted trace: the tracer's LRU admits newer
// jobs' traces by evicting the oldest, after which the job's trace
// endpoint must answer a distinct 404 "trace evicted" — not "no such
// job" — so the client can degrade gracefully.
func TestTraceEvictedJobTrace(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 2})
	events := postQuery(t, ts, smallQuery)
	if ev := lastEvent(t, events); ev["type"] != "result" {
		t.Fatalf("query ended with %v", ev)
	}
	jobID := events[0]["id"].(string)

	// Flood the tracer far past its LRU capacity so the job's trace is
	// evicted while the job record itself is retained.
	for i := 0; i < 2*obs.DefaultMaxTraces; i++ {
		traceID := srv.tel.tracer.NewTraceID()
		srv.tel.tracer.Add(obs.Span{
			TraceID: traceID,
			SpanID:  srv.tel.tracer.NewSpanID(),
			Name:    "flood",
			Start:   time.Now(),
		})
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted trace: HTTP %d, want 404", resp.StatusCode)
	}
	var ev ErrorEvent
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Error != "trace evicted" {
		t.Fatalf("evicted trace error %q, want \"trace evicted\"", ev.Error)
	}

	// The job itself is still fine — that's what makes the client-side
	// degrade-to-notice behavior correct.
	info, ok := srv.Job(jobID)
	if !ok || info.State != JobDone {
		t.Fatalf("job gone or not done: %+v ok=%v", info, ok)
	}
}
